/**
 * @file
 * Shared glue for the evaluation harness. Every table/figure binary
 * expresses its experiment as a SweepSpec, runs it through the parallel
 * SweepRunner, and formats the SweepResult with a reporter — the
 * workload-running, scaling, and aggregation helpers that used to live
 * here are now the sweep subsystem (src/sim/sweep.hh, src/sim/report.hh)
 * and the pipeline aggregation header (src/pipeline/stats_aggregate.hh).
 *
 * The environment variables CONOPT_SCALE (default 1) and
 * CONOPT_THREADS (default: hardware concurrency) are honoured by the
 * sweep subsystem itself (sim::envScale() / sim::envThreads()).
 */

#ifndef CONOPT_BENCH_BENCH_COMMON_HH
#define CONOPT_BENCH_BENCH_COMMON_HH

#include <cstdio>

#include "src/pipeline/machine_config.hh"
#include "src/pipeline/stats_aggregate.hh"
#include "src/sim/report.hh"
#include "src/sim/sweep.hh"
#include "src/workloads/workload.hh"

namespace conopt::bench {

/** Print a section header. */
inline void
header(const char *title)
{
    sim::printHeader(title);
}

} // namespace conopt::bench

#endif // CONOPT_BENCH_BENCH_COMMON_HH
