/**
 * @file
 * Shared glue for the evaluation harness. Every table/figure binary
 * expresses its experiment as a SweepSpec, runs it through the parallel
 * SweepRunner, formats the SweepResult with a reporter, and then hands
 * the result to finish()/finishSweep(), which
 *
 *   1. writes the run as a `BENCH_<name>.json` artifact (the bench
 *      trajectory CI collects), and
 *   2. when a baseline is configured, compares against it and turns
 *      simulated-machine drift into a non-zero exit status.
 *
 * Harness environment/flags, honoured uniformly by all bench binaries:
 *
 *   CONOPT_SCALE          workload iteration scale (default 1)
 *   CONOPT_THREADS        sweep worker threads (default: hardware)
 *   CONOPT_ARTIFACT_DIR   where BENCH_<name>.json is written
 *                         (default: current directory)
 *   CONOPT_BASELINE_DIR   directory of baseline artifacts to gate
 *                         against (e.g. bench/baselines)
 *   --artifact-dir <dir>  flag form of CONOPT_ARTIFACT_DIR
 *   --baseline <path>     flag form of CONOPT_BASELINE_DIR; a specific
 *                         artifact file is also accepted
 *   --tolerance <T>       relative drift tolerance (default 0: exact,
 *                         the simulator is deterministic)
 *   --no-artifact         skip artifact emission (and the gate)
 */

#ifndef CONOPT_BENCH_BENCH_COMMON_HH
#define CONOPT_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "src/pipeline/machine_config.hh"
#include "src/pipeline/stats_aggregate.hh"
#include "src/sim/baseline.hh"
#include "src/sim/report.hh"
#include "src/sim/sweep.hh"
#include "src/workloads/workload.hh"

namespace conopt::bench {

/** Print a section header. */
inline void
header(const char *title)
{
    sim::printHeader(title);
}

/** Harness options shared by every bench binary (see file header). */
struct HarnessOptions
{
    std::string artifactDir = ".";
    std::string baselinePath; ///< file or directory; empty = no gate
    double tolerance = 0.0;
    bool emitArtifact = true;

    /** @p lenientArgs ignores unknown flags instead of rejecting them;
     *  only for binaries sharing argv with another framework
     *  (micro_structures + google-benchmark). Everywhere else a typo'd
     *  gate flag must fail loudly, not silently skip the gate. */
    static HarnessOptions
    parse(int argc, char **argv, bool lenientArgs = false)
    {
        HarnessOptions o;
        if (const char *d = std::getenv("CONOPT_ARTIFACT_DIR"); d && *d)
            o.artifactDir = d;
        if (const char *b = std::getenv("CONOPT_BASELINE_DIR"); b && *b)
            o.baselinePath = b;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            const auto value = [&]() -> const char * {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s requires a value\n",
                                 a.c_str());
                    std::exit(2);
                }
                return argv[++i];
            };
            if (a == "--artifact-dir") {
                o.artifactDir = value();
            } else if (a == "--baseline") {
                o.baselinePath = value();
            } else if (a == "--tolerance") {
                const char *v = value();
                if (!sim::parseTolerance(v, &o.tolerance)) {
                    std::fprintf(stderr,
                                 "invalid --tolerance '%s' (want a "
                                 "finite non-negative number)\n",
                                 v);
                    std::exit(2);
                }
            } else if (a == "--no-artifact") {
                o.emitArtifact = false;
            } else if (!lenientArgs) {
                std::fprintf(stderr,
                             "unknown argument '%s' (flags: "
                             "--artifact-dir DIR, --baseline PATH, "
                             "--tolerance T, --no-artifact)\n",
                             a.c_str());
                std::exit(2);
            }
        }
        return o;
    }
};

/** Validate harness flags up front (exits 2 on a bad flag) so a typo
 *  fails before the sweep runs, not after minutes of simulation. Call
 *  first thing in main(); finish() re-parses the same argv later. */
inline void
validateArgs(int argc, char **argv, bool lenientArgs = false)
{
    (void)HarnessOptions::parse(argc, argv, lenientArgs);
}

/**
 * Persist @p art as `BENCH_<bench>.json` and apply the baseline gate.
 * Returns the bench binary's exit status: 0 on success, 1 when the
 * artifact cannot be written or the baseline comparison finds drift.
 */
inline int
finish(const std::string &benchName, sim::BenchArtifact art, int argc,
       char **argv, bool lenientArgs = false)
{
    const HarnessOptions o = HarnessOptions::parse(argc, argv,
                                                   lenientArgs);
    if (!o.emitArtifact)
        return 0;

    art.bench = benchName;
    const std::string file = "BENCH_" + benchName + ".json";
    const std::string outPath =
        (std::filesystem::path(o.artifactDir) / file).string();
    std::string err;
    if (!art.save(outPath, &err)) {
        std::fprintf(stderr, "%s: cannot write artifact: %s\n",
                     benchName.c_str(), err.c_str());
        return 1;
    }
    std::fprintf(stderr, "[artifact] wrote %s (%zu jobs, %zu geomeans)\n",
                 outPath.c_str(), art.jobs.size(), art.geomeans.size());

    if (o.baselinePath.empty())
        return 0;

    std::string basePath = o.baselinePath;
    std::error_code ec;
    if (std::filesystem::is_directory(basePath, ec)) {
        basePath =
            (std::filesystem::path(basePath) / file).string();
        // A baseline *directory* gates whichever benches have seeds in
        // it; a bench without one is "not yet baselined", not a
        // failure (CONOPT_BASELINE_DIR is typically set globally). An
        // explicit --baseline <file> that is missing still errors.
        if (!std::filesystem::exists(basePath, ec)) {
            std::fprintf(stderr,
                         "[artifact] no baseline for %s in %s; gate "
                         "skipped\n",
                         benchName.c_str(), o.baselinePath.c_str());
            return 0;
        }
    }
    sim::BenchArtifact baseline;
    if (!sim::loadArtifact(basePath, &baseline, &err)) {
        std::fprintf(stderr, "%s: cannot load baseline: %s\n",
                     benchName.c_str(), err.c_str());
        return 1;
    }
    const auto cmp =
        sim::compareArtifacts(baseline, art, {o.tolerance});
    if (!cmp.ok) {
        std::fprintf(stderr,
                     "%s: BASELINE DRIFT vs %s (%zu difference%s):\n",
                     benchName.c_str(), basePath.c_str(),
                     cmp.diffs.size(), cmp.diffs.size() == 1 ? "" : "s");
        for (const auto &d : cmp.diffs)
            std::fprintf(stderr, "  %s\n", d.c_str());
        return 1;
    }
    std::fprintf(stderr, "[artifact] matches baseline %s\n",
                 basePath.c_str());
    return 0;
}

/** An artifact job that pins a preset machine configuration without
 *  running it: label = config = @p name, plus the config fingerprint.
 *  Used by benches whose regression unit is the experimental setup
 *  itself (table2_config, micro_structures). */
inline sim::ArtifactJob
configJob(const char *name, const pipeline::MachineConfig &cfg)
{
    sim::ArtifactJob j;
    j.label = name;
    j.config = name;
    j.configFingerprint = sim::configFingerprint(cfg);
    return j;
}

/** finish() for the common case: a sweep plus the figure's headline
 *  geomean columns (@p configs over @p baseConfig). */
inline int
finishSweep(const std::string &benchName, const sim::SweepResult &res,
            const std::string &baseConfig,
            const std::vector<std::string> &configs, int argc,
            char **argv)
{
    auto art = sim::BenchArtifact::fromSweep(res);
    art.addGeomeans(res, baseConfig, configs);
    return finish(benchName, std::move(art), argc, argv);
}

} // namespace conopt::bench

#endif // CONOPT_BENCH_BENCH_COMMON_HH
