/**
 * @file
 * Shared glue for the evaluation harness. Every table/figure binary
 * expresses its experiment as a SweepSpec, runs it through the parallel
 * SweepRunner, formats the SweepResult with a reporter, and then hands
 * the result to finish()/finishSweep(), which
 *
 *   1. writes the run as a `BENCH_<name>.json` artifact (the bench
 *      trajectory CI collects), and
 *   2. when a baseline is configured, compares against it and turns
 *      simulated-machine drift into a non-zero exit status.
 *
 * Harness environment/flags, honoured uniformly by all bench binaries:
 *
 *   CONOPT_SCALE          workload iteration scale (default 1)
 *   CONOPT_THREADS        sweep worker threads (default: hardware)
 *   CONOPT_SHARD          "i/n": run only shard i of n (0-based); the
 *                         artifact becomes BENCH_<name>.shard<i>of<n>
 *                         .json with figure geomeans deferred to the
 *                         post-merge step (conopt_bench_check)
 *   CONOPT_RESULT_CACHE   directory of persisted simulation results;
 *                         unchanged (program, config, scale, seed)
 *                         cells skip simulation on repeated sweeps
 *   CONOPT_PERF           non-empty/non-"0": record per-job host
 *                         wall-seconds and kips (simulated kilo-insts
 *                         per host second) in the artifact; excluded
 *                         from baseline comparison by design
 *   CONOPT_IPC_SAMPLE     N > 0: sample per-interval IPC every N
 *                         retired instructions into a bounded per-job
 *                         reservoir; per-job p50/p95/p99 + samples and
 *                         the sweep-level distribution block land in
 *                         the artifact. Off by default (gated runs
 *                         stay byte-identical) and excluded from
 *                         baseline comparison like the perf fields
 *   CONOPT_PROGRESS       non-empty/non-"0": per-job progress + ETA
 *   CONOPT_PROGRESS_FD    fd number: write one machine-readable
 *                         CONOPT-PROGRESS line per finished job to
 *                         that descriptor (the conopt_sweep driver
 *                         attaches a pipe here to stream shard ETAs)
 *   CONOPT_ARTIFACT_DIR   where BENCH_<name>.json is written
 *                         (default: current directory)
 *   CONOPT_BASELINE_DIR   directory of baseline artifacts to gate
 *                         against (e.g. bench/baselines)
 *   --shard i/n           flag form of CONOPT_SHARD
 *   --result-cache <dir>  flag form of CONOPT_RESULT_CACHE
 *   --perf                flag form of CONOPT_PERF
 *   --ipc-sample-interval N  flag form of CONOPT_IPC_SAMPLE
 *   --progress            flag form of CONOPT_PROGRESS
 *   --progress-fd <fd>    flag form of CONOPT_PROGRESS_FD
 *   --artifact-dir <dir>  flag form of CONOPT_ARTIFACT_DIR
 *   --baseline <path>     flag form of CONOPT_BASELINE_DIR; a specific
 *                         artifact file is also accepted
 *   --tolerance <T>       relative drift tolerance (default 0: exact,
 *                         the simulator is deterministic)
 *   --no-artifact         skip artifact emission (and the gate)
 *
 * Sharded runs gate nothing themselves: a shard is a partial figure,
 * so the baseline comparison moves to the merged artifact
 * (`conopt_bench_check <baseline> <shard-dir>`). See README.md for
 * the split/run/merge/cache workflow.
 */

#ifndef CONOPT_BENCH_BENCH_COMMON_HH
#define CONOPT_BENCH_BENCH_COMMON_HH

#include <string>
#include <utility>
#include <vector>

#include "src/pipeline/machine_config.hh"
#include "src/pipeline/stats_aggregate.hh"
#include "src/sim/baseline.hh"
#include "src/sim/driver.hh"
#include "src/sim/harness.hh"
#include "src/sim/report.hh"
#include "src/sim/result_cache.hh"
#include "src/sim/sweep.hh"
#include "src/workloads/workload.hh"

namespace conopt::bench {

// The implementation lives in the src/sim library (src/sim/harness.hh)
// so tools and the standing daemon link the exact same parser and
// artifact pipeline; this header keeps the historical bench:: spelling
// every table/figure binary uses.

/** Harness options shared by every bench binary (see file header). */
using HarnessOptions = sim::HarnessOptions;

/** Print a section header. */
inline void
header(const char *title)
{
    sim::printHeader(title);
}

/** The stderr progress line installed by --progress. */
inline void
printProgress(const sim::SweepProgress &p)
{
    sim::printSweepProgress(p);
}

/** Host-seconds percentiles across the jobs that actually simulated
 *  (print-only; see sim::printHostPercentiles). */
inline void
printHostPercentiles(const sim::SweepResult &res)
{
    sim::printHostPercentiles(res);
}

/** Parse the harness flags (exits 2 on a bad flag, so a typo fails
 *  before the sweep runs, not after minutes of simulation). Call first
 *  thing in main(); pass the result to finish()/finishSweep(). */
inline HarnessOptions
harnessInit(int argc, char **argv, bool lenientArgs = false)
{
    return sim::HarnessOptions::parse(argc, argv, lenientArgs);
}

/**
 * Persist @p art as `BENCH_<bench>.json` (or `BENCH_<bench>
 * .shard<i>of<n>.json` for a sharded run) and apply the baseline gate.
 * Returns the bench binary's exit status: 0 on success, 1 when the
 * artifact cannot be written or the baseline comparison finds drift.
 */
inline int
finish(const std::string &benchName, sim::BenchArtifact art,
       const HarnessOptions &o)
{
    return sim::harnessFinish(benchName, std::move(art), o);
}

/** An artifact job that pins a preset machine configuration without
 *  running it: label = config = @p name, plus the config fingerprint.
 *  Used by benches whose regression unit is the experimental setup
 *  itself (table2_config, micro_structures). */
inline sim::ArtifactJob
configJob(const char *name, const pipeline::MachineConfig &cfg)
{
    return sim::configJob(name, cfg);
}

/** finish() for the common case: a sweep plus the figure's headline
 *  geomean columns (@p configs over @p baseConfig). A sharded run
 *  skips the geomeans: whole-figure aggregates cannot be computed
 *  from one shard's subset, so the merge contract defers them to
 *  `conopt_bench_check --recompute-geomeans` after merging. */
inline int
finishSweep(const std::string &benchName, const sim::SweepResult &res,
            const std::string &baseConfig,
            const std::vector<std::string> &configs,
            const HarnessOptions &o)
{
    return sim::harnessFinishSweep(benchName, res, baseConfig, configs,
                                   o);
}

} // namespace conopt::bench

#endif // CONOPT_BENCH_BENCH_COMMON_HH
