/**
 * @file
 * Shared helpers for the evaluation harness. Every table/figure binary
 * prints the same rows/series the paper reports, using these utilities.
 *
 * The environment variable CONOPT_SCALE (default 1) multiplies every
 * workload's iteration scale, letting the harness trade runtime for
 * statistical weight.
 */

#ifndef CONOPT_BENCH_BENCH_COMMON_HH
#define CONOPT_BENCH_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/pipeline/machine_config.hh"
#include "src/sim/simulator.hh"
#include "src/workloads/workload.hh"

namespace conopt::bench {

/** Workload scale multiplier from the environment (default 1). */
inline unsigned
envScale()
{
    if (const char *s = std::getenv("CONOPT_SCALE")) {
        const long v = std::strtol(s, nullptr, 10);
        if (v >= 1)
            return unsigned(v);
    }
    return 1;
}

/** Run one workload under one machine configuration. */
inline sim::SimResult
runWorkload(const workloads::Workload &w,
            const pipeline::MachineConfig &config)
{
    const auto program = w.build(w.defaultScale * envScale());
    return sim::simulate(program, config);
}

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / double(v.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / double(v.size());
}

/** Per-benchmark cycle counts for a given config, keyed by name. */
using CycleMap = std::map<std::string, uint64_t>;

/** Simulate every workload under @p config; returns name -> cycles. */
inline CycleMap
runAll(const pipeline::MachineConfig &config)
{
    CycleMap cycles;
    for (const auto &w : workloads::allWorkloads())
        cycles[w.name] = runWorkload(w, config).stats.cycles;
    return cycles;
}

/** Print a section header. */
inline void
header(const char *title)
{
    std::printf("\n=== %s ===\n", title);
}

} // namespace conopt::bench

#endif // CONOPT_BENCH_BENCH_COMMON_HH
