/**
 * @file
 * Shared glue for the evaluation harness. Every table/figure binary
 * expresses its experiment as a SweepSpec, runs it through the parallel
 * SweepRunner, formats the SweepResult with a reporter, and then hands
 * the result to finish()/finishSweep(), which
 *
 *   1. writes the run as a `BENCH_<name>.json` artifact (the bench
 *      trajectory CI collects), and
 *   2. when a baseline is configured, compares against it and turns
 *      simulated-machine drift into a non-zero exit status.
 *
 * Harness environment/flags, honoured uniformly by all bench binaries:
 *
 *   CONOPT_SCALE          workload iteration scale (default 1)
 *   CONOPT_THREADS        sweep worker threads (default: hardware)
 *   CONOPT_SHARD          "i/n": run only shard i of n (0-based); the
 *                         artifact becomes BENCH_<name>.shard<i>of<n>
 *                         .json with figure geomeans deferred to the
 *                         post-merge step (conopt_bench_check)
 *   CONOPT_RESULT_CACHE   directory of persisted simulation results;
 *                         unchanged (program, config, scale, seed)
 *                         cells skip simulation on repeated sweeps
 *   CONOPT_PERF           non-empty/non-"0": record per-job host
 *                         wall-seconds and kips (simulated kilo-insts
 *                         per host second) in the artifact; excluded
 *                         from baseline comparison by design
 *   CONOPT_IPC_SAMPLE     N > 0: sample per-interval IPC every N
 *                         retired instructions into a bounded per-job
 *                         reservoir; per-job p50/p95/p99 + samples and
 *                         the sweep-level distribution block land in
 *                         the artifact. Off by default (gated runs
 *                         stay byte-identical) and excluded from
 *                         baseline comparison like the perf fields
 *   CONOPT_PROGRESS       non-empty/non-"0": per-job progress + ETA
 *   CONOPT_PROGRESS_FD    fd number: write one machine-readable
 *                         CONOPT-PROGRESS line per finished job to
 *                         that descriptor (the conopt_sweep driver
 *                         attaches a pipe here to stream shard ETAs)
 *   CONOPT_ARTIFACT_DIR   where BENCH_<name>.json is written
 *                         (default: current directory)
 *   CONOPT_BASELINE_DIR   directory of baseline artifacts to gate
 *                         against (e.g. bench/baselines)
 *   --shard i/n           flag form of CONOPT_SHARD
 *   --result-cache <dir>  flag form of CONOPT_RESULT_CACHE
 *   --perf                flag form of CONOPT_PERF
 *   --ipc-sample-interval N  flag form of CONOPT_IPC_SAMPLE
 *   --progress            flag form of CONOPT_PROGRESS
 *   --progress-fd <fd>    flag form of CONOPT_PROGRESS_FD
 *   --artifact-dir <dir>  flag form of CONOPT_ARTIFACT_DIR
 *   --baseline <path>     flag form of CONOPT_BASELINE_DIR; a specific
 *                         artifact file is also accepted
 *   --tolerance <T>       relative drift tolerance (default 0: exact,
 *                         the simulator is deterministic)
 *   --no-artifact         skip artifact emission (and the gate)
 *
 * Sharded runs gate nothing themselves: a shard is a partial figure,
 * so the baseline comparison moves to the merged artifact
 * (`conopt_bench_check <baseline> <shard-dir>`). See README.md for
 * the split/run/merge/cache workflow.
 */

#ifndef CONOPT_BENCH_BENCH_COMMON_HH
#define CONOPT_BENCH_BENCH_COMMON_HH

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/pipeline/machine_config.hh"
#include "src/pipeline/stats_aggregate.hh"
#include "src/sim/baseline.hh"
#include "src/sim/driver.hh"
#include "src/sim/report.hh"
#include "src/sim/result_cache.hh"
#include "src/sim/sweep.hh"
#include "src/workloads/workload.hh"

namespace conopt::bench {

/** Print a section header. */
inline void
header(const char *title)
{
    sim::printHeader(title);
}

/** The stderr progress line installed by --progress. */
inline void
printProgress(const sim::SweepProgress &p)
{
    std::fprintf(stderr,
                 "[sweep] %3zu/%zu  %-30s %7.2fs  elapsed %6.1fs  "
                 "eta %6.1fs  geomean ipc %.3f\n",
                 p.done, p.total, p.label.c_str(), p.jobHostSeconds,
                 p.elapsedSeconds, p.etaSeconds, p.geomeanIpc);
}

/**
 * Print the host-seconds distribution across the jobs that actually
 * simulated (cache hits measure the loader and are excluded), using
 * the nearest-rank percentiles of PercentileAccumulator. Print-only:
 * these numbers describe the machine the bench ran ON and never feed
 * the artifact or the baseline gate.
 */
inline void
printHostPercentiles(const sim::SweepResult &res)
{
    pipeline::PercentileAccumulator acc;
    for (const auto &r : res.all())
        if (r.simSeconds > 0.0)
            acc.add(r.simSeconds);
    if (acc.empty())
        return;
    std::fprintf(stderr,
                 "[perf] host seconds/job: p50 %.4f  p95 %.4f  "
                 "p99 %.4f  max %.4f  (n=%zu)\n",
                 acc.percentile(50), acc.percentile(95),
                 acc.percentile(99), acc.max(), acc.count());
}

/** Harness options shared by every bench binary (see file header). */
struct HarnessOptions
{
    std::string artifactDir = ".";
    std::string baselinePath; ///< file or directory; empty = no gate
    double tolerance = 0.0;
    bool emitArtifact = true;
    sim::ShardSpec shard;     ///< {0,1} = whole sweep
    bool progress = false;    ///< per-job progress/ETA on stderr
    bool perf = false;        ///< record host_seconds/kips per job
    /** Per-interval IPC sampling stride in retired instructions;
     *  0 = off (the default — gated artifacts stay byte-identical). */
    uint64_t ipcSampleInterval = 0;
    /** Descriptor for machine-readable CONOPT-PROGRESS lines (one per
     *  finished job); -1 = none. The conopt_sweep driver passes an
     *  inherited pipe here to multiplex shard ETAs. */
    int progressFd = -1;
    std::string resultCacheDir;
    /** Created by parse() when a cache dir is configured; shared with
     *  the SweepRunner so finish() can report hit/miss counters. */
    std::shared_ptr<sim::ResultCache> resultCache;

    /** @p lenientArgs ignores unknown flags instead of rejecting them;
     *  only for binaries sharing argv with another framework
     *  (micro_structures + google-benchmark). Everywhere else a typo'd
     *  gate flag must fail loudly, not silently skip the gate. A
     *  malformed --shard/CONOPT_SHARD is always fatal (exit 2): a
     *  shard spec that silently fell back to "the whole sweep" would
     *  duplicate work and clobber the unsharded artifact. */
    static HarnessOptions
    parse(int argc, char **argv, bool lenientArgs = false)
    {
        HarnessOptions o;
        if (const char *d = std::getenv("CONOPT_ARTIFACT_DIR"); d && *d)
            o.artifactDir = d;
        if (const char *b = std::getenv("CONOPT_BASELINE_DIR"); b && *b)
            o.baselinePath = b;
        if (const char *c = std::getenv("CONOPT_RESULT_CACHE"); c && *c)
            o.resultCacheDir = c;
        if (const char *p = std::getenv("CONOPT_PROGRESS");
            p && *p && std::string(p) != "0")
            o.progress = true;
        if (const char *p = std::getenv("CONOPT_PERF");
            p && *p && std::string(p) != "0")
            o.perf = true;
        const auto shardSpec = [&](const char *s, const char *what) {
            if (!sim::parseShard(s, &o.shard)) {
                std::fprintf(stderr,
                             "invalid %s '%s' (want \"i/n\" with "
                             "0 <= i < n, e.g. \"0/2\")\n",
                             what, s);
                std::exit(2);
            }
        };
        if (const char *s = std::getenv("CONOPT_SHARD"); s && *s)
            shardSpec(s, "CONOPT_SHARD");
        const auto progressFdSpec = [&](const char *s, const char *what) {
            char *end = nullptr;
            errno = 0;
            const long v = std::strtol(s, &end, 10);
            if (end == s || *end != '\0' || errno == ERANGE || v < 0 ||
                v > (1 << 20)) {
                std::fprintf(stderr,
                             "invalid %s '%s' (want a non-negative "
                             "file descriptor number)\n",
                             what, s);
                std::exit(2);
            }
            o.progressFd = int(v);
        };
        if (const char *f = std::getenv("CONOPT_PROGRESS_FD"); f && *f)
            progressFdSpec(f, "CONOPT_PROGRESS_FD");
        const auto ipcSampleSpec = [&](const char *s, const char *what) {
            char *end = nullptr;
            errno = 0;
            const unsigned long long v = std::strtoull(s, &end, 10);
            if (end == s || *end != '\0' || errno == ERANGE) {
                std::fprintf(stderr,
                             "invalid %s '%s' (want a sampling stride "
                             "in retired instructions; 0 = off)\n",
                             what, s);
                std::exit(2);
            }
            o.ipcSampleInterval = uint64_t(v);
        };
        if (const char *s = std::getenv("CONOPT_IPC_SAMPLE"); s && *s)
            ipcSampleSpec(s, "CONOPT_IPC_SAMPLE");
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            const auto value = [&]() -> const char * {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s requires a value\n",
                                 a.c_str());
                    std::exit(2);
                }
                return argv[++i];
            };
            if (a == "--artifact-dir") {
                o.artifactDir = value();
            } else if (a == "--baseline") {
                o.baselinePath = value();
            } else if (a == "--shard") {
                shardSpec(value(), "--shard");
            } else if (a == "--result-cache") {
                o.resultCacheDir = value();
            } else if (a == "--progress") {
                o.progress = true;
            } else if (a == "--perf") {
                o.perf = true;
            } else if (a == "--ipc-sample-interval") {
                ipcSampleSpec(value(), "--ipc-sample-interval");
            } else if (a == "--progress-fd") {
                progressFdSpec(value(), "--progress-fd");
            } else if (a == "--tolerance") {
                const char *v = value();
                if (!sim::parseTolerance(v, &o.tolerance)) {
                    std::fprintf(stderr,
                                 "invalid --tolerance '%s' (want a "
                                 "finite non-negative number)\n",
                                 v);
                    std::exit(2);
                }
            } else if (a == "--no-artifact") {
                o.emitArtifact = false;
            } else if (!lenientArgs) {
                std::fprintf(stderr,
                             "unknown argument '%s' (flags: "
                             "--artifact-dir DIR, --baseline PATH, "
                             "--shard I/N, --result-cache DIR, "
                             "--perf, --ipc-sample-interval N, "
                             "--progress, --progress-fd FD, "
                             "--tolerance T, --no-artifact)\n",
                             a.c_str());
                std::exit(2);
            }
        }
        if (!o.resultCacheDir.empty())
            o.resultCache =
                std::make_shared<sim::ResultCache>(o.resultCacheDir);
        return o;
    }

    /** SweepRunner options carrying the shard, the persistent result
     *  cache, and the progress sinks: the human stderr printer (with
     *  --progress) and/or the machine-readable line protocol (with
     *  --progress-fd, one CONOPT-PROGRESS line per finished job). */
    sim::SweepOptions
    sweepOptions() const
    {
        sim::SweepOptions s;
        s.shard = shard;
        s.resultCache = resultCache;
        s.ipcSampleInterval = ipcSampleInterval;
        if (progressFd >= 0) {
            const int fd = progressFd;
            const bool human = progress;
            s.onProgress = [fd, human](const sim::SweepProgress &p) {
                if (human)
                    printProgress(p);
                sim::writeProgressLine(fd, p);
            };
        } else if (progress) {
            s.onProgress = printProgress;
        }
        return s;
    }

    /** Shard membership for benches that enumerate their own item
     *  lists instead of running a SweepRunner (table1_workloads,
     *  table2_config, micro_structures): item @p idx of the full list
     *  belongs to this process iff inShard(idx). */
    bool inShard(size_t idx) const { return shard.contains(idx); }
};

/** Parse the harness flags (exits 2 on a bad flag, so a typo fails
 *  before the sweep runs, not after minutes of simulation). Call first
 *  thing in main(); pass the result to finish()/finishSweep(). */
inline HarnessOptions
harnessInit(int argc, char **argv, bool lenientArgs = false)
{
    return HarnessOptions::parse(argc, argv, lenientArgs);
}

/**
 * Persist @p art as `BENCH_<bench>.json` (or `BENCH_<bench>
 * .shard<i>of<n>.json` for a sharded run) and apply the baseline gate.
 * Returns the bench binary's exit status: 0 on success, 1 when the
 * artifact cannot be written or the baseline comparison finds drift.
 */
inline int
finish(const std::string &benchName, sim::BenchArtifact art,
       const HarnessOptions &o)
{
    if (o.resultCache) {
        const auto cs = o.resultCache->stats();
        std::fprintf(stderr,
                     "[cache] %s: %llu hits, %llu misses, %llu stored",
                     o.resultCache->dir().c_str(),
                     (unsigned long long)cs.hits,
                     (unsigned long long)cs.misses,
                     (unsigned long long)cs.stores);
        if (cs.errors)
            std::fprintf(stderr, " (%llu corrupt)",
                         (unsigned long long)cs.errors);
        std::fprintf(stderr, "\n");
    }
    if (!o.emitArtifact)
        return 0;

    art.bench = benchName;
    std::string file = "BENCH_" + benchName;
    if (o.shard.active())
        file += ".shard" + std::to_string(o.shard.index) + "of" +
                std::to_string(o.shard.count);
    file += ".json";
    const std::string outPath =
        (std::filesystem::path(o.artifactDir) / file).string();
    std::string err;
    if (!art.save(outPath, &err)) {
        std::fprintf(stderr, "%s: cannot write artifact: %s\n",
                     benchName.c_str(), err.c_str());
        return 1;
    }
    std::fprintf(stderr, "[artifact] wrote %s (%zu jobs, %zu geomeans)\n",
                 outPath.c_str(), art.jobs.size(), art.geomeans.size());

    if (o.baselinePath.empty())
        return 0;
    if (o.shard.active()) {
        // A shard is a partial figure: gating it against a full
        // baseline would flag every other shard's jobs as missing.
        // The gate belongs to the merged artifact.
        std::fprintf(stderr,
                     "[artifact] shard %u/%u: baseline gate deferred; "
                     "merge the shard artifacts and run "
                     "conopt_bench_check %s <shard-dir>\n",
                     o.shard.index, o.shard.count,
                     o.baselinePath.c_str());
        return 0;
    }

    std::string basePath = o.baselinePath;
    std::error_code ec;
    if (std::filesystem::is_directory(basePath, ec)) {
        basePath =
            (std::filesystem::path(basePath) /
             ("BENCH_" + benchName + ".json"))
                .string();
        // A baseline *directory* gates whichever benches have seeds in
        // it; a bench without one is "not yet baselined", not a
        // failure (CONOPT_BASELINE_DIR is typically set globally). An
        // explicit --baseline <file> that is missing still errors.
        if (!std::filesystem::exists(basePath, ec)) {
            std::fprintf(stderr,
                         "[artifact] no baseline for %s in %s; gate "
                         "skipped\n",
                         benchName.c_str(), o.baselinePath.c_str());
            return 0;
        }
    }
    sim::BenchArtifact baseline;
    if (!sim::loadArtifact(basePath, &baseline, &err)) {
        std::fprintf(stderr, "%s: cannot load baseline: %s\n",
                     benchName.c_str(), err.c_str());
        return 1;
    }
    const auto cmp =
        sim::compareArtifacts(baseline, art, {o.tolerance});
    if (!cmp.ok) {
        std::fprintf(stderr,
                     "%s: BASELINE DRIFT vs %s (%zu difference%s):\n",
                     benchName.c_str(), basePath.c_str(),
                     cmp.diffs.size(), cmp.diffs.size() == 1 ? "" : "s");
        for (const auto &d : cmp.diffs)
            std::fprintf(stderr, "  %s\n", d.c_str());
        return 1;
    }
    std::fprintf(stderr, "[artifact] matches baseline %s\n",
                 basePath.c_str());
    return 0;
}

/** An artifact job that pins a preset machine configuration without
 *  running it: label = config = @p name, plus the config fingerprint.
 *  Used by benches whose regression unit is the experimental setup
 *  itself (table2_config, micro_structures). */
inline sim::ArtifactJob
configJob(const char *name, const pipeline::MachineConfig &cfg)
{
    sim::ArtifactJob j;
    j.label = name;
    j.config = name;
    j.configFingerprint = sim::configFingerprint(cfg);
    return j;
}

/** finish() for the common case: a sweep plus the figure's headline
 *  geomean columns (@p configs over @p baseConfig). A sharded run
 *  skips the geomeans: whole-figure aggregates cannot be computed
 *  from one shard's subset, so the merge contract defers them to
 *  `conopt_bench_check --recompute-geomeans` after merging. */
inline int
finishSweep(const std::string &benchName, const sim::SweepResult &res,
            const std::string &baseConfig,
            const std::vector<std::string> &configs,
            const HarnessOptions &o)
{
    auto art = sim::BenchArtifact::fromSweep(res);
    if (o.perf) {
        art.addPerf(res);
        printHostPercentiles(res);
    }
    // No-op unless --ipc-sample-interval armed sampling: gated runs
    // keep byte-identical artifacts.
    art.addIpcSamples(res);
    if (!o.shard.active()) {
        art.addGeomeans(res, baseConfig, configs);
        // The sweep-level distribution block. Sharded runs defer it
        // like the geomeans — a subset's percentiles are wrong for
        // the whole — and the shard merge recomputes it from the
        // per-job samples (loadArtifactOrShards).
        art.addDistributionFromJobs();
    }
    return finish(benchName, std::move(art), o);
}

} // namespace conopt::bench

#endif // CONOPT_BENCH_BENCH_COMMON_HH
