/**
 * @file
 * Reproduces Figure 12 of the paper: sensitivity to the value-feedback
 * transmission delay (0, 1, 5, 10 cycles).
 *
 * Paper-reported shape: essentially no change across delays -- a
 * physical register is either referenced by the optimizer for a long
 * time (so a few cycles of transmission latency are immaterial) or not
 * referenced at all.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    sim::SweepSpec spec;
    spec.allWorkloads().config("base",
                               pipeline::MachineConfig::baseline());
    sim::TableOptions t;
    t.title = "Figure 12: Value-feedback transmission delay";
    t.baselineConfig = "base";
    for (unsigned d : {0u, 1u, 5u, 10u}) {
        auto cfg = pipeline::MachineConfig::optimized();
        cfg.vfbDelay = d;
        const std::string name = "delay " + std::to_string(d);
        spec.config(name, cfg);
        t.configs.push_back(name);
    }

    sim::SweepRunner runner(hopts.sweepOptions());
    const auto res = runner.run(spec);
    t.rows = sim::TableOptions::Rows::PerSuite;
    t.colWidth = 10;
    sim::TableReporter(t).print(res);
    return bench::finishSweep("fig12_vfb_delay", res, t.baselineConfig,
                              t.configs, hopts);
}
