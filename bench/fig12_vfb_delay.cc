/**
 * @file
 * Reproduces Figure 12 of the paper: sensitivity to the value-feedback
 * transmission delay (0, 1, 5, 10 cycles).
 *
 * Paper-reported shape: essentially no change across delays -- a
 * physical register is either referenced by the optimizer for a long
 * time (so a few cycles of transmission latency are immaterial) or not
 * referenced at all.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main()
{
    const std::vector<unsigned> delays = {0, 1, 5, 10};
    const auto base_cfg = pipeline::MachineConfig::baseline();

    bench::header("Figure 12: Value-feedback transmission delay");
    std::printf("%-12s %10s %10s %10s %10s\n", "Suite", "delay 0",
                "delay 1", "delay 5", "delay 10");
    for (const auto &suite : workloads::suiteNames()) {
        std::vector<std::pair<const workloads::Workload *, uint64_t>> base;
        for (const auto *w : workloads::suiteWorkloads(suite))
            base.emplace_back(w, bench::runWorkload(*w, base_cfg)
                                     .stats.cycles);
        std::printf("%-12s", suite.c_str());
        for (unsigned d : delays) {
            auto cfg = pipeline::MachineConfig::optimized();
            cfg.vfbDelay = d;
            std::vector<double> speedups;
            for (const auto &[w, base_cycles] : base) {
                const auto r = bench::runWorkload(*w, cfg);
                speedups.push_back(double(base_cycles) /
                                   double(r.stats.cycles));
            }
            std::printf(" %10.3f", bench::geomean(speedups));
        }
        std::printf("\n");
    }
    return 0;
}
