/**
 * @file
 * Host-throughput benchmark (simperf): the first point on the repo's
 * perf trajectory. Not a paper figure — this measures how fast WE
 * simulate, not what the simulated machine does.
 *
 * A representative workload x machine grid (two SPECint, two SPECfp,
 * two mediabench kernels, each on the baseline and the optimized
 * machine) runs through the ordinary SweepRunner, and the artifact
 * records per-job host wall-seconds plus kips (simulated
 * kilo-instructions per host second). The aggregate kips number — all
 * simulated instructions over all host seconds — is the headline. CI
 * runs this on a Release build and uploads BENCH_simperf.json on every
 * push, non-gating: host perf is machine- and load-dependent, so it is
 * a trend to read across runs, never a pass/fail.
 *
 * Methodology notes:
 *   - perf recording is on unconditionally (this bench exists to
 *     measure it);
 *   - a result cache would replace simulation with artifact loading
 *     and make kips meaningless, so simperf refuses to run with one;
 *   - CONOPT_THREADS=1 gives the cleanest per-job numbers; the
 *     default parallel run still measures per-job wall time correctly
 *     (each job runs on one worker) but cores contend for memory
 *     bandwidth, which is representative of real sweep throughput;
 *   - with --baseline/CONOPT_BASELINE_DIR, the previous run's
 *     BENCH_simperf.json is loaded and per-job + aggregate kips
 *     deltas are printed. Informational only: the baseline is consumed
 *     by the delta report and never turned into a gate (a slow CI
 *     machine is not a regression);
 *   - --repeat N (simperf-only, stripped before the shared harness
 *     parser) runs the whole grid N times interleaved and reports the
 *     per-job MEDIAN simSeconds/hostSeconds/kips, so a noisy container
 *     can neither fake nor hide a perf leg's gain. Interleaving whole
 *     rounds (not N back-to-back runs per job) spreads host noise
 *     across every job equally; SimStats must be bit-identical across
 *     rounds (the simulator is deterministic) and simperf aborts if
 *     they are not.
 */

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <filesystem>

#include "bench/bench_common.hh"

using namespace conopt;

namespace {

/** Print per-job and aggregate kips vs a previous simperf artifact. */
void
printKipsDelta(const sim::BenchArtifact &prev, const sim::SweepResult &res)
{
    std::printf("\nkips vs previous run (informational, non-gating):\n");
    std::printf("%-14s %10s %10s %9s\n", "job", "prev", "now", "delta");
    double prevInsts = 0.0, prevSec = 0.0;
    double nowInsts = 0.0, nowSec = 0.0;
    for (const auto &r : res.all()) {
        const sim::ArtifactJob *match = nullptr;
        for (const auto &j : prev.jobs)
            if (j.label == r.job.label && j.kips > 0.0)
                match = &j;
        if (!match || r.kips <= 0.0) {
            std::printf("%-14s %10s %10.1f %9s\n", r.job.label.c_str(),
                        "-", r.kips, "-");
            continue;
        }
        std::printf("%-14s %10.1f %10.1f %+8.1f%%\n",
                    r.job.label.c_str(), match->kips, r.kips,
                    100.0 * (r.kips / match->kips - 1.0));
        prevInsts += double(match->instructions);
        prevSec += match->hostSeconds;
        nowInsts += double(r.sim.instructions);
        nowSec += r.simSeconds;
    }
    if (prevSec > 0.0 && nowSec > 0.0) {
        const double pk = prevInsts / prevSec / 1e3;
        const double nk = nowInsts / nowSec / 1e3;
        std::printf("%-14s %10.1f %10.1f %+8.1f%%  <- aggregate\n",
                    "TOTAL", pk, nk, 100.0 * (nk / pk - 1.0));
    }
}

/** Print host-seconds p50/p95/p99/max vs a previous simperf artifact's
 *  distribution block. Skipped silently when either side predates the
 *  block (older artifacts simply never grew one). */
void
printHostDistDelta(const sim::BenchArtifact &prev,
                   const sim::BenchArtifact &now)
{
    const auto &a = prev.hostDist;
    const auto &b = now.hostDist;
    if (!a.measured() || !b.measured())
        return;
    std::printf("\nhost-seconds distribution vs previous run "
                "(informational, non-gating):\n");
    std::printf("%-6s %10s %10s %9s\n", "pct", "prev", "now", "delta");
    const auto row = [](const char *name, double p, double n) {
        if (p > 0.0)
            std::printf("%-6s %10.4f %10.4f %+8.1f%%\n", name, p, n,
                        100.0 * (n / p - 1.0));
        else
            std::printf("%-6s %10.4f %10.4f %9s\n", name, p, n, "-");
    };
    row("p50", a.p50, b.p50);
    row("p95", a.p95, b.p95);
    row("p99", a.p99, b.p99);
    row("max", a.max, b.max);
}

/** Median of @p v (destructive); even sizes average the two middles. */
double
medianOf(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const size_t n = v.size();
    if (n == 0)
        return 0.0;
    if (n % 2 == 1)
        return v[n / 2];
    return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

} // namespace

int
main(int argc, char **argv)
{
    // --repeat N is simperf-local methodology, not part of the shared
    // RunOptions schema: strip it before the (strict) harness parser.
    int repeat = 1;
    std::vector<char *> args;
    args.reserve(size_t(argc));
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repeat") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "simperf: --repeat needs a count\n");
                return 2;
            }
            repeat = std::atoi(argv[++i]);
            if (repeat < 1) {
                std::fprintf(stderr,
                             "simperf: bad --repeat count '%s' (want "
                             ">= 1)\n",
                             argv[i]);
                return 2;
            }
        } else {
            args.push_back(argv[i]);
        }
    }
    int argCount = int(args.size());
    const bench::HarnessOptions hopts =
        bench::harnessInit(argCount, args.data());
    // Perf recording is unconditional here (the explicit addPerf call
    // below); no --perf needed.
    if (hopts.resultCache) {
        std::fprintf(stderr,
                     "simperf: refusing to run with a result cache: "
                     "cache hits measure the artifact loader, not the "
                     "simulator\n");
        return 2;
    }

    bench::header("simperf: host throughput (kips = simulated "
                  "kilo-insts / host second)");

    sim::SweepSpec spec;
    spec.workloads({"mcf", "gcc", "eqk", "art", "g721d", "untst"})
        .config("base", pipeline::MachineConfig::baseline())
        .config("opt", pipeline::MachineConfig::optimized());

    sim::SweepRunner runner(hopts.sweepOptions());

    // Run the whole grid `repeat` times, interleaved round by round,
    // then take per-job medians. One round is the plain simperf run.
    std::vector<sim::SweepResult> rounds;
    rounds.reserve(size_t(repeat));
    for (int round = 0; round < repeat; ++round) {
        rounds.push_back(runner.run(spec));
        if (repeat > 1) {
            double sec = 0.0;
            uint64_t insts = 0;
            for (const auto &r : rounds.back().all()) {
                sec += r.simSeconds;
                insts += r.sim.instructions;
            }
            std::printf("round %d/%d: %10.1f kips aggregate\n",
                        round + 1, repeat,
                        sec > 0.0 ? double(insts) / sec / 1e3 : 0.0);
        }
    }

    // The simulator is deterministic: every round must produce the
    // same simulated results, or the medians compare different work.
    const sim::SweepResult &first = rounds.front();
    for (const auto &rd : rounds) {
        for (size_t i = 0; i < first.size(); ++i) {
            if (rd.all()[i].sim.stats.cycles !=
                first.all()[i].sim.stats.cycles) {
                std::fprintf(stderr,
                             "simperf: job '%s' changed simulated "
                             "cycles between rounds — simulator is "
                             "non-deterministic\n",
                             first.all()[i].job.label.c_str());
                return 1;
            }
        }
    }

    // Per-job medians across rounds (repeat == 1: the round itself).
    sim::SweepResult res;
    for (size_t i = 0; i < first.size(); ++i) {
        sim::JobResult r = first.all()[i];
        std::vector<double> simS, hostS;
        simS.reserve(rounds.size());
        hostS.reserve(rounds.size());
        for (const auto &rd : rounds) {
            simS.push_back(rd.all()[i].simSeconds);
            hostS.push_back(rd.all()[i].hostSeconds);
        }
        r.simSeconds = medianOf(std::move(simS));
        r.hostSeconds = medianOf(std::move(hostS));
        r.kips = r.simSeconds > 0.0
                     ? double(r.sim.instructions) / r.simSeconds / 1e3
                     : 0.0;
        res.add(std::move(r));
    }

    if (repeat > 1)
        std::printf("\nper-job medians over %d interleaved rounds:\n",
                    repeat);
    std::printf("%-14s %14s %12s %10s\n", "job", "insts", "host s",
                "kips");
    double totalSec = 0.0;
    uint64_t totalInsts = 0;
    for (const auto &r : res.all()) {
        std::printf("%-14s %14" PRIu64 " %12.4f %10.1f\n",
                    r.job.label.c_str(), r.sim.instructions,
                    r.simSeconds, r.kips);
        totalSec += r.simSeconds;
        totalInsts += r.sim.instructions;
    }
    if (totalSec > 0.0) {
        std::printf("%-14s %14" PRIu64 " %12.4f %10.1f  <- aggregate\n",
                    "TOTAL", totalInsts, totalSec,
                    double(totalInsts) / totalSec / 1e3);
    }

    bench::printHostPercentiles(res);

    auto art = sim::BenchArtifact::fromSweep(res);
    art.addPerf(res);
    art.addIpcSamples(res);
    if (!hopts.run.shard.active())
        art.addDistributionFromJobs();

    // Host-throughput comparison against the previous run's artifact.
    // The baseline is consumed here and cleared before finish(): host
    // perf is machine- and load-dependent, so simperf never gates.
    bench::HarnessOptions opts = hopts;
    if (!opts.run.baselinePath.empty()) {
        namespace fs = std::filesystem;
        std::string prevPath = opts.run.baselinePath;
        std::error_code ec;
        if (fs::is_directory(prevPath, ec))
            prevPath =
                (fs::path(prevPath) / "BENCH_simperf.json").string();
        sim::BenchArtifact prev;
        std::string err;
        if (!fs::exists(prevPath, ec)) {
            std::fprintf(stderr,
                         "[perf] no previous BENCH_simperf.json at %s; "
                         "kips delta skipped\n",
                         prevPath.c_str());
        } else if (!sim::loadArtifact(prevPath, &prev, &err)) {
            std::fprintf(stderr,
                         "[perf] cannot load %s: %s; kips delta "
                         "skipped\n",
                         prevPath.c_str(), err.c_str());
        } else {
            printKipsDelta(prev, res);
            printHostDistDelta(prev, art);
        }
        opts.run.baselinePath.clear();
    }

    return bench::finish("simperf", std::move(art), opts);
}
