/**
 * @file
 * Reproduces Table 1 of the paper: the experimental workload and its
 * dynamic instruction counts. The paper simulated the real SPEC2000 and
 * mediabench binaries (96M-1000M instructions); this repository runs
 * scaled synthetic kernels, so the table reports both the paper's count
 * and ours, plus the checksum that pins functional behaviour.
 *
 * This is a functional (emulator-only) run, so it uses the sweep
 * subsystem's program cache rather than a timing sweep.
 */

#include <cinttypes>

#include "bench/bench_common.hh"
#include "src/arch/emulator.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    bench::header("Table 1: Experimental Workload");
    std::printf("%-10s %-12s %38s %12s %10s\n", "App.", "Type", "Name",
                "Paper insts", "Our insts");

    // Functional runs have no timing, so the artifact's regression
    // units are the dynamic instruction count and the memory checksum
    // of every workload (cycles stay 0).
    sim::BenchArtifact art;
    art.scale = sim::envScale();
    art.threads = sim::envThreads();

    sim::ProgramCache cache;
    size_t idx = 0;
    for (const auto &w : workloads::allWorkloads()) {
        // Emulator loop, not a SweepRunner: apply the same round-robin
        // shard partition by position in the full workload list.
        if (!hopts.inShard(idx++))
            continue;
        const unsigned scale = w.defaultScale * sim::envScale();
        const auto program = cache.get(w.name, scale);
        arch::Emulator emu(*program);
        emu.run();
        if (!emu.halted()) {
            std::printf("%-10s DID NOT HALT\n", w.name.c_str());
            return 1;
        }
        const uint64_t checksum =
            emu.memory().readQuad(workloads::checksumAddr);
        std::printf("%-10s %-12s %38s %10uM %10" PRIu64
                    "  (checksum 0x%" PRIx64 ")\n",
                    w.name.c_str(), w.suite.c_str(), w.fullName.c_str(),
                    w.paperInstsM, emu.instCount(), checksum);

        sim::ArtifactJob j;
        j.label = w.name + "/emu";
        j.workload = w.name;
        j.suite = w.suite;
        j.config = "emu";
        j.scale = scale;
        j.instructions = emu.instCount();
        j.halted = true;
        j.checksum = checksum;
        art.jobs.push_back(std::move(j));
    }
    return bench::finish("table1_workloads", std::move(art), hopts);
}
