/**
 * @file
 * Reproduces Table 1 of the paper: the experimental workload and its
 * dynamic instruction counts. The paper simulated the real SPEC2000 and
 * mediabench binaries (96M-1000M instructions); this repository runs
 * scaled synthetic kernels, so the table reports both the paper's count
 * and ours, plus the checksum that pins functional behaviour.
 *
 * The run itself (a functional emulator pass over every workload) lives
 * in the bench registry (src/sim/bench_registry.hh) so conopt_served
 * serves the identical artifact; this binary prints the human table
 * from the built artifact and applies the save + baseline gate.
 */

#include <cinttypes>

#include "bench/bench_common.hh"
#include "src/sim/bench_registry.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    bench::header("Table 1: Experimental Workload");
    std::printf("%-10s %-12s %38s %12s %10s\n", "App.", "Type", "Name",
                "Paper insts", "Our insts");

    const sim::BenchDef *def = sim::findBench("table1_workloads");
    sim::BenchArtifact art;
    std::string err;
    if (!def->build(hopts.run, sim::BenchContext{}, &art, &err)) {
        std::printf("%s\n", err.c_str());
        return 1;
    }
    for (const auto &j : art.jobs) {
        const auto *w = workloads::findWorkload(j.workload);
        std::printf("%-10s %-12s %38s %10uM %10" PRIu64
                    "  (checksum 0x%" PRIx64 ")\n",
                    j.workload.c_str(), j.suite.c_str(),
                    w->fullName.c_str(), w->paperInstsM, j.instructions,
                    j.checksum);
    }
    return bench::finish("table1_workloads", std::move(art), hopts);
}
