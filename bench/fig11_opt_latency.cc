/**
 * @file
 * Reproduces Figure 11 of the paper: sensitivity to the number of extra
 * pipeline stages the optimizer adds (0, 2, 4).
 *
 * Paper-reported shape: performance degrades gracefully with optimizer
 * latency; even at four extra stages the average speedup stays between
 * 1.04 and 1.10 per suite.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    sim::SweepSpec spec;
    spec.allWorkloads().config("base",
                               pipeline::MachineConfig::baseline());
    sim::TableOptions t;
    t.title = "Figure 11: Optimizer latency sensitivity";
    t.baselineConfig = "base";
    for (unsigned d : {0u, 2u, 4u}) {
        auto oc = core::OptimizerConfig::full();
        oc.extraStages = d;
        const std::string name =
            "delay " + std::to_string(d) + (d == 2 ? " (default)" : "");
        spec.config(name, pipeline::MachineConfig::withOptimizer(oc));
        t.configs.push_back(name);
    }

    sim::SweepRunner runner(hopts.sweepOptions());
    const auto res = runner.run(spec);
    t.rows = sim::TableOptions::Rows::PerSuite;
    t.colWidth = 18;
    sim::TableReporter(t).print(res);
    return bench::finishSweep("fig11_opt_latency", res, t.baselineConfig,
                              t.configs, hopts);
}
