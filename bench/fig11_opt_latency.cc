/**
 * @file
 * Reproduces Figure 11 of the paper: sensitivity to the number of extra
 * pipeline stages the optimizer adds (0, 2, 4).
 *
 * Paper-reported shape: performance degrades gracefully with optimizer
 * latency; even at four extra stages the average speedup stays between
 * 1.04 and 1.10 per suite.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main()
{
    const std::vector<unsigned> delays = {0, 2, 4};
    const auto base_cfg = pipeline::MachineConfig::baseline();

    bench::header("Figure 11: Optimizer latency sensitivity");
    std::printf("%-12s %12s %20s %12s\n", "Suite", "delay 0",
                "delay 2 (default)", "delay 4");
    for (const auto &suite : workloads::suiteNames()) {
        std::vector<std::pair<const workloads::Workload *, uint64_t>> base;
        for (const auto *w : workloads::suiteWorkloads(suite))
            base.emplace_back(w, bench::runWorkload(*w, base_cfg)
                                     .stats.cycles);
        std::printf("%-12s", suite.c_str());
        for (unsigned d : delays) {
            auto oc = core::OptimizerConfig::full();
            oc.extraStages = d;
            const auto cfg = pipeline::MachineConfig::withOptimizer(oc);
            std::vector<double> speedups;
            for (const auto &[w, base_cycles] : base) {
                const auto r = bench::runWorkload(*w, cfg);
                speedups.push_back(double(base_cycles) /
                                   double(r.stats.cycles));
            }
            const double g = bench::geomean(speedups);
            if (d == 0)
                std::printf(" %12.3f", g);
            else if (d == 2)
                std::printf(" %20.3f", g);
            else
                std::printf(" %12.3f", g);
        }
        std::printf("\n");
    }
    return 0;
}
