/**
 * @file
 * google-benchmark microbenchmarks of the optimizer's hardware
 * structures as simulated: symbolic-RAT rename throughput, MBC
 * lookup/insert, branch predictor, cache hierarchy, and end-to-end
 * simulation rate. These measure the *simulator*, complementing the
 * table/figure harnesses that measure the *simulated machine*.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.hh"
#include "src/arch/emulator.hh"
#include "src/branch/branch_predictor.hh"
#include "src/cache/cache.hh"
#include "src/core/mbc.hh"
#include "src/core/optimizer.hh"
#include "src/pipeline/ooo_core.hh"
#include "src/pipeline/phys_reg_file.hh"
#include "src/sim/sweep.hh"
#include "src/util/rng.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

namespace {

void
BM_SymbolicResolve(benchmark::State &state)
{
    pipeline::PhysRegFile prf(64);
    const core::PhysRegId p = prf.alloc();
    prf.setOracle(p, 42);
    prf.setVfbAt(p, 10);
    const auto sym = core::SymbolicValue::expr(p, 2, 100);
    uint64_t cycle = 0;
    for (auto _ : state) {
        auto v = sym.resolve(prf, cycle + 11);
        benchmark::DoNotOptimize(v);
        ++cycle;
    }
}
BENCHMARK(BM_SymbolicResolve);

void
BM_MbcLookupInsert(benchmark::State &state)
{
    pipeline::PhysRegFile iprf(512), fprf(64);
    core::MemoryBypassCache mbc({128, 4}, iprf, fprf);
    const core::PhysRegId p = iprf.alloc();
    Rng rng(7);
    for (auto _ : state) {
        const uint64_t addr = (rng.next() & 0xffff) * 8;
        const auto *e = mbc.lookup(addr, 8, false);
        benchmark::DoNotOptimize(e);
        if (!e)
            mbc.insert(addr, 8, core::SymbolicValue::expr(p), true, 0);
    }
}
BENCHMARK(BM_MbcLookupInsert);

void
BM_BranchPredictor(benchmark::State &state)
{
    branch::BranchPredictor bp(branch::PredictorConfig{});
    isa::Instruction br;
    br.op = isa::Opcode::BNE;
    Rng rng(13);
    for (auto _ : state) {
        const uint64_t pc = 0x10000 + (rng.next() & 0xfff) * 4;
        auto pred = bp.predict(pc, br, pc + 4);
        bp.update(pc, br, pred, rng.nextBool(0.7), pc + 64);
        benchmark::DoNotOptimize(pred);
    }
}
BENCHMARK(BM_BranchPredictor);

void
BM_CacheHierarchy(benchmark::State &state)
{
    cache::Hierarchy hier{};
    Rng rng(17);
    for (auto _ : state) {
        const unsigned lat = hier.accessData(rng.next() & 0xfffff);
        benchmark::DoNotOptimize(lat);
    }
}
BENCHMARK(BM_CacheHierarchy);

/** End-to-end simulation rate (simulated instructions per second). */
void
BM_SimulationRate(benchmark::State &state)
{
    sim::ProgramCache cache;
    const auto program = cache.get("untst", 1);
    const auto cfg = state.range(0)
                         ? pipeline::MachineConfig::optimized()
                         : pipeline::MachineConfig::baseline();
    uint64_t insts = 0;
    for (auto _ : state) {
        arch::Emulator emu(*program);
        pipeline::OooCore core(cfg, emu);
        core.run();
        insts += emu.instCount();
    }
    state.counters["insts/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulationRate)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/** SweepRunner engine overhead and scaling: a small workload x config
 *  cross product at 1..N worker threads (Arg = thread count). */
void
BM_SweepEngine(benchmark::State &state)
{
    sim::ProgramCache cache;
    sim::SweepOptions opts;
    opts.run.threads = unsigned(state.range(0));
    opts.cache = &cache;

    sim::SweepSpec spec;
    spec.workloads({"untst", "g721d"})
        .config("base", pipeline::MachineConfig::baseline())
        .config("opt", pipeline::MachineConfig::optimized());

    uint64_t jobs = 0;
    for (auto _ : state) {
        sim::SweepRunner runner(opts);
        const auto res = runner.run(spec);
        jobs += res.size();
        benchmark::DoNotOptimize(res.all().data());
    }
    state.counters["jobs/s"] =
        benchmark::Counter(double(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepEngine)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

// Expanded BENCHMARK_MAIN() so this binary joins the artifact stream.
// Host-side timings are machine-dependent, so the artifact carries no
// timing jobs -- only the fingerprints of the structures' simulated
// configurations, which pins the experimental setup like table2 does.
int
main(int argc, char **argv)
{
    // Fail fast on bad gate flags, like every other bench binary
    // (lenient: the remaining args belong to google-benchmark).
    const conopt::bench::HarnessOptions hopts =
        conopt::bench::harnessInit(argc, argv, /*lenientArgs=*/true);

    // Split argv: the harness gate flags are ours; everything else
    // belongs to google-benchmark, including its typo detection
    // (ReportUnrecognizedArguments), which BENCHMARK_MAIN() normally
    // provides and must not be lost here.
    std::vector<char *> bmArgs;
    bmArgs.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--artifact-dir" || a == "--baseline" ||
            a == "--tolerance" || a == "--shard" ||
            a == "--result-cache") {
            ++i;
            continue;
        }
        if (a == "--no-artifact" || a == "--progress")
            continue;
        bmArgs.push_back(argv[i]);
    }
    int bmArgc = int(bmArgs.size());
    benchmark::Initialize(&bmArgc, bmArgs.data());
    if (benchmark::ReportUnrecognizedArguments(bmArgc, bmArgs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    sim::BenchArtifact art;
    art.scale = sim::envScale();
    // Positional shard partition over the pinned-config list, matching
    // the sweep engine's round-robin convention. Only the artifact
    // records are partitioned: the google-benchmark measurements are
    // host timings, not sweep jobs, and run in full on every shard
    // (use --benchmark_filter to split those).
    if (hopts.inShard(0))
        art.jobs.push_back(conopt::bench::configJob(
            "baseline", pipeline::MachineConfig::baseline()));
    if (hopts.inShard(1))
        art.jobs.push_back(conopt::bench::configJob(
            "optimized", pipeline::MachineConfig::optimized()));
    return conopt::bench::finish("micro_structures", std::move(art),
                                 hopts);
}
