/**
 * @file
 * Ablation studies beyond the paper's figures, exercising the design
 * choices sections 2.1-3.2 call out:
 *
 *   - each optimization family disabled in turn (CP/RA, RLE/SF, branch
 *     inference, strength reduction, move elimination)
 *   - MBC capacity sweep (32 / 64 / 128 / 256 entries)
 *   - flush-on-unknown-store vs. speculate (the paper reports "little
 *     difference" between the two)
 */

#include "bench/bench_common.hh"

using namespace conopt;

namespace {

double
suiteGeomean(const pipeline::MachineConfig &cfg,
             const bench::CycleMap &base)
{
    std::vector<double> speedups;
    for (const auto &w : workloads::allWorkloads()) {
        const auto r = bench::runWorkload(w, cfg);
        speedups.push_back(double(base.at(w.name)) /
                           double(r.stats.cycles));
    }
    return bench::geomean(speedups);
}

} // namespace

int
main()
{
    const auto base = bench::runAll(pipeline::MachineConfig::baseline());

    bench::header("Ablation: optimization families (all-workload geomean "
                  "speedup)");
    struct Variant
    {
        const char *name;
        core::OptimizerConfig oc;
    };
    std::vector<Variant> variants;
    variants.push_back({"full optimizer", core::OptimizerConfig::full()});
    {
        auto oc = core::OptimizerConfig::full();
        oc.enableRleSf = false;
        variants.push_back({"without RLE/SF", oc});
    }
    {
        auto oc = core::OptimizerConfig::full();
        oc.enableValueFeedback = false;
        variants.push_back({"without value feedback", oc});
    }
    {
        auto oc = core::OptimizerConfig::full();
        oc.enableBranchInference = false;
        variants.push_back({"without branch inference", oc});
    }
    {
        auto oc = core::OptimizerConfig::full();
        oc.enableStrengthReduction = false;
        variants.push_back({"without strength reduction", oc});
    }
    {
        auto oc = core::OptimizerConfig::full();
        oc.enableMoveElim = false;
        variants.push_back({"without move elimination", oc});
    }
    variants.push_back(
        {"feedback only", core::OptimizerConfig::feedbackOnly()});

    for (const auto &v : variants) {
        const auto cfg = pipeline::MachineConfig::withOptimizer(v.oc);
        std::printf("  %-28s %.3f\n", v.name, suiteGeomean(cfg, base));
    }

    bench::header("Ablation: Memory Bypass Cache capacity");
    for (unsigned entries : {32u, 64u, 128u, 256u}) {
        auto oc = core::OptimizerConfig::full();
        oc.mbc.entries = entries;
        const auto cfg = pipeline::MachineConfig::withOptimizer(oc);
        std::printf("  %3u entries: %.3f\n", entries,
                    suiteGeomean(cfg, base));
    }

    bench::header("Ablation: unknown-address store policy");
    {
        const auto spec = pipeline::MachineConfig::optimized();
        auto oc = core::OptimizerConfig::full();
        oc.mbcFlushOnUnknownStore = true;
        const auto flush = pipeline::MachineConfig::withOptimizer(oc);
        std::printf("  speculate (default): %.3f\n",
                    suiteGeomean(spec, base));
        std::printf("  flush MBC:           %.3f\n",
                    suiteGeomean(flush, base));
    }
    return 0;
}
