/**
 * @file
 * Ablation studies beyond the paper's figures, exercising the design
 * choices sections 2.1-3.2 call out:
 *
 *   - each optimization family disabled in turn (CP/RA, RLE/SF, branch
 *     inference, strength reduction, move elimination)
 *   - MBC capacity sweep (32 / 64 / 128 / 256 entries)
 *   - flush-on-unknown-store vs. speculate (the paper reports "little
 *     difference" between the two)
 *
 * All variants run as a single parallel sweep; every workload program
 * is assembled once and shared across the ~12 configurations.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    sim::SweepSpec spec;
    spec.allWorkloads().config("base",
                               pipeline::MachineConfig::baseline());

    // Optimization families.
    std::vector<std::string> family_cols;
    const auto family = [&](const char *name, core::OptimizerConfig oc) {
        spec.config(name, pipeline::MachineConfig::withOptimizer(oc));
        family_cols.push_back(name);
    };
    family("full optimizer", core::OptimizerConfig::full());
    {
        auto oc = core::OptimizerConfig::full();
        oc.enableRleSf = false;
        family("without RLE/SF", oc);
    }
    {
        auto oc = core::OptimizerConfig::full();
        oc.enableValueFeedback = false;
        family("without value feedback", oc);
    }
    {
        auto oc = core::OptimizerConfig::full();
        oc.enableBranchInference = false;
        family("without branch inference", oc);
    }
    {
        auto oc = core::OptimizerConfig::full();
        oc.enableStrengthReduction = false;
        family("without strength reduction", oc);
    }
    {
        auto oc = core::OptimizerConfig::full();
        oc.enableMoveElim = false;
        family("without move elimination", oc);
    }
    family("feedback only", core::OptimizerConfig::feedbackOnly());

    // MBC capacity.
    std::vector<std::string> mbc_cols;
    for (unsigned entries : {32u, 64u, 128u, 256u}) {
        auto oc = core::OptimizerConfig::full();
        oc.mbc.entries = entries;
        const std::string name = std::to_string(entries) + " entries";
        spec.config(name, pipeline::MachineConfig::withOptimizer(oc));
        mbc_cols.push_back(name);
    }

    // Unknown-address store policy.
    spec.config("speculate (default)",
                pipeline::MachineConfig::optimized());
    {
        auto oc = core::OptimizerConfig::full();
        oc.mbcFlushOnUnknownStore = true;
        spec.config("flush MBC",
                    pipeline::MachineConfig::withOptimizer(oc));
    }

    sim::SweepRunner runner(hopts.sweepOptions());
    const auto res = runner.run(spec);

    const auto table = [&](const char *title,
                           std::vector<std::string> cols,
                           unsigned width) {
        sim::TableOptions t;
        t.title = title;
        t.baselineConfig = "base";
        t.configs = std::move(cols);
        t.rows = sim::TableOptions::Rows::AllWorkloads;
        t.colWidth = width;
        sim::TableReporter(t).print(res);
    };
    table("Ablation: optimization families (all-workload geomean "
          "speedup)",
          family_cols, 28);
    table("Ablation: Memory Bypass Cache capacity", mbc_cols, 12);
    table("Ablation: unknown-address store policy",
          {"speculate (default)", "flush MBC"}, 20);

    auto art = sim::BenchArtifact::fromSweep(res);
    // Per the merge contract, a shard defers its whole-figure geomeans
    // to the post-merge recompute step.
    if (!hopts.run.shard.active()) {
        art.addGeomeans(res, "base", family_cols);
        art.addGeomeans(res, "base", mbc_cols);
        art.addGeomeans(res, "base",
                        {"speculate (default)", "flush MBC"});
    }
    return bench::finish("ablations", std::move(art), hopts);
}
