/**
 * @file
 * Reproduces Table 2 of the paper: the simulated machine configuration,
 * as actually instantiated by this repository's timing model. The
 * preset fingerprints come from the bench registry
 * (src/sim/bench_registry.hh) — the same artifact conopt_served
 * serves — so any silent change to the experimental setup (Table 2
 * itself) trips the baseline gate.
 */

#include "bench/bench_common.hh"
#include "src/sim/bench_registry.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    bench::header("Table 2: Simulated Machine Configuration (baseline)");
    std::printf("%s", pipeline::MachineConfig::baseline().describe().c_str());
    bench::header("Table 2: with continuous optimizer");
    std::printf("%s",
                pipeline::MachineConfig::optimized().describe().c_str());

    const sim::BenchDef *def = sim::findBench("table2_config");
    sim::BenchArtifact art;
    std::string err;
    if (!def->build(hopts.run, sim::BenchContext{}, &art, &err)) {
        std::fprintf(stderr, "table2_config: %s\n", err.c_str());
        return 1;
    }
    return bench::finish("table2_config", std::move(art), hopts);
}
