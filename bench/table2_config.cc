/**
 * @file
 * Reproduces Table 2 of the paper: the simulated machine configuration,
 * as actually instantiated by this repository's timing model.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    bench::header("Table 2: Simulated Machine Configuration (baseline)");
    std::printf("%s", pipeline::MachineConfig::baseline().describe().c_str());
    bench::header("Table 2: with continuous optimizer");
    std::printf("%s",
                pipeline::MachineConfig::optimized().describe().c_str());

    // No simulation here; the artifact pins the fingerprints of every
    // preset machine, so any silent change to the experimental setup
    // (Table 2 itself) trips the baseline gate.
    sim::BenchArtifact art;
    art.scale = sim::envScale();
    size_t idx = 0;
    const auto preset = [&](const char *name,
                            const pipeline::MachineConfig &cfg) {
        // Positional shard partition over the preset list, matching
        // the sweep engine's round-robin convention.
        if (hopts.inShard(idx++))
            art.jobs.push_back(bench::configJob(name, cfg));
    };
    preset("baseline", pipeline::MachineConfig::baseline());
    preset("optimized", pipeline::MachineConfig::optimized());
    preset("fetch_bound", pipeline::MachineConfig::fetchBound(false));
    preset("fetch_bound_opt", pipeline::MachineConfig::fetchBound(true));
    preset("exec_bound", pipeline::MachineConfig::execBound(false));
    preset("exec_bound_opt", pipeline::MachineConfig::execBound(true));
    return bench::finish("table2_config", std::move(art), hopts);
}
