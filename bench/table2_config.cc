/**
 * @file
 * Reproduces Table 2 of the paper: the simulated machine configuration,
 * as actually instantiated by this repository's timing model.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main()
{
    bench::header("Table 2: Simulated Machine Configuration (baseline)");
    std::printf("%s", pipeline::MachineConfig::baseline().describe().c_str());
    bench::header("Table 2: with continuous optimizer");
    std::printf("%s",
                pipeline::MachineConfig::optimized().describe().c_str());
    return 0;
}
