/**
 * @file
 * Reproduces Figure 9 of the paper: value feedback alone versus value
 * feedback plus optimization, per suite.
 *
 * Paper-reported shape: "feedback alone offers little in terms of
 * performance" (roughly 1.00-1.02); feedback+optimization reaches up to
 * ~1.14 per suite. Optimization projects the usefulness of old values
 * into the future, which bare feedback cannot do.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    sim::SweepSpec spec;
    spec.allWorkloads()
        .config("base", pipeline::MachineConfig::baseline())
        .config("feedback", pipeline::MachineConfig::withOptimizer(
                                core::OptimizerConfig::feedbackOnly()))
        .config("feedback+opt", pipeline::MachineConfig::optimized());

    sim::SweepRunner runner(hopts.sweepOptions());
    const auto res = runner.run(spec);

    sim::TableOptions t;
    t.title = "Figure 9: Continuous optimization vs. value feedback";
    t.baselineConfig = "base";
    t.configs = {"feedback", "feedback+opt"};
    t.rows = sim::TableOptions::Rows::PerSuite;
    t.colWidth = 14;
    sim::TableReporter(t).print(res);
    return bench::finishSweep("fig9_feedback", res, t.baselineConfig,
                              t.configs, hopts);
}
