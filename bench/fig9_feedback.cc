/**
 * @file
 * Reproduces Figure 9 of the paper: value feedback alone versus value
 * feedback plus optimization, per suite.
 *
 * Paper-reported shape: "feedback alone offers little in terms of
 * performance" (roughly 1.00-1.02); feedback+optimization reaches up to
 * ~1.14 per suite. Optimization projects the usefulness of old values
 * into the future, which bare feedback cannot do.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main()
{
    const auto base_cfg = pipeline::MachineConfig::baseline();
    const auto fb_cfg = pipeline::MachineConfig::withOptimizer(
        core::OptimizerConfig::feedbackOnly());
    const auto full_cfg = pipeline::MachineConfig::optimized();

    bench::header("Figure 9: Continuous optimization vs. value feedback");
    std::printf("%-12s %12s %16s\n", "Suite", "feedback",
                "feedback+opt");
    for (const auto &suite : workloads::suiteNames()) {
        std::vector<double> fb, full;
        for (const auto *w : workloads::suiteWorkloads(suite)) {
            const auto program = w->build(w->defaultScale *
                                          bench::envScale());
            const uint64_t base =
                sim::simulate(program, base_cfg).stats.cycles;
            fb.push_back(double(base) /
                         double(sim::simulate(program, fb_cfg)
                                    .stats.cycles));
            full.push_back(double(base) /
                           double(sim::simulate(program, full_cfg)
                                      .stats.cycles));
        }
        std::printf("%-12s %12.3f %16.3f\n", suite.c_str(),
                    bench::geomean(fb), bench::geomean(full));
    }
    return 0;
}
