/**
 * @file
 * Reproduces Figure 10 of the paper: the importance of processing
 * dependent instructions in parallel inside a rename bundle.
 *
 * Four configurations: depth 0 (default: no chained additions within a
 * bundle), depth 1, depth 3, and depth 3 with one chained memory
 * operation.
 *
 * Paper-reported shape: SPECint and SPECfp gain very little from deeper
 * chains; mediabench gains noticeably (1.11 -> 1.25 between depth 0 and
 * depth 3); the extra chained memory operation adds nothing.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    struct Variant
    {
        const char *name;
        unsigned depth;
        bool chained_mem;
    };
    const std::vector<Variant> variants = {
        {"depth 0 (default)", 0, false},
        {"depth 1", 1, false},
        {"depth 3", 3, false},
        {"depth 3 & 1 mem", 3, true},
    };

    sim::SweepSpec spec;
    spec.allWorkloads().config("base",
                               pipeline::MachineConfig::baseline());
    sim::TableOptions t;
    t.title = "Figure 10: Intra-bundle dependence depth";
    t.baselineConfig = "base";
    for (const auto &v : variants) {
        auto oc = core::OptimizerConfig::full();
        oc.addChainDepth = v.depth;
        oc.allowChainedMem = v.chained_mem;
        spec.config(v.name, pipeline::MachineConfig::withOptimizer(oc));
        t.configs.push_back(v.name);
    }

    sim::SweepRunner runner(hopts.sweepOptions());
    const auto res = runner.run(spec);
    t.rows = sim::TableOptions::Rows::PerSuite;
    t.colWidth = 18;
    sim::TableReporter(t).print(res);
    return bench::finishSweep("fig10_depth", res, t.baselineConfig,
                              t.configs, hopts);
}
