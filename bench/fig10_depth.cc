/**
 * @file
 * Reproduces Figure 10 of the paper: the importance of processing
 * dependent instructions in parallel inside a rename bundle.
 *
 * Four configurations: depth 0 (default: no chained additions within a
 * bundle), depth 1, depth 3, and depth 3 with one chained memory
 * operation.
 *
 * Paper-reported shape: SPECint and SPECfp gain very little from deeper
 * chains; mediabench gains noticeably (1.11 -> 1.25 between depth 0 and
 * depth 3); the extra chained memory operation adds nothing.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main()
{
    struct Variant
    {
        const char *name;
        unsigned depth;
        bool chained_mem;
    };
    const std::vector<Variant> variants = {
        {"depth 0 (default)", 0, false},
        {"depth 1", 1, false},
        {"depth 3", 3, false},
        {"depth 3 & 1 mem", 3, true},
    };
    const auto base_cfg = pipeline::MachineConfig::baseline();

    bench::header("Figure 10: Intra-bundle dependence depth");
    std::printf("%-12s", "Suite");
    for (const auto &v : variants)
        std::printf(" %18s", v.name);
    std::printf("\n");

    for (const auto &suite : workloads::suiteNames()) {
        // Baseline cycles.
        std::vector<std::pair<const workloads::Workload *, uint64_t>> base;
        for (const auto *w : workloads::suiteWorkloads(suite))
            base.emplace_back(w, bench::runWorkload(*w, base_cfg)
                                     .stats.cycles);
        std::printf("%-12s", suite.c_str());
        for (const auto &v : variants) {
            auto oc = core::OptimizerConfig::full();
            oc.addChainDepth = v.depth;
            oc.allowChainedMem = v.chained_mem;
            const auto cfg = pipeline::MachineConfig::withOptimizer(oc);
            std::vector<double> speedups;
            for (const auto &[w, base_cycles] : base) {
                const auto r = bench::runWorkload(*w, cfg);
                speedups.push_back(double(base_cycles) /
                                   double(r.stats.cycles));
            }
            std::printf(" %18.3f", bench::geomean(speedups));
        }
        std::printf("\n");
    }
    return 0;
}
