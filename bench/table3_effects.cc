/**
 * @file
 * Reproduces Table 3 of the paper: the effects of continuous
 * optimization per benchmark suite.
 *
 * Paper-reported values (suite averages):
 *   exec. early:          SPECint 20.0%, SPECfp 28.6%, mediabench 33.5%
 *   recov. mispred. brs.: SPECint 10.5%, SPECfp 17.5%, mediabench 13.5%
 *   ld/st addr. gen:      SPECint 56.2%, SPECfp 71.2%, mediabench 84%
 *   lds removed:          SPECint  5.5%, SPECfp 21.7%, mediabench 47.2%
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    sim::SweepSpec spec;
    spec.allWorkloads().config("opt",
                               pipeline::MachineConfig::optimized());

    sim::SweepRunner runner(hopts.sweepOptions());
    const auto res = runner.run(spec);

    bench::header("Table 3: Effects of continuous optimization");
    sim::EffectsReporter("opt").print(res);
    // Single-config sweep: no speedup columns, but every per-workload
    // cycle count and optimizer counter is persisted and gated.
    return bench::finish("table3_effects",
                         sim::BenchArtifact::fromSweep(res), hopts);
}
