/**
 * @file
 * Reproduces Table 3 of the paper: the effects of continuous
 * optimization per benchmark suite.
 *
 * Paper-reported values (suite averages):
 *   exec. early:          SPECint 20.0%, SPECfp 28.6%, mediabench 33.5%
 *   recov. mispred. brs.: SPECint 10.5%, SPECfp 17.5%, mediabench 13.5%
 *   ld/st addr. gen:      SPECint 56.2%, SPECfp 71.2%, mediabench 84%
 *   lds removed:          SPECint  5.5%, SPECfp 21.7%, mediabench 47.2%
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main()
{
    const auto opt_cfg = pipeline::MachineConfig::optimized();

    bench::header("Table 3: Effects of continuous optimization");
    std::printf("%-12s %12s %18s %16s %12s\n", "Benchmark", "exec. early",
                "recov. mispred.", "ld/st addr. gen", "lds removed");

    std::vector<double> all_early, all_recov, all_addr, all_lds;
    for (const auto &suite : workloads::suiteNames()) {
        std::vector<double> early, recov, addr, lds;
        for (const auto *w : workloads::suiteWorkloads(suite)) {
            const auto r = bench::runWorkload(*w, opt_cfg);
            early.push_back(r.stats.execEarlyFrac());
            recov.push_back(r.stats.recoveredMispredFrac());
            addr.push_back(r.stats.addrGenFrac());
            lds.push_back(r.stats.loadsRemovedFrac());
        }
        std::printf("%-12s %11.1f%% %17.1f%% %15.1f%% %11.1f%%\n",
                    suite.c_str(), 100 * bench::mean(early),
                    100 * bench::mean(recov), 100 * bench::mean(addr),
                    100 * bench::mean(lds));
        all_early.insert(all_early.end(), early.begin(), early.end());
        all_recov.insert(all_recov.end(), recov.begin(), recov.end());
        all_addr.insert(all_addr.end(), addr.begin(), addr.end());
        all_lds.insert(all_lds.end(), lds.begin(), lds.end());
    }
    std::printf("%-12s %11.1f%% %17.1f%% %15.1f%% %11.1f%%\n", "avg",
                100 * bench::mean(all_early), 100 * bench::mean(all_recov),
                100 * bench::mean(all_addr), 100 * bench::mean(all_lds));
    return 0;
}
