/**
 * @file
 * Capacity sensitivity study (ROADMAP "scenario diversity"): how the
 * optimized machine's speedup-relevant structures scale. Three
 * one-dimensional sweeps off the paper's optimized configuration:
 *
 *   - ROB size        48 / 96 / 160 (default) / 256
 *   - scheduler depth  4 / 8 (default, via the rob160 column) / 16 / 32
 *   - physical registers (int/fp)  384/160, 512/224, 768/320 (default)
 *
 * Cells are cycle ratios against the default machine (column rob160),
 * so >1.00 means the variant is faster. Everything is a declarative
 * SweepSpec: shard/cache/progress/baseline support comes from the
 * bench harness like every other bench binary.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);

    const auto withRob = [](unsigned entries) {
        auto cfg = pipeline::MachineConfig::optimized();
        cfg.robEntries = entries;
        return cfg;
    };
    const auto withSched = [](unsigned entries) {
        auto cfg = pipeline::MachineConfig::optimized();
        cfg.schedEntries = entries;
        return cfg;
    };
    const auto withPrf = [](unsigned int_regs, unsigned fp_regs) {
        auto cfg = pipeline::MachineConfig::optimized();
        cfg.intPhysRegs = int_regs;
        cfg.fpPhysRegs = fp_regs;
        return cfg;
    };

    sim::SweepSpec spec;
    spec.workloads({"mcf", "gcc", "eqk", "g721d"})
        .config("rob48", withRob(48))
        .config("rob96", withRob(96))
        .config("rob160", withRob(160)) // the default machine
        .config("rob256", withRob(256))
        .config("sched4", withSched(4))
        .config("sched16", withSched(16))
        .config("sched32", withSched(32))
        .config("prf384", withPrf(384, 160))
        .config("prf512", withPrf(512, 224));

    sim::SweepRunner runner(hopts.sweepOptions());
    const auto res = runner.run(spec);

    sim::TableOptions t;
    t.title = "Capacity sensitivity: speedup vs the default optimized "
              "machine (rob160)";
    t.baselineConfig = "rob160";
    t.configs = {"rob48", "rob96",  "rob256", "sched4", "sched16",
                 "sched32", "prf384", "prf512"};
    t.rows = sim::TableOptions::Rows::PerWorkloadBySuite;
    t.colWidth = 8;
    sim::TableReporter(t).print(res);
    return bench::finishSweep("micro_capacity", res, t.baselineConfig,
                              t.configs, hopts);
}
