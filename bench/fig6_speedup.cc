/**
 * @file
 * Reproduces Figure 6 of the paper: speedup of continuous optimization
 * over the baseline for every SPECint, SPECfp, and mediabench workload,
 * with a suite average as the rightmost entry.
 *
 * Paper-reported shape: speedups range from 0.98 to 1.28; almost every
 * benchmark improves despite the two extra pipeline stages; mcf and
 * untoast stand out in their suites; mediabench has the largest overall
 * improvement.
 *
 * The sweep itself lives in the bench registry
 * (src/sim/bench_registry.hh) so conopt_served serves the identical
 * artifact; this binary prints the reporter table from the sweep
 * result and applies the save + baseline gate.
 */

#include "bench/bench_common.hh"
#include "src/sim/bench_registry.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);

    sim::BenchContext ctx;
    ctx.resultCache = hopts.resultCache;
    ctx.onProgress = hopts.progressFn();
    sim::SweepResult res;
    ctx.resultOut = &res;

    const sim::BenchDef *def = sim::findBench("fig6_speedup");
    sim::BenchArtifact art;
    std::string err;
    if (!def->build(hopts.run, ctx, &art, &err)) {
        std::fprintf(stderr, "fig6_speedup: %s\n", err.c_str());
        return 1;
    }

    sim::TableOptions t;
    t.title = "Figure 6: Speedup of continuous optimization over baseline";
    t.baselineConfig = "base";
    t.configs = {"opt"};
    t.rows = sim::TableOptions::Rows::PerWorkloadBySuite;
    t.colWidth = 6;
    sim::TableReporter(t).print(res);
    if (hopts.run.perf)
        bench::printHostPercentiles(res);
    return bench::finish("fig6_speedup", std::move(art), hopts);
}
