/**
 * @file
 * Reproduces Figure 6 of the paper: speedup of continuous optimization
 * over the baseline for every SPECint, SPECfp, and mediabench workload,
 * with a suite average as the rightmost entry.
 *
 * Paper-reported shape: speedups range from 0.98 to 1.28; almost every
 * benchmark improves despite the two extra pipeline stages; mcf and
 * untoast stand out in their suites; ammp shows 1.00; mediabench has the
 * largest overall improvement.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main()
{
    const auto base_cfg = pipeline::MachineConfig::baseline();
    const auto opt_cfg = pipeline::MachineConfig::optimized();

    bench::header("Figure 6: Speedup of continuous optimization over "
                  "baseline");

    for (const auto &suite : workloads::suiteNames()) {
        std::printf("\n[%s]\n", suite.c_str());
        std::vector<double> speedups;
        for (const auto *w : workloads::suiteWorkloads(suite)) {
            const auto program = w->build(w->defaultScale *
                                          bench::envScale());
            const auto base = sim::simulate(program, base_cfg);
            const auto opt = sim::simulate(program, opt_cfg);
            const double s =
                double(base.stats.cycles) / double(opt.stats.cycles);
            speedups.push_back(s);
            std::printf("  %-7s %.3f\n", w->name.c_str(), s);
        }
        std::printf("  %-7s %.3f (geometric mean)\n", "avg",
                    bench::geomean(speedups));
    }
    return 0;
}
