/**
 * @file
 * Reproduces Figure 6 of the paper: speedup of continuous optimization
 * over the baseline for every SPECint, SPECfp, and mediabench workload,
 * with a suite average as the rightmost entry.
 *
 * Paper-reported shape: speedups range from 0.98 to 1.28; almost every
 * benchmark improves despite the two extra pipeline stages; mcf and
 * untoast stand out in their suites; mediabench has the largest overall
 * improvement.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    sim::SweepSpec spec;
    spec.allWorkloads()
        .config("base", pipeline::MachineConfig::baseline())
        .config("opt", pipeline::MachineConfig::optimized());

    sim::SweepRunner runner(hopts.sweepOptions());
    const auto res = runner.run(spec);

    sim::TableOptions t;
    t.title = "Figure 6: Speedup of continuous optimization over baseline";
    t.baselineConfig = "base";
    t.configs = {"opt"};
    t.rows = sim::TableOptions::Rows::PerWorkloadBySuite;
    t.colWidth = 6;
    sim::TableReporter(t).print(res);
    return bench::finishSweep("fig6_speedup", res, t.baselineConfig,
                              t.configs, hopts);
}
