/**
 * @file
 * Reproduces Figure 8 of the paper: performance on different machine
 * models relative to the default (balanced) configuration.
 *
 * Five bars per suite:
 *   fetch bound        : default + four 16-entry schedulers
 *   fetch bound + opt  : the same, with the optimizer
 *   opt                : default machine with the optimizer
 *   exec. bound        : 8-wide fetch/decode/rename
 *   exec. bound + opt  : the same, with the optimizer
 *
 * Paper-reported shape: the optimizer's *relative* gain on the
 * execution-bound machine is 3-5x its gain from widening fetch alone;
 * on the fetch-bound machine the gain is much smaller; the default+opt
 * configuration beats doubling the fetch width.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    sim::SweepSpec spec;
    spec.allWorkloads()
        .config("base", pipeline::MachineConfig::baseline())
        .config("fetch bound", pipeline::MachineConfig::fetchBound(false))
        .config("fetch bound + opt",
                pipeline::MachineConfig::fetchBound(true))
        .config("opt", pipeline::MachineConfig::optimized())
        .config("exec. bound", pipeline::MachineConfig::execBound(false))
        .config("exec. bound + opt",
                pipeline::MachineConfig::execBound(true));

    sim::SweepRunner runner(hopts.sweepOptions());
    const auto res = runner.run(spec);

    sim::TableOptions t;
    t.title = "Figure 8: Performance relative to the default machine";
    t.baselineConfig = "base";
    t.configs = {"fetch bound", "fetch bound + opt", "opt", "exec. bound",
                 "exec. bound + opt"};
    t.rows = sim::TableOptions::Rows::PerSuite;
    t.colWidth = 18;
    sim::TableReporter(t).print(res);
    return bench::finishSweep("fig8_machine_models", res,
                              t.baselineConfig, t.configs, hopts);
}
