/**
 * @file
 * Reproduces Figure 8 of the paper: performance on different machine
 * models relative to the default (balanced) configuration.
 *
 * Five bars per suite:
 *   fetch bound        : default + four 16-entry schedulers
 *   fetch bound + opt  : the same, with the optimizer
 *   opt                : default machine with the optimizer
 *   exec. bound        : 8-wide fetch/decode/rename
 *   exec. bound + opt  : the same, with the optimizer
 *
 * Paper-reported shape: the optimizer's *relative* gain on the
 * execution-bound machine is 3-5x its gain from widening fetch alone;
 * on the fetch-bound machine the gain is much smaller; the default+opt
 * configuration beats doubling the fetch width.
 */

#include "bench/bench_common.hh"

using namespace conopt;

int
main()
{
    struct Model
    {
        const char *name;
        pipeline::MachineConfig config;
    };
    const std::vector<Model> models = {
        {"fetch bound", pipeline::MachineConfig::fetchBound(false)},
        {"fetch bound + opt", pipeline::MachineConfig::fetchBound(true)},
        {"opt", pipeline::MachineConfig::optimized()},
        {"exec. bound", pipeline::MachineConfig::execBound(false)},
        {"exec. bound + opt", pipeline::MachineConfig::execBound(true)},
    };
    const auto base_cfg = pipeline::MachineConfig::baseline();

    bench::header("Figure 8: Performance relative to the default machine");
    for (const auto &suite : workloads::suiteNames()) {
        std::printf("\n[%s]\n", suite.c_str());
        // Baseline cycles per workload.
        std::vector<std::pair<const workloads::Workload *, uint64_t>> base;
        for (const auto *w : workloads::suiteWorkloads(suite))
            base.emplace_back(w, bench::runWorkload(*w, base_cfg)
                                     .stats.cycles);
        for (const auto &m : models) {
            std::vector<double> speedups;
            for (const auto &[w, base_cycles] : base) {
                const auto r = bench::runWorkload(*w, m.config);
                speedups.push_back(double(base_cycles) /
                                   double(r.stats.cycles));
            }
            std::printf("  %-18s %.3f\n", m.name,
                        bench::geomean(speedups));
        }
    }
    return 0;
}
