# Empty dependencies file for fig12_vfb_delay.
# This may be replaced when dependencies are built.
