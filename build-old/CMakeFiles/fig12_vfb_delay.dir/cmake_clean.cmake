file(REMOVE_RECURSE
  "CMakeFiles/fig12_vfb_delay.dir/bench/fig12_vfb_delay.cc.o"
  "CMakeFiles/fig12_vfb_delay.dir/bench/fig12_vfb_delay.cc.o.d"
  "fig12_vfb_delay"
  "fig12_vfb_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_vfb_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
