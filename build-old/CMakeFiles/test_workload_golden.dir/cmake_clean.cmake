file(REMOVE_RECURSE
  "CMakeFiles/test_workload_golden.dir/tests/test_workload_golden.cc.o"
  "CMakeFiles/test_workload_golden.dir/tests/test_workload_golden.cc.o.d"
  "test_workload_golden"
  "test_workload_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
