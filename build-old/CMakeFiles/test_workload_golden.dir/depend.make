# Empty dependencies file for test_workload_golden.
# This may be replaced when dependencies are built.
