file(REMOVE_RECURSE
  "CMakeFiles/conopt_sweep.dir/tools/sweep_driver.cc.o"
  "CMakeFiles/conopt_sweep.dir/tools/sweep_driver.cc.o.d"
  "conopt_sweep"
  "conopt_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conopt_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
