# Empty dependencies file for conopt_sweep.
# This may be replaced when dependencies are built.
