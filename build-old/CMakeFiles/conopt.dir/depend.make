# Empty dependencies file for conopt.
# This may be replaced when dependencies are built.
