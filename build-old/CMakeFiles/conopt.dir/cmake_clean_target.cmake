file(REMOVE_RECURSE
  "libconopt.a"
)
