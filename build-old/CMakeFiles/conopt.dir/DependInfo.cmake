
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/emulator.cc" "CMakeFiles/conopt.dir/src/arch/emulator.cc.o" "gcc" "CMakeFiles/conopt.dir/src/arch/emulator.cc.o.d"
  "/root/repo/src/arch/memory.cc" "CMakeFiles/conopt.dir/src/arch/memory.cc.o" "gcc" "CMakeFiles/conopt.dir/src/arch/memory.cc.o.d"
  "/root/repo/src/asm/assembler.cc" "CMakeFiles/conopt.dir/src/asm/assembler.cc.o" "gcc" "CMakeFiles/conopt.dir/src/asm/assembler.cc.o.d"
  "/root/repo/src/branch/branch_predictor.cc" "CMakeFiles/conopt.dir/src/branch/branch_predictor.cc.o" "gcc" "CMakeFiles/conopt.dir/src/branch/branch_predictor.cc.o.d"
  "/root/repo/src/cache/cache.cc" "CMakeFiles/conopt.dir/src/cache/cache.cc.o" "gcc" "CMakeFiles/conopt.dir/src/cache/cache.cc.o.d"
  "/root/repo/src/core/mbc.cc" "CMakeFiles/conopt.dir/src/core/mbc.cc.o" "gcc" "CMakeFiles/conopt.dir/src/core/mbc.cc.o.d"
  "/root/repo/src/core/opt_rat.cc" "CMakeFiles/conopt.dir/src/core/opt_rat.cc.o" "gcc" "CMakeFiles/conopt.dir/src/core/opt_rat.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "CMakeFiles/conopt.dir/src/core/optimizer.cc.o" "gcc" "CMakeFiles/conopt.dir/src/core/optimizer.cc.o.d"
  "/root/repo/src/core/symbolic.cc" "CMakeFiles/conopt.dir/src/core/symbolic.cc.o" "gcc" "CMakeFiles/conopt.dir/src/core/symbolic.cc.o.d"
  "/root/repo/src/isa/exec.cc" "CMakeFiles/conopt.dir/src/isa/exec.cc.o" "gcc" "CMakeFiles/conopt.dir/src/isa/exec.cc.o.d"
  "/root/repo/src/isa/isa.cc" "CMakeFiles/conopt.dir/src/isa/isa.cc.o" "gcc" "CMakeFiles/conopt.dir/src/isa/isa.cc.o.d"
  "/root/repo/src/pipeline/machine_config.cc" "CMakeFiles/conopt.dir/src/pipeline/machine_config.cc.o" "gcc" "CMakeFiles/conopt.dir/src/pipeline/machine_config.cc.o.d"
  "/root/repo/src/pipeline/ooo_core.cc" "CMakeFiles/conopt.dir/src/pipeline/ooo_core.cc.o" "gcc" "CMakeFiles/conopt.dir/src/pipeline/ooo_core.cc.o.d"
  "/root/repo/src/pipeline/phys_reg_file.cc" "CMakeFiles/conopt.dir/src/pipeline/phys_reg_file.cc.o" "gcc" "CMakeFiles/conopt.dir/src/pipeline/phys_reg_file.cc.o.d"
  "/root/repo/src/pipeline/sim_stats.cc" "CMakeFiles/conopt.dir/src/pipeline/sim_stats.cc.o" "gcc" "CMakeFiles/conopt.dir/src/pipeline/sim_stats.cc.o.d"
  "/root/repo/src/sim/baseline.cc" "CMakeFiles/conopt.dir/src/sim/baseline.cc.o" "gcc" "CMakeFiles/conopt.dir/src/sim/baseline.cc.o.d"
  "/root/repo/src/sim/driver.cc" "CMakeFiles/conopt.dir/src/sim/driver.cc.o" "gcc" "CMakeFiles/conopt.dir/src/sim/driver.cc.o.d"
  "/root/repo/src/sim/fingerprint.cc" "CMakeFiles/conopt.dir/src/sim/fingerprint.cc.o" "gcc" "CMakeFiles/conopt.dir/src/sim/fingerprint.cc.o.d"
  "/root/repo/src/sim/report.cc" "CMakeFiles/conopt.dir/src/sim/report.cc.o" "gcc" "CMakeFiles/conopt.dir/src/sim/report.cc.o.d"
  "/root/repo/src/sim/result_cache.cc" "CMakeFiles/conopt.dir/src/sim/result_cache.cc.o" "gcc" "CMakeFiles/conopt.dir/src/sim/result_cache.cc.o.d"
  "/root/repo/src/sim/session.cc" "CMakeFiles/conopt.dir/src/sim/session.cc.o" "gcc" "CMakeFiles/conopt.dir/src/sim/session.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "CMakeFiles/conopt.dir/src/sim/simulator.cc.o" "gcc" "CMakeFiles/conopt.dir/src/sim/simulator.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "CMakeFiles/conopt.dir/src/sim/sweep.cc.o" "gcc" "CMakeFiles/conopt.dir/src/sim/sweep.cc.o.d"
  "/root/repo/src/util/logging.cc" "CMakeFiles/conopt.dir/src/util/logging.cc.o" "gcc" "CMakeFiles/conopt.dir/src/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/conopt.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/conopt.dir/src/util/rng.cc.o.d"
  "/root/repo/src/workloads/mediabench.cc" "CMakeFiles/conopt.dir/src/workloads/mediabench.cc.o" "gcc" "CMakeFiles/conopt.dir/src/workloads/mediabench.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "CMakeFiles/conopt.dir/src/workloads/registry.cc.o" "gcc" "CMakeFiles/conopt.dir/src/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/specfp.cc" "CMakeFiles/conopt.dir/src/workloads/specfp.cc.o" "gcc" "CMakeFiles/conopt.dir/src/workloads/specfp.cc.o.d"
  "/root/repo/src/workloads/specint_a.cc" "CMakeFiles/conopt.dir/src/workloads/specint_a.cc.o" "gcc" "CMakeFiles/conopt.dir/src/workloads/specint_a.cc.o.d"
  "/root/repo/src/workloads/specint_b.cc" "CMakeFiles/conopt.dir/src/workloads/specint_b.cc.o" "gcc" "CMakeFiles/conopt.dir/src/workloads/specint_b.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
