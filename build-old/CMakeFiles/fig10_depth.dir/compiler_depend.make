# Empty compiler generated dependencies file for fig10_depth.
# This may be replaced when dependencies are built.
