file(REMOVE_RECURSE
  "CMakeFiles/fig10_depth.dir/bench/fig10_depth.cc.o"
  "CMakeFiles/fig10_depth.dir/bench/fig10_depth.cc.o.d"
  "fig10_depth"
  "fig10_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
