# Empty compiler generated dependencies file for test_branch_cache.
# This may be replaced when dependencies are built.
