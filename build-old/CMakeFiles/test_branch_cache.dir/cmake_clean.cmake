file(REMOVE_RECURSE
  "CMakeFiles/test_branch_cache.dir/tests/test_branch_cache.cc.o"
  "CMakeFiles/test_branch_cache.dir/tests/test_branch_cache.cc.o.d"
  "test_branch_cache"
  "test_branch_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_branch_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
