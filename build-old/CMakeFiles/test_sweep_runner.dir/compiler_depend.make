# Empty compiler generated dependencies file for test_sweep_runner.
# This may be replaced when dependencies are built.
