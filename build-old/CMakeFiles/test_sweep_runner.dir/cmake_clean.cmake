file(REMOVE_RECURSE
  "CMakeFiles/test_sweep_runner.dir/tests/test_sweep_runner.cc.o"
  "CMakeFiles/test_sweep_runner.dir/tests/test_sweep_runner.cc.o.d"
  "test_sweep_runner"
  "test_sweep_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
