file(REMOVE_RECURSE
  "CMakeFiles/test_assembler_emulator.dir/tests/test_assembler_emulator.cc.o"
  "CMakeFiles/test_assembler_emulator.dir/tests/test_assembler_emulator.cc.o.d"
  "test_assembler_emulator"
  "test_assembler_emulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assembler_emulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
