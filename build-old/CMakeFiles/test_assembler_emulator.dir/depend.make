# Empty dependencies file for test_assembler_emulator.
# This may be replaced when dependencies are built.
