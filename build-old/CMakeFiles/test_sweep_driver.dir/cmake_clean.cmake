file(REMOVE_RECURSE
  "CMakeFiles/test_sweep_driver.dir/tests/test_sweep_driver.cc.o"
  "CMakeFiles/test_sweep_driver.dir/tests/test_sweep_driver.cc.o.d"
  "test_sweep_driver"
  "test_sweep_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
