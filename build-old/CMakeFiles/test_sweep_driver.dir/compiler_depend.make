# Empty compiler generated dependencies file for test_sweep_driver.
# This may be replaced when dependencies are built.
