# Empty compiler generated dependencies file for fig11_opt_latency.
# This may be replaced when dependencies are built.
