file(REMOVE_RECURSE
  "CMakeFiles/fig11_opt_latency.dir/bench/fig11_opt_latency.cc.o"
  "CMakeFiles/fig11_opt_latency.dir/bench/fig11_opt_latency.cc.o.d"
  "fig11_opt_latency"
  "fig11_opt_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_opt_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
