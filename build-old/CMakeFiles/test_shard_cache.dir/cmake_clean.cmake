file(REMOVE_RECURSE
  "CMakeFiles/test_shard_cache.dir/tests/test_shard_cache.cc.o"
  "CMakeFiles/test_shard_cache.dir/tests/test_shard_cache.cc.o.d"
  "test_shard_cache"
  "test_shard_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shard_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
