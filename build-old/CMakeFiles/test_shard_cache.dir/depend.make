# Empty dependencies file for test_shard_cache.
# This may be replaced when dependencies are built.
