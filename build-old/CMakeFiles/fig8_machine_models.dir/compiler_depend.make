# Empty compiler generated dependencies file for fig8_machine_models.
# This may be replaced when dependencies are built.
