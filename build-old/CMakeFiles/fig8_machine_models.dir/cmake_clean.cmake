file(REMOVE_RECURSE
  "CMakeFiles/fig8_machine_models.dir/bench/fig8_machine_models.cc.o"
  "CMakeFiles/fig8_machine_models.dir/bench/fig8_machine_models.cc.o.d"
  "fig8_machine_models"
  "fig8_machine_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_machine_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
