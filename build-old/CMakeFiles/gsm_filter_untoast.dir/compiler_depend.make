# Empty compiler generated dependencies file for gsm_filter_untoast.
# This may be replaced when dependencies are built.
