file(REMOVE_RECURSE
  "CMakeFiles/gsm_filter_untoast.dir/examples/gsm_filter_untoast.cpp.o"
  "CMakeFiles/gsm_filter_untoast.dir/examples/gsm_filter_untoast.cpp.o.d"
  "gsm_filter_untoast"
  "gsm_filter_untoast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsm_filter_untoast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
