file(REMOVE_RECURSE
  "CMakeFiles/conopt_bench_check.dir/tools/bench_check.cc.o"
  "CMakeFiles/conopt_bench_check.dir/tools/bench_check.cc.o.d"
  "conopt_bench_check"
  "conopt_bench_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conopt_bench_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
