# Empty dependencies file for conopt_bench_check.
# This may be replaced when dependencies are built.
