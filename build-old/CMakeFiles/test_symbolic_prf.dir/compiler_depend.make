# Empty compiler generated dependencies file for test_symbolic_prf.
# This may be replaced when dependencies are built.
