file(REMOVE_RECURSE
  "CMakeFiles/test_symbolic_prf.dir/tests/test_symbolic_prf.cc.o"
  "CMakeFiles/test_symbolic_prf.dir/tests/test_symbolic_prf.cc.o.d"
  "test_symbolic_prf"
  "test_symbolic_prf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symbolic_prf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
