# Empty dependencies file for quicksort_mcf.
# This may be replaced when dependencies are built.
