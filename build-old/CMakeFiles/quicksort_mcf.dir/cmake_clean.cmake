file(REMOVE_RECURSE
  "CMakeFiles/quicksort_mcf.dir/examples/quicksort_mcf.cpp.o"
  "CMakeFiles/quicksort_mcf.dir/examples/quicksort_mcf.cpp.o.d"
  "quicksort_mcf"
  "quicksort_mcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicksort_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
