# Empty compiler generated dependencies file for fig9_feedback.
# This may be replaced when dependencies are built.
