file(REMOVE_RECURSE
  "CMakeFiles/fig9_feedback.dir/bench/fig9_feedback.cc.o"
  "CMakeFiles/fig9_feedback.dir/bench/fig9_feedback.cc.o.d"
  "fig9_feedback"
  "fig9_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
