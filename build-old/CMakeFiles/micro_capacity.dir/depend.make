# Empty dependencies file for micro_capacity.
# This may be replaced when dependencies are built.
