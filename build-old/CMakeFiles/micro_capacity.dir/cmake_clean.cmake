file(REMOVE_RECURSE
  "CMakeFiles/micro_capacity.dir/bench/micro_capacity.cc.o"
  "CMakeFiles/micro_capacity.dir/bench/micro_capacity.cc.o.d"
  "micro_capacity"
  "micro_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
