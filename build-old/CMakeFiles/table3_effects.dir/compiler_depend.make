# Empty compiler generated dependencies file for table3_effects.
# This may be replaced when dependencies are built.
