file(REMOVE_RECURSE
  "CMakeFiles/table3_effects.dir/bench/table3_effects.cc.o"
  "CMakeFiles/table3_effects.dir/bench/table3_effects.cc.o.d"
  "table3_effects"
  "table3_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
