file(REMOVE_RECURSE
  "CMakeFiles/conopt_cli.dir/examples/conopt_cli.cpp.o"
  "CMakeFiles/conopt_cli.dir/examples/conopt_cli.cpp.o.d"
  "conopt_cli"
  "conopt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conopt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
