# Empty dependencies file for conopt_cli.
# This may be replaced when dependencies are built.
