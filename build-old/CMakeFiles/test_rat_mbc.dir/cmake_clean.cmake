file(REMOVE_RECURSE
  "CMakeFiles/test_rat_mbc.dir/tests/test_rat_mbc.cc.o"
  "CMakeFiles/test_rat_mbc.dir/tests/test_rat_mbc.cc.o.d"
  "test_rat_mbc"
  "test_rat_mbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rat_mbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
