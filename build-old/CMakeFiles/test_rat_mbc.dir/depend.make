# Empty dependencies file for test_rat_mbc.
# This may be replaced when dependencies are built.
