# Empty dependencies file for test_config_sweeps.
# This may be replaced when dependencies are built.
