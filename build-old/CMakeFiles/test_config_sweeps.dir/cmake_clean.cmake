file(REMOVE_RECURSE
  "CMakeFiles/test_config_sweeps.dir/tests/test_config_sweeps.cc.o"
  "CMakeFiles/test_config_sweeps.dir/tests/test_config_sweeps.cc.o.d"
  "test_config_sweeps"
  "test_config_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
