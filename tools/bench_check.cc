/**
 * @file
 * conopt_bench_check: compare two benchmark artifacts (or directories
 * of per-shard artifacts, merged first) and exit non-zero on drift of
 * the simulated machine. The CI regression gate over the BENCH_*.json
 * trajectory, and the merge half of the sharded-sweep workflow:
 * per-shard artifacts (from `--shard i/n` bench runs) defer their
 * figure geomeans, which `--recompute-geomeans BASE` rebuilds from
 * the merged per-job records before comparing. All logic lives in
 * sim::benchCheckMain so tests/test_baseline.cc and
 * tests/test_shard_cache.cc cover the exit behaviour in-process.
 */

#include <string>
#include <vector>

#include "src/sim/baseline.hh"

int
main(int argc, char **argv)
{
    return conopt::sim::benchCheckMain(
        std::vector<std::string>(argv + 1, argv + argc));
}
