/**
 * @file
 * conopt_bench_check: compare two benchmark artifacts (or directories
 * of per-shard artifacts, merged first) and exit non-zero on drift of
 * the simulated machine. The CI regression gate over the BENCH_*.json
 * trajectory; all logic lives in sim::benchCheckMain so
 * tests/test_baseline.cc covers the exit behaviour in-process.
 */

#include <string>
#include <vector>

#include "src/sim/baseline.hh"

int
main(int argc, char **argv)
{
    return conopt::sim::benchCheckMain(
        std::vector<std::string>(argv + 1, argv + argc));
}
