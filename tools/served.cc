/**
 * @file
 * conopt_served: the standing sweep daemon. Listens on a TCP or unix
 * socket, keeps warm simulation sessions, a hot program cache, and an
 * always-on result cache across requests, and serves SweepRequests
 * from `conopt_sweep --connect` (or any client speaking the framed
 * line-JSON protocol in README.md, "Standing fleet"). All logic lives
 * in sim::servedMain / sim::SweepService (src/sim/service.hh) so
 * tests/test_served.cc covers the behaviour in-process.
 */

#include <string>
#include <vector>

#include "src/sim/service.hh"

int
main(int argc, char **argv)
{
    return conopt::sim::servedMain(
        std::vector<std::string>(argv + 1, argv + argc));
}
