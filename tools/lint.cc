/**
 * @file
 * conopt_lint: enforce the project's determinism, hot-path,
 * signal-safety, and hygiene invariants over the C++ tree by token
 * pattern matching (see src/lint/rules.hh for the rule catalogue and
 * src/lint/lint.hh for configuration and the exit-code contract).
 * All logic lives in lint::lintMain so tests/test_lint.cc covers the
 * CLI behaviour in-process, the same split as conopt_bench_check.
 */

#include <string>
#include <vector>

#include "src/lint/lint.hh"

int
main(int argc, char **argv)
{
    return conopt::lint::lintMain(
        std::vector<std::string>(argv + 1, argv + argc));
}
