/**
 * @file
 * conopt_sweep: the one-command distributed sweep driver. Launches a
 * bench binary as N shard processes (locally, through a --launcher
 * command template, or round-robin over --ssh hosts), streams their
 * progress, waits with per-shard timeout and bounded retry, merges the
 * shard artifacts, recomputes the deferred figure geomeans, and gates
 * the merged artifact against a baseline. Exit codes match
 * conopt_bench_check: 0 ok, 1 drift, 2 error. All logic lives in
 * sim::sweepDriverMain / sim::runSweepDriver (src/sim/driver.hh) so
 * tests/test_sweep_driver.cc covers the behaviour in-process.
 */

#include <string>
#include <vector>

#include "src/sim/driver.hh"

int
main(int argc, char **argv)
{
    return conopt::sim::sweepDriverMain(
        std::vector<std::string>(argv + 1, argv + argc));
}
