#include "src/branch/branch_predictor.hh"

#include "src/util/bitops.hh"
#include "src/util/logging.hh"

namespace conopt::branch {

BranchPredictor::BranchPredictor(const PredictorConfig &config)
{
    reset(config);
}

void
BranchPredictor::reset(const PredictorConfig &config)
{
    conopt_assert(isPowerOfTwo(config.btbEntries));
    config_ = config;
    counters_.assign(size_t(1) << config.historyBits, 1); // weakly NT
    btb_.assign(config.btbEntries, BtbEntry{});
    ras_.assign(config.rasEntries, 0);
    rasTop_ = 0;
    history_ = 0;
    historyMask_ = (uint64_t(1) << config.historyBits) - 1;
    lookups_ = 0;
}

unsigned
BranchPredictor::tableIndex(uint64_t pc, uint64_t history) const
{
    const uint64_t word = pc / isa::instBytes;
    return unsigned((word ^ history) & historyMask_);
}

unsigned
BranchPredictor::btbIndex(uint64_t pc) const
{
    return unsigned((pc / isa::instBytes) & (config_.btbEntries - 1));
}

Prediction
BranchPredictor::predict(uint64_t pc, const isa::Instruction &inst,
                         uint64_t fallthrough)
{
    ++lookups_;
    const auto &info = isa::opInfo(inst.op);
    Prediction pred;
    pred.historyBefore = history_;

    if (info.isCondBranch) {
        const uint8_t ctr = counters_[tableIndex(pc, history_)];
        pred.taken = ctr >= 2;
        // Speculative history insert; repaired on mispredict.
        history_ = ((history_ << 1) | (pred.taken ? 1 : 0)) & historyMask_;
    } else {
        pred.taken = true; // unconditional control is always taken
    }

    // Target: RAS for returns, BTB otherwise.
    if (info.isReturn) {
        if (rasTop_ > 0) {
            pred.target = ras_[(rasTop_ - 1) % ras_.size()];
            pred.targetValid = true;
            --rasTop_;
        }
    } else if (pred.taken) {
        const BtbEntry &e = btb_[btbIndex(pc)];
        if (e.valid && e.tag == pc) {
            pred.target = e.target;
            pred.targetValid = true;
        }
    }

    if (info.isCall) {
        ras_[rasTop_ % ras_.size()] = fallthrough;
        ++rasTop_;
    }

    return pred;
}

void
BranchPredictor::update(uint64_t pc, const isa::Instruction &inst,
                        const Prediction &pred, bool taken, uint64_t target)
{
    const auto &info = isa::opInfo(inst.op);
    if (info.isCondBranch) {
        // Train with the history the prediction used.
        uint8_t &ctr = counters_[tableIndex(pc, pred.historyBefore)];
        if (taken) {
            if (ctr < 3)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
    }
    if (taken && !info.isReturn) {
        BtbEntry &e = btb_[btbIndex(pc)];
        e.tag = pc;
        e.target = target;
        e.valid = true;
    }
}

void
BranchPredictor::recover(const Prediction &pred, bool actual_taken)
{
    history_ =
        ((pred.historyBefore << 1) | (actual_taken ? 1 : 0)) & historyMask_;
}

} // namespace conopt::branch
