/**
 * @file
 * Front-end branch prediction: an 18-bit gshare direction predictor, a
 * 1K-entry branch target buffer, and a small return-address stack
 * (Table 2 of the paper: "18-bit gshare, 1K-entry BTB").
 *
 * The global history register is updated speculatively at prediction time
 * and repaired on a misprediction, mirroring real front ends.
 */

#ifndef CONOPT_BRANCH_BRANCH_PREDICTOR_HH
#define CONOPT_BRANCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "src/isa/isa.hh"

namespace conopt::branch {

/** Configuration for the front-end predictors. */
struct PredictorConfig
{
    unsigned historyBits = 18;   ///< gshare history length / table index
    unsigned btbEntries = 1024;  ///< direct-mapped, tagged
    unsigned rasEntries = 16;    ///< return-address stack depth
};

/** The outcome of predicting one branch at fetch. */
struct Prediction
{
    bool taken = false;       ///< predicted direction
    uint64_t target = 0;      ///< predicted target (valid if taken)
    bool targetValid = false; ///< BTB/RAS supplied a target
    uint64_t historyBefore = 0; ///< snapshot for recovery/update
};

/**
 * Combined direction + target predictor.
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const PredictorConfig &config = {});

    /** Re-initialize for a new simulation under @p config: counters
     *  back to weakly-not-taken, BTB/RAS/history cleared, exactly as
     *  freshly constructed. Reallocates only when the new geometry is
     *  larger than anything seen before. */
    void reset(const PredictorConfig &config);

    /**
     * Predict the branch at @p pc. Call exactly once per fetched branch;
     * speculatively updates the global history for conditional branches
     * and the RAS for calls/returns.
     *
     * @param pc branch address
     * @param inst the static instruction (class decides BTB/RAS use)
     * @param fallthrough pc + 4, used to push return addresses
     */
    Prediction predict(uint64_t pc, const isa::Instruction &inst,
                       uint64_t fallthrough);

    /**
     * Train tables with the resolved outcome. @p pred must be the value
     * predict() returned for this dynamic branch.
     */
    void update(uint64_t pc, const isa::Instruction &inst,
                const Prediction &pred, bool taken, uint64_t target);

    /**
     * Repair speculative state after a misprediction: restores the global
     * history to the pre-prediction snapshot and re-inserts the actual
     * outcome.
     */
    void recover(const Prediction &pred, bool actual_taken);

    /** Direction-prediction accuracy counters (for tests). */
    uint64_t lookups() const { return lookups_; }

  private:
    unsigned tableIndex(uint64_t pc, uint64_t history) const;
    unsigned btbIndex(uint64_t pc) const;

    PredictorConfig config_;
    std::vector<uint8_t> counters_;  ///< 2-bit saturating
    struct BtbEntry
    {
        uint64_t tag = 0;
        uint64_t target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb_;
    std::vector<uint64_t> ras_;
    size_t rasTop_ = 0;
    uint64_t history_ = 0;
    uint64_t historyMask_;
    uint64_t lookups_ = 0;
};

} // namespace conopt::branch

#endif // CONOPT_BRANCH_BRANCH_PREDICTOR_HH
