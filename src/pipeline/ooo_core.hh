/**
 * @file
 * The cycle-level out-of-order core (paper section 4.2): a P4-like deep
 * pipeline with a 4-wide front end, the continuous optimizer embedded in
 * rename, four small schedulers, a pool of execution units, a 160-entry
 * instruction window, and a three-level memory hierarchy.
 *
 * The model is trace-driven: the functional emulator supplies the
 * correct-path dynamic instruction stream with oracle values. A
 * mispredicted branch stalls fetch until the branch resolves (at execute,
 * or at the end of the extended rename stage when the optimizer resolves
 * it early), then fetch resumes after a redirect penalty. Wrong-path
 * instructions are never renamed, which matches the paper's recovery
 * model (wrong-path optimizer state is discarded).
 */

#ifndef CONOPT_PIPELINE_OOO_CORE_HH
#define CONOPT_PIPELINE_OOO_CORE_HH

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/arch/emulator.hh"
#include "src/branch/branch_predictor.hh"
#include "src/cache/cache.hh"
#include "src/core/optimizer.hh"
#include "src/pipeline/machine_config.hh"
#include "src/pipeline/phys_reg_file.hh"
#include "src/pipeline/sim_stats.hh"
#include "src/util/delay_pipe.hh"
#include "src/util/ring_buffer.hh"

namespace conopt::pipeline {

/** One cycle value meaning "not scheduled yet". */
constexpr uint64_t neverCycle = ~uint64_t(0);

/** The simulated processor. */
class OooCore
{
  public:
    /**
     * @param config machine parameters
     * @param emu functional emulator positioned at the program entry
     */
    OooCore(const MachineConfig &config, arch::Emulator &emu);

    /**
     * Re-initialize for a new simulation under @p config, reading the
     * initial architectural state from the emulator (which the caller
     * must have reset/positioned at the program entry first). All hot
     * containers are cleared in place; storage is reallocated only
     * when @p config needs more capacity than any earlier run, so a
     * warm core starts its steady state with zero heap allocations
     * per simulated instruction.
     */
    void reset(const MachineConfig &config);

    /** Simulate until the program's HALT retires (or maxCycles). */
    const SimStats &run();

    /** Advance one cycle (exposed for fine-grained tests). */
    void tick();

    bool halted() const { return halted_; }
    uint64_t cycle() const { return cycle_; }
    const SimStats &stats() const { return stats_; }
    const PhysRegFile &intPrf() const { return intPrf_; }
    const PhysRegFile &fpPrf() const { return fpPrf_; }
    const core::RenameUnit &renameUnit() const { return rename_; }

  private:
    /** An instruction travelling through the front end. */
    struct FetchedInst
    {
        arch::DynInst dyn;
        branch::Prediction pred{};
        uint64_t fetchCycle = 0;
        bool isBranch = false;
        bool mispredicted = false; ///< direction or indirect target wrong
        bool misfetch = false;     ///< direct-target fixed up at decode
    };

    /** A reorder-buffer entry. */
    struct RobEntry
    {
        arch::DynInst dyn;
        core::OptResult opt;
        branch::Prediction pred{};
        bool isBranch = false;
        bool mispredicted = false;
        bool misfetch = false;
        bool earlyRecovered = false;
        bool isLoad = false;
        bool isStore = false;
        bool storeAddrWasUnknown = false;
        bool forwardedFromStore = false;

        bool done = false;
        bool issued = false;
        uint64_t fetchCycle = 0;
        uint64_t renameCycle = 0;
        uint64_t dispatchCycle = neverCycle;
        uint64_t issueCycle = neverCycle;
        uint64_t doneCycle = neverCycle;
        uint64_t addrReadyCycle = neverCycle;
    };

    // --- stages (called in reverse order each tick) ----------------------
    void retireStage();
    void writebackStage();
    void issueStage();
    void dispatchStage();
    void renameStage();
    void fetchStage();

    // --- helpers -----------------------------------------------------------
    RobEntry &entryOf(uint64_t seq);
    PhysRegFile &prfFor(bool fp) { return fp ? fpPrf_ : intPrf_; }
    bool depsReady(const RobEntry &e) const;
    unsigned schedIndex(isa::OpClass cls) const;
    bool tryIssueMem(RobEntry &e);
    bool tryIssueAlu(RobEntry &e, unsigned &budget);
    void completeAt(uint64_t cycle, uint64_t seq);
    void resolveMispredict(const RobEntry &e, uint64_t resolve_cycle);
    void finalizeStats();

    // --- configuration -----------------------------------------------------
    MachineConfig cfg_;
    unsigned optExtra_;
    unsigned renameDepth_;
    unsigned ilineShift_;

    // --- components ----------------------------------------------------------
    arch::Emulator &emu_;
    PhysRegFile intPrf_;
    PhysRegFile fpPrf_;
    core::RenameUnit rename_;
    branch::BranchPredictor bp_;
    cache::Hierarchy hier_;

    // --- pipeline state -------------------------------------------------------
    uint64_t cycle_ = 0;
    bool halted_ = false;
    SimStats stats_;

    DelayPipe<FetchedInst> frontPipe_;
    size_t frontCap_;
    DelayPipe<uint64_t> dispatchPipe_; ///< seqs in rename/optimize stages
    size_t dispatchCap_;

    RingBuffer<RobEntry> rob_;
    uint64_t retiredCount_ = 0;

    /** Four schedulers: int-simple, int-complex, fp, mem (Table 2). */
    std::array<RingBuffer<uint64_t>, 4> sched_;

    /** In-flight stores (seqs), oldest first, for load ordering. */
    RingBuffer<uint64_t> storeQueue_;

    /** Completion events (cycle, seq), kept sorted descending so the
     *  next event is at back(): a flat sorted-insertion list pops in
     *  exactly the order of the min-heap it replaces ((cycle, seq)
     *  pairs are unique), with no per-event heap churn. */
    std::vector<std::pair<uint64_t, uint64_t>> completions_;

    // --- fetch state ---------------------------------------------------------
    bool mispredictPending_ = false;
    uint64_t pendingMispredictSeq_ = 0;
    uint64_t fetchResumeCycle_ = 0;   ///< fetch blocked before this cycle
    uint64_t icacheReadyCycle_ = 0;
    uint64_t lastFetchLine_ = neverCycle;

    // --- per-cycle FU accounting ------------------------------------------
    unsigned portsUsedThisCycle_ = 0;
    unsigned agenUsedThisCycle_ = 0;

    uint64_t lastRetireCycle_ = 0;
};

} // namespace conopt::pipeline

#endif // CONOPT_PIPELINE_OOO_CORE_HH
