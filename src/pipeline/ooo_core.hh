/**
 * @file
 * The cycle-level out-of-order core (paper section 4.2): a P4-like deep
 * pipeline with a 4-wide front end, the continuous optimizer embedded in
 * rename, four small schedulers, a pool of execution units, a 160-entry
 * instruction window, and a three-level memory hierarchy.
 *
 * The model is trace-driven: the functional emulator supplies the
 * correct-path dynamic instruction stream with oracle values. A
 * mispredicted branch stalls fetch until the branch resolves (at execute,
 * or at the end of the extended rename stage when the optimizer resolves
 * it early), then fetch resumes after a redirect penalty. Wrong-path
 * instructions are never renamed, which matches the paper's recovery
 * model (wrong-path optimizer state is discarded).
 *
 * Host-performance architecture (simulated results are unaffected):
 *
 *  - Event-driven wakeup. Scheduler occupants are never polled. An
 *    instruction dispatching with unready operands registers in a
 *    per-physical-register WakeList; when the producer issues (the
 *    one setReadyAt call of a register's lifetime), its waiters learn
 *    their operand-ready cycle. Once every operand has a known ready
 *    cycle the entry is scheduled onto a (cycle, seq) ready-event
 *    list, and at that cycle it moves into its scheduler's ready
 *    queue, kept sorted by age — so issueStage() scans only entries
 *    that can actually issue, in exactly the age order the polling
 *    loop used.
 *
 *  - Idle-cycle fast-forward. When fetch is provably blocked
 *    (mispredict resolution, redirect penalty, I-cache miss), no
 *    scheduler has a ready entry, and the pipes hold no matured
 *    items, run() computes the next cycle at which anything can
 *    happen (completion events, ready events, pipe maturities, fetch
 *    unblock, head-of-ROB retirement) and jumps there, crediting the
 *    skipped cycles to the same fetch-stall counters the per-cycle
 *    path would have incremented. Memory-bound workloads spend most
 *    of their cycles exactly this way.
 *
 *  - Hot-field SoA split. The per-cycle-touched state of in-flight
 *    instructions (done/issued flags, completion and address-ready
 *    cycles, wakeup bookkeeping, store ranges and data deps) lives in
 *    parallel arrays indexed by sequence number modulo the ROB
 *    capacity, so writeback/retire/forwarding touch dense cache lines
 *    instead of striding over the ~200-byte RobEntry records.
 */

#ifndef CONOPT_PIPELINE_OOO_CORE_HH
#define CONOPT_PIPELINE_OOO_CORE_HH

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/arch/emulator.hh"
#include "src/branch/branch_predictor.hh"
#include "src/cache/cache.hh"
#include "src/core/optimizer.hh"
#include "src/pipeline/machine_config.hh"
#include "src/pipeline/phys_reg_file.hh"
#include "src/pipeline/sim_stats.hh"
#include "src/pipeline/stats_aggregate.hh"
#include "src/util/delay_pipe.hh"
#include "src/util/ring_buffer.hh"
#include "src/util/wake_list.hh"

namespace conopt::pipeline {

/** One cycle value meaning "not scheduled yet". */
constexpr uint64_t neverCycle = ~uint64_t(0);

/** The simulated processor. */
class OooCore
{
  public:
    /**
     * @param config machine parameters
     * @param emu functional emulator positioned at the program entry
     */
    OooCore(const MachineConfig &config, arch::Emulator &emu);

    /**
     * Re-initialize for a new simulation under @p config, reading the
     * initial architectural state from the emulator (which the caller
     * must have reset/positioned at the program entry first). All hot
     * containers are cleared in place; storage is reallocated only
     * when @p config needs more capacity than any earlier run, so a
     * warm core starts its steady state with zero heap allocations
     * per simulated instruction.
     */
    void reset(const MachineConfig &config);

    /** Simulate until the program's HALT retires (or maxCycles). */
    const SimStats &run();

    /** Advance one cycle (exposed for fine-grained tests). Never
     *  fast-forwards: a manual tick() loop is the reference per-cycle
     *  path the equivalence tests compare against. */
    void tick();

    /**
     * Enable/disable idle-cycle fast-forward in run() (default on).
     * Purely a host-speed switch — both settings produce identical
     * SimStats (tests/test_wakeup.cc pins this). Survives reset().
     */
    void setFastForward(bool on) { fastForwardEnabled_ = on; }
    bool fastForwardEnabled() const { return fastForwardEnabled_; }

    /**
     * Enable/disable the address-hashed store-queue window in the load
     * forwarding/conflict scan (default on). Off, loads scan the whole
     * in-flight store queue — the reference path the equivalence tests
     * compare against. Purely a host-speed switch: both settings
     * produce identical SimStats (tests/test_wakeup.cc pins this).
     * Survives reset().
     */
    void setStoreWindow(bool on) { storeWindowEnabled_ = on; }
    bool storeWindowEnabled() const { return storeWindowEnabled_; }

    /**
     * Arm per-interval IPC sampling: every @p intervalInsts retired
     * instructions, the interval's IPC (insts retired / cycles
     * elapsed) is added to a bounded reservoir of @p reservoirCapacity
     * samples drawn with the deterministic stream seeded by @p seed.
     * 0 disables sampling (the default, and the mode gated runs use).
     *
     * Host-side observability only: the hook reads the retired and
     * cycle counters and writes a side accumulator — it never touches
     * simulated state, so SimStats are bit-identical with sampling on
     * or off, fast-forward on or off. Settings survive reset() like
     * setFastForward(); the collected samples clear per run.
     */
    void
    setIpcSampling(uint64_t intervalInsts,
                   size_t reservoirCapacity =
                       ReservoirAccumulator::kDefaultCapacity,
                   uint64_t seed = 0)
    {
        ipcSampleInterval_ = intervalInsts;
        ipcSampleSeed_ = seed;
        // Reconstruct (and reallocate) only on a capacity change so
        // re-arming identical sampling per job — SweepRunner does this
        // on every warm session — stays allocation-free.
        if (ipcReservoirCap_ != reservoirCapacity) {
            ipcReservoirCap_ = reservoirCapacity;
            ipcSamples_ =
                ReservoirAccumulator(ipcReservoirCap_, ipcSampleSeed_);
        } else {
            ipcSamples_.reset(ipcSampleSeed_);
        }
        ipcMarkRetired_ = stats_.retired;
        ipcMarkCycle_ = cycle_;
    }
    uint64_t ipcSampleInterval() const { return ipcSampleInterval_; }
    /** The reservoir of per-interval IPC samples from the last run. */
    const ReservoirAccumulator &ipcSamples() const { return ipcSamples_; }

    bool halted() const { return halted_; }
    uint64_t cycle() const { return cycle_; }
    /** Ticks run() actually executed; cycle() minus this is the number
     *  of idle cycles fast-forward skipped. Host-side introspection
     *  only — deliberately not part of SimStats. */
    uint64_t ticksExecuted() const { return ticksExecuted_; }
    const SimStats &stats() const { return stats_; }
    const PhysRegFile &intPrf() const { return intPrf_; }
    const PhysRegFile &fpPrf() const { return fpPrf_; }
    const core::RenameUnit &renameUnit() const { return rename_; }

  private:
    /** An instruction travelling through the front end. */
    struct FetchedInst
    {
        arch::DynInst dyn;
        branch::Prediction pred{};
        uint64_t fetchCycle = 0;
        bool isBranch = false;
        bool mispredicted = false; ///< direction or indirect target wrong
        bool misfetch = false;     ///< direct-target fixed up at decode
    };

    /**
     * A reorder-buffer entry: the cold, written-once-per-stage record.
     * Every field the steady state re-reads each cycle lives in the
     * hot parallel arrays below instead (indexed seq & soaMask_).
     */
    struct RobEntry
    {
        arch::DynInst dyn;
        core::OptResult opt;
        branch::Prediction pred{};
        bool isBranch = false;
        bool mispredicted = false;
        bool misfetch = false;
        bool earlyRecovered = false;
        bool isLoad = false;
        bool isStore = false;
        bool storeAddrWasUnknown = false;
        bool forwardedFromStore = false;

        uint64_t fetchCycle = 0;
        uint64_t renameCycle = 0;
        uint64_t issueCycle = neverCycle;
    };

    // --- stages (called in reverse order each tick) ----------------------
    void retireStage();
    void writebackStage();
    void issueStage();
    void dispatchStage();
    void renameStage();
    void fetchStage();

    // --- helpers -----------------------------------------------------------
    RobEntry &entryOf(uint64_t seq);
    PhysRegFile &prfFor(bool fp) { return fp ? fpPrf_ : intPrf_; }
    bool depsReady(const RobEntry &e) const;
    unsigned schedIndex(isa::OpClass cls) const;
    /** Outcome of a load's ordering scan against older stores. */
    enum class StoreScan : uint8_t { Clear, Forward, Block };
    /** Decide @p e (a load) against the youngest overlapping older
     *  in-flight store — via the hashed window, or the full queue scan
     *  when setStoreWindow(false). Identical verdicts by construction:
     *  both act on the same youngest overlapping store. */
    StoreScan scanOlderStores(const RobEntry &e);
    size_t storeBucketOf(uint64_t granule) const;
    void storeWindowInsert(uint64_t seq);
    void storeWindowRemove(uint64_t seq);
    bool tryIssueMem(RobEntry &e);
    bool tryIssueAlu(RobEntry &e, unsigned &budget);
    void completeAt(uint64_t cycle, uint64_t seq);
    void resolveMispredict(const RobEntry &e, uint64_t resolve_cycle);
    void finalizeStats();

    // --- event-driven wakeup ---------------------------------------------
    size_t soaIndex(uint64_t seq) const { return size_t(seq) & soaMask_; }
    /** The single write point of a register's ready cycle: updates the
     *  PRF and wakes every scheduler entry waiting on @p reg. */
    void setRegReady(bool fp, core::PhysRegId reg, uint64_t cycle);
    /** Register @p seq's unready operands in the wake lists (or
     *  schedule its ready event directly), at dispatch time. */
    void registerWakeups(uint64_t seq, const RobEntry &e, unsigned sched);
    /** @p seq's operands all have known ready cycles; queue it to
     *  enter its scheduler's ready queue at cycle @p ready. */
    void scheduleReady(uint64_t seq, uint64_t ready);
    /** Insert @p seq into ready queue @p sched, keeping age order. */
    void insertReady(unsigned sched, uint64_t seq);
    /** Jump cycle_ to just before the next cycle anything can happen,
     *  crediting skipped fetch-stall cycles. No-op when any work is
     *  possible next cycle. */
    void fastForward();

    // --- configuration -----------------------------------------------------
    MachineConfig cfg_;
    unsigned optExtra_;
    unsigned renameDepth_;
    unsigned ilineShift_;

    // --- components ----------------------------------------------------------
    arch::Emulator &emu_;
    PhysRegFile intPrf_;
    PhysRegFile fpPrf_;
    core::RenameUnit rename_;
    branch::BranchPredictor bp_;
    cache::Hierarchy hier_;

    // --- pipeline state -------------------------------------------------------
    uint64_t cycle_ = 0;
    bool halted_ = false;
    bool fastForwardEnabled_ = true;
    /** Did any stage do work this tick? Cleared each tick; when still
     *  false afterwards the run loop attempts a fast-forward, keeping
     *  the skip logic entirely off the busy-cycle path. */
    bool progress_ = false;
    SimStats stats_;

    DelayPipe<FetchedInst> frontPipe_;
    size_t frontCap_;
    DelayPipe<uint64_t> dispatchPipe_; ///< seqs in rename/optimize stages
    size_t dispatchCap_;

    RingBuffer<RobEntry> rob_;
    uint64_t retiredCount_ = 0;

    // --- hot per-entry state (SoA, indexed seq & soaMask_) -----------------
    size_t soaMask_ = 0;
    std::vector<uint8_t> hotDone_;
    std::vector<uint8_t> hotIssued_;
    std::vector<uint64_t> hotDoneCycle_;
    std::vector<uint64_t> hotAddrReadyCycle_;
    /** Wakeup bookkeeping: operands still waiting for a producer, the
     *  max known operand-ready cycle (seeded with dispatch cycle +
     *  schedMinDelay), and which scheduler the entry sits in. */
    std::vector<uint8_t> hotPendingDeps_;
    std::vector<uint64_t> hotDepBound_;
    std::vector<uint8_t> hotSched_;
    /** Store fields for the load-ordering scan: [lo, hi) address range
     *  and the commit-data dependency. */
    std::vector<uint64_t> hotStoreLo_;
    std::vector<uint64_t> hotStoreHi_;
    std::vector<core::PhysRegId> hotStoreDataReg_;
    std::vector<uint8_t> hotStoreDataFp_;

    /** Four schedulers: int-simple, int-complex, fp, mem (Table 2).
     *  Occupancy is a counter (dispatch checks it); the occupants
     *  themselves live in the wake lists / ready events until they
     *  reach their scheduler's ready queue, sorted by seq so issue
     *  preserves the polling loop's age order exactly. */
    std::array<unsigned, 4> schedCount_{};
    std::array<std::vector<uint64_t>, 4> ready_;

    /** Entries whose operands all have known ready cycles, waiting for
     *  that cycle: (cycle, seq), sorted descending like completions_
     *  so the soonest event pops from back(). */
    std::vector<std::pair<uint64_t, uint64_t>> readyEvents_;

    /** Producer wake lists, one per register file. */
    WakeList intWake_;
    WakeList fpWake_;

    /** In-flight stores (seqs), oldest first, for load ordering. */
    RingBuffer<uint64_t> storeQueue_;

    /**
     * Address-hashed window over the in-flight stores: per-8-byte-
     * granule bucket chains, youngest first, so a load's ordering scan
     * visits only possibly-overlapping stores instead of the whole
     * queue. A store at SoA slot sx owns nodes 2*sx and 2*sx+1, one
     * per granule its [lo, hi) range touches (any ≤8-byte access spans
     * ≤2 consecutive granules). Maintained unconditionally — insert
     * and unlink are O(1) — while storeWindowEnabled_ only selects
     * which scan tryIssueMem runs.
     */
    static constexpr uint64_t storeGranuleShift = 3;
    bool storeWindowEnabled_ = true;
    size_t storeBucketMask_ = 0;
    std::vector<int32_t> storeBucketHead_; ///< bucket -> head node, -1 none
    std::vector<int32_t> storeNodeNext_;
    std::vector<int32_t> storeNodePrev_;
    std::vector<uint64_t> storeNodeSeq_;

    /** Completion events (cycle, seq), kept sorted descending so the
     *  next event is at back(): a flat sorted-insertion list pops in
     *  exactly the order of the min-heap it replaces ((cycle, seq)
     *  pairs are unique), with no per-event heap churn. */
    std::vector<std::pair<uint64_t, uint64_t>> completions_;

    // --- fetch state ---------------------------------------------------------
    bool mispredictPending_ = false;
    uint64_t pendingMispredictSeq_ = 0;
    uint64_t fetchResumeCycle_ = 0;   ///< fetch blocked before this cycle
    uint64_t icacheReadyCycle_ = 0;
    uint64_t lastFetchLine_ = neverCycle;

    // --- per-cycle FU accounting ------------------------------------------
    unsigned portsUsedThisCycle_ = 0;
    unsigned agenUsedThisCycle_ = 0;

    uint64_t lastRetireCycle_ = 0;
    uint64_t ticksExecuted_ = 0;

    // --- per-interval IPC sampling (host-side observability) --------------
    uint64_t ipcSampleInterval_ = 0; ///< 0 = off (gated runs)
    size_t ipcReservoirCap_ = ReservoirAccumulator::kDefaultCapacity;
    uint64_t ipcSampleSeed_ = 0;
    ReservoirAccumulator ipcSamples_;
    uint64_t ipcMarkRetired_ = 0; ///< retired count at last sample
    uint64_t ipcMarkCycle_ = 0;   ///< cycle at last sample
};

} // namespace conopt::pipeline

#endif // CONOPT_PIPELINE_OOO_CORE_HH
