/**
 * @file
 * Reference-counted physical register file with the timing state the
 * pipeline and the optimizer need:
 *
 *  - oracle value (set at rename; used for strict checking and as the
 *    value delivered by value feedback)
 *  - readyAt: the cycle from which dependents may issue (set at producer
 *    issue time, models full bypassing)
 *  - vfbAt: the cycle from which the optimizer sees the value (execute
 *    completion + transmission delay; paper sections 2.2/3.3/6.4)
 *
 * Registers are freed when their reference count reaches zero (the
 * scheme of Jourdan et al. [15] that the paper depends on, since RAT
 * symbolic entries and MBC entries extend lifetimes).
 */

#ifndef CONOPT_PIPELINE_PHYS_REG_FILE_HH
#define CONOPT_PIPELINE_PHYS_REG_FILE_HH

#include <cstdint>
#include <vector>

#include "src/core/phys_reg.hh"

namespace conopt::pipeline {

/** Concrete physical register file. */
class PhysRegFile final : public core::PhysRegInterface
{
  public:
    /** A cycle value meaning "not yet". */
    static constexpr uint64_t never = ~uint64_t(0);

    explicit PhysRegFile(unsigned num_regs);

    /**
     * Re-initialize for a new simulation: every register free, zeroed
     * timing state, zeroed alloc counter, exactly as freshly
     * constructed with @p num_regs (including free-list order, so a
     * reused file allocates the same ids in the same sequence).
     * Reallocates only when @p num_regs exceeds the current capacity.
     */
    void reset(unsigned num_regs);

    // PhysRegInterface ---------------------------------------------------
    core::PhysRegId alloc() override;
    unsigned freeCount() const override { return unsigned(freeList_.size()); }
    void addRef(core::PhysRegId reg) override;
    void release(core::PhysRegId reg) override;
    bool valueKnown(core::PhysRegId reg, uint64_t cycle,
                    uint64_t &value) const override;
    uint64_t oracleValue(core::PhysRegId reg) const override;
    void setOracle(core::PhysRegId reg, uint64_t value) override;

    // Timing -------------------------------------------------------------
    /** Dependents of @p reg may issue from @p cycle on. */
    void setReadyAt(core::PhysRegId reg, uint64_t cycle);
    uint64_t readyAt(core::PhysRegId reg) const;
    bool readyBy(core::PhysRegId reg, uint64_t cycle) const
    {
        return readyAt(reg) <= cycle;
    }

    /** The optimizer sees the value from @p cycle on (value feedback). */
    void setVfbAt(core::PhysRegId reg, uint64_t cycle);

    // Introspection --------------------------------------------------------
    unsigned size() const { return unsigned(entries_.size()); }
    unsigned allocatedCount() const { return size() - freeCount(); }
    bool isAllocated(core::PhysRegId reg) const;
    uint32_t refCount(core::PhysRegId reg) const;
    uint64_t totalAllocs() const { return totalAllocs_; }

  private:
    struct Entry
    {
        uint32_t refs = 0;
        bool allocated = false;
        uint64_t oracle = 0;
        uint64_t readyAt = never;
        uint64_t vfbAt = never;
    };

    std::vector<Entry> entries_;
    std::vector<core::PhysRegId> freeList_;
    uint64_t totalAllocs_ = 0;
};

} // namespace conopt::pipeline

#endif // CONOPT_PIPELINE_PHYS_REG_FILE_HH
