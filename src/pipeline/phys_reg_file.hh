/**
 * @file
 * Reference-counted physical register file with the timing state the
 * pipeline and the optimizer need:
 *
 *  - oracle value (set at rename; used for strict checking and as the
 *    value delivered by value feedback)
 *  - readyAt: the cycle from which dependents may issue (set at producer
 *    issue time, models full bypassing)
 *  - vfbAt: the cycle from which the optimizer sees the value (execute
 *    completion + transmission delay; paper sections 2.2/3.3/6.4)
 *
 * Registers are freed when their reference count reaches zero (the
 * scheme of Jourdan et al. [15] that the paper depends on, since RAT
 * symbolic entries and MBC entries extend lifetimes).
 */

#ifndef CONOPT_PIPELINE_PHYS_REG_FILE_HH
#define CONOPT_PIPELINE_PHYS_REG_FILE_HH

#include <cstdint>
#include <vector>

#include "src/core/phys_reg.hh"
#include "src/util/logging.hh"

namespace conopt::pipeline {

/** Concrete physical register file. */
class PhysRegFile final : public core::PhysRegInterface
{
  public:
    /** A cycle value meaning "not yet". */
    static constexpr uint64_t never = ~uint64_t(0);

    explicit PhysRegFile(unsigned num_regs);

    /**
     * Re-initialize for a new simulation: every register free, zeroed
     * timing state, zeroed alloc counter, exactly as freshly
     * constructed with @p num_regs (including free-list order, so a
     * reused file allocates the same ids in the same sequence).
     * Reallocates only when @p num_regs exceeds the current capacity.
     */
    void reset(unsigned num_regs);

    // PhysRegInterface. Defined inline: rename/retire call these a
    // handful of times per instruction, and the cross-TU call overhead
    // showed up as several percent of host time in profiles.
    core::PhysRegId
    alloc() override
    {
        if (freeList_.empty())
            return core::invalidPreg;
        const core::PhysRegId reg = freeList_.back();
        freeList_.pop_back();
        conopt_assert(!allocated_[reg]);
        allocated_[reg] = 1;
        refs_[reg] = 1;
        oracle_[reg] = 0;
        readyAt_[reg] = never;
        vfbAt_[reg] = never;
        ++totalAllocs_;
        return reg;
    }

    unsigned freeCount() const override { return unsigned(freeList_.size()); }

    void
    addRef(core::PhysRegId reg) override
    {
        conopt_assert(reg < numRegs_);
        conopt_assert(allocated_[reg]);
        ++refs_[reg];
    }

    void
    release(core::PhysRegId reg) override
    {
        conopt_assert(reg < numRegs_);
        conopt_assert(allocated_[reg] && refs_[reg] > 0);
        if (--refs_[reg] == 0) {
            allocated_[reg] = 0;
            // conopt-lint: allow(hotpath-alloc) reserved to numRegs_ in
            freeList_.push_back(reg);  // reset(); can never exceed it
        }
    }

    bool
    valueKnown(core::PhysRegId reg, uint64_t cycle,
               uint64_t &value) const override
    {
        conopt_assert(reg < numRegs_);
        conopt_assert(allocated_[reg]);
        if (vfbAt_[reg] <= cycle) {
            value = oracle_[reg];
            return true;
        }
        return false;
    }

    uint64_t
    oracleValue(core::PhysRegId reg) const override
    {
        conopt_assert(reg < numRegs_);
        conopt_assert(allocated_[reg]);
        return oracle_[reg];
    }

    void
    setOracle(core::PhysRegId reg, uint64_t value) override
    {
        conopt_assert(reg < numRegs_);
        conopt_assert(allocated_[reg]);
        oracle_[reg] = value;
    }

    // Timing -------------------------------------------------------------
    /** Dependents of @p reg may issue from @p cycle on. */
    void
    setReadyAt(core::PhysRegId reg, uint64_t cycle)
    {
        conopt_assert(reg < numRegs_);
        conopt_assert(allocated_[reg]);
        readyAt_[reg] = cycle;
    }

    uint64_t
    readyAt(core::PhysRegId reg) const
    {
        conopt_assert(reg < numRegs_);
        conopt_assert(allocated_[reg]);
        return readyAt_[reg];
    }

    bool readyBy(core::PhysRegId reg, uint64_t cycle) const
    {
        return readyAt(reg) <= cycle;
    }

    /** The optimizer sees the value from @p cycle on (value feedback). */
    void
    setVfbAt(core::PhysRegId reg, uint64_t cycle)
    {
        conopt_assert(reg < numRegs_);
        conopt_assert(allocated_[reg]);
        vfbAt_[reg] = cycle;
    }

    // Introspection --------------------------------------------------------
    unsigned size() const { return numRegs_; }
    unsigned allocatedCount() const { return size() - freeCount(); }

    bool
    isAllocated(core::PhysRegId reg) const
    {
        conopt_assert(reg < numRegs_);
        return allocated_[reg] != 0;
    }

    uint32_t
    refCount(core::PhysRegId reg) const
    {
        conopt_assert(reg < numRegs_);
        return refs_[reg];
    }

    uint64_t totalAllocs() const { return totalAllocs_; }

  private:
    // Structure-of-arrays storage: readyAt is read on every wakeup /
    // store-forward / retire readiness check, so it lives in its own
    // dense array instead of striding across a fat per-register
    // record; the rarely-written bookkeeping (refs, oracle values)
    // stays out of those cache lines.
    unsigned numRegs_ = 0;
    std::vector<uint64_t> readyAt_; ///< hot: issue-readiness cycle
    std::vector<uint64_t> vfbAt_;   ///< warm: value-feedback cycle
    std::vector<uint64_t> oracle_;  ///< warm: oracle value
    std::vector<uint32_t> refs_;    ///< cold: reference counts
    std::vector<uint8_t> allocated_;
    std::vector<core::PhysRegId> freeList_;
    uint64_t totalAllocs_ = 0;
};

} // namespace conopt::pipeline

#endif // CONOPT_PIPELINE_PHYS_REG_FILE_HH
