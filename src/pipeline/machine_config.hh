/**
 * @file
 * Full machine configuration (paper Table 2) plus the optimizer knobs,
 * with the preset variants used throughout the evaluation:
 *
 *   - baseline():   4-wide P4-like machine, no optimizer, 20-cycle
 *                   minimum branch-resolution pipeline
 *   - optimized():  baseline + 2-stage continuous optimizer
 *   - fetchBound(): doubled scheduler entries (fig. 8)
 *   - execBound():  8-wide front end (fig. 8)
 */

#ifndef CONOPT_PIPELINE_MACHINE_CONFIG_HH
#define CONOPT_PIPELINE_MACHINE_CONFIG_HH

#include <bit>
#include <cstdint>
#include <string>

#include "src/branch/branch_predictor.hh"
#include "src/cache/cache.hh"
#include "src/core/optimizer.hh"

namespace conopt::pipeline {

/** Every parameter of the simulated machine. */
struct MachineConfig
{
    // --- widths (Table 2: fetch/decode/rename 4, retire 6) -------------
    unsigned fetchWidth = 4;
    unsigned renameWidth = 4;
    unsigned retireWidth = 6;

    // --- stage depths (tuned so the minimum branch-resolution pipeline
    //     is 20 cycles on the baseline; see tests/test_pipeline.cc) -----
    unsigned frontEndDepth = 9;     ///< fetch + decode stages
    unsigned renameBaseStages = 2;  ///< rename depth without optimizer
    unsigned schedMinDelay = 1;     ///< dispatch-to-first-issue latency
    unsigned regReadDepth = 3;      ///< register read + bypass stages
    unsigned redirectPenalty = 4;   ///< resolve -> first refetch
    unsigned resteerPenalty = 6;    ///< decode-stage direct-target fixup

    // --- resources (Table 2) --------------------------------------------
    unsigned robEntries = 160;      ///< max in-flight instructions
    unsigned schedEntries = 8;      ///< per scheduler (4 schedulers)
    unsigned dispatchQueueEntries = 16;
    unsigned numSimpleAlu = 4;
    unsigned numComplexAlu = 1;
    unsigned numFpAlu = 2;
    unsigned numAgen = 2;
    unsigned numDCachePorts = 2;
    unsigned intPhysRegs = 768;
    unsigned fpPhysRegs = 320;

    // --- memory system (Table 2) ----------------------------------------
    cache::HierarchyConfig hier;

    // --- branch prediction (Table 2) --------------------------------------
    branch::PredictorConfig bp;

    // --- optimizer ---------------------------------------------------------
    core::OptimizerConfig opt;

    /** Value-feedback transmission delay in cycles (fig. 12). */
    unsigned vfbDelay = 1;

    /** Front-end stall charged when a speculative MBC forward turns out
     *  stale (recovery from an unknown-address store collision). */
    unsigned mbcMisspecPenalty = 20;

    /** Safety net: abort simulation after this many cycles. */
    uint64_t maxCycles = uint64_t(1) << 40;

    /** Total rename-stage depth including the optimizer's extra stages. */
    unsigned
    renameDepth() const
    {
        return renameBaseStages + (opt.enabled ? opt.extraStages : 0);
    }

    // --- derived capacities (sizing for the event-driven scheduler) ------
    // Methods only: adding *fields* here would change every persisted
    // config fingerprint and invalidate the bench baselines.

    /** Occupancy bound across all four schedulers. */
    unsigned schedTotalEntries() const { return 4 * schedEntries; }

    /**
     * Concurrent wake-list registrations the core can ever hold per
     * register file: every waiting scheduler entry registers at most
     * its (up to 3) source operands, and in the worst case all of
     * them wait on one file.
     */
    unsigned wakeListCapacity() const { return 3 * schedTotalEntries(); }

    /**
     * Hash buckets for the store-queue address window (OooCore's load
     * forwarding/conflict scan). Power of two ≥ 2× the ROB bound on
     * in-flight stores, so chains stay short even when every ROB entry
     * is a store. Host-side sizing only — never affects timing.
     */
    unsigned
    storeWindowBuckets() const
    {
        return unsigned(std::bit_ceil(uint64_t(robEntries) * 2));
    }

    // --- presets -----------------------------------------------------------
    static MachineConfig baseline();
    static MachineConfig optimized();
    static MachineConfig withOptimizer(const core::OptimizerConfig &opt);
    static MachineConfig fetchBound(bool with_opt);
    static MachineConfig execBound(bool with_opt);

    /** Human-readable dump (Table 2 reproduction). */
    std::string describe() const;
};

} // namespace conopt::pipeline

#endif // CONOPT_PIPELINE_MACHINE_CONFIG_HH
