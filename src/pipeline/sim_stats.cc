#include "src/pipeline/sim_stats.hh"

#include <cstdio>

namespace conopt::pipeline {

std::string
SimStats::summary() const
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "cycles=%llu retired=%llu ipc=%.3f "
                  "early=%.1f%% recov-mispred=%.1f%% addr-gen=%.1f%% "
                  "lds-removed=%.1f%%",
                  static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(retired), ipc(),
                  100.0 * execEarlyFrac(), 100.0 * recoveredMispredFrac(),
                  100.0 * addrGenFrac(), 100.0 * loadsRemovedFrac());
    return buf;
}

} // namespace conopt::pipeline
