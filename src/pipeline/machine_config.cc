#include "src/pipeline/machine_config.hh"

#include <cstdio>

namespace conopt::pipeline {

MachineConfig
MachineConfig::baseline()
{
    MachineConfig c;
    c.opt = core::OptimizerConfig::baseline();
    return c;
}

MachineConfig
MachineConfig::optimized()
{
    MachineConfig c;
    c.opt = core::OptimizerConfig::full();
    return c;
}

MachineConfig
MachineConfig::withOptimizer(const core::OptimizerConfig &opt)
{
    MachineConfig c;
    c.opt = opt;
    return c;
}

MachineConfig
MachineConfig::fetchBound(bool with_opt)
{
    // Fig. 8: "made fetch-bound by doubling the number of scheduler
    // entries from four 8-entry schedulers to four 16-entry schedulers."
    MachineConfig c;
    c.schedEntries = 16;
    c.opt = with_opt ? core::OptimizerConfig::full()
                     : core::OptimizerConfig::baseline();
    return c;
}

MachineConfig
MachineConfig::execBound(bool with_opt)
{
    // Fig. 8: "made execution-bound by changing the fetch/decode/rename
    // from 4-wide to 8-wide."
    MachineConfig c;
    c.fetchWidth = 8;
    c.renameWidth = 8;
    c.opt = with_opt ? core::OptimizerConfig::full()
                     : core::OptimizerConfig::baseline();
    return c;
}

std::string
MachineConfig::describe() const
{
    char buf[2048];
    std::snprintf(
        buf, sizeof(buf),
        "Fetch/Decode/Rename    %u insts/cycle\n"
        "Retire                 %u insts/cycle\n"
        "BrPred                 %u-bit gshare, %u-entry BTB\n"
        "Pipeline               %u cycles (min) for BR res\n"
        "                       (if not executed early)\n"
        "Scheduler              four %u-entry schedulers\n"
        "                       (int, complex int, fp, mem)\n"
        "Inst Window            max. %u in-flight insts\n"
        "ExeUnits               %u Simple IALUs, %u Complex IALU,\n"
        "                       %u FPALUs, %u Agen\n"
        "L1 I Cache             %lluKB, %u-way assoc., %uB line, %u cycle\n"
        "L1 D Cache             %lluKB, %u-way assoc., %uB line, "
        "%u ports, %u cycles\n"
        "L2 Unified Cache       %lluMB, %u-way assoc., %uB line, "
        "%u cycles\n"
        "Memory                 %u cycle latency\n"
        "Optimizer              %s, %u stages, MBC %u entries\n"
        "Value feedback delay   %u cycles\n",
        fetchWidth, retireWidth, bp.historyBits, bp.btbEntries,
        frontEndDepth + renameDepth() + schedMinDelay + regReadDepth + 1 +
            redirectPenalty,
        schedEntries, robEntries, numSimpleAlu, numComplexAlu, numFpAlu,
        numAgen,
        static_cast<unsigned long long>(hier.l1i.sizeBytes / 1024),
        hier.l1i.assoc, hier.l1i.lineBytes, hier.l1i.latency,
        static_cast<unsigned long long>(hier.l1d.sizeBytes / 1024),
        hier.l1d.assoc, hier.l1d.lineBytes, numDCachePorts,
        hier.l1d.latency,
        static_cast<unsigned long long>(hier.l2.sizeBytes / (1024 * 1024)),
        hier.l2.assoc, hier.l2.lineBytes, hier.l2.latency,
        hier.memLatency, opt.enabled ? "enabled" : "disabled",
        opt.enabled ? opt.extraStages : 0, opt.mbc.entries, vfbDelay);
    return buf;
}

} // namespace conopt::pipeline
