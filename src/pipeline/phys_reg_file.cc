#include "src/pipeline/phys_reg_file.hh"

#include "src/util/logging.hh"

namespace conopt::pipeline {

using core::PhysRegId;

PhysRegFile::PhysRegFile(unsigned num_regs)
{
    reset(num_regs);
}

void
PhysRegFile::reset(unsigned num_regs)
{
    entries_.clear();
    entries_.resize(num_regs);
    freeList_.clear();
    freeList_.reserve(num_regs);
    // Allocate low ids first (cosmetic: matches paper examples).
    for (unsigned i = num_regs; i-- > 0;)
        freeList_.push_back(PhysRegId(i));
    totalAllocs_ = 0;
}

PhysRegId
PhysRegFile::alloc()
{
    if (freeList_.empty())
        return core::invalidPreg;
    const PhysRegId reg = freeList_.back();
    freeList_.pop_back();
    Entry &e = entries_[reg];
    conopt_assert(!e.allocated);
    e = Entry{};
    e.allocated = true;
    e.refs = 1;
    ++totalAllocs_;
    return reg;
}

void
PhysRegFile::addRef(PhysRegId reg)
{
    conopt_assert(reg < entries_.size());
    Entry &e = entries_[reg];
    conopt_assert(e.allocated);
    ++e.refs;
}

void
PhysRegFile::release(PhysRegId reg)
{
    conopt_assert(reg < entries_.size());
    Entry &e = entries_[reg];
    conopt_assert(e.allocated && e.refs > 0);
    if (--e.refs == 0) {
        e.allocated = false;
        freeList_.push_back(reg);
    }
}

bool
PhysRegFile::valueKnown(PhysRegId reg, uint64_t cycle,
                        uint64_t &value) const
{
    conopt_assert(reg < entries_.size());
    const Entry &e = entries_[reg];
    conopt_assert(e.allocated);
    if (e.vfbAt <= cycle) {
        value = e.oracle;
        return true;
    }
    return false;
}

uint64_t
PhysRegFile::oracleValue(PhysRegId reg) const
{
    conopt_assert(reg < entries_.size());
    conopt_assert(entries_[reg].allocated);
    return entries_[reg].oracle;
}

void
PhysRegFile::setOracle(PhysRegId reg, uint64_t value)
{
    conopt_assert(reg < entries_.size());
    conopt_assert(entries_[reg].allocated);
    entries_[reg].oracle = value;
}

void
PhysRegFile::setReadyAt(PhysRegId reg, uint64_t cycle)
{
    conopt_assert(reg < entries_.size());
    conopt_assert(entries_[reg].allocated);
    entries_[reg].readyAt = cycle;
}

uint64_t
PhysRegFile::readyAt(PhysRegId reg) const
{
    conopt_assert(reg < entries_.size());
    conopt_assert(entries_[reg].allocated);
    return entries_[reg].readyAt;
}

void
PhysRegFile::setVfbAt(PhysRegId reg, uint64_t cycle)
{
    conopt_assert(reg < entries_.size());
    conopt_assert(entries_[reg].allocated);
    entries_[reg].vfbAt = cycle;
}

bool
PhysRegFile::isAllocated(PhysRegId reg) const
{
    conopt_assert(reg < entries_.size());
    return entries_[reg].allocated;
}

uint32_t
PhysRegFile::refCount(PhysRegId reg) const
{
    conopt_assert(reg < entries_.size());
    return entries_[reg].refs;
}

} // namespace conopt::pipeline
