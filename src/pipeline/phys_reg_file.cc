#include "src/pipeline/phys_reg_file.hh"

namespace conopt::pipeline {

using core::PhysRegId;

PhysRegFile::PhysRegFile(unsigned num_regs)
{
    reset(num_regs);
}

void
PhysRegFile::reset(unsigned num_regs)
{
    numRegs_ = num_regs;
    readyAt_.assign(num_regs, never);
    vfbAt_.assign(num_regs, never);
    oracle_.assign(num_regs, 0);
    refs_.assign(num_regs, 0);
    allocated_.assign(num_regs, 0);
    freeList_.clear();
    freeList_.reserve(num_regs);
    // Allocate low ids first (cosmetic: matches paper examples).
    for (unsigned i = num_regs; i-- > 0;)
        // conopt-lint: allow(hotpath-alloc) reset() fill, reserved above
        freeList_.push_back(PhysRegId(i));
    totalAllocs_ = 0;
}

} // namespace conopt::pipeline
