#include "src/pipeline/ooo_core.hh"

#include <algorithm>

#include "src/util/bitops.hh"
#include "src/util/logging.hh"

namespace conopt::pipeline {

using core::invalidPreg;
using isa::OpClass;
using isa::Opcode;

OooCore::OooCore(const MachineConfig &config, arch::Emulator &emu)
    : cfg_(config),
      emu_(emu),
      intPrf_(config.intPhysRegs),
      fpPrf_(config.fpPhysRegs),
      rename_(config.opt, intPrf_, fpPrf_),
      bp_(config.bp),
      hier_(config.hier)
{
    reset(config);
}

void
OooCore::reset(const MachineConfig &config)
{
    cfg_ = config;
    optExtra_ = config.opt.enabled ? config.opt.extraStages : 0;
    renameDepth_ = config.renameDepth();
    ilineShift_ = log2Exact(config.hier.l1i.lineBytes);

    // Components, wholesale. The register files must reset before the
    // rename unit: its RAT/MBC references from the previous run point
    // into the old file contents and are forgotten, not released.
    intPrf_.reset(config.intPhysRegs);
    fpPrf_.reset(config.fpPhysRegs);
    bp_.reset(config.bp);
    hier_.reset(config.hier);

    // Pipeline state.
    cycle_ = 0;
    halted_ = false;
    progress_ = false;
    stats_ = SimStats{};
    retiredCount_ = 0;
    mispredictPending_ = false;
    pendingMispredictSeq_ = 0;
    fetchResumeCycle_ = 0;
    icacheReadyCycle_ = 0;
    lastFetchLine_ = neverCycle;
    portsUsedThisCycle_ = 0;
    agenUsedThisCycle_ = 0;
    lastRetireCycle_ = 0;
    ticksExecuted_ = 0;
    // Allocation-retaining reset: the zero-allocation warm-path
    // contract (tests/test_session.cc) covers sampling-off runs, and
    // keeping it for sampling-on runs costs nothing — a capacity
    // change goes through setIpcSampling(), which reconstructs.
    ipcSamples_.reset(ipcSampleSeed_);
    ipcMarkRetired_ = 0;
    ipcMarkCycle_ = 0;

    // Hot containers: capacity reservations sized from the config so
    // the tick loop never allocates. Each queue's occupancy bound is
    // enforced by the corresponding stage's resource check.
    frontPipe_.clear();
    frontPipe_.setDepth(config.frontEndDepth);
    frontCap_ = size_t(config.frontEndDepth + 2) * config.fetchWidth;
    frontPipe_.reserve(frontCap_);
    dispatchPipe_.clear();
    dispatchPipe_.setDepth(renameDepth_);
    dispatchCap_ = size_t(config.dispatchQueueEntries) +
                   size_t(renameDepth_) * config.renameWidth;
    dispatchPipe_.reserve(dispatchCap_);
    rob_.reset(config.robEntries);
    storeQueue_.reset(config.robEntries); // in-flight stores <= ROB
    completions_.clear();
    completions_.reserve(config.robEntries + 1); // <=1 event per entry

    // Hot SoA arrays: one slot per ROB ring slot, indexed seq & mask.
    // In-flight seqs span at most robEntries <= capacity, so live
    // entries never collide; each slot is re-initialized at rename.
    soaMask_ = rob_.capacity() - 1;
    const size_t soa_n = soaMask_ + 1;
    hotDone_.assign(soa_n, 0);
    hotIssued_.assign(soa_n, 0);
    hotDoneCycle_.assign(soa_n, neverCycle);
    hotAddrReadyCycle_.assign(soa_n, neverCycle);
    hotPendingDeps_.assign(soa_n, 0);
    hotDepBound_.assign(soa_n, 0);
    hotSched_.assign(soa_n, 0);
    hotStoreLo_.assign(soa_n, 0);
    hotStoreHi_.assign(soa_n, 0);
    hotStoreDataReg_.assign(soa_n, invalidPreg);
    hotStoreDataFp_.assign(soa_n, 0);

    // Store-window hash chains (two nodes per SoA slot; see header).
    storeBucketMask_ = config.storeWindowBuckets() - 1;
    storeBucketHead_.assign(storeBucketMask_ + 1, -1);
    storeNodeNext_.assign(2 * soa_n, -1);
    storeNodePrev_.assign(2 * soa_n, -1);
    storeNodeSeq_.assign(2 * soa_n, 0);

    // Event-driven scheduler state.
    schedCount_.fill(0);
    for (auto &q : ready_) {
        q.clear();
        q.reserve(config.schedEntries);
    }
    readyEvents_.clear();
    readyEvents_.reserve(config.schedTotalEntries());
    intWake_.reset(config.intPhysRegs, config.wakeListCapacity());
    fpWake_.reset(config.fpPhysRegs, config.wakeListCapacity());

    // Install the initial architectural register state.
    std::array<uint64_t, isa::numIntRegs> int_init{};
    std::array<uint64_t, isa::numFpRegs> fp_init{};
    for (unsigned r = 0; r < isa::numIntRegs; ++r)
        int_init[r] = emu_.state().readInt(isa::RegIndex(r));
    for (unsigned r = 0; r < isa::numFpRegs; ++r)
        fp_init[r] = emu_.state().fpRegs[r];
    rename_.reset(config.opt, int_init, fp_init);

    // Initial register values are known from cycle 0 (they are
    // architectural state, not in-flight results).
    // reset() already recorded them as constants; mark the physical
    // registers ready for issue as well. (Plain setReadyAt, not the
    // waking variant: the wake lists are empty by construction.)
    for (unsigned r = 0; r < isa::numIntRegs; ++r) {
        if (r == isa::zeroReg)
            continue;
        const core::PhysRegId p = rename_.rat().read(isa::RegIndex(r)).mapping;
        intPrf_.setReadyAt(p, 0);
        intPrf_.setVfbAt(p, 0);
    }
    for (unsigned r = 0; r < isa::numFpRegs; ++r) {
        const core::PhysRegId p = rename_.fpRat().read(isa::RegIndex(r));
        fpPrf_.setReadyAt(p, 0);
        fpPrf_.setVfbAt(p, 0);
    }
}

OooCore::RobEntry &
OooCore::entryOf(uint64_t seq)
{
    conopt_assert(!rob_.empty());
    const uint64_t head = rob_.front().dyn.seq;
    conopt_assert(seq >= head && seq - head < rob_.size());
    return rob_[seq - head];
}

unsigned
OooCore::schedIndex(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntSimple:
        return 0;
      case OpClass::IntComplex:
        return 1;
      case OpClass::Fp:
        return 2;
      case OpClass::Mem:
        return 3;
      default:
        conopt_panic("no scheduler for this op class");
    }
}

bool
OooCore::depsReady(const RobEntry &e) const
{
    for (unsigned i = 0; i < e.opt.numDeps; ++i) {
        const core::SrcDep &d = e.opt.deps[i];
        const PhysRegFile &prf = d.isFp ? fpPrf_ : intPrf_;
        if (!prf.readyBy(d.reg, cycle_))
            return false;
    }
    return true;
}

void
OooCore::completeAt(uint64_t cycle, uint64_t seq)
{
    // Keep the flat list sorted descending; the soonest event stays at
    // back(). Insertion cost is a short memmove over in-flight events,
    // which profiles cheaper than the heap's alloc-and-sift for the
    // small windows a real config produces.
    const std::pair<uint64_t, uint64_t> ev(cycle, seq);
    const auto it = std::upper_bound(completions_.begin(),
                                     completions_.end(), ev,
                                     std::greater<>());
    // conopt-lint: allow(hotpath-alloc) sorted insert into a vector
    completions_.insert(it, ev);  // reserved to window size in reset()
}

void
OooCore::resolveMispredict(const RobEntry &e, uint64_t resolve_cycle)
{
    conopt_assert(mispredictPending_);
    conopt_assert(pendingMispredictSeq_ == e.dyn.seq);
    mispredictPending_ = false;
    fetchResumeCycle_ = std::max(fetchResumeCycle_,
                                 resolve_cycle + cfg_.redirectPenalty);
    // Refetch from the corrected target: force an I-cache re-access.
    lastFetchLine_ = neverCycle;
}

// ---------------------------------------------------------------------------
// Event-driven wakeup
// ---------------------------------------------------------------------------

void
OooCore::insertReady(unsigned sched, uint64_t seq)
{
    // Sorted by seq: issue scans each ready queue oldest-first, which
    // reproduces the age order of the polling scheduler scan exactly.
    auto &q = ready_[sched];
    // conopt-lint: allow(hotpath-alloc) reserved to scheduler size in reset()
    q.insert(std::upper_bound(q.begin(), q.end(), seq), seq);
}

void
OooCore::scheduleReady(uint64_t seq, uint64_t ready)
{
    if (ready <= cycle_) {
        // Woken by a producer issuing earlier in this very issue scan
        // (a consumer is always younger, so it lands ahead of the
        // cursor): it may still issue this cycle, exactly like the
        // polling loop, which would reach it later in its scan.
        insertReady(hotSched_[soaIndex(seq)], seq);
    } else {
        const std::pair<uint64_t, uint64_t> ev(ready, seq);
        const auto it = std::upper_bound(readyEvents_.begin(),
                                         readyEvents_.end(), ev,
                                         std::greater<>());
        // conopt-lint: allow(hotpath-alloc) reserved to total scheduler
        readyEvents_.insert(it, ev);  // entries in reset()
    }
}

void
OooCore::setRegReady(bool fp, core::PhysRegId reg, uint64_t cycle)
{
    prfFor(fp).setReadyAt(reg, cycle);
    WakeList &wl = fp ? fpWake_ : intWake_;
    if (wl.empty(reg))
        return;
    wl.drain(reg, [this, cycle](uint64_t seq) {
        const size_t ix = soaIndex(seq);
        if (cycle > hotDepBound_[ix])
            hotDepBound_[ix] = cycle;
        conopt_assert(hotPendingDeps_[ix] > 0);
        if (--hotPendingDeps_[ix] == 0)
            scheduleReady(seq, hotDepBound_[ix]);
    });
}

void
OooCore::registerWakeups(uint64_t seq, const RobEntry &e, unsigned sched)
{
    const size_t ix = soaIndex(seq);
    hotSched_[ix] = uint8_t(sched);
    // schedMinDelay gates the first issue opportunity even when every
    // operand is already ready (the polling loop's dispatchCycle check).
    uint64_t bound = cycle_ + cfg_.schedMinDelay;
    unsigned pending = 0;
    for (unsigned i = 0; i < e.opt.numDeps; ++i) {
        const core::SrcDep &d = e.opt.deps[i];
        const uint64_t r = prfFor(d.isFp).readyAt(d.reg);
        if (r == PhysRegFile::never) {
            // Producer not issued yet: readiness is monotone (one
            // setReadyAt per register lifetime), so wait for it. A
            // repeated operand registers — and later decrements —
            // once per occurrence.
            (d.isFp ? fpWake_ : intWake_).add(uint32_t(d.reg), seq);
            ++pending;
        } else if (r > bound) {
            bound = r;
        }
    }
    hotPendingDeps_[ix] = uint8_t(pending);
    hotDepBound_[ix] = bound;
    if (pending == 0)
        scheduleReady(seq, bound);
}

// ---------------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------------

const SimStats &
OooCore::run()
{
    while (!halted_) {
        tick();
        ++ticksExecuted_;
        if (cycle_ >= cfg_.maxCycles)
            conopt_fatal("simulation exceeded maxCycles");
        // Fast-forward is only worth attempting after a tick in which
        // no stage did anything: a busy pipeline pays nothing for it.
        if (fastForwardEnabled_ && !progress_ && !halted_)
            fastForward();
    }
    finalizeStats();
    return stats_;
}

void
OooCore::tick()
{
    ++cycle_;
    portsUsedThisCycle_ = 0;
    agenUsedThisCycle_ = 0;
    progress_ = false;

    retireStage();
    writebackStage();
    issueStage();
    dispatchStage();
    renameStage();
    fetchStage();

    // A program that ends by exhausting the emulator's instruction limit
    // (no HALT) finishes when the pipeline drains.
    if (!halted_ && emu_.done() && frontPipe_.empty() &&
        dispatchPipe_.empty() && rob_.empty()) {
        halted_ = true;
    }

    if (cycle_ - lastRetireCycle_ > 500000 && !rob_.empty()) {
        const RobEntry &h = rob_.front();
        const size_t hx = soaIndex(h.dyn.seq);
        conopt_panic("pipeline deadlock at cycle %llu: head seq %llu "
                     "pc 0x%llx op %s done=%d issued=%d",
                     static_cast<unsigned long long>(cycle_),
                     static_cast<unsigned long long>(h.dyn.seq),
                     static_cast<unsigned long long>(h.dyn.pc),
                     isa::opInfo(h.dyn.inst.op).mnemonic,
                     int(hotDone_[hx]), int(hotIssued_[hx]));
    }
}

// ---------------------------------------------------------------------------
// Idle-cycle fast-forward
// ---------------------------------------------------------------------------

void
OooCore::fastForward()
{
    // Work is possible next cycle whenever any scheduler holds a ready
    // entry (per-cycle FU budgets reset every cycle).
    for (const auto &q : ready_)
        if (!q.empty())
            return;

    const uint64_t next = cycle_ + 1;
    uint64_t target = neverCycle;
    const auto consider = [&target](uint64_t c) {
        if (c < target)
            target = c;
    };

    // Execution completions (writeback) and operand-ready events.
    if (!completions_.empty())
        consider(std::max(completions_.back().first, next));
    if (!readyEvents_.empty())
        consider(std::max(readyEvents_.back().first, next));

    // Rename: the oldest front-pipe entry. If it has already matured,
    // rename is blocked on a resource; every such resource frees only
    // through retirement or dispatch, whose bounds are considered
    // below (and on the cycle they free, rename proceeds in the same
    // tick, since rename runs after both). If rename is NOT blocked,
    // it renames next cycle: no skip.
    if (!frontPipe_.empty()) {
        const uint64_t mature = frontPipe_.nextReadyCycle();
        if (mature > next) {
            consider(mature);
        } else if (rob_.size() < cfg_.robEntries &&
                   intPrf_.freeCount() >= 2 && fpPrf_.freeCount() >= 2 &&
                   dispatchPipe_.size() < dispatchCap_) {
            return;
        }
    }

    // Dispatch: same structure. A matured head blocked by a full
    // scheduler unblocks only when an issue frees a slot — and with
    // every ready queue empty, the next issue opportunity is the next
    // ready event, already considered.
    if (!dispatchPipe_.empty()) {
        const uint64_t mature = dispatchPipe_.nextReadyCycle();
        if (mature > next) {
            consider(mature);
        } else {
            const RobEntry &d = entryOf(dispatchPipe_.front());
            if (schedCount_[schedIndex(d.opt.schedClass)] <
                cfg_.schedEntries) {
                return;
            }
        }
    }

    // Retirement at the ROB head. A store commits once its address and
    // data are ready (ports reset each cycle); a done entry retires at
    // its doneCycle; a not-yet-done entry is covered by its completion
    // event or, if unissued, by the wake chain ending in one of the
    // structures above.
    if (!rob_.empty()) {
        const RobEntry &h = rob_.front();
        const size_t hx = soaIndex(h.dyn.seq);
        if (h.isStore) {
            const uint64_t addr_c = hotAddrReadyCycle_[hx];
            const core::SrcDep &d = h.opt.storeDataDep;
            const uint64_t data_c =
                d.reg == invalidPreg ? 0 : prfFor(d.isFp).readyAt(d.reg);
            if (addr_c != neverCycle && data_c != neverCycle)
                consider(std::max({addr_c, data_c, next}));
        } else if (hotDone_[hx]) {
            consider(std::max(hotDoneCycle_[hx], next));
        }
    }

    // Fetch: blocked before max(resume, icache-ready); counters for
    // the skipped stall cycles are credited below. When fetch can act
    // next cycle there is no skip. (A pending mispredict stalls fetch
    // until resolution, which the bounds above cover.) A full front
    // queue blocks fetch for the whole skip — the queue only drains
    // through rename, which makes no progress inside a skip — so it
    // needs no cycle bound at all, just its stall counter.
    uint64_t fetch_resume = 0, icache_ready = 0;
    const bool fetch_queue_full =
        frontPipe_.size() + cfg_.fetchWidth > frontCap_;
    if (!emu_.done() && !mispredictPending_) {
        fetch_resume = fetchResumeCycle_;
        icache_ready = icacheReadyCycle_;
        if (!fetch_queue_full) {
            const uint64_t unblocked = std::max(fetch_resume, icache_ready);
            if (unblocked <= next)
                return;
            consider(unblocked);
        }
    }

    if (target == neverCycle)
        return; // nothing scheduled: let the deadlock check handle it
    target = std::min(target, cfg_.maxCycles);
    if (target <= next)
        return;

    // --- account the skipped cycles [next, target-1] --------------------
    // Every skipped cycle is provably a no-op for every stage except
    // the stall counters, whose per-cycle increments are replicated
    // arithmetically here. All inputs are constant across the skipped
    // range (no stage makes progress in it).
    const uint64_t a = next;
    const uint64_t b = target - 1;
    const uint64_t n = b - a + 1;

    if (!emu_.done()) {
        if (mispredictPending_) {
            stats_.fetchStallMispredict += n;
        } else {
            // fetchStage checks the resume gate first, then I-cache,
            // then queue occupancy: cycles below fetch_resume stall on
            // the mispredict counter, cycles below icache_ready on the
            // I-cache one, and any cycles past both (possible only
            // when the front queue is full, which capped no bound) on
            // the queue-full counter.
            if (fetch_resume > a)
                stats_.fetchStallMispredict += std::min(b + 1, fetch_resume) - a;
            const uint64_t ic_from = std::max(a, fetch_resume);
            if (icache_ready > ic_from)
                stats_.fetchStallIcache += std::min(b + 1, icache_ready) - ic_from;
            const uint64_t qf_from =
                std::max(a, std::max(fetch_resume, icache_ready));
            if (b + 1 > qf_from) {
                conopt_assert(fetch_queue_full);
                stats_.fetchStallQueueFull += b + 1 - qf_from;
            }
        }
    }

    if (!frontPipe_.empty() && frontPipe_.nextReadyCycle() <= a) {
        // Matured head, rename blocked (else we returned above); the
        // blocking reason is stable across the range and checked in
        // renameStage's priority order.
        if (rob_.size() >= cfg_.robEntries) {
            stats_.renameStallRob += n;
        } else if (intPrf_.freeCount() < 2 || fpPrf_.freeCount() < 2) {
            stats_.renameStallPregs += n;
        } else {
            conopt_assert(dispatchPipe_.size() >= dispatchCap_);
            stats_.renameStallDispatchQ += n;
        }
    }

    if (!dispatchPipe_.empty() && dispatchPipe_.nextReadyCycle() <= a) {
        // Matured head, scheduler full (else we returned above).
        stats_.dispatchStallSched += n;
    }

    cycle_ = target - 1; // the next tick() advances into `target`
}

// ---------------------------------------------------------------------------
// Retire
// ---------------------------------------------------------------------------

void
OooCore::retireStage()
{
    for (unsigned n = 0; n < cfg_.retireWidth && !rob_.empty(); ++n) {
        RobEntry &e = rob_.front();
        const size_t ix = soaIndex(e.dyn.seq);

        if (e.isStore) {
            // A store commits when its address is generated and its data
            // is ready, and a cache port is free this cycle.
            const bool addr_ok = hotAddrReadyCycle_[ix] <= cycle_;
            const core::SrcDep &d = e.opt.storeDataDep;
            const bool data_ok =
                d.reg == invalidPreg || prfFor(d.isFp).readyBy(d.reg, cycle_);
            if (!addr_ok || !data_ok)
                break;
            if (portsUsedThisCycle_ >= cfg_.numDCachePorts)
                break;
            ++portsUsedThisCycle_;
            const unsigned lat = hier_.accessData(e.dyn.memAddr);
            if (lat <= cfg_.hier.l1d.latency)
                ++stats_.dl1Hits;
            else
                ++stats_.dl1Misses;
        } else if (!hotDone_[ix] || hotDoneCycle_[ix] > cycle_) {
            break;
        }

        // Train the branch predictor in retirement order.
        if (e.isBranch) {
            bp_.update(e.dyn.pc, e.dyn.inst, e.pred, e.dyn.taken,
                       e.dyn.nextPc);
            ++stats_.branches;
            if (e.dyn.inst.isCondBranch())
                ++stats_.condBranches;
            if (e.mispredicted)
                ++stats_.mispredicted;
            if (e.earlyRecovered)
                ++stats_.earlyRecoveredMispredicts;
            if (e.opt.branchResolved)
                ++stats_.earlyResolvedBranches;
        }
        if (e.isLoad) {
            ++stats_.loads;
            if (e.forwardedFromStore)
                ++stats_.loadsForwardedFromStoreQ;
        }
        if (e.isStore) {
            ++stats_.stores;
            conopt_assert(!storeQueue_.empty() &&
                          storeQueue_.front() == e.dyn.seq);
            storeQueue_.pop_front();
            storeWindowRemove(e.dyn.seq);
        }

        // Release the references this instruction held.
        if (e.opt.destPreg != invalidPreg)
            prfFor(e.opt.destIsFp).release(e.opt.destPreg);
        for (unsigned i = 0; i < e.opt.numDeps; ++i)
            prfFor(e.opt.deps[i].isFp).release(e.opt.deps[i].reg);
        if (e.opt.storeDataDep.reg != invalidPreg)
            prfFor(e.opt.storeDataDep.isFp).release(e.opt.storeDataDep.reg);

        if (e.dyn.inst.op == Opcode::HALT)
            halted_ = true;

        ++stats_.retired;
        ++retiredCount_;
        // Per-interval IPC sampling (host-side observability; one
        // predictable branch when disabled). The cycle_ > mark guard
        // defers a sample whose whole interval retired within one
        // cycle — it folds into the next interval instead.
        if (ipcSampleInterval_ != 0 &&
            stats_.retired - ipcMarkRetired_ >= ipcSampleInterval_ &&
            cycle_ > ipcMarkCycle_) {
            ipcSamples_.add(double(stats_.retired - ipcMarkRetired_) /
                            double(cycle_ - ipcMarkCycle_));
            ipcMarkRetired_ = stats_.retired;
            ipcMarkCycle_ = cycle_;
        }
        lastRetireCycle_ = cycle_;
        progress_ = true;
        rob_.pop_front();
        if (halted_)
            break;
    }
}

// ---------------------------------------------------------------------------
// Writeback (execution completions)
// ---------------------------------------------------------------------------

void
OooCore::writebackStage()
{
    while (!completions_.empty() && completions_.back().first <= cycle_) {
        const uint64_t seq = completions_.back().second;
        completions_.pop_back();
        progress_ = true;
        RobEntry &e = entryOf(seq);
        const size_t ix = soaIndex(seq);
        hotDone_[ix] = 1;
        hotDoneCycle_[ix] = cycle_;

        if (e.isStore) {
            hotAddrReadyCycle_[ix] = cycle_;
            if (e.storeAddrWasUnknown) {
                // Speculative-MBC consistency (paper section 3.2).
                rename_.onStoreExecuted(e.dyn.memAddr, e.dyn.memSize,
                                        e.dyn.seq);
            }
        }

        if (e.isBranch && e.mispredicted && !e.earlyRecovered)
            resolveMispredict(e, cycle_);
    }
}

// ---------------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------------

bool
OooCore::tryIssueAlu(RobEntry &e, unsigned &budget)
{
    if (budget == 0)
        return false;
    const size_t ix = soaIndex(e.dyn.seq);
    // Ready-queue membership guarantees the polling preconditions.
    conopt_assert(cycle_ >= hotDepBound_[ix]);
    conopt_assert(depsReady(e));

    --budget;
    hotIssued_[ix] = 1;
    e.issueCycle = cycle_;
    progress_ = true;
    const unsigned lat = e.opt.execLatency;
    if (e.opt.destPreg != invalidPreg && !e.opt.destAliased) {
        setRegReady(e.opt.destIsFp, e.opt.destPreg, cycle_ + lat);
        prfFor(e.opt.destIsFp).setVfbAt(
            e.opt.destPreg, cycle_ + cfg_.regReadDepth + lat + cfg_.vfbDelay);
    }
    completeAt(cycle_ + cfg_.regReadDepth + lat, e.dyn.seq);
    return true;
}

size_t
OooCore::storeBucketOf(uint64_t granule) const
{
    return size_t(avalanche64(granule)) & storeBucketMask_;
}

void
OooCore::storeWindowInsert(uint64_t seq)
{
    // Called at rename, after the hot store range is recorded. Stores
    // rename in ascending seq order and push at chain heads, so every
    // chain stays sorted youngest first.
    const size_t sx = soaIndex(seq);
    const uint64_t g0 = hotStoreLo_[sx] >> storeGranuleShift;
    const uint64_t g1 = (hotStoreHi_[sx] - 1) >> storeGranuleShift;
    for (uint64_t g = g0;; ++g) {
        const auto node = int32_t(2 * sx + size_t(g - g0));
        const size_t b = storeBucketOf(g);
        const int32_t head = storeBucketHead_[b];
        storeNodeSeq_[size_t(node)] = seq;
        storeNodePrev_[size_t(node)] = -1;
        storeNodeNext_[size_t(node)] = head;
        if (head >= 0)
            storeNodePrev_[size_t(head)] = node;
        storeBucketHead_[b] = node;
        if (g == g1)
            break;
    }
}

void
OooCore::storeWindowRemove(uint64_t seq)
{
    // Called at retire. The hot store range at this SoA slot is still
    // the one recorded at rename: a colliding seq is soaMask_+1 ahead,
    // more than the in-flight span, so it cannot have renamed yet.
    const size_t sx = soaIndex(seq);
    const uint64_t g0 = hotStoreLo_[sx] >> storeGranuleShift;
    const uint64_t g1 = (hotStoreHi_[sx] - 1) >> storeGranuleShift;
    for (uint64_t g = g0;; ++g) {
        const auto node = int32_t(2 * sx + size_t(g - g0));
        const int32_t prev = storeNodePrev_[size_t(node)];
        const int32_t next = storeNodeNext_[size_t(node)];
        if (prev >= 0) {
            storeNodeNext_[size_t(prev)] = next;
        } else {
            const size_t b = storeBucketOf(g);
            conopt_assert(storeBucketHead_[b] == node);
            storeBucketHead_[b] = next;
        }
        if (next >= 0)
            storeNodePrev_[size_t(next)] = prev;
        if (g == g1)
            break;
    }
}

OooCore::StoreScan
OooCore::scanOlderStores(const RobEntry &e)
{
    const uint64_t lo = e.dyn.memAddr;
    const uint64_t hi = lo + e.dyn.memSize;

    // Find the youngest older in-flight store overlapping [lo, hi) —
    // the one store whose state decides this load, under either scan.
    uint64_t young_seq = 0;
    bool have = false;
    if (storeWindowEnabled_) {
        // Hashed window: probe only the load's ≤2 granule chains. Any
        // overlapping store shares a granule with the load, so it is
        // on a probed chain; chains are youngest first, so the first
        // overlapping hit per chain is that chain's youngest, and the
        // max across chains is the global youngest. The exact range
        // test also rejects bucket-collision neighbours.
        const uint64_t g0 = lo >> storeGranuleShift;
        const uint64_t g1 = (hi - 1) >> storeGranuleShift;
        for (uint64_t g = g0;; ++g) {
            for (int32_t node = storeBucketHead_[storeBucketOf(g)];
                 node >= 0; node = storeNodeNext_[size_t(node)]) {
                const uint64_t s_seq = storeNodeSeq_[size_t(node)];
                if (s_seq >= e.dyn.seq)
                    continue; // younger than the load
                const size_t sx = soaIndex(s_seq);
                if (hotStoreHi_[sx] <= lo || hi <= hotStoreLo_[sx])
                    continue; // disjoint
                if (!have || s_seq > young_seq) {
                    young_seq = s_seq;
                    have = true;
                }
                break;
            }
            if (g == g1)
                break;
        }
    } else {
        // Reference path: full queue scan, youngest to oldest. The
        // hot-array walk the windowed path must stay equivalent to.
        for (size_t i = storeQueue_.size(); i-- > 0;) {
            const uint64_t s_seq = storeQueue_[i];
            if (s_seq >= e.dyn.seq)
                continue;
            const size_t sx = soaIndex(s_seq);
            if (hotStoreHi_[sx] <= lo || hi <= hotStoreLo_[sx])
                continue; // disjoint
            young_seq = s_seq;
            have = true;
            break;
        }
    }

    if (!have)
        return StoreScan::Clear;
    const size_t sx = soaIndex(young_seq);
    if (hotStoreLo_[sx] <= lo && hi <= hotStoreHi_[sx]) {
        // Fully covering store: forward when its address is known and
        // its data is ready.
        const core::PhysRegId dreg = hotStoreDataReg_[sx];
        const bool data_ok =
            dreg == invalidPreg ||
            prfFor(hotStoreDataFp_[sx] != 0).readyBy(dreg, cycle_);
        if (hotAddrReadyCycle_[sx] <= cycle_ && data_ok)
            return StoreScan::Forward;
        return StoreScan::Block; // must wait for the store
    }
    return StoreScan::Block; // partial overlap: wait until it retires
}

bool
OooCore::tryIssueMem(RobEntry &e)
{
    const size_t ix = soaIndex(e.dyn.seq);
    conopt_assert(cycle_ >= hotDepBound_[ix]);
    conopt_assert(depsReady(e));

    if (e.isStore) {
        // Stores in the mem scheduler only need address generation.
        if (agenUsedThisCycle_ >= cfg_.numAgen)
            return false;
        ++agenUsedThisCycle_;
        hotIssued_[ix] = 1;
        e.issueCycle = cycle_;
        progress_ = true;
        completeAt(cycle_ + cfg_.regReadDepth + 1, e.dyn.seq);
        return true;
    }

    // Loads: agen (if the optimizer did not pre-generate the address),
    // a cache port, and memory ordering against older stores.
    const unsigned agen_lat = e.opt.needsAgen ? 1 : 0;
    if (e.opt.needsAgen && agenUsedThisCycle_ >= cfg_.numAgen)
        return false;
    if (portsUsedThisCycle_ >= cfg_.numDCachePorts)
        return false;

    // Perfect (oracle) memory disambiguation: only truly overlapping
    // older stores constrain this load.
    const StoreScan scan = scanOlderStores(e);
    if (scan == StoreScan::Block)
        return false;

    unsigned mem_lat;
    if (scan == StoreScan::Forward) {
        mem_lat = cfg_.hier.l1d.latency;
        e.forwardedFromStore = true;
    } else {
        mem_lat = hier_.accessData(e.dyn.memAddr);
        if (mem_lat <= cfg_.hier.l1d.latency)
            ++stats_.dl1Hits;
        else
            ++stats_.dl1Misses;
    }

    ++portsUsedThisCycle_;
    if (e.opt.needsAgen)
        ++agenUsedThisCycle_;
    hotIssued_[ix] = 1;
    e.issueCycle = cycle_;
    progress_ = true;
    if (e.opt.destPreg != invalidPreg && !e.opt.destAliased) {
        setRegReady(e.opt.destIsFp, e.opt.destPreg,
                    cycle_ + agen_lat + mem_lat);
        prfFor(e.opt.destIsFp).setVfbAt(
            e.opt.destPreg, cycle_ + cfg_.regReadDepth + agen_lat + mem_lat +
                                cfg_.vfbDelay);
    }
    completeAt(cycle_ + cfg_.regReadDepth + agen_lat + mem_lat, e.dyn.seq);
    return true;
}

void
OooCore::issueStage()
{
    // Move entries whose operand-ready cycle has arrived into their
    // scheduler's ready queue.
    while (!readyEvents_.empty() && readyEvents_.back().first <= cycle_) {
        const uint64_t seq = readyEvents_.back().second;
        readyEvents_.pop_back();
        progress_ = true;
        insertReady(hotSched_[soaIndex(seq)], seq);
    }

    // ALU-style schedulers: int-simple, int-complex, fp. Every queued
    // entry is issueable, so the scan is bounded by the FU budget. A
    // zero-latency producer can insert a (younger) consumer into the
    // queue mid-scan, ahead of the cursor — exactly the entries the
    // polling scan would have reached later the same cycle.
    unsigned budgets[3] = {cfg_.numSimpleAlu, cfg_.numComplexAlu,
                           cfg_.numFpAlu};
    for (unsigned k = 0; k < 3; ++k) {
        auto &q = ready_[k];
        size_t i = 0;
        while (i < q.size() && budgets[k] > 0) {
            RobEntry &e = entryOf(q[i]);
            if (tryIssueAlu(e, budgets[k])) {
                q.erase(q.begin() + ptrdiff_t(i));
                --schedCount_[k];
            } else {
                ++i;
            }
        }
    }

    // Memory scheduler: entries can still fail on ports, agen, or
    // memory ordering; those stay queued (and block fast-forward, so
    // they are re-examined every cycle like the polling loop did).
    auto &mq = ready_[3];
    size_t i = 0;
    while (i < mq.size()) {
        if (agenUsedThisCycle_ >= cfg_.numAgen &&
            portsUsedThisCycle_ >= cfg_.numDCachePorts) {
            break;
        }
        RobEntry &e = entryOf(mq[i]);
        if (tryIssueMem(e)) {
            mq.erase(mq.begin() + ptrdiff_t(i));
            --schedCount_[3];
        } else {
            ++i;
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch (exit of the extended rename stage into the schedulers)
// ---------------------------------------------------------------------------

void
OooCore::dispatchStage()
{
    unsigned dispatched = 0;
    while (dispatched < cfg_.renameWidth && dispatchPipe_.ready(cycle_)) {
        const uint64_t seq = dispatchPipe_.front();
        RobEntry &e = entryOf(seq);
        const unsigned k = schedIndex(e.opt.schedClass);
        if (schedCount_[k] >= cfg_.schedEntries) {
            ++stats_.dispatchStallSched;
            break;
        }
        ++schedCount_[k];
        registerWakeups(seq, e, k);
        dispatchPipe_.pop();
        ++dispatched;
        progress_ = true;
    }
}

// ---------------------------------------------------------------------------
// Rename + continuous optimization
// ---------------------------------------------------------------------------

void
OooCore::renameStage()
{
    unsigned renamed = 0;
    while (renamed < cfg_.renameWidth && frontPipe_.ready(cycle_)) {
        if (rob_.size() >= cfg_.robEntries) {
            ++stats_.renameStallRob;
            break;
        }
        if (intPrf_.freeCount() < 2 || fpPrf_.freeCount() < 2) {
            ++stats_.renameStallPregs;
            break;
        }
        if (dispatchPipe_.size() >= dispatchCap_) {
            ++stats_.renameStallDispatchQ;
            break;
        }

        // The front-pipe slot stays valid until a later pushSlot()
        // overwrites it; nothing below pushes into frontPipe_, so a
        // reference avoids copying the fat record through the stack.
        const FetchedInst &fi = frontPipe_.front();
        if (renamed == 0)
            rename_.beginBundle();

        const uint64_t opt_cycle = cycle_ + optExtra_;
        const core::OptResult opt = rename_.renameInst(fi.dyn, opt_cycle);

        // Re-initialize this seq's slot in the hot arrays (it holds
        // stale state from the entry robCapacity seqs ago).
        const size_t ix = soaIndex(fi.dyn.seq);
        hotDone_[ix] = 0;
        hotIssued_[ix] = 0;
        hotDoneCycle_[ix] = neverCycle;
        hotAddrReadyCycle_[ix] = neverCycle;
        hotPendingDeps_[ix] = 0;
        hotDepBound_[ix] = 0;
        hotSched_[ix] = 0;

        // Fill the ROB slot in place (it holds a stale entry robCapacity
        // seqs ago: overwrite every field, including the ones only other
        // paths set). Skips the zero-init + move that a stack-built
        // entry pays per instruction.
        // conopt-lint: allow(hotpath-alloc) fixed-capacity RingBuffer
        RobEntry &e = rob_.pushSlot();  // panics on overflow
        e.dyn = fi.dyn;
        e.opt = opt;
        e.pred = fi.pred;
        e.isBranch = fi.isBranch;
        e.mispredicted = fi.mispredicted;
        e.misfetch = fi.misfetch;
        e.earlyRecovered = false;
        e.isLoad = fi.dyn.inst.isLoad() && !opt.loadRemoved &&
                   !opt.loadSynthesized;
        e.isStore = fi.dyn.inst.isStore();
        e.storeAddrWasUnknown = false;
        e.forwardedFromStore = false;
        e.fetchCycle = fi.fetchCycle;
        e.renameCycle = cycle_;
        e.issueCycle = neverCycle;
        frontPipe_.pop();

        // References for the in-flight window were taken by the rename
        // unit (see RenameUnit docs); this entry releases them at retire.

        if (opt.schedClass == OpClass::None) {
            // Executed in the optimizer (or nothing to execute): ready at
            // the end of the optimization stage, retires from the ROB.
            hotDone_[ix] = 1;
            hotDoneCycle_[ix] = opt_cycle;
            if (opt.destPreg != invalidPreg && !opt.destAliased) {
                setRegReady(opt.destIsFp, opt.destPreg, opt_cycle);
                prfFor(opt.destIsFp).setVfbAt(opt.destPreg, opt_cycle);
            }
        } else if (e.isStore && !opt.needsAgen) {
            // Store with a rename-generated address: nothing to execute;
            // it waits at the ROB head for its data, then commits.
            hotDone_[ix] = 1;
            hotDoneCycle_[ix] = opt_cycle;
            hotAddrReadyCycle_[ix] = opt_cycle;
        } else {
            dispatchPipe_.push(cycle_, e.dyn.seq);
        }

        if (e.isStore) {
            // conopt-lint: allow(hotpath-alloc) fixed-capacity RingBuffer
            storeQueue_.push_back(e.dyn.seq);  // panics on overflow
            if (opt.addrKnown && hotAddrReadyCycle_[ix] == neverCycle)
                hotAddrReadyCycle_[ix] = opt_cycle;
            e.storeAddrWasUnknown = !opt.addrKnown;
            // Hot store fields for the load-ordering scan (oracle
            // addresses: perfect disambiguation, as before).
            hotStoreLo_[ix] = e.dyn.memAddr;
            hotStoreHi_[ix] = e.dyn.memAddr + e.dyn.memSize;
            hotStoreDataReg_[ix] = opt.storeDataDep.reg;
            hotStoreDataFp_[ix] = opt.storeDataDep.isFp ? 1 : 0;
            storeWindowInsert(e.dyn.seq);
        }
        if (e.isLoad && opt.addrKnown)
            hotAddrReadyCycle_[ix] = opt_cycle;

        // Early branch recovery (paper section 2.5.1): a mispredicted
        // branch resolved by the optimizer redirects fetch right after
        // the extended rename stage.
        if (e.mispredicted && opt.branchResolved) {
            e.earlyRecovered = true;
            resolveMispredict(e, cycle_ + renameDepth_);
        }

        // Stale-MBC recovery: charge a front-end flush.
        if (opt.mbcMisspec) {
            ++stats_.mbcMisspecFlushes;
            fetchResumeCycle_ = std::max(
                fetchResumeCycle_, cycle_ + cfg_.mbcMisspecPenalty);
        }

        ++renamed;
        progress_ = true;
    }
}

// ---------------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------------

void
OooCore::fetchStage()
{
    if (emu_.done())
        return;
    if (mispredictPending_) {
        ++stats_.fetchStallMispredict;
        return;
    }
    if (cycle_ < fetchResumeCycle_) {
        ++stats_.fetchStallMispredict;
        return;
    }
    if (cycle_ < icacheReadyCycle_) {
        ++stats_.fetchStallIcache;
        return;
    }
    if (frontPipe_.size() + cfg_.fetchWidth > frontCap_) {
        ++stats_.fetchStallQueueFull;
        return;
    }

    progress_ = true;
    for (unsigned n = 0; n < cfg_.fetchWidth && !emu_.done(); ++n) {
        const uint64_t pc = emu_.state().pc;
        const uint64_t line = pc >> ilineShift_;
        if (n == 0) {
            if (line != lastFetchLine_) {
                const unsigned lat = hier_.accessInst(pc);
                lastFetchLine_ = line;
                if (lat > cfg_.hier.l1i.latency) {
                    ++stats_.il1Misses;
                    icacheReadyCycle_ = cycle_ + lat;
                    return;
                }
            }
        } else if (line != lastFetchLine_) {
            break; // fetch packets do not cross I-cache lines
        }

        // Fill the pipe slot in place (it holds a stale instruction:
        // overwrite every field). Each path below keeps the entry, so
        // pushing up front is safe.
        FetchedInst &fi = frontPipe_.pushSlot(cycle_);
        fi.dyn = emu_.step();
        fi.pred = branch::Prediction{};
        fi.fetchCycle = cycle_;
        fi.mispredicted = false;
        fi.misfetch = false;
        const auto &info = isa::opInfo(fi.dyn.inst.op);
        fi.isBranch = info.isBranch;

        if (info.isBranch) {
            fi.pred = bp_.predict(fi.dyn.pc, fi.dyn.inst,
                                  fi.dyn.pc + isa::instBytes);
            const bool dir_wrong =
                info.isCondBranch && fi.pred.taken != fi.dyn.taken;
            bool target_wrong = false;
            bool resteer = false;
            if (!dir_wrong && fi.dyn.taken &&
                (!fi.pred.targetValid ||
                 fi.pred.target != fi.dyn.nextPc)) {
                if (info.isIndirect)
                    target_wrong = true;
                else
                    resteer = true; // decode computes direct targets
            }

            if (dir_wrong || target_wrong) {
                fi.mispredicted = true;
                if (info.isCondBranch)
                    bp_.recover(fi.pred, fi.dyn.taken);
                mispredictPending_ = true;
                pendingMispredictSeq_ = fi.dyn.seq;
                return;
            }
            if (resteer) {
                fi.misfetch = true;
                ++stats_.btbResteers;
                fetchResumeCycle_ = std::max(
                    fetchResumeCycle_, cycle_ + cfg_.resteerPenalty);
                lastFetchLine_ = neverCycle;
                return;
            }
            if (fi.dyn.taken) {
                // A correctly predicted taken branch ends the packet.
                lastFetchLine_ = neverCycle;
                return;
            }
            continue;
        }

        if (fi.dyn.inst.op == Opcode::HALT)
            return;
    }
}

void
OooCore::finalizeStats()
{
    stats_.cycles = cycle_;
    stats_.halted = emu_.halted();
    stats_.opt = rename_.stats();
    stats_.mbc = rename_.mbc().stats();
}

} // namespace conopt::pipeline
