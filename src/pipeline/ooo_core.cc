#include "src/pipeline/ooo_core.hh"

#include <algorithm>

#include "src/util/bitops.hh"
#include "src/util/logging.hh"

namespace conopt::pipeline {

using core::invalidPreg;
using isa::OpClass;
using isa::Opcode;

OooCore::OooCore(const MachineConfig &config, arch::Emulator &emu)
    : cfg_(config),
      emu_(emu),
      intPrf_(config.intPhysRegs),
      fpPrf_(config.fpPhysRegs),
      rename_(config.opt, intPrf_, fpPrf_),
      bp_(config.bp),
      hier_(config.hier)
{
    reset(config);
}

void
OooCore::reset(const MachineConfig &config)
{
    cfg_ = config;
    optExtra_ = config.opt.enabled ? config.opt.extraStages : 0;
    renameDepth_ = config.renameDepth();
    ilineShift_ = log2Exact(config.hier.l1i.lineBytes);

    // Components, wholesale. The register files must reset before the
    // rename unit: its RAT/MBC references from the previous run point
    // into the old file contents and are forgotten, not released.
    intPrf_.reset(config.intPhysRegs);
    fpPrf_.reset(config.fpPhysRegs);
    bp_.reset(config.bp);
    hier_.reset(config.hier);

    // Pipeline state.
    cycle_ = 0;
    halted_ = false;
    stats_ = SimStats{};
    retiredCount_ = 0;
    mispredictPending_ = false;
    pendingMispredictSeq_ = 0;
    fetchResumeCycle_ = 0;
    icacheReadyCycle_ = 0;
    lastFetchLine_ = neverCycle;
    portsUsedThisCycle_ = 0;
    agenUsedThisCycle_ = 0;
    lastRetireCycle_ = 0;

    // Hot containers: capacity reservations sized from the config so
    // the tick loop never allocates. Each queue's occupancy bound is
    // enforced by the corresponding stage's resource check.
    frontPipe_.clear();
    frontPipe_.setDepth(config.frontEndDepth);
    frontCap_ = size_t(config.frontEndDepth + 2) * config.fetchWidth;
    frontPipe_.reserve(frontCap_);
    dispatchPipe_.clear();
    dispatchPipe_.setDepth(renameDepth_);
    dispatchCap_ = size_t(config.dispatchQueueEntries) +
                   size_t(renameDepth_) * config.renameWidth;
    dispatchPipe_.reserve(dispatchCap_);
    rob_.reset(config.robEntries);
    for (auto &q : sched_)
        q.reset(config.schedEntries);
    storeQueue_.reset(config.robEntries); // in-flight stores <= ROB
    completions_.clear();
    completions_.reserve(config.robEntries + 1); // <=1 event per entry

    // Install the initial architectural register state.
    std::array<uint64_t, isa::numIntRegs> int_init{};
    std::array<uint64_t, isa::numFpRegs> fp_init{};
    for (unsigned r = 0; r < isa::numIntRegs; ++r)
        int_init[r] = emu_.state().readInt(isa::RegIndex(r));
    for (unsigned r = 0; r < isa::numFpRegs; ++r)
        fp_init[r] = emu_.state().fpRegs[r];
    rename_.reset(config.opt, int_init, fp_init);

    // Initial register values are known from cycle 0 (they are
    // architectural state, not in-flight results).
    // reset() already recorded them as constants; mark the physical
    // registers ready for issue as well.
    for (unsigned r = 0; r < isa::numIntRegs; ++r) {
        if (r == isa::zeroReg)
            continue;
        const core::PhysRegId p = rename_.rat().read(isa::RegIndex(r)).mapping;
        intPrf_.setReadyAt(p, 0);
        intPrf_.setVfbAt(p, 0);
    }
    for (unsigned r = 0; r < isa::numFpRegs; ++r) {
        const core::PhysRegId p = rename_.fpRat().read(isa::RegIndex(r));
        fpPrf_.setReadyAt(p, 0);
        fpPrf_.setVfbAt(p, 0);
    }
}

OooCore::RobEntry &
OooCore::entryOf(uint64_t seq)
{
    conopt_assert(!rob_.empty());
    const uint64_t head = rob_.front().dyn.seq;
    conopt_assert(seq >= head && seq - head < rob_.size());
    return rob_[seq - head];
}

unsigned
OooCore::schedIndex(OpClass cls) const
{
    switch (cls) {
      case OpClass::IntSimple:
        return 0;
      case OpClass::IntComplex:
        return 1;
      case OpClass::Fp:
        return 2;
      case OpClass::Mem:
        return 3;
      default:
        conopt_panic("no scheduler for this op class");
    }
}

bool
OooCore::depsReady(const RobEntry &e) const
{
    for (unsigned i = 0; i < e.opt.numDeps; ++i) {
        const core::SrcDep &d = e.opt.deps[i];
        const PhysRegFile &prf = d.isFp ? fpPrf_ : intPrf_;
        if (!prf.readyBy(d.reg, cycle_))
            return false;
    }
    return true;
}

void
OooCore::completeAt(uint64_t cycle, uint64_t seq)
{
    // Keep the flat list sorted descending; the soonest event stays at
    // back(). Insertion cost is a short memmove over in-flight events,
    // which profiles cheaper than the heap's alloc-and-sift for the
    // small windows a real config produces.
    const std::pair<uint64_t, uint64_t> ev(cycle, seq);
    const auto it = std::upper_bound(completions_.begin(),
                                     completions_.end(), ev,
                                     std::greater<>());
    completions_.insert(it, ev);
}

void
OooCore::resolveMispredict(const RobEntry &e, uint64_t resolve_cycle)
{
    conopt_assert(mispredictPending_);
    conopt_assert(pendingMispredictSeq_ == e.dyn.seq);
    mispredictPending_ = false;
    fetchResumeCycle_ = std::max(fetchResumeCycle_,
                                 resolve_cycle + cfg_.redirectPenalty);
    // Refetch from the corrected target: force an I-cache re-access.
    lastFetchLine_ = neverCycle;
}

const SimStats &
OooCore::run()
{
    while (!halted_) {
        tick();
        if (cycle_ >= cfg_.maxCycles)
            conopt_fatal("simulation exceeded maxCycles");
    }
    finalizeStats();
    return stats_;
}

void
OooCore::tick()
{
    ++cycle_;
    portsUsedThisCycle_ = 0;
    agenUsedThisCycle_ = 0;

    retireStage();
    writebackStage();
    issueStage();
    dispatchStage();
    renameStage();
    fetchStage();

    // A program that ends by exhausting the emulator's instruction limit
    // (no HALT) finishes when the pipeline drains.
    if (!halted_ && emu_.done() && frontPipe_.empty() &&
        dispatchPipe_.empty() && rob_.empty()) {
        halted_ = true;
    }

    if (cycle_ - lastRetireCycle_ > 500000 && !rob_.empty()) {
        const RobEntry &h = rob_.front();
        conopt_panic("pipeline deadlock at cycle %llu: head seq %llu "
                     "pc 0x%llx op %s done=%d issued=%d",
                     static_cast<unsigned long long>(cycle_),
                     static_cast<unsigned long long>(h.dyn.seq),
                     static_cast<unsigned long long>(h.dyn.pc),
                     isa::opInfo(h.dyn.inst.op).mnemonic, int(h.done),
                     int(h.issued));
    }
}

// ---------------------------------------------------------------------------
// Retire
// ---------------------------------------------------------------------------

void
OooCore::retireStage()
{
    for (unsigned n = 0; n < cfg_.retireWidth && !rob_.empty(); ++n) {
        RobEntry &e = rob_.front();

        if (e.isStore) {
            // A store commits when its address is generated and its data
            // is ready, and a cache port is free this cycle.
            const bool addr_ok = e.addrReadyCycle <= cycle_;
            const core::SrcDep &d = e.opt.storeDataDep;
            const bool data_ok =
                d.reg == invalidPreg || prfFor(d.isFp).readyBy(d.reg, cycle_);
            if (!addr_ok || !data_ok)
                break;
            if (portsUsedThisCycle_ >= cfg_.numDCachePorts)
                break;
            ++portsUsedThisCycle_;
            const unsigned lat = hier_.accessData(e.dyn.memAddr);
            if (lat <= cfg_.hier.l1d.latency)
                ++stats_.dl1Hits;
            else
                ++stats_.dl1Misses;
        } else if (!e.done || e.doneCycle > cycle_) {
            break;
        }

        // Train the branch predictor in retirement order.
        if (e.isBranch) {
            bp_.update(e.dyn.pc, e.dyn.inst, e.pred, e.dyn.taken,
                       e.dyn.nextPc);
            ++stats_.branches;
            if (e.dyn.inst.isCondBranch())
                ++stats_.condBranches;
            if (e.mispredicted)
                ++stats_.mispredicted;
            if (e.earlyRecovered)
                ++stats_.earlyRecoveredMispredicts;
            if (e.opt.branchResolved)
                ++stats_.earlyResolvedBranches;
        }
        if (e.isLoad) {
            ++stats_.loads;
            if (e.forwardedFromStore)
                ++stats_.loadsForwardedFromStoreQ;
        }
        if (e.isStore) {
            ++stats_.stores;
            conopt_assert(!storeQueue_.empty() &&
                          storeQueue_.front() == e.dyn.seq);
            storeQueue_.pop_front();
        }

        // Release the references this instruction held.
        if (e.opt.destPreg != invalidPreg)
            prfFor(e.opt.destIsFp).release(e.opt.destPreg);
        for (unsigned i = 0; i < e.opt.numDeps; ++i)
            prfFor(e.opt.deps[i].isFp).release(e.opt.deps[i].reg);
        if (e.opt.storeDataDep.reg != invalidPreg)
            prfFor(e.opt.storeDataDep.isFp).release(e.opt.storeDataDep.reg);

        if (e.dyn.inst.op == Opcode::HALT)
            halted_ = true;

        ++stats_.retired;
        ++retiredCount_;
        lastRetireCycle_ = cycle_;
        rob_.pop_front();
        if (halted_)
            break;
    }
}

// ---------------------------------------------------------------------------
// Writeback (execution completions)
// ---------------------------------------------------------------------------

void
OooCore::writebackStage()
{
    while (!completions_.empty() && completions_.back().first <= cycle_) {
        const uint64_t seq = completions_.back().second;
        completions_.pop_back();
        RobEntry &e = entryOf(seq);
        e.done = true;
        e.doneCycle = cycle_;

        if (e.isStore) {
            e.addrReadyCycle = cycle_;
            if (e.storeAddrWasUnknown) {
                // Speculative-MBC consistency (paper section 3.2).
                rename_.onStoreExecuted(e.dyn.memAddr, e.dyn.memSize,
                                        e.dyn.seq);
            }
        }

        if (e.isBranch && e.mispredicted && !e.earlyRecovered)
            resolveMispredict(e, cycle_);
    }
}

// ---------------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------------

bool
OooCore::tryIssueAlu(RobEntry &e, unsigned &budget)
{
    if (budget == 0)
        return false;
    if (cycle_ < e.dispatchCycle + cfg_.schedMinDelay)
        return false;
    if (!depsReady(e))
        return false;

    --budget;
    e.issued = true;
    e.issueCycle = cycle_;
    const unsigned lat = e.opt.execLatency;
    if (e.opt.destPreg != invalidPreg && !e.opt.destAliased) {
        PhysRegFile &prf = prfFor(e.opt.destIsFp);
        prf.setReadyAt(e.opt.destPreg, cycle_ + lat);
        prf.setVfbAt(e.opt.destPreg,
                     cycle_ + cfg_.regReadDepth + lat + cfg_.vfbDelay);
    }
    completeAt(cycle_ + cfg_.regReadDepth + lat, e.dyn.seq);
    return true;
}

bool
OooCore::tryIssueMem(RobEntry &e)
{
    if (cycle_ < e.dispatchCycle + cfg_.schedMinDelay)
        return false;

    if (e.isStore) {
        // Stores in the mem scheduler only need address generation.
        if (agenUsedThisCycle_ >= cfg_.numAgen)
            return false;
        if (!depsReady(e))
            return false;
        ++agenUsedThisCycle_;
        e.issued = true;
        e.issueCycle = cycle_;
        completeAt(cycle_ + cfg_.regReadDepth + 1, e.dyn.seq);
        return true;
    }

    // Loads: agen (if the optimizer did not pre-generate the address),
    // a cache port, and memory ordering against older stores.
    const unsigned agen_lat = e.opt.needsAgen ? 1 : 0;
    if (e.opt.needsAgen && agenUsedThisCycle_ >= cfg_.numAgen)
        return false;
    if (portsUsedThisCycle_ >= cfg_.numDCachePorts)
        return false;
    if (!depsReady(e))
        return false;

    // Perfect (oracle) memory disambiguation: only truly overlapping
    // older stores constrain this load.
    const uint64_t lo = e.dyn.memAddr;
    const uint64_t hi = lo + e.dyn.memSize;
    bool forwarded = false;
    for (size_t i = storeQueue_.size(); i-- > 0;) {
        if (storeQueue_[i] >= e.dyn.seq)
            continue;
        RobEntry &s = entryOf(storeQueue_[i]);
        const uint64_t s_lo = s.dyn.memAddr;
        const uint64_t s_hi = s_lo + s.dyn.memSize;
        if (s_hi <= lo || hi <= s_lo)
            continue; // disjoint
        if (s_lo <= lo && hi <= s_hi) {
            // Fully covering store: forward when its address is known
            // and its data is ready.
            const core::SrcDep &d = s.opt.storeDataDep;
            const bool data_ok =
                d.reg == invalidPreg ||
                prfFor(d.isFp).readyBy(d.reg, cycle_);
            if (s.addrReadyCycle <= cycle_ && data_ok) {
                forwarded = true;
                break;
            }
            return false; // must wait for the store
        }
        return false; // partial overlap: wait until the store retires
    }

    unsigned mem_lat;
    if (forwarded) {
        mem_lat = cfg_.hier.l1d.latency;
        e.forwardedFromStore = true;
    } else {
        mem_lat = hier_.accessData(e.dyn.memAddr);
        if (mem_lat <= cfg_.hier.l1d.latency)
            ++stats_.dl1Hits;
        else
            ++stats_.dl1Misses;
    }

    ++portsUsedThisCycle_;
    if (e.opt.needsAgen)
        ++agenUsedThisCycle_;
    e.issued = true;
    e.issueCycle = cycle_;
    if (e.opt.destPreg != invalidPreg && !e.opt.destAliased) {
        PhysRegFile &prf = prfFor(e.opt.destIsFp);
        prf.setReadyAt(e.opt.destPreg, cycle_ + agen_lat + mem_lat);
        prf.setVfbAt(e.opt.destPreg, cycle_ + cfg_.regReadDepth + agen_lat +
                                         mem_lat + cfg_.vfbDelay);
    }
    completeAt(cycle_ + cfg_.regReadDepth + agen_lat + mem_lat, e.dyn.seq);
    return true;
}

void
OooCore::issueStage()
{
    // ALU-style schedulers: int-simple, int-complex, fp.
    unsigned budgets[3] = {cfg_.numSimpleAlu, cfg_.numComplexAlu,
                           cfg_.numFpAlu};
    for (unsigned k = 0; k < 3; ++k) {
        auto &q = sched_[k];
        for (size_t i = 0; i < q.size() && budgets[k] > 0;) {
            RobEntry &e = entryOf(q[i]);
            if (tryIssueAlu(e, budgets[k]))
                q.erase(i);
            else
                ++i;
        }
    }

    // Memory scheduler.
    auto &mq = sched_[3];
    for (size_t i = 0; i < mq.size();) {
        if (agenUsedThisCycle_ >= cfg_.numAgen &&
            portsUsedThisCycle_ >= cfg_.numDCachePorts) {
            break;
        }
        RobEntry &e = entryOf(mq[i]);
        if (tryIssueMem(e))
            mq.erase(i);
        else
            ++i;
    }
}

// ---------------------------------------------------------------------------
// Dispatch (exit of the extended rename stage into the schedulers)
// ---------------------------------------------------------------------------

void
OooCore::dispatchStage()
{
    unsigned dispatched = 0;
    while (dispatched < cfg_.renameWidth && dispatchPipe_.ready(cycle_)) {
        const uint64_t seq = dispatchPipe_.front();
        RobEntry &e = entryOf(seq);
        auto &q = sched_[schedIndex(e.opt.schedClass)];
        if (q.size() >= cfg_.schedEntries) {
            ++stats_.dispatchStallSched;
            break;
        }
        q.push_back(seq);
        e.dispatchCycle = cycle_;
        dispatchPipe_.pop();
        ++dispatched;
    }
}

// ---------------------------------------------------------------------------
// Rename + continuous optimization
// ---------------------------------------------------------------------------

void
OooCore::renameStage()
{
    unsigned renamed = 0;
    while (renamed < cfg_.renameWidth && frontPipe_.ready(cycle_)) {
        if (rob_.size() >= cfg_.robEntries) {
            ++stats_.renameStallRob;
            break;
        }
        if (intPrf_.freeCount() < 2 || fpPrf_.freeCount() < 2) {
            ++stats_.renameStallPregs;
            break;
        }
        if (dispatchPipe_.size() >= dispatchCap_) {
            ++stats_.renameStallDispatchQ;
            break;
        }

        FetchedInst fi = frontPipe_.front();
        frontPipe_.pop();
        if (renamed == 0)
            rename_.beginBundle();

        const uint64_t opt_cycle = cycle_ + optExtra_;
        const core::OptResult opt = rename_.renameInst(fi.dyn, opt_cycle);

        RobEntry e;
        e.dyn = fi.dyn;
        e.opt = opt;
        e.pred = fi.pred;
        e.isBranch = fi.isBranch;
        e.mispredicted = fi.mispredicted;
        e.misfetch = fi.misfetch;
        e.fetchCycle = fi.fetchCycle;
        e.renameCycle = cycle_;
        e.isLoad = fi.dyn.inst.isLoad() && !opt.loadRemoved &&
                   !opt.loadSynthesized;
        e.isStore = fi.dyn.inst.isStore();

        // References for the in-flight window were taken by the rename
        // unit (see RenameUnit docs); this entry releases them at retire.

        if (opt.schedClass == OpClass::None) {
            // Executed in the optimizer (or nothing to execute): ready at
            // the end of the optimization stage, retires from the ROB.
            e.done = true;
            e.doneCycle = opt_cycle;
            if (opt.destPreg != invalidPreg && !opt.destAliased) {
                PhysRegFile &prf = prfFor(opt.destIsFp);
                prf.setReadyAt(opt.destPreg, opt_cycle);
                prf.setVfbAt(opt.destPreg, opt_cycle);
            }
        } else if (e.isStore && !opt.needsAgen) {
            // Store with a rename-generated address: nothing to execute;
            // it waits at the ROB head for its data, then commits.
            e.done = true;
            e.doneCycle = opt_cycle;
            e.addrReadyCycle = opt_cycle;
        } else {
            dispatchPipe_.push(cycle_, fi.dyn.seq);
        }

        if (e.isStore) {
            storeQueue_.push_back(fi.dyn.seq);
            if (opt.addrKnown && e.addrReadyCycle == neverCycle)
                e.addrReadyCycle = opt_cycle;
            e.storeAddrWasUnknown = !opt.addrKnown;
        }
        if (e.isLoad && opt.addrKnown)
            e.addrReadyCycle = opt_cycle;

        // Early branch recovery (paper section 2.5.1): a mispredicted
        // branch resolved by the optimizer redirects fetch right after
        // the extended rename stage.
        if (fi.mispredicted && opt.branchResolved) {
            e.earlyRecovered = true;
            resolveMispredict(e, cycle_ + renameDepth_);
        }

        // Stale-MBC recovery: charge a front-end flush.
        if (opt.mbcMisspec) {
            ++stats_.mbcMisspecFlushes;
            fetchResumeCycle_ = std::max(
                fetchResumeCycle_, cycle_ + cfg_.mbcMisspecPenalty);
        }

        rob_.push_back(std::move(e));
        ++renamed;
    }
}

// ---------------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------------

void
OooCore::fetchStage()
{
    if (emu_.done())
        return;
    if (mispredictPending_) {
        ++stats_.fetchStallMispredict;
        return;
    }
    if (cycle_ < fetchResumeCycle_) {
        ++stats_.fetchStallMispredict;
        return;
    }
    if (cycle_ < icacheReadyCycle_) {
        ++stats_.fetchStallIcache;
        return;
    }
    if (frontPipe_.size() + cfg_.fetchWidth > frontCap_) {
        ++stats_.fetchStallQueueFull;
        return;
    }

    for (unsigned n = 0; n < cfg_.fetchWidth && !emu_.done(); ++n) {
        const uint64_t pc = emu_.state().pc;
        const uint64_t line = pc >> ilineShift_;
        if (n == 0) {
            if (line != lastFetchLine_) {
                const unsigned lat = hier_.accessInst(pc);
                lastFetchLine_ = line;
                if (lat > cfg_.hier.l1i.latency) {
                    ++stats_.il1Misses;
                    icacheReadyCycle_ = cycle_ + lat;
                    return;
                }
            }
        } else if (line != lastFetchLine_) {
            break; // fetch packets do not cross I-cache lines
        }

        FetchedInst fi;
        fi.dyn = emu_.step();
        fi.fetchCycle = cycle_;
        const auto &info = isa::opInfo(fi.dyn.inst.op);
        fi.isBranch = info.isBranch;

        if (info.isBranch) {
            fi.pred = bp_.predict(fi.dyn.pc, fi.dyn.inst,
                                  fi.dyn.pc + isa::instBytes);
            const bool dir_wrong =
                info.isCondBranch && fi.pred.taken != fi.dyn.taken;
            bool target_wrong = false;
            bool resteer = false;
            if (!dir_wrong && fi.dyn.taken &&
                (!fi.pred.targetValid ||
                 fi.pred.target != fi.dyn.nextPc)) {
                if (info.isIndirect)
                    target_wrong = true;
                else
                    resteer = true; // decode computes direct targets
            }

            if (dir_wrong || target_wrong) {
                fi.mispredicted = true;
                if (info.isCondBranch)
                    bp_.recover(fi.pred, fi.dyn.taken);
                mispredictPending_ = true;
                pendingMispredictSeq_ = fi.dyn.seq;
                frontPipe_.push(cycle_, fi);
                return;
            }
            if (resteer) {
                fi.misfetch = true;
                ++stats_.btbResteers;
                fetchResumeCycle_ = std::max(
                    fetchResumeCycle_, cycle_ + cfg_.resteerPenalty);
                lastFetchLine_ = neverCycle;
                frontPipe_.push(cycle_, fi);
                return;
            }
            frontPipe_.push(cycle_, fi);
            if (fi.dyn.taken) {
                // A correctly predicted taken branch ends the packet.
                lastFetchLine_ = neverCycle;
                return;
            }
            continue;
        }

        frontPipe_.push(cycle_, fi);
        if (fi.dyn.inst.op == Opcode::HALT)
            return;
    }
}

void
OooCore::finalizeStats()
{
    stats_.cycles = cycle_;
    stats_.halted = emu_.halted();
    stats_.opt = rename_.stats();
    stats_.mbc = rename_.mbc().stats();
}

} // namespace conopt::pipeline
