/**
 * @file
 * Aggregation helpers over per-run statistics: the means the paper's
 * tables report (geometric mean for speedup ratios, arithmetic mean for
 * fractions) and a small accumulator that sums SimStats across runs.
 *
 * These used to live in bench/bench_common.hh; they are part of the
 * pipeline layer now so the sweep subsystem and the tests can share
 * them without depending on the evaluation harness.
 */

#ifndef CONOPT_PIPELINE_STATS_AGGREGATE_HH
#define CONOPT_PIPELINE_STATS_AGGREGATE_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/pipeline/sim_stats.hh"

namespace conopt::pipeline {

/** Geometric mean of a vector of ratios (0 when empty). */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / double(v.size()));
}

/** Arithmetic mean (0 when empty). */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / double(v.size());
}

/**
 * Exact order-statistics over a sample set: collects values and answers
 * percentile queries with the nearest-rank method (ceil(p/100 * n)-th
 * smallest sample), which is deterministic — two runs that feed the
 * same multiset of samples report identical percentiles regardless of
 * insertion order. Used for the host-seconds p50/p95/p99 lines the
 * perf harness prints; sized for that scale (dozens to thousands of
 * jobs), it simply keeps every sample.
 */
class PercentileAccumulator
{
  public:
    void add(double x) { samples_.push_back(x); }

    size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** The nearest-rank @p p-th percentile, 0 < p <= 100 (0 when no
     *  samples have been added). percentile(50) is the median in the
     *  nearest-rank sense; percentile(100) is the maximum. */
    double
    percentile(double p) const
    {
        if (samples_.empty())
            return 0.0;
        std::vector<double> sorted(samples_);
        std::sort(sorted.begin(), sorted.end());
        const double clamped = std::min(std::max(p, 0.0), 100.0);
        size_t rank = size_t(std::ceil(clamped / 100.0 *
                                       double(sorted.size())));
        if (rank == 0)
            rank = 1;
        return sorted[rank - 1];
    }

    double min() const { return percentile(0); }
    double max() const { return percentile(100); }

    void clear() { samples_.clear(); }

  private:
    std::vector<double> samples_;
};

/**
 * Sums the raw counters of several runs (e.g. one whole suite under one
 * configuration) so the derived fractions of the combined run can be
 * read off the usual SimStats accessors.
 */
class StatsAccumulator
{
  public:
    void
    add(const SimStats &s)
    {
        total_.cycles += s.cycles;
        total_.retired += s.retired;
        total_.branches += s.branches;
        total_.condBranches += s.condBranches;
        total_.mispredicted += s.mispredicted;
        total_.earlyResolvedBranches += s.earlyResolvedBranches;
        total_.earlyRecoveredMispredicts += s.earlyRecoveredMispredicts;
        total_.btbResteers += s.btbResteers;
        total_.loads += s.loads;
        total_.stores += s.stores;
        total_.loadsForwardedFromStoreQ += s.loadsForwardedFromStoreQ;
        total_.dl1Hits += s.dl1Hits;
        total_.dl1Misses += s.dl1Misses;
        total_.il1Misses += s.il1Misses;
        total_.opt.instsRenamed += s.opt.instsRenamed;
        total_.opt.earlyExecuted += s.opt.earlyExecuted;
        total_.opt.movesEliminated += s.opt.movesEliminated;
        total_.opt.branchesResolved += s.opt.branchesResolved;
        total_.opt.memOps += s.opt.memOps;
        total_.opt.loads += s.opt.loads;
        total_.opt.addrKnown += s.opt.addrKnown;
        total_.opt.loadsRemoved += s.opt.loadsRemoved;
        total_.opt.loadsSynthesized += s.opt.loadsSynthesized;
        total_.opt.mbcMisspecs += s.opt.mbcMisspecs;
        ++runs_;
    }

    const SimStats &total() const { return total_; }
    unsigned runs() const { return runs_; }

  private:
    SimStats total_;
    unsigned runs_ = 0;
};

} // namespace conopt::pipeline

#endif // CONOPT_PIPELINE_STATS_AGGREGATE_HH
