/**
 * @file
 * Aggregation helpers over per-run statistics: the means the paper's
 * tables report (geometric mean for speedup ratios, arithmetic mean for
 * fractions), a small accumulator that sums SimStats across runs, and
 * the distribution accumulators (exact percentiles, bounded reservoir
 * sample, trailing moving average) behind the fleet observability
 * surface — per-interval IPC and host-latency p50/p95/p99.
 *
 * These used to live in bench/bench_common.hh; they are part of the
 * pipeline layer now so the sweep subsystem and the tests can share
 * them without depending on the evaluation harness.
 */

#ifndef CONOPT_PIPELINE_STATS_AGGREGATE_HH
#define CONOPT_PIPELINE_STATS_AGGREGATE_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/pipeline/sim_stats.hh"
#include "src/util/rng.hh"

namespace conopt::pipeline {

/** Geometric mean of a vector of ratios (0 when empty). */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / double(v.size()));
}

/** Arithmetic mean (0 when empty). */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / double(v.size());
}

/**
 * Exact order-statistics over a sample set: collects values and answers
 * percentile queries with the nearest-rank method (ceil(p/100 * n)-th
 * smallest sample), which is deterministic — two runs that feed the
 * same multiset of samples report identical percentiles regardless of
 * insertion order. Used for the host-seconds p50/p95/p99 lines the
 * perf harness prints; sized for that scale (dozens to thousands of
 * jobs), it simply keeps every sample.
 */
class PercentileAccumulator
{
  public:
    void
    add(double x)
    {
        samples_.push_back(x);
        sorted_ = false;
    }

    size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** The nearest-rank @p p-th percentile, 0 < p <= 100 (0 when no
     *  samples have been added). percentile(50) is the median in the
     *  nearest-rank sense; percentile(100) is the maximum. Arguments
     *  outside the contract are clamped to it: p <= 0 clamps to rank 1
     *  and thus returns min(), p > 100 returns max(). Prefer min()/
     *  max() for the extremes — they say what they mean. */
    double
    percentile(double p) const
    {
        if (samples_.empty())
            return 0.0;
        ensureSorted();
        const double clamped = std::min(std::max(p, 0.0), 100.0);
        size_t rank = size_t(std::ceil(clamped / 100.0 *
                                       double(samples_.size())));
        if (rank == 0)
            rank = 1;
        return samples_[rank - 1];
    }

    /** Smallest sample (0 when empty); not a percentile(0) alias. */
    double
    min() const
    {
        if (samples_.empty())
            return 0.0;
        ensureSorted();
        return samples_.front();
    }

    /** Largest sample (0 when empty). */
    double
    max() const
    {
        if (samples_.empty())
            return 0.0;
        ensureSorted();
        return samples_.back();
    }

    void
    clear()
    {
        samples_.clear();
        sorted_ = true;
    }

  private:
    /* Sort lazily, at most once per batch of adds: a query after k
     * adds sorts once and every further query until the next add reads
     * the cached order. Queries stay logically const; the sample
     * multiset they observe never changes, only its arrangement. */
    void
    ensureSorted() const
    {
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
    }

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Bounded uniform sample of an unbounded stream (Vitter's Algorithm R):
 * the first @p capacity values are kept verbatim; after that each new
 * value replaces a random slot with probability capacity/seen. Memory
 * is O(capacity) no matter how long the stream runs, which is what lets
 * per-interval IPC samples ride inside artifacts without unbounded
 * growth.
 *
 * Determinism: the replacement draws come from a private seeded
 * conopt::Rng, so the same (seed, value stream) always yields the same
 * reservoir — byte-for-byte reproducible artifacts included. Percentile
 * queries over the reservoir are order-independent (nearest-rank over a
 * sorted copy), but the reservoir itself is a function of stream order,
 * as any single-pass bounded sample must be.
 */
class ReservoirAccumulator
{
  public:
    explicit ReservoirAccumulator(size_t capacity = kDefaultCapacity,
                                  uint64_t seed = 0)
        : capacity_(capacity ? capacity : 1), rng_(seed)
    {
        reservoir_.reserve(capacity_);
    }

    void
    add(double x)
    {
        ++seen_;
        if (reservoir_.size() < capacity_) {
            reservoir_.push_back(x);
        } else {
            const uint64_t slot = rng_.nextBelow(seen_);
            if (slot < capacity_)
                reservoir_[size_t(slot)] = x;
        }
    }

    /** Forget every sample and reseed the replacement draws, keeping
     *  the reservoir's allocation — the warm-path form of constructing
     *  a fresh accumulator with the same capacity. */
    void
    reset(uint64_t seed)
    {
        rng_ = Rng(seed);
        seen_ = 0;
        reservoir_.clear();
    }

    /** Total values offered to add(), not the retained count. */
    uint64_t seen() const { return seen_; }
    size_t capacity() const { return capacity_; }
    bool empty() const { return reservoir_.empty(); }

    /** The retained sample, in reservoir slot order. */
    const std::vector<double> &samples() const { return reservoir_; }

    /** Nearest-rank percentile over the retained sample (0 when
     *  empty); same clamping contract as PercentileAccumulator. */
    double
    percentile(double p) const
    {
        PercentileAccumulator acc;
        for (double x : reservoir_)
            acc.add(x);
        return acc.percentile(p);
    }

    static constexpr size_t kDefaultCapacity = 256;

  private:
    size_t capacity_;
    Rng rng_;
    uint64_t seen_ = 0;
    std::vector<double> reservoir_;
};

/**
 * Arithmetic mean over a fixed trailing window (ring buffer): value()
 * averages the last min(window, count) samples. The smoothing the live
 * fleet surface wants for throughput lines — jitter from one slow job
 * doesn't whipsaw the displayed rate.
 */
class MovingAverage
{
  public:
    explicit MovingAverage(size_t window = 32)
        : ring_(window ? window : 1, 0.0)
    {
    }

    void
    add(double x)
    {
        const size_t slot = size_t(count_ % ring_.size());
        sum_ += x - ring_[slot];
        ring_[slot] = x;
        ++count_;
    }

    uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    size_t window() const { return ring_.size(); }

    /** Mean of the last min(window, count) samples (0 when empty). */
    double
    value() const
    {
        if (count_ == 0)
            return 0.0;
        const uint64_t n = std::min<uint64_t>(count_, ring_.size());
        return sum_ / double(n);
    }

    void
    clear()
    {
        std::fill(ring_.begin(), ring_.end(), 0.0);
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    std::vector<double> ring_;
    double sum_ = 0.0;
    uint64_t count_ = 0;
};

/**
 * Sums the raw counters of several runs (e.g. one whole suite under one
 * configuration) so the derived fractions of the combined run can be
 * read off the usual SimStats accessors.
 */
class StatsAccumulator
{
  public:
    void
    add(const SimStats &s)
    {
        total_.cycles += s.cycles;
        total_.retired += s.retired;
        total_.branches += s.branches;
        total_.condBranches += s.condBranches;
        total_.mispredicted += s.mispredicted;
        total_.earlyResolvedBranches += s.earlyResolvedBranches;
        total_.earlyRecoveredMispredicts += s.earlyRecoveredMispredicts;
        total_.btbResteers += s.btbResteers;
        total_.loads += s.loads;
        total_.stores += s.stores;
        total_.loadsForwardedFromStoreQ += s.loadsForwardedFromStoreQ;
        total_.dl1Hits += s.dl1Hits;
        total_.dl1Misses += s.dl1Misses;
        total_.il1Misses += s.il1Misses;
        total_.opt.instsRenamed += s.opt.instsRenamed;
        total_.opt.earlyExecuted += s.opt.earlyExecuted;
        total_.opt.movesEliminated += s.opt.movesEliminated;
        total_.opt.branchesResolved += s.opt.branchesResolved;
        total_.opt.memOps += s.opt.memOps;
        total_.opt.loads += s.opt.loads;
        total_.opt.addrKnown += s.opt.addrKnown;
        total_.opt.loadsRemoved += s.opt.loadsRemoved;
        total_.opt.loadsSynthesized += s.opt.loadsSynthesized;
        total_.opt.mbcMisspecs += s.opt.mbcMisspecs;
        ++runs_;
    }

    const SimStats &total() const { return total_; }
    unsigned runs() const { return runs_; }

  private:
    SimStats total_;
    unsigned runs_ = 0;
};

} // namespace conopt::pipeline

#endif // CONOPT_PIPELINE_STATS_AGGREGATE_HH
