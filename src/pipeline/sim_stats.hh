/**
 * @file
 * Simulation statistics collected by the timing model. The derived
 * percentages feed Table 3 of the paper; cycles/IPC feed every speedup
 * figure.
 */

#ifndef CONOPT_PIPELINE_SIM_STATS_HH
#define CONOPT_PIPELINE_SIM_STATS_HH

#include <cstdint>
#include <string>

#include "src/core/mbc.hh"
#include "src/core/optimizer.hh"

namespace conopt::pipeline {

/** All counters for one simulation run. */
struct SimStats
{
    // --- headline -------------------------------------------------------
    uint64_t cycles = 0;
    uint64_t retired = 0;
    bool halted = false;

    // --- branches ---------------------------------------------------------
    uint64_t branches = 0;             ///< retired control instructions
    uint64_t condBranches = 0;
    uint64_t mispredicted = 0;         ///< direction/indirect-target wrong
    uint64_t earlyResolvedBranches = 0;///< resolved in the optimizer
    uint64_t earlyRecoveredMispredicts = 0; ///< mispredicts fixed at rename
    uint64_t btbResteers = 0;          ///< direct-target fixups at decode

    // --- memory -----------------------------------------------------------
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t loadsForwardedFromStoreQ = 0;
    uint64_t mbcMisspecFlushes = 0;
    uint64_t dl1Hits = 0;
    uint64_t dl1Misses = 0;
    uint64_t il1Misses = 0;

    // --- stalls (cycles in which the stage made no progress) -------------
    uint64_t fetchStallMispredict = 0;
    uint64_t fetchStallIcache = 0;
    uint64_t fetchStallQueueFull = 0;
    uint64_t renameStallRob = 0;
    uint64_t renameStallDispatchQ = 0;
    uint64_t renameStallPregs = 0;
    uint64_t dispatchStallSched = 0;

    // --- optimizer activity (copied from the RenameUnit at the end) ------
    core::OptStats opt;
    core::MbcStats mbc;

    // --- derived metrics --------------------------------------------------
    double
    ipc() const
    {
        return cycles ? double(retired) / double(cycles) : 0.0;
    }

    /** Fraction of the instruction stream executed in the optimizer
     *  (Table 3, "exec. early"). */
    double
    execEarlyFrac() const
    {
        return retired ? double(opt.earlyExecuted) / double(retired) : 0.0;
    }

    /** Fraction of mispredicted branches recovered at rename (Table 3,
     *  "recov. mispred. brs."). */
    double
    recoveredMispredFrac() const
    {
        return mispredicted ? double(earlyRecoveredMispredicts) /
                                  double(mispredicted)
                            : 0.0;
    }

    /** Fraction of loads+stores with rename-generated addresses
     *  (Table 3, "ld/st addr. gen"). */
    double
    addrGenFrac() const
    {
        return opt.memOps ? double(opt.addrKnown) / double(opt.memOps)
                          : 0.0;
    }

    /** Fraction of loads converted to moves (Table 3, "lds removed"). */
    double
    loadsRemovedFrac() const
    {
        return opt.loads ? double(opt.loadsRemoved) / double(opt.loads)
                         : 0.0;
    }

    /** One-line summary. */
    std::string summary() const;
};

} // namespace conopt::pipeline

#endif // CONOPT_PIPELINE_SIM_STATS_HH
