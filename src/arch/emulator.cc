#include "src/arch/emulator.hh"

#include <bit>
#include <utility>
#include <cmath>

#include "src/asm/assembler.hh"
#include "src/isa/exec.hh"
#include "src/util/bitops.hh"
#include "src/util/logging.hh"

namespace conopt::arch {

using isa::Instruction;
using isa::Opcode;

Emulator::Emulator(assembler::Program program, uint64_t max_insts)
    : Emulator(std::make_shared<const assembler::Program>(
                   std::move(program)),
               max_insts)
{}

Emulator::Emulator(std::shared_ptr<const assembler::Program> program,
                   uint64_t max_insts)
{
    reset(std::move(program), max_insts);
}

void
Emulator::setPredecode(bool enable)
{
    predecodeEnabled_ = enable;
    if (!enable)
        pre_.reset();
    else if (program_ && !pre_)
        pre_ = PredecodeCache::instance().get(*program_);
}

void
Emulator::reset(std::shared_ptr<const assembler::Program> program,
                uint64_t max_insts)
{
    conopt_assert(program != nullptr);
    // Warm same-program resets (the batched sweep path) skip the cache
    // probe entirely: Programs are immutable behind shared_ptr, so
    // pointer identity proves the pre-decoded table is still current.
    const bool sameProgram = program.get() == program_.get();
    program_ = std::move(program);
    if (!predecodeEnabled_)
        pre_.reset();
    else if (!pre_ || !sameProgram)
        pre_ = PredecodeCache::instance().get(*program_);
    maxInsts_ = max_insts;
    instCount_ = 0;
    done_ = false;
    halted_ = false;
    state_.pc = program_->entryPc;
    state_.intRegs.fill(0);
    state_.fpRegs.fill(0);
    state_.writeInt(assembler::SP, assembler::stackTop);
    memory_.reset();
    for (const auto &seg : program_->data)
        memory_.writeBytes(seg.addr, seg.bytes.data(), seg.bytes.size());
}

uint64_t
Emulator::readOperandB(const Instruction &inst) const
{
    if (inst.useImm)
        return static_cast<uint64_t>(inst.imm);
    const auto &info = isa::opInfo(inst.op);
    if (info.rbIsFp)
        return state_.fpRegs[inst.rb];
    return state_.readInt(inst.rb);
}

uint64_t
Emulator::executeAlu(const Instruction &inst, uint64_t a, uint64_t b) const
{
    return isa::aluCompute(inst.op, a, b);
}

bool
Emulator::branchTaken(const Instruction &inst, uint64_t a) const
{
    return isa::branchCondTaken(inst.op, a);
}

DynInst
Emulator::step()
{
    if (pre_ != nullptr)
        return stepPredecoded();

    // Reference path (setPredecode(false)): re-decode from the raw
    // Program. stepPredecoded() must stay bit-exact with this.
    conopt_assert(!done_);
    if (!program_->contains(state_.pc)) {
        conopt_panic("pc 0x%llx outside program",
                     static_cast<unsigned long long>(state_.pc));
    }

    const Instruction &inst = program_->at(state_.pc);
    const auto &info = isa::opInfo(inst.op);

    DynInst dyn;
    dyn.seq = instCount_;
    dyn.pc = state_.pc;
    dyn.inst = inst;
    dyn.nextPc = state_.pc + isa::instBytes;

    // Read sources.
    if (info.readsRa)
        dyn.srcA = info.raIsFp ? state_.fpRegs[inst.ra]
                               : state_.readInt(inst.ra);
    if (info.readsRb || inst.useImm)
        dyn.srcB = readOperandB(inst);
    if (info.readsRc)
        dyn.srcC = info.rcIsFp ? state_.fpRegs[inst.rc]
                               : state_.readInt(inst.rc);

    switch (info.cls) {
      case isa::OpClass::IntSimple:
      case isa::OpClass::IntComplex:
      case isa::OpClass::Fp:
        dyn.result = executeAlu(inst, dyn.srcA, dyn.srcB);
        break;

      case isa::OpClass::Mem:
        dyn.memAddr = wrappingAdd(state_.readInt(inst.ra),
                                  static_cast<uint64_t>(inst.imm));
        dyn.memSize = info.memSize;
        if (info.isLoad) {
            uint64_t raw = memory_.read(dyn.memAddr, info.memSize);
            if (inst.op == Opcode::LDL)
                raw = static_cast<uint64_t>(sext64(raw, 32));
            dyn.result = raw;
        } else {
            dyn.result = dyn.srcC;
            unsigned size = info.memSize;
            memory_.write(dyn.memAddr, dyn.srcC, size);
        }
        break;

      case isa::OpClass::Control:
        if (info.isCondBranch) {
            dyn.taken = branchTaken(inst, dyn.srcA);
            if (dyn.taken)
                dyn.nextPc = static_cast<uint64_t>(inst.imm);
        } else if (info.isIndirect) {
            dyn.taken = true;
            dyn.nextPc = dyn.srcA;
        } else {
            dyn.taken = true;
            dyn.nextPc = static_cast<uint64_t>(inst.imm);
        }
        if (info.isCall)
            dyn.result = state_.pc + isa::instBytes;
        break;

      case isa::OpClass::None:
        if (inst.op == Opcode::HALT) {
            done_ = true;
            halted_ = true;
        }
        break;
    }

    // Write back.
    if (info.writesRc) {
        if (info.rcIsFp)
            state_.fpRegs[inst.rc] = dyn.result;
        else
            state_.writeInt(inst.rc, dyn.result);
    }

    state_.pc = dyn.nextPc;
    ++instCount_;
    if (instCount_ >= maxInsts_)
        done_ = true;
    return dyn;
}

DynInst
Emulator::stepPredecoded()
{
    conopt_assert(!done_);
    const uint64_t pc = state_.pc;
    const uint64_t off = pc - assembler::codeBase;
    if (pc < assembler::codeBase
        || off >= pre_->size() * isa::instBytes
        || off % isa::instBytes != 0) {
        conopt_panic("pc 0x%llx outside program",
                     static_cast<unsigned long long>(pc));
    }

    const PreInst &p = pre_->at(off / isa::instBytes);
    const uint16_t flags = p.flags;

    DynInst dyn;
    dyn.seq = instCount_;
    dyn.pc = pc;
    dyn.inst = p.inst;
    dyn.nextPc = pc + isa::instBytes;

    // Read sources.
    if (flags & PreInst::kReadsRa)
        dyn.srcA = (flags & PreInst::kRaIsFp) ? state_.fpRegs[p.inst.ra]
                                              : state_.readInt(p.inst.ra);
    if (flags & PreInst::kReadsRbOrImm) {
        if (flags & PreInst::kUseImm)
            dyn.srcB = p.immU;
        else
            dyn.srcB = (flags & PreInst::kRbIsFp)
                           ? state_.fpRegs[p.inst.rb]
                           : state_.readInt(p.inst.rb);
    }
    if (flags & PreInst::kReadsRc)
        dyn.srcC = (flags & PreInst::kRcIsFp) ? state_.fpRegs[p.inst.rc]
                                              : state_.readInt(p.inst.rc);

    switch (p.cls) {
      case isa::OpClass::IntSimple:
      case isa::OpClass::IntComplex:
      case isa::OpClass::Fp:
        dyn.result = isa::aluCompute(p.inst.op, dyn.srcA, dyn.srcB);
        break;

      case isa::OpClass::Mem:
        dyn.memAddr = wrappingAdd(state_.readInt(p.inst.ra), p.immU);
        dyn.memSize = p.memSize;
        if (flags & PreInst::kIsLoad) {
            uint64_t raw = memory_.read(dyn.memAddr, p.memSize);
            if (flags & PreInst::kSextLoad)
                raw = static_cast<uint64_t>(sext64(raw, 32));
            dyn.result = raw;
        } else {
            dyn.result = dyn.srcC;
            memory_.write(dyn.memAddr, dyn.srcC, p.memSize);
        }
        break;

      case isa::OpClass::Control:
        if (flags & PreInst::kIsCondBranch) {
            dyn.taken = isa::branchCondTaken(p.inst.op, dyn.srcA);
            if (dyn.taken)
                dyn.nextPc = p.immU;
        } else if (flags & PreInst::kIsIndirect) {
            dyn.taken = true;
            dyn.nextPc = dyn.srcA;
        } else {
            dyn.taken = true;
            dyn.nextPc = p.immU;
        }
        if (flags & PreInst::kIsCall)
            dyn.result = pc + isa::instBytes;
        break;

      case isa::OpClass::None:
        if (flags & PreInst::kIsHalt) {
            done_ = true;
            halted_ = true;
        }
        break;
    }

    // Write back.
    if (flags & PreInst::kWritesRc) {
        if (flags & PreInst::kRcIsFp)
            state_.fpRegs[p.inst.rc] = dyn.result;
        else
            state_.writeInt(p.inst.rc, dyn.result);
    }

    state_.pc = dyn.nextPc;
    ++instCount_;
    if (instCount_ >= maxInsts_)
        done_ = true;
    return dyn;
}

uint64_t
Emulator::run()
{
    while (!done_)
        step();
    return instCount_;
}

} // namespace conopt::arch
