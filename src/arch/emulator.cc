#include "src/arch/emulator.hh"

#include <bit>
#include <utility>
#include <cmath>

#include "src/asm/assembler.hh"
#include "src/isa/exec.hh"
#include "src/util/bitops.hh"
#include "src/util/logging.hh"

namespace conopt::arch {

using isa::Instruction;
using isa::Opcode;

Emulator::Emulator(assembler::Program program, uint64_t max_insts)
    : Emulator(std::make_shared<const assembler::Program>(
                   std::move(program)),
               max_insts)
{}

Emulator::Emulator(std::shared_ptr<const assembler::Program> program,
                   uint64_t max_insts)
{
    reset(std::move(program), max_insts);
}

void
Emulator::reset(std::shared_ptr<const assembler::Program> program,
                uint64_t max_insts)
{
    conopt_assert(program != nullptr);
    program_ = std::move(program);
    maxInsts_ = max_insts;
    instCount_ = 0;
    done_ = false;
    halted_ = false;
    state_.pc = program_->entryPc;
    state_.intRegs.fill(0);
    state_.fpRegs.fill(0);
    state_.writeInt(assembler::SP, assembler::stackTop);
    memory_.reset();
    for (const auto &seg : program_->data)
        memory_.writeBytes(seg.addr, seg.bytes.data(), seg.bytes.size());
}

uint64_t
Emulator::readOperandB(const Instruction &inst) const
{
    if (inst.useImm)
        return static_cast<uint64_t>(inst.imm);
    const auto &info = isa::opInfo(inst.op);
    if (info.rbIsFp)
        return state_.fpRegs[inst.rb];
    return state_.readInt(inst.rb);
}

uint64_t
Emulator::executeAlu(const Instruction &inst, uint64_t a, uint64_t b) const
{
    return isa::aluCompute(inst.op, a, b);
}

bool
Emulator::branchTaken(const Instruction &inst, uint64_t a) const
{
    return isa::branchCondTaken(inst.op, a);
}

DynInst
Emulator::step()
{
    conopt_assert(!done_);
    if (!program_->contains(state_.pc)) {
        conopt_panic("pc 0x%llx outside program",
                     static_cast<unsigned long long>(state_.pc));
    }

    const Instruction &inst = program_->at(state_.pc);
    const auto &info = isa::opInfo(inst.op);

    DynInst dyn;
    dyn.seq = instCount_;
    dyn.pc = state_.pc;
    dyn.inst = inst;
    dyn.nextPc = state_.pc + isa::instBytes;

    // Read sources.
    if (info.readsRa)
        dyn.srcA = info.raIsFp ? state_.fpRegs[inst.ra]
                               : state_.readInt(inst.ra);
    if (info.readsRb || inst.useImm)
        dyn.srcB = readOperandB(inst);
    if (info.readsRc)
        dyn.srcC = info.rcIsFp ? state_.fpRegs[inst.rc]
                               : state_.readInt(inst.rc);

    switch (info.cls) {
      case isa::OpClass::IntSimple:
      case isa::OpClass::IntComplex:
      case isa::OpClass::Fp:
        dyn.result = executeAlu(inst, dyn.srcA, dyn.srcB);
        break;

      case isa::OpClass::Mem:
        dyn.memAddr = wrappingAdd(state_.readInt(inst.ra),
                                  static_cast<uint64_t>(inst.imm));
        dyn.memSize = info.memSize;
        if (info.isLoad) {
            uint64_t raw = memory_.read(dyn.memAddr, info.memSize);
            if (inst.op == Opcode::LDL)
                raw = static_cast<uint64_t>(sext64(raw, 32));
            dyn.result = raw;
        } else {
            dyn.result = dyn.srcC;
            unsigned size = info.memSize;
            memory_.write(dyn.memAddr, dyn.srcC, size);
        }
        break;

      case isa::OpClass::Control:
        if (info.isCondBranch) {
            dyn.taken = branchTaken(inst, dyn.srcA);
            if (dyn.taken)
                dyn.nextPc = static_cast<uint64_t>(inst.imm);
        } else if (info.isIndirect) {
            dyn.taken = true;
            dyn.nextPc = dyn.srcA;
        } else {
            dyn.taken = true;
            dyn.nextPc = static_cast<uint64_t>(inst.imm);
        }
        if (info.isCall)
            dyn.result = state_.pc + isa::instBytes;
        break;

      case isa::OpClass::None:
        if (inst.op == Opcode::HALT) {
            done_ = true;
            halted_ = true;
        }
        break;
    }

    // Write back.
    if (info.writesRc) {
        if (info.rcIsFp)
            state_.fpRegs[inst.rc] = dyn.result;
        else
            state_.writeInt(inst.rc, dyn.result);
    }

    state_.pc = dyn.nextPc;
    ++instCount_;
    if (instCount_ >= maxInsts_)
        done_ = true;
    return dyn;
}

uint64_t
Emulator::run()
{
    while (!done_)
        step();
    return instCount_;
}

} // namespace conopt::arch
