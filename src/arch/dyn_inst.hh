/**
 * @file
 * A dynamic instruction: one executed instance of a static instruction,
 * annotated with the oracle values the functional emulator computed. The
 * timing model consumes a stream of these; the continuous optimizer's
 * symbolic results are cross-checked against the oracle fields ("strict
 * expression and value checking", paper section 4.2).
 */

#ifndef CONOPT_ARCH_DYN_INST_HH
#define CONOPT_ARCH_DYN_INST_HH

#include <cstdint>

#include "src/isa/isa.hh"

namespace conopt::arch {

/** One executed instruction with its oracle values. */
struct DynInst
{
    uint64_t seq = 0;       ///< dynamic sequence number (0-based)
    uint64_t pc = 0;        ///< byte address of the instruction
    isa::Instruction inst;  ///< static instruction

    uint64_t srcA = 0;      ///< oracle value of the ra operand
    uint64_t srcB = 0;      ///< oracle value of the rb/imm operand
    uint64_t srcC = 0;      ///< oracle value of rc when read (stores)
    uint64_t result = 0;    ///< oracle destination value (loads: data)
    uint64_t memAddr = 0;   ///< effective address for memory ops
    uint8_t memSize = 0;    ///< access size in bytes
    bool taken = false;     ///< branch outcome
    uint64_t nextPc = 0;    ///< architectural successor PC
};

} // namespace conopt::arch

#endif // CONOPT_ARCH_DYN_INST_HH
