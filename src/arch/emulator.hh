/**
 * @file
 * Functional (architectural) emulator. Executes a Program instruction by
 * instruction, producing the oracle DynInst stream the timing model runs
 * on. Also usable standalone for workload validation.
 */

#ifndef CONOPT_ARCH_EMULATOR_HH
#define CONOPT_ARCH_EMULATOR_HH

#include <array>
#include <cstdint>
#include <memory>

#include "src/arch/dyn_inst.hh"
#include "src/arch/memory.hh"
#include "src/arch/predecode.hh"
#include "src/asm/program.hh"
#include "src/isa/isa.hh"

namespace conopt::arch {

/** Architectural register state. */
struct ArchState
{
    std::array<uint64_t, isa::numIntRegs> intRegs{};
    std::array<uint64_t, isa::numFpRegs> fpRegs{};
    uint64_t pc = 0;

    uint64_t
    readInt(isa::RegIndex r) const
    {
        return r == isa::zeroReg ? 0 : intRegs[r];
    }

    void
    writeInt(isa::RegIndex r, uint64_t v)
    {
        if (r != isa::zeroReg)
            intRegs[r] = v;
    }
};

/**
 * Executes a program. step() returns the completed DynInst for each
 * retired instruction; done() becomes true after HALT or when the
 * instruction limit is hit.
 */
class Emulator
{
  public:
    /**
     * @param program the program to run (copied; the emulator owns its
     *        instance so callers may pass temporaries)
     * @param max_insts safety limit on dynamic instructions
     */
    explicit Emulator(assembler::Program program,
                      uint64_t max_insts = uint64_t(1) << 32);

    /** Shared-program form: no copy, ownership shared with the caller
     *  (the sweep engine hands every job the same cached program). */
    explicit Emulator(std::shared_ptr<const assembler::Program> program,
                      uint64_t max_insts = uint64_t(1) << 32);

    /**
     * Rebind to @p program and return to the program entry state.
     * Reuses the existing memory image's storage (pages are zeroed in
     * place, not reallocated), so a long-lived emulator stops paying
     * allocation churn after its first few programs.
     */
    void reset(std::shared_ptr<const assembler::Program> program,
               uint64_t max_insts = uint64_t(1) << 32);

    /** Rewind to the entry state of the current program. */
    void reset() { reset(program_, maxInsts_); }

    /** Execute and retire one instruction. done() must be false. */
    DynInst step();

    /**
     * Toggle the pre-decode fast path (default on). On, step() walks
     * the process-wide PredecodeCache table for the bound program; off,
     * it re-decodes from the raw Program — the reference path the
     * bit-exactness tests compare against. Sticky across reset().
     */
    void setPredecode(bool enable);

    /** True when step() is using a pre-decoded table. */
    bool predecodeActive() const { return pre_ != nullptr; }

    /** True once HALT has executed or the instruction limit was hit. */
    bool done() const { return done_; }

    /** True if the program ended via HALT (not the instruction limit). */
    bool halted() const { return halted_; }

    /** Dynamic instructions executed so far. */
    uint64_t instCount() const { return instCount_; }

    /** Run to completion; returns the dynamic instruction count. */
    uint64_t run();

    const ArchState &state() const { return state_; }
    ArchState &state() { return state_; }
    const Memory &memory() const { return memory_; }
    Memory &memory() { return memory_; }
    const assembler::Program &program() const { return *program_; }

  private:
    uint64_t readOperandB(const isa::Instruction &inst) const;
    uint64_t executeAlu(const isa::Instruction &inst, uint64_t a,
                        uint64_t b) const;
    bool branchTaken(const isa::Instruction &inst, uint64_t a) const;
    DynInst stepPredecoded();

    std::shared_ptr<const assembler::Program> program_;
    /** Pre-decoded table for program_ (null when setPredecode(false)). */
    std::shared_ptr<const PreDecodedProgram> pre_;
    ArchState state_;
    Memory memory_;
    uint64_t instCount_ = 0;
    uint64_t maxInsts_;
    bool done_ = false;
    bool halted_ = false;
    bool predecodeEnabled_ = true;
};

} // namespace conopt::arch

#endif // CONOPT_ARCH_EMULATOR_HH
