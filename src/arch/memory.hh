/**
 * @file
 * Sparse byte-addressable memory image backed by 4 KiB pages. Provides the
 * single source of architectural memory truth for the functional emulator;
 * the timing model's caches only track tags/latency, never data.
 */

#ifndef CONOPT_ARCH_MEMORY_HH
#define CONOPT_ARCH_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace conopt::arch {

/** Sparse 64-bit address space. Unwritten bytes read as zero. */
class Memory
{
  public:
    static constexpr uint64_t pageShift = 12;
    static constexpr uint64_t pageBytes = uint64_t(1) << pageShift;

    /** Read @p size (1/2/4/8) bytes, little-endian, zero-extended. */
    uint64_t read(uint64_t addr, unsigned size) const;

    /** Write the low @p size bytes of @p value, little-endian. */
    void write(uint64_t addr, uint64_t value, unsigned size);

    uint64_t readQuad(uint64_t addr) const { return read(addr, 8); }
    void writeQuad(uint64_t addr, uint64_t v) { write(addr, v, 8); }

    /** Bulk initialization (used to load program data segments). */
    void writeBytes(uint64_t addr, const uint8_t *src, size_t len);

    /**
     * Return every byte to zero without releasing storage: resident
     * pages are wiped in place, so a reused emulator re-runs over a
     * warm page set instead of re-faulting its whole footprint.
     * Indistinguishable from a fresh Memory through read()/write().
     * Only pages written since the last reset() are wiped — pages can
     * only acquire nonzero bytes through the write paths, which mark
     * them dirty, so clean resident pages are already all-zero.
     */
    void reset();

    /** Number of resident pages (for tests). */
    size_t pageCount() const { return pages_.size(); }

    /** Pages written since the last reset() (for tests). */
    size_t dirtyPageCount() const { return dirty_.size(); }

  private:
    struct Page
    {
        std::array<uint8_t, pageBytes> bytes;
        bool dirty = false;
    };

    const Page *findPage(uint64_t addr) const;
    Page &touchPage(uint64_t addr);

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
    /** Pages to wipe on reset(). Raw pointers are stable: pages live
     *  on the heap behind unique_ptr and are never evicted. */
    std::vector<Page *> dirty_;
};

} // namespace conopt::arch

#endif // CONOPT_ARCH_MEMORY_HH
