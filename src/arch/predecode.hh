/**
 * @file
 * Pre-decode trace cache: the static half of Emulator::step(), computed
 * once per program instead of once per dynamic instruction.
 *
 * The functional emulator used to re-derive the same static facts on
 * every dynamic execution of an instruction: the opInfo() property
 * lookup, the operand-routing predicates (readsRa/raIsFp/useImm/...),
 * the class dispatch, the sign-cast of the immediate, and the
 * PC-validity check against the program bounds. All of that depends
 * only on the *static* instruction, so PreDecodedProgram flattens it
 * into one dense record per static instruction (PreInst) that step()
 * consumes with a single indexed load.
 *
 * PredecodeCache shares the flattened tables process-wide, keyed by a
 * fingerprint over the FULL program content (entry pc, every code
 * field, every data byte): every sweep cell over the same workload —
 * and every warm SimSession in the standing conopt_served daemon —
 * reuses one decode pass, while any change to the program (a different
 * scale, a regenerated workload) lands on a different key and can
 * never replay stale records. Steady-state lookups are allocation-free
 * (a mutex-guarded ordered-map probe plus a shared_ptr copy);
 * population allocates only at first touch of a new program.
 *
 * Correctness contract: predecode is a host-speed layer only. An
 * emulator stepping through PreInst records produces bit-identical
 * DynInst streams (and therefore bit-identical SimStats) to the
 * re-decoding reference path, which remains available behind
 * Emulator::setPredecode(false); tests/test_predecode.cc pins the
 * equivalence across workloads and machine models.
 */

#ifndef CONOPT_ARCH_PREDECODE_HH
#define CONOPT_ARCH_PREDECODE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/asm/program.hh"
#include "src/isa/isa.hh"

namespace conopt::arch {

/**
 * One pre-decoded static instruction: the verbatim Instruction (copied
 * into every DynInst it spawns) plus every derived fact step() needs,
 * flattened so the hot loop reads one record instead of chasing the
 * opcode property table per dynamic instruction.
 */
struct PreInst
{
    /** Operand-routing and semantic predicates (from isa::OpInfo plus
     *  the instruction's own useImm), packed so the common "does this
     *  instruction read X" tests are single-bit probes. */
    enum : uint16_t {
        kReadsRa = 1u << 0,      ///< srcA is read
        kRaIsFp = 1u << 1,       ///< ...from the fp file
        kReadsRbOrImm = 1u << 2, ///< srcB is read (reg or immediate)
        kRbIsFp = 1u << 3,       ///< reg-form rb names an fp register
        kUseImm = 1u << 4,       ///< srcB comes from the immediate
        kReadsRc = 1u << 5,      ///< srcC is read (store data)
        kRcIsFp = 1u << 6,       ///< rc names an fp register
        kWritesRc = 1u << 7,     ///< result writes back to rc
        kIsLoad = 1u << 8,       ///< memory read
        kSextLoad = 1u << 9,     ///< load result sign-extends (LDL)
        kIsCondBranch = 1u << 10,///< conditional direction
        kIsIndirect = 1u << 11,  ///< target comes from srcA
        kIsCall = 1u << 12,      ///< writes the return address
        kIsHalt = 1u << 13,      ///< terminates the program
    };

    isa::Instruction inst;   ///< verbatim static instruction
    uint64_t immU = 0;       ///< inst.imm pre-cast (branch target /
                             ///< memory displacement / alu operand)
    uint16_t flags = 0;      ///< the predicate bits above
    isa::OpClass cls = isa::OpClass::None; ///< dispatch class
    uint8_t memSize = 0;     ///< access size in bytes (memory ops)

    bool has(uint16_t f) const { return (flags & f) != 0; }
};

/** 64-bit FNV-1a (avalanched) over the full program content: entry pc,
 *  every code field, and every data byte — the PredecodeCache key. */
uint64_t programContentKey(const assembler::Program &prog);

/** The flattened decode of one program, indexed by static-instruction
 *  position ((pc - codeBase) / instBytes). Immutable once built. */
class PreDecodedProgram
{
  public:
    explicit PreDecodedProgram(const assembler::Program &prog);

    size_t size() const { return insts_.size(); }
    const PreInst &at(size_t idx) const { return insts_[idx]; }
    const PreInst *data() const { return insts_.data(); }

    /** The content key this table was built from. */
    uint64_t fingerprint() const { return fingerprint_; }
    /** Cheap identity echo used to detect (astronomically unlikely)
     *  key collisions on cache hits. */
    uint64_t entryPc() const { return entryPc_; }

  private:
    std::vector<PreInst> insts_;
    uint64_t fingerprint_;
    uint64_t entryPc_;
};

/**
 * Process-wide cache of PreDecodedProgram tables keyed by
 * programContentKey(). One instance() shared by every emulator in the
 * process: concurrent sweep workers and daemon sessions running the
 * same workload share one decode pass. Entries live for the process
 * (the key space is bounded by distinct (workload, scale) programs,
 * same as sim::ProgramCache); a changed program simply maps to a new
 * key, which is the whole invalidation story.
 */
class PredecodeCache
{
  public:
    static PredecodeCache &instance();

    /** The table for @p prog: a hit is a map probe + shared_ptr copy
     *  (no allocation); a miss builds the table under the key. */
    std::shared_ptr<const PreDecodedProgram>
    get(const assembler::Program &prog);

    /** Tables actually built (process lifetime). */
    uint64_t builds() const { return builds_.load(std::memory_order_relaxed); }
    /** Lookups served without a build. */
    uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    /** Resident tables. */
    size_t size() const;

    /** Drop every entry (tests only: lets a test observe first-touch
     *  behaviour without depending on what ran before it). */
    void clear();

  private:
    mutable std::mutex mu_;
    std::map<uint64_t, std::shared_ptr<const PreDecodedProgram>> cache_;
    std::atomic<uint64_t> builds_{0};
    std::atomic<uint64_t> hits_{0};
};

} // namespace conopt::arch

#endif // CONOPT_ARCH_PREDECODE_HH
