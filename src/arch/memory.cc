#include "src/arch/memory.hh"

#include <cstring>

#include "src/util/logging.hh"

namespace conopt::arch {

const Memory::Page *
Memory::findPage(uint64_t addr) const
{
    auto it = pages_.find(addr >> pageShift);
    return it == pages_.end() ? nullptr : it->second.get();
}

Memory::Page &
Memory::touchPage(uint64_t addr)
{
    auto &slot = pages_[addr >> pageShift];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

uint64_t
Memory::read(uint64_t addr, unsigned size) const
{
    conopt_assert(size == 1 || size == 2 || size == 4 || size == 8);
    uint64_t value = 0;
    // Fast path: access within a single page.
    const uint64_t off = addr & (pageBytes - 1);
    if (off + size <= pageBytes) {
        const Page *p = findPage(addr);
        if (p)
            std::memcpy(&value, p->data() + off, size);
        return value;
    }
    // Page-straddling access, byte by byte.
    for (unsigned i = 0; i < size; ++i) {
        const Page *p = findPage(addr + i);
        const uint8_t b = p ? (*p)[(addr + i) & (pageBytes - 1)] : 0;
        value |= uint64_t(b) << (8 * i);
    }
    return value;
}

void
Memory::write(uint64_t addr, uint64_t value, unsigned size)
{
    conopt_assert(size == 1 || size == 2 || size == 4 || size == 8);
    const uint64_t off = addr & (pageBytes - 1);
    if (off + size <= pageBytes) {
        Page &p = touchPage(addr);
        std::memcpy(p.data() + off, &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i) {
        Page &p = touchPage(addr + i);
        p[(addr + i) & (pageBytes - 1)] = uint8_t(value >> (8 * i));
    }
}

void
Memory::reset()
{
    for (auto &kv : pages_)
        kv.second->fill(0);
}

void
Memory::writeBytes(uint64_t addr, const uint8_t *src, size_t len)
{
    for (size_t i = 0; i < len; ++i) {
        Page &p = touchPage(addr + i);
        p[(addr + i) & (pageBytes - 1)] = src[i];
    }
}

} // namespace conopt::arch
