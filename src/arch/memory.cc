#include "src/arch/memory.hh"

#include <algorithm>
#include <cstring>

#include "src/util/logging.hh"

namespace conopt::arch {

const Memory::Page *
Memory::findPage(uint64_t addr) const
{
    auto it = pages_.find(addr >> pageShift);
    return it == pages_.end() ? nullptr : it->second.get();
}

Memory::Page &
Memory::touchPage(uint64_t addr)
{
    auto &slot = pages_[addr >> pageShift];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->bytes.fill(0);
    }
    if (!slot->dirty) {
        slot->dirty = true;
        dirty_.push_back(slot.get());
    }
    return *slot;
}

uint64_t
Memory::read(uint64_t addr, unsigned size) const
{
    conopt_assert(size == 1 || size == 2 || size == 4 || size == 8);
    uint64_t value = 0;
    // Fast path: access within a single page.
    const uint64_t off = addr & (pageBytes - 1);
    if (off + size <= pageBytes) {
        const Page *p = findPage(addr);
        if (p)
            std::memcpy(&value, p->bytes.data() + off, size);
        return value;
    }
    // Page-straddling access, byte by byte.
    for (unsigned i = 0; i < size; ++i) {
        const Page *p = findPage(addr + i);
        const uint8_t b = p ? p->bytes[(addr + i) & (pageBytes - 1)] : 0;
        value |= uint64_t(b) << (8 * i);
    }
    return value;
}

void
Memory::write(uint64_t addr, uint64_t value, unsigned size)
{
    conopt_assert(size == 1 || size == 2 || size == 4 || size == 8);
    const uint64_t off = addr & (pageBytes - 1);
    if (off + size <= pageBytes) {
        Page &p = touchPage(addr);
        std::memcpy(p.bytes.data() + off, &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i) {
        Page &p = touchPage(addr + i);
        p.bytes[(addr + i) & (pageBytes - 1)] = uint8_t(value >> (8 * i));
    }
}

void
Memory::reset()
{
    // Clean resident pages are already all-zero (class invariant), so
    // a warm reset wipes only the footprint the last run touched
    // instead of the whole resident set.
    for (Page *p : dirty_) {
        p->bytes.fill(0);
        p->dirty = false;
    }
    dirty_.clear();
}

void
Memory::writeBytes(uint64_t addr, const uint8_t *src, size_t len)
{
    // Page-chunked: one page probe per up-to-4-KiB run instead of one
    // per byte (this is the data-segment load on every reset()).
    while (len > 0) {
        const uint64_t off = addr & (pageBytes - 1);
        const size_t chunk =
            std::min<size_t>(len, size_t(pageBytes - off));
        Page &p = touchPage(addr);
        std::memcpy(p.bytes.data() + off, src, chunk);
        addr += chunk;
        src += chunk;
        len -= chunk;
    }
}

} // namespace conopt::arch
