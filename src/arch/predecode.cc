#include "src/arch/predecode.hh"

#include "src/util/bitops.hh"

namespace conopt::arch {

namespace {

/** Mix one 64-bit word into an FNV-1a state, little-endian byte order
 *  (same walk as sim::Fnv::mix, re-stated here because src/arch cannot
 *  depend on src/sim). */
constexpr uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h = fnv1aByte(h, uint8_t(v));
        v >>= 8;
    }
    return h;
}

} // namespace

uint64_t
programContentKey(const assembler::Program &prog)
{
    // Same content walk as sim::programFingerprint (every field that
    // determines the initial machine state), kept as a raw uint64 so
    // the per-reset cache probe never formats or compares strings.
    uint64_t h = kFnv1aOffsetBasis;
    h = fnvMix(h, prog.entryPc);
    h = fnvMix(h, prog.code.size());
    for (const auto &inst : prog.code) {
        h = fnvMix(h, uint64_t(inst.op));
        h = fnvMix(h, inst.ra);
        h = fnvMix(h, inst.rb);
        h = fnvMix(h, inst.rc);
        h = fnvMix(h, inst.useImm);
        h = fnvMix(h, uint64_t(inst.imm));
    }
    h = fnvMix(h, prog.data.size());
    for (const auto &seg : prog.data) {
        h = fnvMix(h, seg.addr);
        h = fnvMix(h, seg.bytes.size());
        for (uint8_t b : seg.bytes)
            h = fnv1aByte(h, b);
    }
    return avalanche64(h);
}

PreDecodedProgram::PreDecodedProgram(const assembler::Program &prog)
    : fingerprint_(programContentKey(prog)), entryPc_(prog.entryPc)
{
    insts_.resize(prog.code.size());
    for (size_t i = 0; i < prog.code.size(); ++i) {
        const isa::Instruction &inst = prog.code[i];
        const isa::OpInfo &info = isa::opInfo(inst.op);
        PreInst &p = insts_[i];
        p.inst = inst;
        p.immU = static_cast<uint64_t>(inst.imm);
        p.cls = info.cls;
        p.memSize = info.memSize;
        uint16_t f = 0;
        if (info.readsRa)
            f |= PreInst::kReadsRa;
        if (info.raIsFp)
            f |= PreInst::kRaIsFp;
        if (info.readsRb || inst.useImm)
            f |= PreInst::kReadsRbOrImm;
        if (info.rbIsFp)
            f |= PreInst::kRbIsFp;
        if (inst.useImm)
            f |= PreInst::kUseImm;
        if (info.readsRc)
            f |= PreInst::kReadsRc;
        if (info.rcIsFp)
            f |= PreInst::kRcIsFp;
        if (info.writesRc)
            f |= PreInst::kWritesRc;
        if (info.isLoad)
            f |= PreInst::kIsLoad;
        if (inst.op == isa::Opcode::LDL)
            f |= PreInst::kSextLoad;
        if (info.isCondBranch)
            f |= PreInst::kIsCondBranch;
        if (info.isIndirect)
            f |= PreInst::kIsIndirect;
        if (info.isCall)
            f |= PreInst::kIsCall;
        if (inst.op == isa::Opcode::HALT)
            f |= PreInst::kIsHalt;
        p.flags = f;
    }
}

PredecodeCache &
PredecodeCache::instance()
{
    // conopt-lint: allow(hotpath-alloc) one-time process singleton
    static PredecodeCache cache;
    return cache;
}

std::shared_ptr<const PreDecodedProgram>
PredecodeCache::get(const assembler::Program &prog)
{
    const uint64_t key = programContentKey(prog);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(key);
        // The key covers the full program content, so a hit with a
        // mismatched shape would mean an FNV collision: rebuild rather
        // than replay the wrong trace.
        if (it != cache_.end() && it->second->size() == prog.code.size()
            && it->second->entryPc() == prog.entryPc) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // First touch of this program (or a collision): build outside the
    // lock so concurrent sweep workers never serialize on a decode.
    // conopt-lint: allow(hotpath-alloc) first-touch build of a new program
    auto built = std::make_shared<const PreDecodedProgram>(prog);
    builds_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    // conopt-lint: allow(hotpath-alloc) first-touch insert of a new program
    auto &slot = cache_[key];
    if (!slot || slot->size() != prog.code.size()
        || slot->entryPc() != prog.entryPc)
        slot = std::move(built);
    return slot;
}

size_t
PredecodeCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
}

void
PredecodeCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
    builds_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
}

} // namespace conopt::arch
