/**
 * @file
 * Fixed-capacity ring buffer: the backing store for every hot queue in
 * the timing core (ROB, store queue, schedulers, delay pipes). Unlike
 * std::deque it never allocates per push — capacity is reserved once
 * (sized from the MachineConfig) and reused across simulations, which
 * is what lets a warm SimSession run with zero heap allocations per
 * simulated instruction.
 *
 * Semantics:
 *   - push_back() on a full buffer is a hard error (conopt_panic), not
 *     silent growth: the pipeline's own resource checks bound every
 *     queue, so hitting capacity means the caller sized it wrong.
 *   - reserve() grows the backing store explicitly (contents kept);
 *     reset() clears and ensures capacity in one step. Neither ever
 *     shrinks, so a reused buffer stops allocating once it has seen
 *     its high-water configuration.
 *   - erase() removes by logical index, preserving order (used by the
 *     schedulers, whose entries issue out of queue order).
 */

#ifndef CONOPT_UTIL_RING_BUFFER_HH
#define CONOPT_UTIL_RING_BUFFER_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "src/util/logging.hh"

namespace conopt {

/** Fixed-capacity circular FIFO with indexed access. */
template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(size_t capacity = 0) { reserve(capacity); }

    /** Elements currently held. */
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == data_.size(); }
    /** Slots allocated (always a power of two, possibly more than
     *  requested). */
    size_t capacity() const { return data_.size(); }

    /**
     * Ensure room for at least @p capacity elements, preserving
     * contents. Never shrinks.
     */
    void
    reserve(size_t capacity)
    {
        if (capacity <= data_.size())
            return;
        size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        std::vector<T> grown(cap);
        for (size_t i = 0; i < size_; ++i)
            grown[i] = std::move(slot(i));
        data_.swap(grown);
        head_ = 0;
    }

    /** Drop all elements and ensure room for @p capacity. */
    void
    reset(size_t capacity)
    {
        clear();
        reserve(capacity);
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** Append; the buffer must not be full (capacity never grows
     *  implicitly — see file header). */
    void
    push_back(T value)
    {
        if (full())
            conopt_panic("RingBuffer overflow (capacity %zu)",
                         data_.size());
        data_[(head_ + size_) & (data_.size() - 1)] = std::move(value);
        ++size_;
    }

    /**
     * Append by exposing the next slot for in-place construction: the
     * returned reference is the new back() element, still holding
     * whatever stale value the slot last carried — the caller must
     * overwrite every field it reads back. Avoids the temporary that
     * push_back(T) moves through, which matters for the fat POD
     * records travelling the front-end pipes.
     */
    T &
    pushSlot()
    {
        if (full())
            conopt_panic("RingBuffer overflow (capacity %zu)",
                         data_.size());
        ++size_;
        return slot(size_ - 1);
    }

    /** Remove the oldest element. */
    void
    pop_front()
    {
        conopt_assert(size_ > 0);
        head_ = (head_ + 1) & (data_.size() - 1);
        --size_;
    }

    T &front() { return slot(0); }
    const T &front() const { return slot(0); }
    T &back() { return slot(size_ - 1); }
    const T &back() const { return slot(size_ - 1); }

    /** Logical index 0 is the oldest element. */
    T &operator[](size_t i) { return slot(i); }
    const T &operator[](size_t i) const { return slot(i); }

    /**
     * Remove the element at logical index @p i, shifting everything
     * younger down one slot (order-preserving; O(size - i)).
     */
    void
    erase(size_t i)
    {
        conopt_assert(i < size_);
        for (size_t k = i + 1; k < size_; ++k)
            slot(k - 1) = std::move(slot(k));
        --size_;
    }

  private:
    T &
    slot(size_t i)
    {
        conopt_assert(i < size_);
        return data_[(head_ + i) & (data_.size() - 1)];
    }

    const T &
    slot(size_t i) const
    {
        conopt_assert(i < size_);
        return data_[(head_ + i) & (data_.size() - 1)];
    }

    std::vector<T> data_; ///< power-of-two length, or empty
    size_t head_ = 0;
    size_t size_ = 0;
};

} // namespace conopt

#endif // CONOPT_UTIL_RING_BUFFER_HH
