/**
 * @file
 * Small bit-manipulation helpers shared across the simulator.
 */

#ifndef CONOPT_UTIL_BITOPS_HH
#define CONOPT_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace conopt {

/** True if @p v is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two (undefined for non-powers). */
constexpr unsigned
log2Exact(uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Smallest power of two >= v (v must be nonzero). */
constexpr uint64_t
ceilPowerOfTwo(uint64_t v)
{
    return std::bit_ceil(v);
}

/** Sign-extend the low @p bits bits of @p v to 64 bits. */
constexpr int64_t
sext64(uint64_t v, unsigned bits)
{
    const unsigned shift = 64 - bits;
    return static_cast<int64_t>(v << shift) >> shift;
}

/** Extract bits [lo, lo+len) of v. */
constexpr uint64_t
bits64(uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & ((len >= 64) ? ~uint64_t(0) : ((uint64_t(1) << len) - 1));
}

// FNV-1a hashing constants and steps, shared by the sweep job seeds
// (src/sim/sweep.cc) and the config fingerprints (src/sim/baseline.cc).
constexpr uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnv1aPrime = 0x100000001b3ull;

/** One FNV-1a step: fold @p b into the running hash @p h. */
constexpr uint64_t
fnv1aByte(uint64_t h, uint8_t b)
{
    return (h ^ b) * kFnv1aPrime;
}

/** Murmur3-style 64-bit avalanche finalizer. */
constexpr uint64_t
avalanche64(uint64_t v)
{
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdull;
    v ^= v >> 33;
    return v;
}

/** Wrapping add/sub on uint64_t used for well-defined overflow semantics. */
constexpr uint64_t
wrappingAdd(uint64_t a, uint64_t b)
{
    return a + b;
}

constexpr uint64_t
wrappingSub(uint64_t a, uint64_t b)
{
    return a - b;
}

constexpr uint64_t
wrappingMul(uint64_t a, uint64_t b)
{
    return a * b;
}

} // namespace conopt

#endif // CONOPT_UTIL_BITOPS_HH
