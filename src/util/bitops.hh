/**
 * @file
 * Small bit-manipulation helpers shared across the simulator.
 */

#ifndef CONOPT_UTIL_BITOPS_HH
#define CONOPT_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace conopt {

/** True if @p v is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two (undefined for non-powers). */
constexpr unsigned
log2Exact(uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Smallest power of two >= v (v must be nonzero). */
constexpr uint64_t
ceilPowerOfTwo(uint64_t v)
{
    return std::bit_ceil(v);
}

/** Sign-extend the low @p bits bits of @p v to 64 bits. */
constexpr int64_t
sext64(uint64_t v, unsigned bits)
{
    const unsigned shift = 64 - bits;
    return static_cast<int64_t>(v << shift) >> shift;
}

/** Extract bits [lo, lo+len) of v. */
constexpr uint64_t
bits64(uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & ((len >= 64) ? ~uint64_t(0) : ((uint64_t(1) << len) - 1));
}

/** Wrapping add/sub on uint64_t used for well-defined overflow semantics. */
constexpr uint64_t
wrappingAdd(uint64_t a, uint64_t b)
{
    return a + b;
}

constexpr uint64_t
wrappingSub(uint64_t a, uint64_t b)
{
    return a - b;
}

constexpr uint64_t
wrappingMul(uint64_t a, uint64_t b)
{
    return a * b;
}

} // namespace conopt

#endif // CONOPT_UTIL_BITOPS_HH
