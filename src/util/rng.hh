/**
 * @file
 * Deterministic pseudo-random number generator used by workload generators
 * and property tests. xoshiro256** -- fast, reproducible across platforms,
 * independent of the C++ standard library's unspecified distributions.
 */

#ifndef CONOPT_UTIL_RNG_HH
#define CONOPT_UTIL_RNG_HH

#include <cstdint>

namespace conopt {

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed the generator; the same seed always yields the same stream. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound) (bound must be nonzero). */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p = 0.5);

  private:
    uint64_t state_[4];
};

} // namespace conopt

#endif // CONOPT_UTIL_RNG_HH
