/**
 * @file
 * Fixed-capacity per-key wake list: the event-driven scheduler's
 * producer -> consumer dependency index. One list per physical
 * register file; the key is a physical register id and the values are
 * the ROB sequence numbers waiting for that register's ready cycle.
 *
 * The timing core registers a waiter when an instruction dispatches
 * with an operand whose producer has not issued yet, and drains the
 * key when the producer finally calls setReadyAt — so a scheduler
 * entry is touched O(#deps) times total instead of once per cycle.
 *
 * Storage is two flat arrays (per-key list heads + a node pool with an
 * intrusive free list), both sized once from the MachineConfig and
 * reset in place, so the hot path never allocates. Every waiting
 * entry holds at most OptResult::deps.size() registrations and at
 * most schedTotalEntries() entries wait at once, which is exactly
 * what MachineConfig::wakeListCapacity() reserves; add() on a full
 * pool is a hard error, not silent growth, the same contract as
 * RingBuffer.
 */

#ifndef CONOPT_UTIL_WAKE_LIST_HH
#define CONOPT_UTIL_WAKE_LIST_HH

#include <cstdint>
#include <vector>

#include "src/util/logging.hh"

namespace conopt {

/** Per-key singly-linked waiter lists over a fixed node pool. */
class WakeList
{
  public:
    WakeList() = default;

    /**
     * Drop every waiter and size for @p num_keys keys and @p capacity
     * concurrent registrations. Storage is reused; nothing shrinks,
     * so a warm reset performs zero heap allocations once the
     * high-water configuration has been seen.
     */
    void
    reset(size_t num_keys, size_t capacity)
    {
        heads_.assign(num_keys, kNil);
        if (nodes_.size() < capacity)
            nodes_.resize(capacity);
        freeHead_ = kNil;
        for (size_t i = nodes_.size(); i-- > 0;) {
            nodes_[i].next = freeHead_;
            freeHead_ = int32_t(i);
        }
        size_ = 0;
    }

    /** Register @p value as waiting on @p key. Panics when the pool is
     *  exhausted: capacity is an invariant of the caller's sizing, not
     *  a soft limit. */
    void
    add(uint32_t key, uint64_t value)
    {
        conopt_assert(key < heads_.size());
        if (freeHead_ == kNil)
            conopt_panic("WakeList overflow (capacity %zu)",
                         nodes_.size());
        const int32_t n = freeHead_;
        freeHead_ = nodes_[n].next;
        nodes_[n].value = value;
        nodes_[n].next = heads_[key];
        heads_[key] = n;
        ++size_;
    }

    /** Pop every waiter of @p key, invoking fn(value) for each. The
     *  drain order is unspecified (the core re-sorts woken entries by
     *  age before they can issue). */
    template <typename Fn>
    void
    drain(uint32_t key, Fn &&fn)
    {
        conopt_assert(key < heads_.size());
        int32_t n = heads_[key];
        heads_[key] = kNil;
        while (n != kNil) {
            const int32_t next = nodes_[n].next;
            const uint64_t value = nodes_[n].value;
            nodes_[n].next = freeHead_;
            freeHead_ = n;
            --size_;
            fn(value);
            n = next;
        }
    }

    bool
    empty(uint32_t key) const
    {
        conopt_assert(key < heads_.size());
        return heads_[key] == kNil;
    }

    /** Waiters currently registered, across all keys. */
    size_t size() const { return size_; }
    size_t capacity() const { return nodes_.size(); }

  private:
    static constexpr int32_t kNil = -1;

    struct Node
    {
        uint64_t value = 0;
        int32_t next = kNil;
    };

    std::vector<int32_t> heads_; ///< per-key list head (kNil = empty)
    std::vector<Node> nodes_;    ///< fixed pool, intrusively free-listed
    int32_t freeHead_ = kNil;
    size_t size_ = 0;
};

} // namespace conopt

#endif // CONOPT_UTIL_WAKE_LIST_HH
