#include "src/util/rng.hh"

#include "src/util/logging.hh"

namespace conopt {

namespace {

constexpr uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** splitmix64 step used to expand the seed into four state words. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &word : state_)
        word = splitmix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    conopt_assert(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    conopt_assert(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return double(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace conopt
