/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * panic()  -- an internal invariant was violated (simulator bug); aborts.
 * fatal()  -- the user asked for something unsupportable (bad config);
 *             exits with an error code.
 * warn()   -- questionable but survivable condition.
 * inform() -- plain status output.
 */

#ifndef CONOPT_UTIL_LOGGING_HH
#define CONOPT_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace conopt {

/** Print a formatted message and abort(); use for simulator bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Print a warning that does not stop simulation. */
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace conopt

#define conopt_panic(...) \
    ::conopt::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define conopt_fatal(...) \
    ::conopt::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define conopt_warn(...) ::conopt::warnImpl(__VA_ARGS__)
#define conopt_inform(...) ::conopt::informImpl(__VA_ARGS__)

/**
 * Invariant check that stays on in release builds. The simulator relies on
 * strict expression-and-value checking (paper section 4.2), so these checks
 * must not be compiled out.
 */
#define conopt_assert(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::conopt::panicImpl(__FILE__, __LINE__,                         \
                                "assertion failed: %s", #cond);            \
        }                                                                   \
    } while (0)

#endif // CONOPT_UTIL_LOGGING_HH
