/**
 * @file
 * Fixed-latency pipeline latch used to model multi-stage sections of the
 * processor front end (decode stages, the extra optimizer stages, value
 * feedback transmission). Items pushed at cycle C become visible at cycle
 * C + depth.
 *
 * Storage is a RingBuffer: a caller that knows its occupancy bound (the
 * timing core sizes its pipes from the MachineConfig) calls reserve()
 * once and the pipe never heap-allocates again; without a reservation
 * the pipe grows geometrically on demand, so casual users keep the old
 * deque-like behaviour.
 */

#ifndef CONOPT_UTIL_DELAY_PIPE_HH
#define CONOPT_UTIL_DELAY_PIPE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/ring_buffer.hh"

namespace conopt {

/**
 * A latency pipe: a queue whose entries carry the cycle at which they
 * become visible at the tail. Supports arbitrary (even zero) latency.
 */
template <typename T>
class DelayPipe
{
  public:
    explicit DelayPipe(uint32_t depth = 1) : depth_(depth) {}

    /** Change the pipe depth (only before use / after clear()). */
    void setDepth(uint32_t depth) { depth_ = depth; }
    uint32_t depth() const { return depth_; }

    /** Pre-size the backing ring (contents kept; never shrinks). */
    void reserve(size_t capacity) { entries_.reserve(capacity); }

    /** Insert an item at cycle @p now; it matures at now + depth. */
    void
    push(uint64_t now, T item)
    {
        if (entries_.full())
            entries_.reserve(entries_.capacity() ? entries_.capacity() * 2
                                                 : 8);
        entries_.push_back(Entry{now + depth_, std::move(item)});
    }

    /**
     * Insert at cycle @p now by exposing the new tail item for
     * in-place filling (see RingBuffer::pushSlot: the slot holds a
     * stale previous value, the caller must overwrite what it will
     * read). Skips the by-value trip through push()'s Entry temporary.
     */
    T &
    pushSlot(uint64_t now)
    {
        if (entries_.full())
            entries_.reserve(entries_.capacity() ? entries_.capacity() * 2
                                                 : 8);
        Entry &e = entries_.pushSlot();
        e.readyCycle = now + depth_;
        return e.item;
    }

    /** True if an item is available at cycle @p now. */
    bool
    ready(uint64_t now) const
    {
        return !entries_.empty() && entries_.front().readyCycle <= now;
    }

    /** Access the oldest matured item (ready(now) must hold). */
    T &front() { return entries_.front().item; }
    const T &front() const { return entries_.front().item; }

    /** The cycle at which the oldest item matures (the pipe's next
     *  event, for idle-cycle fast-forward). Must not be empty. */
    uint64_t
    nextReadyCycle() const
    {
        conopt_assert(!entries_.empty());
        return entries_.front().readyCycle;
    }

    /** Remove the oldest item. */
    void pop() { entries_.pop_front(); }

    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    void clear() { entries_.clear(); }

    /** Drop every entry for which pred(item) returns true. */
    template <typename Pred>
    void
    removeIf(Pred pred)
    {
        size_t kept = 0;
        for (size_t i = 0; i < entries_.size(); ++i) {
            if (!pred(entries_[i].item)) {
                if (kept != i)
                    entries_[kept] = std::move(entries_[i]);
                ++kept;
            }
        }
        while (entries_.size() > kept)
            entries_.erase(entries_.size() - 1);
    }

  private:
    struct Entry
    {
        uint64_t readyCycle = 0;
        T item{};
    };

    uint32_t depth_;
    RingBuffer<Entry> entries_;
};

} // namespace conopt

#endif // CONOPT_UTIL_DELAY_PIPE_HH
