/**
 * @file
 * Fixed-latency pipeline latch used to model multi-stage sections of the
 * processor front end (decode stages, the extra optimizer stages, value
 * feedback transmission). Items pushed at cycle C become visible at cycle
 * C + depth.
 */

#ifndef CONOPT_UTIL_DELAY_PIPE_HH
#define CONOPT_UTIL_DELAY_PIPE_HH

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

namespace conopt {

/**
 * A latency pipe: a queue whose entries carry the cycle at which they
 * become visible at the tail. Supports arbitrary (even zero) latency.
 */
template <typename T>
class DelayPipe
{
  public:
    explicit DelayPipe(uint32_t depth = 1) : depth_(depth) {}

    /** Change the pipe depth (only before use / after clear()). */
    void setDepth(uint32_t depth) { depth_ = depth; }
    uint32_t depth() const { return depth_; }

    /** Insert an item at cycle @p now; it matures at now + depth. */
    void
    push(uint64_t now, T item)
    {
        entries_.push_back(Entry{now + depth_, std::move(item)});
    }

    /** True if an item is available at cycle @p now. */
    bool
    ready(uint64_t now) const
    {
        return !entries_.empty() && entries_.front().readyCycle <= now;
    }

    /** Access the oldest matured item (ready(now) must hold). */
    T &front() { return entries_.front().item; }
    const T &front() const { return entries_.front().item; }

    /** Remove the oldest item. */
    void pop() { entries_.pop_front(); }

    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    void clear() { entries_.clear(); }

    /** Drop every entry for which pred(item) returns true. */
    template <typename Pred>
    void
    removeIf(Pred pred)
    {
        std::deque<Entry> kept;
        for (auto &e : entries_) {
            if (!pred(e.item))
                kept.push_back(std::move(e));
        }
        entries_.swap(kept);
    }

  private:
    struct Entry
    {
        uint64_t readyCycle;
        T item;
    };

    uint32_t depth_;
    std::deque<Entry> entries_;
};

} // namespace conopt

#endif // CONOPT_UTIL_DELAY_PIPE_HH
