#include "src/util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace conopt {

namespace {

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn: ", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info: ", fmt, args);
    va_end(args);
}

} // namespace conopt
