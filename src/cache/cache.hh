/**
 * @file
 * Tag-only set-associative cache with true-LRU replacement, plus the
 * three-level hierarchy from Table 2 of the paper:
 *
 *   L1 I: 64 KB, 4-way, 64 B lines, 1 cycle
 *   L1 D: 32 KB, 2-way, 32 B lines, 2 ports, 2 cycles
 *   L2:   1 MB, 2-way, 128 B lines, 10 cycles (unified)
 *   Mem:  100 cycles
 *
 * Caches track hit/miss and latency only; data always comes from the
 * functional emulator (oracle values), so no data arrays are needed.
 */

#ifndef CONOPT_CACHE_CACHE_HH
#define CONOPT_CACHE_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace conopt::cache {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    uint64_t sizeBytes;
    unsigned assoc;
    unsigned lineBytes;
    unsigned latency;     ///< access latency in cycles on a hit
};

/** A single tag-only set-associative cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /** Re-initialize for a new simulation under @p config: all lines
     *  invalid, counters and LRU clock zeroed, as freshly constructed.
     *  Reallocates only when the new geometry needs more ways. */
    void reset(const CacheConfig &config);

    /**
     * Look up @p addr; on a miss the line is filled (LRU victim evicted).
     * @return true on hit.
     */
    bool access(uint64_t addr);

    /** Look up without filling (for tests). */
    bool probe(uint64_t addr) const;

    /** Invalidate everything. */
    void flush();

    unsigned latency() const { return config_.latency; }
    const CacheConfig &config() const { return config_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lruStamp = 0;
        bool valid = false;
    };

    uint64_t lineAddr(uint64_t addr) const { return addr >> lineShift_; }
    size_t setIndex(uint64_t line) const { return line & (numSets_ - 1); }

    CacheConfig config_;
    unsigned lineShift_;
    size_t numSets_;
    std::vector<Way> ways_;   ///< numSets_ * assoc, set-major
    uint64_t stamp_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** Configuration of the whole hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1i{64 * 1024, 4, 64, 1};
    CacheConfig l1d{32 * 1024, 2, 32, 2};
    CacheConfig l2{1024 * 1024, 2, 128, 10};
    unsigned memLatency = 100;
};

/**
 * The full memory hierarchy. Instruction and data accesses return the
 * total latency of the access including lower levels.
 */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &config = {});

    /** Reset all three levels for a new simulation under @p config. */
    void
    reset(const HierarchyConfig &config)
    {
        config_ = config;
        l1i_.reset(config.l1i);
        l1d_.reset(config.l1d);
        l2_.reset(config.l2);
    }

    /** Fetch-side access; returns total latency in cycles. */
    unsigned accessInst(uint64_t addr);

    /** Data-side access (load or store); returns total latency. */
    unsigned accessData(uint64_t addr);

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }

  private:
    HierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
};

} // namespace conopt::cache

#endif // CONOPT_CACHE_CACHE_HH
