#include "src/cache/cache.hh"

#include "src/util/bitops.hh"
#include "src/util/logging.hh"

namespace conopt::cache {

Cache::Cache(const CacheConfig &config)
{
    reset(config);
}

void
Cache::reset(const CacheConfig &config)
{
    config_ = config;
    conopt_assert(isPowerOfTwo(config.lineBytes));
    conopt_assert(config.assoc >= 1);
    lineShift_ = log2Exact(config.lineBytes);
    const uint64_t lines = config.sizeBytes / config.lineBytes;
    conopt_assert(lines % config.assoc == 0);
    numSets_ = lines / config.assoc;
    conopt_assert(isPowerOfTwo(numSets_));
    ways_.assign(numSets_ * config.assoc, Way{});
    stamp_ = 0;
    hits_ = 0;
    misses_ = 0;
}

bool
Cache::access(uint64_t addr)
{
    const uint64_t line = lineAddr(addr);
    const size_t set = setIndex(line);
    Way *base = &ways_[set * config_.assoc];
    ++stamp_;

    Way *victim = base;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lruStamp = stamp_;
            ++hits_;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lruStamp < victim->lruStamp) {
            victim = &way;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->tag = line;
    victim->lruStamp = stamp_;
    return false;
}

bool
Cache::probe(uint64_t addr) const
{
    const uint64_t line = lineAddr(addr);
    const size_t set = setIndex(line);
    const Way *base = &ways_[set * config_.assoc];
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == line)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Way &w : ways_)
        w.valid = false;
}

Hierarchy::Hierarchy(const HierarchyConfig &config)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2)
{
}

unsigned
Hierarchy::accessInst(uint64_t addr)
{
    unsigned latency = l1i_.latency();
    if (!l1i_.access(addr)) {
        latency += l2_.latency();
        if (!l2_.access(addr))
            latency += config_.memLatency;
    }
    return latency;
}

unsigned
Hierarchy::accessData(uint64_t addr)
{
    unsigned latency = l1d_.latency();
    if (!l1d_.access(addr)) {
        latency += l2_.latency();
        if (!l2_.access(addr))
            latency += config_.memLatency;
    }
    return latency;
}

} // namespace conopt::cache
