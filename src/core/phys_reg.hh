/**
 * @file
 * Physical register identifiers and the interface the optimizer uses to
 * talk to a physical register file. The concrete register file (with
 * timing state) lives in the pipeline library; unit tests provide mocks.
 *
 * The paper relies on a reference-counting allocation scheme (Jourdan et
 * al. [15]) because the optimizer extends physical register lifetimes
 * beyond the classic free-on-next-overwrite-retire point. The interface
 * exposes exactly that: addRef/release, plus the value-feedback query.
 */

#ifndef CONOPT_CORE_PHYS_REG_HH
#define CONOPT_CORE_PHYS_REG_HH

#include <cstdint>

namespace conopt::core {

/** Physical register name. */
using PhysRegId = uint16_t;

/** Sentinel meaning "no physical register". */
constexpr PhysRegId invalidPreg = 0xFFFF;

/**
 * What the optimizer needs from a physical register file.
 *
 * Reference counts keep a register's value live while any RAT symbolic
 * entry, MBC entry, in-flight consumer, or architectural mapping still
 * refers to it.
 */
class PhysRegInterface
{
  public:
    virtual ~PhysRegInterface() = default;

    /**
     * Allocate a fresh register with one reference (the caller's).
     * Returns invalidPreg if the free list is empty.
     */
    virtual PhysRegId alloc() = 0;

    /** Number of registers currently free. */
    virtual unsigned freeCount() const = 0;

    /** Take an additional reference. */
    virtual void addRef(PhysRegId reg) = 0;

    /** Drop a reference; the register is freed when the count hits 0. */
    virtual void release(PhysRegId reg) = 0;

    /**
     * Value feedback (paper section 3.3): true if the value of @p reg has
     * been produced and transmitted back to the optimization tables by
     * @p cycle. On success @p value is the register's value.
     */
    virtual bool valueKnown(PhysRegId reg, uint64_t cycle,
                            uint64_t &value) const = 0;

    /**
     * The oracle (architecturally correct) value this register will hold,
     * available as soon as the producer is renamed. Used only for the
     * strict expression-and-value checking described in paper section
     * 4.2, never for timing decisions.
     */
    virtual uint64_t oracleValue(PhysRegId reg) const = 0;

    /** Record the oracle value for a freshly allocated register. */
    virtual void setOracle(PhysRegId reg, uint64_t value) = 0;
};

} // namespace conopt::core

#endif // CONOPT_CORE_PHYS_REG_HH
