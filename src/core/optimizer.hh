/**
 * @file
 * The continuous optimizer: the combined rename + optimization unit the
 * paper places in the rename stage (sections 2 and 3).
 *
 * RenameUnit::renameInst() performs, per dynamic instruction:
 *
 *   1. CP/RA  -- read the symbolic RAT, propagate constants (including
 *      values returned by value feedback), reassociate add/shift chains
 *      into the (base << scale) + offset form, apply strength reduction
 *      and move elimination, and early-execute simple instructions whose
 *      inputs are all known. Intra-bundle dependence depth is limited as
 *      in the hardware (one ALU level per rename bundle by default).
 *   2. RLE/SF -- for memory operations whose address is fully generated
 *      at rename, query/update the Memory Bypass Cache, converting loads
 *      that hit into (eliminated) moves.
 *   3. Rename -- allocate the destination physical register (or alias it
 *      for eliminated moves/loads) and publish the new RAT entry.
 *
 * All derived values are cross-checked against the oracle values carried
 * by the DynInst (strict expression-and-value checking, paper sec. 4.2).
 */

#ifndef CONOPT_CORE_OPTIMIZER_HH
#define CONOPT_CORE_OPTIMIZER_HH

#include <array>
#include <cstdint>
#include <optional>

#include "src/arch/dyn_inst.hh"
#include "src/core/mbc.hh"
#include "src/core/opt_rat.hh"
#include "src/core/phys_reg.hh"
#include "src/core/symbolic.hh"
#include "src/isa/isa.hh"
#include "src/util/logging.hh"

namespace conopt::core {

/** Feature switches and size knobs for the optimizer. */
struct OptimizerConfig
{
    /** Master switch; false models the baseline machine (plain rename,
     *  no extra pipeline stages). */
    bool enabled = false;

    bool enableCpRa = true;       ///< symbolic CP/RA (false: feedback only)
    bool enableRleSf = true;      ///< MBC-based RLE and store forwarding
    bool enableValueFeedback = true; ///< consult fed-back values
    bool enableBranchInference = true; ///< beq/bne imply register == 0
    bool enableStrengthReduction = true; ///< mul by 2^k -> shift
    bool enableMoveElim = true;   ///< alias pure register moves

    /** Intra-bundle chained additions allowed (paper fig. 10: "depth").
     *  0 = only the first instruction of a dependence chain in a rename
     *  bundle is optimized. */
    unsigned addChainDepth = 0;

    /** Allow one load per bundle to forward from an MBC entry written
     *  earlier in the same bundle (fig. 10, "depth 3 & 1 mem"). */
    bool allowChainedMem = false;

    /** Extra rename pipeline stages the optimizer adds (fig. 11). */
    unsigned extraStages = 2;

    /** MBC geometry. */
    MbcConfig mbc;

    /** Flush the MBC when a store with unknown address renames, instead
     *  of proceeding speculatively (paper section 3.2). */
    bool mbcFlushOnUnknownStore = false;

    /** Preset: everything on (the paper's default optimizer). */
    static OptimizerConfig
    full()
    {
        OptimizerConfig c;
        c.enabled = true;
        return c;
    }

    /** Preset: value feedback only (fig. 9's "feedback" bars). */
    static OptimizerConfig
    feedbackOnly()
    {
        OptimizerConfig c;
        c.enabled = true;
        c.enableCpRa = false;
        c.enableRleSf = false;
        c.enableBranchInference = false;
        c.enableStrengthReduction = false;
        c.enableMoveElim = false;
        return c;
    }

    /** Preset: the baseline machine without an optimizer. */
    static OptimizerConfig
    baseline()
    {
        OptimizerConfig c;
        c.enabled = false;
        c.extraStages = 0;
        return c;
    }
};

/** A rewritten source dependence handed to the out-of-order core. */
struct SrcDep
{
    PhysRegId reg = invalidPreg;
    bool isFp = false;
};

/** Everything the pipeline needs to know about one renamed instruction. */
struct OptResult
{
    // --- classification ------------------------------------------------
    bool earlyExecuted = false;  ///< executes in the optimizer; no OoO work
    bool moveEliminated = false; ///< dest aliased to an existing register
    bool loadRemoved = false;    ///< RLE/SF converted the load to a move
    bool loadSynthesized = false;///< removed load that became one ALU op
    bool addrKnown = false;      ///< memory address generated at rename
    bool branchResolved = false; ///< branch outcome computed at rename
    bool branchTaken = false;    ///< resolved direction / indirect target
    uint64_t branchTarget = 0;   ///< resolved target when branchResolved
    bool mbcMisspec = false;     ///< stale MBC data detected (speculation)
    bool wasOptimized = false;   ///< some symbolic rewrite was applied

    // --- dataflow handed to the OoO core -------------------------------
    /** Scheduler class after rewriting; OpClass::None means the
     *  instruction skips the schedulers entirely. */
    isa::OpClass schedClass = isa::OpClass::None;
    unsigned execLatency = 1;
    std::array<SrcDep, 3> deps{};
    unsigned numDeps = 0;
    /** Stores: the data register, needed at commit (not for agen). */
    SrcDep storeDataDep{};
    PhysRegId destPreg = invalidPreg;
    bool destIsFp = false;
    bool destAliased = false;    ///< destPreg is a pre-existing register
    bool needsAgen = false;      ///< memory op still needs an agen unit
    uint64_t earlyValue = 0;     ///< result when earlyExecuted

    void
    addDep(PhysRegId reg, bool fp = false)
    {
        conopt_assert(numDeps < deps.size());
        deps[numDeps++] = SrcDep{reg, fp};
    }
};

/** Optimization-activity counters (inputs to Table 3). */
struct OptStats
{
    uint64_t instsRenamed = 0;
    uint64_t earlyExecuted = 0;
    uint64_t movesEliminated = 0;
    uint64_t branchesResolved = 0;
    uint64_t memOps = 0;
    uint64_t loads = 0;
    uint64_t addrKnown = 0;
    uint64_t loadsRemoved = 0;
    uint64_t loadsSynthesized = 0;
    uint64_t mbcMisspecs = 0;
    uint64_t symRewrites = 0;
    uint64_t depthBlocked = 0;
    uint64_t strengthReductions = 0;
    uint64_t branchInferences = 0;
};

/**
 * The rename + continuous-optimization unit.
 *
 * Drive it with beginBundle() once per rename cycle, then renameInst()
 * for each instruction renamed that cycle. The pipeline is responsible
 * for resource checks (ROB space, free physical registers) *before*
 * calling renameInst.
 *
 * Reference ownership: every physical register named in the returned
 * OptResult (destPreg, deps[], storeDataDep) carries one reference owned
 * by the caller's ROB entry, taken by the rename unit itself before any
 * table update could free the register. The caller must release those
 * references when the instruction retires.
 */
class RenameUnit
{
  public:
    RenameUnit(const OptimizerConfig &config, PhysRegInterface &int_prf,
               PhysRegInterface &fp_prf);
    ~RenameUnit();

    /**
     * Install the initial architectural state: every integer register
     * maps to a freshly allocated physical register holding @p int_init,
     * recorded as a known constant; same for fp.
     */
    void reset(const std::array<uint64_t, isa::numIntRegs> &int_init,
               const std::array<uint64_t, isa::numFpRegs> &fp_init);

    /**
     * Full re-initialization for a new simulation: adopt @p config
     * (feature switches, MBC geometry), zero all optimizer stats and
     * bundle state, then install the initial architectural state as
     * above. The caller must have wholesale-reset both register files
     * first — the RAT/MBC references from the previous run are
     * forgotten, not released, because they point into the old file.
     */
    void reset(const OptimizerConfig &config,
               const std::array<uint64_t, isa::numIntRegs> &int_init,
               const std::array<uint64_t, isa::numFpRegs> &fp_init);

    /** Start a new rename bundle (clears intra-bundle chaining state). */
    void beginBundle();

    /**
     * Rename and optimize one instruction.
     *
     * @param dyn the dynamic instruction with oracle values
     * @param opt_cycle the cycle at which the optimizer examines the
     *        instruction (rename cycle + extra optimizer stages); value
     *        feedback visible by this cycle is used
     */
    OptResult renameInst(const arch::DynInst &dyn, uint64_t opt_cycle);

    /**
     * Notification that a store with a rename-time-unknown address has
     * executed; invalidates stale MBC entries (speculative mode).
     */
    void onStoreExecuted(uint64_t addr, unsigned size, uint64_t seq);

    const OptimizerConfig &config() const { return config_; }
    const OptRat &rat() const { return rat_; }
    const FpRat &fpRat() const { return fpRat_; }
    MemoryBypassCache &mbc() { return mbc_; }
    const OptStats &stats() const { return stats_; }

  private:
    /** A source operand's view through the optimization tables. */
    struct View
    {
        SymbolicValue sym = SymbolicValue::constant(0);
        PhysRegId mapping = invalidPreg; ///< plain renamed register
        std::optional<uint64_t> known;   ///< resolved constant, if any
        bool viaTrivial = false;         ///< depth-limited trivial view
    };

    View readIntSource(isa::RegIndex reg, uint64_t opt_cycle);
    void noteDestWritten(isa::RegIndex reg, unsigned level);
    unsigned sourceChainLevel(isa::RegIndex reg) const;

    OptResult renameAlu(const arch::DynInst &dyn, uint64_t opt_cycle);
    OptResult renameMem(const arch::DynInst &dyn, uint64_t opt_cycle);
    OptResult renameLoad(const arch::DynInst &dyn, uint64_t opt_cycle,
                         OptResult r, const View &base,
                         const SymbolicValue &addr_sym);
    OptResult renameControl(const arch::DynInst &dyn, uint64_t opt_cycle);
    OptResult renameFp(const arch::DynInst &dyn, uint64_t opt_cycle);

    /** Allocate the integer destination and publish the RAT entry. */
    void writeIntDest(OptResult &r, isa::RegIndex rc,
                      const SymbolicValue &sym, uint64_t oracle);
    /** Allocate the integer destination with a trivial self-alias. */
    void writeIntDestTrivial(OptResult &r, isa::RegIndex rc,
                             uint64_t oracle);
    /** Allocate a floating-point destination register. */
    void writeFpDest(OptResult &r, isa::RegIndex rc, uint64_t oracle);
    /** Alias the integer destination to an existing register. */
    void aliasIntDest(OptResult &r, isa::RegIndex rc, PhysRegId alias,
                      const SymbolicValue &sym);
    /** Record a scheduling dependence, taking the ROB's reference. */
    void holdDep(OptResult &r, PhysRegId reg, bool fp = false);
    /** Record a store's data dependence, taking the ROB's reference. */
    void holdStoreData(OptResult &r, PhysRegId reg, bool fp);

    OptimizerConfig config_;
    PhysRegInterface &intPrf_;
    PhysRegInterface &fpPrf_;
    OptRat rat_;
    FpRat fpRat_;
    MemoryBypassCache mbc_;
    OptStats stats_;

    // Intra-bundle chaining state (reset by beginBundle).
    std::array<int, isa::numIntRegs> bundleLevel_;
    uint64_t bundleFirstSeq_ = 0;
    bool bundleActive_ = false;
    bool bundleHasSeq_ = false;
    unsigned chainedMemUsed_ = 0;
    unsigned maxSrcLevel_ = 0; ///< per-instruction scratch
};

} // namespace conopt::core

#endif // CONOPT_CORE_OPTIMIZER_HH
