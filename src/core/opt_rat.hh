/**
 * @file
 * The register alias table augmented with symbolic values (paper
 * sections 2 and 3.1): for every integer architectural register the table
 * holds both the current physical mapping and a symbolic expression
 * describing the register's value. A separate plain table maps
 * floating-point registers (the paper's CP/RA tables cover only integer
 * registers).
 *
 * Reference counting: each entry owns one reference on its mapping and,
 * when the symbolic value is an expression, one reference on its base
 * register. Entries release references when overwritten.
 */

#ifndef CONOPT_CORE_OPT_RAT_HH
#define CONOPT_CORE_OPT_RAT_HH

#include <array>
#include <cstdint>

#include "src/core/phys_reg.hh"
#include "src/core/symbolic.hh"
#include "src/isa/isa.hh"

namespace conopt::core {

/** Integer RAT with symbolic values. */
class OptRat
{
  public:
    struct Entry
    {
        PhysRegId mapping = invalidPreg;
        SymbolicValue sym = SymbolicValue::constant(0);
    };

    explicit OptRat(PhysRegInterface &prf);

    /**
     * Read the entry for @p reg. The zero register reads as a fixed
     * Const(0) entry with no mapping.
     */
    const Entry &read(isa::RegIndex reg) const;

    /**
     * Replace the entry for @p reg. Acquires references on the new
     * mapping and symbolic base, releases the old entry's references.
     * Must not be called for the zero register.
     */
    void write(isa::RegIndex reg, PhysRegId mapping,
               const SymbolicValue &sym);

    /**
     * Replace only the symbolic value (branch-direction inference,
     * paper section 2.1). Keeps the mapping.
     */
    void setSym(isa::RegIndex reg, const SymbolicValue &sym);

    /** Release all held references (end of simulation / reset). */
    void clear();

    /** Drop all entries WITHOUT releasing references: only valid after
     *  the register file was itself wholesale reset (the refs this
     *  table held no longer exist to release). */
    void forgetAll();

  private:
    void acquireSym(const SymbolicValue &sym);
    void releaseSym(const SymbolicValue &sym);

    PhysRegInterface &prf_;
    std::array<Entry, isa::numIntRegs> entries_;
    Entry zeroEntry_;
};

/** Plain mapping-only RAT for floating-point registers. */
class FpRat
{
  public:
    explicit FpRat(PhysRegInterface &prf);

    PhysRegId read(isa::RegIndex reg) const { return map_[reg]; }

    /** Replace the mapping; handles reference counting. */
    void write(isa::RegIndex reg, PhysRegId mapping);

    void clear();

    /** Drop all mappings without releasing references (see
     *  OptRat::forgetAll). */
    void forgetAll() { map_.fill(invalidPreg); }

  private:
    PhysRegInterface &prf_;
    std::array<PhysRegId, isa::numFpRegs> map_;
};

} // namespace conopt::core

#endif // CONOPT_CORE_OPT_RAT_HH
