#include "src/core/mbc.hh"

#include "src/util/bitops.hh"
#include "src/util/logging.hh"

namespace conopt::core {

MemoryBypassCache::MemoryBypassCache(const MbcConfig &config,
                                     PhysRegInterface &int_prf,
                                     PhysRegInterface &fp_prf)
    : intPrf_(int_prf), fpPrf_(fp_prf)
{
    reset(config);
}

void
MemoryBypassCache::reset(const MbcConfig &config)
{
    conopt_assert(config.assoc >= 1);
    conopt_assert(config.entries % config.assoc == 0);
    config_ = config;
    numSets_ = config.entries / config.assoc;
    conopt_assert(isPowerOfTwo(numSets_));
    entries_.assign(config.entries, Entry{});
    stamp_ = 0;
    stats_ = MbcStats{};
}

MemoryBypassCache::~MemoryBypassCache()
{
    flush();
}

void
MemoryBypassCache::releaseEntry(Entry &e)
{
    if (e.valid && e.sym.isExpr()) {
        if (e.sym.isFp)
            fpPrf_.release(e.sym.base);
        else
            intPrf_.release(e.sym.base);
    }
    e.valid = false;
}

const MemoryBypassCache::Entry *
MemoryBypassCache::lookup(uint64_t addr, unsigned size, bool fp)
{
    ++stats_.lookups;
    const uint64_t tag = addr >> 3;
    const uint8_t off = addr & 7;
    Entry *base = &entries_[setIndex(tag) * config_.assoc];
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == tag && e.offset == off && e.size == size &&
            e.sym.isFp == fp) {
            e.lruStamp = ++stamp_;
            ++stats_.hits;
            return &e;
        }
    }
    return nullptr;
}

void
MemoryBypassCache::insert(uint64_t addr, unsigned size,
                          const SymbolicValue &sym, bool from_load,
                          uint64_t writer_seq)
{
    const uint64_t tag = addr >> 3;
    const uint8_t off = addr & 7;

    // A store whose data can't be forwarded at this size still clobbers
    // whatever the MBC knew about the word.
    const bool forwardable = from_load || size == 8 || sym.isConst();

    Entry *base = &entries_[setIndex(tag) * config_.assoc];
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.tag == tag) {
            if (e.offset == off && e.size == size &&
                e.sym.isFp == sym.isFp && forwardable) {
                // Exact match: update in place.
                if (sym.isExpr()) {
                    if (sym.isFp)
                        fpPrf_.addRef(sym.base);
                    else
                        intPrf_.addRef(sym.base);
                }
                releaseEntry(e);
                e.valid = true;
                e.tag = tag;
                e.offset = off;
                e.size = uint8_t(size);
                e.fromLoad = from_load;
                e.sym = sym;
                e.writerSeq = writer_seq;
                e.lruStamp = ++stamp_;
                ++stats_.inserts;
                return;
            }
            // Same aligned word, different shape: stale, drop it.
            releaseEntry(e);
            ++stats_.invalidations;
        }
    }

    if (!forwardable)
        return;

    // Pick victim: first invalid way, else LRU.
    Entry *victim = &base[0];
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Entry &e = base[w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (victim->valid && e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    if (victim->valid)
        ++stats_.evictions;

    if (sym.isExpr()) {
        if (sym.isFp)
            fpPrf_.addRef(sym.base);
        else
            intPrf_.addRef(sym.base);
    }
    releaseEntry(*victim);
    victim->valid = true;
    victim->tag = tag;
    victim->offset = off;
    victim->size = uint8_t(size);
    victim->fromLoad = from_load;
    victim->sym = sym;
    victim->writerSeq = writer_seq;
    victim->lruStamp = ++stamp_;
    ++stats_.inserts;
}

void
MemoryBypassCache::invalidateOverlap(uint64_t addr, unsigned size)
{
    // Accesses are at most 8 bytes, so they overlap at most two aligned
    // words.
    for (uint64_t a = addr & ~uint64_t(7); a < addr + size; a += 8) {
        const uint64_t tag = a >> 3;
        Entry *base = &entries_[setIndex(tag) * config_.assoc];
        for (unsigned w = 0; w < config_.assoc; ++w) {
            Entry &e = base[w];
            if (e.valid && e.tag == tag) {
                const uint64_t e_lo = e.tag * 8 + e.offset;
                if (e_lo < addr + size && addr < e_lo + e.size) {
                    releaseEntry(e);
                    ++stats_.invalidations;
                }
            }
        }
    }
}

void
MemoryBypassCache::invalidateStale(uint64_t addr, unsigned size,
                                   uint64_t store_seq)
{
    for (uint64_t a = addr & ~uint64_t(7); a < addr + size; a += 8) {
        const uint64_t tag = a >> 3;
        Entry *base = &entries_[setIndex(tag) * config_.assoc];
        for (unsigned w = 0; w < config_.assoc; ++w) {
            Entry &e = base[w];
            if (e.valid && e.tag == tag && e.writerSeq < store_seq) {
                const uint64_t e_lo = e.tag * 8 + e.offset;
                if (e_lo < addr + size && addr < e_lo + e.size) {
                    releaseEntry(e);
                    ++stats_.invalidations;
                }
            }
        }
    }
}

void
MemoryBypassCache::invalidateEntry(const Entry *entry)
{
    for (Entry &e : entries_) {
        if (&e == entry) {
            releaseEntry(e);
            ++stats_.invalidations;
            return;
        }
    }
    conopt_panic("invalidateEntry: entry not part of this MBC");
}

void
MemoryBypassCache::flush()
{
    for (Entry &e : entries_) {
        if (e.valid)
            releaseEntry(e);
    }
    ++stats_.flushes;
}

} // namespace conopt::core
