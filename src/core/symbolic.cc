#include "src/core/symbolic.hh"

#include <cstdio>

namespace conopt::core {

std::string
SymbolicValue::toString() const
{
    char buf[64];
    if (kind == Kind::Const) {
        std::snprintf(buf, sizeof(buf), "#%lld",
                      static_cast<long long>(value));
        return buf;
    }
    const char *pfx = isFp ? "fp" : "p";
    if (scale == 0 && offset == 0) {
        std::snprintf(buf, sizeof(buf), "%s%u", pfx, unsigned(base));
    } else if (scale == 0) {
        std::snprintf(buf, sizeof(buf), "%s%u + %lld", pfx, unsigned(base),
                      static_cast<long long>(offset));
    } else {
        std::snprintf(buf, sizeof(buf), "(%s%u << %u) + %lld", pfx,
                      unsigned(base), unsigned(scale),
                      static_cast<long long>(offset));
    }
    return buf;
}

} // namespace conopt::core
