/**
 * @file
 * The Memory Bypass Cache (paper section 3.2): a small cache that maps
 * memory addresses to the symbolic representation of the data most
 * recently loaded from or stored to that address. Redundant load
 * elimination and store forwarding are implemented as MBC hits.
 *
 * Entries are 8-byte aligned; the tag match must also match the offset
 * within the aligned word and the access size. Each entry records whether
 * it came from a load (the symbolic value is exactly what an identical
 * load would return) or a store (the symbolic value is the raw stored
 * register, so narrower loads must apply their own truncation/extension;
 * we only keep sub-8-byte store entries when the data is a known
 * constant, so that transformation stays computable).
 */

#ifndef CONOPT_CORE_MBC_HH
#define CONOPT_CORE_MBC_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/phys_reg.hh"
#include "src/core/symbolic.hh"

namespace conopt::core {

/** Geometry of the Memory Bypass Cache. */
struct MbcConfig
{
    unsigned entries = 128;
    unsigned assoc = 4;
};

/** Counters exposed for the evaluation harness. */
struct MbcStats
{
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    uint64_t flushes = 0;
};

/** The MBC proper. */
class MemoryBypassCache
{
  public:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;       ///< addr >> 3 (8-byte aligned)
        uint8_t offset = 0;     ///< addr & 7
        uint8_t size = 0;       ///< access size in bytes
        bool fromLoad = false;  ///< vs. from a store
        SymbolicValue sym;      ///< the forwarded data
        uint64_t writerSeq = 0; ///< dynamic seq of the writing instruction
        uint64_t lruStamp = 0;
    };

    /**
     * @param config geometry
     * @param int_prf reference-count holder for integer bases
     * @param fp_prf reference-count holder for fp aliases
     */
    MemoryBypassCache(const MbcConfig &config, PhysRegInterface &int_prf,
                      PhysRegInterface &fp_prf);
    ~MemoryBypassCache();

    /**
     * Re-initialize for a new simulation under @p config: geometry
     * re-derived, LRU clock and counters zeroed, as freshly
     * constructed. Entries are dropped WITHOUT releasing their
     * register references — only valid after the owning register
     * files were themselves wholesale reset (use flush() to drop
     * entries against a live register file).
     */
    void reset(const MbcConfig &config);

    /**
     * Look up a load at @p addr/@p size. Returns the matching entry (and
     * touches LRU) or nullptr. @p fp selects fp-alias entries (LDT) vs.
     * integer entries.
     */
    const Entry *lookup(uint64_t addr, unsigned size, bool fp);

    /**
     * Record the data at @p addr (store forwarding source, or a load's
     * destination for redundant load elimination).
     *
     * Overlapping entries with a different offset/size are invalidated.
     * Sub-8-byte store data that is not a known constant cannot be
     * forwarded; such stores only invalidate.
     */
    void insert(uint64_t addr, unsigned size, const SymbolicValue &sym,
                bool from_load, uint64_t writer_seq);

    /** Drop every entry overlapping [addr, addr+size). */
    void invalidateOverlap(uint64_t addr, unsigned size);

    /**
     * Invalidate entries overlapping the address whose writer is older
     * than @p store_seq. Called when a store with an unknown rename-time
     * address finally executes (speculative mode, paper section 3.2).
     */
    void invalidateStale(uint64_t addr, unsigned size, uint64_t store_seq);

    /** Invalidate a specific entry (after detected misspeculation). */
    void invalidateEntry(const Entry *entry);

    /** Drop everything (flush-on-unknown-store mode). */
    void flush();

    const MbcStats &stats() const { return stats_; }

  private:
    size_t setIndex(uint64_t tag) const { return tag & (numSets_ - 1); }
    void releaseEntry(Entry &e);

    MbcConfig config_;
    PhysRegInterface &intPrf_;
    PhysRegInterface &fpPrf_;
    size_t numSets_;
    std::vector<Entry> entries_;
    uint64_t stamp_ = 0;
    MbcStats stats_;
};

} // namespace conopt::core

#endif // CONOPT_CORE_MBC_HH
