/**
 * @file
 * The symbolic value representation at the heart of continuous
 * optimization (paper section 3.1).
 *
 * Each integer architectural register's RAT entry carries a symbolic
 * expression of the form
 *
 *     (physreg << scale) + offset
 *
 * where scale is a 2-bit left-shift amount (0..3) and offset is a full
 * 64-bit two's-complement immediate. A known constant is encoded by
 * pointing the register field at the hardwired zero register and placing
 * the constant in the base-register-value field; here we model that with
 * an explicit Const kind.
 */

#ifndef CONOPT_CORE_SYMBOLIC_HH
#define CONOPT_CORE_SYMBOLIC_HH

#include <cstdint>
#include <optional>
#include <string>

#include "src/core/phys_reg.hh"

namespace conopt::core {

/** Hardware limit of the 2-bit scale field. */
constexpr unsigned maxSymScale = 3;

/** A symbolic register value: constant, or (base << scale) + offset. */
struct SymbolicValue
{
    enum class Kind : uint8_t
    {
        Expr,  ///< (base << scale) + offset
        Const, ///< a fully known 64-bit value
    };

    Kind kind = Kind::Const;
    PhysRegId base = invalidPreg; ///< Expr: base physical register
    uint8_t scale = 0;            ///< Expr: 2-bit left shift (0..3)
    uint64_t offset = 0;          ///< Expr: wrapping 64-bit offset
    uint64_t value = 0;           ///< Const: the value

    /** Whether the expression holds a floating-point register alias.
     *  FP values are never folded; only pure aliases are tracked, which
     *  is what store forwarding of fp data needs. */
    bool isFp = false;

    static SymbolicValue
    constant(uint64_t v)
    {
        SymbolicValue s;
        s.kind = Kind::Const;
        s.value = v;
        return s;
    }

    static SymbolicValue
    expr(PhysRegId base, uint8_t scale = 0, uint64_t offset = 0,
         bool is_fp = false)
    {
        SymbolicValue s;
        s.kind = Kind::Expr;
        s.base = base;
        s.scale = scale;
        s.offset = offset;
        s.isFp = is_fp;
        return s;
    }

    bool isConst() const { return kind == Kind::Const; }
    bool isExpr() const { return kind == Kind::Expr; }

    /** Expr with scale 0 and offset 0: a plain register alias. */
    bool
    isPureAlias() const
    {
        return kind == Kind::Expr && scale == 0 && offset == 0;
    }

    /** Evaluate the expression given the base register's value. */
    uint64_t
    evaluate(uint64_t base_value) const
    {
        if (kind == Kind::Const)
            return value;
        return (base_value << scale) + offset;
    }

    /**
     * Add a constant: CP/RA folds `x + k` into the offset field.
     * Always representable.
     */
    SymbolicValue
    plusConst(uint64_t k) const
    {
        SymbolicValue s = *this;
        if (s.kind == Kind::Const)
            s.value += k;
        else
            s.offset += k;
        return s;
    }

    /**
     * Left-shift by a constant @p k: `(b<<s)+o << k = (b<<(s+k))+(o<<k)`.
     * Representable only while the combined scale fits the 2-bit field.
     */
    std::optional<SymbolicValue>
    shiftedLeft(unsigned k) const
    {
        if (kind == Kind::Const)
            return constant(value << (k & 63));
        if (isFp)
            return std::nullopt;
        if (scale + k > maxSymScale)
            return std::nullopt;
        SymbolicValue s = *this;
        s.scale = uint8_t(scale + k);
        s.offset = offset << k;
        return s;
    }

    /**
     * Resolve to a known constant if possible: Const directly, or Expr
     * whose base value has been fed back by @p cycle (paper section 2.2,
     * value feedback).
     */
    std::optional<uint64_t>
    resolve(const PhysRegInterface &prf, uint64_t cycle) const
    {
        if (kind == Kind::Const)
            return value;
        if (isFp)
            return std::nullopt;
        uint64_t base_value;
        if (prf.valueKnown(base, cycle, base_value))
            return evaluate(base_value);
        return std::nullopt;
    }

    bool
    operator==(const SymbolicValue &o) const
    {
        if (kind != o.kind)
            return false;
        if (kind == Kind::Const)
            return value == o.value;
        return base == o.base && scale == o.scale && offset == o.offset &&
               isFp == o.isFp;
    }

    /** Debug rendering, e.g. "(p35 << 1) + 8" or "#42". */
    std::string toString() const;
};

} // namespace conopt::core

#endif // CONOPT_CORE_SYMBOLIC_HH
