#include "src/core/opt_rat.hh"

#include "src/util/logging.hh"

namespace conopt::core {

OptRat::OptRat(PhysRegInterface &prf) : prf_(prf)
{
    zeroEntry_.mapping = invalidPreg;
    zeroEntry_.sym = SymbolicValue::constant(0);
}

const OptRat::Entry &
OptRat::read(isa::RegIndex reg) const
{
    if (reg == isa::zeroReg)
        return zeroEntry_;
    return entries_[reg];
}

void
OptRat::acquireSym(const SymbolicValue &sym)
{
    if (sym.isExpr() && !sym.isFp)
        prf_.addRef(sym.base);
}

void
OptRat::releaseSym(const SymbolicValue &sym)
{
    if (sym.isExpr() && !sym.isFp)
        prf_.release(sym.base);
}

void
OptRat::write(isa::RegIndex reg, PhysRegId mapping,
              const SymbolicValue &sym)
{
    conopt_assert(reg != isa::zeroReg);
    conopt_assert(!sym.isFp);
    Entry &e = entries_[reg];

    // Acquire before release so self-referential updates stay live.
    if (mapping != invalidPreg)
        prf_.addRef(mapping);
    acquireSym(sym);

    if (e.mapping != invalidPreg)
        prf_.release(e.mapping);
    releaseSym(e.sym);

    e.mapping = mapping;
    e.sym = sym;
}

void
OptRat::setSym(isa::RegIndex reg, const SymbolicValue &sym)
{
    if (reg == isa::zeroReg)
        return;
    Entry &e = entries_[reg];
    acquireSym(sym);
    releaseSym(e.sym);
    e.sym = sym;
}

void
OptRat::clear()
{
    for (auto &e : entries_) {
        if (e.mapping != invalidPreg)
            prf_.release(e.mapping);
        releaseSym(e.sym);
        e.mapping = invalidPreg;
        e.sym = SymbolicValue::constant(0);
    }
}

void
OptRat::forgetAll()
{
    for (auto &e : entries_) {
        e.mapping = invalidPreg;
        e.sym = SymbolicValue::constant(0);
    }
}

FpRat::FpRat(PhysRegInterface &prf) : prf_(prf)
{
    map_.fill(invalidPreg);
}

void
FpRat::write(isa::RegIndex reg, PhysRegId mapping)
{
    if (mapping != invalidPreg)
        prf_.addRef(mapping);
    if (map_[reg] != invalidPreg)
        prf_.release(map_[reg]);
    map_[reg] = mapping;
}

void
FpRat::clear()
{
    for (auto &m : map_) {
        if (m != invalidPreg)
            prf_.release(m);
        m = invalidPreg;
    }
}

} // namespace conopt::core
