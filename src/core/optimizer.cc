#include "src/core/optimizer.hh"

#include <algorithm>

#include "src/isa/exec.hh"
#include "src/util/bitops.hh"
#include "src/util/logging.hh"

namespace conopt::core {

using isa::OpClass;
using isa::Opcode;

namespace {

/** Bundle level assigned to MBC-forwarded destinations: RLE/SF results
 *  are produced in the second optimizer step and are never visible to
 *  instructions in the same rename bundle (paper section 3.2). */
constexpr unsigned mbcChainLevel = 99;

/** Strict expression-and-value check (paper section 4.2). */
void
checkValue(uint64_t computed, uint64_t oracle, const char *what,
           const arch::DynInst &dyn)
{
    if (computed != oracle) {
        conopt_panic("strict check failed (%s) at seq %llu pc 0x%llx: "
                     "optimizer computed 0x%llx, oracle 0x%llx",
                     what, static_cast<unsigned long long>(dyn.seq),
                     static_cast<unsigned long long>(dyn.pc),
                     static_cast<unsigned long long>(computed),
                     static_cast<unsigned long long>(oracle));
    }
}

} // namespace

RenameUnit::RenameUnit(const OptimizerConfig &config,
                       PhysRegInterface &int_prf, PhysRegInterface &fp_prf)
    : config_(config),
      intPrf_(int_prf),
      fpPrf_(fp_prf),
      rat_(int_prf),
      fpRat_(fp_prf),
      mbc_(config.mbc, int_prf, fp_prf)
{
    bundleLevel_.fill(0);
}

RenameUnit::~RenameUnit()
{
    rat_.clear();
    fpRat_.clear();
    mbc_.flush();
}

void
RenameUnit::reset(const OptimizerConfig &config,
                  const std::array<uint64_t, isa::numIntRegs> &int_init,
                  const std::array<uint64_t, isa::numFpRegs> &fp_init)
{
    config_ = config;
    // The previous run's table references point into register files
    // the caller has already wholesale-reset; forget them. The MBC
    // reset likewise drops entries without releasing.
    rat_.forgetAll();
    fpRat_.forgetAll();
    mbc_.reset(config.mbc);
    stats_ = OptStats{};
    bundleLevel_.fill(0);
    bundleFirstSeq_ = 0;
    bundleActive_ = false;
    bundleHasSeq_ = false;
    chainedMemUsed_ = 0;
    maxSrcLevel_ = 0;
    reset(int_init, fp_init);
}

void
RenameUnit::reset(const std::array<uint64_t, isa::numIntRegs> &int_init,
                  const std::array<uint64_t, isa::numFpRegs> &fp_init)
{
    // Each architectural register starts mapped to a fresh physical
    // register whose value is a known constant (the initial state).
    for (isa::RegIndex r = 0; r < isa::numIntRegs; ++r) {
        if (r == isa::zeroReg)
            continue;
        const PhysRegId p = intPrf_.alloc();
        conopt_assert(p != invalidPreg);
        intPrf_.setOracle(p, int_init[r]);
        const SymbolicValue sym = (config_.enabled && config_.enableCpRa)
                                      ? SymbolicValue::constant(int_init[r])
                                      : SymbolicValue::expr(p);
        rat_.write(r, p, sym);
        // The table's refs were taken by write(); drop the alloc ref.
        intPrf_.release(p);
    }
    for (isa::RegIndex r = 0; r < isa::numFpRegs; ++r) {
        const PhysRegId p = fpPrf_.alloc();
        conopt_assert(p != invalidPreg);
        fpPrf_.setOracle(p, fp_init[r]);
        fpRat_.write(r, p);
        fpPrf_.release(p);
    }
}

void
RenameUnit::beginBundle()
{
    bundleLevel_.fill(0);
    bundleActive_ = true;
    bundleHasSeq_ = false;
    chainedMemUsed_ = 0;
}

unsigned
RenameUnit::sourceChainLevel(isa::RegIndex reg) const
{
    if (reg == isa::zeroReg)
        return 0;
    return unsigned(bundleLevel_[reg]);
}

void
RenameUnit::noteDestWritten(isa::RegIndex reg, unsigned level)
{
    if (reg != isa::zeroReg)
        bundleLevel_[reg] = int(level);
}

RenameUnit::View
RenameUnit::readIntSource(isa::RegIndex reg, uint64_t opt_cycle)
{
    View v;
    const OptRat::Entry &e = rat_.read(reg);
    v.mapping = e.mapping;

    if (reg == isa::zeroReg) {
        v.sym = SymbolicValue::constant(0);
        v.known = 0;
        return v;
    }

    if (!config_.enabled) {
        // Baseline machine: plain rename, no symbolic information.
        v.sym = SymbolicValue::expr(e.mapping);
        return v;
    }

    const unsigned lvl = sourceChainLevel(reg);
    if (lvl > config_.addChainDepth) {
        // Depth-limited: this bundle already spent its serial-addition
        // budget producing this register; fall back to the mapping.
        v.sym = SymbolicValue::expr(e.mapping);
        v.viaTrivial = true;
        ++stats_.depthBlocked;
    } else {
        v.sym = e.sym;
        maxSrcLevel_ = std::max(maxSrcLevel_, lvl);
    }

    if (v.sym.isConst())
        v.known = v.sym.value;
    else if (config_.enableValueFeedback)
        v.known = v.sym.resolve(intPrf_, opt_cycle);
    return v;
}

void
RenameUnit::writeIntDest(OptResult &r, isa::RegIndex rc,
                         const SymbolicValue &sym, uint64_t oracle)
{
    if (rc == isa::zeroReg)
        return;
    const PhysRegId p = intPrf_.alloc();
    conopt_assert(p != invalidPreg);
    intPrf_.setOracle(p, oracle);
    r.destPreg = p;
    r.destIsFp = false;
    const bool keep_sym = config_.enabled && config_.enableCpRa;
    rat_.write(rc, p, keep_sym ? sym : SymbolicValue::expr(p));
    // The alloc reference is owned by the caller (the pipeline's ROB
    // entry); the RAT took its own references in write().
}

void
RenameUnit::writeIntDestTrivial(OptResult &r, isa::RegIndex rc,
                                uint64_t oracle)
{
    if (rc == isa::zeroReg)
        return;
    const PhysRegId p = intPrf_.alloc();
    conopt_assert(p != invalidPreg);
    intPrf_.setOracle(p, oracle);
    r.destPreg = p;
    r.destIsFp = false;
    rat_.write(rc, p, SymbolicValue::expr(p));
}

void
RenameUnit::writeFpDest(OptResult &r, isa::RegIndex rc, uint64_t oracle)
{
    const PhysRegId p = fpPrf_.alloc();
    conopt_assert(p != invalidPreg);
    fpPrf_.setOracle(p, oracle);
    r.destPreg = p;
    r.destIsFp = true;
    fpRat_.write(rc, p);
}

void
RenameUnit::aliasIntDest(OptResult &r, isa::RegIndex rc, PhysRegId alias,
                         const SymbolicValue &sym)
{
    conopt_assert(rc != isa::zeroReg);
    intPrf_.addRef(alias); // the ROB entry's hold on the aliased dest
    r.destPreg = alias;
    r.destIsFp = false;
    r.destAliased = true;
    rat_.write(rc, alias, sym);
}

void
RenameUnit::holdDep(OptResult &r, PhysRegId reg, bool fp)
{
    (fp ? fpPrf_ : intPrf_).addRef(reg);
    r.addDep(reg, fp);
}

void
RenameUnit::holdStoreData(OptResult &r, PhysRegId reg, bool fp)
{
    (fp ? fpPrf_ : intPrf_).addRef(reg);
    r.storeDataDep = SrcDep{reg, fp};
}

OptResult
RenameUnit::renameInst(const arch::DynInst &dyn, uint64_t opt_cycle)
{
    conopt_assert(bundleActive_);
    if (!bundleHasSeq_) {
        bundleFirstSeq_ = dyn.seq;
        bundleHasSeq_ = true;
    }
    maxSrcLevel_ = 0;
    ++stats_.instsRenamed;

    const auto &info = isa::opInfo(dyn.inst.op);
    OptResult r;
    switch (info.cls) {
      case OpClass::IntSimple:
      case OpClass::IntComplex:
        r = renameAlu(dyn, opt_cycle);
        break;
      case OpClass::Fp:
        r = renameFp(dyn, opt_cycle);
        break;
      case OpClass::Mem:
        r = renameMem(dyn, opt_cycle);
        break;
      case OpClass::Control:
        r = renameControl(dyn, opt_cycle);
        break;
      case OpClass::None:
        r.schedClass = OpClass::None;
        break;
    }

    if (r.earlyExecuted)
        ++stats_.earlyExecuted;
    return r;
}

OptResult
RenameUnit::renameAlu(const arch::DynInst &dyn, uint64_t opt_cycle)
{
    const isa::Instruction &inst = dyn.inst;
    const auto &info = isa::opInfo(inst.op);
    OptResult r;
    r.schedClass = info.cls;
    r.execLatency = info.latency;

    // Operand views. "a" is the ra operand, "b" is rb or the immediate.
    View va, vb;
    std::optional<uint64_t> a_known, b_known;
    bool a_is_reg = info.readsRa;
    bool b_is_reg = info.readsRb && !inst.useImm;
    if (a_is_reg) {
        va = readIntSource(inst.ra, opt_cycle);
        a_known = va.known;
    }
    if (b_is_reg) {
        vb = readIntSource(inst.rb, opt_cycle);
        b_known = vb.known;
    } else if (inst.useImm) {
        b_known = static_cast<uint64_t>(inst.imm);
    }

    const bool opt_on = config_.enabled;
    const bool cpra_on = opt_on && config_.enableCpRa;

    // Strength reduction: multiply by a power of two becomes a shift,
    // which the optimizer's simple ALUs can both fold and execute.
    Opcode eff_op = inst.op;
    if (opt_on && config_.enableStrengthReduction &&
        inst.op == Opcode::MULQ) {
        if (b_known && isPowerOfTwo(*b_known)) {
            eff_op = Opcode::SLL;
            b_known = uint64_t(log2Exact(*b_known));
            b_is_reg = false;
            ++stats_.strengthReductions;
        } else if (a_known && isPowerOfTwo(*a_known) && b_is_reg) {
            // Commute: (2^k) * x == x << k.
            const uint64_t k = log2Exact(*a_known);
            eff_op = Opcode::SLL;
            va = vb;
            a_known = b_known;
            a_is_reg = true;
            b_known = k;
            b_is_reg = false;
            ++stats_.strengthReductions;
        }
    }

    // Early execution: every integer input known and the (effective) op
    // simple (paper footnote 1: one-cycle instructions only).
    const bool a_ready = !a_is_reg || a_known.has_value();
    const bool b_ready = !b_is_reg && (b_known.has_value() || !info.readsRb);
    const bool b_reg_ready = b_is_reg && b_known.has_value();
    if (opt_on && isa::isSimpleOp(eff_op) && a_ready &&
        (b_ready || b_reg_ready)) {
        const uint64_t a_val = a_is_reg ? *a_known : 0;
        const uint64_t b_val = b_known ? *b_known : 0;
        const uint64_t value = isa::aluCompute(eff_op, a_val, b_val);
        checkValue(value, dyn.result, "early-exec ALU", dyn);
        r.earlyExecuted = true;
        r.wasOptimized = true;
        r.earlyValue = value;
        r.schedClass = OpClass::None;
        if (info.writesRc)
            writeIntDest(r, inst.rc, SymbolicValue::constant(value),
                         dyn.result);
        noteDestWritten(inst.rc, maxSrcLevel_ + 1);
        return r;
    }

    // Symbolic derivation (CP/RA, paper section 3.1).
    std::optional<SymbolicValue> derived;
    if (cpra_on) {
        switch (eff_op) {
          case Opcode::ADDQ:
          case Opcode::LDA:
            if (a_is_reg && !a_known && va.sym.isExpr() && b_known)
                derived = va.sym.plusConst(*b_known);
            else if (b_is_reg && !b_known && vb.sym.isExpr() && a_known)
                derived = vb.sym.plusConst(*a_known);
            break;
          case Opcode::SUBQ:
            if (a_is_reg && !a_known && va.sym.isExpr() && b_known)
                derived = va.sym.plusConst(uint64_t(0) - *b_known);
            break;
          case Opcode::SLL:
            if (a_is_reg && !a_known && va.sym.isExpr() && b_known &&
                *b_known <= 63) {
                derived = va.sym.shiftedLeft(unsigned(*b_known));
            }
            break;
          default:
            break;
        }
    }

    if (derived && info.writesRc) {
        ++stats_.symRewrites;
        r.wasOptimized = true;
        const SymbolicValue &s = *derived;
        checkValue(s.evaluate(intPrf_.oracleValue(s.base)), dyn.result,
                   "CP/RA rewrite", dyn);
        if (config_.enableMoveElim && s.isPureAlias() &&
            inst.rc != isa::zeroReg) {
            // Pure register move: no execution at all; the destination
            // is unified with the source physical register ([15]).
            aliasIntDest(r, inst.rc, s.base, s);
            r.earlyExecuted = true;
            r.moveEliminated = true;
            r.schedClass = OpClass::None;
            ++stats_.movesEliminated;
        } else {
            // Executes as a single collapsed op on the (earlier) base,
            // shortening the dependence chain.
            writeIntDest(r, inst.rc, s, dyn.result);
            r.schedClass = OpClass::IntSimple;
            r.execLatency = 1;
            holdDep(r, s.base);
        }
        noteDestWritten(inst.rc, maxSrcLevel_ + 1);
        return r;
    }

    // Plain rename. Constant propagation may still have removed source
    // dependences (a known operand is carried as an immediate).
    if (a_is_reg && !a_known)
        holdDep(r, cpra_on && va.sym.isExpr() ? va.sym.base : va.mapping);
    if (b_is_reg && !b_known)
        holdDep(r, cpra_on && vb.sym.isExpr() ? vb.sym.base : vb.mapping);
    if ((a_is_reg && a_known) || (b_is_reg && b_known))
        r.wasOptimized = opt_on;

    // A strength-reduced multiply that couldn't fold still executes as a
    // one-cycle shift instead of a multi-cycle multiply.
    if (eff_op != inst.op) {
        r.schedClass = OpClass::IntSimple;
        r.execLatency = 1;
    }

    if (info.writesRc)
        writeIntDestTrivial(r, inst.rc, dyn.result);
    noteDestWritten(inst.rc, 0);
    return r;
}

OptResult
RenameUnit::renameControl(const arch::DynInst &dyn, uint64_t opt_cycle)
{
    const isa::Instruction &inst = dyn.inst;
    const auto &info = isa::opInfo(inst.op);
    OptResult r;
    r.schedClass = OpClass::IntSimple; // branches resolve on simple ALUs
    r.execLatency = 1;

    const bool opt_on = config_.enabled;
    const bool cpra_on = opt_on && config_.enableCpRa;

    if (info.raIsFp) {
        // FBEQ/FBNE: fp condition, not tracked by the optimizer tables.
        r.schedClass = OpClass::Fp;
        r.execLatency = 4;
        holdDep(r, fpRat_.read(inst.ra), true);
        return r;
    }

    // The engaged flag and payload of va.known are read through local
    // copies hoisted right after the assignment: GCC 12 at -O2 (and
    // more so under -fsanitize=thread) cannot prove the optional
    // payload is written before engaged-guarded reads further down the
    // function and would warn -Wmaybe-uninitialized.
    View va;
    bool va_known = false;
    uint64_t va_value = 0;
    if (info.readsRa) {
        va = readIntSource(inst.ra, opt_cycle);
        if (va.known.has_value()) {
            va_known = true;
            va_value = *va.known;
        }
    }

    const bool is_direct = !info.isIndirect;
    bool resolved = false;
    if (opt_on) {
        if (info.isCondBranch) {
            if (va_known) {
                const bool taken =
                    isa::branchCondTaken(inst.op, va_value);
                checkValue(taken, dyn.taken, "early branch direction",
                           dyn);
                resolved = true;
                r.branchTaken = taken;
                r.branchTarget = dyn.nextPc;
            }
        } else if (is_direct) {
            // BR/BSR: direction and target are static.
            resolved = true;
            r.branchTaken = true;
            r.branchTarget = static_cast<uint64_t>(inst.imm);
        } else if (va_known) {
            // JMP/JSR/RET with a known register target.
            checkValue(va_value, dyn.nextPc, "early indirect target",
                       dyn);
            resolved = true;
            r.branchTaken = true;
            r.branchTarget = va_value;
        }
    }

    if (resolved) {
        r.branchResolved = true;
        r.earlyExecuted = true;
        r.wasOptimized = true;
        r.schedClass = OpClass::None;
        r.earlyValue = dyn.pc + isa::instBytes; // link value if any
        ++stats_.branchesResolved;
    } else if (info.readsRa) {
        holdDep(r, cpra_on && va.sym.isExpr() ? va.sym.base : va.mapping);
        if (cpra_on && va.sym.isExpr() && va.sym.base != va.mapping)
            r.wasOptimized = true;
    }

    // Calls write the return address, a PC-derived constant the
    // optimizer always knows. (Written after the dependence was held so
    // that a call whose target register is also the link register cannot
    // free its own source.)
    if (info.writesRc) {
        const uint64_t link = dyn.pc + isa::instBytes;
        if (opt_on)
            writeIntDest(r, inst.rc, SymbolicValue::constant(link), link);
        else
            writeIntDestTrivial(r, inst.rc, link);
        noteDestWritten(inst.rc, maxSrcLevel_ + 1);
    }

    // Branch-direction value inference (paper section 2.1): a taken beq
    // (or a fall-through bne) proves the register is zero. Safe because
    // wrong-path state is discarded on misprediction recovery.
    if (cpra_on && config_.enableBranchInference && info.isCondBranch &&
        inst.ra != isa::zeroReg) {
        const bool proves_zero = (inst.op == Opcode::BEQ && dyn.taken) ||
                                 (inst.op == Opcode::BNE && !dyn.taken);
        if (proves_zero) {
            rat_.setSym(inst.ra, SymbolicValue::constant(0));
            noteDestWritten(inst.ra, maxSrcLevel_ + 1);
            ++stats_.branchInferences;
        }
    }

    return r;
}

OptResult
RenameUnit::renameMem(const arch::DynInst &dyn, uint64_t opt_cycle)
{
    const isa::Instruction &inst = dyn.inst;
    const auto &info = isa::opInfo(inst.op);
    OptResult r;
    r.schedClass = OpClass::Mem;
    r.execLatency = 1;
    r.needsAgen = true;

    const bool opt_on = config_.enabled;
    const bool cpra_on = opt_on && config_.enableCpRa;
    const bool rlesf_on = opt_on && config_.enableRleSf;

    ++stats_.memOps;
    if (info.isLoad)
        ++stats_.loads;

    // --- address generation (CP/RA on the base register) ---------------
    View base = readIntSource(inst.ra, opt_cycle);
    const SymbolicValue addr_sym =
        base.sym.plusConst(static_cast<uint64_t>(inst.imm));
    if (opt_on && base.known) {
        const uint64_t addr = *base.known + static_cast<uint64_t>(inst.imm);
        checkValue(addr, dyn.memAddr, "rename-time address", dyn);
        r.addrKnown = true;
        r.needsAgen = false;
        ++stats_.addrKnown;
    }

    if (info.isLoad)
        return renameLoad(dyn, opt_cycle, r, base, addr_sym);

    // --- store ----------------------------------------------------------
    if (!r.addrKnown)
        holdDep(r, cpra_on && addr_sym.isExpr() ? addr_sym.base
                                                : base.mapping);

    // Data dependence and the symbolic data recorded for forwarding. The
    // data register is read at commit, not by the agen, so it is not a
    // scheduling dependence.
    SymbolicValue data_sym = SymbolicValue::constant(0);
    if (info.rcIsFp) {
        const PhysRegId fp_map = fpRat_.read(inst.rc);
        data_sym = SymbolicValue::expr(fp_map, 0, 0, true);
        holdStoreData(r, fp_map, true);
    } else {
        View vc = readIntSource(inst.rc, opt_cycle);
        data_sym = cpra_on ? vc.sym : SymbolicValue::expr(vc.mapping);
        if (vc.known && opt_on) {
            // Known data: the store needs no data register read.
            r.wasOptimized = true;
            if (cpra_on)
                data_sym = SymbolicValue::constant(*vc.known);
        } else {
            holdStoreData(r, vc.mapping, false);
        }
    }

    // --- store forwarding bookkeeping (MBC update) ----------------------
    if (rlesf_on) {
        if (r.addrKnown) {
            mbc_.insert(dyn.memAddr, info.memSize, data_sym,
                        /*from_load=*/false, dyn.seq);
        } else if (config_.mbcFlushOnUnknownStore) {
            mbc_.flush();
        }
        // Speculative mode: stale entries are invalidated when the store
        // executes (onStoreExecuted); wrong forwards are caught by the
        // strict check and handled as misspeculation.
    }
    return r;
}

OptResult
RenameUnit::renameLoad(const arch::DynInst &dyn, uint64_t opt_cycle,
                       OptResult r, const View &base,
                       const SymbolicValue &addr_sym)
{
    const isa::Instruction &inst = dyn.inst;
    const auto &info = isa::opInfo(inst.op);
    const bool cpra_on = config_.enabled && config_.enableCpRa;
    const bool rlesf_on = config_.enabled && config_.enableRleSf;
    const bool fp_dest = info.rcIsFp;

    // --- RLE / store forwarding ----------------------------------------
    if (r.addrKnown && rlesf_on) {
        const MemoryBypassCache::Entry *e =
            mbc_.lookup(dyn.memAddr, info.memSize, fp_dest);

        // Intra-bundle MBC forwarding is disallowed (optionally one per
        // bundle, fig. 10's "1 mem").
        if (e && e->writerSeq >= bundleFirstSeq_) {
            if (config_.allowChainedMem && chainedMemUsed_ == 0)
                ++chainedMemUsed_;
            else
                e = nullptr;
        }

        if (e) {
            // Forwarded data, with the load's size transformation when
            // the entry came from a narrower store (const-only).
            SymbolicValue fsym = e->sym;
            if (!e->fromLoad && info.memSize < 8) {
                conopt_assert(fsym.isConst());
                uint64_t v = fsym.value;
                if (inst.op == Opcode::LDL)
                    v = static_cast<uint64_t>(sext64(v, 32));
                else if (inst.op == Opcode::LDBU)
                    v &= 0xFF;
                else if (inst.op == Opcode::LDQ)
                    conopt_panic("size-4/1 MBC entry matched an ldq");
                fsym = SymbolicValue::constant(v);
            }

            const uint64_t expected =
                fsym.isConst()
                    ? fsym.value
                    : fsym.evaluate(fsym.isFp
                                        ? fpPrf_.oracleValue(fsym.base)
                                        : intPrf_.oracleValue(fsym.base));
            if (expected != dyn.result) {
                // Stale entry: an unknown-address store intervened and
                // we speculated through it (paper section 3.2).
                r.mbcMisspec = true;
                ++stats_.mbcMisspecs;
                mbc_.invalidateEntry(e);
            } else {
                r.loadRemoved = true;
                r.wasOptimized = true;
                ++stats_.loadsRemoved;

                std::optional<uint64_t> v;
                if (fsym.isConst())
                    v = fsym.value;
                else if (config_.enableValueFeedback && !fsym.isFp)
                    v = fsym.resolve(intPrf_, opt_cycle);

                if (v) {
                    // Fully known value: the load executes in the
                    // optimizer (its result is a constant).
                    r.earlyExecuted = true;
                    r.earlyValue = *v;
                    r.schedClass = OpClass::None;
                    r.needsAgen = false;
                    if (fp_dest)
                        writeFpDest(r, inst.rc, dyn.result);
                    else if (inst.rc != isa::zeroReg)
                        writeIntDest(r, inst.rc,
                                     SymbolicValue::constant(*v),
                                     dyn.result);
                    noteDestWritten(fp_dest ? isa::zeroReg : inst.rc,
                                    mbcChainLevel);
                } else if (fsym.isPureAlias()) {
                    // The classic converted-to-move case, optimized away
                    // by unifying the destination with the source.
                    r.earlyExecuted = true;
                    r.schedClass = OpClass::None;
                    r.needsAgen = false;
                    if (fp_dest) {
                        fpPrf_.addRef(fsym.base); // ROB hold
                        r.destPreg = fsym.base;
                        r.destIsFp = true;
                        r.destAliased = true;
                        fpRat_.write(inst.rc, fsym.base);
                    } else if (inst.rc != isa::zeroReg) {
                        aliasIntDest(r, inst.rc, fsym.base, fsym);
                        noteDestWritten(inst.rc, mbcChainLevel);
                    }
                } else {
                    // Symbolic (base << scale) + offset data: the load
                    // becomes a single ALU op on the base register; no
                    // cache access, no agen.
                    conopt_assert(!fsym.isFp);
                    r.loadSynthesized = true;
                    ++stats_.loadsSynthesized;
                    r.schedClass = OpClass::IntSimple;
                    r.execLatency = 1;
                    r.needsAgen = false;
                    holdDep(r, fsym.base);
                    if (inst.rc != isa::zeroReg) {
                        writeIntDest(r, inst.rc, fsym, dyn.result);
                        noteDestWritten(inst.rc, mbcChainLevel);
                    }
                }
                return r;
            }
        }
    }

    // --- normal load -----------------------------------------------------
    if (!r.addrKnown)
        holdDep(r, cpra_on && addr_sym.isExpr() ? addr_sym.base
                                                : base.mapping);

    if (fp_dest)
        writeFpDest(r, inst.rc, dyn.result);
    else if (inst.rc != isa::zeroReg)
        writeIntDestTrivial(r, inst.rc, dyn.result);
    noteDestWritten(fp_dest ? isa::zeroReg : inst.rc, 0);

    // Record the loaded value for redundant load elimination.
    if (r.addrKnown && rlesf_on && r.destPreg != invalidPreg) {
        mbc_.insert(dyn.memAddr, info.memSize,
                    SymbolicValue::expr(r.destPreg, 0, 0, fp_dest),
                    /*from_load=*/true, dyn.seq);
    }
    return r;
}

OptResult
RenameUnit::renameFp(const arch::DynInst &dyn, uint64_t opt_cycle)
{
    const isa::Instruction &inst = dyn.inst;
    const auto &info = isa::opInfo(inst.op);
    OptResult r;
    r.schedClass = OpClass::Fp;
    r.execLatency = info.latency;

    if (info.readsRa) {
        if (info.raIsFp) {
            holdDep(r, fpRat_.read(inst.ra), true);
        } else {
            // CVTQT reads an integer register.
            View va = readIntSource(inst.ra, opt_cycle);
            if (!va.known)
                holdDep(r, va.mapping);
            else
                r.wasOptimized = config_.enabled;
        }
    }
    if (info.readsRb && info.rbIsFp)
        holdDep(r, fpRat_.read(inst.rb), true);

    if (info.writesRc) {
        if (info.rcIsFp) {
            writeFpDest(r, inst.rc, dyn.result);
        } else {
            // CVTTQ writes an integer register.
            writeIntDestTrivial(r, inst.rc, dyn.result);
            noteDestWritten(inst.rc, 0);
        }
    }
    return r;
}

void
RenameUnit::onStoreExecuted(uint64_t addr, unsigned size, uint64_t seq)
{
    if (config_.enabled && config_.enableRleSf)
        mbc_.invalidateStale(addr, size, seq);
}

} // namespace conopt::core
