#include "src/sim/result_cache.hh"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/sim/baseline.hh"
#include "src/sim/fingerprint.hh"
#include "src/sim/report.hh"

namespace conopt::sim {

namespace {

/** The persisted counters, named for the JSON document. Pointer-to-
 *  member tables keep the writer and the parser field lists identical
 *  by construction. */
struct StatField
{
    const char *name;
    uint64_t pipeline::SimStats::*p;
};

constexpr StatField kStatFields[] = {
    {"cycles", &pipeline::SimStats::cycles},
    {"retired", &pipeline::SimStats::retired},
    {"branches", &pipeline::SimStats::branches},
    {"cond_branches", &pipeline::SimStats::condBranches},
    {"mispredicted", &pipeline::SimStats::mispredicted},
    {"early_resolved_branches", &pipeline::SimStats::earlyResolvedBranches},
    {"early_recovered_mispredicts",
     &pipeline::SimStats::earlyRecoveredMispredicts},
    {"btb_resteers", &pipeline::SimStats::btbResteers},
    {"loads", &pipeline::SimStats::loads},
    {"stores", &pipeline::SimStats::stores},
    {"loads_forwarded_from_storeq",
     &pipeline::SimStats::loadsForwardedFromStoreQ},
    {"mbc_misspec_flushes", &pipeline::SimStats::mbcMisspecFlushes},
    {"dl1_hits", &pipeline::SimStats::dl1Hits},
    {"dl1_misses", &pipeline::SimStats::dl1Misses},
    {"il1_misses", &pipeline::SimStats::il1Misses},
    {"fetch_stall_mispredict", &pipeline::SimStats::fetchStallMispredict},
    {"fetch_stall_icache", &pipeline::SimStats::fetchStallIcache},
    {"fetch_stall_queue_full", &pipeline::SimStats::fetchStallQueueFull},
    {"rename_stall_rob", &pipeline::SimStats::renameStallRob},
    {"rename_stall_dispatchq", &pipeline::SimStats::renameStallDispatchQ},
    {"rename_stall_pregs", &pipeline::SimStats::renameStallPregs},
    {"dispatch_stall_sched", &pipeline::SimStats::dispatchStallSched},
};

struct OptField
{
    const char *name;
    uint64_t core::OptStats::*p;
};

constexpr OptField kOptFields[] = {
    {"insts_renamed", &core::OptStats::instsRenamed},
    {"early_executed", &core::OptStats::earlyExecuted},
    {"moves_eliminated", &core::OptStats::movesEliminated},
    {"branches_resolved", &core::OptStats::branchesResolved},
    {"mem_ops", &core::OptStats::memOps},
    {"loads", &core::OptStats::loads},
    {"addr_known", &core::OptStats::addrKnown},
    {"loads_removed", &core::OptStats::loadsRemoved},
    {"loads_synthesized", &core::OptStats::loadsSynthesized},
    {"mbc_misspecs", &core::OptStats::mbcMisspecs},
    {"sym_rewrites", &core::OptStats::symRewrites},
    {"depth_blocked", &core::OptStats::depthBlocked},
    {"strength_reductions", &core::OptStats::strengthReductions},
    {"branch_inferences", &core::OptStats::branchInferences},
};

struct MbcField
{
    const char *name;
    uint64_t core::MbcStats::*p;
};

constexpr MbcField kMbcFields[] = {
    {"lookups", &core::MbcStats::lookups},
    {"hits", &core::MbcStats::hits},
    {"inserts", &core::MbcStats::inserts},
    {"evictions", &core::MbcStats::evictions},
    {"invalidations", &core::MbcStats::invalidations},
    {"flushes", &core::MbcStats::flushes},
};

} // namespace

std::string
ResultCache::Key::fileName() const
{
    Fnv f;
    f.mixStr(programFingerprint);
    f.mixStr(configFingerprint);
    f.mixStr(simFingerprint);
    f.mix(scale);
    f.mix(seed);
    f.mix(maxInsts);
    return hex64(f.final()).substr(2) + ".json";
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    usable_ = !ec && std::filesystem::is_directory(dir_, ec);
    if (!usable_)
        std::fprintf(stderr,
                     "[cache] cannot create result cache at %s (%s); "
                     "caching disabled\n",
                     dir_.c_str(), ec.message().c_str());
}

std::string
ResultCache::entryToJson(const Key &key, const SimResult &r)
{
    std::string s;
    s.reserve(2048);
    const auto kv = [&](const char *k, const std::string &raw) {
        s += '"';
        s += k;
        s += "\": ";
        s += raw;
    };
    const auto str = [&](const std::string &v) {
        std::string q(1, '"');
        q += jsonEscape(v);
        q += '"';
        return q;
    };

    s += "{\n  ";
    kv("schema", str(kSchema));
    s += ",\n  ";
    kv("version", std::to_string(kVersion));
    s += ",\n  ";
    kv("program_fingerprint", str(key.programFingerprint));
    s += ",\n  ";
    kv("config_fingerprint", str(key.configFingerprint));
    s += ",\n  ";
    kv("sim_fingerprint", str(key.simFingerprint));
    s += ",\n  ";
    kv("scale", std::to_string(key.scale));
    s += ", ";
    kv("seed", std::to_string(key.seed));
    s += ", ";
    kv("max_insts", std::to_string(key.maxInsts));
    s += ",\n  ";
    kv("instructions", std::to_string(r.instructions));
    s += ", ";
    kv("halted", r.halted ? "true" : "false");
    s += ",\n  \"stats\": {";
    kv("halted", r.stats.halted ? "true" : "false");
    for (const auto &f : kStatFields) {
        s += ",\n    ";
        kv(f.name, std::to_string(r.stats.*f.p));
    }
    s += ",\n    \"opt\": {";
    for (const auto &f : kOptFields) {
        if (&f != kOptFields)
            s += ", ";
        kv(f.name, std::to_string(r.stats.opt.*f.p));
    }
    s += "},\n    \"mbc\": {";
    for (const auto &f : kMbcFields) {
        if (&f != kMbcFields)
            s += ", ";
        kv(f.name, std::to_string(r.stats.mbc.*f.p));
    }
    s += "}\n  }\n}\n";
    return s;
}

bool
ResultCache::parseEntry(const std::string &json, const Key &expect,
                        SimResult *out, std::string *err)
{
    JsonValue doc;
    if (!JsonValue::parse(json, &doc, err))
        return false;
    if (!doc.isObject()) {
        if (err)
            *err = "cache entry is not a JSON object";
        return false;
    }
    const auto getStr = [&](const char *key) -> std::string {
        const auto *v = doc.get(key);
        return v && v->kind() == JsonValue::Kind::String ? v->asString()
                                                         : "";
    };
    if (getStr("schema") != kSchema) {
        if (err)
            *err = "not a " + std::string(kSchema) + " document";
        return false;
    }
    uint64_t version = 0;
    if (!jsonFieldU64(doc, "version", &version, err))
        return false;
    if (version != kVersion) {
        if (err)
            *err = "unsupported cache entry version " +
                   std::to_string(version);
        return false;
    }
    // Verify the *full* key, not just the filename hash: a collision
    // must degrade to a miss, never to someone else's result.
    uint64_t scale = 0, seed = 0, maxInsts = 0;
    std::string keyErr;
    if (!jsonFieldU64(doc, "scale", &scale, &keyErr) ||
        !jsonFieldU64(doc, "seed", &seed, &keyErr) ||
        !jsonFieldU64(doc, "max_insts", &maxInsts, &keyErr)) {
        if (err)
            *err = keyErr;
        return false;
    }
    if (getStr("program_fingerprint") != expect.programFingerprint ||
        getStr("config_fingerprint") != expect.configFingerprint ||
        getStr("sim_fingerprint") != expect.simFingerprint ||
        scale != expect.scale || seed != expect.seed ||
        maxInsts != expect.maxInsts) {
        if (err)
            *err = "cache entry key mismatch";
        return false;
    }

    SimResult r;
    std::string fieldErr;
    if (!jsonFieldU64(doc, "instructions", &r.instructions, &fieldErr)) {
        if (err)
            *err = fieldErr;
        return false;
    }
    r.halted = jsonFieldBool(doc, "halted");
    const auto *stats = doc.get("stats");
    if (!stats || !stats->isObject()) {
        if (err)
            *err = "cache entry has no stats object";
        return false;
    }
    r.stats.halted = jsonFieldBool(*stats, "halted");
    for (const auto &f : kStatFields) {
        if (!jsonFieldU64(*stats, f.name, &(r.stats.*f.p), &fieldErr)) {
            if (err)
                *err = fieldErr;
            return false;
        }
    }
    if (const auto *opt = stats->get("opt"); opt && opt->isObject()) {
        for (const auto &f : kOptFields) {
            if (!jsonFieldU64(*opt, f.name, &(r.stats.opt.*f.p), &fieldErr)) {
                if (err)
                    *err = fieldErr;
                return false;
            }
        }
    }
    if (const auto *mbc = stats->get("mbc"); mbc && mbc->isObject()) {
        for (const auto &f : kMbcFields) {
            if (!jsonFieldU64(*mbc, f.name, &(r.stats.mbc.*f.p), &fieldErr)) {
                if (err)
                    *err = fieldErr;
                return false;
            }
        }
    }
    *out = r;
    return true;
}

bool
ResultCache::lookup(const Key &key, SimResult *out)
{
    if (!usable_) {
        misses_.fetch_add(1);
        return false;
    }
    const std::string path =
        (std::filesystem::path(dir_) / key.fileName()).string();
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        misses_.fetch_add(1);
        return false;
    }
    std::string text;
    char buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    const bool readOk = !std::ferror(f);
    std::fclose(f);
    std::string err;
    if (!readOk || !parseEntry(text, key, out, &err)) {
        // Corrupt or foreign entries are misses, never failures: the
        // cell re-simulates and the next store repairs the entry.
        errors_.fetch_add(1);
        misses_.fetch_add(1);
        return false;
    }
    hits_.fetch_add(1);
    return true;
}

bool
ResultCache::store(const Key &key, const SimResult &result,
                   std::string *err)
{
    if (!usable_) {
        if (err)
            *err = dir_ + ": cache directory unusable";
        return false;
    }
    namespace fs = std::filesystem;
    const fs::path dir(dir_);
    const std::string final = (dir / key.fileName()).string();
    // Unique temp name per process+thread so concurrent shard processes
    // sharing one cache directory never interleave writes; rename() is
    // atomic, so readers see either the old entry or the new one.
    static std::atomic<uint64_t> counter{0};
    const std::string tmp =
        (dir / (key.fileName() + ".tmp." +
                std::to_string(uint64_t(::getpid())) + "." +
                std::to_string(counter.fetch_add(1))))
            .string();
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        if (err)
            *err = tmp + ": " + std::strerror(errno);
        return false;
    }
    const std::string text = entryToJson(key, result);
    const size_t written = std::fwrite(text.data(), 1, text.size(), f);
    // fclose unconditionally: a short write (ENOSPC) must not leak
    // the FILE* — one leaked fd per failed store would exhaust the
    // process fd limit over a long sweep.
    const bool closed = std::fclose(f) == 0;
    const bool ok = written == text.size() && closed;
    if (!ok) {
        if (err)
            *err = tmp + ": write failed";
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), final.c_str()) != 0) {
        if (err)
            *err = final + ": " + std::strerror(errno);
        std::remove(tmp.c_str());
        return false;
    }
    stores_.fetch_add(1);
    return true;
}

ResultCache::Stats
ResultCache::stats() const
{
    Stats s;
    s.hits = hits_.load();
    s.misses = misses_.load();
    s.stores = stores_.load();
    s.errors = errors_.load();
    return s;
}

} // namespace conopt::sim
