/**
 * @file
 * Benchmark artifact persistence and baseline regression gating.
 *
 * Every table/figure binary in bench/ emits a `BENCH_<name>.json`
 * artifact describing what it measured: one record per sweep job
 * (cycles, IPC, optimizer counters, a config fingerprint) plus the
 * figure-level geomean speedups and run metadata (bench name, scale,
 * threads). The artifact is the unit of the bench trajectory: CI keeps
 * seed artifacts under bench/baselines/ and fails when the simulated
 * machine drifts, the same way ctest fails when correctness drifts.
 *
 * The simulator is deterministic, so the default comparison is exact
 * (tolerance 0): any cycle change on any workload is a flagged drift.
 * A relative tolerance is available for intentionally-noisy studies.
 *
 * Pieces:
 *   - JsonValue:       minimal recursive-descent JSON loader (numbers
 *                      kept as raw text, so uint64 round-trips exactly)
 *   - BenchArtifact:   the schema + writer (toJson/save) + loader
 *                      (parse/load) + shard merge
 *   - compareArtifacts: the regression gate, label-keyed
 *   - benchCheckMain:  the `conopt_bench_check` CLI entry point,
 *                      exposed so tests/test_baseline.cc can cover the
 *                      CLI's exit behaviour in-process
 */

#ifndef CONOPT_SIM_BASELINE_HH
#define CONOPT_SIM_BASELINE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/pipeline/machine_config.hh"
#include "src/sim/fingerprint.hh"
#include "src/sim/sweep.hh"

namespace conopt::sim {

// --------------------------------------------------------------------------
// JsonValue: a minimal JSON loader
// --------------------------------------------------------------------------

/** A parsed JSON document node. Numbers keep their raw source text so
 *  64-bit cycle counts survive the round trip without double rounding. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /** Parse @p text into @p out. False on malformed input (trailing
     *  garbage included), with a position-annotated message in @p err. */
    static bool parse(const std::string &text, JsonValue *out,
                      std::string *err);

    Kind kind() const { return kind_; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    bool asBool() const { return bool_; }
    /** The number as a double (0.0 for non-numbers / malformed). */
    double asDouble() const;
    /** The number as a uint64 (0 for non-numbers / malformed). */
    uint64_t asU64() const;

    /** The number as a uint64, validated end to end: the node must be
     *  a Number whose full token is a plain non-negative integer that
     *  fits in 64 bits. False on fractions ("1.5"), exponents ("1e3"),
     *  negatives, or out-of-range values ("18446744073709551616"),
     *  which the lenient asU64() would silently truncate or clamp. */
    bool asU64Strict(uint64_t *out) const;
    /** The number as a double; false when the node is not a Number or
     *  the token overflows to infinity. */
    bool asDoubleStrict(double *out) const;

    const std::string &asString() const { return str_; }

    /** Array element count (0 for non-arrays). */
    size_t size() const { return arr_.size(); }
    const JsonValue &at(size_t i) const { return arr_[i]; }

    /** Object member, or nullptr when absent / not an object. */
    const JsonValue *get(const std::string &key) const;
    const std::map<std::string, JsonValue> &object() const { return obj_; }

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string str_; ///< string value, or raw number token
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

/** Strict object-field readers shared by every parser over JsonValue
 *  documents (the artifact loader here, the result-cache entries in
 *  src/sim/result_cache.cc). An absent key reads as the zero default
 *  (schema tolerance for older writers), but a key that is present
 *  and not a well-formed in-range number is an error with a
 *  field-naming diagnostic: a truncated or corrupted token must fail
 *  the load, never silently read as 0 or clamped garbage. */
bool jsonFieldU64(const JsonValue &obj, const char *key, uint64_t *out,
                  std::string *err);
/** jsonFieldU64 narrowed to 32 bits, for `unsigned` schema fields. */
bool jsonFieldU32(const JsonValue &obj, const char *key, unsigned *out,
                  std::string *err);
bool jsonFieldDouble(const JsonValue &obj, const char *key, double *out,
                     std::string *err);
/** True iff @p key is present, a Bool, and true (never an error). */
bool jsonFieldBool(const JsonValue &obj, const char *key);

// --------------------------------------------------------------------------
// The artifact schema
// --------------------------------------------------------------------------

/** One sweep job as persisted: the per-workload regression unit. */
struct ArtifactJob
{
    std::string label;    ///< unique key within the artifact
    std::string workload; ///< Table 1 registry name ("" for synthetic)
    std::string suite;    ///< Table 1 suite ("" when not registry-run)
    std::string config;   ///< configuration column name
    unsigned scale = 0;   ///< absolute iteration scale of the run
    uint64_t seed = 0;    ///< deterministic per-job seed

    uint64_t instructions = 0; ///< dynamic instructions retired
    uint64_t cycles = 0;       ///< the headline regression number
    double ipc = 0.0;
    bool halted = false;
    uint64_t checksum = 0; ///< workload memory checksum (emulator runs)

    /** Hash of every MachineConfig field; catches "same cycles because
     *  the experiment silently changed" as well as config drift. */
    std::string configFingerprint;

    // Host-throughput measurement (optional; 0 = not measured). These
    // describe the machine the bench ran ON, not the machine it
    // simulated, so they are EXCLUDED from compareArtifacts(): perf
    // noise must never trip the tolerance-0 drift gate. They are only
    // serialized when set, so artifacts without measurements (and all
    // pre-existing baselines) keep their exact bytes.
    double hostSeconds = 0.0; ///< host wall-seconds of the simulation
                              ///< proper (harness overhead excluded)
    double kips = 0.0; ///< simulated kilo-insts per host second

    // Per-interval IPC distribution (optional; 0 samples = not
    // sampled). Same contract as the perf fields: EXCLUDED from
    // compareArtifacts() — sampling is observability, not the
    // regression surface — and serialized only when measured, so
    // unsampled artifacts (and all existing baselines) keep their
    // exact bytes. The bounded reservoir samples themselves persist so
    // a shard merge can recompute sweep-level percentiles from the
    // union of per-job samples (see BenchArtifact::addDistributionFromJobs).
    uint64_t ipcSamplesSeen = 0; ///< interval samples offered pre-reservoir
    double ipcP50 = 0.0;
    double ipcP95 = 0.0;
    double ipcP99 = 0.0;
    std::vector<double> ipcSamples; ///< retained reservoir, slot order

    // Optimizer activity counters (compared like cycles: exact at
    // tolerance 0, relative drift otherwise).
    uint64_t optEarlyExecuted = 0;
    uint64_t optMovesEliminated = 0;
    uint64_t optBranchesResolved = 0;
    uint64_t optLoadsRemoved = 0;
    uint64_t optLoadsSynthesized = 0;
    uint64_t optMbcMisspecs = 0;
};

/** A persisted benchmark run: `BENCH_<name>.json`. */
struct BenchArtifact
{
    static constexpr const char *kSchema = "conopt-bench-artifact";
    static constexpr unsigned kVersion = 1;

    std::string bench;   ///< bench binary name ("fig6_speedup", ...)
    unsigned scale = 1;  ///< CONOPT_SCALE the run used
    unsigned threads = 0; ///< CONOPT_THREADS (informational; excluded
                          ///< from comparison by design: results are
                          ///< scheduling-independent)

    std::vector<ArtifactJob> jobs; ///< submission order

    /** Figure-level geomean speedups, keyed by config column name. */
    std::map<std::string, double> geomeans;

    /** One sweep-level nearest-rank distribution summary; count == 0
     *  means "not measured" and the block is not serialized, so
     *  artifacts without distributions keep their exact bytes. Never
     *  gated by compareArtifacts() — like the per-job perf fields. */
    struct DistSummary
    {
        uint64_t count = 0; ///< samples the percentiles summarize
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
        double max = 0.0;

        bool measured() const { return count > 0; }
        bool operator==(const DistSummary &) const = default;
    };

    /** Distribution of per-job host seconds (jobs with perf). */
    DistSummary hostDist;
    /** Distribution of per-interval IPC, pooled over the per-job
     *  reservoir samples of every sampled job. */
    DistSummary ipcDist;

    /** Build the per-job records from a sweep (no geomeans yet,
     *  no perf fields — see addPerf). */
    static BenchArtifact fromSweep(const SweepResult &res);

    /** Copy the host-throughput measurements (host_seconds/kips) of
     *  @p res into the matching jobs, label-keyed. Only jobs that
     *  actually simulated are copied — result-cache hits measured the
     *  loader, not the simulator, and stay unmeasured. Opt-in (the
     *  bench harness's --perf flag) so artifacts stay byte-stable for
     *  flows that diff them whole. */
    void addPerf(const SweepResult &res);

    /** Copy the per-interval IPC reservoirs of @p res into the
     *  matching jobs (samples, seen count, and nearest-rank
     *  p50/p95/p99), label-keyed. Jobs that did not sample — sampling
     *  off, or a result-cache hit — stay unmeasured. No-op when the
     *  sweep ran without sampling, so gated flows are untouched. */
    void addIpcSamples(const SweepResult &res);

    /** Recompute the sweep-level distribution block from the persisted
     *  per-job records: host-seconds percentiles over measured jobs,
     *  IPC percentiles over the union of per-job reservoir samples.
     *  Percentiles are order-independent, so a merged shard set yields
     *  exactly the unsharded run's numbers (tests pin this). No-op —
     *  both summaries stay unmeasured — when no job carries data. */
    void addDistributionFromJobs();

    /** Append the all-workload geomean speedup of each of @p configs
     *  over @p baseConfig (the figure's headline numbers). */
    void addGeomeans(const SweepResult &res, const std::string &baseConfig,
                     const std::vector<std::string> &configs);

    /** The same figure-level geomeans, recomputed from the persisted
     *  per-job records instead of a live SweepResult: the post-merge
     *  half of the sharded workflow (per-shard artifacts defer their
     *  geomeans; compute them here after merge()). Workloads iterate
     *  in job order and cells divide the same uint64 cycle counts, so
     *  on a single-run artifact this reproduces addGeomeans() bit for
     *  bit; a merged artifact whose job order interleaves differently
     *  can differ in the last ulp, which the compare gate's 1e-12
     *  geomean floor absorbs. */
    void addGeomeansFromJobs(const std::string &baseConfig,
                             const std::vector<std::string> &configs);

    /** Order-independent combination of the per-job config
     *  fingerprints: the artifact-level config identity. */
    std::string fingerprint() const;

    const ArtifactJob *findJob(const std::string &label) const;

    std::string toJson() const;
    void write(std::FILE *out) const;
    /** Write to @p path; false (with @p err) on I/O failure. */
    bool save(const std::string &path, std::string *err) const;

    /** Fold a disjoint shard into this artifact. False (with @p err) on
     *  bench/scale mismatch, duplicate job labels, or geomean maps /
     *  distribution blocks that are not identical across shards
     *  (whole-sweep aggregates cannot be merged from per-shard subsets;
     *  compute them after merging — loadArtifactOrShards() recomputes
     *  the distribution block from the merged per-job samples). */
    bool merge(const BenchArtifact &shard, std::string *err);

    /** Canonical job order (sorted by label). merge() appends shards
     *  in load order, so a merged artifact is label-identical to the
     *  single-run artifact but not byte-identical; sorting both sides
     *  (before any geomean recompute) makes toJson() byte-comparable.
     *  The compare gate never needs this — it is label-keyed. */
    void sortJobsByLabel();
};

/** Parse an artifact from JSON text; schema/version checked, and the
 *  stored fingerprint verified against the per-job fingerprints. */
bool parseArtifact(const std::string &json, BenchArtifact *out,
                   std::string *err);

/** Load an artifact from a file. */
bool loadArtifact(const std::string &path, BenchArtifact *out,
                  std::string *err);

/** Load one artifact from @p path: either a single JSON file or a
 *  directory of per-shard artifacts (merged in filename order, with
 *  the sweep-level distribution block recomputed from the merged
 *  per-job samples — per-shard blocks, like per-shard geomeans, are
 *  deferred to this post-merge step). */
bool loadArtifactOrShards(const std::string &path, BenchArtifact *out,
                          std::string *err);

// --------------------------------------------------------------------------
// Comparison: the regression gate
// --------------------------------------------------------------------------

struct CompareOptions
{
    /** Relative drift allowed on cycles, optimizer counters, and
     *  geomeans. 0 means exact: the simulator is deterministic, so
     *  that is the CI default. (Geomeans always get a 1e-12 relative
     *  floor to absorb cross-libm last-ulp differences in log/exp;
     *  integer fields are compared exactly at tolerance 0.) */
    double tolerance = 0.0;
};

struct CompareResult
{
    bool ok = true;
    std::vector<std::string> diffs; ///< one human-readable line each

    /** All diffs joined with newlines (convenience for callers). */
    std::string message() const;
};

/** Compare @p candidate against @p baseline, label-keyed. Flags cycle /
 *  instruction / checksum / counter / fingerprint drift per job,
 *  missing and unexpected jobs, and geomean drift. */
CompareResult compareArtifacts(const BenchArtifact &baseline,
                               const BenchArtifact &candidate,
                               const CompareOptions &opts = {});

/** Parse a --tolerance value: a finite, non-negative number with no
 *  trailing garbage. Shared by conopt_bench_check and the bench
 *  harness so the two CLIs accept exactly the same inputs. */
bool parseTolerance(const char *s, double *out);

/** The `conopt_bench_check` CLI:
 *
 *    conopt_bench_check [--tolerance T] [--recompute-geomeans BASE]
 *                       <baseline> <candidate>
 *
 *  where each path is a BENCH_*.json file or a directory of per-shard
 *  artifacts (merged before comparison). --recompute-geomeans rebuilds
 *  the candidate's figure geomeans from its per-job records, over
 *  config BASE, for exactly the columns the baseline carries — the
 *  post-merge step for sharded runs, whose per-shard artifacts defer
 *  geomeans. Returns the process exit code: 0 on match, 1 on drift,
 *  2 on usage/parse/I-O errors. */
int benchCheckMain(const std::vector<std::string> &args);

} // namespace conopt::sim

#endif // CONOPT_SIM_BASELINE_HH
