#include "src/sim/driver.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/sim/baseline.hh"
#include "src/sim/harness.hh"
#include "src/sim/service.hh"

namespace conopt::sim {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

// parseU64Token/parseDoubleToken (the strict numeric-token
// primitives this protocol shares with the SweepRequest decoder)
// moved to src/sim/request.{hh,cc}.

} // namespace

// --------------------------------------------------------------------------
// Progress line protocol
// --------------------------------------------------------------------------

std::string
formatProgressLine(const SweepProgress &p)
{
    char head[768];
    std::snprintf(head, sizeof(head),
                  "%s v%u done=%zu total=%zu job_s=%.17g host_s=%.17g "
                  "elapsed_s=%.17g eta_s=%.17g geomean_ipc=%.17g "
                  "kips=%.17g host_p50=%.17g host_p95=%.17g "
                  "host_p99=%.17g ",
                  kProgressLineTag, kProgressLineVersion, p.done, p.total,
                  p.jobHostSeconds, p.totalHostSeconds, p.elapsedSeconds,
                  p.etaSeconds, p.geomeanIpc, p.kips, p.hostP50, p.hostP95,
                  p.hostP99);
    std::string line = head;
    // Daemon-backed shards carry their service context; ephemeral
    // shards (both fields 0) keep the exact pre-existing bytes, and v1
    // parsers skip the keys they don't know (regression-tested in
    // tests/test_sweep_driver.cc).
    if (p.queueDepth || p.sessions) {
        char svc[96];
        std::snprintf(svc, sizeof(svc),
                      "queue_depth=%llu sessions=%llu ",
                      (unsigned long long)p.queueDepth,
                      (unsigned long long)p.sessions);
        line += svc;
    }
    line += "label=";
    return line + p.label;
}

bool
parseProgressLine(const std::string &lineIn, SweepProgress *out)
{
    std::string line = lineIn;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
    const std::string head = std::string(kProgressLineTag) + " v" +
                             std::to_string(kProgressLineVersion) + " ";
    if (line.size() < head.size() || line.compare(0, head.size(), head) != 0)
        return false;

    SweepProgress p;
    bool haveDone = false, haveTotal = false, haveLabel = false;
    size_t pos = head.size();
    while (pos < line.size()) {
        const size_t eq = line.find('=', pos);
        if (eq == std::string::npos || eq == pos)
            return false;
        const std::string key = line.substr(pos, eq - pos);
        if (key.find(' ') != std::string::npos)
            return false;
        if (key == "label") {
            // The label is last and runs to end of line (labels never
            // need escaping; "=" or spaces inside one stay intact).
            p.label = line.substr(eq + 1);
            haveLabel = true;
            break;
        }
        size_t end = line.find(' ', eq + 1);
        if (end == std::string::npos)
            end = line.size();
        const std::string val = line.substr(eq + 1, end - eq - 1);
        uint64_t u = 0;
        double d = 0.0;
        if (key == "done") {
            if (!parseU64Token(val, &u))
                return false;
            p.done = size_t(u);
            haveDone = true;
        } else if (key == "total") {
            if (!parseU64Token(val, &u))
                return false;
            p.total = size_t(u);
            haveTotal = true;
        } else if (key == "job_s") {
            if (!parseDoubleToken(val, &d))
                return false;
            p.jobHostSeconds = d;
        } else if (key == "host_s") {
            if (!parseDoubleToken(val, &d))
                return false;
            p.totalHostSeconds = d;
        } else if (key == "elapsed_s") {
            if (!parseDoubleToken(val, &d))
                return false;
            p.elapsedSeconds = d;
        } else if (key == "eta_s") {
            if (!parseDoubleToken(val, &d))
                return false;
            p.etaSeconds = d;
        } else if (key == "geomean_ipc") {
            if (!parseDoubleToken(val, &d))
                return false;
            p.geomeanIpc = d;
        } else if (key == "kips") {
            if (!parseDoubleToken(val, &d))
                return false;
            p.kips = d;
        } else if (key == "host_p50") {
            if (!parseDoubleToken(val, &d))
                return false;
            p.hostP50 = d;
        } else if (key == "host_p95") {
            if (!parseDoubleToken(val, &d))
                return false;
            p.hostP95 = d;
        } else if (key == "host_p99") {
            if (!parseDoubleToken(val, &d))
                return false;
            p.hostP99 = d;
        } else if (key == "queue_depth") {
            if (!parseU64Token(val, &u))
                return false;
            p.queueDepth = u;
        } else if (key == "sessions") {
            if (!parseU64Token(val, &u))
                return false;
            p.sessions = u;
        }
        // Unknown keys are skipped: a same-major-version harness may
        // append fields without breaking older drivers.
        pos = end < line.size() ? end + 1 : end;
    }
    if (!haveDone || !haveTotal || !haveLabel)
        return false;
    *out = std::move(p);
    return true;
}

void
writeProgressLine(int fd, const SweepProgress &p)
{
    if (fd < 0)
        return;
    std::string line = formatProgressLine(p);
    line += '\n';
    // One write per line: lines are far below PIPE_BUF, so writers
    // sharing a sink never interleave mid-line. Progress is advisory;
    // a closed/bad fd — or a reader that vanished (the driver was
    // killed mid-sweep) — must never fail the sweep itself, so SIGPIPE
    // is blocked for this thread around the write and a resulting
    // pending signal is drained. SIGPIPE is thread-synchronous, which
    // makes the per-thread mask exact.
    sigset_t pipeSet, oldSet;
    sigemptyset(&pipeSet);
    sigaddset(&pipeSet, SIGPIPE);
    const bool masked =
        ::pthread_sigmask(SIG_BLOCK, &pipeSet, &oldSet) == 0;
    const ssize_t rc = ::write(fd, line.data(), line.size());
    if (masked) {
        if (rc < 0 && errno == EPIPE) {
            struct timespec none = {0, 0};
            ::sigtimedwait(&pipeSet, nullptr, &none);
        }
        ::pthread_sigmask(SIG_SETMASK, &oldSet, nullptr);
    }
}

// --------------------------------------------------------------------------
// Launcher templates
// --------------------------------------------------------------------------

std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += '\'';
    return out;
}

bool
expandLauncher(const std::string &tmpl, const LauncherVars &vars,
               std::string *out, std::string *err)
{
    std::string res;
    bool sawCmd = false;
    for (size_t i = 0; i < tmpl.size(); ++i) {
        if (tmpl[i] != '{') {
            res += tmpl[i];
            continue;
        }
        const size_t close = tmpl.find('}', i);
        if (close == std::string::npos) {
            if (err)
                *err = "unclosed '{' in launcher template at position " +
                       std::to_string(i);
            return false;
        }
        const std::string name = tmpl.substr(i + 1, close - i - 1);
        if (name == "i") {
            res += vars.shardIndex;
        } else if (name == "n") {
            res += vars.shardCount;
        } else if (name == "cmd") {
            res += vars.command;
            sawCmd = true;
        } else if (name == "host") {
            if (vars.host.empty()) {
                if (err)
                    *err = "launcher template uses {host} but no --ssh "
                           "hosts are configured";
                return false;
            }
            res += vars.host;
        } else {
            if (err)
                *err = "unknown placeholder '{" + name +
                       "}' in launcher template (allowed: {i}, {n}, "
                       "{cmd}, {host})";
            return false;
        }
        i = close;
    }
    // A template without {cmd} is a pure wrapper ("srun", "nice -n
    // 19", ...): run the bench command after it.
    if (!sawCmd) {
        if (!res.empty())
            res += ' ';
        res += vars.command;
    }
    if (out)
        *out = std::move(res);
    return true;
}

// --------------------------------------------------------------------------
// Options, parsing, shard command composition
// --------------------------------------------------------------------------

namespace {

/** "./name" when a bare name exists in the working directory (bench
 *  binaries normally sit next to the driver in build/); otherwise the
 *  path as given (execvp falls back to PATH). */
std::string
resolveBenchPath(const std::string &path)
{
    if (path.find('/') != std::string::npos)
        return path;
    std::error_code ec;
    if (fs::exists("./" + path, ec))
        return "./" + path;
    return path;
}

std::string
shardDirOf(const DriverOptions &opts)
{
    return (fs::path(opts.run.artifactDir) / (opts.benchName + ".shards"))
        .string();
}

/** Does this configuration attach a --progress-fd pipe to the shards?
 *  Not over ssh: an inherited pipe fd does not cross the connection. */
bool
progressFdAttached(const DriverOptions &opts)
{
    return opts.streamProgress && opts.sshHosts.empty();
}

/** Validate a user-supplied bench/artifact name: it becomes a file
 *  name component, so path separators are rejected. */
bool
validBenchName(const std::string &name)
{
    return !name.empty() && name.find('/') == std::string::npos;
}

} // namespace

std::string
shardArtifactName(const std::string &bench, unsigned index, unsigned count)
{
    if (count <= 1)
        return "BENCH_" + bench + ".json";
    return "BENCH_" + bench + ".shard" + std::to_string(index) + "of" +
           std::to_string(count) + ".json";
}

bool
parseDriverArgs(const std::vector<std::string> &args, DriverOptions *out,
                std::string *err)
{
    DriverOptions o;
    std::vector<std::string> positional;
    size_t i = 0;
    const auto value = [&](const std::string &flag,
                           std::string *v) -> bool {
        if (i + 1 >= args.size()) {
            *err = flag + " requires a value";
            return false;
        }
        *v = args[++i];
        return true;
    };
    for (; i < args.size(); ++i) {
        const std::string &a = args[i];
        std::string v;
        if (a == "--") {
            o.benchArgs.assign(args.begin() + i + 1, args.end());
            break;
        } else if (a == "--shards") {
            uint64_t n = 0;
            if (!value(a, &v))
                return false;
            if (!parseU64Token(v, &n) || n == 0 || n > kMaxEnvThreads) {
                *err = "invalid --shards '" + v +
                       "' (want an integer in [1, " +
                       std::to_string(kMaxEnvThreads) + "])";
                return false;
            }
            o.shards = unsigned(n);
        } else if (a == "--bench-name") {
            if (!value(a, &v))
                return false;
            if (!validBenchName(v)) {
                *err = "invalid --bench-name '" + v +
                       "' (want a non-empty name without '/')";
                return false;
            }
            o.benchName = v;
        } else if (a == "--artifact-dir") {
            if (!value(a, &o.run.artifactDir))
                return false;
        } else if (a == "--result-cache") {
            if (!value(a, &o.run.resultCacheDir))
                return false;
        } else if (a == "--baseline") {
            if (!value(a, &o.run.baselinePath))
                return false;
        } else if (a == "--tolerance") {
            if (!value(a, &v))
                return false;
            if (!parseTolerance(v.c_str(), &o.run.tolerance)) {
                *err = "invalid --tolerance '" + v +
                       "' (want a finite non-negative number)";
                return false;
            }
        } else if (a == "--recompute-geomeans") {
            if (!value(a, &v))
                return false;
            if (v.empty()) {
                *err = "--recompute-geomeans requires a non-empty base "
                       "config name";
                return false;
            }
            o.geomeanBase = v;
        } else if (a == "--timeout") {
            if (!value(a, &v))
                return false;
            double t = 0.0;
            if (!parseDoubleToken(v, &t) || t < 0.0) {
                *err = "invalid --timeout '" + v +
                       "' (want a finite non-negative number of seconds)";
                return false;
            }
            o.timeoutSeconds = t;
        } else if (a == "--retries") {
            uint64_t n = 0;
            if (!value(a, &v))
                return false;
            if (!parseU64Token(v, &n) || n > 1000) {
                *err = "invalid --retries '" + v +
                       "' (want an integer in [0, 1000])";
                return false;
            }
            o.retries = unsigned(n);
        } else if (a == "--launcher") {
            if (!value(a, &o.launcher))
                return false;
            if (o.launcher.empty()) {
                *err = "--launcher requires a non-empty template";
                return false;
            }
        } else if (a == "--ssh") {
            if (!value(a, &v))
                return false;
            o.sshHosts.clear();
            size_t start = 0;
            while (start <= v.size()) {
                size_t comma = v.find(',', start);
                if (comma == std::string::npos)
                    comma = v.size();
                const std::string host = v.substr(start, comma - start);
                if (host.empty()) {
                    *err = "invalid --ssh '" + v +
                           "' (want a comma-separated list of non-empty "
                           "hosts)";
                    return false;
                }
                o.sshHosts.push_back(host);
                start = comma + 1;
            }
        } else if (a == "--connect") {
            if (!value(a, &v))
                return false;
            o.connectHosts.clear();
            size_t start = 0;
            while (start <= v.size()) {
                size_t comma = v.find(',', start);
                if (comma == std::string::npos)
                    comma = v.size();
                const std::string host = v.substr(start, comma - start);
                if (host.empty()) {
                    *err = "invalid --connect '" + v +
                           "' (want a comma-separated list of non-empty "
                           "host:port or unix:PATH endpoints)";
                    return false;
                }
                o.connectHosts.push_back(host);
                start = comma + 1;
            }
        } else if (a == "--no-progress") {
            o.streamProgress = false;
        } else if (!a.empty() && a[0] == '-') {
            *err = "unknown flag '" + a + "'";
            return false;
        } else {
            positional.push_back(a);
        }
    }
    if (positional.empty()) {
        *err = "missing bench binary argument";
        return false;
    }
    if (positional.size() > 1) {
        *err = "expected exactly one bench binary, got '" + positional[0] +
               "' and '" + positional[1] +
               "' (pass bench arguments after --)";
        return false;
    }
    o.benchPath = positional[0];
    if (!o.launcher.empty()) {
        // Validate the template now: a malformed launcher must fail
        // before any shard is spawned, not after n-1 of them ran.
        LauncherVars probe{"0", std::to_string(o.shards), "cmd",
                           o.sshHosts.empty() ? "" : "host"};
        std::string expanded;
        if (!expandLauncher(o.launcher, probe, &expanded, err))
            return false;
        // With both flags, the hosts exist solely to rotate through
        // {host}; a template that never uses it would silently run
        // every shard on the local machine.
        if (!o.sshHosts.empty() &&
            o.launcher.find("{host}") == std::string::npos) {
            *err = "--ssh hosts are unused: the --launcher template "
                   "does not contain {host}, so every shard would run "
                   "locally";
            return false;
        }
    }
    if (!o.connectHosts.empty() &&
        (!o.launcher.empty() || !o.sshHosts.empty())) {
        *err = "--connect drives a standing fleet and cannot be "
               "combined with --launcher or --ssh";
        return false;
    }
    if (o.benchName.empty()) {
        o.benchName = fs::path(o.benchPath).filename().string();
        if (!validBenchName(o.benchName)) {
            *err = "cannot derive a bench name from '" + o.benchPath +
                   "' (pass --bench-name)";
            return false;
        }
    }
    *out = std::move(o);
    return true;
}

std::vector<std::string>
buildShardArgv(const DriverOptions &opts, unsigned index, std::string *err)
{
    std::vector<std::string> bench;
    bench.push_back(resolveBenchPath(opts.benchPath));
    bench.push_back("--shard");
    bench.push_back(std::to_string(index) + "/" +
                    std::to_string(opts.shards));
    bench.push_back("--artifact-dir");
    bench.push_back(shardDirOf(opts));
    if (!opts.run.resultCacheDir.empty()) {
        bench.push_back("--result-cache");
        bench.push_back(opts.run.resultCacheDir);
    }
    if (progressFdAttached(opts)) {
        // The driver dup2()s the progress pipe to fd 3 in the child.
        bench.push_back("--progress-fd");
        bench.push_back("3");
    }
    bench.insert(bench.end(), opts.benchArgs.begin(), opts.benchArgs.end());

    if (opts.launcher.empty() && opts.sshHosts.empty())
        return bench;

    std::string cmd;
    for (const auto &a : bench) {
        if (!cmd.empty())
            cmd += ' ';
        cmd += shellQuote(a);
    }
    const std::string host =
        opts.sshHosts.empty()
            ? std::string()
            : opts.sshHosts[index % opts.sshHosts.size()];
    if (opts.launcher.empty()) {
        // Built-in ssh wrapper. Remote shards assume a shared
        // filesystem: cd to the driver's working directory so relative
        // bench/artifact/cache paths resolve to the same files on
        // every host.
        std::error_code ec;
        const std::string cwd = fs::current_path(ec).string();
        return {"ssh", "-oBatchMode=yes", host,
                "cd " + shellQuote(cwd) + " && " + cmd};
    }
    // A launcher template takes over the wrapping entirely; --ssh then
    // only supplies the round-robin {host} rotation (e.g.
    // --launcher 'ssh {host} timeout 3600 {cmd}' --ssh h1,h2).
    LauncherVars vars{std::to_string(index), std::to_string(opts.shards),
                      cmd, host};
    std::string expanded;
    if (!expandLauncher(opts.launcher, vars, &expanded, err))
        return {};
    return {"/bin/sh", "-c", expanded};
}

// --------------------------------------------------------------------------
// The spawn/wait/retry engine
// --------------------------------------------------------------------------

namespace {

constexpr size_t kOutputTailMax = 64 * 1024;
constexpr int kPollMillis = 50;
constexpr double kRenderIntervalSeconds = 0.5;
/** How long after a shard's own exit the driver keeps waiting for its
 *  pipes to reach EOF before force-closing them: a descendant that
 *  inherited the write ends (a daemonized helper, a backgrounded
 *  launcher wrapper) must not be able to hang the whole fleet. */
constexpr double kExitDrainGraceSeconds = 2.0;

/** Set by the SIGINT/SIGTERM handler while a fleet is running, so an
 *  interrupted driver kills and reaps its shards instead of orphaning
 *  them (an orphan would keep simulating and later rewrite shard
 *  artifacts underneath a rerun). */
volatile std::sig_atomic_t gDriverInterrupted = 0;

void
onDriverSignal(int)
{
    gDriverInterrupted = 1;
}

/** Installs the interrupt flag handler for the driver's lifetime and
 *  restores the previous handlers on scope exit (the driver is also a
 *  library entry point; tests call it in-process). */
struct SignalGuard
{
    struct sigaction oldInt{}, oldTerm{};

    SignalGuard()
    {
        gDriverInterrupted = 0;
        struct sigaction sa{};
        sa.sa_handler = onDriverSignal;
        sigemptyset(&sa.sa_mask);
        ::sigaction(SIGINT, &sa, &oldInt);
        ::sigaction(SIGTERM, &sa, &oldTerm);
    }
    ~SignalGuard()
    {
        ::sigaction(SIGINT, &oldInt, nullptr);
        ::sigaction(SIGTERM, &oldTerm, nullptr);
    }
};

void
appendBounded(std::string &buf, const char *data, size_t n)
{
    buf.append(data, n);
    if (buf.size() > kOutputTailMax)
        buf.erase(0, buf.size() - kOutputTailMax);
}

void
setNonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** One shard process slot across its (possibly retried) attempts. */
struct LiveShard
{
    unsigned index = 0;
    unsigned attempts = 0;
    pid_t pid = -1;
    int outFd = -1;  ///< combined stdout+stderr (read end)
    int progFd = -1; ///< progress protocol pipe (read end), or -1
    std::string outputTail;
    std::string progPartial;
    bool haveProgress = false;
    size_t progressLines = 0;
    SweepProgress progress;
    Clock::time_point start;
    Clock::time_point exitTime; ///< when the last attempt was reaped
    bool running = false;
    bool exited = false;
    bool timedOut = false;
    bool aborted = false; ///< driver gave up on this shard (interrupt,
                          ///< poll failure): never counts as ok
    int status = 0; ///< raw waitpid status of the last attempt
    double seconds = 0.0;

    bool
    okNow() const
    {
        return !timedOut && !aborted && WIFEXITED(status) &&
               WEXITSTATUS(status) == 0;
    }

    /** "exit N" / "signal N" / "timeout" for log lines. */
    std::string
    describeStatus() const
    {
        if (aborted)
            return "aborted by driver";
        if (timedOut)
            return "timed out";
        if (WIFEXITED(status))
            return "exit " + std::to_string(WEXITSTATUS(status));
        if (WIFSIGNALED(status))
            return "signal " + std::to_string(WTERMSIG(status));
        return "status " + std::to_string(status);
    }
};

bool
spawnShard(const DriverOptions &opts, LiveShard &s, std::string *err)
{
    const auto argv = buildShardArgv(opts, s.index, err);
    if (argv.empty())
        return false;
    const bool wantProgress = progressFdAttached(opts);

    int outPipe[2] = {-1, -1}, progPipe[2] = {-1, -1};
    if (::pipe(outPipe) != 0) {
        *err = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    if (wantProgress && ::pipe(progPipe) != 0) {
        *err = std::string("pipe: ") + std::strerror(errno);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        return false;
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        *err = std::string("fork: ") + std::strerror(errno);
        for (int fd : {outPipe[0], outPipe[1], progPipe[0], progPipe[1]})
            if (fd >= 0)
                ::close(fd);
        return false;
    }
    if (pid == 0) {
        // Child. Own process group, so a timeout kill reaches sh/ssh
        // wrappers and their children, not just the immediate process.
        ::setpgid(0, 0);
        ::dup2(outPipe[1], 1);
        ::dup2(outPipe[1], 2);
        int keep = -1;
        if (wantProgress) {
            ::dup2(progPipe[1], 3);
            keep = 3;
        }
        for (int fd : {outPipe[0], outPipe[1], progPipe[0], progPipe[1]})
            if (fd > 2 && fd != keep)
                ::close(fd);
        std::vector<char *> cargv;
        cargv.reserve(argv.size() + 1);
        for (const auto &a : argv)
            cargv.push_back(const_cast<char *>(a.c_str()));
        cargv.push_back(nullptr);
        ::execvp(cargv[0], cargv.data());
        std::fprintf(stderr, "conopt_sweep: cannot exec %s: %s\n",
                     cargv[0], std::strerror(errno));
        ::_exit(127);
    }

    // Parent. Set the pgid from this side too, closing the race where
    // a timeout fires before the child reaches its own setpgid().
    ::setpgid(pid, pid);
    ::close(outPipe[1]);
    if (wantProgress)
        ::close(progPipe[1]);
    setNonblocking(outPipe[0]);
    if (wantProgress)
        setNonblocking(progPipe[0]);

    s.pid = pid;
    s.outFd = outPipe[0];
    s.progFd = wantProgress ? progPipe[0] : -1;
    s.outputTail.clear();
    s.progPartial.clear();
    // A retry starts from zero: the killed attempt's last progress
    // snapshot must not inflate the aggregate line until the new
    // attempt reports (progressLines stays cumulative by design).
    s.haveProgress = false;
    s.progress = SweepProgress{};
    s.start = Clock::now();
    s.running = true;
    s.exited = false;
    s.timedOut = false;
    s.status = 0;
    s.seconds = 0.0;
    ++s.attempts;
    return true;
}

/** Drain @p fd into the shard until EAGAIN or EOF; closes (and clears)
 *  it on EOF. @p progress routes the bytes to the line parser instead
 *  of the output tail. */
void
drainFd(LiveShard &s, int &fd, bool progress)
{
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            if (!progress) {
                appendBounded(s.outputTail, buf, size_t(n));
                continue;
            }
            s.progPartial.append(buf, size_t(n));
            size_t nl;
            while ((nl = s.progPartial.find('\n')) !=
                   std::string::npos) {
                const std::string line = s.progPartial.substr(0, nl);
                s.progPartial.erase(0, nl + 1);
                SweepProgress p;
                if (parseProgressLine(line, &p)) {
                    s.progress = std::move(p);
                    s.haveProgress = true;
                    ++s.progressLines;
                }
                // Non-protocol lines on the progress fd are ignored.
            }
            if (s.progPartial.size() > kOutputTailMax)
                s.progPartial.clear();
            continue;
        }
        if (n == 0) {
            ::close(fd);
            fd = -1;
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        ::close(fd);
        fd = -1;
        return;
    }
}

void
renderProgress(const std::vector<LiveShard> &shards)
{
    size_t done = 0, total = 0;
    bool any = false;
    std::string per;
    for (const auto &s : shards) {
        if (!s.haveProgress)
            continue;
        any = true;
        done += s.progress.done;
        total += s.progress.total;
        char buf[192];
        int len =
            std::snprintf(buf, sizeof(buf), "  shard%u %zu/%zu eta %.0fs",
                          s.index, s.progress.done, s.progress.total,
                          s.progress.etaSeconds);
        // Live fleet observability (when the shard's harness measures
        // it): running host throughput plus per-job host-latency
        // percentiles, the numbers a served fleet would alert on.
        if (len > 0 && size_t(len) < sizeof(buf) &&
            (s.progress.kips > 0.0 || s.progress.hostP99 > 0.0))
            len += std::snprintf(buf + len, sizeof(buf) - size_t(len),
                                 " %.0fkips p50/p95/p99 %.3f/%.3f/%.3fs",
                                 s.progress.kips, s.progress.hostP50,
                                 s.progress.hostP95, s.progress.hostP99);
        // Daemon-backed shards also report their service context.
        if (len > 0 && size_t(len) < sizeof(buf) &&
            (s.progress.queueDepth || s.progress.sessions))
            std::snprintf(buf + len, sizeof(buf) - size_t(len),
                          " q%llu sess%llu",
                          (unsigned long long)s.progress.queueDepth,
                          (unsigned long long)s.progress.sessions);
        per += buf;
    }
    if (any)
        std::fprintf(stderr, "[conopt_sweep] %zu/%zu jobs%s\n", done,
                     total, per.c_str());
}

/** Kill and reap everything still running: the bail-out path for a
 *  mid-launch spawn failure, an interrupt, or a broken poll loop.
 *  Records each shard's real wait status and marks it aborted, so an
 *  abandoned shard can never be mistaken for a successful one. */
void
killRemaining(std::vector<LiveShard> &shards)
{
    for (auto &s : shards) {
        if (!s.running)
            continue;
        ::kill(-s.pid, SIGKILL);
        ::kill(s.pid, SIGKILL);
        if (!s.exited) {
            int st = 0;
            if (::waitpid(s.pid, &st, 0) == s.pid)
                s.status = st;
            s.exited = true;
            s.seconds = secondsSince(s.start);
        }
        s.aborted = true;
        if (s.outFd >= 0)
            ::close(s.outFd);
        if (s.progFd >= 0)
            ::close(s.progFd);
        s.outFd = s.progFd = -1;
        s.running = false;
    }
}

/** Indent a captured-output tail for failure reports. */
void
printOutputTail(const LiveShard &s)
{
    std::fprintf(stderr,
                 "--- shard %u captured output (last %zu bytes) ---\n",
                 s.index, s.outputTail.size());
    std::fwrite(s.outputTail.data(), 1, s.outputTail.size(), stderr);
    if (!s.outputTail.empty() && s.outputTail.back() != '\n')
        std::fputc('\n', stderr);
    std::fprintf(stderr, "--- end shard %u output ---\n", s.index);
}

void mergeVerifyAndGate(const DriverOptions &opts, const std::string &sdir,
                        DriverOutcome *outp);

bool runConnectFleet(const DriverOptions &opts, const std::string &sdir,
                     DriverOutcome *outp);

} // namespace

DriverOutcome
runSweepDriver(const DriverOptions &optsIn)
{
    DriverOutcome out;
    DriverOptions opts = optsIn;
    if (opts.shards == 0 || opts.shards > kMaxEnvThreads) {
        out.error = "invalid shard count " + std::to_string(opts.shards);
        return out;
    }
    if (opts.benchName.empty())
        opts.benchName = fs::path(opts.benchPath).filename().string();
    if (!validBenchName(opts.benchName)) {
        out.error = "cannot derive a bench name from '" + opts.benchPath +
                    "' (set benchName)";
        return out;
    }

    // Local direct-exec mode fails fast on a missing binary; launcher
    // and ssh commands can only be validated by running them, and in
    // --connect mode the positional argument is a registered bench
    // name the daemon resolves, not a local binary.
    if (opts.connectHosts.empty() && opts.launcher.empty() &&
        opts.sshHosts.empty()) {
        const std::string resolved = resolveBenchPath(opts.benchPath);
        std::error_code ec;
        if (resolved.find('/') != std::string::npos &&
            !fs::exists(resolved, ec)) {
            out.error = "bench binary '" + opts.benchPath + "' not found";
            return out;
        }
    }

    const std::string sdir = shardDirOf(opts);
    std::error_code ec;
    fs::create_directories(opts.run.artifactDir, ec);
    fs::create_directories(sdir, ec);
    if (ec) {
        out.error =
            "cannot create shard directory " + sdir + ": " + ec.message();
        return out;
    }
    // Stale artifacts from an earlier run (possibly with a different
    // shard count) would merge in or collide; the shard directory is
    // driver-owned, so clearing it is safe.
    try {
        for (const auto &e : fs::directory_iterator(sdir)) {
            if (e.is_regular_file() && e.path().extension() == ".json")
                fs::remove(e.path(), ec);
        }
    } catch (const fs::filesystem_error &fe) {
        out.error = std::string("cannot clean shard directory: ") +
                    fe.what();
        return out;
    }

    if (!opts.connectHosts.empty()) {
        // Daemon-backed mode: no child processes — each shard is a
        // SweepRequest against the standing fleet, and the returned
        // artifact bytes land in the same shard directory the
        // ephemeral path uses, so the merge/gate below is shared.
        SignalGuard signalGuard;
        if (!runConnectFleet(opts, sdir, &out))
            return out;
        mergeVerifyAndGate(opts, sdir, &out);
        return out;
    }

    const unsigned maxAttempts = opts.retries + 1;
    // From here on the driver owns child processes: catch SIGINT /
    // SIGTERM so an interrupted run kills and reaps its fleet instead
    // of orphaning shards that would keep writing artifacts.
    SignalGuard signalGuard;
    std::vector<LiveShard> shards(opts.shards);
    for (unsigned i = 0; i < opts.shards; ++i) {
        shards[i].index = i;
        std::string serr;
        if (!spawnShard(opts, shards[i], &serr)) {
            killRemaining(shards);
            out.error = "cannot launch shard " + std::to_string(i) + ": " +
                        serr;
            return out;
        }
    }
    std::fprintf(stderr,
                 "[conopt_sweep] launched %u shard%s of %s (artifacts in "
                 "%s)\n",
                 opts.shards, opts.shards == 1 ? "" : "s",
                 opts.benchName.c_str(), sdir.c_str());

    size_t live = shards.size();
    auto lastRender = Clock::now();
    bool progressDirty = false;
    std::string abortReason;
    while (live > 0) {
        if (gDriverInterrupted && abortReason.empty()) {
            abortReason = "interrupted; fleet killed";
            std::fprintf(stderr,
                         "[conopt_sweep] interrupted; killing %zu "
                         "running shard(s)\n",
                         live);
            killRemaining(shards);
            break;
        }
        std::vector<pollfd> pfds;
        std::vector<std::pair<size_t, bool>> who; // shard slot, isProgress
        for (size_t si = 0; si < shards.size(); ++si) {
            const auto &s = shards[si];
            if (!s.running)
                continue;
            if (s.outFd >= 0) {
                pfds.push_back({s.outFd, POLLIN, 0});
                who.emplace_back(si, false);
            }
            if (s.progFd >= 0) {
                pfds.push_back({s.progFd, POLLIN, 0});
                who.emplace_back(si, true);
            }
        }
        if (!pfds.empty()) {
            const int pr = ::poll(pfds.data(), nfds_t(pfds.size()),
                                  kPollMillis);
            if (pr < 0 && errno != EINTR) {
                // A broken event loop cannot supervise the fleet:
                // kill and reap everything (recorded as aborted, so
                // no half-finished shard masquerades as success).
                abortReason = std::string("poll failed: ") +
                              std::strerror(errno) + "; fleet killed";
                killRemaining(shards);
                break;
            }
            for (size_t k = 0; pr > 0 && k < pfds.size(); ++k) {
                if (!(pfds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                auto &s = shards[who[k].first];
                const bool progress = who[k].second;
                const bool had = s.haveProgress;
                const size_t hadDone = s.progress.done;
                drainFd(s, progress ? s.progFd : s.outFd, progress);
                if (progress &&
                    (s.haveProgress != had || s.progress.done != hadDone))
                    progressDirty = true;
            }
        } else {
            // All pipes are closed but a process is still unreaped.
            ::poll(nullptr, 0, kPollMillis);
        }

        for (auto &s : shards) {
            if (!s.running)
                continue;
            if (!s.exited) {
                int st = 0;
                const pid_t r = ::waitpid(s.pid, &st, WNOHANG);
                if (r == s.pid) {
                    s.exited = true;
                    s.status = st;
                    s.seconds = secondsSince(s.start);
                    s.exitTime = Clock::now();
                }
            }
            if (!s.exited && !s.timedOut && opts.timeoutSeconds > 0.0 &&
                secondsSince(s.start) > opts.timeoutSeconds) {
                s.timedOut = true;
                std::fprintf(stderr,
                             "[conopt_sweep] shard %u/%u timed out after "
                             "%.1fs; killing\n",
                             s.index, opts.shards, opts.timeoutSeconds);
                ::kill(-s.pid, SIGKILL);
                ::kill(s.pid, SIGKILL);
            }
            if (s.exited && (s.outFd >= 0 || s.progFd >= 0) &&
                secondsSince(s.exitTime) > kExitDrainGraceSeconds) {
                // The shard itself is gone but a descendant still
                // holds the pipe write ends (daemonized helper,
                // backgrounded wrapper). Kill the stragglers, take
                // any last buffered bytes, and finalize on the
                // shard's own exit status — a leaked fd must never
                // hang the fleet or defeat the timeout.
                ::kill(-s.pid, SIGKILL);
                if (s.outFd >= 0)
                    drainFd(s, s.outFd, false);
                if (s.progFd >= 0)
                    drainFd(s, s.progFd, true);
                if (s.outFd >= 0)
                    ::close(s.outFd);
                if (s.progFd >= 0)
                    ::close(s.progFd);
                s.outFd = s.progFd = -1;
            }
            if (s.exited && s.outFd < 0 && s.progFd < 0) {
                s.running = false;
                --live;
                if (s.okNow()) {
                    std::fprintf(stderr,
                                 "[conopt_sweep] shard %u/%u: ok in %.1fs "
                                 "(attempt %u)\n",
                                 s.index, opts.shards, s.seconds,
                                 s.attempts);
                } else if (s.attempts < maxAttempts) {
                    std::fprintf(
                        stderr,
                        "[conopt_sweep] shard %u/%u attempt %u failed "
                        "(%s); retrying (%u attempt%s left)\n",
                        s.index, opts.shards, s.attempts,
                        s.describeStatus().c_str(),
                        maxAttempts - s.attempts,
                        maxAttempts - s.attempts == 1 ? "" : "s");
                    // A partial artifact from the failed attempt must
                    // not survive into the merge.
                    fs::remove(fs::path(sdir) /
                                   shardArtifactName(opts.benchName,
                                                     s.index, opts.shards),
                               ec);
                    std::string serr;
                    if (spawnShard(opts, s, &serr)) {
                        ++live;
                    } else {
                        std::fprintf(stderr,
                                     "[conopt_sweep] shard %u/%u: respawn "
                                     "failed: %s\n",
                                     s.index, opts.shards, serr.c_str());
                    }
                }
            }
        }

        if (progressDirty &&
            secondsSince(lastRender) >= kRenderIntervalSeconds) {
            renderProgress(shards);
            lastRender = Clock::now();
            progressDirty = false;
        }
    }

    // An interrupt that landed after the last finalize (the loop only
    // checks the flag at its top) must still abort before merging.
    if (gDriverInterrupted && abortReason.empty())
        abortReason = "interrupted; not merging";

    // Collect final outcomes; any shard that never exited 0 is a hard
    // failure with its captured output surfaced.
    unsigned failures = 0;
    for (const auto &s : shards) {
        ShardOutcome so;
        so.index = s.index;
        so.attempts = s.attempts;
        so.ok = s.okNow();
        so.timedOut = s.timedOut;
        so.exitStatus = WIFEXITED(s.status) ? WEXITSTATUS(s.status)
                        : WIFSIGNALED(s.status) ? -WTERMSIG(s.status)
                                                : -1;
        so.seconds = s.seconds;
        so.outputTail = s.outputTail;
        so.progressLines = s.progressLines;
        if (!so.ok) {
            ++failures;
            std::fprintf(stderr,
                         "[conopt_sweep] shard %u/%u FAILED after %u "
                         "attempt%s (%s)\n",
                         s.index, opts.shards, s.attempts,
                         s.attempts == 1 ? "" : "s",
                         s.describeStatus().c_str());
            printOutputTail(s);
        }
        out.shards.push_back(std::move(so));
    }
    if (!abortReason.empty()) {
        out.error = abortReason;
        out.exitCode = 2;
        return out;
    }
    if (failures > 0) {
        out.error = std::to_string(failures) + " of " +
                    std::to_string(opts.shards) +
                    " shard(s) failed; not merging";
        out.exitCode = 2;
        return out;
    }

    mergeVerifyAndGate(opts, sdir, &out);
    return out;
}

// --------------------------------------------------------------------------
// Connect-mode scheduling (--connect)
// --------------------------------------------------------------------------

bool
parseHealthzQueueDepth(const std::string &json, uint64_t *depth)
{
    static constexpr char key[] = "\"queue_depth\":";
    const size_t pos = json.find(key);
    if (pos == std::string::npos)
        return false;
    size_t i = pos + sizeof(key) - 1;
    while (i < json.size() &&
           std::isspace(static_cast<unsigned char>(json[i])))
        ++i;
    if (i >= json.size() ||
        !std::isdigit(static_cast<unsigned char>(json[i])))
        return false;
    uint64_t v = 0;
    for (; i < json.size() &&
           std::isdigit(static_cast<unsigned char>(json[i]));
         ++i)
        v = v * 10 + uint64_t(json[i] - '0');
    *depth = v;
    return true;
}

size_t
pickConnectEndpoint(const std::vector<std::string> &endpoints,
                    size_t rotation, const HealthzProbeFn &probe)
{
    const size_t n = endpoints.size();
    size_t best = rotation % n;
    uint64_t bestDepth = UINT64_MAX;
    bool anyProbed = false;
    // Rotation-order walk: the first endpoint probed is the one blind
    // round-robin would have picked, and only a STRICTLY smaller depth
    // displaces it, so equal-depth fleets and all-probe-failure both
    // reproduce the historical schedule exactly.
    for (size_t i = 0; i < n; ++i) {
        const size_t idx = (rotation + i) % n;
        uint64_t d = 0;
        if (!probe(endpoints[idx], &d))
            continue;
        if (!anyProbed || d < bestDepth) {
            anyProbed = true;
            bestDepth = d;
            best = idx;
        }
    }
    return best;
}

namespace {

/** The shared back half of both driver modes (ephemeral shards and
 *  --connect): verify every expected shard artifact exists, merge the
 *  shard directory, recompute the deferred figure geomeans, save the
 *  merged artifact, and gate it against the baseline. Fills
 *  out->exitCode/error/mergedArtifactPath/gateDiffs. */
void
mergeVerifyAndGate(const DriverOptions &opts, const std::string &sdir,
                   DriverOutcome *outp)
{
    DriverOutcome &out = *outp;
    std::error_code ec;
    // Every shard claims success: verify each expected artifact really
    // exists, so a shard that "succeeded" without writing its file can
    // never produce a silently thinner merged artifact.
    std::string missing;
    for (unsigned i = 0; i < opts.shards; ++i) {
        const auto p = fs::path(sdir) /
                       shardArtifactName(opts.benchName, i, opts.shards);
        if (!fs::exists(p, ec)) {
            if (!missing.empty())
                missing += ", ";
            missing += p.string();
        }
    }
    if (!missing.empty()) {
        out.error = "shard artifact(s) missing after successful shard "
                    "exit: " +
                    missing;
        return;
    }

    BenchArtifact merged;
    std::string err;
    if (!loadArtifactOrShards(sdir, &merged, &err)) {
        out.error = "cannot merge shard artifacts: " + err;
        return;
    }
    if (merged.jobs.empty()) {
        out.error = "merged artifact has zero jobs: nothing was swept";
        return;
    }
    merged.sortJobsByLabel();

    // Resolve and load the baseline before any geomean recompute so
    // the recomputed columns can mirror the baseline's exactly (the
    // conopt_bench_check contract).
    BenchArtifact baseline;
    bool haveBaseline = false;
    std::string basePath = opts.run.baselinePath;
    if (!basePath.empty() && fs::is_directory(basePath, ec)) {
        basePath = (fs::path(basePath) /
                    ("BENCH_" + opts.benchName + ".json"))
                       .string();
        if (!fs::exists(basePath, ec)) {
            std::fprintf(stderr,
                         "[conopt_sweep] no baseline for %s in %s; gate "
                         "skipped\n",
                         opts.benchName.c_str(),
                         opts.run.baselinePath.c_str());
            basePath.clear();
        }
    }
    if (!basePath.empty()) {
        if (!loadArtifact(basePath, &baseline, &err)) {
            out.error = "cannot load baseline: " + err;
            return;
        }
        haveBaseline = true;
    }

    if (!opts.geomeanBase.empty()) {
        std::vector<std::string> cols;
        if (haveBaseline) {
            for (const auto &[k, v] : baseline.geomeans) {
                (void)v;
                cols.push_back(k);
            }
        } else {
            std::set<std::string> configs;
            for (const auto &j : merged.jobs)
                if (!j.config.empty() && j.config != opts.geomeanBase)
                    configs.insert(j.config);
            cols.assign(configs.begin(), configs.end());
        }
        merged.geomeans.clear();
        merged.addGeomeansFromJobs(opts.geomeanBase, cols);
    }

    const std::string mergedPath =
        (fs::path(opts.run.artifactDir) / ("BENCH_" + opts.benchName + ".json"))
            .string();
    if (!merged.save(mergedPath, &err)) {
        out.error = "cannot write merged artifact: " + err;
        return;
    }
    out.mergedArtifactPath = mergedPath;
    std::fprintf(stderr,
                 "[conopt_sweep] merged %u shard artifact%s -> %s (%zu "
                 "jobs, %zu geomeans)\n",
                 opts.shards, opts.shards == 1 ? "" : "s",
                 mergedPath.c_str(), merged.jobs.size(),
                 merged.geomeans.size());

    // Last interrupt window: a Ctrl-C during the merge itself must
    // not be swallowed into a clean exit 0 / gate verdict.
    if (gDriverInterrupted) {
        out.error = "interrupted during merge";
        out.exitCode = 2;
        return;
    }
    if (!haveBaseline) {
        out.exitCode = 0;
        return;
    }
    const auto cmp = compareArtifacts(baseline, merged, {opts.run.tolerance});
    if (!cmp.ok) {
        std::fprintf(stderr,
                     "[conopt_sweep] BASELINE DRIFT vs %s (%zu "
                     "difference%s, tolerance %g):\n",
                     basePath.c_str(), cmp.diffs.size(),
                     cmp.diffs.size() == 1 ? "" : "s", opts.run.tolerance);
        for (const auto &d : cmp.diffs)
            std::fprintf(stderr, "  %s\n", d.c_str());
        out.gateDiffs = cmp.diffs;
        out.exitCode = 1;
        return;
    }
    std::fprintf(stderr,
                 "[conopt_sweep] merged artifact matches baseline %s "
                 "(tolerance %g)\n",
                 basePath.c_str(), opts.run.tolerance);
    out.exitCode = 0;
}

// --------------------------------------------------------------------------
// --connect: daemon-backed shards
// --------------------------------------------------------------------------

/** Mutable state of one daemon-backed shard request: the --connect
 *  analogue of LiveShard (no pid/fds — the "process" is a standing
 *  daemon on the other end of a socket). */
struct ConnectShard
{
    unsigned index = 0;
    unsigned attempts = 0;
    bool ok = false;
    bool aborted = false;   ///< interrupted; never counts as ok
    std::string error;      ///< last attempt's failure, for the report
    double seconds = 0.0;   ///< last attempt's wall-clock duration
    size_t progressLines = 0;
    bool haveProgress = false;
    SweepProgress progress;
    std::mutex mu; ///< guards progress/haveProgress/progressLines
    std::atomic<bool> done{false};
};

/** One request against one endpoint: connect, send, stream progress,
 *  persist the returned artifact bytes verbatim to @p artPath (the
 *  daemon sends BenchArtifact::toJson() text, so the written file is
 *  byte-identical to what an ephemeral shard's save() produces).
 *  False with @p failMsg on anything short of a written artifact. */
bool
connectAttempt(const DriverOptions &opts, const SweepRequest &req,
               const std::string &endpoint, const std::string &artPath,
               ConnectShard &cs, std::string *failMsg)
{
    std::string err;
    const int fd = connectToService(endpoint, &err);
    if (fd < 0) {
        *failMsg = err;
        return false;
    }
    if (!writeFrame(fd, makeRunFrame(req), &err)) {
        ::close(fd);
        *failMsg = endpoint + ": " + err;
        return false;
    }
    FrameReader rd;
    const auto start = Clock::now();
    bool ok = false;
    bool terminal = false;
    while (!terminal) {
        if (gDriverInterrupted) {
            *failMsg = "interrupted";
            cs.aborted = true;
            break;
        }
        if (opts.timeoutSeconds > 0.0 &&
            secondsSince(start) > opts.timeoutSeconds) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "timed out after %.1fs",
                          opts.timeoutSeconds);
            *failMsg = endpoint + ": " + buf;
            break;
        }
        // Bounded poll slices keep the interrupt flag and the
        // per-attempt deadline live while waiting on the daemon.
        pollfd pfd{fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, kPollMillis);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            *failMsg = endpoint + ": poll: " + std::strerror(errno);
            break;
        }
        if (pr == 0)
            continue;
        char buf[4096];
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            *failMsg = endpoint + ": read: " + std::strerror(errno);
            break;
        }
        if (n == 0) {
            *failMsg = endpoint + ": connection closed before a result";
            break;
        }
        rd.feed(buf, size_t(n));
        for (;;) {
            std::string payload, perr;
            const int got = rd.next(&payload, &perr);
            if (got == 0)
                break;
            if (got < 0) {
                *failMsg = endpoint + ": " + perr;
                terminal = true;
                break;
            }
            ServerFrame f;
            if (!parseServerFrame(payload, &f, &perr)) {
                *failMsg = endpoint + ": " + perr;
                terminal = true;
                break;
            }
            if (f.type == ServerFrame::Type::Progress) {
                SweepProgress p;
                if (parseProgressLine(f.line, &p)) {
                    std::lock_guard<std::mutex> lk(cs.mu);
                    cs.progress = std::move(p);
                    cs.haveProgress = true;
                    ++cs.progressLines;
                }
                // Non-protocol progress lines are ignored, like the
                // ephemeral path's progress-fd parser.
            } else if (f.type == ServerFrame::Type::Result) {
                std::FILE *af = std::fopen(artPath.c_str(), "w");
                if (!af) {
                    *failMsg = "cannot write " + artPath + ": " +
                               std::strerror(errno);
                } else {
                    std::fwrite(f.artifact.data(), 1, f.artifact.size(),
                                af);
                    if (std::fclose(af) == 0)
                        ok = true;
                    else
                        *failMsg = "cannot write " + artPath;
                }
                terminal = true;
            } else if (f.type == ServerFrame::Type::Error) {
                *failMsg = endpoint + ": daemon error (code " +
                           std::to_string(f.code) + "): " + f.message;
                terminal = true;
            }
            // A healthz frame mid-run would be a daemon bug; skip it.
            if (terminal)
                break;
        }
    }
    ::close(fd);
    cs.seconds = secondsSince(start);
    return ok;
}

/** Real healthz probe of one endpoint: connect, send a healthz frame,
 *  and extract queue_depth from the reply. Bounded by a short timeout
 *  so a wedged daemon costs the scheduler ~2s, never a full attempt;
 *  any failure just reports the endpoint as unprobeable (the picker
 *  then treats it as infinitely busy). */
bool
probeEndpointQueueDepth(const std::string &endpoint, uint64_t *depth)
{
    constexpr double kHealthzTimeoutSeconds = 2.0;
    std::string err;
    const int fd = connectToService(endpoint, &err);
    if (fd < 0)
        return false;
    bool ok = false;
    std::string payload;
    FrameReader rd;
    if (writeFrame(fd, makeHealthzFrame(), &err) &&
        readFrame(fd, &rd, &payload, kHealthzTimeoutSeconds, &err)) {
        ServerFrame f;
        std::string perr;
        if (parseServerFrame(payload, &f, &perr) &&
            f.type == ServerFrame::Type::Healthz)
            ok = parseHealthzQueueDepth(f.body, depth);
    }
    ::close(fd);
    return ok;
}

/** One shard's full retry loop against the fleet (runs on its own
 *  thread). Each attempt asks every daemon's healthz for its queue
 *  depth and targets the least-loaded one; ties, single-endpoint
 *  fleets, and probe failures fall back to the historical rotation
 *  (index + attempt), so a dead daemon only costs its shards one
 *  attempt each. */
void
runConnectShard(const DriverOptions &opts, const SweepRequest &base,
                const std::string &sdir, ConnectShard &cs)
{
    const unsigned maxAttempts = opts.retries + 1;
    SweepRequest req = base;
    req.run.shard.index = cs.index;
    req.run.shard.count = opts.shards;
    const std::string artPath =
        (fs::path(sdir) /
         shardArtifactName(opts.benchName, cs.index, opts.shards))
            .string();
    while (cs.attempts < maxAttempts && !cs.ok && !cs.aborted) {
        if (gDriverInterrupted) {
            cs.aborted = true;
            break;
        }
        // Load-aware pick; with one endpoint there is nothing to
        // choose, so skip the probe round-trip entirely.
        const size_t rotation = cs.index + cs.attempts;
        const size_t slot =
            opts.connectHosts.size() == 1
                ? 0
                : pickConnectEndpoint(opts.connectHosts, rotation,
                                      probeEndpointQueueDepth);
        const std::string &endpoint = opts.connectHosts[slot];
        ++cs.attempts;
        std::string failMsg;
        if (connectAttempt(opts, req, endpoint, artPath, cs, &failMsg)) {
            cs.ok = true;
            std::fprintf(stderr,
                         "[conopt_sweep] shard %u/%u: ok in %.1fs "
                         "(attempt %u, %s)\n",
                         cs.index, opts.shards, cs.seconds, cs.attempts,
                         endpoint.c_str());
            break;
        }
        cs.error = failMsg;
        if (cs.aborted)
            break;
        {
            // A retry starts from zero, like a respawned shard.
            std::lock_guard<std::mutex> lk(cs.mu);
            cs.haveProgress = false;
            cs.progress = SweepProgress{};
        }
        std::error_code ec;
        fs::remove(artPath, ec);
        if (cs.attempts < maxAttempts)
            std::fprintf(
                stderr,
                "[conopt_sweep] shard %u/%u attempt %u failed (%s); "
                "retrying (%u attempt%s left)\n",
                cs.index, opts.shards, cs.attempts, failMsg.c_str(),
                maxAttempts - cs.attempts,
                maxAttempts - cs.attempts == 1 ? "" : "s");
    }
    cs.done.store(true);
}

/** Aggregate progress line for the connect fleet, through the same
 *  renderer as the ephemeral path. */
void
renderConnectProgress(
    const std::vector<std::unique_ptr<ConnectShard>> &shards)
{
    std::vector<LiveShard> snap(shards.size());
    for (size_t i = 0; i < shards.size(); ++i) {
        std::lock_guard<std::mutex> lk(shards[i]->mu);
        snap[i].index = shards[i]->index;
        snap[i].haveProgress = shards[i]->haveProgress;
        snap[i].progress = shards[i]->progress;
    }
    renderProgress(snap);
}

/** The --connect engine: dispatch every shard as a SweepRequest to
 *  the standing fleet and collect the artifacts into @p sdir. True
 *  when every shard succeeded (the caller then merges and gates);
 *  false with out->error/exitCode/shards filled. */
bool
runConnectFleet(const DriverOptions &opts, const std::string &sdir,
                DriverOutcome *outp)
{
    DriverOutcome &out = *outp;
    // The bench's `-- args` parse exactly as an ephemeral shard would
    // parse them (same flags, same CONOPT_* environment, same exit-2
    // contract), so a daemon-backed run describes the same work.
    const HarnessOptions hopts = HarnessOptions::parseArgs(opts.benchArgs);
    SweepRequest base;
    base.bench = opts.benchName;
    base.run = hopts.run;
    // Capture this client's environment into the wire request: the
    // daemon must reproduce the client's run, never its own
    // environment.
    if (base.run.scale == 0)
        base.run.scale = envScale();
    if (base.run.threads == 0)
        base.run.threads = envThreads();
    // The daemon never touches client paths; the artifact comes back
    // as bytes and the gate runs client-side after the merge.
    base.run.artifactDir.clear();
    base.run.baselinePath.clear();
    base.run.resultCacheDir.clear();
    base.run.emitArtifact = true;

    std::vector<std::unique_ptr<ConnectShard>> shards;
    shards.reserve(opts.shards);
    for (unsigned i = 0; i < opts.shards; ++i) {
        shards.push_back(std::make_unique<ConnectShard>());
        shards.back()->index = i;
    }
    std::fprintf(stderr,
                 "[conopt_sweep] dispatching %u shard%s of %s to %zu "
                 "endpoint%s (artifacts in %s)\n",
                 opts.shards, opts.shards == 1 ? "" : "s",
                 opts.benchName.c_str(), opts.connectHosts.size(),
                 opts.connectHosts.size() == 1 ? "" : "s",
                 sdir.c_str());
    std::vector<std::thread> threads;
    threads.reserve(opts.shards);
    for (auto &cs : shards)
        threads.emplace_back([&opts, &base, &sdir, &cs] {
            runConnectShard(opts, base, sdir, *cs);
        });

    auto lastRender = Clock::now();
    for (;;) {
        bool allDone = true;
        for (const auto &cs : shards)
            if (!cs->done.load()) {
                allDone = false;
                break;
            }
        if (allDone)
            break;
        ::poll(nullptr, 0, kPollMillis);
        if (opts.streamProgress &&
            secondsSince(lastRender) >= kRenderIntervalSeconds) {
            renderConnectProgress(shards);
            lastRender = Clock::now();
        }
    }
    for (auto &t : threads)
        t.join();

    unsigned failures = 0;
    for (const auto &csp : shards) {
        const ConnectShard &cs = *csp;
        ShardOutcome so;
        so.index = cs.index;
        so.attempts = cs.attempts;
        so.ok = cs.ok && !cs.aborted;
        so.exitStatus = so.ok ? 0 : 2;
        so.seconds = cs.seconds;
        so.outputTail = cs.error;
        so.progressLines = cs.progressLines;
        if (!so.ok) {
            ++failures;
            std::fprintf(stderr,
                         "[conopt_sweep] shard %u/%u FAILED after %u "
                         "attempt%s (%s)\n",
                         cs.index, opts.shards, cs.attempts,
                         cs.attempts == 1 ? "" : "s",
                         cs.error.c_str());
        }
        out.shards.push_back(std::move(so));
    }
    if (gDriverInterrupted) {
        out.error = "interrupted; not merging";
        out.exitCode = 2;
        return false;
    }
    if (failures > 0) {
        out.error = std::to_string(failures) + " of " +
                    std::to_string(opts.shards) +
                    " shard(s) failed; not merging";
        out.exitCode = 2;
        return false;
    }
    return true;
}

} // namespace


// --------------------------------------------------------------------------
// CLI
// --------------------------------------------------------------------------

namespace {

constexpr const char *kUsage =
    "usage: conopt_sweep [options] <bench> [-- <bench args...>]\n"
    "  Launches <bench> as N shard processes (--shard i/n), streams\n"
    "  their progress, waits with per-shard timeout and bounded retry,\n"
    "  merges the per-shard BENCH artifacts, optionally recomputes the\n"
    "  deferred figure geomeans, and gates the merged artifact against\n"
    "  a baseline.\n"
    "options:\n"
    "  --shards N              shard process count (default 2)\n"
    "  --bench-name NAME       artifact name (default: basename of "
    "<bench>)\n"
    "  --artifact-dir DIR      merged artifact directory; shards write\n"
    "                          to DIR/<name>.shards/ (default .)\n"
    "  --result-cache DIR      forward --result-cache DIR to every "
    "shard\n"
    "  --baseline PATH         gate the merged artifact (file or\n"
    "                          baseline directory)\n"
    "  --tolerance T           gate tolerance (default 0: exact)\n"
    "  --recompute-geomeans B  rebuild the merged figure geomeans over\n"
    "                          base config B (needed for figure "
    "benches)\n"
    "  --timeout SECONDS       per-shard-attempt timeout (default: "
    "none)\n"
    "  --retries K             extra attempts per failed shard "
    "(default 1)\n"
    "  --launcher TMPL         wrap shard commands; {i} {n} {cmd} "
    "{host}\n"
    "                          placeholders ({cmd} appended if absent;\n"
    "                          {host} rotates over the --ssh list)\n"
    "  --ssh H1,H2,...         run shards round-robin over ssh hosts\n"
    "                          (assumes a shared filesystem; with\n"
    "                          --launcher, only supplies {host})\n"
    "  --connect A1,A2,...     send shards to standing conopt_served\n"
    "                          daemons (host:port or unix:PATH) instead\n"
    "                          of spawning processes; <bench> is then a\n"
    "                          registered bench name (see README\n"
    "                          \"Standing fleet\")\n"
    "  --no-progress           do not stream per-shard progress/ETA\n"
    "exit status: 0 merged artifact ok, 1 baseline drift, 2 error\n";

} // namespace

int
sweepDriverMain(const std::vector<std::string> &args)
{
    for (const auto &a : args) {
        if (a == "--help" || a == "-h") {
            // conopt-lint: allow(stray-output) --help goes to stdout
            std::fputs(kUsage, stdout);
            return 0;
        }
    }
    DriverOptions opts;
    std::string err;
    if (!parseDriverArgs(args, &opts, &err)) {
        std::fprintf(stderr, "conopt_sweep: %s\n%s", err.c_str(), kUsage);
        return 2;
    }
    const auto out = runSweepDriver(opts);
    if (out.exitCode == 2 && !out.error.empty())
        std::fprintf(stderr, "conopt_sweep: %s\n", out.error.c_str());
    return out.exitCode;
}

} // namespace conopt::sim
