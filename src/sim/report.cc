#include "src/sim/report.hh"

#include <algorithm>
#include <cinttypes>
#include <set>

#include "src/pipeline/stats_aggregate.hh"

namespace conopt::sim {

void
printHeader(const char *title, std::FILE *out)
{
    std::fprintf(out, "\n=== %s ===\n", title);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

namespace {

/** (workload, suite) pairs in job submission order, deduplicated. */
std::vector<std::pair<std::string, std::string>>
workloadRows(const SweepResult &res)
{
    std::vector<std::pair<std::string, std::string>> rows;
    std::set<std::string> seen;
    for (const auto &r : res.all()) {
        if (!r.job.workload.empty() &&
            seen.insert(r.job.workload).second)
            rows.emplace_back(r.job.workload, r.suite);
    }
    return rows;
}

/** Suite names in first-seen order. */
std::vector<std::string>
suiteRows(const std::vector<std::pair<std::string, std::string>> &wls)
{
    std::vector<std::string> suites;
    for (const auto &[w, s] : wls) {
        if (std::find(suites.begin(), suites.end(), s) == suites.end())
            suites.push_back(s);
    }
    return suites;
}

} // namespace

std::vector<double>
groupSpeedups(const SweepResult &res,
              const std::vector<std::string> &group,
              const std::string &config, const std::string &base)
{
    std::vector<double> v;
    for (const auto &w : group) {
        const auto *b = res.find(SweepSpec::labelFor(w, base));
        const auto *o = res.find(SweepSpec::labelFor(w, config));
        // Skip the cell when either side has zero cycles: one
        // degenerate job must not collapse the whole geomean to 0.
        if (b && o && b->sim.stats.cycles && o->sim.stats.cycles)
            v.push_back(double(b->sim.stats.cycles) /
                        double(o->sim.stats.cycles));
    }
    return v;
}

// --------------------------------------------------------------------------
// TableReporter
// --------------------------------------------------------------------------

void
TableReporter::report(const SweepResult &res, std::FILE *out) const
{
    if (!opts_.title.empty())
        printHeader(opts_.title.c_str(), out);

    const auto wls = workloadRows(res);
    const int w = int(opts_.colWidth);

    const auto printRow = [&](const char *fmt, const std::string &name,
                              const std::vector<std::string> &group) {
        std::fprintf(out, fmt, name.c_str());
        for (const auto &cfg : opts_.configs) {
            const auto v = groupSpeedups(res, group, cfg,
                                         opts_.baselineConfig);
            std::fprintf(out, " %*.3f", w, pipeline::geomean(v));
        }
        std::fprintf(out, "\n");
    };

    switch (opts_.rows) {
      case TableOptions::Rows::PerSuite: {
        std::fprintf(out, "%-12s", "Suite");
        for (const auto &cfg : opts_.configs)
            std::fprintf(out, " %*s", w, cfg.c_str());
        std::fprintf(out, "\n");
        for (const auto &suite : suiteRows(wls)) {
            std::vector<std::string> group;
            for (const auto &[wl, s] : wls)
                if (s == suite)
                    group.push_back(wl);
            printRow("%-12s", suite, group);
        }
        break;
      }
      case TableOptions::Rows::PerWorkloadBySuite: {
        for (const auto &suite : suiteRows(wls)) {
            std::fprintf(out, "\n[%s]\n", suite.c_str());
            if (opts_.configs.size() > 1) {
                std::fprintf(out, "  %-7s", "");
                for (const auto &cfg : opts_.configs)
                    std::fprintf(out, " %*s", w, cfg.c_str());
                std::fprintf(out, "\n");
            }
            std::vector<std::string> group;
            for (const auto &[wl, s] : wls) {
                if (s != suite)
                    continue;
                group.push_back(wl);
                printRow("  %-7s", wl, {wl});
            }
            std::fprintf(out, "  %-7s", "avg");
            for (const auto &cfg : opts_.configs) {
                const auto v = groupSpeedups(res, group, cfg,
                                             opts_.baselineConfig);
                std::fprintf(out, " %*.3f", w, pipeline::geomean(v));
            }
            std::fprintf(out, " (geometric mean)\n");
        }
        break;
      }
      case TableOptions::Rows::AllWorkloads: {
        std::vector<std::string> group;
        for (const auto &[wl, s] : wls)
            group.push_back(wl);
        std::fprintf(out, "%-12s", "");
        for (const auto &cfg : opts_.configs)
            std::fprintf(out, " %*s", w, cfg.c_str());
        std::fprintf(out, "\n");
        printRow("%-12s", "all", group);
        break;
      }
    }
}

// --------------------------------------------------------------------------
// EffectsReporter
// --------------------------------------------------------------------------

void
EffectsReporter::report(const SweepResult &res, std::FILE *out) const
{
    const auto wls = workloadRows(res);
    std::fprintf(out, "%-12s %12s %18s %16s %12s\n", "Benchmark",
                 "exec. early", "recov. mispred.", "ld/st addr. gen",
                 "lds removed");

    std::vector<double> all_early, all_recov, all_addr, all_lds;
    const auto row = [&](const std::string &name,
                         const std::vector<double> &early,
                         const std::vector<double> &recov,
                         const std::vector<double> &addr,
                         const std::vector<double> &lds) {
        std::fprintf(out, "%-12s %11.1f%% %17.1f%% %15.1f%% %11.1f%%\n",
                     name.c_str(), 100 * pipeline::mean(early),
                     100 * pipeline::mean(recov),
                     100 * pipeline::mean(addr),
                     100 * pipeline::mean(lds));
    };

    for (const auto &suite : suiteRows(wls)) {
        std::vector<double> early, recov, addr, lds;
        for (const auto &[wl, s] : wls) {
            if (s != suite)
                continue;
            const auto *r = res.find(SweepSpec::labelFor(wl, config_));
            if (!r)
                continue;
            early.push_back(r->sim.stats.execEarlyFrac());
            recov.push_back(r->sim.stats.recoveredMispredFrac());
            addr.push_back(r->sim.stats.addrGenFrac());
            lds.push_back(r->sim.stats.loadsRemovedFrac());
        }
        row(suite, early, recov, addr, lds);
        all_early.insert(all_early.end(), early.begin(), early.end());
        all_recov.insert(all_recov.end(), recov.begin(), recov.end());
        all_addr.insert(all_addr.end(), addr.begin(), addr.end());
        all_lds.insert(all_lds.end(), lds.begin(), lds.end());
    }
    row("avg", all_early, all_recov, all_addr, all_lds);
}

// --------------------------------------------------------------------------
// DetailReporter
// --------------------------------------------------------------------------

void
DetailReporter::reportJob(const JobResult &r, std::FILE *out)
{
    const auto &s = r.sim.stats;
    std::fprintf(out, "  instructions        %" PRIu64 "\n",
                 r.sim.instructions);
    std::fprintf(out, "  cycles              %" PRIu64 "\n", s.cycles);
    std::fprintf(out, "  IPC                 %.3f\n", s.ipc());
    std::fprintf(out,
                 "  branches            %" PRIu64 " (mispredicted %" PRIu64
                 ", resteers %" PRIu64 ")\n",
                 s.branches, s.mispredicted, s.btbResteers);
    std::fprintf(out,
                 "  loads / stores      %" PRIu64 " / %" PRIu64
                 " (DL1 miss %" PRIu64 ", LSQ fwd %" PRIu64 ")\n",
                 s.loads, s.stores, s.dl1Misses,
                 s.loadsForwardedFromStoreQ);
    std::fprintf(out, "  exec early          %.1f%%\n",
                 100 * s.execEarlyFrac());
    std::fprintf(out, "  recov. mispred.     %.1f%%\n",
                 100 * s.recoveredMispredFrac());
    std::fprintf(out, "  ld/st addr gen      %.1f%%\n",
                 100 * s.addrGenFrac());
    std::fprintf(out,
                 "  loads removed       %.1f%% (synthesized %" PRIu64
                 ", misspec %" PRIu64 ")\n",
                 100 * s.loadsRemovedFrac(), s.opt.loadsSynthesized,
                 s.opt.mbcMisspecs);
    std::fprintf(out, "  moves eliminated    %" PRIu64 "\n",
                 s.opt.movesEliminated);
    std::fprintf(out,
                 "  stall cycles        mispred %" PRIu64
                 ", icache %" PRIu64 ", sched %" PRIu64 ", rob %" PRIu64
                 "\n",
                 s.fetchStallMispredict, s.fetchStallIcache,
                 s.dispatchStallSched, s.renameStallRob);
}

void
DetailReporter::report(const SweepResult &res, std::FILE *out) const
{
    for (const auto &r : res.all()) {
        std::fprintf(out, "== %s ==\n", r.job.label.c_str());
        reportJob(r, out);
        std::fprintf(out, "\n");
    }
}

// --------------------------------------------------------------------------
// CsvReporter
// --------------------------------------------------------------------------

void
CsvReporter::report(const SweepResult &res, std::FILE *out) const
{
    std::fprintf(out,
                 "label,workload,suite,config,scale,seed,instructions,"
                 "cycles,ipc,exec_early,recov_mispred,addr_gen,"
                 "lds_removed,mbc_misspecs,host_seconds\n");
    for (const auto &r : res.all()) {
        const auto &s = r.sim.stats;
        std::fprintf(out,
                     "%s,%s,%s,%s,%u,%" PRIu64 ",%" PRIu64 ",%" PRIu64
                     ",%.4f,%.4f,%.4f,%.4f,%.4f,%" PRIu64 ",%.4f\n",
                     csvField(r.job.label).c_str(),
                     csvField(r.job.workload).c_str(),
                     csvField(r.suite).c_str(),
                     csvField(r.job.configName).c_str(),
                     r.job.scale, r.job.seed, r.sim.instructions,
                     s.cycles, s.ipc(), s.execEarlyFrac(),
                     s.recoveredMispredFrac(), s.addrGenFrac(),
                     s.loadsRemovedFrac(), s.opt.mbcMisspecs,
                     r.hostSeconds);
    }
}

// --------------------------------------------------------------------------
// JsonReporter
// --------------------------------------------------------------------------

void
JsonReporter::report(const SweepResult &res, std::FILE *out) const
{
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < res.all().size(); ++i) {
        const auto &r = res.all()[i];
        const auto &s = r.sim.stats;
        std::fprintf(out,
                     "  {\"label\": \"%s\", \"workload\": \"%s\", "
                     "\"suite\": \"%s\", \"config\": \"%s\", "
                     "\"scale\": %u, \"seed\": %" PRIu64 ",\n",
                     jsonEscape(r.job.label).c_str(),
                     jsonEscape(r.job.workload).c_str(),
                     jsonEscape(r.suite).c_str(),
                     jsonEscape(r.job.configName).c_str(), r.job.scale,
                     r.job.seed);
        std::fprintf(out,
                     "   \"instructions\": %" PRIu64 ", \"cycles\": %"
                     PRIu64 ", \"ipc\": %.4f, \"halted\": %s,\n",
                     r.sim.instructions, s.cycles, s.ipc(),
                     r.sim.halted ? "true" : "false");
        std::fprintf(out,
                     "   \"branches\": %" PRIu64 ", \"mispredicted\": %"
                     PRIu64 ", \"loads\": %" PRIu64 ", \"stores\": %"
                     PRIu64 ", \"dl1_misses\": %" PRIu64 ",\n",
                     s.branches, s.mispredicted, s.loads, s.stores,
                     s.dl1Misses);
        std::fprintf(
            out,
            "   \"opt\": {\"early_executed\": %" PRIu64
            ", \"moves_eliminated\": %" PRIu64
            ", \"branches_resolved\": %" PRIu64
            ", \"loads_removed\": %" PRIu64
            ", \"loads_synthesized\": %" PRIu64
            ", \"mbc_misspecs\": %" PRIu64 "},\n",
            s.opt.earlyExecuted, s.opt.movesEliminated,
            s.opt.branchesResolved, s.opt.loadsRemoved,
            s.opt.loadsSynthesized, s.opt.mbcMisspecs);
        std::fprintf(out, "   \"host_seconds\": %.4f}%s\n",
                     r.hostSeconds,
                     i + 1 < res.all().size() ? "," : "");
    }
    std::fprintf(out, "]\n");
}

} // namespace conopt::sim
