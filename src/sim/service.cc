#include "src/sim/service.hh"

#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/sim/baseline.hh"
#include "src/sim/driver.hh"
#include "src/sim/session.hh"

namespace conopt::sim {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

// --------------------------------------------------------------------------
// Frame codec
// --------------------------------------------------------------------------

std::string
encodeFrame(const std::string &payload)
{
    std::string out = std::to_string(payload.size());
    out += ' ';
    out += payload;
    out += '\n';
    return out;
}

void
FrameReader::feed(const char *data, size_t n)
{
    buf_.append(data, n);
}

int
FrameReader::next(std::string *payload, std::string *err)
{
    // `<decimal-len> <payload>\n`. The length header is tiny, so if no
    // space shows up within its maximum width the stream is garbage.
    const size_t sp = buf_.find(' ');
    if (sp == std::string::npos) {
        if (buf_.size() > 24) {
            *err = "malformed frame header (no length prefix)";
            return -1;
        }
        return 0;
    }
    if (sp == 0 || sp > 20) {
        *err = "malformed frame header (bad length prefix)";
        return -1;
    }
    uint64_t len = 0;
    if (!parseU64Token(buf_.substr(0, sp), &len) ||
        len > kMaxFrameBytes) {
        *err = "malformed frame header (bad length " + buf_.substr(0, sp) +
               ")";
        return -1;
    }
    // Header + payload + trailing newline.
    const size_t need = sp + 1 + size_t(len) + 1;
    if (buf_.size() < need)
        return 0;
    if (buf_[need - 1] != '\n') {
        *err = "malformed frame (missing terminator)";
        return -1;
    }
    *payload = buf_.substr(sp + 1, size_t(len));
    buf_.erase(0, need);
    return 1;
}

// --------------------------------------------------------------------------
// Client helpers
// --------------------------------------------------------------------------

int
connectToService(const std::string &addr, std::string *err)
{
    if (addr.rfind("unix:", 0) == 0) {
        const std::string path = addr.substr(5);
        sockaddr_un sa{};
        if (path.empty() || path.size() >= sizeof(sa.sun_path)) {
            *err = "invalid unix socket path '" + path + "'";
            return -1;
        }
        sa.sun_family = AF_UNIX;
        std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            *err = std::string("socket: ") + std::strerror(errno);
            return -1;
        }
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&sa),
                      sizeof(sa)) != 0) {
            *err = "connect " + addr + ": " + std::strerror(errno);
            ::close(fd);
            return -1;
        }
        return fd;
    }

    const size_t colon = addr.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= addr.size()) {
        *err = "invalid address '" + addr +
               "' (want host:port or unix:PATH)";
        return -1;
    }
    const std::string host = addr.substr(0, colon);
    const std::string port = addr.substr(colon + 1);

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (gai != 0) {
        *err = "resolve " + addr + ": " + ::gai_strerror(gai);
        return -1;
    }
    int fd = -1;
    std::string lastErr = "no addresses";
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            lastErr = std::string("socket: ") + std::strerror(errno);
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        lastErr = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        *err = addr + ": " + lastErr;
    return fd;
}

bool
writeFrame(int fd, const std::string &payload, std::string *err)
{
    const std::string frame = encodeFrame(payload);
    size_t off = 0;
    while (off < frame.size()) {
        // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE here instead
        // of a process-wide SIGPIPE.
        const ssize_t n = ::send(fd, frame.data() + off,
                                 frame.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            *err = std::string("send: ") + std::strerror(errno);
            return false;
        }
        off += size_t(n);
    }
    return true;
}

bool
readFrame(int fd, FrameReader *rd, std::string *payload,
          double timeoutSeconds, std::string *err)
{
    // A complete frame may already be buffered from a previous read.
    const int have = rd->next(payload, err);
    if (have != 0)
        return have > 0;

    const auto start = Clock::now();
    for (;;) {
        int waitMs = 250;
        if (timeoutSeconds > 0.0) {
            const double left = timeoutSeconds - secondsSince(start);
            if (left <= 0.0) {
                *err = "timed out waiting for a frame";
                return false;
            }
            waitMs = int(std::min(left * 1000.0 + 1.0, 250.0));
        }
        pollfd pfd{fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, waitMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            *err = std::string("poll: ") + std::strerror(errno);
            return false;
        }
        if (pr == 0)
            continue;
        char buf[4096];
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            *err = std::string("read: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            *err = "connection closed mid-frame";
            return false;
        }
        rd->feed(buf, size_t(n));
        const int got = rd->next(payload, err);
        if (got != 0)
            return got > 0;
    }
}

// --------------------------------------------------------------------------
// Envelopes
// --------------------------------------------------------------------------

std::string
makeRunFrame(const SweepRequest &req)
{
    return std::string("{\"type\":\"run\",\"request\":") +
           req.encodeJson() + "}";
}

std::string
makeHealthzFrame()
{
    return "{\"type\":\"healthz\"}";
}

std::string
makeProgressFrame(const std::string &progressLine)
{
    return std::string("{\"type\":\"progress\",\"line\":") +
           jsonQuote(progressLine) + "}";
}

std::string
makeResultFrame(const std::string &artifactJson)
{
    return std::string("{\"type\":\"result\",\"artifact\":") +
           jsonQuote(artifactJson) + "}";
}

std::string
makeErrorFrame(int code, const std::string &message)
{
    return std::string("{\"type\":\"error\",\"code\":") +
           std::to_string(code) + ",\"message\":" + jsonQuote(message) +
           "}";
}

bool
parseServerFrame(const std::string &payload, ServerFrame *out,
                 std::string *err)
{
    JsonValue doc;
    if (!JsonValue::parse(payload, &doc, err))
        return false;
    if (!doc.isObject()) {
        *err = "envelope is not a JSON object";
        return false;
    }
    const JsonValue *type = doc.get("type");
    if (!type || type->kind() != JsonValue::Kind::String) {
        *err = "envelope has no \"type\"";
        return false;
    }
    ServerFrame f;
    const std::string &t = type->asString();
    if (t == "progress") {
        f.type = ServerFrame::Type::Progress;
        const JsonValue *line = doc.get("line");
        if (!line || line->kind() != JsonValue::Kind::String) {
            *err = "progress envelope has no \"line\"";
            return false;
        }
        f.line = line->asString();
    } else if (t == "result") {
        f.type = ServerFrame::Type::Result;
        const JsonValue *art = doc.get("artifact");
        if (!art || art->kind() != JsonValue::Kind::String) {
            *err = "result envelope has no \"artifact\"";
            return false;
        }
        f.artifact = art->asString();
    } else if (t == "error") {
        f.type = ServerFrame::Type::Error;
        uint64_t code = 0;
        if (!jsonFieldU64(doc, "code", &code, err))
            return false;
        f.code = code == 1 ? 1 : 2;
        const JsonValue *msg = doc.get("message");
        if (!msg || msg->kind() != JsonValue::Kind::String) {
            *err = "error envelope has no \"message\"";
            return false;
        }
        f.message = msg->asString();
    } else if (t == "healthz" || t == "status") {
        f.type = ServerFrame::Type::Healthz;
        f.body = payload;
    } else {
        *err = "unknown envelope type '" + t + "'";
        return false;
    }
    *out = std::move(f);
    return true;
}

// --------------------------------------------------------------------------
// Execution
// --------------------------------------------------------------------------

namespace {

std::string
unknownBenchMessage(const std::string &bench)
{
    std::string msg = "unknown bench '" + bench + "' (registered: ";
    const auto &regs = benchRegistry();
    for (size_t i = 0; i < regs.size(); ++i) {
        if (i)
            msg += ", ";
        msg += regs[i].name;
    }
    msg += ")";
    return msg;
}

} // namespace

bool
executeSweepRequest(const SweepRequest &req, const BenchContext &ctx,
                    BenchArtifact *art, std::string *err)
{
    const BenchDef *def = findBench(req.bench);
    if (!def) {
        *err = unknownBenchMessage(req.bench);
        return false;
    }
    // The daemon serves artifact bytes; the client-side path fields
    // must never be dereferenced here. A well-behaved client already
    // cleared them (see runConnectFleet), but the server enforces it.
    RunOptions run = req.run;
    run.artifactDir.clear();
    run.baselinePath.clear();
    run.resultCacheDir.clear();
    *art = BenchArtifact{};
    if (!def->build(run, ctx, art, err))
        return false;
    art->bench = req.bench;
    return true;
}

// --------------------------------------------------------------------------
// The service
// --------------------------------------------------------------------------

/** One client connection. Kept alive by shared_ptr from both the
 *  connection list and any queued jobs, so a worker can still answer
 *  on a connection whose reader already saw EOF. */
struct SweepService::Conn
{
    int fd = -1;
    std::mutex writeMu;       ///< one frame at a time per connection
    std::thread reader;
    std::atomic<bool> closed{false};  ///< peer gone or write failed
    std::atomic<bool> stop{false};    ///< service shutting down
    std::atomic<bool> done{false};    ///< reader loop returned
};

/** One queued run. */
struct SweepService::Job
{
    std::shared_ptr<Conn> conn;
    SweepRequest req;
    Clock::time_point enqueued;
};

SweepService::SweepService(ServiceOptions opts) : opts_(std::move(opts))
{
    if (opts_.workers == 0)
        opts_.workers = 1;
    if (opts_.queueCapacity == 0)
        opts_.queueCapacity = 1;
}

SweepService::~SweepService()
{
    shutdown();
}

bool
SweepService::start(std::string *err)
{
    if (started_) {
        *err = "service already started";
        return false;
    }
    const std::string &la = opts_.listenAddr;
    if (la.rfind("unix:", 0) == 0) {
        const std::string path = la.substr(5);
        sockaddr_un sa{};
        if (path.empty() || path.size() >= sizeof(sa.sun_path)) {
            *err = "invalid unix socket path '" + path + "'";
            return false;
        }
        sa.sun_family = AF_UNIX;
        std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0) {
            *err = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        ::unlink(path.c_str()); // stale socket from a previous run
        if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&sa),
                   sizeof(sa)) != 0 ||
            ::listen(listenFd_, 64) != 0) {
            *err = "bind " + la + ": " + std::strerror(errno);
            ::close(listenFd_);
            listenFd_ = -1;
            return false;
        }
        unixPath_ = path;
        addr_ = la;
    } else {
        const size_t colon = la.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= la.size()) {
            *err = "invalid listen address '" + la +
                   "' (want host:port or unix:PATH)";
            return false;
        }
        const std::string host = la.substr(0, colon);
        const std::string port = la.substr(colon + 1);
        addrinfo hints{};
        hints.ai_family = AF_UNSPEC;
        hints.ai_socktype = SOCK_STREAM;
        hints.ai_flags = AI_PASSIVE;
        addrinfo *res = nullptr;
        const int gai =
            ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
        if (gai != 0) {
            *err = "resolve " + la + ": " + ::gai_strerror(gai);
            return false;
        }
        std::string lastErr = "no addresses";
        for (addrinfo *ai = res; ai; ai = ai->ai_next) {
            listenFd_ =
                ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
            if (listenFd_ < 0) {
                lastErr = std::string("socket: ") + std::strerror(errno);
                continue;
            }
            const int one = 1;
            ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
            if (::bind(listenFd_, ai->ai_addr, ai->ai_addrlen) == 0 &&
                ::listen(listenFd_, 64) == 0)
                break;
            lastErr = std::string("bind: ") + std::strerror(errno);
            ::close(listenFd_);
            listenFd_ = -1;
        }
        ::freeaddrinfo(res);
        if (listenFd_ < 0) {
            *err = la + ": " + lastErr;
            return false;
        }
        // Recover the actual port (the ephemeral-port contract that
        // lets tests and CI listen on 127.0.0.1:0).
        sockaddr_storage ss{};
        socklen_t slen = sizeof(ss);
        std::string boundPort = port;
        if (::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&ss), &slen) == 0) {
            char hostBuf[NI_MAXHOST], serv[NI_MAXSERV];
            if (::getnameinfo(reinterpret_cast<sockaddr *>(&ss), slen,
                              hostBuf, sizeof(hostBuf), serv,
                              sizeof(serv),
                              NI_NUMERICHOST | NI_NUMERICSERV) == 0)
                boundPort = serv;
        }
        addr_ = host + ":" + boundPort;
    }

    if (!opts_.resultCacheDir.empty())
        // conopt-lint: allow(hotpath-alloc) one-time start() setup, not request serving
        resultCache_ = std::make_shared<ResultCache>(opts_.resultCacheDir);

    startTime_ = Clock::now();
    draining_ = false;
    workers_.reserve(opts_.workers);
    for (unsigned i = 0; i < opts_.workers; ++i)
        // conopt-lint: allow(hotpath-alloc) one-time start() setup; capacity reserved above
        workers_.emplace_back([this] { workerLoop(); });
    started_ = true;
    return true;
}

void
SweepService::pollOnce(int timeoutMillis)
{
    const int lfd = listenFd_.load(std::memory_order_acquire);
    if (lfd < 0)
        return;
    pollfd pfd{lfd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeoutMillis);
    if (pr > 0 && (pfd.revents & POLLIN)) {
        const int cfd = ::accept(lfd, nullptr, nullptr);
        if (cfd >= 0) {
            accepted_.fetch_add(1, std::memory_order_relaxed);
            // conopt-lint: allow(hotpath-alloc) per-connection setup; accepts are rare next to request serving
            auto conn = std::make_shared<Conn>();
            conn->fd = cfd;
            conn->reader =
                std::thread([this, conn] { readerLoop(conn); });
            std::lock_guard<std::mutex> lk(connsMu_);
            // conopt-lint: allow(hotpath-alloc) per-connection bookkeeping, bounded by open sockets
            conns_.push_back(std::move(conn));
        }
    }
    // Reap finished readers so a long-lived daemon doesn't accumulate
    // joinable threads for every connection it ever served.
    std::lock_guard<std::mutex> lk(connsMu_);
    for (size_t i = 0; i < conns_.size();) {
        if (conns_[i]->done.load() && conns_[i]->reader.joinable()) {
            conns_[i]->reader.join();
            conns_[i] = conns_.back();
            conns_.pop_back();
        } else {
            ++i;
        }
    }
}

bool
SweepService::sendFrame(const std::shared_ptr<Conn> &conn,
                        const std::string &payload)
{
    if (conn->closed.load())
        return false;
    std::lock_guard<std::mutex> lk(conn->writeMu);
    std::string err;
    if (!writeFrame(conn->fd, payload, &err)) {
        conn->closed.store(true);
        return false;
    }
    return true;
}

void
SweepService::handlePayload(const std::shared_ptr<Conn> &conn,
                            const std::string &payload)
{
    std::string err;
    JsonValue doc;
    if (!JsonValue::parse(payload, &doc, &err) || !doc.isObject()) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        sendFrame(conn, makeErrorFrame(2, "malformed envelope: " + err));
        return;
    }
    const JsonValue *type = doc.get("type");
    if (!type || type->kind() != JsonValue::Kind::String) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        sendFrame(conn, makeErrorFrame(2, "envelope has no \"type\""));
        return;
    }
    const std::string &t = type->asString();
    if (t == "healthz" || t == "status") {
        sendFrame(conn, healthzJson());
        return;
    }
    if (t != "run") {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        sendFrame(conn,
                  makeErrorFrame(2, "unknown envelope type '" + t + "'"));
        return;
    }
    const JsonValue *reqDoc = doc.get("request");
    if (!reqDoc) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        sendFrame(conn, makeErrorFrame(2, "run envelope has no "
                                          "\"request\""));
        return;
    }
    Job job;
    if (!SweepRequest::decodeValue(*reqDoc, &job.req, &err)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        sendFrame(conn, makeErrorFrame(2, "bad request: " + err));
        return;
    }
    if (!findBench(job.req.bench)) {
        // Reject before enqueue: an unknown bench "never ran" (code 2),
        // unlike a registered bench that fails mid-run (code 1).
        rejected_.fetch_add(1, std::memory_order_relaxed);
        sendFrame(conn, makeErrorFrame(2, unknownBenchMessage(job.req.bench)));
        return;
    }
    job.conn = conn;
    job.enqueued = Clock::now();
    {
        std::lock_guard<std::mutex> lk(queueMu_);
        if (draining_) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            sendFrame(conn, makeErrorFrame(2, "service is draining"));
            return;
        }
        if (queueDepth_ >= opts_.queueCapacity) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            sendFrame(conn,
                      makeErrorFrame(
                          2, "queue full (" +
                                 std::to_string(opts_.queueCapacity) +
                                 " queued); retry another endpoint"));
            return;
        }
        // conopt-lint: allow(hotpath-alloc) bounded by queueCapacity; the run itself allocates nothing
        queue_[job.req.priority].push_back(std::move(job));
        ++queueDepth_;
    }
    queueCv_.notify_one();
}

void
SweepService::readerLoop(std::shared_ptr<Conn> conn)
{
    FrameReader rd;
    char buf[4096];
    while (!conn->stop.load() && !conn->closed.load()) {
        pollfd pfd{conn->fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 100);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            continue;
        const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            break;
        }
        if (n == 0)
            break; // peer closed; queued jobs may still be running
        rd.feed(buf, size_t(n));
        for (;;) {
            std::string payload, err;
            const int got = rd.next(&payload, &err);
            if (got == 0)
                break;
            if (got < 0) {
                sendFrame(conn, makeErrorFrame(2, err));
                conn->closed.store(true);
                break;
            }
            handlePayload(conn, payload);
        }
    }
    conn->done.store(true);
}

void
SweepService::workerLoop()
{
    // One BenchContext per worker: shared caches, worker-local warm
    // session (execThreads = 1 keeps every sweep on this thread, so
    // SweepRunner's thread-local SimSession is constructed once and
    // then reused for every request this worker ever serves).
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lk(queueMu_);
            queueCv_.wait(lk, [this] {
                return queueDepth_ > 0 || draining_;
            });
            if (queueDepth_ == 0)
                return; // draining and empty
            // Highest priority first; FIFO within a level.
            auto it = queue_.rbegin();
            job = std::move(it->second.front());
            it->second.pop_front();
            if (it->second.empty())
                queue_.erase(it->first);
            --queueDepth_;
        }

        BenchContext ctx;
        ctx.programs = &programs_;
        ctx.resultCache = resultCache_;
        ctx.execThreads = 1;
        const auto conn = job.conn;
        ctx.onProgress = [this, conn](const SweepProgress &p) {
            SweepProgress withService = p;
            {
                std::lock_guard<std::mutex> lk(queueMu_);
                withService.queueDepth = queueDepth_;
            }
            withService.sessions = SimSession::constructed();
            sendFrame(conn,
                      makeProgressFrame(formatProgressLine(withService)));
        };

        BenchArtifact art;
        std::string err;
        const bool ok = executeSweepRequest(job.req, ctx, &art, &err);
        // Count the request and record its latency (enqueue -> result
        // ready) before the terminal frame goes out: a client that has
        // its result must never read a healthz that predates it.
        const double seconds = secondsSince(job.enqueued);
        {
            std::lock_guard<std::mutex> lk(latencyMu_);
            latency_.add(seconds);
            latencyReservoir_.add(seconds);
        }
        if (!ok) {
            failed_.fetch_add(1, std::memory_order_relaxed);
            sendFrame(conn, makeErrorFrame(1, err));
        } else {
            served_.fetch_add(1, std::memory_order_relaxed);
            sendFrame(conn, makeResultFrame(art.toJson()));
        }
    }
}

void
SweepService::shutdown()
{
    if (!started_)
        return;
    started_ = false;

    // 1. Stop accepting. exchange() so a concurrent pollOnce() either
    //    sees the live fd or -1, never a torn/stale close.
    const int lfd = listenFd_.exchange(-1, std::memory_order_acq_rel);
    if (lfd >= 0)
        ::close(lfd);
    // 2. New run requests now get a code-2 error frame; everything
    //    already queued or running finishes and is answered.
    {
        std::lock_guard<std::mutex> lk(queueMu_);
        draining_ = true;
    }
    queueCv_.notify_all();
    for (auto &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
    // 3. Stop readers and close connections.
    std::vector<std::shared_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lk(connsMu_);
        conns.swap(conns_);
    }
    for (auto &c : conns) {
        c->stop.store(true);
        if (c->reader.joinable())
            c->reader.join();
        if (c->fd >= 0)
            ::close(c->fd);
        c->fd = -1;
    }
    if (!unixPath_.empty()) {
        ::unlink(unixPath_.c_str());
        unixPath_.clear();
    }
}

ServiceStats
SweepService::stats()
{
    ServiceStats s;
    s.uptimeSeconds = secondsSince(startTime_);
    s.workers = opts_.workers;
    s.queueCapacity = opts_.queueCapacity;
    {
        std::lock_guard<std::mutex> lk(queueMu_);
        s.queueDepth = queueDepth_;
        s.draining = draining_;
    }
    s.connectionsAccepted = accepted_.load(std::memory_order_relaxed);
    s.requestsServed = served_.load(std::memory_order_relaxed);
    s.requestsFailed = failed_.load(std::memory_order_relaxed);
    s.requestsRejected = rejected_.load(std::memory_order_relaxed);
    s.sessionsConstructed = SimSession::constructed();
    if (resultCache_) {
        const auto cs = resultCache_->stats();
        s.cacheHits = cs.hits;
        s.cacheMisses = cs.misses;
        s.cacheStores = cs.stores;
    }
    s.programsCached = programs_.builds();
    {
        std::lock_guard<std::mutex> lk(latencyMu_);
        s.latencyCount = latency_.count();
        s.latencyP50 = latency_.percentile(50);
        s.latencyP95 = latency_.percentile(95);
        s.latencyP99 = latency_.percentile(99);
        s.latencyMax = latency_.max();
        s.latencySample = latencyReservoir_.samples();
    }
    return s;
}

std::string
SweepService::healthzJson()
{
    const ServiceStats s = stats();
    std::string out = "{\"type\":\"healthz\"";
    const auto u64 = [&](const char *key, uint64_t v) {
        out += ",\"";
        out += key;
        out += "\":";
        out += std::to_string(v);
    };
    const auto dbl = [&](const char *key, double v) {
        out += ",\"";
        out += key;
        out += "\":";
        out += fmtG17(v);
    };
    dbl("uptime_s", s.uptimeSeconds);
    out += ",\"draining\":";
    out += s.draining ? "true" : "false";
    u64("workers", s.workers);
    u64("queue_depth", s.queueDepth);
    u64("queue_capacity", s.queueCapacity);
    u64("connections_accepted", s.connectionsAccepted);
    u64("requests_served", s.requestsServed);
    u64("requests_failed", s.requestsFailed);
    u64("requests_rejected", s.requestsRejected);
    u64("sessions", s.sessionsConstructed);
    u64("cache_hits", s.cacheHits);
    u64("cache_misses", s.cacheMisses);
    u64("cache_stores", s.cacheStores);
    u64("programs_built", s.programsCached);
    u64("latency_count", s.latencyCount);
    dbl("latency_p50_s", s.latencyP50);
    dbl("latency_p95_s", s.latencyP95);
    dbl("latency_p99_s", s.latencyP99);
    dbl("latency_max_s", s.latencyMax);
    out += ",\"latency_sample_s\":[";
    for (size_t i = 0; i < s.latencySample.size(); ++i) {
        if (i)
            out += ',';
        out += fmtG17(s.latencySample[i]);
    }
    out += "]}";
    return out;
}

// --------------------------------------------------------------------------
// conopt_served CLI
// --------------------------------------------------------------------------

namespace {

/** Flag-only interrupt state, same pattern as the sweep driver: the
 *  handler records the signal; the main loop does the work. */
volatile std::sig_atomic_t gServedStop = 0;

void
onServedSignal(int)
{
    gServedStop = 1;
}

constexpr const char *kServedUsage =
    "usage: conopt_served [options]\n"
    "       conopt_served --healthz ADDR\n"
    "\n"
    "Standing sweep daemon: keeps warm simulation sessions, a hot\n"
    "program cache, and an always-on result cache across requests.\n"
    "Speaks the framed line-JSON protocol documented in README.md\n"
    "(\"Standing fleet\"); `conopt_sweep --connect ADDR <bench>` is\n"
    "the matching client.\n"
    "\n"
    "options:\n"
    "  --listen ADDR      host:port or unix:PATH (default\n"
    "                     127.0.0.1:0 = ephemeral port)\n"
    "  --workers N        executor threads (default 1; each keeps its\n"
    "                     own warm session)\n"
    "  --queue N          queued-request bound (default 64); full =\n"
    "                     reject with a code-2 error\n"
    "  --result-cache DIR daemon-side persistent result cache\n"
    "  --port-file PATH   write the bound address to PATH once\n"
    "                     listening (for scripts using an ephemeral\n"
    "                     port)\n"
    "  --healthz ADDR     client mode: print the daemon's healthz\n"
    "                     JSON to stdout and exit (0 = healthy)\n"
    "\n"
    "SIGINT/SIGTERM drain gracefully: stop accepting, finish queued\n"
    "and running requests, answer them, then exit.\n";

} // namespace

int
servedMain(const std::vector<std::string> &args)
{
    ServiceOptions opts;
    std::string portFile;
    std::string healthzAddr;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        const auto value = [&]() -> const std::string * {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "conopt_served: %s requires a "
                                     "value\n%s",
                             a.c_str(), kServedUsage);
                return nullptr;
            }
            return &args[++i];
        };
        if (a == "--help" || a == "-h") {
            // conopt-lint: allow(stray-output) --help goes to stdout
            std::fputs(kServedUsage, stdout);
            return 0;
        }
        if (a == "--listen") {
            const std::string *v = value();
            if (!v)
                return 2;
            opts.listenAddr = *v;
        } else if (a == "--workers") {
            const std::string *v = value();
            uint64_t n = 0;
            if (!v || !parseU64Token(*v, &n) || n == 0 ||
                n > kMaxEnvThreads) {
                std::fprintf(stderr,
                             "conopt_served: invalid --workers (want "
                             "1..%u)\n",
                             kMaxEnvThreads);
                return 2;
            }
            opts.workers = unsigned(n);
        } else if (a == "--queue") {
            const std::string *v = value();
            uint64_t n = 0;
            if (!v || !parseU64Token(*v, &n) || n == 0) {
                std::fprintf(stderr, "conopt_served: invalid --queue "
                                     "(want a positive bound)\n");
                return 2;
            }
            opts.queueCapacity = size_t(n);
        } else if (a == "--result-cache") {
            const std::string *v = value();
            if (!v)
                return 2;
            opts.resultCacheDir = *v;
        } else if (a == "--port-file") {
            const std::string *v = value();
            if (!v)
                return 2;
            portFile = *v;
        } else if (a == "--healthz") {
            const std::string *v = value();
            if (!v)
                return 2;
            healthzAddr = *v;
        } else {
            std::fprintf(stderr, "conopt_served: unknown argument "
                                 "'%s'\n%s",
                         a.c_str(), kServedUsage);
            return 2;
        }
    }

    if (!healthzAddr.empty()) {
        std::string err;
        const int fd = connectToService(healthzAddr, &err);
        if (fd < 0) {
            std::fprintf(stderr, "conopt_served: %s\n", err.c_str());
            return 2;
        }
        if (!writeFrame(fd, makeHealthzFrame(), &err)) {
            std::fprintf(stderr, "conopt_served: %s\n", err.c_str());
            ::close(fd);
            return 2;
        }
        FrameReader rd;
        std::string payload;
        if (!readFrame(fd, &rd, &payload, 10.0, &err)) {
            std::fprintf(stderr, "conopt_served: %s\n", err.c_str());
            ::close(fd);
            return 2;
        }
        ::close(fd);
        ServerFrame f;
        if (!parseServerFrame(payload, &f, &err) ||
            f.type != ServerFrame::Type::Healthz) {
            std::fprintf(stderr,
                         "conopt_served: unexpected healthz reply: %s\n",
                         err.empty() ? payload.c_str() : err.c_str());
            return 2;
        }
        // conopt-lint: allow(stray-output) healthz JSON is the output
        std::printf("%s\n", f.body.c_str());
        return 0;
    }

    SweepService svc(opts);
    std::string err;
    if (!svc.start(&err)) {
        std::fprintf(stderr, "conopt_served: %s\n", err.c_str());
        return 2;
    }
    if (!portFile.empty()) {
        std::FILE *pf = std::fopen(portFile.c_str(), "w");
        if (!pf) {
            std::fprintf(stderr,
                         "conopt_served: cannot write --port-file %s: "
                         "%s\n",
                         portFile.c_str(), std::strerror(errno));
            svc.shutdown();
            return 2;
        }
        std::fprintf(pf, "%s\n", svc.addr().c_str());
        std::fclose(pf);
    }
    std::fprintf(stderr,
                 "[conopt_served] listening on %s (%u worker%s, queue "
                 "%zu)\n",
                 svc.addr().c_str(), opts.workers,
                 opts.workers == 1 ? "" : "s", opts.queueCapacity);

    gServedStop = 0;
    struct sigaction sa{};
    sa.sa_handler = onServedSignal;
    sigemptyset(&sa.sa_mask);
    struct sigaction oldInt{}, oldTerm{};
    ::sigaction(SIGINT, &sa, &oldInt);
    ::sigaction(SIGTERM, &sa, &oldTerm);

    while (!gServedStop)
        svc.pollOnce(50);

    std::fprintf(stderr, "[conopt_served] draining\n");
    svc.shutdown();
    ::sigaction(SIGINT, &oldInt, nullptr);
    ::sigaction(SIGTERM, &oldTerm, nullptr);
    std::fprintf(stderr, "[conopt_served] stopped\n");
    return 0;
}

} // namespace conopt::sim
