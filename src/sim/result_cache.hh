/**
 * @file
 * Persistent sweep-level result cache.
 *
 * ProgramCache makes each (workload, scale) program build once per
 * process; this cache persists whole *simulation results* across
 * processes, keyed by everything that determines them:
 *
 *   (program fingerprint, config fingerprint, scale, seed, maxInsts)
 *
 * so a repeated or resumed sweep skips every cell whose inputs are
 * unchanged. The store is a directory (CONOPT_RESULT_CACHE /
 * --result-cache in the bench harness) holding one small JSON document
 * per entry, named by the hash of its key; entries verify the full key
 * on load, so a hash collision degrades to a miss, never a wrong
 * result. Writes go through a temp file + rename, so concurrent shard
 * processes can share one cache directory safely.
 *
 * The cache is disposable by design: a malformed, truncated, or
 * version-skewed entry is treated as a miss (counted in
 * Stats::errors) and the cell is simulated fresh. Deleting the
 * directory is always safe.
 */

#ifndef CONOPT_SIM_RESULT_CACHE_HH
#define CONOPT_SIM_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "src/sim/simulator.hh"

namespace conopt::sim {

/** A directory of persisted simulation results. */
class ResultCache
{
  public:
    static constexpr const char *kSchema = "conopt-result-cache";
    static constexpr unsigned kVersion = 1;

    /** Everything that determines a simulation's outcome. The
     *  simulator fingerprint is part of the key because the timing
     *  model lives in code: a rebuilt binary must cold-start the
     *  cache, not replay numbers the old model produced (which would
     *  sail through the baseline gate and poison any re-baseline). */
    struct Key
    {
        std::string programFingerprint; ///< sim::programFingerprint()
        std::string configFingerprint;  ///< sim::configFingerprint()
        std::string simFingerprint;     ///< sim::selfExeFingerprint()
        unsigned scale = 0;             ///< absolute iteration scale
        uint64_t seed = 0;              ///< per-job seed
        uint64_t maxInsts = 0;          ///< dynamic-instruction limit

        /** Entry filename within the cache directory: "<hash>.json". */
        std::string fileName() const;
    };

    /** Hit/miss accounting; "errors" counts unreadable or corrupt
     *  entries (each also counted as a miss). */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t stores = 0;
        uint64_t errors = 0;
    };

    /** Opens (and creates, if needed) the cache directory. A directory
     *  that cannot be created disables the cache: lookups miss and
     *  stores fail, with one warning on stderr. */
    explicit ResultCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /** Fetch the result for @p key into @p out. Thread- and
     *  process-safe. False on miss (including corrupt entries). */
    bool lookup(const Key &key, SimResult *out);

    /** Persist @p result under @p key (atomic temp-file + rename).
     *  False (with @p err) when the entry cannot be written. */
    bool store(const Key &key, const SimResult &result,
               std::string *err = nullptr);

    Stats stats() const;

    /** Serialize / parse one cache entry (exposed for tests). */
    static std::string entryToJson(const Key &key, const SimResult &r);
    static bool parseEntry(const std::string &json, const Key &expect,
                           SimResult *out, std::string *err);

  private:
    std::string dir_;
    bool usable_ = false;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> stores_{0};
    std::atomic<uint64_t> errors_{0};
};

} // namespace conopt::sim

#endif // CONOPT_SIM_RESULT_CACHE_HH
