#include "src/sim/request.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/sim/baseline.hh"
#include "src/sim/fingerprint.hh"

namespace conopt::sim {

namespace {

/** Parse environment variable @p name as an unsigned. Unset, empty,
 *  non-numeric, negative, zero, or partially-numeric values (e.g.
 *  "8x", "4,") yield @p def; values beyond @p cap clamp to it (so
 *  absurd inputs can't overflow downstream scale/thread arithmetic). */
unsigned
envUnsigned(const char *name, unsigned def, unsigned cap)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return def;
    // Skip exactly the whitespace strtoull would, so a negative value
    // is rejected here rather than wrapping to a huge unsigned there.
    while (std::isspace(uint8_t(*s)))
        ++s;
    if (*s == '-')
        return def;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s)
        return def;
    // The whole token must be the number: trailing whitespace is fine,
    // trailing garbage means the value was not what the user intended
    // ("8x", "4,") and must fall back to the default, not silently
    // parse as its numeric prefix.
    while (std::isspace(uint8_t(*end)))
        ++end;
    if (*end != '\0')
        return def;
    if (errno == ERANGE || v > cap)
        return cap;
    return v == 0 ? def : unsigned(v);
}

} // namespace

unsigned
envScale()
{
    return envUnsigned("CONOPT_SCALE", 1, kMaxEnvScale);
}

unsigned
envThreads()
{
    return envUnsigned("CONOPT_THREADS", 0, kMaxEnvThreads);
}

bool
parseShard(const std::string &s, ShardSpec *out)
{
    // Strict "<digits>/<digits>": no sign, no whitespace, no trailing
    // characters (strtoull alone would accept all three).
    const char *p = s.c_str();
    if (!std::isdigit(uint8_t(*p)))
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long i = std::strtoull(p, &end, 10);
    if (*end != '/' || errno == ERANGE)
        return false;
    const char *q = end + 1;
    if (!std::isdigit(uint8_t(*q)))
        return false;
    errno = 0;
    const unsigned long long n = std::strtoull(q, &end, 10);
    if (*end != '\0' || errno == ERANGE)
        return false;
    if (n == 0 || n > kMaxEnvThreads || i >= n)
        return false;
    out->index = unsigned(i);
    out->count = unsigned(n);
    return true;
}

bool
parseU64Token(const std::string &s, uint64_t *out)
{
    if (s.empty() || !std::isdigit(uint8_t(s[0])))
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (*end != '\0' || errno == ERANGE)
        return false;
    *out = v;
    return true;
}

bool
parseDoubleToken(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0' || !std::isfinite(v))
        return false;
    *out = v;
    return true;
}

std::string
fmtG17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (uint8_t(c) < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof(esc), "\\u%04x", c);
                out += esc;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

// --------------------------------------------------------------------------
// SweepRequest wire encoding
// --------------------------------------------------------------------------

std::string
SweepRequest::encodeJson() const
{
    // Canonical: fixed field order, every field always present, %.17g
    // doubles. Equal requests must encode to equal bytes (the
    // fingerprint and the wire tests both rely on it).
    std::string s;
    s.reserve(320);
    s += "{\"schema\":\"";
    s += kSchema;
    s += "\",\"version\":";
    s += std::to_string(kVersion);
    s += ",\"bench\":";
    s += jsonQuote(bench);
    s += ",\"priority\":";
    s += std::to_string(priority);
    s += ",\"run\":{\"shard_index\":";
    s += std::to_string(run.shard.index);
    s += ",\"shard_count\":";
    s += std::to_string(run.shard.count);
    s += ",\"scale\":";
    s += std::to_string(run.scale);
    s += ",\"threads\":";
    s += std::to_string(run.threads);
    s += ",\"ipc_sample_interval\":";
    s += std::to_string(run.ipcSampleInterval);
    s += ",\"perf\":";
    s += run.perf ? "true" : "false";
    s += ",\"emit_artifact\":";
    s += run.emitArtifact ? "true" : "false";
    s += ",\"tolerance\":";
    s += fmtG17(run.tolerance);
    s += ",\"artifact_dir\":";
    s += jsonQuote(run.artifactDir);
    s += ",\"baseline_path\":";
    s += jsonQuote(run.baselinePath);
    s += ",\"result_cache_dir\":";
    s += jsonQuote(run.resultCacheDir);
    s += "}}";
    return s;
}

namespace {

/** Object string member into @p out; absent keeps the default, present
 *  non-string is an error. */
bool
jsonFieldString(const JsonValue &obj, const char *key, std::string *out,
                std::string *err)
{
    const JsonValue *v = obj.get(key);
    if (!v)
        return true;
    if (v->kind() != JsonValue::Kind::String) {
        *err = std::string("field \"") + key + "\" is not a string";
        return false;
    }
    *out = v->asString();
    return true;
}

} // namespace

bool
SweepRequest::decodeValue(const JsonValue &doc, SweepRequest *out,
                          std::string *err)
{
    if (!doc.isObject()) {
        *err = "request is not a JSON object";
        return false;
    }
    const JsonValue *schema = doc.get("schema");
    if (!schema || schema->asString() != kSchema) {
        *err = std::string("not a ") + kSchema + " document";
        return false;
    }
    unsigned version = 0;
    if (!jsonFieldU32(doc, "version", &version, err))
        return false;
    if (version != kVersion) {
        *err = "unsupported request version " + std::to_string(version);
        return false;
    }
    SweepRequest req;
    if (!jsonFieldString(doc, "bench", &req.bench, err))
        return false;
    if (req.bench.empty()) {
        *err = "request names no bench";
        return false;
    }
    unsigned priority = 0;
    if (!jsonFieldU32(doc, "priority", &priority, err))
        return false;
    req.priority = priority;
    const JsonValue *runObj = doc.get("run");
    if (!runObj || !runObj->isObject()) {
        *err = "request has no \"run\" object";
        return false;
    }
    RunOptions &run = req.run;
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    if (!jsonFieldU32(*runObj, "shard_index", &shardIndex, err) ||
        !jsonFieldU32(*runObj, "shard_count", &shardCount, err))
        return false;
    if (shardCount == 0 || shardCount > kMaxEnvThreads ||
        shardIndex >= shardCount) {
        *err = "invalid shard " + std::to_string(shardIndex) + "/" +
               std::to_string(shardCount);
        return false;
    }
    run.shard = {shardIndex, shardCount};
    if (!jsonFieldU32(*runObj, "scale", &run.scale, err) ||
        !jsonFieldU32(*runObj, "threads", &run.threads, err) ||
        !jsonFieldU64(*runObj, "ipc_sample_interval",
                      &run.ipcSampleInterval, err) ||
        !jsonFieldDouble(*runObj, "tolerance", &run.tolerance, err))
        return false;
    if (run.scale > kMaxEnvScale)
        run.scale = kMaxEnvScale;
    if (run.threads > kMaxEnvThreads)
        run.threads = kMaxEnvThreads;
    if (!std::isfinite(run.tolerance) || run.tolerance < 0.0) {
        *err = "invalid tolerance (want a finite non-negative number)";
        return false;
    }
    run.perf = jsonFieldBool(*runObj, "perf");
    // Canonical encodings always carry emit_artifact; tolerate its
    // absence by keeping the struct default (true), since
    // jsonFieldBool() reads an absent key as false.
    if (runObj->get("emit_artifact"))
        run.emitArtifact = jsonFieldBool(*runObj, "emit_artifact");
    if (!jsonFieldString(*runObj, "artifact_dir", &run.artifactDir, err) ||
        !jsonFieldString(*runObj, "baseline_path", &run.baselinePath,
                         err) ||
        !jsonFieldString(*runObj, "result_cache_dir", &run.resultCacheDir,
                         err))
        return false;
    *out = std::move(req);
    return true;
}

bool
SweepRequest::decode(const std::string &json, SweepRequest *out,
                     std::string *err)
{
    JsonValue doc;
    if (!JsonValue::parse(json, &doc, err))
        return false;
    return decodeValue(doc, out, err);
}

std::string
SweepRequest::fingerprint() const
{
    Fnv f;
    f.mixStr(kSchema);
    f.mix(kVersion);
    f.mixStr(bench);
    f.mix(priority);
    f.mix(run.shard.index);
    f.mix(run.shard.count);
    f.mix(run.scale);
    f.mix(run.threads);
    f.mix(run.ipcSampleInterval);
    f.mix(run.perf ? 1 : 0);
    f.mix(run.emitArtifact ? 1 : 0);
    f.mixStr(fmtG17(run.tolerance));
    f.mixStr(run.artifactDir);
    f.mixStr(run.baselinePath);
    f.mixStr(run.resultCacheDir);
    return hex64(f.final());
}

} // namespace conopt::sim
