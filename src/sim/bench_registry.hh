/**
 * @file
 * The registry of *servable* benches: each entry maps a bench name (the
 * same name that titles its BENCH_<name>.json artifact) to a pure build
 * function that turns a RunOptions into a BenchArtifact. Build
 * functions never print tables, never write files, and never exit —
 * that separation is what lets three callers share one implementation:
 *
 *   - the bench binary (bench/table1_workloads.cc, ...) builds the
 *     artifact here, prints its human table from the result, and hands
 *     the artifact to harnessFinish() for the save + baseline gate;
 *   - conopt_served executes wire SweepRequests against the registry
 *     and streams the artifact bytes back, touching no client files;
 *   - tests drive the exact code path the daemon serves, in-process.
 *
 * Only deterministic, self-contained figures are registered (the
 * perf-measurement benches stay binary-only: their numbers describe the
 * host, not the simulated machine, so serving them from a remote
 * daemon would be meaningless).
 */

#ifndef CONOPT_SIM_BENCH_REGISTRY_HH
#define CONOPT_SIM_BENCH_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "src/sim/baseline.hh"
#include "src/sim/request.hh"
#include "src/sim/result_cache.hh"
#include "src/sim/sweep.hh"

namespace conopt::sim {

/** The process-local resources a build runs with — the bits of
 *  SweepOptions that never travel on the wire. All fields optional:
 *  the default context (no caches, no progress) is what a standalone
 *  bench binary run uses. */
struct BenchContext
{
    /** Shared decoded-program cache; nullptr = the build uses its own
     *  transient cache. The daemon passes its long-lived cache so warm
     *  requests skip program construction entirely. */
    ProgramCache *programs = nullptr;
    /** Persistent keyed result cache (may be null). */
    std::shared_ptr<ResultCache> resultCache;
    /** Per-finished-job progress sink (may be empty). */
    ProgressFn onProgress;
    /** Reservoir capacity for --ipc-sample-interval sampling. */
    size_t ipcReservoirCapacity = 256;
    /** Non-zero: override the sweep worker-thread count regardless of
     *  what the request asks for. The daemon pins this to 1 so each
     *  worker thread reuses its warm thread-local SimSession instead
     *  of fanning out to cold pool threads. */
    unsigned execThreads = 0;
    /** Non-null: sweep-based builds copy their SweepResult here so the
     *  bench binary can print its reporter table without re-running. */
    SweepResult *resultOut = nullptr;
};

/** One registered bench. */
struct BenchDef
{
    const char *name;        ///< artifact name, e.g. "fig6_speedup"
    const char *description; ///< one-line summary for status output
    /** Build the artifact for @p run. False (with @p err) only on a
     *  functional failure (a workload that did not halt); shard
     *  filtering, scaling, and sampling all come from @p run. */
    bool (*build)(const RunOptions &run, const BenchContext &ctx,
                  BenchArtifact *art, std::string *err);
};

/** All registered benches, in stable order. */
const std::vector<BenchDef> &benchRegistry();

/** Look up one bench; nullptr if the name is not registered. */
const BenchDef *findBench(const std::string &name);

} // namespace conopt::sim

#endif // CONOPT_SIM_BENCH_REGISTRY_HH
