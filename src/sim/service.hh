/**
 * @file
 * The standing sweep service: everything behind `conopt_served` and
 * `conopt_sweep --connect`. A daemon keeps warm SimSessions, a hot
 * ProgramCache, and an always-on ResultCache across requests, so a
 * fleet of short gate runs stops paying process start + program build
 * + cold-cache cost on every invocation.
 *
 * Wire protocol (TCP `host:port` or `unix:PATH`), lowest layer first:
 *
 *   frame    := <decimal-length> ' ' <payload bytes> '\n'
 *               (length counts only the payload; max 64 MiB)
 *   payload  := one single-line JSON envelope
 *
 * Client -> server envelopes:
 *   {"type":"run","request":<SweepRequest JSON>}   run one bench
 *   {"type":"healthz"}                             liveness + stats
 *   {"type":"status"}                              alias of healthz
 *
 * Server -> client envelopes (for one run, in order):
 *   {"type":"progress","line":"CONOPT-PROGRESS v1 ..."}   0..n times
 *   {"type":"result","artifact":"<BENCH_*.json text>"}    terminal
 *   {"type":"error","code":<1|2>,"message":"..."}         terminal
 * and for healthz/status:
 *   {"type":"healthz", ...stat fields...}
 *
 * The progress lines are the exact CONOPT-PROGRESS v1 protocol the
 * ephemeral shard path speaks (src/sim/driver.hh), with the daemon's
 * queue_depth=/sessions= keys injected; the artifact is the exact
 * BenchArtifact::toJson() text, so a --connect client writes the bytes
 * verbatim and the merged artifact is byte-identical to an
 * ephemeral-shard run. Error codes follow the repo-wide exit contract:
 * 1 = the bench ran and failed, 2 = the request never ran (malformed,
 * unknown bench, queue full, draining).
 *
 * README.md ("Standing fleet") is the user-facing spec of this
 * protocol; src/sim/request.hh owns the SweepRequest schema.
 */

#ifndef CONOPT_SIM_SERVICE_HH
#define CONOPT_SIM_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/pipeline/stats_aggregate.hh"
#include "src/sim/bench_registry.hh"
#include "src/sim/request.hh"

namespace conopt::sim {

// --------------------------------------------------------------------------
// Frame codec
// --------------------------------------------------------------------------

/** Upper bound on one frame's payload; a length prefix beyond this is
 *  a protocol error, not an allocation request. */
constexpr size_t kMaxFrameBytes = 64u << 20;

/** @p payload as one wire frame: `<decimal-len> <payload>\n`. */
std::string encodeFrame(const std::string &payload);

/** Incremental frame decoder over an arbitrary byte stream. */
class FrameReader
{
  public:
    /** Append @p n raw bytes from the stream. */
    void feed(const char *data, size_t n);

    /** Extract the next complete frame payload into @p payload.
     *  Returns 1 on a frame, 0 when more bytes are needed, -1 (with
     *  @p err) on a malformed stream — after -1 the stream is
     *  unrecoverable and the connection should be dropped. */
    int next(std::string *payload, std::string *err);

    /** Bytes buffered but not yet consumed. */
    size_t pending() const { return buf_.size(); }

  private:
    std::string buf_;
};

// --------------------------------------------------------------------------
// Client helpers
// --------------------------------------------------------------------------

/** Connect to @p addr — `host:port` (TCP) or `unix:PATH` — and return
 *  the connected socket, or -1 with @p err. */
int connectToService(const std::string &addr, std::string *err);

/** Send @p payload as one frame (handles partial writes; SIGPIPE-safe
 *  via MSG_NOSIGNAL). False with @p err on a write error. */
bool writeFrame(int fd, const std::string &payload, std::string *err);

/** Read from @p fd into @p rd until one complete frame is available
 *  and return its payload. @p timeoutSeconds bounds the whole read
 *  (0 = wait forever). False with @p err on timeout, EOF, read error,
 *  or a malformed stream. */
bool readFrame(int fd, FrameReader *rd, std::string *payload,
               double timeoutSeconds, std::string *err);

// --------------------------------------------------------------------------
// Envelopes
// --------------------------------------------------------------------------

std::string makeRunFrame(const SweepRequest &req);
std::string makeHealthzFrame();
std::string makeProgressFrame(const std::string &progressLine);
std::string makeResultFrame(const std::string &artifactJson);
std::string makeErrorFrame(int code, const std::string &message);

/** One parsed server -> client envelope. */
struct ServerFrame
{
    enum class Type { Progress, Result, Error, Healthz };
    Type type = Type::Error;
    std::string line;     ///< Progress: the CONOPT-PROGRESS line
    std::string artifact; ///< Result: verbatim BENCH_*.json text
    int code = 2;         ///< Error: 1 bench failed, 2 never ran
    std::string message;  ///< Error: diagnostic
    std::string body;     ///< Healthz: the raw reply JSON
};

/** Parse a server -> client payload. False with @p err on anything
 *  that is not a well-formed envelope of a known type. */
bool parseServerFrame(const std::string &payload, ServerFrame *out,
                      std::string *err);

// --------------------------------------------------------------------------
// Execution
// --------------------------------------------------------------------------

/**
 * Run one SweepRequest against the bench registry: resolve req.bench,
 * build the artifact under req.run with @p ctx's warm resources, and
 * stamp art->bench. False with @p err on an unknown bench or a
 * functional failure. This is the daemon's entire request handler
 * minus the transport, exported so tests pin its warm-path behaviour
 * (zero steady-state allocations) in-process.
 */
bool executeSweepRequest(const SweepRequest &req, const BenchContext &ctx,
                         BenchArtifact *art, std::string *err);

// --------------------------------------------------------------------------
// The service
// --------------------------------------------------------------------------

struct ServiceOptions
{
    /** `host:port` (port 0 = ephemeral, see SweepService::addr()) or
     *  `unix:PATH`. */
    std::string listenAddr = "127.0.0.1:0";
    unsigned workers = 1;      ///< executor threads (>= 1)
    size_t queueCapacity = 64; ///< queued-job bound; full = reject
    /** Daemon-side persistent result cache ("" = in-memory only). The
     *  client's run.resultCacheDir is intentionally ignored: the
     *  daemon never touches client paths. */
    std::string resultCacheDir;
};

/** One healthz snapshot (all counters are process-lifetime). */
struct ServiceStats
{
    double uptimeSeconds = 0.0;
    bool draining = false;
    unsigned workers = 0;
    size_t queueDepth = 0;
    size_t queueCapacity = 0;
    uint64_t connectionsAccepted = 0;
    uint64_t requestsServed = 0;   ///< result frames sent
    uint64_t requestsFailed = 0;   ///< error frames sent for runs
    uint64_t requestsRejected = 0; ///< never enqueued (full/draining/bad)
    uint64_t sessionsConstructed = 0; ///< SimSession::constructed()
    uint64_t cacheHits = 0;   ///< ResultCache hits ("" cache dir = 0)
    uint64_t cacheMisses = 0;
    uint64_t cacheStores = 0;
    uint64_t programsCached = 0; ///< warm ProgramCache entries
    /** Request service latency (seconds, enqueue -> result ready) over
     *  the whole request stream: streaming nearest-rank percentiles
     *  plus a bounded reservoir snapshot for offline analysis. */
    size_t latencyCount = 0;
    double latencyP50 = 0.0;
    double latencyP95 = 0.0;
    double latencyP99 = 0.0;
    double latencyMax = 0.0;
    std::vector<double> latencySample;
};

/**
 * The daemon engine: listen socket, per-connection reader threads, a
 * bounded priority queue (higher SweepRequest::priority first, FIFO
 * within a level), and a worker pool that executes requests against
 * one shared ProgramCache / ResultCache with per-worker warm
 * SimSessions (workers run sweeps single-threaded, so SweepRunner's
 * thread-local session is constructed once per worker and reused).
 *
 * Threading: start() spawns the workers; the owner drives accepts by
 * calling pollOnce() in a loop (conopt_served does this from main, so
 * signal handling stays flag-only); shutdown() drains gracefully —
 * stops accepting, fails *new* runs with a code-2 error frame,
 * finishes everything already queued or running, then joins.
 */
class SweepService
{
  public:
    explicit SweepService(ServiceOptions opts = {});
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /** Bind, listen, and spawn workers. False with @p err on a bad
     *  address or socket failure. */
    bool start(std::string *err);

    /** The bound address in connectToService() form — for `host:0`
     *  the actual ephemeral port, e.g. "127.0.0.1:43712". */
    const std::string &addr() const { return addr_; }

    /** Accept pending connections and reap finished reader threads;
     *  blocks at most @p timeoutMillis. */
    void pollOnce(int timeoutMillis);

    /** Graceful drain (idempotent): see class comment. */
    void shutdown();

    ServiceStats stats();

    /** stats() as the canonical healthz reply JSON. */
    std::string healthzJson();

  private:
    struct Conn;
    struct Job;

    void readerLoop(std::shared_ptr<Conn> conn);
    void workerLoop();
    void handlePayload(const std::shared_ptr<Conn> &conn,
                       const std::string &payload);
    bool sendFrame(const std::shared_ptr<Conn> &conn,
                   const std::string &payload);

    ServiceOptions opts_;
    std::string addr_;
    /** Atomic so shutdown() may be called from a different thread than
     *  the pollOnce() loop (tests drive exactly that); -1 = closed. */
    std::atomic<int> listenFd_{-1};
    std::string unixPath_; ///< bound unix socket path ("" = TCP)
    bool started_ = false;
    std::chrono::steady_clock::time_point startTime_;

    ProgramCache programs_;
    std::shared_ptr<ResultCache> resultCache_;

    std::mutex queueMu_;
    std::condition_variable queueCv_;
    /** priority -> FIFO of jobs; popped from the highest key. */
    std::map<uint32_t, std::deque<Job>> queue_;
    size_t queueDepth_ = 0;
    bool draining_ = false;
    std::vector<std::thread> workers_;

    std::mutex connsMu_;
    std::vector<std::shared_ptr<Conn>> conns_;

    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> served_{0};
    std::atomic<uint64_t> failed_{0};
    std::atomic<uint64_t> rejected_{0};

    std::mutex latencyMu_;
    pipeline::PercentileAccumulator latency_;
    pipeline::ReservoirAccumulator latencyReservoir_{256, 0};
};

/** The `conopt_served` CLI: parse args, run the daemon until SIGINT/
 *  SIGTERM, drain, exit. Also the healthz client (`--healthz ADDR`).
 *  Returns the process exit code. Exported (like sweepDriverMain) so
 *  tests re-exec themselves as a real daemon process. */
int servedMain(const std::vector<std::string> &args);

} // namespace conopt::sim

#endif // CONOPT_SIM_SERVICE_HH
