/**
 * @file
 * The canonical description of one sweep run: `RunOptions` (every knob
 * shared by the harness CLI, the sweep engine, the shard driver, and
 * the standing service) and `SweepRequest` (a named bench plus
 * RunOptions plus a queue priority), with a lossless line-JSON wire
 * encoding. This is the single schema the whole platform round-trips
 * through:
 *
 *   - bench binaries:  HarnessOptions (src/sim/harness.hh) parses the
 *                      CONOPT_* environment and harness flags into a
 *                      RunOptions
 *   - sweep engine:    SweepOptions (src/sim/sweep.hh) embeds a
 *                      RunOptions for shard/threads/scale/ipc-sampling
 *   - shard driver:    DriverOptions (src/sim/driver.hh) embeds a
 *                      RunOptions for artifact/baseline/cache/tolerance
 *   - wire protocol:   conopt_served and `conopt_sweep --connect`
 *                      exchange encodeJson()'d SweepRequests
 *                      (src/sim/service.hh)
 *
 * Encoding contract: encodeJson() emits a canonical single-line JSON
 * object — fixed field order, `%.17g` doubles (lossless for IEEE
 * binary64) — so equal requests encode to equal bytes and
 * fingerprint() is stable across processes. decode() is strict: it
 * rejects unknown schema/version, malformed fields, and out-of-range
 * shard specs with a diagnostic instead of guessing.
 *
 * The shard/scale/thread environment parsing (CONOPT_SCALE,
 * CONOPT_THREADS, CONOPT_SHARD) lives here too, as the one copy shared
 * by the harness, the driver, and the service.
 */

#ifndef CONOPT_SIM_REQUEST_HH
#define CONOPT_SIM_REQUEST_HH

#include <cstdint>
#include <string>

namespace conopt::sim {

class JsonValue; // src/sim/baseline.hh

/** Upper bounds on the CONOPT_SCALE / CONOPT_THREADS environment
 *  variables; larger values clamp rather than overflow the scale
 *  multiplication or the thread-pool size. */
constexpr unsigned kMaxEnvScale = 1u << 20;
constexpr unsigned kMaxEnvThreads = 1u << 16;

/** Workload scale multiplier from the CONOPT_SCALE environment variable
 *  (default 1); lets the harness trade runtime for statistical weight.
 *  Unset, zero, negative, or garbage values yield the default; huge
 *  values clamp to kMaxEnvScale. */
unsigned envScale();

/** Worker-thread count from the CONOPT_THREADS environment variable;
 *  0 (unset/invalid/garbage) means use
 *  std::thread::hardware_concurrency(); huge values clamp to
 *  kMaxEnvThreads. */
unsigned envThreads();

/** One shard of a sweep split across processes/machines. The job list
 *  is partitioned round-robin over submission order (job i belongs to
 *  shard i % count), so shards are balanced across the workload-major
 *  cross product and a job's shard depends only on its position, never
 *  on thread scheduling. {0, 1} is the whole sweep. */
struct ShardSpec
{
    unsigned index = 0; ///< 0-based shard id
    unsigned count = 1; ///< total shards; 1 = unsharded

    bool active() const { return count > 1; }
    /** Does submission position @p i fall in this shard? */
    bool contains(size_t i) const { return i % count == index; }
};

/** Parse "<i>/<n>" (e.g. "0/2", "1/2") into @p out. False on anything
 *  else: garbage, trailing characters, n == 0, or i >= n. */
bool parseShard(const std::string &s, ShardSpec *out);

/** Strict uint64 token: all-digits, no sign, no trailing characters,
 *  no overflow. The shared primitive behind the progress protocol and
 *  the request decoder. */
bool parseU64Token(const std::string &s, uint64_t *out);

/** Strict finite-double token (strtod grammar, whole token, finite). */
bool parseDoubleToken(const std::string &s, double *out);

/** @p v formatted with %.17g — enough digits to round-trip any IEEE
 *  binary64 value exactly. */
std::string fmtG17(double v);

/** @p s as a quoted JSON string literal (escapes ", \, and control
 *  bytes). */
std::string jsonQuote(const std::string &s);

/**
 * Every run-shaping knob of one sweep execution, in one serializable
 * struct. Scale and threads are *absolute* here (0 = "ask the
 * environment via envScale()/envThreads()"); a wire client captures
 * its environment into these fields so the daemon reproduces the
 * client's run exactly, regardless of the daemon's own environment.
 *
 * The three path fields describe the *client* side of a run (where
 * artifacts land, what baseline gates them, where the persistent
 * result cache lives). The daemon never touches the client's
 * filesystem: it serves artifact bytes back over the wire and keeps
 * its own result cache, so a served request clears these fields.
 */
struct RunOptions
{
    sim::ShardSpec shard;     ///< {0,1} = whole sweep
    unsigned scale = 0;       ///< workload scale multiplier; 0 = env
    unsigned threads = 0;     ///< sweep worker threads; 0 = env
    /** Per-interval IPC sampling stride in retired instructions;
     *  0 = off (the default — gated artifacts stay byte-identical). */
    uint64_t ipcSampleInterval = 0;
    bool perf = false;        ///< record host_seconds/kips per job
    bool emitArtifact = true; ///< false = skip artifact (and gate)
    double tolerance = 0.0;   ///< relative drift tolerance for the gate
    std::string artifactDir = "."; ///< where BENCH_*.json is written
    std::string baselinePath; ///< file or directory; empty = no gate
    std::string resultCacheDir; ///< persistent result cache; empty = none

    /** The effective scale multiplier: the explicit field, or the
     *  CONOPT_SCALE environment when the field is 0. */
    unsigned effectiveScale() const { return scale ? scale : envScale(); }
    /** The effective worker-thread request (still 0 when neither the
     *  field nor CONOPT_THREADS is set: "use hardware concurrency"). */
    unsigned effectiveThreads() const
    {
        return threads ? threads : envThreads();
    }
};

/**
 * One queued unit of work for the sweep service: which registered
 * bench to run (src/sim/bench_registry.hh), how to run it, and how
 * urgently. This is the wire payload of `conopt_sweep --connect` and
 * the only definition of the sweep-run schema.
 */
struct SweepRequest
{
    static constexpr const char *kSchema = "conopt-sweep-request";
    static constexpr uint32_t kVersion = 1;

    std::string bench;    ///< registered bench name, e.g. "fig6_speedup"
    uint32_t priority = 0; ///< higher runs first; FIFO within a level
    RunOptions run;

    /** Canonical single-line JSON: fixed field order, %.17g doubles.
     *  Equal requests encode to equal bytes. */
    std::string encodeJson() const;

    /** Strict inverse of encodeJson(). False (with a diagnostic in
     *  @p err) on malformed JSON, wrong schema/version, a bad shard
     *  spec, or a non-finite/negative tolerance. */
    static bool decode(const std::string &json, SweepRequest *out,
                       std::string *err);

    /** decode() over an already-parsed document node — the service
     *  envelope carries the request as a JSON subobject and parses the
     *  envelope exactly once. */
    static bool decodeValue(const JsonValue &doc, SweepRequest *out,
                            std::string *err);

    /** FNV-1a over every field, avalanched — stable across processes
     *  because the encoding is canonical. */
    std::string fingerprint() const;
};

} // namespace conopt::sim

#endif // CONOPT_SIM_REQUEST_HH
