/**
 * @file
 * Identity fingerprints for the experiment's inputs: a hash of every
 * MachineConfig field (the simulated machine) and a hash of an
 * assembled Program (the workload content). Both render as "0x%016x"
 * strings so they embed directly in artifacts and cache keys.
 *
 * Consumers:
 *   - src/sim/baseline.hh  per-job config fingerprints in BENCH_*.json
 *   - src/sim/result_cache.hh  (program, config, scale, seed) cache keys
 *
 * The FNV-1a helper is exposed because the artifact writer also
 * combines per-job fingerprints into a whole-artifact identity.
 */

#ifndef CONOPT_SIM_FINGERPRINT_HH
#define CONOPT_SIM_FINGERPRINT_HH

#include <cstdint>
#include <string>

#include "src/asm/program.hh"
#include "src/pipeline/machine_config.hh"
#include "src/util/bitops.hh"

namespace conopt::sim {

/** Incremental FNV-1a over 64-bit words and strings, avalanched on
 *  final() so single-bit input changes flip about half the output. */
struct Fnv
{
    uint64_t h = kFnv1aOffsetBasis;

    void
    mix(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h = fnv1aByte(h, uint8_t(v));
            v >>= 8;
        }
    }

    void
    mixStr(const std::string &s)
    {
        for (char c : s)
            h = fnv1aByte(h, uint8_t(c));
        mix(s.size());
    }

    uint64_t final() const { return avalanche64(h); }
};

/** @p v as "0x%016x". */
std::string hex64(uint64_t v);

/** Hash of every field of @p cfg (including all optimizer knobs). Two
 *  configs compare equal iff they simulate the same machine. */
std::string configFingerprint(const pipeline::MachineConfig &cfg);

/** Hash of an assembled program: entry pc, every instruction field,
 *  and every initialized data byte. Two programs compare equal iff the
 *  simulator sees the same initial machine state, so the fingerprint
 *  keys cached simulation results across processes. */
std::string programFingerprint(const assembler::Program &prog);

/** Fingerprint of the running executable's bytes (/proc/self/exe),
 *  computed once per process. The timing model lives in code, not in
 *  MachineConfig, so anything that persists simulation results across
 *  processes must key on the binary identity too: a rebuild with model
 *  changes cold-starts the result cache instead of silently serving
 *  stale numbers past the baseline gate. "0xunversioned" (with one
 *  stderr warning) when the executable cannot be read. */
const std::string &selfExeFingerprint();

} // namespace conopt::sim

#endif // CONOPT_SIM_FINGERPRINT_HH
