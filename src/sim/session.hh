/**
 * @file
 * SimSession: a reusable simulation context.
 *
 * The construct-per-call simulate() of the first four PRs paid the full
 * allocation cost of an Emulator + OooCore — sparse memory pages,
 * register files, RAT/MBC tables, predictor arrays, ROB/scheduler/
 * store-queue storage — once per job, hundreds of times per sweep. A
 * SimSession owns one of everything and re-initializes it in place:
 * reset() rebinds the session to a (program, config, maxInsts) triple
 * without reallocating whatever the previous run already sized, and
 * run() executes the timing simulation to completion.
 *
 * Determinism contract: a reused session produces bit-identical
 * SimResults to a freshly constructed one for the same job, no matter
 * what ran on it before (tests/test_session.cc pins this; the bench
 * baselines gate it end to end). Reuse changes how fast we simulate,
 * never what we simulate.
 *
 * SweepRunner keeps one thread-local session per worker thread, so an
 * N-thread sweep over hundreds of jobs constructs ~N cores' worth of
 * state instead of hundreds.
 */

#ifndef CONOPT_SIM_SESSION_HH
#define CONOPT_SIM_SESSION_HH

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/asm/program.hh"
#include "src/pipeline/machine_config.hh"
#include "src/sim/simulator.hh"

namespace conopt::arch {
class Emulator;
} // namespace conopt::arch
namespace conopt::pipeline {
class OooCore;
} // namespace conopt::pipeline

namespace conopt::sim {

/** An immutable, shareable assembled program. */
using ProgramPtr = std::shared_ptr<const assembler::Program>;

/** A reusable (Emulator, OooCore) pair. */
class SimSession
{
  public:
    SimSession();
    ~SimSession();

    SimSession(const SimSession &) = delete;
    SimSession &operator=(const SimSession &) = delete;

    /**
     * Arm the session for one run of @p program under @p config.
     * The first reset constructs the underlying emulator and core;
     * later resets re-initialize them in place.
     */
    void reset(ProgramPtr program, const pipeline::MachineConfig &config,
               uint64_t max_insts = uint64_t(1) << 32);

    /**
     * Run the armed simulation to completion. reset() must have been
     * called since the last run(); runs are one-shot (the pipeline
     * drains into its final state), so re-running requires re-arming.
     */
    SimResult run();

    /** Convenience: reset() + run() in one call. */
    SimResult
    simulate(ProgramPtr program, const pipeline::MachineConfig &config,
             uint64_t max_insts = uint64_t(1) << 32)
    {
        reset(std::move(program), config, max_insts);
        return run();
    }

    /** True between reset() and run(). */
    bool armed() const { return armed_; }

    /**
     * Enable/disable the core's idle-cycle fast-forward (default on).
     * A host-speed switch only: results are bit-identical either way
     * (tests/test_wakeup.cc). Sticky across reset()/simulate() calls.
     */
    void setFastForward(bool on);
    bool fastForwardEnabled() const { return fastForward_; }

    /**
     * Enable/disable the emulator's shared pre-decode fast path
     * (default on). A host-speed switch only: results are bit-identical
     * either way (tests/test_predecode.cc). Sticky across
     * reset()/simulate() calls.
     */
    void setPredecode(bool on);
    bool predecodeEnabled() const { return predecode_; }

    /**
     * Enable/disable the core's address-hashed store-queue window
     * (default on). A host-speed switch only: results are bit-identical
     * either way (tests/test_wakeup.cc). Sticky across
     * reset()/simulate() calls.
     */
    void setStoreWindow(bool on);
    bool storeWindowEnabled() const { return storeWindow_; }

    /**
     * Arm per-interval IPC sampling on the core: every @p intervalInsts
     * retired instructions one IPC sample enters a bounded reservoir of
     * @p reservoirCapacity slots drawn deterministically from @p seed
     * (0 interval = off, the default). Sticky across reset()/simulate()
     * like setFastForward(). Host-side observability only — simulated
     * results are bit-identical with sampling on or off; the samples
     * come back in SimResult::ipcSamples.
     */
    void setIpcSampling(uint64_t intervalInsts,
                        size_t reservoirCapacity = 256, uint64_t seed = 0);
    uint64_t ipcSampleInterval() const { return ipcInterval_; }

    /** Components, for tests (valid after the first reset()). */
    const arch::Emulator &emulator() const { return *emu_; }
    const pipeline::OooCore &core() const { return *core_; }

    /**
     * Process-lifetime count of SimSession constructions. The warm-
     * session contract (one thread-local session per worker thread,
     * constructed once and reused forever) becomes observable: the
     * standing service reports this in healthz, and the zero-alloc
     * test asserts a steady-state request constructs no new session.
     */
    static uint64_t constructed()
    {
        return constructed_.load(std::memory_order_relaxed);
    }

  private:
    static std::atomic<uint64_t> constructed_;
    ProgramPtr program_; ///< keeps the armed program alive
    std::unique_ptr<arch::Emulator> emu_;
    std::unique_ptr<pipeline::OooCore> core_;
    bool armed_ = false;
    bool fastForward_ = true;
    bool predecode_ = true;
    bool storeWindow_ = true;
    uint64_t ipcInterval_ = 0;
    size_t ipcCapacity_ = 256;
    uint64_t ipcSeed_ = 0;
};

} // namespace conopt::sim

#endif // CONOPT_SIM_SESSION_HH
