#include "src/sim/bench_registry.hh"

#include <utility>

#include "src/arch/emulator.hh"
#include "src/pipeline/machine_config.hh"
#include "src/sim/harness.hh"
#include "src/workloads/workload.hh"

namespace conopt::sim {

namespace {

/** Table 1: functional (emulator-only) run over every workload. The
 *  regression units are the dynamic instruction count and the memory
 *  checksum; cycles stay 0. */
bool
buildTable1(const RunOptions &run, const BenchContext &ctx,
            BenchArtifact *art, std::string *err)
{
    art->scale = run.effectiveScale();
    art->threads = run.effectiveThreads();

    ProgramCache local;
    ProgramCache &cache = ctx.programs ? *ctx.programs : local;
    const unsigned scaleMul = run.effectiveScale();
    const auto &all = workloads::allWorkloads();
    size_t total = 0;
    for (size_t i = 0; i < all.size(); ++i)
        if (run.shard.contains(i))
            ++total;
    size_t done = 0;
    for (size_t i = 0; i < all.size(); ++i) {
        // Emulator loop, not a SweepRunner: apply the same round-robin
        // shard partition by position in the full workload list.
        if (!run.shard.contains(i))
            continue;
        const auto &w = all[i];
        const unsigned scale = w.defaultScale * scaleMul;
        const auto program = cache.get(w.name, scale);
        arch::Emulator emu(*program);
        emu.run();
        if (!emu.halted()) {
            *err = w.name + " DID NOT HALT";
            return false;
        }
        ArtifactJob j;
        j.label = w.name + "/emu";
        j.workload = w.name;
        j.suite = w.suite;
        j.config = "emu";
        j.scale = scale;
        j.instructions = emu.instCount();
        j.halted = true;
        j.checksum = emu.memory().readQuad(workloads::checksumAddr);
        art->jobs.push_back(std::move(j));
        if (ctx.onProgress) {
            SweepProgress p;
            p.done = ++done;
            p.total = total;
            p.label = art->jobs.back().label;
            ctx.onProgress(p);
        }
    }
    return true;
}

/** Table 2: no simulation — the artifact pins the fingerprint of every
 *  preset machine, so a silent change to the experimental setup trips
 *  the baseline gate. */
bool
buildTable2(const RunOptions &run, const BenchContext &ctx,
            BenchArtifact *art, std::string *err)
{
    (void)ctx;
    (void)err;
    art->scale = run.effectiveScale();
    art->threads = run.effectiveThreads();
    size_t idx = 0;
    const auto preset = [&](const char *name,
                            const pipeline::MachineConfig &cfg) {
        // Positional shard partition over the preset list, matching
        // the sweep engine's round-robin convention.
        if (run.shard.contains(idx++))
            art->jobs.push_back(configJob(name, cfg));
    };
    preset("baseline", pipeline::MachineConfig::baseline());
    preset("optimized", pipeline::MachineConfig::optimized());
    preset("fetch_bound", pipeline::MachineConfig::fetchBound(false));
    preset("fetch_bound_opt", pipeline::MachineConfig::fetchBound(true));
    preset("exec_bound", pipeline::MachineConfig::execBound(false));
    preset("exec_bound_opt", pipeline::MachineConfig::execBound(true));
    return true;
}

/** Figure 6: the full timing sweep (every workload x base/opt). */
bool
buildFig6(const RunOptions &run, const BenchContext &ctx,
          BenchArtifact *art, std::string *err)
{
    (void)err;
    SweepSpec spec;
    spec.allWorkloads()
        .config("base", pipeline::MachineConfig::baseline())
        .config("opt", pipeline::MachineConfig::optimized());

    SweepOptions so;
    so.run = run;
    if (ctx.execThreads)
        so.run.threads = ctx.execThreads;
    so.cache = ctx.programs;
    so.resultCache = ctx.resultCache;
    so.onProgress = ctx.onProgress;
    so.ipcReservoirCapacity = ctx.ipcReservoirCapacity;

    SweepRunner runner(so);
    auto res = runner.run(spec);
    *art = artifactFromSweep(res, run, "base", {"opt"});
    if (ctx.resultOut)
        *ctx.resultOut = std::move(res);
    return true;
}

} // namespace

const std::vector<BenchDef> &
benchRegistry()
{
    static const std::vector<BenchDef> registry = {
        {"table1_workloads",
         "Table 1: workload instruction counts and checksums (functional)",
         buildTable1},
        {"table2_config",
         "Table 2: machine-configuration preset fingerprints",
         buildTable2},
        {"fig6_speedup",
         "Figure 6: continuous-optimization speedup over baseline",
         buildFig6},
    };
    return registry;
}

const BenchDef *
findBench(const std::string &name)
{
    for (const auto &def : benchRegistry())
        if (name == def.name)
            return &def;
    return nullptr;
}

} // namespace conopt::sim
