#include "src/sim/fingerprint.hh"

#include <cinttypes>
#include <cstdio>

namespace conopt::sim {

std::string
hex64(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
    return buf;
}

std::string
configFingerprint(const pipeline::MachineConfig &cfg)
{
    Fnv f;
    // Widths and depths.
    f.mix(cfg.fetchWidth);
    f.mix(cfg.renameWidth);
    f.mix(cfg.retireWidth);
    f.mix(cfg.frontEndDepth);
    f.mix(cfg.renameBaseStages);
    f.mix(cfg.schedMinDelay);
    f.mix(cfg.regReadDepth);
    f.mix(cfg.redirectPenalty);
    f.mix(cfg.resteerPenalty);
    // Resources.
    f.mix(cfg.robEntries);
    f.mix(cfg.schedEntries);
    f.mix(cfg.dispatchQueueEntries);
    f.mix(cfg.numSimpleAlu);
    f.mix(cfg.numComplexAlu);
    f.mix(cfg.numFpAlu);
    f.mix(cfg.numAgen);
    f.mix(cfg.numDCachePorts);
    f.mix(cfg.intPhysRegs);
    f.mix(cfg.fpPhysRegs);
    // Memory hierarchy.
    for (const auto *c : {&cfg.hier.l1i, &cfg.hier.l1d, &cfg.hier.l2}) {
        f.mix(c->sizeBytes);
        f.mix(c->assoc);
        f.mix(c->lineBytes);
        f.mix(c->latency);
    }
    f.mix(cfg.hier.memLatency);
    // Branch prediction.
    f.mix(cfg.bp.historyBits);
    f.mix(cfg.bp.btbEntries);
    f.mix(cfg.bp.rasEntries);
    // Optimizer (every knob, including the family enables).
    f.mix(cfg.opt.enabled);
    f.mix(cfg.opt.enableCpRa);
    f.mix(cfg.opt.enableRleSf);
    f.mix(cfg.opt.enableValueFeedback);
    f.mix(cfg.opt.enableBranchInference);
    f.mix(cfg.opt.enableStrengthReduction);
    f.mix(cfg.opt.enableMoveElim);
    f.mix(cfg.opt.addChainDepth);
    f.mix(cfg.opt.allowChainedMem);
    f.mix(cfg.opt.extraStages);
    f.mix(cfg.opt.mbc.entries);
    f.mix(cfg.opt.mbc.assoc);
    f.mix(cfg.opt.mbcFlushOnUnknownStore);
    // Misc timing knobs.
    f.mix(cfg.vfbDelay);
    f.mix(cfg.mbcMisspecPenalty);
    f.mix(cfg.maxCycles);
    return hex64(f.final());
}

std::string
programFingerprint(const assembler::Program &prog)
{
    Fnv f;
    f.mix(prog.entryPc);
    f.mix(prog.code.size());
    for (const auto &inst : prog.code) {
        f.mix(uint64_t(inst.op));
        f.mix(inst.ra);
        f.mix(inst.rb);
        f.mix(inst.rc);
        f.mix(inst.useImm);
        f.mix(uint64_t(inst.imm));
    }
    f.mix(prog.data.size());
    for (const auto &seg : prog.data) {
        f.mix(seg.addr);
        f.mix(seg.bytes.size());
        for (uint8_t b : seg.bytes)
            f.h = fnv1aByte(f.h, b);
    }
    return hex64(f.final());
}

const std::string &
selfExeFingerprint()
{
    static const std::string fp = [] {
        std::FILE *f = std::fopen("/proc/self/exe", "rb");
        if (!f) {
            std::fprintf(stderr,
                         "[fingerprint] cannot read /proc/self/exe; "
                         "cached results will not invalidate on "
                         "simulator rebuilds\n");
            return std::string("0xunversioned");
        }
        Fnv h;
        uint8_t buf[65536];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            for (size_t i = 0; i < n; ++i)
                h.h = fnv1aByte(h.h, buf[i]);
        std::fclose(f);
        return hex64(h.final());
    }();
    return fp;
}

} // namespace conopt::sim
