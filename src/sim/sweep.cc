#include "src/sim/sweep.hh"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>

#include "src/pipeline/stats_aggregate.hh"
#include "src/sim/fingerprint.hh"
#include "src/util/bitops.hh"
#include "src/util/logging.hh"
#include "src/workloads/workload.hh"

namespace conopt::sim {

// envScale()/envThreads()/parseShard() moved to src/sim/request.cc
// with the canonical RunOptions/SweepRequest schema.

namespace {

/** FNV-1a over the label, avalanched: the per-job seed. */
uint64_t
seedFor(const std::string &label, unsigned scale)
{
    uint64_t h = kFnv1aOffsetBasis;
    for (char c : label)
        h = fnv1aByte(h, uint8_t(c));
    h ^= scale;
    h = avalanche64(h);
    return h ? h : 1;
}

/** Resolve names/defaults so workers see a fully-specified job.
 *  @p scaleMul is the workload scale multiplier (RunOptions::
 *  effectiveScale(): an explicit request value, or CONOPT_SCALE). */
void
normalize(SimJob &job, unsigned scaleMul)
{
    if (job.label.empty()) {
        if (job.workload.empty() && !job.configName.empty())
            job.label = job.configName;
        else
            job.label = SweepSpec::labelFor(job.workload, job.configName);
    }
    if (!job.program) {
        const auto *w = workloads::findWorkload(job.workload);
        if (!w)
            conopt_fatal("sweep job '%s': unknown workload '%s'",
                         job.label.c_str(), job.workload.c_str());
        if (job.scale == 0)
            job.scale = w->defaultScale * scaleMul;
    } else if (job.scale == 0) {
        // Pre-built programs have no registry defaultScale, but must
        // still be fully specified: the scale feeds the seed
        // derivation, the artifact record, and the result-cache key.
        // A bare program is the scale-multiplier of a defaultScale-1
        // job.
        job.scale = scaleMul;
    }
    if (job.seed == 0)
        job.seed = seedFor(job.label, job.scale);
}

} // namespace

// --------------------------------------------------------------------------
// SweepSpec
// --------------------------------------------------------------------------

SweepSpec &
SweepSpec::workload(const std::string &name)
{
    workloads_.push_back(name);
    return *this;
}

SweepSpec &
SweepSpec::workloads(const std::vector<std::string> &names)
{
    workloads_.insert(workloads_.end(), names.begin(), names.end());
    return *this;
}

SweepSpec &
SweepSpec::suite(const std::string &suite)
{
    for (const auto *w : workloads::suiteWorkloads(suite))
        workloads_.push_back(w->name);
    return *this;
}

SweepSpec &
SweepSpec::allWorkloads()
{
    for (const auto &w : workloads::allWorkloads())
        workloads_.push_back(w.name);
    return *this;
}

SweepSpec &
SweepSpec::config(const std::string &name,
                  const pipeline::MachineConfig &cfg)
{
    configs_.emplace_back(name, cfg);
    return *this;
}

SweepSpec &
SweepSpec::scale(unsigned s)
{
    scale_ = s;
    return *this;
}

SweepSpec &
SweepSpec::maxInsts(uint64_t n)
{
    maxInsts_ = n;
    return *this;
}

std::string
SweepSpec::labelFor(const std::string &workload,
                    const std::string &configName)
{
    return workload + "/" + configName;
}

std::vector<SimJob>
SweepSpec::jobs() const
{
    std::vector<SimJob> out;
    out.reserve(workloads_.size() * configs_.size());
    for (const auto &w : workloads_) {
        for (const auto &[name, cfg] : configs_) {
            SimJob j;
            j.label = labelFor(w, name);
            j.workload = w;
            j.scale = scale_;
            j.config = cfg;
            j.configName = name;
            j.maxInsts = maxInsts_;
            out.push_back(std::move(j));
        }
    }
    return out;
}

// --------------------------------------------------------------------------
// ProgramCache
// --------------------------------------------------------------------------

ProgramPtr
ProgramCache::get(const std::string &workload, unsigned scale)
{
    std::promise<ProgramPtr> promise;
    std::shared_future<ProgramPtr> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto [it, inserted] = cache_.try_emplace({workload, scale});
        if (inserted) {
            it->second = promise.get_future().share();
            builder = true;
        } else {
            hits_.fetch_add(1);
        }
        future = it->second;
    }
    if (builder) {
        const auto &w = workloads::workloadByName(workload);
        auto prog =
            std::make_shared<const assembler::Program>(w.build(scale));
        builds_.fetch_add(1);
        promise.set_value(prog);
        return prog;
    }
    return future.get();
}

// --------------------------------------------------------------------------
// SweepResult
// --------------------------------------------------------------------------

void
SweepResult::add(JobResult r)
{
    const auto [it, inserted] =
        byLabel_.emplace(r.job.label, results_.size());
    if (!inserted)
        conopt_fatal("duplicate sweep job label '%s'",
                     r.job.label.c_str());
    results_.push_back(std::move(r));
}

const JobResult *
SweepResult::find(const std::string &label) const
{
    const auto it = byLabel_.find(label);
    return it == byLabel_.end() ? nullptr : &results_[it->second];
}

const JobResult &
SweepResult::at(const std::string &label) const
{
    const JobResult *r = find(label);
    if (!r)
        conopt_fatal("no sweep result labelled '%s'", label.c_str());
    return *r;
}

uint64_t
SweepResult::cycles(const std::string &label) const
{
    return at(label).sim.stats.cycles;
}

double
SweepResult::ipc(const std::string &label) const
{
    return at(label).sim.ipc();
}

double
SweepResult::speedup(const std::string &baseLabel,
                     const std::string &label) const
{
    const JobResult *base = find(baseLabel);
    const JobResult *other = find(label);
    if (!base || !other || other->sim.stats.cycles == 0)
        return 0.0;
    return double(base->sim.stats.cycles) /
           double(other->sim.stats.cycles);
}

double
SweepResult::speedupOf(const std::string &workload,
                       const std::string &configName,
                       const std::string &baseConfig) const
{
    return speedup(SweepSpec::labelFor(workload, baseConfig),
                   SweepSpec::labelFor(workload, configName));
}

// --------------------------------------------------------------------------
// SweepRunner
// --------------------------------------------------------------------------

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts)
{
    if (opts_.cache) {
        cache_ = opts_.cache;
    } else {
        owned_ = std::make_unique<ProgramCache>();
        cache_ = owned_.get();
    }
}

std::string
SweepRunner::programFp(const ProgramPtr &program)
{
    {
        std::lock_guard<std::mutex> lock(fpMu_);
        const auto it = programFps_.find(program.get());
        if (it != programFps_.end())
            return it->second;
    }
    // Hash outside the lock so distinct programs fingerprint in
    // parallel; two workers racing on the same program just compute
    // it twice (identical values, one wins the emplace).
    std::string fp = programFingerprint(*program);
    std::lock_guard<std::mutex> lock(fpMu_);
    return programFps_.emplace(program.get(), std::move(fp))
        .first->second;
}

JobResult
SweepRunner::runOne(const SimJob &job)
{
    JobResult r;
    r.job = job;
    const ProgramPtr program =
        job.program ? job.program : cache_->get(job.workload, job.scale);
    if (!job.workload.empty()) {
        if (const auto *w = workloads::findWorkload(job.workload))
            r.suite = w->suite;
    }
    const auto t0 = std::chrono::steady_clock::now();
    ResultCache *rc = opts_.resultCache.get();
    ResultCache::Key key;
    if (rc) {
        key.programFingerprint = programFp(program);
        key.configFingerprint = configFingerprint(job.config);
        key.simFingerprint = selfExeFingerprint();
        key.scale = job.scale;
        key.seed = job.seed;
        key.maxInsts = job.maxInsts;
        r.fromCache = rc->lookup(key, &r.sim);
    }
    if (!r.fromCache) {
        // One long-lived session per worker thread: every job this
        // thread runs reuses the same emulator/core storage instead of
        // constructing a fresh pair (bit-identical results either way;
        // tests/test_session.cc pins the equivalence).
        static thread_local SimSession session;
        // The session is sticky across jobs, so sampling must be
        // (re)armed — or disarmed — for every job, with the job's own
        // deterministic seed: per-job reservoirs never depend on which
        // worker thread ran the job or what ran on it before.
        session.setIpcSampling(opts_.run.ipcSampleInterval,
                               opts_.ipcReservoirCapacity, job.seed);
        // Time the simulation alone: the kips trend must not move
        // with cache fingerprinting or the rc->store() disk write.
        const auto s0 = std::chrono::steady_clock::now();
        r.sim = session.simulate(program, job.config, job.maxInsts);
        const auto s1 = std::chrono::steady_clock::now();
        r.simSeconds = std::chrono::duration<double>(s1 - s0).count();
        if (r.simSeconds > 0.0)
            r.kips = double(r.sim.instructions) / r.simSeconds / 1e3;
        if (rc)
            rc->store(key, r.sim);
    }
    const auto t1 = std::chrono::steady_clock::now();
    r.hostSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return r;
}

SweepResult
SweepRunner::run(std::vector<SimJob> jobs)
{
    // Normalize and validate the FULL job list on the calling thread,
    // so configuration errors are fatal before any worker starts and
    // every shard of the same sweep agrees on labels and positions.
    {
        std::set<std::string> seen;
        const unsigned scaleMul = opts_.run.effectiveScale();
        for (auto &job : jobs) {
            normalize(job, scaleMul);
            if (!seen.insert(job.label).second)
                conopt_fatal("duplicate sweep job label '%s'",
                             job.label.c_str());
        }
    }

    // Keep only this shard's slice (round-robin over submission order,
    // so the partition is balanced and depends only on job position).
    const ShardSpec shard = opts_.run.shard;
    if (shard.count == 0 || shard.index >= shard.count)
        conopt_fatal("invalid sweep shard %u/%u (want index < count)",
                     shard.index, shard.count);
    if (shard.active()) {
        std::vector<SimJob> mine;
        mine.reserve(jobs.size() / shard.count + 1);
        for (size_t i = 0; i < jobs.size(); ++i)
            if (shard.contains(i))
                mine.push_back(std::move(jobs[i]));
        jobs.swap(mine);
    }

    {
        // Program objects from a previous run() may be gone; never let
        // the fingerprint memo match a recycled address.
        std::lock_guard<std::mutex> lock(fpMu_);
        programFps_.clear();
    }

    // Batched execution: jobs sharing a program source at one (scale,
    // maxInsts) form a group a single worker runs back-to-back, so the
    // worker's warm session never rebinds programs mid-group — the
    // pre-decode table and resident memory image stay hot and only the
    // MachineConfig changes. Groups (and positions within a group)
    // follow submission order, and results land at submission indices,
    // so the output is identical to unbatched execution.
    std::vector<std::vector<size_t>> groups;
    groups.reserve(jobs.size());
    if (opts_.batchJobs) {
        // (prebuilt program, workload name, scale, maxInsts): prebuilt
        // programs group by object identity, registry workloads by
        // (name, scale) — exactly the ProgramCache key.
        using GroupKey = std::tuple<const assembler::Program *,
                                    std::string, unsigned, uint64_t>;
        std::map<GroupKey, size_t> groupIndex;
        for (size_t i = 0; i < jobs.size(); ++i) {
            const SimJob &j = jobs[i];
            GroupKey key{j.program.get(), j.program ? std::string()
                                                    : j.workload,
                         j.scale, j.maxInsts};
            const auto [it, inserted] =
                groupIndex.try_emplace(std::move(key), groups.size());
            if (inserted)
                groups.emplace_back();
            groups[it->second].push_back(i);
        }
    } else {
        for (size_t i = 0; i < jobs.size(); ++i)
            groups.push_back({i});
    }

    std::vector<JobResult> results(jobs.size());
    std::atomic<size_t> nextGroup{0};

    // Progress state, shared by workers under one mutex; the callback
    // itself runs inside the lock so reports are serialized and the
    // done-counter never goes backwards from a caller's viewpoint.
    std::mutex progressMu;
    size_t done = 0;
    double hostTotal = 0.0, logIpcSum = 0.0;
    size_t ipcCount = 0;
    double simSecTotal = 0.0;
    uint64_t simInstTotal = 0;
    pipeline::PercentileAccumulator hostLatency;
    const auto sweepStart = std::chrono::steady_clock::now();

    const auto reportDone = [&](size_t i) {
        std::lock_guard<std::mutex> lock(progressMu);
        const JobResult &r = results[i];
        ++done;
        hostTotal += r.hostSeconds;
        if (const double ipc = r.sim.ipc(); ipc > 0.0) {
            logIpcSum += std::log(ipc);
            ++ipcCount;
        }
        if (r.simSeconds > 0.0) {
            simSecTotal += r.simSeconds;
            simInstTotal += r.sim.instructions;
        }
        hostLatency.add(r.hostSeconds);
        SweepProgress p;
        p.done = done;
        p.total = jobs.size();
        p.label = r.job.label;
        p.jobHostSeconds = r.hostSeconds;
        p.totalHostSeconds = hostTotal;
        p.elapsedSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - sweepStart)
                .count();
        p.etaSeconds = p.elapsedSeconds / double(done) *
                       double(jobs.size() - done);
        p.geomeanIpc =
            ipcCount ? std::exp(logIpcSum / double(ipcCount)) : 0.0;
        if (simSecTotal > 0.0)
            p.kips = double(simInstTotal) / simSecTotal / 1e3;
        p.hostP50 = hostLatency.percentile(50);
        p.hostP95 = hostLatency.percentile(95);
        p.hostP99 = hostLatency.percentile(99);
        opts_.onProgress(p);
    };

    const auto worker = [&] {
        // Workers claim whole groups: every job of a group runs on one
        // thread's warm session, back-to-back.
        for (size_t g; (g = nextGroup.fetch_add(1)) < groups.size();) {
            for (const size_t i : groups[g]) {
                results[i] = runOne(jobs[i]);
                if (opts_.onProgress)
                    reportDone(i);
            }
        }
    };

    unsigned n = opts_.run.effectiveThreads();
    if (n == 0)
        n = std::thread::hardware_concurrency();
    if (n < 1)
        n = 1;
    if (n > groups.size())
        n = unsigned(groups.size());
    if (n < 1)
        n = 1; // zero jobs still needs one pass for the empty result

    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    // Collection order is submission order, independent of scheduling.
    SweepResult out;
    for (auto &r : results)
        out.add(std::move(r));
    return out;
}

} // namespace conopt::sim
