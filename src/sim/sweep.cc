#include "src/sim/sweep.hh"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <set>
#include <thread>

#include "src/util/bitops.hh"
#include "src/util/logging.hh"
#include "src/workloads/workload.hh"

namespace conopt::sim {

namespace {

/** Parse environment variable @p name as an unsigned. Unset, empty,
 *  non-numeric, negative, or zero values yield @p def; values beyond
 *  @p cap clamp to it (so absurd inputs can't overflow downstream
 *  scale/thread arithmetic). */
unsigned
envUnsigned(const char *name, unsigned def, unsigned cap)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return def;
    // Skip exactly the whitespace strtoull would, so a negative value
    // is rejected here rather than wrapping to a huge unsigned there.
    while (std::isspace(uint8_t(*s)))
        ++s;
    if (*s == '-')
        return def;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s)
        return def;
    if (errno == ERANGE || v > cap)
        return cap;
    return v == 0 ? def : unsigned(v);
}

} // namespace

unsigned
envScale()
{
    return envUnsigned("CONOPT_SCALE", 1, kMaxEnvScale);
}

unsigned
envThreads()
{
    return envUnsigned("CONOPT_THREADS", 0, kMaxEnvThreads);
}

namespace {

/** FNV-1a over the label, avalanched: the per-job seed. */
uint64_t
seedFor(const std::string &label, unsigned scale)
{
    uint64_t h = kFnv1aOffsetBasis;
    for (char c : label)
        h = fnv1aByte(h, uint8_t(c));
    h ^= scale;
    h = avalanche64(h);
    return h ? h : 1;
}

/** Resolve names/defaults so workers see a fully-specified job. */
void
normalize(SimJob &job)
{
    if (job.label.empty()) {
        if (job.workload.empty() && !job.configName.empty())
            job.label = job.configName;
        else
            job.label = SweepSpec::labelFor(job.workload, job.configName);
    }
    if (!job.program) {
        const auto *w = workloads::findWorkload(job.workload);
        if (!w)
            conopt_fatal("sweep job '%s': unknown workload '%s'",
                         job.label.c_str(), job.workload.c_str());
        if (job.scale == 0)
            job.scale = w->defaultScale * envScale();
    }
    if (job.seed == 0)
        job.seed = seedFor(job.label, job.scale);
}

} // namespace

// --------------------------------------------------------------------------
// SweepSpec
// --------------------------------------------------------------------------

SweepSpec &
SweepSpec::workload(const std::string &name)
{
    workloads_.push_back(name);
    return *this;
}

SweepSpec &
SweepSpec::workloads(const std::vector<std::string> &names)
{
    workloads_.insert(workloads_.end(), names.begin(), names.end());
    return *this;
}

SweepSpec &
SweepSpec::suite(const std::string &suite)
{
    for (const auto *w : workloads::suiteWorkloads(suite))
        workloads_.push_back(w->name);
    return *this;
}

SweepSpec &
SweepSpec::allWorkloads()
{
    for (const auto &w : workloads::allWorkloads())
        workloads_.push_back(w.name);
    return *this;
}

SweepSpec &
SweepSpec::config(const std::string &name,
                  const pipeline::MachineConfig &cfg)
{
    configs_.emplace_back(name, cfg);
    return *this;
}

SweepSpec &
SweepSpec::scale(unsigned s)
{
    scale_ = s;
    return *this;
}

SweepSpec &
SweepSpec::maxInsts(uint64_t n)
{
    maxInsts_ = n;
    return *this;
}

std::string
SweepSpec::labelFor(const std::string &workload,
                    const std::string &configName)
{
    return workload + "/" + configName;
}

std::vector<SimJob>
SweepSpec::jobs() const
{
    std::vector<SimJob> out;
    out.reserve(workloads_.size() * configs_.size());
    for (const auto &w : workloads_) {
        for (const auto &[name, cfg] : configs_) {
            SimJob j;
            j.label = labelFor(w, name);
            j.workload = w;
            j.scale = scale_;
            j.config = cfg;
            j.configName = name;
            j.maxInsts = maxInsts_;
            out.push_back(std::move(j));
        }
    }
    return out;
}

// --------------------------------------------------------------------------
// ProgramCache
// --------------------------------------------------------------------------

ProgramPtr
ProgramCache::get(const std::string &workload, unsigned scale)
{
    std::promise<ProgramPtr> promise;
    std::shared_future<ProgramPtr> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto [it, inserted] = cache_.try_emplace({workload, scale});
        if (inserted) {
            it->second = promise.get_future().share();
            builder = true;
        } else {
            hits_.fetch_add(1);
        }
        future = it->second;
    }
    if (builder) {
        const auto &w = workloads::workloadByName(workload);
        auto prog =
            std::make_shared<const assembler::Program>(w.build(scale));
        builds_.fetch_add(1);
        promise.set_value(prog);
        return prog;
    }
    return future.get();
}

// --------------------------------------------------------------------------
// SweepResult
// --------------------------------------------------------------------------

void
SweepResult::add(JobResult r)
{
    const auto [it, inserted] =
        byLabel_.emplace(r.job.label, results_.size());
    if (!inserted)
        conopt_fatal("duplicate sweep job label '%s'",
                     r.job.label.c_str());
    results_.push_back(std::move(r));
}

const JobResult *
SweepResult::find(const std::string &label) const
{
    const auto it = byLabel_.find(label);
    return it == byLabel_.end() ? nullptr : &results_[it->second];
}

const JobResult &
SweepResult::at(const std::string &label) const
{
    const JobResult *r = find(label);
    if (!r)
        conopt_fatal("no sweep result labelled '%s'", label.c_str());
    return *r;
}

uint64_t
SweepResult::cycles(const std::string &label) const
{
    return at(label).sim.stats.cycles;
}

double
SweepResult::ipc(const std::string &label) const
{
    return at(label).sim.ipc();
}

double
SweepResult::speedup(const std::string &baseLabel,
                     const std::string &label) const
{
    const JobResult *base = find(baseLabel);
    const JobResult *other = find(label);
    if (!base || !other || other->sim.stats.cycles == 0)
        return 0.0;
    return double(base->sim.stats.cycles) /
           double(other->sim.stats.cycles);
}

double
SweepResult::speedupOf(const std::string &workload,
                       const std::string &configName,
                       const std::string &baseConfig) const
{
    return speedup(SweepSpec::labelFor(workload, baseConfig),
                   SweepSpec::labelFor(workload, configName));
}

// --------------------------------------------------------------------------
// SweepRunner
// --------------------------------------------------------------------------

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts)
{
    if (opts_.cache) {
        cache_ = opts_.cache;
    } else {
        owned_ = std::make_unique<ProgramCache>();
        cache_ = owned_.get();
    }
}

JobResult
SweepRunner::runOne(const SimJob &job)
{
    JobResult r;
    r.job = job;
    const ProgramPtr program =
        job.program ? job.program : cache_->get(job.workload, job.scale);
    if (!job.workload.empty()) {
        if (const auto *w = workloads::findWorkload(job.workload))
            r.suite = w->suite;
    }
    const auto t0 = std::chrono::steady_clock::now();
    r.sim = simulate(*program, job.config, job.maxInsts);
    const auto t1 = std::chrono::steady_clock::now();
    r.hostSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return r;
}

SweepResult
SweepRunner::run(std::vector<SimJob> jobs)
{
    // Normalize and validate on the calling thread so configuration
    // errors are fatal before any worker starts.
    {
        std::set<std::string> seen;
        for (auto &job : jobs) {
            normalize(job);
            if (!seen.insert(job.label).second)
                conopt_fatal("duplicate sweep job label '%s'",
                             job.label.c_str());
        }
    }

    std::vector<JobResult> results(jobs.size());
    std::atomic<size_t> next{0};
    const auto worker = [&] {
        for (size_t i; (i = next.fetch_add(1)) < jobs.size();)
            results[i] = runOne(jobs[i]);
    };

    unsigned n = opts_.threads ? opts_.threads : envThreads();
    if (n == 0)
        n = std::thread::hardware_concurrency();
    if (n < 1)
        n = 1;
    if (n > jobs.size())
        n = unsigned(jobs.size());

    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    // Collection order is submission order, independent of scheduling.
    SweepResult out;
    for (auto &r : results)
        out.add(std::move(r));
    return out;
}

} // namespace conopt::sim
