#include "src/sim/harness.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "src/pipeline/stats_aggregate.hh"
#include "src/sim/driver.hh"
#include "src/sim/fingerprint.hh"

namespace conopt::sim {

void
printSweepProgress(const SweepProgress &p)
{
    std::fprintf(stderr,
                 "[sweep] %3zu/%zu  %-30s %7.2fs  elapsed %6.1fs  "
                 "eta %6.1fs  geomean ipc %.3f\n",
                 p.done, p.total, p.label.c_str(), p.jobHostSeconds,
                 p.elapsedSeconds, p.etaSeconds, p.geomeanIpc);
}

void
printHostPercentiles(const SweepResult &res)
{
    pipeline::PercentileAccumulator acc;
    for (const auto &r : res.all())
        if (r.simSeconds > 0.0)
            acc.add(r.simSeconds);
    if (acc.empty())
        return;
    std::fprintf(stderr,
                 "[perf] host seconds/job: p50 %.4f  p95 %.4f  "
                 "p99 %.4f  max %.4f  (n=%zu)\n",
                 acc.percentile(50), acc.percentile(95),
                 acc.percentile(99), acc.max(), acc.count());
}

HarnessOptions
HarnessOptions::parse(int argc, char **argv, bool lenientArgs)
{
    std::vector<std::string> args;
    args.reserve(argc > 1 ? size_t(argc - 1) : 0);
    for (int i = 1; i < argc; ++i)
        args.push_back(argv[i]);
    return parseArgs(args, lenientArgs);
}

HarnessOptions
HarnessOptions::parseArgs(const std::vector<std::string> &args,
                          bool lenientArgs)
{
    HarnessOptions o;
    if (const char *d = std::getenv("CONOPT_ARTIFACT_DIR"); d && *d)
        o.run.artifactDir = d;
    if (const char *b = std::getenv("CONOPT_BASELINE_DIR"); b && *b)
        o.run.baselinePath = b;
    if (const char *c = std::getenv("CONOPT_RESULT_CACHE"); c && *c)
        o.run.resultCacheDir = c;
    if (const char *p = std::getenv("CONOPT_PROGRESS");
        p && *p && std::string(p) != "0")
        o.progress = true;
    if (const char *p = std::getenv("CONOPT_PERF");
        p && *p && std::string(p) != "0")
        o.run.perf = true;
    const auto shardSpec = [&](const char *s, const char *what) {
        if (!parseShard(s, &o.run.shard)) {
            std::fprintf(stderr,
                         "invalid %s '%s' (want \"i/n\" with "
                         "0 <= i < n, e.g. \"0/2\")\n",
                         what, s);
            std::exit(2);
        }
    };
    if (const char *s = std::getenv("CONOPT_SHARD"); s && *s)
        shardSpec(s, "CONOPT_SHARD");
    const auto progressFdSpec = [&](const char *s, const char *what) {
        char *end = nullptr;
        errno = 0;
        const long v = std::strtol(s, &end, 10);
        if (end == s || *end != '\0' || errno == ERANGE || v < 0 ||
            v > (1 << 20)) {
            std::fprintf(stderr,
                         "invalid %s '%s' (want a non-negative "
                         "file descriptor number)\n",
                         what, s);
            std::exit(2);
        }
        o.progressFd = int(v);
    };
    if (const char *f = std::getenv("CONOPT_PROGRESS_FD"); f && *f)
        progressFdSpec(f, "CONOPT_PROGRESS_FD");
    const auto ipcSampleSpec = [&](const char *s, const char *what) {
        char *end = nullptr;
        errno = 0;
        const unsigned long long v = std::strtoull(s, &end, 10);
        if (end == s || *end != '\0' || errno == ERANGE) {
            std::fprintf(stderr,
                         "invalid %s '%s' (want a sampling stride "
                         "in retired instructions; 0 = off)\n",
                         what, s);
            std::exit(2);
        }
        o.run.ipcSampleInterval = uint64_t(v);
    };
    if (const char *s = std::getenv("CONOPT_IPC_SAMPLE"); s && *s)
        ipcSampleSpec(s, "CONOPT_IPC_SAMPLE");
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s requires a value\n", a.c_str());
                std::exit(2);
            }
            return args[++i].c_str();
        };
        if (a == "--artifact-dir") {
            o.run.artifactDir = value();
        } else if (a == "--baseline") {
            o.run.baselinePath = value();
        } else if (a == "--shard") {
            shardSpec(value(), "--shard");
        } else if (a == "--result-cache") {
            o.run.resultCacheDir = value();
        } else if (a == "--progress") {
            o.progress = true;
        } else if (a == "--perf") {
            o.run.perf = true;
        } else if (a == "--ipc-sample-interval") {
            ipcSampleSpec(value(), "--ipc-sample-interval");
        } else if (a == "--progress-fd") {
            progressFdSpec(value(), "--progress-fd");
        } else if (a == "--tolerance") {
            const char *v = value();
            if (!parseTolerance(v, &o.run.tolerance)) {
                std::fprintf(stderr,
                             "invalid --tolerance '%s' (want a "
                             "finite non-negative number)\n",
                             v);
                std::exit(2);
            }
        } else if (a == "--no-artifact") {
            o.run.emitArtifact = false;
        } else if (!lenientArgs) {
            std::fprintf(stderr,
                         "unknown argument '%s' (flags: "
                         "--artifact-dir DIR, --baseline PATH, "
                         "--shard I/N, --result-cache DIR, "
                         "--perf, --ipc-sample-interval N, "
                         "--progress, --progress-fd FD, "
                         "--tolerance T, --no-artifact)\n",
                         a.c_str());
            std::exit(2);
        }
    }
    if (!o.run.resultCacheDir.empty())
        o.resultCache =
            std::make_shared<ResultCache>(o.run.resultCacheDir);
    return o;
}

ProgressFn
HarnessOptions::progressFn() const
{
    if (progressFd >= 0) {
        const int fd = progressFd;
        const bool human = progress;
        return [fd, human](const SweepProgress &p) {
            if (human)
                printSweepProgress(p);
            writeProgressLine(fd, p);
        };
    }
    if (progress)
        return printSweepProgress;
    return {};
}

SweepOptions
HarnessOptions::sweepOptions() const
{
    SweepOptions s;
    s.run = run;
    s.resultCache = resultCache;
    s.onProgress = progressFn();
    return s;
}

int
harnessFinish(const std::string &benchName, BenchArtifact art,
              const HarnessOptions &o)
{
    if (o.resultCache) {
        const auto cs = o.resultCache->stats();
        std::fprintf(stderr,
                     "[cache] %s: %llu hits, %llu misses, %llu stored",
                     o.resultCache->dir().c_str(),
                     (unsigned long long)cs.hits,
                     (unsigned long long)cs.misses,
                     (unsigned long long)cs.stores);
        if (cs.errors)
            std::fprintf(stderr, " (%llu corrupt)",
                         (unsigned long long)cs.errors);
        std::fprintf(stderr, "\n");
    }
    if (!o.run.emitArtifact)
        return 0;

    art.bench = benchName;
    std::string file = "BENCH_" + benchName;
    if (o.run.shard.active())
        file += ".shard" + std::to_string(o.run.shard.index) + "of" +
                std::to_string(o.run.shard.count);
    file += ".json";
    const std::string outPath =
        (std::filesystem::path(o.run.artifactDir) / file).string();
    std::string err;
    if (!art.save(outPath, &err)) {
        std::fprintf(stderr, "%s: cannot write artifact: %s\n",
                     benchName.c_str(), err.c_str());
        return 1;
    }
    std::fprintf(stderr, "[artifact] wrote %s (%zu jobs, %zu geomeans)\n",
                 outPath.c_str(), art.jobs.size(), art.geomeans.size());

    if (o.run.baselinePath.empty())
        return 0;
    if (o.run.shard.active()) {
        // A shard is a partial figure: gating it against a full
        // baseline would flag every other shard's jobs as missing.
        // The gate belongs to the merged artifact.
        std::fprintf(stderr,
                     "[artifact] shard %u/%u: baseline gate deferred; "
                     "merge the shard artifacts and run "
                     "conopt_bench_check %s <shard-dir>\n",
                     o.run.shard.index, o.run.shard.count,
                     o.run.baselinePath.c_str());
        return 0;
    }

    std::string basePath = o.run.baselinePath;
    std::error_code ec;
    if (std::filesystem::is_directory(basePath, ec)) {
        basePath = (std::filesystem::path(basePath) /
                    ("BENCH_" + benchName + ".json"))
                       .string();
        // A baseline *directory* gates whichever benches have seeds in
        // it; a bench without one is "not yet baselined", not a
        // failure (CONOPT_BASELINE_DIR is typically set globally). An
        // explicit --baseline <file> that is missing still errors.
        if (!std::filesystem::exists(basePath, ec)) {
            std::fprintf(stderr,
                         "[artifact] no baseline for %s in %s; gate "
                         "skipped\n",
                         benchName.c_str(), o.run.baselinePath.c_str());
            return 0;
        }
    }
    BenchArtifact baseline;
    if (!loadArtifact(basePath, &baseline, &err)) {
        std::fprintf(stderr, "%s: cannot load baseline: %s\n",
                     benchName.c_str(), err.c_str());
        return 1;
    }
    const auto cmp = compareArtifacts(baseline, art, {o.run.tolerance});
    if (!cmp.ok) {
        std::fprintf(stderr,
                     "%s: BASELINE DRIFT vs %s (%zu difference%s):\n",
                     benchName.c_str(), basePath.c_str(),
                     cmp.diffs.size(), cmp.diffs.size() == 1 ? "" : "s");
        for (const auto &d : cmp.diffs)
            std::fprintf(stderr, "  %s\n", d.c_str());
        return 1;
    }
    std::fprintf(stderr, "[artifact] matches baseline %s\n",
                 basePath.c_str());
    return 0;
}

ArtifactJob
configJob(const char *name, const pipeline::MachineConfig &cfg)
{
    ArtifactJob j;
    j.label = name;
    j.config = name;
    j.configFingerprint = configFingerprint(cfg);
    return j;
}

BenchArtifact
artifactFromSweep(const SweepResult &res, const RunOptions &run,
                  const std::string &baseConfig,
                  const std::vector<std::string> &configs)
{
    auto art = BenchArtifact::fromSweep(res);
    // fromSweep() records the *environment's* scale/threads; a wire
    // request carries the client's values explicitly, so the request
    // wins whenever it is specified.
    art.scale = run.effectiveScale();
    art.threads = run.effectiveThreads();
    if (run.perf)
        art.addPerf(res);
    // No-op unless --ipc-sample-interval armed sampling: gated runs
    // keep byte-identical artifacts.
    art.addIpcSamples(res);
    if (!run.shard.active()) {
        art.addGeomeans(res, baseConfig, configs);
        // The sweep-level distribution block. Sharded runs defer it
        // like the geomeans — a subset's percentiles are wrong for
        // the whole — and the shard merge recomputes it from the
        // per-job samples (loadArtifactOrShards).
        art.addDistributionFromJobs();
    }
    return art;
}

int
harnessFinishSweep(const std::string &benchName, const SweepResult &res,
                   const std::string &baseConfig,
                   const std::vector<std::string> &configs,
                   const HarnessOptions &o)
{
    auto art = artifactFromSweep(res, o.run, baseConfig, configs);
    if (o.run.perf)
        printHostPercentiles(res);
    return harnessFinish(benchName, std::move(art), o);
}

} // namespace conopt::sim
