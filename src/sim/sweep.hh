/**
 * @file
 * SweepRunner: the job-based sweep engine behind every table/figure in
 * the evaluation. The paper's results are all cross-products of
 * (workload x machine configuration); this subsystem turns each such
 * experiment into declarative data:
 *
 *   - SimJob:       one (workload, scale, MachineConfig) cell, with a
 *                   unique label and a deterministic per-job seed
 *   - SweepSpec:    builder that expands workloads x configs into jobs
 *   - ProgramCache: shared, mutex-guarded cache so each (workload,
 *                   scale) program is assembled exactly once per sweep,
 *                   not once per configuration
 *   - SweepRunner:  thread-pool executor (std::thread + atomic work
 *                   queue); results land in submission order, so a
 *                   parallel sweep is bit-identical to a serial one
 *   - ShardSpec:    deterministic round-robin partition of the job
 *                   list, so one sweep can split across processes or
 *                   machines; disjoint shard artifacts merge back via
 *                   BenchArtifact::merge() (src/sim/baseline.hh)
 *   - SweepResult:  label-keyed structured results with speedup helpers
 *
 * SweepOptions can also attach a persistent ResultCache
 * (src/sim/result_cache.hh), which skips simulation for any job whose
 * (program, config, scale, seed, maxInsts) key was already computed by
 * an earlier run or another shard, and a ProgressFn callback for
 * interactive done/total + ETA reporting on long sweeps.
 *
 * Reporters that format a SweepResult (paper-style tables, CSV, JSON)
 * live in src/sim/report.hh.
 *
 * Determinism: the timing model itself is deterministic, so parallel
 * and serial sweeps must agree job-for-job (tests/test_sweep_runner.cc
 * asserts this). Each job nevertheless carries a seed derived from its
 * label so that any future stochastic component (randomized workload
 * variants, sampled simulation) draws from a per-job stream instead of
 * a shared one, which would make results depend on thread scheduling.
 */

#ifndef CONOPT_SIM_SWEEP_HH
#define CONOPT_SIM_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/asm/program.hh"
#include "src/pipeline/machine_config.hh"
#include "src/sim/request.hh"
#include "src/sim/result_cache.hh"
#include "src/sim/session.hh"
#include "src/sim/simulator.hh"

namespace conopt::sim {

// kMaxEnvScale/kMaxEnvThreads, envScale(), envThreads(), ShardSpec,
// and parseShard() live in src/sim/request.hh with the canonical
// RunOptions/SweepRequest schema they belong to.

// ProgramPtr (an immutable, shareable assembled program) lives in
// src/sim/session.hh with the session that consumes it.

/** One cell of a sweep: a workload under one machine configuration. */
struct SimJob
{
    /** Unique key of this job within its sweep. Empty: derived as
     *  "<workload>/<configName>". */
    std::string label;

    /** Table 1 registry name (e.g. "mcf"); resolved via
     *  workloads::findWorkload() unless @ref program is set. */
    std::string workload;

    /** Pre-built program; bypasses the registry and the cache. */
    ProgramPtr program;

    /** Iteration scale; 0 means defaultScale * envScale(). */
    unsigned scale = 0;

    pipeline::MachineConfig config;

    /** Configuration tag used for labels and reporter columns. */
    std::string configName;

    /** Deterministic per-job seed; 0 means derived from the label, so
     *  the same sweep always hands each job the same seed regardless of
     *  thread count or scheduling. */
    uint64_t seed = 0;

    /** Safety limit on dynamic instructions. */
    uint64_t maxInsts = uint64_t(1) << 32;
};

/** Builder for cross-product sweeps (workloads x named configs). */
class SweepSpec
{
  public:
    /** Add one workload by registry name. */
    SweepSpec &workload(const std::string &name);
    /** Add several workloads by registry name. */
    SweepSpec &workloads(const std::vector<std::string> &names);
    /** Add every workload of one Table 1 suite. */
    SweepSpec &suite(const std::string &suite);
    /** Add all 22 Table 1 workloads. */
    SweepSpec &allWorkloads();
    /** Add one named machine configuration (a reporter column). */
    SweepSpec &config(const std::string &name,
                      const pipeline::MachineConfig &cfg);
    /** Override the iteration scale (0 = defaultScale * envScale()). */
    SweepSpec &scale(unsigned s);
    /** Override the dynamic-instruction safety limit. */
    SweepSpec &maxInsts(uint64_t n);

    /** The cross product: one SimJob per (workload, config) pair, in
     *  workload-major order. */
    std::vector<SimJob> jobs() const;

    /** The label convention: "<workload>/<configName>". */
    static std::string labelFor(const std::string &workload,
                                const std::string &configName);

  private:
    std::vector<std::string> workloads_;
    std::vector<std::pair<std::string, pipeline::MachineConfig>> configs_;
    unsigned scale_ = 0;
    uint64_t maxInsts_ = uint64_t(1) << 32;
};

/**
 * Shared program-build cache. Each (workload, scale) pair is assembled
 * exactly once even under concurrent lookups: the first caller builds
 * (outside the lock, so distinct programs assemble in parallel) while
 * later callers block on the entry's future.
 */
class ProgramCache
{
  public:
    /** The program for @p workload at @p scale; builds it on first use.
     *  Fatal if the workload name is unknown. */
    ProgramPtr get(const std::string &workload, unsigned scale);

    /** Number of programs actually assembled. */
    uint64_t builds() const { return builds_.load(); }
    /** Number of lookups served from the cache. */
    uint64_t hits() const { return hits_.load(); }

  private:
    using Key = std::pair<std::string, unsigned>;

    mutable std::mutex mu_;
    std::map<Key, std::shared_future<ProgramPtr>> cache_;
    std::atomic<uint64_t> builds_{0};
    std::atomic<uint64_t> hits_{0};
};

/** Outcome of one job. */
struct JobResult
{
    SimJob job;          ///< the (normalized) job description
    std::string suite;   ///< Table 1 suite, when registry-resolved
    SimResult sim;       ///< timing-simulation outcome
    double hostSeconds = 0.0; ///< wall-clock cost of the whole job
    /** Wall-clock seconds of the simulation proper: excludes harness
     *  overhead (result-cache fingerprinting, lookup, and store).
     *  0 for cache hits, which simulate nothing. */
    double simSeconds = 0.0;
    /** Host throughput: simulated kilo-instructions retired per
     *  simSeconds. 0 when unmeasurable (cache hit, zero-length run) —
     *  a cache hit's wall time measures the artifact loader, not the
     *  simulator. */
    double kips = 0.0;
    bool fromCache = false;   ///< served by the persistent ResultCache
};

/** Snapshot handed to the progress callback after each job finishes. */
struct SweepProgress
{
    size_t done = 0;   ///< jobs finished so far (including this one)
    size_t total = 0;  ///< jobs in this runner's shard of the sweep
    std::string label; ///< the job that just finished
    double jobHostSeconds = 0.0;   ///< that job's host cost
    double totalHostSeconds = 0.0; ///< sum of hostSeconds so far
    double elapsedSeconds = 0.0;   ///< wall clock since run() started
    /** Estimated wall-clock seconds remaining, extrapolated from the
     *  elapsed time per finished job (so it already accounts for the
     *  worker-pool parallelism). */
    double etaSeconds = 0.0;
    /** Running geometric mean of per-job IPC over finished jobs with
     *  nonzero cycles (a cheap scheduling-independent health signal;
     *  figure-level speedup geomeans still come post-sweep). */
    double geomeanIpc = 0.0;
    /** Running aggregate host throughput: simulated kilo-instructions
     *  per simulation-second over jobs that actually simulated. 0
     *  until the first non-cache-hit job finishes. */
    double kips = 0.0;
    /** Nearest-rank percentiles of per-job host seconds over finished
     *  jobs (cache hits included — a served fleet's latency counts the
     *  cache path too). 0 until the first job finishes. */
    double hostP50 = 0.0;
    double hostP95 = 0.0;
    double hostP99 = 0.0;
    /** Service-side context for daemon-backed shards: the daemon's
     *  request-queue depth and total SimSessions constructed when the
     *  job finished. 0/0 for ephemeral (process-per-shard) runs — the
     *  progress line only carries the keys when one is nonzero, so
     *  existing v1 consumers and byte-stable logs are unaffected. */
    uint64_t queueDepth = 0;
    uint64_t sessions = 0;
};

/** Invoked after every finished job, serialized under an internal
 *  mutex (callbacks never run concurrently), from worker threads. */
using ProgressFn = std::function<void(const SweepProgress &)>;

/** Structured results of a sweep, keyed by job label. */
class SweepResult
{
  public:
    /** All results, in job submission order (scheduling-independent). */
    const std::vector<JobResult> &all() const { return results_; }
    bool empty() const { return results_.empty(); }
    size_t size() const { return results_.size(); }

    /** Result by label, or nullptr. */
    const JobResult *find(const std::string &label) const;
    /** Result by label; fatal if missing. */
    const JobResult &at(const std::string &label) const;

    uint64_t cycles(const std::string &label) const;
    double ipc(const std::string &label) const;

    /** baseline cycles / other cycles (>1 means @p label is faster).
     *  0.0 when either label is missing or @p label ran for zero
     *  cycles, so ratio consumers never divide by zero. */
    double speedup(const std::string &baseLabel,
                   const std::string &label) const;

    /** Speedup of @p configName over @p baseConfig on one workload,
     *  using the SweepSpec label convention. */
    double speedupOf(const std::string &workload,
                     const std::string &configName,
                     const std::string &baseConfig) const;

    /** Append one result (used by the runner). */
    void add(JobResult r);

  private:
    std::vector<JobResult> results_;
    std::map<std::string, size_t> byLabel_;
};

/** Execution knobs for a sweep. */
struct SweepOptions
{
    SweepOptions() = default;
    /** The common short form: thread count plus a shared program
     *  cache, everything else defaulted. */
    SweepOptions(unsigned threads_, ProgramCache *cache_) : cache(cache_)
    {
        run.threads = threads_;
    }

    /** The serializable run description (src/sim/request.hh). The
     *  runner consumes run.threads (0 = CONOPT_THREADS, else hardware
     *  concurrency), run.shard (the slice of the job list this runner
     *  executes — the *full* job list is still normalized and
     *  label-checked so every shard agrees on the partition; only
     *  this shard's jobs run and only they appear in the SweepResult),
     *  run.scale (0 = CONOPT_SCALE) as the workload scale multiplier,
     *  and run.ipcSampleInterval (one IPC sample per this many retired
     *  instructions into a bounded per-job reservoir seeded with the
     *  job's deterministic seed; 0 = off, the default, so gated runs
     *  stay sample-free — sampling is host-side observability only and
     *  simulated results are bit-identical either way; cache hits
     *  carry no samples, exactly as they carry no host timings). */
    RunOptions run;

    /** Program cache to share across sweeps; nullptr = per-runner. */
    ProgramCache *cache = nullptr;

    /** Persistent cross-process result cache; nullptr = none. Jobs
     *  whose (program, config, scale, seed, maxInsts) key hits skip
     *  simulation entirely and are marked JobResult::fromCache. */
    std::shared_ptr<ResultCache> resultCache;

    /** Per-finished-job progress callback; empty = none. */
    ProgressFn onProgress;

    /** Reservoir capacity per job when sampling is on. */
    size_t ipcReservoirCapacity = 256;

    /**
     * Group jobs that run the same program at the same (scale,
     * maxInsts) so one worker executes them back-to-back on its warm
     * session: the emulator keeps the same program bound (its
     * pre-decode table and resident memory pages stay hot) and only
     * the MachineConfig changes between runs. Default on.
     *
     * An engine-level execution knob, deliberately NOT part of the
     * RunOptions wire schema: it cannot change any simulated result,
     * only which worker runs a job and in what order. Results still
     * land in submission order and shard slicing happens first, so
     * artifacts are byte-identical with batching on or off
     * (tests/test_sweep_runner.cc pins this). Per-job seeds are
     * ignored by the grouping on purpose: label-derived seeds always
     * differ per job, and a seed only feeds host-side IPC sampling
     * (re-armed per job) and result-cache keys, never simulated state.
     */
    bool batchJobs = true;
};

/**
 * The executor. Construct once, then run() any number of job lists;
 * programs are cached across runs of the same runner.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /** Run this runner's shard of @p jobs, in parallel, and collect
     *  structured results (submission order within the shard). Fatal
     *  on unknown workload names, duplicate labels (checked up front
     *  across the FULL job list, on the calling thread), or an
     *  out-of-range shard. */
    SweepResult run(std::vector<SimJob> jobs);

    /** Convenience: expand and run a SweepSpec. */
    SweepResult run(const SweepSpec &spec) { return run(spec.jobs()); }

    /** The program cache in use. */
    ProgramCache &cache() { return *cache_; }

    /** The persistent result cache, or nullptr. */
    ResultCache *resultCache() { return opts_.resultCache.get(); }

  private:
    JobResult runOne(const SimJob &job);
    /** programFingerprint() memoized per live program object (reset at
     *  the start of each run(), so pointers never go stale). */
    std::string programFp(const ProgramPtr &program);

    SweepOptions opts_;
    std::unique_ptr<ProgramCache> owned_;
    ProgramCache *cache_;
    std::mutex fpMu_;
    std::map<const assembler::Program *, std::string> programFps_;
};

} // namespace conopt::sim

#endif // CONOPT_SIM_SWEEP_HH
