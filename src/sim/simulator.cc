#include "src/sim/simulator.hh"

#include <memory>

#include "src/arch/emulator.hh"
#include "src/pipeline/ooo_core.hh"
#include "src/sim/sweep.hh"
#include "src/util/logging.hh"

namespace conopt::sim {

SimResult
simulate(const assembler::Program &program,
         const pipeline::MachineConfig &config, uint64_t max_insts)
{
    arch::Emulator emu(program, max_insts);
    pipeline::OooCore core(config, emu);
    SimResult result;
    result.stats = core.run();
    result.instructions = emu.instCount();
    result.halted = emu.halted();
    return result;
}

double
speedup(const assembler::Program &program,
        const pipeline::MachineConfig &baseline,
        const pipeline::MachineConfig &config, uint64_t max_insts)
{
    // A two-job sweep: both machines run in parallel when a second
    // hardware thread is available. The runner joins its workers before
    // returning, so a non-owning pointer to the caller's program is safe
    // and avoids copying it.
    const ProgramPtr prog(&program, [](const assembler::Program *) {});
    SimJob base_job;
    base_job.label = "base";
    base_job.program = prog;
    base_job.config = baseline;
    base_job.maxInsts = max_insts;
    SimJob opt_job;
    opt_job.label = "opt";
    opt_job.program = prog;
    opt_job.config = config;
    opt_job.maxInsts = max_insts;

    SweepRunner runner;
    const SweepResult res = runner.run({base_job, opt_job});
    conopt_assert(res.at("base").sim.instructions ==
                  res.at("opt").sim.instructions);
    return res.speedup("base", "opt");
}

} // namespace conopt::sim
