#include "src/sim/simulator.hh"

#include <memory>

#include "src/sim/session.hh"
#include "src/sim/sweep.hh"
#include "src/util/logging.hh"

namespace conopt::sim {

SimResult
simulate(const assembler::Program &program,
         const pipeline::MachineConfig &config, uint64_t max_insts)
{
    // One-shot wrapper over a throwaway session. The aliasing
    // ProgramPtr is non-owning: the program outlives the session,
    // which dies before this frame returns.
    SimSession session;
    return session.simulate(ProgramPtr(ProgramPtr{}, &program), config,
                            max_insts);
}

double
speedup(const assembler::Program &program,
        const pipeline::MachineConfig &baseline,
        const pipeline::MachineConfig &config, uint64_t max_insts)
{
    // A two-job sweep: both machines run in parallel when a second
    // hardware thread is available. The program is copied into shared
    // ownership (not aliased): the runner's thread-local sessions
    // outlive this call, and they must never be left holding a pointer
    // into the caller's frame.
    const ProgramPtr prog =
        std::make_shared<const assembler::Program>(program);
    SimJob base_job;
    base_job.label = "base";
    base_job.program = prog;
    base_job.config = baseline;
    base_job.maxInsts = max_insts;
    SimJob opt_job;
    opt_job.label = "opt";
    opt_job.program = prog;
    opt_job.config = config;
    opt_job.maxInsts = max_insts;

    SweepRunner runner;
    const SweepResult res = runner.run({base_job, opt_job});
    // A retired-instruction-count mismatch means the two runs did not
    // execute the same program — every cycle ratio computed from them
    // would be meaningless. Hard error in every build type (never a
    // compiled-out assert): speedup() feeds published figures.
    const uint64_t base_insts = res.at("base").sim.instructions;
    const uint64_t opt_insts = res.at("opt").sim.instructions;
    if (base_insts != opt_insts) {
        conopt_fatal("speedup(): retired instruction counts diverge "
                     "(base %llu vs opt %llu); the configurations did "
                     "not run the same program",
                     static_cast<unsigned long long>(base_insts),
                     static_cast<unsigned long long>(opt_insts));
    }
    return res.speedup("base", "opt");
}

} // namespace conopt::sim
