#include "src/sim/simulator.hh"

#include "src/arch/emulator.hh"
#include "src/pipeline/ooo_core.hh"
#include "src/util/logging.hh"

namespace conopt::sim {

SimResult
simulate(const assembler::Program &program,
         const pipeline::MachineConfig &config, uint64_t max_insts)
{
    arch::Emulator emu(program, max_insts);
    pipeline::OooCore core(config, emu);
    SimResult result;
    result.stats = core.run();
    result.instructions = emu.instCount();
    result.halted = emu.halted();
    return result;
}

double
speedup(const assembler::Program &program,
        const pipeline::MachineConfig &baseline,
        const pipeline::MachineConfig &config, uint64_t max_insts)
{
    const SimResult base = simulate(program, baseline, max_insts);
    const SimResult opt = simulate(program, config, max_insts);
    conopt_assert(base.instructions == opt.instructions);
    return double(base.stats.cycles) / double(opt.stats.cycles);
}

} // namespace conopt::sim
