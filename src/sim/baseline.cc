#include "src/sim/baseline.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <algorithm>
#include <set>

#include "src/pipeline/stats_aggregate.hh"
#include "src/sim/report.hh"
#include "src/util/bitops.hh"

namespace conopt::sim {

// --------------------------------------------------------------------------
// JsonValue
// --------------------------------------------------------------------------

double
JsonValue::asDouble() const
{
    double v = 0.0;
    return asDoubleStrict(&v) ? v : 0.0;
}

uint64_t
JsonValue::asU64() const
{
    uint64_t v = 0;
    return asU64Strict(&v) ? v : 0;
}

bool
JsonValue::asDoubleStrict(double *out) const
{
    *out = 0.0;
    if (kind_ != Kind::Number || str_.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(str_.c_str(), &end);
    // The grammar already vetted the token shape, so the only failure
    // modes left are an unconsumed tail (defensive; cannot happen for
    // parser-produced tokens) and overflow to infinity. ERANGE from
    // *underflow* (a denormal result) is a legitimate value, so only
    // the infinite case is rejected.
    if (end != str_.c_str() + str_.size())
        return false;
    if (errno == ERANGE && std::isinf(v))
        return false;
    *out = v;
    return true;
}

bool
JsonValue::asU64Strict(uint64_t *out) const
{
    *out = 0;
    if (kind_ != Kind::Number || str_.empty())
        return false;
    // A uint64 field must be written as a plain integer: a fraction,
    // exponent, or sign means the document does not contain the value
    // the caller is about to compare cycles against.
    for (char c : str_)
        if (!std::isdigit(uint8_t(c)))
            return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(str_.c_str(), &end, 10);
    if (end != str_.c_str() + str_.size() || errno == ERANGE)
        return false;
    *out = v;
    return true;
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    const auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

/** Recursive-descent parser over the input text. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {}

    bool
    parseDocument(JsonValue *out)
    {
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (err_)
            *err_ = "JSON error at offset " + std::to_string(pos_) +
                    ": " + what;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word, JsonValue *out, JsonValue::Kind kind,
            bool bval)
    {
        const size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += n;
        out->kind_ = kind;
        out->bool_ = bval;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (text_[pos_] != '"')
            return fail("expected '\"'");
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (++pos_ >= text_.size())
                    break;
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out->push_back('"'); break;
                  case '\\': out->push_back('\\'); break;
                  case '/': out->push_back('/'); break;
                  case 'b': out->push_back('\b'); break;
                  case 'f': out->push_back('\f'); break;
                  case 'n': out->push_back('\n'); break;
                  case 'r': out->push_back('\r'); break;
                  case 't': out->push_back('\t'); break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad hex digit in \\u escape");
                    }
                    // Encode the BMP code point as UTF-8 (surrogate
                    // pairs are not needed for artifact content).
                    if (cp < 0x80) {
                        out->push_back(char(cp));
                    } else if (cp < 0x800) {
                        out->push_back(char(0xc0 | (cp >> 6)));
                        out->push_back(char(0x80 | (cp & 0x3f)));
                    } else {
                        out->push_back(char(0xe0 | (cp >> 12)));
                        out->push_back(char(0x80 | ((cp >> 6) & 0x3f)));
                        out->push_back(char(0x80 | (cp & 0x3f)));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape character");
                }
                continue;
            }
            if (uint8_t(c) < 0x20)
                return fail("unescaped control character in string");
            out->push_back(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue *out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        const auto digits = [&] {
            const size_t d0 = pos_;
            while (pos_ < text_.size() && std::isdigit(uint8_t(text_[pos_])))
                ++pos_;
            return pos_ > d0;
        };
        if (!digits())
            return fail("malformed number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!digits())
                return fail("malformed number fraction");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!digits())
                return fail("malformed number exponent");
        }
        out->kind_ = JsonValue::Kind::Number;
        out->str_ = text_.substr(start, pos_ - start);
        return true;
    }

    bool
    parseValue(JsonValue *out)
    {
        // Bound recursion so a corrupt/hostile document fails with a
        // parse error instead of a stack overflow (the CLI promises
        // exit code 2, not SIGSEGV).
        if (depth_ >= kMaxDepth)
            return fail("nesting too deep");
        ++depth_;
        const bool ok = parseValueInner(out);
        --depth_;
        return ok;
    }

    bool
    parseValueInner(JsonValue *out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case 'n':
            return literal("null", out, JsonValue::Kind::Null, false);
          case 't':
            return literal("true", out, JsonValue::Kind::Bool, true);
          case 'f':
            return literal("false", out, JsonValue::Kind::Bool, false);
          case '"':
            out->kind_ = JsonValue::Kind::String;
            return parseString(&out->str_);
          case '[': {
            ++pos_;
            out->kind_ = JsonValue::Kind::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue elem;
                if (!parseValue(&elem))
                    return false;
                out->arr_.push_back(std::move(elem));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']' in array");
            }
          }
          case '{': {
            ++pos_;
            out->kind_ = JsonValue::Kind::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':' after object key");
                ++pos_;
                JsonValue val;
                if (!parseValue(&val))
                    return false;
                out->obj_.emplace(std::move(key), std::move(val));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}' in object");
            }
          }
          default:
            if (text_[pos_] == '-' || std::isdigit(uint8_t(text_[pos_])))
                return parseNumber(out);
            return fail("unexpected character");
        }
    }

    static constexpr unsigned kMaxDepth = 256;

    const std::string &text_;
    std::string *err_;
    size_t pos_ = 0;
    unsigned depth_ = 0;
};

bool
JsonValue::parse(const std::string &text, JsonValue *out, std::string *err)
{
    *out = JsonValue();
    return JsonParser(text, err).parseDocument(out);
}

// --------------------------------------------------------------------------
// Formatting helpers (fingerprints live in src/sim/fingerprint.hh)
// --------------------------------------------------------------------------

namespace {

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

// --------------------------------------------------------------------------
// BenchArtifact: construction
// --------------------------------------------------------------------------

BenchArtifact
BenchArtifact::fromSweep(const SweepResult &res)
{
    BenchArtifact art;
    art.scale = envScale();
    art.threads = envThreads();
    art.jobs.reserve(res.size());
    for (const auto &r : res.all()) {
        ArtifactJob j;
        j.label = r.job.label;
        j.workload = r.job.workload;
        j.suite = r.suite;
        j.config = r.job.configName;
        j.scale = r.job.scale;
        j.seed = r.job.seed;
        j.instructions = r.sim.instructions;
        j.cycles = r.sim.stats.cycles;
        j.ipc = r.sim.ipc();
        j.halted = r.sim.halted;
        j.configFingerprint = configFingerprint(r.job.config);
        const auto &o = r.sim.stats.opt;
        j.optEarlyExecuted = o.earlyExecuted;
        j.optMovesEliminated = o.movesEliminated;
        j.optBranchesResolved = o.branchesResolved;
        j.optLoadsRemoved = o.loadsRemoved;
        j.optLoadsSynthesized = o.loadsSynthesized;
        j.optMbcMisspecs = o.mbcMisspecs;
        art.jobs.push_back(std::move(j));
    }
    return art;
}

void
BenchArtifact::addPerf(const SweepResult &res)
{
    for (auto &j : jobs) {
        const JobResult *r = res.find(j.label);
        // Only jobs that actually simulated carry perf: a cache hit's
        // wall time measures the artifact loader, not the simulator,
        // and persisting it would fake a ~1000x host-perf "win".
        if (r && r->kips > 0.0) {
            j.hostSeconds = r->simSeconds;
            j.kips = r->kips;
        }
    }
}

void
BenchArtifact::addIpcSamples(const SweepResult &res)
{
    for (auto &j : jobs) {
        const JobResult *r = res.find(j.label);
        // Cache hits simulated nothing and carry no samples; jobs from
        // an unsampled sweep likewise stay unmeasured.
        if (!r || r->sim.ipcSamples.empty())
            continue;
        j.ipcSamplesSeen = r->sim.ipcSamplesSeen;
        j.ipcSamples = r->sim.ipcSamples;
        pipeline::PercentileAccumulator acc;
        for (double x : j.ipcSamples)
            acc.add(x);
        j.ipcP50 = acc.percentile(50);
        j.ipcP95 = acc.percentile(95);
        j.ipcP99 = acc.percentile(99);
    }
}

void
BenchArtifact::addDistributionFromJobs()
{
    pipeline::PercentileAccumulator host, ipc;
    for (const auto &j : jobs) {
        if (j.hostSeconds > 0.0)
            host.add(j.hostSeconds);
        for (double x : j.ipcSamples)
            ipc.add(x);
    }
    const auto summarize = [](const pipeline::PercentileAccumulator &acc,
                              DistSummary *out) {
        *out = DistSummary{};
        if (acc.empty())
            return;
        out->count = acc.count();
        out->p50 = acc.percentile(50);
        out->p95 = acc.percentile(95);
        out->p99 = acc.percentile(99);
        out->max = acc.max();
    };
    summarize(host, &hostDist);
    summarize(ipc, &ipcDist);
}

void
BenchArtifact::addGeomeans(const SweepResult &res,
                           const std::string &baseConfig,
                           const std::vector<std::string> &configs)
{
    // Distinct workloads in submission order.
    std::vector<std::string> wls;
    std::set<std::string> seen;
    for (const auto &r : res.all()) {
        if (!r.job.workload.empty() && seen.insert(r.job.workload).second)
            wls.push_back(r.job.workload);
    }
    for (const auto &cfg : configs) {
        const auto v = groupSpeedups(res, wls, cfg, baseConfig);
        if (!v.empty())
            geomeans[cfg] = pipeline::geomean(v);
    }
}

void
BenchArtifact::addGeomeansFromJobs(const std::string &baseConfig,
                                   const std::vector<std::string> &configs)
{
    // Mirror addGeomeans() exactly — distinct workloads in job order,
    // cells as double(base cycles) / double(config cycles), zero-cycle
    // and missing cells skipped — so recomputation from the persisted
    // records reproduces the live-sweep numbers.
    std::vector<std::string> wls;
    std::set<std::string> seen;
    for (const auto &j : jobs) {
        if (!j.workload.empty() && seen.insert(j.workload).second)
            wls.push_back(j.workload);
    }
    for (const auto &cfg : configs) {
        std::vector<double> v;
        for (const auto &w : wls) {
            const auto *b = findJob(SweepSpec::labelFor(w, baseConfig));
            const auto *o = findJob(SweepSpec::labelFor(w, cfg));
            if (b && o && b->cycles && o->cycles)
                v.push_back(double(b->cycles) / double(o->cycles));
        }
        if (!v.empty())
            geomeans[cfg] = pipeline::geomean(v);
    }
}

std::string
BenchArtifact::fingerprint() const
{
    // XOR-combined so the result is independent of job order: a merged
    // set of shards fingerprints identically to the single-run sweep.
    uint64_t combined = 0;
    for (const auto &j : jobs) {
        Fnv f;
        f.mixStr(j.label);
        f.mixStr(j.configFingerprint);
        combined ^= f.final();
    }
    return hex64(combined);
}

const ArtifactJob *
BenchArtifact::findJob(const std::string &label) const
{
    for (const auto &j : jobs)
        if (j.label == label)
            return &j;
    return nullptr;
}

// --------------------------------------------------------------------------
// BenchArtifact: writer
// --------------------------------------------------------------------------

std::string
BenchArtifact::toJson() const
{
    std::string s;
    s.reserve(512 + jobs.size() * 512);
    const auto kv = [&](const char *key, const std::string &raw) {
        s += '"';
        s += key;
        s += "\": ";
        s += raw;
    };
    const auto str = [&](const std::string &v) {
        return "\"" + jsonEscape(v) + "\"";
    };

    s += "{\n  ";
    kv("schema", str(kSchema));
    s += ",\n  ";
    kv("version", std::to_string(kVersion));
    s += ",\n  ";
    kv("bench", str(bench));
    s += ",\n  ";
    kv("scale", std::to_string(scale));
    s += ",\n  ";
    kv("threads", std::to_string(threads));
    s += ",\n  ";
    kv("config_fingerprint", str(fingerprint()));
    s += ",\n  \"geomeans\": {";
    bool first = true;
    for (const auto &[k, v] : geomeans) {
        s += first ? "\n    " : ",\n    ";
        first = false;
        kv(jsonEscape(k).c_str(), fmtDouble(v));
    }
    s += first ? "},\n" : "\n  },\n";
    if (hostDist.measured() || ipcDist.measured()) {
        // Sweep-level distribution block: optional like the per-job
        // perf fields, so unmeasured artifacts (every pre-distribution
        // baseline included) keep their exact bytes. Recomputable from
        // the per-job records via addDistributionFromJobs().
        const auto dist = [&](const char *key, const DistSummary &d) {
            s += "    \"";
            s += key;
            s += "\": {";
            kv("count", std::to_string(d.count));
            s += ", ";
            kv("p50", fmtDouble(d.p50));
            s += ", ";
            kv("p95", fmtDouble(d.p95));
            s += ", ";
            kv("p99", fmtDouble(d.p99));
            s += ", ";
            kv("max", fmtDouble(d.max));
            s += "}";
        };
        s += "  \"distribution\": {\n";
        if (hostDist.measured()) {
            dist("host_seconds", hostDist);
            if (ipcDist.measured())
                s += ",\n";
        }
        if (ipcDist.measured())
            dist("ipc", ipcDist);
        s += "\n  },\n";
    }
    s += "  \"jobs\": [";
    for (size_t i = 0; i < jobs.size(); ++i) {
        const auto &j = jobs[i];
        s += i ? ",\n    {" : "\n    {";
        kv("label", str(j.label));
        s += ", ";
        kv("workload", str(j.workload));
        s += ", ";
        kv("suite", str(j.suite));
        s += ", ";
        kv("config", str(j.config));
        s += ",\n     ";
        kv("scale", std::to_string(j.scale));
        s += ", ";
        kv("seed", std::to_string(j.seed));
        s += ", ";
        kv("instructions", std::to_string(j.instructions));
        s += ", ";
        kv("cycles", std::to_string(j.cycles));
        s += ",\n     ";
        kv("ipc", fmtDouble(j.ipc));
        s += ", ";
        kv("halted", j.halted ? "true" : "false");
        s += ", ";
        kv("checksum", std::to_string(j.checksum));
        s += ",\n     ";
        if (j.hostSeconds > 0.0 || j.kips > 0.0) {
            // Optional perf fields: only measured jobs carry them, so
            // unmeasured artifacts (and all pre-perf baselines)
            // serialize byte-identically to the old schema.
            kv("host_seconds", fmtDouble(j.hostSeconds));
            s += ", ";
            kv("kips", fmtDouble(j.kips));
            s += ",\n     ";
        }
        if (j.ipcSamplesSeen > 0) {
            // Optional distribution fields, same contract: sampled
            // jobs only, byte-stable otherwise. The raw reservoir
            // rides along so shard merges can recompute sweep-level
            // percentiles from the union of per-job samples.
            kv("ipc_samples_seen", std::to_string(j.ipcSamplesSeen));
            s += ", ";
            kv("ipc_p50", fmtDouble(j.ipcP50));
            s += ", ";
            kv("ipc_p95", fmtDouble(j.ipcP95));
            s += ", ";
            kv("ipc_p99", fmtDouble(j.ipcP99));
            s += ",\n     \"ipc_samples\": [";
            for (size_t k = 0; k < j.ipcSamples.size(); ++k) {
                if (k)
                    s += ", ";
                s += fmtDouble(j.ipcSamples[k]);
            }
            s += "],\n     ";
        }
        kv("config_fingerprint", str(j.configFingerprint));
        s += ",\n     \"opt\": {";
        kv("early_executed", std::to_string(j.optEarlyExecuted));
        s += ", ";
        kv("moves_eliminated", std::to_string(j.optMovesEliminated));
        s += ", ";
        kv("branches_resolved", std::to_string(j.optBranchesResolved));
        s += ", ";
        kv("loads_removed", std::to_string(j.optLoadsRemoved));
        s += ", ";
        kv("loads_synthesized", std::to_string(j.optLoadsSynthesized));
        s += ", ";
        kv("mbc_misspecs", std::to_string(j.optMbcMisspecs));
        s += "}}";
    }
    s += jobs.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return s;
}

void
BenchArtifact::write(std::FILE *out) const
{
    const std::string s = toJson();
    std::fwrite(s.data(), 1, s.size(), out);
}

bool
BenchArtifact::save(const std::string &path, std::string *err) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        if (err)
            *err = path + ": " + std::strerror(errno);
        return false;
    }
    write(f);
    const bool ok = std::fclose(f) == 0;
    if (!ok && err)
        *err = path + ": write failed";
    return ok;
}

// --------------------------------------------------------------------------
// BenchArtifact: loader
// --------------------------------------------------------------------------

bool
jsonFieldU64(const JsonValue &obj, const char *key, uint64_t *out,
             std::string *err)
{
    *out = 0;
    const auto *v = obj.get(key);
    if (!v)
        return true;
    if (!v->asU64Strict(out)) {
        if (err)
            *err = std::string("malformed unsigned integer for '") +
                   key + "'";
        return false;
    }
    return true;
}

bool
jsonFieldU32(const JsonValue &obj, const char *key, unsigned *out,
             std::string *err)
{
    uint64_t v = 0;
    *out = 0;
    if (!jsonFieldU64(obj, key, &v, err))
        return false;
    if (v > UINT32_MAX) {
        if (err)
            *err = std::string("value out of range for '") + key + "'";
        return false;
    }
    *out = unsigned(v);
    return true;
}

bool
jsonFieldDouble(const JsonValue &obj, const char *key, double *out,
                std::string *err)
{
    *out = 0.0;
    const auto *v = obj.get(key);
    if (!v)
        return true;
    if (!v->asDoubleStrict(out)) {
        if (err)
            *err = std::string("malformed number for '") + key + "'";
        return false;
    }
    return true;
}

bool
jsonFieldBool(const JsonValue &obj, const char *key)
{
    const auto *v = obj.get(key);
    return v && v->kind() == JsonValue::Kind::Bool && v->asBool();
}

namespace {

std::string
getStr(const JsonValue &obj, const char *key)
{
    const auto *v = obj.get(key);
    return v && v->kind() == JsonValue::Kind::String ? v->asString() : "";
}

} // namespace

bool
parseArtifact(const std::string &json, BenchArtifact *out, std::string *err)
{
    JsonValue doc;
    if (!JsonValue::parse(json, &doc, err))
        return false;
    if (!doc.isObject()) {
        if (err)
            *err = "artifact root is not a JSON object";
        return false;
    }
    if (getStr(doc, "schema") != BenchArtifact::kSchema) {
        if (err)
            *err = "not a " + std::string(BenchArtifact::kSchema) +
                   " document";
        return false;
    }
    uint64_t version = 0;
    if (!jsonFieldU64(doc, "version", &version, err))
        return false;
    if (version != BenchArtifact::kVersion) {
        if (err)
            *err = "unsupported artifact version " +
                   std::to_string(version);
        return false;
    }

    BenchArtifact art;
    art.bench = getStr(doc, "bench");
    if (!jsonFieldU32(doc, "scale", &art.scale, err) ||
        !jsonFieldU32(doc, "threads", &art.threads, err))
        return false;

    if (const auto *g = doc.get("geomeans"); g && g->isObject()) {
        for (const auto &[k, v] : g->object()) {
            double gv = 0.0;
            if (!v.asDoubleStrict(&gv)) {
                if (err)
                    *err = "malformed number for geomean '" + k + "'";
                return false;
            }
            art.geomeans[k] = gv;
        }
    }

    if (const auto *dist = doc.get("distribution"); dist) {
        if (!dist->isObject()) {
            if (err)
                *err = "distribution is not an object";
            return false;
        }
        const auto summary = [&](const char *key,
                                 BenchArtifact::DistSummary *dst) {
            const auto *d = dist->get(key);
            if (!d)
                return true;
            if (!d->isObject()) {
                if (err)
                    *err = std::string("distribution.") + key +
                           " is not an object";
                return false;
            }
            std::string fieldErr;
            const bool ok =
                jsonFieldU64(*d, "count", &dst->count, &fieldErr) &&
                jsonFieldDouble(*d, "p50", &dst->p50, &fieldErr) &&
                jsonFieldDouble(*d, "p95", &dst->p95, &fieldErr) &&
                jsonFieldDouble(*d, "p99", &dst->p99, &fieldErr) &&
                jsonFieldDouble(*d, "max", &dst->max, &fieldErr);
            if (!ok && err)
                *err = std::string("distribution.") + key + ": " +
                       fieldErr;
            return ok;
        };
        if (!summary("host_seconds", &art.hostDist) ||
            !summary("ipc", &art.ipcDist))
            return false;
    }

    const auto *jobs = doc.get("jobs");
    if (!jobs || !jobs->isArray()) {
        if (err)
            *err = "artifact has no jobs array";
        return false;
    }
    std::set<std::string> labels;
    for (size_t i = 0; i < jobs->size(); ++i) {
        const auto &o = jobs->at(i);
        if (!o.isObject()) {
            if (err)
                *err = "job " + std::to_string(i) + " is not an object";
            return false;
        }
        ArtifactJob j;
        j.label = getStr(o, "label");
        if (j.label.empty()) {
            if (err)
                *err = "job " + std::to_string(i) + " has no label";
            return false;
        }
        // Labels key the comparison; a duplicate would let a drifted
        // second record hide behind a clean first one.
        if (!labels.insert(j.label).second) {
            if (err)
                *err = "duplicate job label '" + j.label + "'";
            return false;
        }
        j.workload = getStr(o, "workload");
        j.suite = getStr(o, "suite");
        j.config = getStr(o, "config");
        std::string fieldErr;
        const bool fieldsOk =
            jsonFieldU32(o, "scale", &j.scale, &fieldErr) &&
            jsonFieldU64(o, "seed", &j.seed, &fieldErr) &&
            jsonFieldU64(o, "instructions", &j.instructions, &fieldErr) &&
            jsonFieldU64(o, "cycles", &j.cycles, &fieldErr) &&
            jsonFieldDouble(o, "ipc", &j.ipc, &fieldErr) &&
            jsonFieldU64(o, "checksum", &j.checksum, &fieldErr) &&
            jsonFieldDouble(o, "host_seconds", &j.hostSeconds,
                            &fieldErr) &&
            jsonFieldDouble(o, "kips", &j.kips, &fieldErr) &&
            jsonFieldU64(o, "ipc_samples_seen", &j.ipcSamplesSeen,
                         &fieldErr) &&
            jsonFieldDouble(o, "ipc_p50", &j.ipcP50, &fieldErr) &&
            jsonFieldDouble(o, "ipc_p95", &j.ipcP95, &fieldErr) &&
            jsonFieldDouble(o, "ipc_p99", &j.ipcP99, &fieldErr);
        if (const auto *samples = o.get("ipc_samples")) {
            // Absent for unsampled jobs; when present every element
            // must be a well-formed number (same strictness as the
            // scalar fields: corruption fails the load, never reads
            // as silent zeros).
            if (!samples->isArray()) {
                if (err)
                    *err = "job '" + j.label +
                           "': ipc_samples is not an array";
                return false;
            }
            j.ipcSamples.reserve(samples->size());
            for (size_t k = 0; k < samples->size(); ++k) {
                double x = 0.0;
                if (!samples->at(k).asDoubleStrict(&x)) {
                    if (err)
                        *err = "job '" + j.label +
                               "': malformed number in ipc_samples";
                    return false;
                }
                j.ipcSamples.push_back(x);
            }
        }
        j.halted = jsonFieldBool(o, "halted");
        j.configFingerprint = getStr(o, "config_fingerprint");
        bool optOk = true;
        if (const auto *opt = o.get("opt"); opt && opt->isObject()) {
            optOk =
                jsonFieldU64(*opt, "early_executed", &j.optEarlyExecuted,
                       &fieldErr) &&
                jsonFieldU64(*opt, "moves_eliminated", &j.optMovesEliminated,
                       &fieldErr) &&
                jsonFieldU64(*opt, "branches_resolved",
                       &j.optBranchesResolved, &fieldErr) &&
                jsonFieldU64(*opt, "loads_removed", &j.optLoadsRemoved,
                       &fieldErr) &&
                jsonFieldU64(*opt, "loads_synthesized", &j.optLoadsSynthesized,
                       &fieldErr) &&
                jsonFieldU64(*opt, "mbc_misspecs", &j.optMbcMisspecs,
                       &fieldErr);
        }
        if (!fieldsOk || !optOk) {
            if (err)
                *err = "job '" + j.label + "': " + fieldErr;
            return false;
        }
        art.jobs.push_back(std::move(j));
    }

    // Integrity: the stored combined fingerprint must match the per-job
    // fingerprints it claims to summarize.
    const std::string stored = getStr(doc, "config_fingerprint");
    if (!stored.empty() && stored != art.fingerprint()) {
        if (err)
            *err = "artifact fingerprint " + stored +
                   " does not match its jobs (" + art.fingerprint() + ")";
        return false;
    }

    *out = std::move(art);
    return true;
}

bool
loadArtifact(const std::string &path, BenchArtifact *out, std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        if (err)
            *err = path + ": " + std::strerror(errno);
        return false;
    }
    std::string text;
    char buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    const bool readOk = !std::ferror(f);
    std::fclose(f);
    if (!readOk) {
        if (err)
            *err = path + ": read failed";
        return false;
    }
    if (!parseArtifact(text, out, err)) {
        if (err)
            *err = path + ": " + *err;
        return false;
    }
    return true;
}

bool
loadArtifactOrShards(const std::string &path, BenchArtifact *out,
                     std::string *err)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(path, ec))
        return loadArtifact(path, out, err);

    std::vector<std::string> files;
    try {
        // The error_code overload only covers construction; increment
        // can still throw (entry vanishing mid-iteration), and the
        // 0/1/2 exit contract must hold regardless.
        for (const auto &e : fs::directory_iterator(path, ec)) {
            if (e.is_regular_file() && e.path().extension() == ".json")
                files.push_back(e.path().string());
        }
    } catch (const fs::filesystem_error &fe) {
        if (err)
            *err = path + ": " + fe.what();
        return false;
    }
    if (ec) {
        if (err)
            *err = path + ": " + ec.message();
        return false;
    }
    if (files.empty()) {
        // An empty shard directory must be a hard error, never an
        // empty merge that a later compare could wave through: zero
        // shard artifacts means the shards did not run (or wrote
        // somewhere else), not that the bench measured nothing.
        if (err)
            *err = path +
                   ": no .json shard artifacts to merge (expected "
                   "BENCH_*.shard<i>of<n>.json files)";
        return false;
    }
    std::sort(files.begin(), files.end());

    BenchArtifact merged;
    if (!loadArtifact(files[0], &merged, err))
        return false;
    for (size_t i = 1; i < files.size(); ++i) {
        BenchArtifact shard;
        if (!loadArtifact(files[i], &shard, err))
            return false;
        if (!merged.merge(shard, err)) {
            if (err)
                *err = files[i] + ": " + *err;
            return false;
        }
    }
    // The post-merge half of the distribution workflow: per-shard
    // artifacts defer the sweep-level block, so rebuild it here from
    // the merged per-job samples. Percentiles are order-independent —
    // the merged numbers equal the unsharded run's exactly. A no-op
    // when no job carries perf or samples, keeping unmeasured merges
    // byte-stable.
    merged.addDistributionFromJobs();
    *out = std::move(merged);
    return true;
}

// --------------------------------------------------------------------------
// Merge
// --------------------------------------------------------------------------

bool
BenchArtifact::merge(const BenchArtifact &shard, std::string *err)
{
    if (shard.bench != bench) {
        if (err)
            *err = "cannot merge artifact for bench '" + shard.bench +
                   "' into '" + bench + "'";
        return false;
    }
    if (shard.scale != scale) {
        if (err)
            *err = "cannot merge artifacts at different scales (" +
                   std::to_string(scale) + " vs " +
                   std::to_string(shard.scale) + ")";
        return false;
    }
    for (const auto &j : shard.jobs) {
        if (findJob(j.label)) {
            if (err)
                *err = "duplicate job label '" + j.label +
                       "' across shards";
            return false;
        }
    }
    // Geomeans are whole-figure aggregates: a partial shard's value is
    // wrong for the merged artifact. Shards must carry identical maps
    // (full-result copies, or none at all) -- adopting a one-sided or
    // conflicting value would silently gate against a subset geomean;
    // proper sharded flows compute geomeans after merging.
    if (shard.geomeans != geomeans) {
        if (err)
            *err = "geomeans differ across shards; compute geomeans "
                   "after merging, not per shard";
        return false;
    }
    // Same policy for the sweep-level distribution block: a subset's
    // percentiles are wrong for the whole, so shards either defer it
    // (the normal flow) or carry identical copies. The merged block is
    // recomputed from the union of per-job samples afterwards
    // (loadArtifactOrShards does this).
    if (!(shard.hostDist == hostDist) || !(shard.ipcDist == ipcDist)) {
        if (err)
            *err = "distribution blocks differ across shards; compute "
                   "the distribution after merging, not per shard";
        return false;
    }
    jobs.insert(jobs.end(), shard.jobs.begin(), shard.jobs.end());
    return true;
}

void
BenchArtifact::sortJobsByLabel()
{
    std::sort(jobs.begin(), jobs.end(),
              [](const ArtifactJob &a, const ArtifactJob &b) {
                  return a.label < b.label;
              });
}

// --------------------------------------------------------------------------
// Compare
// --------------------------------------------------------------------------

std::string
CompareResult::message() const
{
    std::string s;
    for (const auto &d : diffs) {
        s += d;
        s += '\n';
    }
    return s;
}

namespace {

/** Relative drift of @p cand against @p base beyond @p tol? Exact
 *  comparison when tol is 0. */
bool
drifted(double base, double cand, double tol)
{
    if (base == cand)
        return false;
    if (tol <= 0.0)
        return true;
    const double denom = base != 0.0 ? base : 1.0;
    return std::abs(cand - base) / std::abs(denom) > tol;
}

} // namespace

CompareResult
compareArtifacts(const BenchArtifact &baseline,
                 const BenchArtifact &candidate, const CompareOptions &opts)
{
    CompareResult out;
    const auto diff = [&](std::string msg) {
        out.ok = false;
        out.diffs.push_back(std::move(msg));
    };

    if (!baseline.bench.empty() && !candidate.bench.empty() &&
        baseline.bench != candidate.bench)
        diff("bench name differs: baseline '" + baseline.bench +
             "', candidate '" + candidate.bench + "'");
    if (baseline.scale != candidate.scale)
        diff("scale differs: baseline " + std::to_string(baseline.scale) +
             ", candidate " + std::to_string(candidate.scale) +
             " (re-run with CONOPT_SCALE=" +
             std::to_string(baseline.scale) + " or re-baseline)");

    for (const auto &b : baseline.jobs) {
        const auto *c = candidate.findJob(b.label);
        if (!c) {
            diff("job '" + b.label + "' missing from candidate");
            continue;
        }
        if (b.configFingerprint != c->configFingerprint)
            diff("config fingerprint drift on '" + b.label +
                 "': baseline " + b.configFingerprint + ", candidate " +
                 c->configFingerprint);
        // Exact uint64 comparison at tolerance 0: double conversion
        // would collapse >2^53 cycle counts onto the same value.
        const bool cyclesDrift =
            opts.tolerance <= 0.0
                ? b.cycles != c->cycles
                : drifted(double(b.cycles), double(c->cycles),
                          opts.tolerance);
        if (cyclesDrift) {
            char ratio[32] = "inf";
            if (b.cycles)
                std::snprintf(ratio, sizeof(ratio), "%.4f",
                              double(c->cycles) / double(b.cycles));
            diff("cycles drift on '" + b.label + "': baseline " +
                 std::to_string(b.cycles) + ", candidate " +
                 std::to_string(c->cycles) + " (x" + ratio + ")");
        }
        if (b.instructions != c->instructions)
            diff("instruction-count drift on '" + b.label +
                 "': baseline " + std::to_string(b.instructions) +
                 ", candidate " + std::to_string(c->instructions));
        if (b.checksum != c->checksum)
            diff("checksum drift on '" + b.label + "': baseline " +
                 hex64(b.checksum) + ", candidate " + hex64(c->checksum));
        // Optimizer counters get the same treatment as cycles: exact
        // at tolerance 0, relative drift otherwise (no cliff where a
        // nonzero tolerance disables the check entirely).
        const auto counter = [&](const char *name, uint64_t bv,
                                 uint64_t cv) {
            const bool drift =
                opts.tolerance <= 0.0
                    ? bv != cv
                    : drifted(double(bv), double(cv), opts.tolerance);
            if (drift)
                diff(std::string(name) + " drift on '" + b.label +
                     "': baseline " + std::to_string(bv) +
                     ", candidate " + std::to_string(cv));
        };
        counter("opt.early_executed", b.optEarlyExecuted,
                c->optEarlyExecuted);
        counter("opt.moves_eliminated", b.optMovesEliminated,
                c->optMovesEliminated);
        counter("opt.branches_resolved", b.optBranchesResolved,
                c->optBranchesResolved);
        counter("opt.loads_removed", b.optLoadsRemoved,
                c->optLoadsRemoved);
        counter("opt.loads_synthesized", b.optLoadsSynthesized,
                c->optLoadsSynthesized);
        counter("opt.mbc_misspecs", b.optMbcMisspecs,
                c->optMbcMisspecs);
    }
    for (const auto &c : candidate.jobs) {
        if (!baseline.findJob(c.label))
            diff("job '" + c.label +
                 "' not in baseline (re-baseline to accept new jobs)");
    }

    // Geomeans go through std::log/std::exp, whose last-ulp results
    // can differ across libm implementations; a tiny relative floor
    // keeps the tolerance-0 gate portable across toolchains while
    // still catching any real drift (the underlying cycle counts are
    // integer-exact and gated above). 1e-12 is ~10^3 ulps at 1.0 yet
    // orders of magnitude below any genuine timing change.
    const double geomeanTol = std::max(opts.tolerance, 1e-12);
    for (const auto &[k, bv] : baseline.geomeans) {
        const auto it = candidate.geomeans.find(k);
        if (it == candidate.geomeans.end()) {
            diff("geomean '" + k + "' missing from candidate");
            continue;
        }
        if (drifted(bv, it->second, geomeanTol))
            diff("geomean drift on '" + k + "': baseline " +
                 fmtDouble(bv) + ", candidate " + fmtDouble(it->second));
    }
    for (const auto &[k, cv] : candidate.geomeans) {
        (void)cv;
        if (!baseline.geomeans.count(k))
            diff("geomean '" + k + "' not in baseline");
    }
    return out;
}

// --------------------------------------------------------------------------
// conopt_bench_check CLI
// --------------------------------------------------------------------------

namespace {

/**
 * Informational host-throughput trend between two artifacts, over the
 * jobs measured on both sides. Never part of the gate: host perf is a
 * property of the machine the bench ran on, and noisy. Printed so a
 * re-baselining run shows the kips trend next to the exactness check.
 */
void
printPerfTrend(const BenchArtifact &baseline,
               const BenchArtifact &candidate)
{
    double baseSec = 0.0, candSec = 0.0;
    uint64_t baseInsts = 0, candInsts = 0;
    size_t measured = 0;
    for (const auto &b : baseline.jobs) {
        const auto *c = candidate.findJob(b.label);
        if (!c || b.hostSeconds <= 0.0 || c->hostSeconds <= 0.0)
            continue;
        ++measured;
        baseSec += b.hostSeconds;
        candSec += c->hostSeconds;
        baseInsts += b.instructions;
        candInsts += c->instructions;
    }
    if (measured == 0)
        return;
    const double baseKips = double(baseInsts) / baseSec / 1e3;
    const double candKips = double(candInsts) / candSec / 1e3;
    std::printf("conopt_bench_check: perf (informational, not gated): "
                "%zu jobs measured in both\n"
                "  host seconds: %.3f -> %.3f (%+.1f%%)\n"
                "  aggregate kips: %.1f -> %.1f (%+.1f%%)\n",
                measured, baseSec, candSec,
                (candSec / baseSec - 1.0) * 100.0, baseKips, candKips,
                (candKips / baseKips - 1.0) * 100.0);
}

/**
 * Informational distribution deltas between two artifacts, per
 * sweep-level summary both sides carry. Never part of the gate, for
 * the same reason as the perf trend: the host side is machine noise,
 * and the IPC side is opt-in observability, not the regression
 * surface (cycles/IPC per job already gate exactly).
 */
void
printDistTrend(const BenchArtifact &baseline,
               const BenchArtifact &candidate)
{
    const auto line = [](const char *name,
                         const BenchArtifact::DistSummary &b,
                         const BenchArtifact::DistSummary &c) {
        if (!b.measured() || !c.measured())
            return;
        const auto pct = [](double bv, double cv) {
            return bv != 0.0 ? (cv / bv - 1.0) * 100.0 : 0.0;
        };
        std::printf("  %s (%" PRIu64 " -> %" PRIu64 " samples): "
                    "p50 %.4g -> %.4g (%+.1f%%), "
                    "p95 %.4g -> %.4g (%+.1f%%), "
                    "p99 %.4g -> %.4g (%+.1f%%)\n",
                    name, b.count, c.count, b.p50, c.p50,
                    pct(b.p50, c.p50), b.p95, c.p95, pct(b.p95, c.p95),
                    b.p99, c.p99, pct(b.p99, c.p99));
    };
    const bool any =
        (baseline.hostDist.measured() && candidate.hostDist.measured()) ||
        (baseline.ipcDist.measured() && candidate.ipcDist.measured());
    if (!any)
        return;
    std::printf("conopt_bench_check: distribution deltas "
                "(informational, not gated):\n");
    line("host_seconds", baseline.hostDist, candidate.hostDist);
    line("ipc", baseline.ipcDist, candidate.ipcDist);
}

} // namespace

bool
parseTolerance(const char *s, double *out)
{
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || !std::isfinite(v) || v < 0.0)
        return false;
    *out = v;
    return true;
}

int
benchCheckMain(const std::vector<std::string> &args)
{
    const auto usage = [] {
        std::fprintf(
            stderr,
            "usage: conopt_bench_check [--tolerance T]\n"
            "                          [--recompute-geomeans BASE]\n"
            "                          <baseline> <candidate>\n"
            "  each path is a BENCH_*.json artifact or a directory of\n"
            "  per-shard artifacts for one bench (merged before the\n"
            "  comparison)\n"
            "  --recompute-geomeans rebuilds the candidate's figure\n"
            "  geomeans from its per-job records over config BASE, for\n"
            "  the columns the baseline carries (per-shard artifacts\n"
            "  defer geomeans to this post-merge step)\n"
            "  exit status: 0 match, 1 drift, 2 usage/parse error\n");
        return 2;
    };

    CompareOptions opts;
    std::string geomeanBase;
    bool recomputeGeomeans = false;
    std::vector<std::string> paths;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--tolerance") {
            if (++i >= args.size())
                return usage();
            if (!parseTolerance(args[i].c_str(), &opts.tolerance))
                return usage();
        } else if (args[i] == "--recompute-geomeans") {
            if (++i >= args.size())
                return usage();
            geomeanBase = args[i];
            recomputeGeomeans = true;
        } else if (!args[i].empty() && args[i][0] == '-') {
            return usage();
        } else {
            paths.push_back(args[i]);
        }
    }
    if (paths.size() != 2)
        return usage();

    std::string err;
    BenchArtifact baseline, candidate;
    if (!loadArtifactOrShards(paths[0], &baseline, &err)) {
        std::fprintf(stderr, "conopt_bench_check: baseline: %s\n",
                     err.c_str());
        return 2;
    }
    if (!loadArtifactOrShards(paths[1], &candidate, &err)) {
        std::fprintf(stderr, "conopt_bench_check: candidate: %s\n",
                     err.c_str());
        return 2;
    }
    // A zero-job artifact can only come from a run (or merge) that
    // swept nothing; comparing two empty artifacts would "pass" while
    // gating nothing at all, so it is an error, not a match.
    if (baseline.jobs.empty()) {
        std::fprintf(stderr,
                     "conopt_bench_check: baseline: %s: artifact has "
                     "zero jobs; nothing to gate against\n",
                     paths[0].c_str());
        return 2;
    }
    if (candidate.jobs.empty()) {
        std::fprintf(stderr,
                     "conopt_bench_check: candidate: %s: artifact has "
                     "zero jobs; an empty merge cannot pass the gate\n",
                     paths[1].c_str());
        return 2;
    }

    if (recomputeGeomeans) {
        std::vector<std::string> cols;
        for (const auto &[k, v] : baseline.geomeans) {
            (void)v;
            cols.push_back(k);
        }
        candidate.geomeans.clear();
        candidate.addGeomeansFromJobs(geomeanBase, cols);
    }

    printPerfTrend(baseline, candidate);
    printDistTrend(baseline, candidate);
    const auto res = compareArtifacts(baseline, candidate, opts);
    if (!res.ok) {
        std::fprintf(stderr,
                     "conopt_bench_check: DRIFT: %s vs %s (%zu "
                     "difference%s, tolerance %g):\n",
                     paths[0].c_str(), paths[1].c_str(), res.diffs.size(),
                     res.diffs.size() == 1 ? "" : "s", opts.tolerance);
        for (const auto &d : res.diffs)
            std::fprintf(stderr, "  %s\n", d.c_str());
        return 1;
    }
    std::printf("conopt_bench_check: OK: %s matches %s (%zu jobs, %zu "
                "geomeans, tolerance %g)\n",
                paths[1].c_str(), paths[0].c_str(),
                baseline.jobs.size(), baseline.geomeans.size(),
                opts.tolerance);
    return 0;
}

} // namespace conopt::sim
