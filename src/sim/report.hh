/**
 * @file
 * Reporters: pluggable formatters over a SweepResult. These replace the
 * per-binary printf scatter the evaluation harness used to carry:
 *
 *   - TableReporter:   the paper-style speedup matrix (configs as
 *                      columns, suites or workloads as rows, cells are
 *                      geomean speedups over a baseline column)
 *   - EffectsReporter: paper Table 3 (per-suite means of the
 *                      optimizer-effect fractions for one config)
 *   - DetailReporter:  the full per-job statistics block (conopt_cli)
 *   - CsvReporter:     one row per job, machine-readable
 *   - JsonReporter:    full structured dump, one object per job
 *
 * Table/Effects reporters assume the SweepSpec label convention
 * ("<workload>/<configName>"); jobs missing a cell are skipped.
 */

#ifndef CONOPT_SIM_REPORT_HH
#define CONOPT_SIM_REPORT_HH

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/sweep.hh"

namespace conopt::sim {

/** Formats a SweepResult onto a stdio stream. */
class Reporter
{
  public:
    virtual ~Reporter() = default;
    virtual void report(const SweepResult &res, std::FILE *out) const = 0;

    /** Convenience: report to stdout. */
    void print(const SweepResult &res) const { report(res, stdout); }
};

/** Layout knobs for the speedup matrix. */
struct TableOptions
{
    /** Section header printed above the table (omitted when empty). */
    std::string title;

    /** Config whose cycles are every cell's numerator (the "1.00"). */
    std::string baselineConfig = "base";

    /** Column order; each entry is a configName from the sweep. */
    std::vector<std::string> configs;

    enum class Rows
    {
        PerSuite,           ///< one row per suite (geomean cells)
        PerWorkloadBySuite, ///< suite sections, one row per workload,
                            ///< plus a geomean "avg" row (fig. 6)
        AllWorkloads,       ///< a single all-workload geomean row
    };
    Rows rows = Rows::PerSuite;

    /** Minimum printed width of each value column. */
    unsigned colWidth = 12;
};

/** The paper-style speedup matrix. */
class TableReporter : public Reporter
{
  public:
    explicit TableReporter(TableOptions opts) : opts_(std::move(opts)) {}
    void report(const SweepResult &res, std::FILE *out) const override;

  private:
    TableOptions opts_;
};

/** Paper Table 3: per-suite means of the optimizer-effect fractions. */
class EffectsReporter : public Reporter
{
  public:
    explicit EffectsReporter(std::string configName)
        : config_(std::move(configName))
    {}
    void report(const SweepResult &res, std::FILE *out) const override;

  private:
    std::string config_;
};

/** Full per-job statistics block, one section per job. */
class DetailReporter : public Reporter
{
  public:
    void report(const SweepResult &res, std::FILE *out) const override;

    /** One job's block (shared with callers that interleave output). */
    static void reportJob(const JobResult &r, std::FILE *out);
};

/** One CSV row per job (header row first). */
class CsvReporter : public Reporter
{
  public:
    void report(const SweepResult &res, std::FILE *out) const override;
};

/** A JSON array with one object per job, including optimizer stats. */
class JsonReporter : public Reporter
{
  public:
    void report(const SweepResult &res, std::FILE *out) const override;
};

/** Print a section header ("=== title ==="). */
void printHeader(const char *title, std::FILE *out = stdout);

/** Per-workload speedups of @p config over @p base across @p group,
 *  using the SweepSpec label convention; cells missing either config
 *  or with zero cycles on either side are skipped. The single source
 *  of the figure-headline ratios, shared by TableReporter and the
 *  benchmark-artifact geomeans (src/sim/baseline.hh). */
std::vector<double> groupSpeedups(const SweepResult &res,
                                  const std::vector<std::string> &group,
                                  const std::string &config,
                                  const std::string &base);

/** Escape @p s for embedding in a JSON string literal: quotes,
 *  backslashes, and control characters (shared by JsonReporter and the
 *  benchmark-artifact writer in src/sim/baseline.hh). */
std::string jsonEscape(const std::string &s);

/** Quote @p s as a CSV field when it contains commas, quotes, or line
 *  breaks (RFC 4180: embedded quotes doubled); returned verbatim
 *  otherwise. */
std::string csvField(const std::string &s);

} // namespace conopt::sim

#endif // CONOPT_SIM_REPORT_HH
