#include "src/sim/session.hh"

#include "src/arch/emulator.hh"
#include "src/pipeline/ooo_core.hh"
#include "src/util/logging.hh"

namespace conopt::sim {

SimSession::SimSession() = default;

SimSession::~SimSession() = default;

void
SimSession::reset(ProgramPtr program,
                  const pipeline::MachineConfig &config,
                  uint64_t max_insts)
{
    conopt_assert(program != nullptr);
    program_ = std::move(program);
    if (!emu_) {
        emu_ = std::make_unique<arch::Emulator>(program_, max_insts);
        core_ = std::make_unique<pipeline::OooCore>(config, *emu_);
    } else {
        emu_->reset(program_, max_insts);
        core_->reset(config);
    }
    core_->setFastForward(fastForward_);
    armed_ = true;
}

void
SimSession::setFastForward(bool on)
{
    fastForward_ = on;
    if (core_)
        core_->setFastForward(on);
}

SimResult
SimSession::run()
{
    if (!armed_)
        conopt_fatal("SimSession::run() without a prior reset()");
    armed_ = false;
    SimResult result;
    result.stats = core_->run();
    result.instructions = emu_->instCount();
    result.halted = emu_->halted();
    return result;
}

} // namespace conopt::sim
