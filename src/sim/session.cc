#include "src/sim/session.hh"

#include "src/arch/emulator.hh"
#include "src/pipeline/ooo_core.hh"
#include "src/util/logging.hh"

namespace conopt::sim {

std::atomic<uint64_t> SimSession::constructed_{0};

SimSession::SimSession()
{
    constructed_.fetch_add(1, std::memory_order_relaxed);
}

SimSession::~SimSession() = default;

void
SimSession::reset(ProgramPtr program,
                  const pipeline::MachineConfig &config,
                  uint64_t max_insts)
{
    conopt_assert(program != nullptr);
    program_ = std::move(program);
    if (!emu_) {
        // conopt-lint: allow(hotpath-alloc) first reset() only
        emu_ = std::make_unique<arch::Emulator>(program_, max_insts);
        // conopt-lint: allow(hotpath-alloc) first reset() only; warm
        core_ = std::make_unique<pipeline::OooCore>(config, *emu_);
    } else {
        emu_->reset(program_, max_insts);
        core_->reset(config);
    }
    emu_->setPredecode(predecode_);
    core_->setFastForward(fastForward_);
    core_->setStoreWindow(storeWindow_);
    core_->setIpcSampling(ipcInterval_, ipcCapacity_, ipcSeed_);
    armed_ = true;
}

void
SimSession::setFastForward(bool on)
{
    fastForward_ = on;
    if (core_)
        core_->setFastForward(on);
}

void
SimSession::setPredecode(bool on)
{
    predecode_ = on;
    if (emu_)
        emu_->setPredecode(on);
}

void
SimSession::setStoreWindow(bool on)
{
    storeWindow_ = on;
    if (core_)
        core_->setStoreWindow(on);
}

void
SimSession::setIpcSampling(uint64_t interval_insts, size_t reservoir_capacity,
                           uint64_t seed)
{
    ipcInterval_ = interval_insts;
    ipcCapacity_ = reservoir_capacity;
    ipcSeed_ = seed;
    if (core_)
        core_->setIpcSampling(interval_insts, reservoir_capacity, seed);
}

SimResult
SimSession::run()
{
    if (!armed_)
        conopt_fatal("SimSession::run() without a prior reset()");
    armed_ = false;
    SimResult result;
    result.stats = core_->run();
    result.instructions = emu_->instCount();
    result.halted = emu_->halted();
    if (core_->ipcSampleInterval() != 0) {
        result.ipcSamples = core_->ipcSamples().samples();
        result.ipcSamplesSeen = core_->ipcSamples().seen();
    }
    return result;
}

} // namespace conopt::sim
