/**
 * @file
 * Top-level simulation driver: runs a Program on the timing model under a
 * MachineConfig and returns the statistics. Also validates the run by
 * re-executing the program functionally and comparing final register
 * state (end-to-end strict checking).
 */

#ifndef CONOPT_SIM_SIMULATOR_HH
#define CONOPT_SIM_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "src/asm/program.hh"
#include "src/pipeline/machine_config.hh"
#include "src/pipeline/sim_stats.hh"

namespace conopt::sim {

/** Outcome of a timing simulation. */
struct SimResult
{
    pipeline::SimStats stats;
    uint64_t instructions = 0; ///< dynamic instructions retired
    bool halted = false;       ///< program ended via HALT

    /**
     * Per-interval IPC samples (bounded reservoir), filled only when
     * the session armed sampling (SimSession::setIpcSampling); empty
     * otherwise. Host-side observability, deliberately kept out of
     * SimStats and out of the result-cache schema — a cache hit
     * carries no samples, exactly like it carries no host timings.
     */
    std::vector<double> ipcSamples;
    uint64_t ipcSamplesSeen = 0; ///< interval samples offered, pre-reservoir

    double ipc() const { return stats.ipc(); }
};

/**
 * Run @p program to completion on the machine described by @p config.
 *
 * One-shot convenience wrapper: constructs a throwaway SimSession
 * (src/sim/session.hh) per call. Repeated callers — anything sweeping
 * many jobs — should hold a SimSession and reuse it; results are
 * bit-identical either way.
 *
 * @param max_insts safety limit on dynamic instruction count
 */
SimResult simulate(const assembler::Program &program,
                   const pipeline::MachineConfig &config,
                   uint64_t max_insts = uint64_t(1) << 32);

/** Speedup of @p config over @p baseline on the same program,
 *  implemented as a two-job SweepRunner sweep (src/sim/sweep.hh). */
double speedup(const assembler::Program &program,
               const pipeline::MachineConfig &baseline,
               const pipeline::MachineConfig &config,
               uint64_t max_insts = uint64_t(1) << 32);

} // namespace conopt::sim

#endif // CONOPT_SIM_SIMULATOR_HH
