/**
 * @file
 * conopt_sweep: the distributed sweep driver. One command that turns
 * the sharded-sweep primitives (ShardSpec partitioning, per-shard
 * BENCH_*.shard<i>of<n>.json artifacts, the persistent ResultCache,
 * and the conopt_bench_check merge/gate) into a fleet-style run:
 *
 *   conopt_sweep --shards 4 --baseline bench/baselines fig6_speedup
 *
 * launches all shard processes with the right `--shard i/n
 * --artifact-dir --result-cache` arguments, streams their progress,
 * waits with a per-shard timeout and bounded retry, then merges the
 * shard directory, recomputes the deferred figure geomeans, and gates
 * the merged artifact against a baseline. Exit codes are
 * conopt_bench_check-compatible: 0 match, 1 drift, 2 error. A crashed,
 * killed, or hung shard is a hard failure with its captured output
 * surfaced — never a silently thinner merged artifact (the driver
 * verifies every expected shard artifact exists before merging).
 *
 * Pieces:
 *   - progress line protocol: formatProgressLine/parseProgressLine/
 *     writeProgressLine — the machine-readable form of SweepProgress
 *     that bench binaries emit on `--progress-fd N` and the driver
 *     multiplexes into one aggregate ETA line
 *   - LauncherVars/expandLauncher + shellQuote: the `--launcher`
 *     command-template mechanism ({i}, {n}, {cmd}, {host}) that wraps
 *     shard commands for srun/env-setup/ssh-style launchers
 *   - DriverOptions/parseDriverArgs/buildShardArgv: CLI parsing and
 *     per-shard command composition (local exec, template, or --ssh
 *     round-robin over hosts; remote modes assume a shared filesystem)
 *   - runSweepDriver/ShardOutcome/DriverOutcome: the spawn/wait/retry/
 *     merge/gate engine, exposed as a library so
 *     tests/test_sweep_driver.cc covers it in-process
 *   - sweepDriverMain: the `conopt_sweep` CLI entry point
 */

#ifndef CONOPT_SIM_DRIVER_HH
#define CONOPT_SIM_DRIVER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/sweep.hh"

namespace conopt::sim {

// --------------------------------------------------------------------------
// Machine-readable progress line protocol (--progress-fd)
// --------------------------------------------------------------------------

/** Line prefix + version of the progress protocol. A bench binary with
 *  `--progress-fd N` writes one such line per finished job; the driver
 *  parses them per shard. Versioned so a driver can detect (and skip)
 *  lines from a newer harness instead of misreading them. */
constexpr const char *kProgressLineTag = "CONOPT-PROGRESS";
constexpr unsigned kProgressLineVersion = 1;

/** @p p as one protocol line (no trailing newline):
 *    CONOPT-PROGRESS v1 done=D total=T job_s=J host_s=H elapsed_s=E
 *      eta_s=X geomean_ipc=G kips=K host_p50=A host_p95=B host_p99=C
 *      label=LABEL
 *  Doubles use %.17g, so format -> parse round-trips exactly; the
 *  label is last and runs to end of line. The kips/host_p* fields are
 *  the fleet-observability extension (running host throughput and
 *  per-job host-latency percentiles); they ride within v1 because the
 *  parser has always skipped unknown keys, so older drivers keep
 *  reading new-harness lines and this parser reads old lines (the
 *  fields just stay 0). */
std::string formatProgressLine(const SweepProgress &p);

/** Parse one protocol line (trailing newline tolerated). False on
 *  anything else: wrong tag or version, missing/garbled numeric
 *  fields, or a missing label. Unknown numeric keys are ignored so
 *  minor protocol additions stay readable by older drivers. */
bool parseProgressLine(const std::string &line, SweepProgress *out);

/** Write @p p as one protocol line (newline-terminated, single write()
 *  so concurrent shards never interleave mid-line) to @p fd. Write
 *  errors are ignored: progress is advisory and must never fail the
 *  sweep itself. */
void writeProgressLine(int fd, const SweepProgress &p);

// --------------------------------------------------------------------------
// Connect-mode scheduling (--connect)
// --------------------------------------------------------------------------

/** Extract queue_depth from a conopt_served healthz JSON body. True
 *  with *depth filled when a `"queue_depth":<digits>` member is
 *  present; false (depth untouched) otherwise. A targeted scan, not a
 *  JSON parser: the daemon emits the healthz object itself, so the key
 *  never appears inside a string value. */
bool parseHealthzQueueDepth(const std::string &json, uint64_t *depth);

/** One healthz probe of @p endpoint ("host:port"). True with *depth
 *  filled on success; false when the daemon is unreachable or the
 *  reply is malformed. Injected into pickConnectEndpoint so the
 *  scheduling policy is testable without sockets. */
using HealthzProbeFn =
    std::function<bool(const std::string &endpoint, uint64_t *depth)>;

/** Pick the least-loaded endpoint for the next connect attempt: probe
 *  every endpoint starting at @p rotation (so ties and total probe
 *  failure reproduce the historical rotating round-robin exactly), and
 *  return the index of the strictly smallest queue depth in rotation
 *  order. Endpoints whose probe fails are treated as infinitely busy;
 *  when every probe fails the rotation slot itself is returned, which
 *  is the old blind behavior and lets the attempt surface the real
 *  connection error. @p endpoints must be non-empty. */
size_t pickConnectEndpoint(const std::vector<std::string> &endpoints,
                           size_t rotation, const HealthzProbeFn &probe);

// --------------------------------------------------------------------------
// Launcher templates
// --------------------------------------------------------------------------

/** @p s single-quoted for POSIX sh (embedded quotes escaped). */
std::string shellQuote(const std::string &s);

/** Substitution values for expandLauncher(). */
struct LauncherVars
{
    std::string shardIndex; ///< {i}
    std::string shardCount; ///< {n}
    std::string command;    ///< {cmd}: the shell-quoted bench command
    std::string host;       ///< {host}: the shard's ssh host ("" = none)
};

/** Expand a `--launcher` template: {i}, {n}, {cmd}, and {host} are
 *  replaced from @p vars; a template without {cmd} gets the command
 *  appended (so `--launcher 'srun {i} {n}'` still runs the bench).
 *  {host} comes from the --ssh host list (round-robin per shard).
 *  False (with @p err) on malformed input: an unknown placeholder, an
 *  unclosed brace, or {host} when no host is configured. */
bool expandLauncher(const std::string &tmpl, const LauncherVars &vars,
                    std::string *out, std::string *err);

// --------------------------------------------------------------------------
// Driver options and CLI parsing
// --------------------------------------------------------------------------

/** Everything `conopt_sweep` needs to run one distributed sweep. */
struct DriverOptions
{
    std::string benchPath; ///< bench binary (resolved via ./ then PATH)
    std::string benchName; ///< artifact name; "" = basename(benchPath)
    std::vector<std::string> benchArgs; ///< extra args after `--`

    unsigned shards = 2;         ///< shard process count (>= 1)
    /** The canonical run description (src/sim/request.hh). The driver
     *  consumes run.artifactDir (the merged artifact lands here; the
     *  per-shard files go to a driver-owned `<name>.shards/`
     *  subdirectory that is cleaned of stale artifacts first),
     *  run.resultCacheDir (forwarded to every shard when set),
     *  run.baselinePath (file or directory; "" = no gate), and
     *  run.tolerance (0 = exact). In --connect mode the rest of the
     *  RunOptions travels to the daemons as the SweepRequest body. */
    RunOptions run;
    std::string geomeanBase;     ///< non-empty: recompute merged figure
                                 ///< geomeans over this base config
    double timeoutSeconds = 0.0; ///< per shard attempt; 0 = none
    unsigned retries = 1;        ///< extra attempts per failed shard
    /** Command template wrapping each shard ("" = direct exec). When
     *  set, it takes over the wrapping entirely — sshHosts then only
     *  supplies the round-robin {host} rotation. */
    std::string launcher;
    /** Round-robin host placement (assumes a shared filesystem).
     *  Without a launcher template, shards run through the built-in
     *  `ssh -oBatchMode=yes <host> 'cd <cwd> && <cmd>'` wrapper; note
     *  a --timeout kill then reaches only the local ssh client, not
     *  the remote process — bound remote runtimes remotely too, e.g.
     *  `--launcher 'ssh {host} timeout N {cmd}' --ssh h1,h2`. */
    std::vector<std::string> sshHosts;
    /** `--connect host:port[,host:port...]` / `--connect unix:PATH`:
     *  instead of spawning shard processes, send each shard as a
     *  SweepRequest to a standing conopt_served fleet (round-robin
     *  over the endpoints, rotating on retry) and write the returned
     *  artifacts into the same shard directory — the merge, geomean
     *  recompute, and baseline gate are byte-identical to the
     *  ephemeral path. The positional bench argument is then a
     *  *registered bench name* (src/sim/bench_registry.hh), not a
     *  binary path. Mutually exclusive with --launcher/--ssh. */
    std::vector<std::string> connectHosts;
    bool streamProgress = true;  ///< attach --progress-fd + render ETA
};

/** Parse `conopt_sweep` CLI arguments into @p out. False (with a
 *  usage-ready message in @p err) on malformed input: an unknown flag,
 *  `--shards 0` or garbage counts, a bad timeout/tolerance/retries
 *  value, an invalid launcher template, an empty --ssh host, --ssh
 *  combined with a launcher template that never uses {host} (every
 *  shard would silently run locally), or a missing bench argument. */
bool parseDriverArgs(const std::vector<std::string> &args,
                     DriverOptions *out, std::string *err);

/** The exact argv the driver execs for shard @p index: the bench
 *  command plus `--shard i/n --artifact-dir <shard-dir>` (and
 *  `--result-cache`/`--progress-fd` when configured), wrapped by the
 *  launcher template or ssh when one is set. Empty (with @p err) when
 *  template expansion fails. */
std::vector<std::string> buildShardArgv(const DriverOptions &opts,
                                        unsigned index, std::string *err);

/** The artifact filename shard @p index of @p count writes, matching
 *  the bench harness convention: `BENCH_<bench>.shard<i>of<n>.json`,
 *  or plain `BENCH_<bench>.json` when count <= 1 (an unsharded run). */
std::string shardArtifactName(const std::string &bench, unsigned index,
                              unsigned count);

// --------------------------------------------------------------------------
// Running
// --------------------------------------------------------------------------

/** Final state of one shard after all its attempts. */
struct ShardOutcome
{
    unsigned index = 0;
    unsigned attempts = 0; ///< launches performed (1 = no retry needed)
    bool ok = false;       ///< last attempt exited 0 within the timeout
    bool timedOut = false; ///< last attempt was killed at the deadline
    /** Last attempt's status: the exit code when >= 0, or -SIGNAL when
     *  the process died to a signal (a killed shard is -9). */
    int exitStatus = 0;
    double seconds = 0.0;    ///< last attempt's wall-clock duration
    std::string outputTail;  ///< captured stdout+stderr (bounded tail)
    /** Well-formed CONOPT-PROGRESS lines received over --progress-fd
     *  across all attempts (0 when the pipe was not attached or the
     *  bench runs no SweepRunner sweep). */
    size_t progressLines = 0;
};

/** What runSweepDriver() did, beyond its exit code. */
struct DriverOutcome
{
    /** conopt_bench_check-compatible: 0 merged+gated ok, 1 baseline
     *  drift, 2 error (shard failure, missing artifact, bad config). */
    int exitCode = 2;
    std::string error;              ///< human-readable when exitCode == 2
    std::vector<ShardOutcome> shards;
    std::string mergedArtifactPath; ///< written on successful merge
    std::vector<std::string> gateDiffs; ///< populated on exitCode == 1
};

/** Launch, stream, wait, retry, merge, and gate one distributed sweep.
 *  Progress/status lines go to stderr; structured results come back in
 *  the DriverOutcome so callers (and tests) never scrape output. */
DriverOutcome runSweepDriver(const DriverOptions &opts);

/** The `conopt_sweep` CLI: parse args, run, print the outcome. Returns
 *  the process exit code (0 ok / 1 drift / 2 error). */
int sweepDriverMain(const std::vector<std::string> &args);

} // namespace conopt::sim

#endif // CONOPT_SIM_DRIVER_HH
