/**
 * @file
 * The harness layer of the canonical run schema: parse the CONOPT_*
 * environment and the shared harness flags into a RunOptions
 * (src/sim/request.hh), and turn finished sweeps into persisted,
 * baseline-gated BENCH_*.json artifacts. Lives in the src/sim library
 * (rather than bench/bench_common.hh, which now merely aliases it) so
 * tools and the standing daemon link the exact same parser and
 * artifact pipeline as the bench binaries without including bench
 * headers.
 *
 * The environment variables and flags, their semantics, and the exit-2
 * error contract are documented in bench/bench_common.hh (the
 * user-facing header) and README.md; this implementation is
 * byte-compatible with the pre-refactor inline parser — same flags,
 * same env vars, same diagnostics, same exit codes.
 */

#ifndef CONOPT_SIM_HARNESS_HH
#define CONOPT_SIM_HARNESS_HH

#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/machine_config.hh"
#include "src/sim/baseline.hh"
#include "src/sim/request.hh"
#include "src/sim/result_cache.hh"
#include "src/sim/sweep.hh"

namespace conopt::sim {

/** The stderr progress line installed by --progress. */
void printSweepProgress(const SweepProgress &p);

/**
 * Print the host-seconds distribution across the jobs that actually
 * simulated (cache hits measure the loader and are excluded), using
 * the nearest-rank percentiles of PercentileAccumulator. Print-only:
 * these numbers describe the machine the bench ran ON and never feed
 * the artifact or the baseline gate.
 */
void printHostPercentiles(const SweepResult &res);

/** Harness options shared by every bench binary: the serializable run
 *  description plus the process-local bits (progress sinks, the live
 *  result-cache handle) that never go on the wire. */
struct HarnessOptions
{
    RunOptions run;
    bool progress = false; ///< per-job progress/ETA on stderr
    /** Descriptor for machine-readable CONOPT-PROGRESS lines (one per
     *  finished job); -1 = none. The conopt_sweep driver passes an
     *  inherited pipe here to multiplex shard ETAs. */
    int progressFd = -1;
    /** Created by parse() when a cache dir is configured; shared with
     *  the SweepRunner so finish() can report hit/miss counters. */
    std::shared_ptr<ResultCache> resultCache;

    /** @p lenientArgs ignores unknown flags instead of rejecting them;
     *  only for binaries sharing argv with another framework
     *  (micro_structures + google-benchmark). Everywhere else a typo'd
     *  gate flag must fail loudly, not silently skip the gate. A
     *  malformed --shard/CONOPT_SHARD is always fatal (exit 2): a
     *  shard spec that silently fell back to "the whole sweep" would
     *  duplicate work and clobber the unsharded artifact. */
    static HarnessOptions parse(int argc, char **argv,
                                bool lenientArgs = false);

    /** parse() over an already-tokenized argument list (no argv[0]).
     *  `conopt_sweep --connect` folds the bench's `-- args` through
     *  this so a daemon-backed run interprets harness flags exactly
     *  like an ephemeral shard would. Same exit-2 contract. */
    static HarnessOptions parseArgs(const std::vector<std::string> &args,
                                    bool lenientArgs = false);

    /** The composed progress sink: the human stderr printer (with
     *  --progress) and/or the machine-readable line protocol (with
     *  --progress-fd, one CONOPT-PROGRESS line per finished job).
     *  Empty when neither is armed. */
    ProgressFn progressFn() const;

    /** SweepRunner options carrying the run description, the
     *  persistent result cache, and the progress sinks. */
    SweepOptions sweepOptions() const;

    /** Shard membership for benches that enumerate their own item
     *  lists instead of running a SweepRunner (table1_workloads,
     *  table2_config, micro_structures): item @p idx of the full list
     *  belongs to this process iff inShard(idx). */
    bool inShard(size_t idx) const { return run.shard.contains(idx); }
};

/**
 * Persist @p art as `BENCH_<bench>.json` (or `BENCH_<bench>
 * .shard<i>of<n>.json` for a sharded run) and apply the baseline gate.
 * Returns the bench binary's exit status: 0 on success, 1 when the
 * artifact cannot be written or the baseline comparison finds drift.
 */
int harnessFinish(const std::string &benchName, BenchArtifact art,
                  const HarnessOptions &o);

/** An artifact job that pins a preset machine configuration without
 *  running it: label = config = @p name, plus the config fingerprint.
 *  Used by benches whose regression unit is the experimental setup
 *  itself (table2_config, micro_structures). */
ArtifactJob configJob(const char *name,
                      const pipeline::MachineConfig &cfg);

/**
 * The artifact for a finished sweep under @p run: fromSweep() plus the
 * optional perf/ipc-sample blocks, with the figure-level geomeans
 * (@p configs over @p baseConfig) and the distribution block computed
 * only for unsharded runs — whole-figure aggregates cannot be computed
 * from one shard's subset, so the merge contract defers them to the
 * post-merge step. Scale/threads metadata come from @p run
 * (effectiveScale/effectiveThreads), so a daemon serving a wire
 * request reproduces the client's metadata, not its own environment.
 */
BenchArtifact artifactFromSweep(const SweepResult &res,
                                const RunOptions &run,
                                const std::string &baseConfig,
                                const std::vector<std::string> &configs);

/** harnessFinish() for the common case: artifactFromSweep() plus the
 *  --perf host-percentile report. */
int harnessFinishSweep(const std::string &benchName,
                       const SweepResult &res,
                       const std::string &baseConfig,
                       const std::vector<std::string> &configs,
                       const HarnessOptions &o);

} // namespace conopt::sim

#endif // CONOPT_SIM_HARNESS_HH
