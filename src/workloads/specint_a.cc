/**
 * @file
 * SPECint synthetic kernels, part A: bzip2, crafty, eon, gap, gcc.
 *
 * Each kernel reproduces the dominant behaviour of its namesake (see
 * DESIGN.md): bzip2 is byte-stream compression (histogram + run-length),
 * crafty is bitboard chess (logic ops, popcounts, small attack tables),
 * eon is a C++ ray tracer (indirect calls + fp shading), gap is computer
 * algebra (multiword arithmetic on small bignums), and gcc is a compiler
 * front end (indirect dispatch over unpredictable token streams).
 */

#include <cstdio>

#include "src/workloads/common.hh"

namespace conopt::workloads {

Program
buildBzip2(unsigned scale)
{
    Assembler a;
    const unsigned buf_bytes = 12 * 1024;
    std::vector<uint8_t> buf(buf_bytes);
    {
        // Compressible-ish data: runs of repeated bytes with noise.
        Rng rng(0xb21b2);
        uint8_t cur = 0;
        for (auto &b : buf) {
            if (rng.nextBool(0.25))
                cur = uint8_t(rng.nextBelow(32));
            b = cur;
        }
    }
    const uint64_t buf_addr = a.dataBytes(buf);
    const uint64_t hist_addr = a.allocQuads(256);

    const Reg ptr = R1, count = R2, byte = R3, off = R4, slot = R5;
    const Reg hval = R6, prev = R7, eq = R8, run = R9, sum = R10;
    const Reg hbase = R11;

    a.li(ptr, int64_t(buf_addr));
    a.li(hbase, int64_t(hist_addr));
    a.li(count, int64_t(uint64_t(buf_bytes) * scale));
    a.li(prev, -1);
    a.li(run, 0);
    a.li(sum, 0);

    a.label("loop");
    a.ldbu(byte, 0, ptr);          // sequential: address known at rename
    a.sll(byte, 3, off);           // histogram slot (data-dependent)
    a.addq(hbase, off, slot);
    a.ldq(hval, 0, slot);          // data-dependent address: no addr-gen
    a.addq(hval, 1, hval);
    a.stq(hval, 0, slot);
    // Run-length detection: branch depends on the data.
    a.cmpeq(byte, prev, eq);
    a.beq(eq, "run_ends");
    a.addq(run, 1, run);
    a.br("next");
    a.label("run_ends");
    a.addq(sum, run, sum);
    a.li(run, 0);
    a.label("next");
    a.mov(byte, prev);             // eliminated by move elimination
    a.addq(ptr, 1, ptr);
    a.subq(count, 1, count);
    a.bne(count, "loop");

    a.addq(sum, run, sum);
    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

Program
buildCrafty(unsigned scale)
{
    Assembler a;
    // Real crafty's attack tables are many KB: 1024 entries thrash the
    // 1 KB Memory Bypass Cache, so RLE gains little here.
    const uint64_t attacks = a.dataQuads(randomQuads(1024, 0xc4af7));
    const uint64_t mobility = a.dataQuads(randomQuads(1024, 0x30b17));
    // Position buffer: the bitboards being searched come from memory,
    // so their values are unknown to the optimizer at rename.
    const unsigned npos = 1024;
    const uint64_t positions = a.dataQuads(randomQuads(npos, 0xc4af8));

    const Reg x = R1, tmp = R2, bits = R3, cnt = R4, t = R5;
    const Reg idx = R6, off = R7, slot = R8, val = R9, sum = R10;
    const Reg abase = R11, mbase = R12, iter = R13, mval = R14;
    const Reg pp = R15, occ = R16, atk = R17;

    a.li(abase, int64_t(attacks));
    a.li(mbase, int64_t(mobility));
    a.li(pp, int64_t(positions));
    a.li(sum, 0);
    a.li(iter, int64_t(4200) * scale);

    a.label("outer");
    // Load the bitboard under evaluation: value unknown at rename.
    a.and_(iter, int64_t(npos - 1), tmp);
    a.sll(tmp, 3, tmp);
    a.addq(pp, tmp, slot);
    a.ldq(x, 0, slot);
    emitXorshift(a, x, tmp);       // move generation mixing (unknown)
    // Population count of a 16-bit slice: a data-dependent loop, the
    // bread and butter of bitboard engines.
    a.and_(x, 0xffff, bits);
    a.li(cnt, 0);
    a.label("pop");
    a.beq(bits, "pop_done");
    a.subq(bits, 1, t);
    a.and_(bits, t, bits);         // clear lowest set bit
    a.addq(cnt, 1, cnt);
    a.br("pop");
    a.label("pop_done");

    // Attack/mobility lookups indexed by the (unknown) bitboard: the
    // addresses are data-dependent, as in the real engine.
    a.and_(x, 1023, idx);
    a.sll(idx, 3, off);
    a.addq(abase, off, slot);
    a.ldq(val, 0, slot);
    a.addq(mbase, off, slot);
    a.ldq(mval, 0, slot);
    a.xor_(val, mval, occ);
    a.and_(occ, bits, atk);
    a.addq(atk, cnt, val);
    a.addq(sum, val, sum);

    a.subq(iter, 1, iter);
    a.bne(iter, "outer");
    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

Program
buildEon(unsigned scale)
{
    Assembler a;
    const unsigned verts = 512;
    const uint64_t vx = a.dataDoubles(randomDoubles(verts, 0xe01));
    const uint64_t vy = a.dataDoubles(randomDoubles(verts, 0xe02));
    const uint64_t vz = a.dataDoubles(randomDoubles(verts, 0xe03));
    const uint64_t out = a.allocQuads(verts);
    // Per-vertex material selector (0..2), from the scene description.
    std::vector<uint64_t> mats(verts);
    {
        Rng rng(0xe04);
        for (auto &m : mats)
            m = rng.nextBelow(3);
    }
    const uint64_t mat_addr = a.dataQuads(mats);
    // Jump table filled in after the shaders are emitted.
    const uint64_t jt = a.allocQuads(4);

    const Reg x = R1, tmp = R2, sel = R3, off = R4, slot = R5;
    const Reg target = R6, i = R7, voff = R8, sum = R10;
    const Reg xb = R11, yb = R12, zb = R13, ob = R14, jb = R15;
    const Reg iter = R16, acc = R17, mb_sel = R18;

    a.li(x, 0x0ddba11);
    a.li(mb_sel, int64_t(mat_addr));
    a.li(xb, int64_t(vx));
    a.li(yb, int64_t(vy));
    a.li(zb, int64_t(vz));
    a.li(ob, int64_t(out));
    a.li(jb, int64_t(jt));
    a.li(sum, 0);
    a.li(i, 0);
    a.li(iter, int64_t(5000) * scale);

    a.label("outer");
    // The material id comes from the scene (a load), so the dispatch
    // target is data-dependent as in real virtual calls.
    a.and_(i, int64_t(verts - 1), tmp);
    a.sll(tmp, 3, tmp);
    a.addq(mb_sel, tmp, slot);
    a.ldq(sel, 0, slot);
    a.sll(sel, 3, off);
    a.addq(jb, off, slot);
    a.ldq(target, 0, slot);        // function pointer load
    // Vertex offset for this iteration.
    a.and_(i, int64_t(verts - 1), voff);
    a.sll(voff, 3, voff);
    a.jsr(assembler::RA, target);  // virtual dispatch

    a.label("shader_ret");
    a.addq(i, 1, i);
    a.subq(iter, 1, iter);
    a.bne(iter, "outer");
    a.addq(sum, acc, sum);
    emitChecksumAndHalt(a, sum, R20);

    // --- three shader bodies (diffuse / specular / ambient) -----------
    const FReg fa = F1, fb = F2, fc = F3, facc = F4;
    a.label("shader0");
    a.addq(xb, voff, slot);
    a.ldt(fa, 0, slot);
    a.addq(yb, voff, slot);
    a.ldt(fb, 0, slot);
    a.mult(fa, fb, fc);
    a.cvttq(fc, tmp);
    a.addq(acc, tmp, acc);
    a.ret();

    a.label("shader1");
    a.addq(yb, voff, slot);
    a.ldt(fa, 0, slot);
    a.addq(zb, voff, slot);
    a.ldt(fb, 0, slot);
    a.addt(fa, fb, fc);
    a.mult(fc, fc, facc);
    a.cvttq(facc, tmp);
    a.addq(acc, tmp, acc);
    a.ret();

    a.label("shader2");
    a.addq(zb, voff, slot);
    a.ldt(fa, 0, slot);
    a.addq(xb, voff, slot);
    a.ldt(fb, 0, slot);
    a.subt(fa, fb, fc);
    a.cvttq(fc, tmp);
    a.addq(acc, tmp, acc);
    a.addq(ob, voff, slot);
    a.stq(acc, 0, slot);
    a.ret();

    a.dataLabel(jt + 0, "shader0");
    a.dataLabel(jt + 8, "shader1");
    a.dataLabel(jt + 16, "shader2");
    a.dataLabel(jt + 24, "shader0");
    return a.finish();
}

Program
buildGap(unsigned scale)
{
    Assembler a;
    const unsigned words = 48;   // 3072-bit bignums
    const unsigned npairs = 8;   // rotating operand pool (> MBC capacity)
    const uint64_t na = a.dataQuads(randomQuads(words * npairs, 0x9a91));
    const uint64_t nb = a.dataQuads(randomQuads(words * npairs, 0x9a92));
    const uint64_t nc = a.allocQuads(words);

    const Reg pa = R1, pb = R2, pc = R3, i = R4, av = R5, bv = R6;
    const Reg s = R7, s2 = R8, carry = R9, c1 = R10, c2 = R11;
    const Reg sum = R12, iter = R13, off = R14, slot = R15;

    a.li(sum, 0);
    a.li(iter, int64_t(520) * scale);

    a.label("outer");
    // Rotate through the operand pool so the working set exceeds the
    // MBC, as real gap bignums do.
    a.and_(iter, int64_t(npairs - 1), off);
    a.mulq(off, int64_t(words * 8), off);
    a.li(pa, int64_t(na));
    a.addq(pa, off, pa);
    a.li(pb, int64_t(nb));
    a.addq(pb, off, pb);
    a.li(pc, int64_t(nc));
    a.li(carry, 0);
    a.li(i, int64_t(words));
    a.label("addloop");
    // Two independent multiply-accumulate lanes per iteration (unrolled
    // as a compiler would): the multiplies are 7-cycle complex-ALU ops
    // the optimizer cannot execute or fold.
    a.ldq(av, 0, pa);
    a.ldq(bv, 0, pb);
    a.addq(av, bv, s);
    a.cmpult(s, av, c1);
    a.addq(s, carry, s2);
    a.cmpult(s2, s, c2);
    a.bis(c1, c2, carry);
    a.stq(s2, 0, pc);
    a.ldq(av, 8, pa);
    a.ldq(bv, 8, pb);
    a.addq(av, bv, s);
    a.cmpult(s, av, c1);
    a.addq(s, carry, s2);
    a.cmpult(s2, s, c2);
    a.bis(c1, c2, carry);
    a.stq(s2, 8, pc);
    a.addq(pa, 16, pa);
    a.addq(pb, 16, pb);
    a.addq(pc, 16, pc);
    a.subq(i, 2, i);
    a.bne(i, "addloop");
    // Fold one result word into the checksum.
    a.li(slot, int64_t(nc));
    a.ldq(off, 0, slot);
    a.xor_(sum, off, sum);
    a.addq(sum, carry, sum);
    a.subq(iter, 1, iter);
    a.bne(iter, "outer");

    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

Program
buildGcc(unsigned scale)
{
    Assembler a;
    const unsigned ntokens = 2048;
    // Token stream: 16 token kinds, unpredictable sequence.
    std::vector<uint64_t> tokens(ntokens);
    {
        Rng rng(0x6cc);
        for (auto &t : tokens)
            t = rng.nextBelow(16);
    }
    const uint64_t tok_addr = a.dataQuads(tokens);
    const uint64_t hash_addr = a.allocQuads(1024);
    const uint64_t jt = a.allocQuads(16);

    const Reg ptr = R1, tok = R2, off = R3, slot = R4, target = R5;
    const Reg h = R6, idx = R7, hv = R8, sum = R9, jb = R10;
    const Reg hb = R11, iter = R12, cnt = R13, tmp = R14;

    a.li(jb, int64_t(jt));
    a.li(hb, int64_t(hash_addr));
    a.li(sum, 0);
    a.li(h, 5381);
    a.li(iter, int64_t(6) * scale);

    a.label("pass");
    a.li(ptr, int64_t(tok_addr));
    a.li(cnt, int64_t(ntokens));
    a.label("tok_loop");
    a.ldq(tok, 0, ptr);            // sequential token fetch
    a.sll(tok, 3, off);
    a.addq(jb, off, slot);
    a.ldq(target, 0, slot);        // handler address
    a.jmp(target);                 // computed goto: the gcc signature

    // 16 handlers, each a short distinct basic block.
    for (unsigned k = 0; k < 16; ++k) {
        char lbl[16];
        std::snprintf(lbl, sizeof(lbl), "h%u", k);
        a.label(lbl);
        switch (k % 4) {
          case 0: // identifier: hash-table probe
            a.sll(h, 5, tmp);
            a.addq(tmp, h, h);     // h = h*33
            a.addq(h, tok, h);
            a.and_(h, 1023, idx);
            a.sll(idx, 3, idx);
            a.addq(hb, idx, slot);
            a.ldq(hv, 0, slot);
            a.addq(hv, 1, hv);
            a.stq(hv, 0, slot);
            break;
          case 1: // operator: fold into the checksum
            a.xor_(sum, tok, sum);
            a.addq(sum, int64_t(k), sum);
            break;
          case 2: // literal: small arithmetic
            a.sll(tok, 2, tmp);
            a.addq(sum, tmp, sum);
            break;
          case 3: // punctuation: counter only
            a.addq(sum, 1, sum);
            break;
        }
        a.br("tok_next");
    }

    a.label("tok_next");
    a.addq(ptr, 8, ptr);
    a.subq(cnt, 1, cnt);
    a.bne(cnt, "tok_loop");
    a.subq(iter, 1, iter);
    a.bne(iter, "pass");

    emitChecksumAndHalt(a, sum, R20);

    for (unsigned k = 0; k < 16; ++k) {
        char lbl[16];
        std::snprintf(lbl, sizeof(lbl), "h%u", k);
        a.dataLabel(jt + uint64_t(k) * 8, lbl);
    }
    return a.finish();
}

} // namespace conopt::workloads
