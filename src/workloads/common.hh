/**
 * @file
 * Shared code-generation helpers for the synthetic workloads.
 */

#ifndef CONOPT_WORKLOADS_COMMON_HH
#define CONOPT_WORKLOADS_COMMON_HH

#include <cstdint>
#include <vector>

#include "src/asm/assembler.hh"
#include "src/util/rng.hh"
#include "src/workloads/workload.hh"

namespace conopt::workloads {

// Workload sources are assembly-dense; pull in the register names and
// assembler vocabulary wholesale. This header is only included by the
// kernel translation units, never by library headers.
// conopt-lint: allow(namespace-hygiene) see above; kernel-TU-only DSL
using namespace conopt::assembler;

/**
 * Emit an in-ISA xorshift64 step on @p x (uses @p tmp as scratch):
 * x ^= x << 13; x ^= x >> 7; x ^= x << 17.
 * All simple ops; the result is data-dependent, so downstream branches
 * on it are unpredictable.
 */
inline void
emitXorshift(Assembler &a, Reg x, Reg tmp)
{
    a.sll(x, 13, tmp);
    a.xor_(x, tmp, x);
    a.srl(x, 7, tmp);
    a.xor_(x, tmp, x);
    a.sll(x, 17, tmp);
    a.xor_(x, tmp, x);
}

/** Store the checksum register and halt. */
inline void
emitChecksumAndHalt(Assembler &a, Reg checksum, Reg addr_tmp)
{
    a.li(addr_tmp, int64_t(checksumAddr));
    a.stq(checksum, 0, addr_tmp);
    a.halt();
}

/** Build a vector of pseudo-random quads (deterministic). */
inline std::vector<uint64_t>
randomQuads(size_t count, uint64_t seed, uint64_t mask = ~uint64_t(0))
{
    Rng rng(seed);
    std::vector<uint64_t> v(count);
    for (auto &q : v)
        q = rng.next() & mask;
    return v;
}

/** Build a vector of pseudo-random doubles in [0,1). */
inline std::vector<double>
randomDoubles(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v(count);
    for (auto &d : v)
        d = rng.nextDouble();
    return v;
}

} // namespace conopt::workloads

#endif // CONOPT_WORKLOADS_COMMON_HH
