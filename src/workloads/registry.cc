#include "src/workloads/workload.hh"

#include "src/util/logging.hh"

namespace conopt::workloads {

const std::vector<Workload> &
allWorkloads()
{
    // Table 1 of the paper, in order. paperInstsM is the simulated
    // instruction count the paper reports (millions).
    static const std::vector<Workload> table = {
        {"bzp", "bzip2 (histogram + run-length)", "SPECint", 293, 1,
         &buildBzip2},
        {"cra", "crafty (bitboards + popcount)", "SPECint", 625, 1,
         &buildCrafty},
        {"eon", "eon (shader dispatch)", "SPECint", 132, 1, &buildEon},
        {"gap", "gap (multiword arithmetic)", "SPECint", 474, 1,
         &buildGap},
        {"gcc", "gcc (token dispatch + hashing)", "SPECint", 284, 1,
         &buildGcc},
        {"mcf", "mcf (simplex chase + sort_basket)", "SPECint", 410, 1,
         &buildMcf},
        {"prl", "perlbmk (interpreter + hashing)", "SPECint", 1000, 1,
         &buildPerlbmk},
        {"twf", "twolf (simulated annealing)", "SPECint", 596, 1,
         &buildTwolf},
        {"vor", "vortex (object database)", "SPECint", 272, 1,
         &buildVortex},
        {"vpr", "vpr (maze routing)", "SPECint", 1000, 1, &buildVpr},
        {"amp", "ammp (pairwise forces)", "SPECfp", 500, 1, &buildAmmp},
        {"app", "applu (5-point stencil)", "SPECfp", 382, 1,
         &buildApplu},
        {"art", "art (neural network)", "SPECfp", 1000, 1, &buildArt},
        {"eqk", "equake (sparse matvec)", "SPECfp", 1000, 1,
         &buildEquake},
        {"msa", "mesa (vertex transform)", "SPECfp", 1000, 1,
         &buildMesa},
        {"mgd", "mgrid (7-point stencil)", "SPECfp", 1000, 1,
         &buildMgrid},
        {"g721d", "g721 decode (ADPCM)", "mediabench", 662, 1,
         &buildG721Decode},
        {"g721e", "g721 encode (ADPCM)", "mediabench", 358, 1,
         &buildG721Encode},
        {"mpg2d", "mpeg2 decode (IDCT)", "mediabench", 220, 1,
         &buildMpeg2Decode},
        {"mpg2e", "mpeg2 encode (motion SAD)", "mediabench", 1000, 1,
         &buildMpeg2Encode},
        {"untst", "untoast (GSM synthesis filter)", "mediabench", 96, 1,
         &buildUntoast},
        {"tst", "toast (GSM autocorrelation)", "mediabench", 287, 1,
         &buildToast},
    };
    return table;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

const Workload &
workloadByName(const std::string &name)
{
    if (const Workload *w = findWorkload(name))
        return *w;
    conopt_fatal("unknown workload '%s'", name.c_str());
}

std::vector<const Workload *>
suiteWorkloads(const std::string &suite)
{
    std::vector<const Workload *> out;
    for (const Workload &w : allWorkloads()) {
        if (w.suite == suite)
            out.push_back(&w);
    }
    return out;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {"SPECint", "SPECfp",
                                                   "mediabench"};
    return names;
}

} // namespace conopt::workloads
