/**
 * @file
 * SPECfp synthetic kernels: ammp, applu, art, equake, mesa, mgrid.
 *
 * ammp is dominated by long floating-point dependence chains (pairwise
 * force evaluation with divides), so the integer-only optimizer gains
 * essentially nothing -- the paper reports a 1.00 speedup for it. The
 * others mix regular fp arithmetic with rich integer address arithmetic
 * (stencils, sparse matvec, vertex transforms), which is where address
 * generation and early execution pay off.
 */

#include "src/workloads/common.hh"

namespace conopt::workloads {

Program
buildAmmp(unsigned scale)
{
    Assembler a;
    const unsigned atoms = 256;
    const unsigned pairs = 1024;
    const uint64_t xs = a.dataDoubles(randomDoubles(atoms, 0xa301));
    const uint64_t ys = a.dataDoubles(randomDoubles(atoms, 0xa302));
    const uint64_t zs = a.dataDoubles(randomDoubles(atoms, 0xa303));
    std::vector<uint64_t> pair_idx(pairs);
    {
        Rng rng(0xa304);
        for (auto &p : pair_idx) {
            const uint64_t i = rng.nextBelow(atoms);
            uint64_t j = rng.nextBelow(atoms);
            if (j == i)
                j = (j + 1) % atoms;
            p = (i << 32) | j;
        }
    }
    const uint64_t pairs_addr = a.dataQuads(pair_idx);

    const Reg pb = R1, pk = R2, i = R3, j = R4, off = R5, slot = R6;
    const Reg xb = R7, yb = R8, zb = R9, cnt = R11, iter = R12, s = R13;
    const FReg xi = F1, xj = F2, yi = F3, yj = F4, zi = F5, zj = F6;
    const FReg dx = F7, dy = F8, dz = F9, r2 = F10, t = F11, f = F12;
    const FReg acc = F13, one = F14, fx = F15, fy = F16, fz = F17;

    a.li(xb, int64_t(xs));
    a.li(yb, int64_t(ys));
    a.li(zb, int64_t(zs));
    a.li(s, 1);
    a.cvtqt(s, one);                // 1.0
    a.li(iter, int64_t(7) * scale);

    a.label("outer");
    a.li(pb, int64_t(pairs_addr));
    a.li(cnt, int64_t(pairs));
    a.label("pair");
    a.ldq(pk, 0, pb);               // packed (i, j): sequential
    a.srl(pk, 32, i);
    a.and_(pk, 0xffffffff, j);
    // Gather the six coordinates: data-dependent addresses.
    a.sll(i, 3, off);
    a.addq(xb, off, slot);
    a.ldt(xi, 0, slot);
    a.addq(yb, off, slot);
    a.ldt(yi, 0, slot);
    a.addq(zb, off, slot);
    a.ldt(zi, 0, slot);
    a.sll(j, 3, off);
    a.addq(xb, off, slot);
    a.ldt(xj, 0, slot);
    a.addq(yb, off, slot);
    a.ldt(yj, 0, slot);
    a.addq(zb, off, slot);
    a.ldt(zj, 0, slot);
    // The long fp chain: dx^2+dy^2+dz^2, a divide, and three force
    // components -- fp-unit bound, which the integer-only optimizer
    // cannot touch (the paper reports a 1.00 speedup for ammp).
    a.subt(xi, xj, dx);
    a.subt(yi, yj, dy);
    a.subt(zi, zj, dz);
    a.mult(dx, dx, r2);
    a.mult(dy, dy, t);
    a.addt(r2, t, r2);
    a.mult(dz, dz, t);
    a.addt(r2, t, r2);
    a.addt(r2, one, r2);            // avoid div-by-zero
    a.divt(one, r2, f);
    a.divt(f, r2, t);               // r^-4 via a second divide
    a.mult(t, f, t);                // r^-6 flavor
    a.mult(f, dx, fx);
    a.mult(f, dy, fy);
    a.mult(f, dz, fz);
    a.addt(fx, fy, fx);
    a.addt(fx, fz, fx);
    a.addt(t, fx, t);
    a.addt(acc, t, acc);
    a.addq(pb, 8, pb);
    a.subq(cnt, 1, cnt);
    a.bne(cnt, "pair");
    a.subq(iter, 1, iter);
    a.bne(iter, "outer");

    a.cvttq(acc, R10);
    emitChecksumAndHalt(a, R10, R20);
    return a.finish();
}

Program
buildApplu(unsigned scale)
{
    Assembler a;
    const unsigned n = 64; // n x n grid
    const uint64_t src = a.dataDoubles(randomDoubles(n * n, 0xab1));
    const uint64_t dst = a.allocQuads(n * n);

    const Reg rowp = R1, dstp = R2, i = R3, jj = R4, iter = R5;
    const Reg sum = R10;
    const FReg c = F1, up = F2, dn = F3, lf = F4, rt = F5, mid = F6;
    const FReg acc = F7, t = F8;

    a.li(sum, 0);
    a.li(iter, int64_t(4) * scale);
    // Stencil coefficient 0.25 via 1/4.
    a.li(R6, 4);
    a.cvtqt(R6, t);
    a.li(R6, 1);
    a.cvtqt(R6, c);
    a.divt(c, t, c);

    a.label("sweep");
    // Interior rows 1..n-2; incremental row pointers keep every address
    // a rename-time constant chain.
    a.li(rowp, int64_t(src + n * 8));     // row 1
    a.li(dstp, int64_t(dst + n * 8));
    a.li(i, int64_t(n - 2));
    a.label("row");
    a.li(jj, int64_t(n - 2));
    a.label("col");
    // 5-point stencil: up, down, left, right, middle.
    a.ldt(mid, 8, rowp);
    a.ldt(lf, 0, rowp);
    a.ldt(rt, 16, rowp);
    a.ldt(up, int64_t(8 - 8 * int64_t(n)), rowp);
    a.ldt(dn, int64_t(8 + 8 * int64_t(n)), rowp);
    a.addt(lf, rt, acc);
    a.addt(up, dn, t);
    a.addt(acc, t, acc);
    a.mult(acc, c, acc);
    a.addt(acc, mid, acc);
    a.stt(acc, 8, dstp);
    a.addq(rowp, 8, rowp);
    a.addq(dstp, 8, dstp);
    a.subq(jj, 1, jj);
    a.bne(jj, "col");
    a.addq(rowp, 16, rowp);         // skip the boundary columns
    a.addq(dstp, 16, dstp);
    a.subq(i, 1, i);
    a.bne(i, "row");
    a.subq(iter, 1, iter);
    a.bne(iter, "sweep");

    a.li(R7, int64_t(dst + (n + 5) * 8));
    a.ldq(sum, 0, R7);
    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

Program
buildArt(unsigned scale)
{
    Assembler a;
    const unsigned inputs = 64;   // the input vector fits in the MBC
    const unsigned neurons = 16;
    const uint64_t win =
        a.dataDoubles(randomDoubles(inputs * neurons, 0xa57));
    const uint64_t vin = a.dataDoubles(randomDoubles(inputs, 0xa58));

    const Reg wp = R1, xp = R2, i = R3, nrn = R4, iter = R5, best_n = R6;
    const Reg sum = R10, tmpi = R7;
    const FReg w = F1, xv = F2, acc = F3, best = F4, p = F5, cmp = F6;

    a.li(sum, 0);
    a.li(iter, int64_t(55) * scale);

    a.label("pass");
    a.li(wp, int64_t(win));
    a.li(nrn, int64_t(neurons));
    a.li(best_n, 0);
    a.li(tmpi, 0);
    a.cvtqt(tmpi, best);
    a.label("neuron");
    a.li(xp, int64_t(vin));
    a.li(i, int64_t(inputs));
    a.li(tmpi, 0);
    a.cvtqt(tmpi, acc);
    a.label("dot");
    a.ldt(w, 0, wp);                // weights stream once
    a.ldt(xv, 0, xp);               // the input vector is re-read for
    a.mult(w, xv, p);               // every neuron: pure RLE fodder
    a.addt(acc, p, acc);
    a.addq(wp, 8, wp);
    a.addq(xp, 8, xp);
    a.subq(i, 1, i);
    a.bne(i, "dot");
    // Winner-take-all compare: fp branch.
    a.cmptlt(best, acc, cmp);
    a.fbeq(cmp, "not_best");
    a.fmov(acc, best);
    a.mov(nrn, best_n);
    a.label("not_best");
    a.subq(nrn, 1, nrn);
    a.bne(nrn, "neuron");
    a.addq(sum, best_n, sum);
    a.subq(iter, 1, iter);
    a.bne(iter, "pass");

    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

Program
buildEquake(unsigned scale)
{
    Assembler a;
    const unsigned rows = 256;
    const unsigned nnz_per_row = 8;
    const unsigned cols = 256;
    std::vector<uint64_t> colidx(rows * nnz_per_row);
    {
        Rng rng(0xe93);
        for (auto &c : colidx)
            c = rng.nextBelow(cols);
    }
    const uint64_t col_addr = a.dataQuads(colidx);
    const uint64_t val_addr =
        a.dataDoubles(randomDoubles(rows * nnz_per_row, 0xe94));
    const uint64_t x_addr = a.dataDoubles(randomDoubles(cols, 0xe95));
    const uint64_t y_addr = a.allocQuads(rows);

    const Reg cp = R1, vp = R2, yp = R3, row = R4, k = R5, col = R6;
    const Reg off = R7, slot = R8, xb = R9, iter = R11;
    const FReg av = F1, xv = F2, p = F3, acc = F4;

    a.li(xb, int64_t(x_addr));
    a.li(iter, int64_t(20) * scale);

    a.label("mv");
    a.li(cp, int64_t(col_addr));
    a.li(vp, int64_t(val_addr));
    a.li(yp, int64_t(y_addr));
    a.li(row, int64_t(rows));
    a.label("rowloop");
    a.li(k, int64_t(nnz_per_row));
    a.li(R12, 0);
    a.cvtqt(R12, acc);
    a.label("nz");
    a.ldq(col, 0, cp);              // column index: sequential
    a.ldt(av, 0, vp);               // matrix value: sequential
    a.sll(col, 3, off);
    a.addq(xb, off, slot);
    a.ldt(xv, 0, slot);             // x[col]: indirect (index-dependent)
    a.mult(av, xv, p);
    a.addt(acc, p, acc);
    a.addq(cp, 8, cp);
    a.addq(vp, 8, vp);
    a.subq(k, 1, k);
    a.bne(k, "nz");
    a.stt(acc, 0, yp);
    a.addq(yp, 8, yp);
    a.subq(row, 1, row);
    a.bne(row, "rowloop");
    a.subq(iter, 1, iter);
    a.bne(iter, "mv");

    a.li(R13, int64_t(y_addr + 8 * 17));
    a.ldq(R10, 0, R13);
    emitChecksumAndHalt(a, R10, R20);
    return a.finish();
}

Program
buildMesa(unsigned scale)
{
    Assembler a;
    const unsigned verts = 512;
    const uint64_t vx = a.dataDoubles(randomDoubles(verts, 0x3e5a));
    const uint64_t vy = a.dataDoubles(randomDoubles(verts, 0x3e5b));
    const uint64_t vz = a.dataDoubles(randomDoubles(verts, 0x3e5c));
    const uint64_t mat = a.dataDoubles(randomDoubles(12, 0x3e5d));
    const uint64_t fb = a.allocQuads(verts);

    const Reg xp = R1, yp = R2, zp = R3, op = R4, cnt = R5, iter = R6;
    const Reg r = R7, g = R8, b = R9, pix = R11, mb = R12;
    const FReg x = F1, y = F2, z = F3, tx = F4, ty = F5, tz = F6;
    const FReg t = F8;
    const FReg m00 = F16, m01 = F17, m02 = F18, m10 = F19, m11 = F20;
    const FReg m12 = F21, m20 = F22, m21 = F23, m22 = F24;

    a.li(mb, int64_t(mat));
    a.li(iter, int64_t(22) * scale);
    // The transform matrix lives in registers across the frame, as a
    // real compiler would keep it.
    a.ldt(m00, 0, mb);
    a.ldt(m01, 8, mb);
    a.ldt(m02, 16, mb);
    a.ldt(m10, 24, mb);
    a.ldt(m11, 32, mb);
    a.ldt(m12, 40, mb);
    a.ldt(m20, 48, mb);
    a.ldt(m21, 56, mb);
    a.ldt(m22, 64, mb);

    a.label("frame");
    a.li(xp, int64_t(vx));
    a.li(yp, int64_t(vy));
    a.li(zp, int64_t(vz));
    a.li(op, int64_t(fb));
    a.li(cnt, int64_t(verts));
    a.label("vert");
    a.ldt(x, 0, xp);
    a.ldt(y, 0, yp);
    a.ldt(z, 0, zp);
    a.mult(x, m00, tx);
    a.mult(y, m01, t);
    a.addt(tx, t, tx);
    a.mult(z, m02, t);
    a.addt(tx, t, tx);
    a.mult(x, m10, ty);
    a.mult(y, m11, t);
    a.addt(ty, t, ty);
    a.mult(z, m12, t);
    a.addt(ty, t, ty);
    a.mult(x, m20, tz);
    a.mult(y, m21, t);
    a.addt(tz, t, tz);
    a.mult(z, m22, t);
    a.addt(tz, t, tz);
    // Perspective divide: w = z + 2 (never zero for our inputs).
    a.addt(tz, m22, t);
    a.addt(t, m22, t);
    a.divt(tx, t, tx);
    a.divt(ty, t, ty);
    // Pack to 8:8:8 rgb with integer shifts (pixel write).
    a.cvttq(tx, r);
    a.cvttq(ty, g);
    a.cvttq(tz, b);
    a.and_(r, 255, r);
    a.and_(g, 255, g);
    a.and_(b, 255, b);
    a.sll(r, 16, pix);
    a.sll(g, 8, g);
    a.bis(pix, g, pix);
    a.bis(pix, b, pix);
    a.stq(pix, 0, op);
    a.addq(xp, 8, xp);
    a.addq(yp, 8, yp);
    a.addq(zp, 8, zp);
    a.addq(op, 8, op);
    a.subq(cnt, 1, cnt);
    a.bne(cnt, "vert");
    a.subq(iter, 1, iter);
    a.bne(iter, "frame");

    a.li(R13, int64_t(fb + 8 * 100));
    a.ldq(R10, 0, R13);
    emitChecksumAndHalt(a, R10, R20);
    return a.finish();
}

Program
buildMgrid(unsigned scale)
{
    Assembler a;
    const unsigned n = 16; // n^3 grid
    const uint64_t src = a.dataDoubles(randomDoubles(n * n * n, 0x316d));
    const uint64_t dst = a.allocQuads(n * n * n);

    const Reg sp = R1, dp = R2, i = R3, j = R4, k = R5, iter = R6;
    const Reg plane = R7, rowb = R8, sum = R10;
    const FReg c0 = F1, c1 = F2, v = F3, acc = F4, t = F5;

    a.li(iter, int64_t(9) * scale);
    a.li(R9, 6);
    a.cvtqt(R9, c1);
    a.li(R9, 1);
    a.cvtqt(R9, c0);
    a.divt(c0, c1, c1);             // 1/6

    const int64_t nb = 8;           // bytes per element
    const int64_t row = nb * n;
    const int64_t pl = nb * n * n;

    a.label("cycle");
    a.li(i, int64_t(n - 2));
    a.li(plane, int64_t(src + pl + row + nb));
    a.li(rowb, int64_t(dst + pl + row + nb));
    a.label("iplane");
    a.li(j, int64_t(n - 2));
    a.label("jrow");
    a.mov(plane, sp);
    a.mov(rowb, dp);
    a.li(k, int64_t(n - 2));
    a.label("kcol");
    // 7-point stencil around sp.
    a.ldt(acc, int64_t(-pl), sp);
    a.ldt(t, int64_t(pl), sp);
    a.addt(acc, t, acc);
    a.ldt(t, int64_t(-row), sp);
    a.addt(acc, t, acc);
    a.ldt(t, int64_t(row), sp);
    a.addt(acc, t, acc);
    a.ldt(t, int64_t(-nb), sp);
    a.addt(acc, t, acc);
    a.ldt(t, int64_t(nb), sp);
    a.addt(acc, t, acc);
    a.mult(acc, c1, acc);
    a.ldt(v, 0, sp);
    a.addt(acc, v, acc);
    a.stt(acc, 0, dp);
    a.addq(sp, nb, sp);
    a.addq(dp, nb, dp);
    a.subq(k, 1, k);
    a.bne(k, "kcol");
    a.addq(plane, row, plane);
    a.addq(rowb, row, rowb);
    a.subq(j, 1, j);
    a.bne(j, "jrow");
    a.addq(plane, 2 * row, plane); // hop the plane boundary rows
    a.addq(rowb, 2 * row, rowb);
    a.subq(i, 1, i);
    a.bne(i, "iplane");
    a.subq(iter, 1, iter);
    a.bne(iter, "cycle");

    a.li(R13, int64_t(dst + pl + row + 5 * 8));
    a.ldq(sum, 0, R13);
    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

} // namespace conopt::workloads
