/**
 * @file
 * mediabench synthetic kernels: g721 decode/encode, mpeg2 decode/encode,
 * untoast (GSM decode), toast (GSM encode).
 *
 * These kernels work on the small fixed-size state arrays that make
 * mediabench the paper's best suite for the Memory Bypass Cache: ADPCM
 * predictor state, 8x8 IDCT blocks, and the GSM short-term synthesis
 * filter's two 8-entry arrays (the paper's untoast case study, section
 * 5.2: "after the first iteration, all of the array accesses for this
 * function are eliminated").
 */

#include <string>

#include "src/workloads/common.hh"

namespace conopt::workloads {

namespace {

/**
 * Shared ADPCM-flavoured kernel. Decode reconstructs samples; encode
 * additionally quantizes the prediction error (extra compare ladder).
 */
Program
buildG721(unsigned scale, bool encode, uint64_t seed, unsigned samples)
{
    Assembler a;
    // Quantizer table (8 entries) and predictor history (6 entries):
    // together under 128 bytes, permanently resident in the MBC.
    const uint64_t qtab =
        a.dataQuads({0, 5, 11, 17, 24, 32, 41, 52});
    const uint64_t hist = a.allocQuads(6);
    const uint64_t coef = a.dataQuads({3, 5, 2, 7, 1, 4});
    std::vector<uint64_t> input(samples);
    {
        Rng rng(seed);
        uint64_t s = 0;
        for (auto &v : input) {
            s = (s + rng.nextBelow(17)) & 0x3f; // smooth-ish waveform
            v = s;
        }
    }
    const uint64_t in_addr = a.dataQuads(input);

    const Reg ip = R1, sample = R2, pred = R3, err = R4, lvl = R5;
    const Reg qb = R6, hb = R7, hv = R8, cnt = R9, sum = R10;
    const Reg i = R11, slot = R12, tmp = R13, step = R14, iter = R15;
    const Reg cmp = R16;

    a.li(qb, int64_t(qtab));
    a.li(hb, int64_t(hist));
    a.li(sum, 0);
    a.li(iter, int64_t(encode ? 3 : 6) * scale);

    a.label("stream");
    a.li(ip, int64_t(in_addr));
    a.li(cnt, int64_t(samples));
    a.label("sample_loop");
    a.ldq(sample, 0, ip);           // input stream: sequential

    // Prediction: multiply the history by the adaptive coefficients.
    // The multiplies are complex-ALU work and the coefficients change
    // every sample, so this filter does not constant-fold.
    a.li(pred, 0);
    a.li(i, 0);
    a.label("taps");
    a.sll(i, 3, slot);
    a.addq(hb, slot, slot);
    a.ldq(hv, 0, slot);             // tiny arrays: RLE after warmup
    a.li(R21, int64_t(coef));
    a.sll(i, 3, R22);
    a.addq(R21, R22, R21);
    a.ldq(R22, 0, R21);
    a.mulq(hv, R22, hv);
    a.sra(hv, 2, hv);
    a.addq(pred, hv, pred);
    a.addq(i, 1, i);
    a.cmplt(i, 6, cmp);
    a.bne(cmp, "taps");

    a.sra(pred, 2, pred);
    a.subq(sample, pred, err);

    // Adaptive predictor update: sign-driven coefficient nudges on the
    // loaded values (data-dependent, not foldable).
    a.sra(err, 63, tmp);
    a.xor_(err, tmp, R17);
    a.subq(R17, tmp, R17);          // |err|
    a.srl(R17, 2, R17);
    a.xor_(R17, sample, R18);
    a.and_(R18, 31, R18);
    a.addq(R17, R18, R17);
    a.sra(R17, 1, R17);
    a.subq(sample, R17, R19);
    a.xor_(R19, pred, R19);
    a.addq(sum, R19, sum);
    // Adapt every coefficient by the correlation of the error sign
    // with the corresponding history sample (the real ADPCM predictor
    // update): data-dependent work the optimizer cannot fold.
    a.sra(err, 63, tmp);
    a.bis(tmp, 1, tmp);             // sign(err): +1 or -1
    a.li(i, 0);
    a.label("adapt");
    a.sll(i, 3, R23);
    a.addq(hb, R23, R24);
    a.ldq(hv, 0, R24);              // history sample
    a.sra(hv, 63, R24);
    a.bis(R24, 1, R24);             // sign(hist)
    a.mulq(R24, tmp, R24);          // correlation direction
    a.li(R21, int64_t(coef));
    a.addq(R21, R23, R21);
    a.ldq(R22, 0, R21);
    a.addq(R22, R24, R22);
    a.and_(R22, 15, R22);
    a.stq(R22, 0, R21);
    a.addq(i, 1, i);
    a.cmplt(i, 6, cmp);
    a.bne(cmp, "adapt");

    if (encode) {
        // Quantize |err| against the table: a short compare ladder.
        a.sra(err, 63, tmp);
        a.xor_(err, tmp, lvl);
        a.subq(lvl, tmp, lvl);      // lvl = |err|
        a.li(step, 0);
        a.label("quant");
        a.sll(step, 3, slot);
        a.addq(qb, slot, slot);
        a.ldq(tmp, 0, slot);        // qtab: always an MBC hit
        a.cmple(tmp, lvl, cmp);
        a.beq(cmp, "quant_done");
        a.addq(step, 1, step);
        a.cmplt(step, 8, cmp);
        a.bne(cmp, "quant");
        a.label("quant_done");
        a.addq(sum, step, sum);
    } else {
        // Reconstruct: pred + dequantized level.
        a.and_(err, 7, lvl);
        a.sll(lvl, 3, slot);
        a.addq(qb, slot, slot);
        a.ldq(tmp, 0, slot);
        a.addq(pred, tmp, err);
        a.addq(sum, err, sum);
    }

    // Insert the sample into the circular history (one store; the taps
    // loop above re-reads the same six slots every sample, which is the
    // store-forwarding/RLE traffic the MBC captures).
    a.and_(cnt, 7, R23);
    a.cmplt(R23, 6, cmp);
    a.bne(cmp, "hist_ok");
    a.li(R23, 0);
    a.label("hist_ok");
    a.sll(R23, 3, R23);
    a.addq(hb, R23, R23);
    a.stq(sample, 0, R23);

    a.addq(ip, 8, ip);
    a.subq(cnt, 1, cnt);
    a.bne(cnt, "sample_loop");
    a.subq(iter, 1, iter);
    a.bne(iter, "stream");

    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

} // namespace

Program
buildG721Decode(unsigned scale)
{
    return buildG721(scale, /*encode=*/false, 0x6721d, 320);
}

Program
buildG721Encode(unsigned scale)
{
    return buildG721(scale, /*encode=*/true, 0x6721e, 320);
}

Program
buildMpeg2Decode(unsigned scale)
{
    Assembler a;
    // 8x8 blocks of coefficients; the 512-byte block fits in the MBC,
    // so the column pass's loads forward from the row pass's stores.
    const unsigned nblocks = 16;
    const uint64_t blocks =
        a.dataQuads(randomQuads(nblocks * 64, 0x3292d, 0x7ff));
    const uint64_t work = a.allocQuads(64);
    const uint64_t out = a.allocQuads(64);

    const Reg bp = R1, wp = R2, op = R3, blk = R4, i = R5, v0 = R6;
    const Reg v1 = R7, t0 = R8, t1 = R9, sum = R10, iter = R11;
    const Reg wb = R12, ob = R13, cmp = R14, clip = R15;

    a.li(wb, int64_t(work));
    a.li(ob, int64_t(out));
    a.li(sum, 0);
    a.li(iter, int64_t(14) * scale);

    a.label("frame");
    a.li(bp, int64_t(blocks));
    a.li(blk, int64_t(nblocks));
    a.label("block");

    // Row pass: butterfly pairs (k, k+4) for each of 8 rows.
    a.mov(bp, R16);
    a.mov(wb, wp);
    a.li(i, 8);
    a.label("rowpass");
    for (int k = 0; k < 4; ++k) {
        a.ldq(v0, int64_t(k * 8), R16);
        a.ldq(v1, int64_t((k + 4) * 8), R16);
        a.addq(v0, v1, t0);
        a.subq(v0, v1, t1);
        a.sra(t0, 1, t0);
        a.sra(t1, 1, t1);
        a.stq(t0, int64_t(k * 8), wp);
        a.stq(t1, int64_t((k + 4) * 8), wp);
    }
    a.addq(R16, 64, R16);
    a.addq(wp, 64, wp);
    a.subq(i, 1, i);
    a.bne(i, "rowpass");

    // Column pass: reads what the row pass just stored (pure SF).
    a.mov(wb, wp);
    a.mov(ob, op);
    a.li(i, 8);
    a.label("colpass");
    for (int k = 0; k < 4; ++k) {
        a.ldq(v0, int64_t(k * 64), wp);
        a.ldq(v1, int64_t((k + 4) * 64), wp);
        a.addq(v0, v1, t0);
        a.subq(v0, v1, t1);
        // Saturate to [0, 255]: clamp branches, mostly not taken.
        const std::string pos = "pos" + std::to_string(k);
        const std::string inr = "inrange" + std::to_string(k);
        a.cmplt(t0, 0, cmp);
        a.beq(cmp, pos);
        a.li(t0, 0);
        a.label(pos);
        a.cmple(t0, 255, cmp);
        a.bne(cmp, inr);
        a.li(t0, 255);
        a.label(inr);
        a.stq(t0, int64_t(k * 64), op);
        a.stq(t1, int64_t((k + 4) * 64), op);
    }
    a.addq(wp, 8, wp);
    a.addq(op, 8, op);
    a.subq(i, 1, i);
    a.bne(i, "colpass");

    a.ldq(clip, 0, ob);
    a.addq(sum, clip, sum);
    a.addq(bp, int64_t(64 * 8), bp);
    a.subq(blk, 1, blk);
    a.bne(blk, "block");
    a.subq(iter, 1, iter);
    a.bne(iter, "frame");

    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

Program
buildMpeg2Encode(unsigned scale)
{
    Assembler a;
    // Motion estimation: SAD of a 64-pixel block against 16 candidate
    // positions in a search window.
    const unsigned win_sz = 1024;
    const uint64_t window =
        a.dataQuads(randomQuads(win_sz, 0x3292e, 0xff));
    const uint64_t refblk = a.dataQuads(randomQuads(160, 0x3292f, 0xff));
    // Candidate offsets follow the predicted motion vectors (loaded).
    std::vector<uint64_t> cand_offs(16);
    {
        Rng rng(0x32930);
        for (auto &c : cand_offs)
            c = rng.nextBelow(win_sz - 64);
    }
    const uint64_t cand_addr = a.dataQuads(cand_offs);

    const Reg rp = R1, cp = R2, i = R3, rv = R4, cv = R5, d = R6;
    const Reg s = R7, sad = R8, cand = R9, sum = R10, best = R11;
    const Reg wb = R12, iter = R13, cmp = R14, coff = R15;

    a.li(wb, int64_t(window));
    a.li(sum, 0);
    a.li(iter, int64_t(17) * scale);

    a.label("mb");
    a.li(cand, 16);
    a.li(best, 0x7fffffff);
    a.li(coff, int64_t(cand_addr));
    a.label("candidate");
    // Alternate between two reference macroblocks (together larger than
    // the MBC, so reference reuse is only partial).
    a.and_(cand, 1, s);
    a.sll(s, 9, s);                 // 0 or 512 bytes
    a.li(rp, int64_t(refblk));
    a.addq(rp, s, rp);
    a.ldq(s, 0, coff);              // loaded motion-vector offset
    a.sll(s, 3, s);
    a.addq(wb, s, cp);
    a.li(i, 64);
    a.li(sad, 0);
    a.label("sadloop");
    a.ldq(rv, 0, rp);               // the reference block re-reads every
    a.ldq(cv, 0, cp);               // candidate: RLE captures it
    // Pixels are packed 16-bit lanes: unpack four per quad (real SAD
    // kernels do far more ALU work per load than one subtract).
    for (int lane = 0; lane < 4; ++lane) {
        a.srl(rv, int64_t(lane * 16), d);
        a.and_(d, 0xffff, d);
        a.srl(cv, int64_t(lane * 16), s);
        a.and_(s, 0xffff, s);
        a.subq(d, s, d);
        a.sra(d, 63, s);            // branch-free |d|
        a.xor_(d, s, d);
        a.subq(d, s, d);
        a.addq(sad, d, sad);
    }
    a.addq(rp, 8, rp);
    a.addq(cp, 8, cp);
    a.subq(i, 1, i);
    a.bne(i, "sadloop");
    a.cmplt(sad, best, cmp);
    a.beq(cmp, "not_better");
    a.mov(sad, best);
    a.label("not_better");
    a.addq(coff, 8, coff);
    a.subq(cand, 1, cand);
    a.bne(cand, "candidate");
    a.addq(sum, best, sum);
    a.subq(iter, 1, iter);
    a.bne(iter, "mb");

    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

Program
buildUntoast(unsigned scale)
{
    Assembler a;
    // Short_term_synthesis_filtering (paper section 5.2): two small
    // arrays, rrp[8] and v[9], with loop counts varying from 13 to 120.
    const uint64_t rrp =
        a.dataQuads(randomQuads(8, 0x6570a, 0x7fff));
    const uint64_t v = a.allocQuads(9);
    const unsigned nwt = 256;
    const uint64_t wt =
        a.dataQuads(randomQuads(nwt, 0x6570b, 0x7fff));
    // Segment lengths cycling through the 13..120 range.
    const uint64_t lens = a.dataQuads({13, 14, 120, 40, 26, 120, 13, 87});

    const Reg wp = R1, k = R2, sri = R3, rv = R4, vv = R5, t = R6;
    const Reg rb = R7, vb = R8, sum = R10, seg = R11, lp = R12;
    const Reg iter = R13, wi = R14;

    a.li(rb, int64_t(rrp));
    a.li(vb, int64_t(v));
    a.li(sum, 0);
    a.li(iter, int64_t(28) * scale);

    a.label("frame");
    a.and_(iter, 7, seg);
    a.sll(seg, 3, seg);
    a.li(lp, int64_t(lens));
    a.addq(lp, seg, lp);
    a.ldq(k, 0, lp);                // this segment's sample count
    a.and_(iter, int64_t(nwt - 1), wi);
    a.sll(wi, 3, wi);
    a.li(wp, int64_t(wt));
    a.addq(wp, wi, wp);

    a.label("sample");
    a.ldq(sri, 0, wp);
    // The i = 7..0 filter loop, unrolled as in the real GSM code. All
    // rrp and v accesses hit the MBC after the first sample.
    for (int fi = 7; fi >= 0; --fi) {
        a.ldq(rv, int64_t(fi * 8), rb);     // rrp[i]
        a.ldq(vv, int64_t(fi * 8), vb);     // v[i]
        a.mulq(rv, vv, t);
        a.sra(t, 15, t);
        a.subq(sri, t, sri);
        a.mulq(rv, sri, t);
        a.sra(t, 15, t);
        a.ldq(vv, int64_t(fi * 8), vb);
        a.addq(vv, t, vv);
        a.stq(vv, int64_t((fi + 1) * 8), vb); // v[i+1] = v[i] + tmp
    }
    a.stq(sri, 0, vb);              // v[0] = sri
    a.addq(sum, sri, sum);
    a.and_(sum, 0xffffffff, sum);
    a.addq(wp, 8, wp);
    a.subq(k, 1, k);
    a.bne(k, "sample");
    a.subq(iter, 1, iter);
    a.bne(iter, "frame");

    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

Program
buildToast(unsigned scale)
{
    Assembler a;
    // LPC autocorrelation over a 160-sample window (GSM frame): the
    // window is larger than the MBC, so reuse is only partial.
    const unsigned n = 160;
    const uint64_t s_addr = a.dataQuads(randomQuads(n, 0x705a, 0x7fff));
    const uint64_t acf_addr = a.allocQuads(9);

    const Reg sp = R1, sp2 = R2, i = R3, k = R4, sv = R5, sv2 = R6;
    const Reg p = R7, acc = R8, ab = R9, sum = R10, iter = R11;
    const Reg slot = R12, scaled = R13;

    a.li(ab, int64_t(acf_addr));
    a.li(sum, 0);
    a.li(iter, int64_t(10) * scale);

    a.label("frame");
    a.li(k, 8);
    a.label("lag");
    // acf[k] = sum s[i] * s[i-k], i = k..n-1.
    a.li(acc, 0);
    a.sll(k, 3, slot);
    a.li(sp, int64_t(s_addr));
    a.addq(sp, slot, sp);           // &s[k]
    a.li(sp2, int64_t(s_addr));    // &s[0]
    a.li(i, int64_t(n));
    a.subq(i, k, i);
    a.label("corr");
    a.ldq(sv, 0, sp);
    a.ldq(sv2, 0, sp2);
    // Two packed 32-bit samples per quad.
    a.and_(sv, 0xffffffff, p);
    a.and_(sv2, 0xffffffff, scaled);
    a.mulq(p, scaled, p);
    a.sra(p, 3, p);
    a.addq(acc, p, acc);
    a.srl(sv, 32, p);
    a.srl(sv2, 32, scaled);
    a.mulq(p, scaled, p);
    a.sra(p, 3, p);
    a.addq(acc, p, acc);
    a.addq(sp, 8, sp);
    a.addq(sp2, 8, sp2);
    a.subq(i, 1, i);
    a.bne(i, "corr");
    a.sll(k, 3, slot);
    a.addq(ab, slot, slot);
    a.stq(acc, 0, slot);
    a.addq(sum, acc, sum);
    a.subq(k, 1, k);
    a.bne(k, "lag");
    // Scaling pass: multiply the window by 2 (strength-reduced mulq).
    a.li(sp, int64_t(s_addr));
    a.li(i, int64_t(n));
    a.label("scalepass");
    a.ldq(sv, 0, sp);
    a.mulq(sv, 2, scaled);          // becomes a shift in the optimizer
    a.and_(scaled, 0x7fff, scaled);
    a.stq(scaled, 0, sp);
    a.addq(sp, 8, sp);
    a.subq(i, 1, i);
    a.bne(i, "scalepass");
    a.subq(iter, 1, iter);
    a.bne(iter, "frame");

    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

} // namespace conopt::workloads
