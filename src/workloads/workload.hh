/**
 * @file
 * The experimental workload (paper Table 1): 22 synthetic kernels, one
 * per benchmark the paper evaluates, each built to exhibit the behaviour
 * the paper attributes to that benchmark (see DESIGN.md for the
 * substitution rationale).
 *
 * Every kernel is a deterministic program in the simulated ISA that ends
 * with HALT and stores a checksum to a known location so functional
 * correctness can be asserted.
 */

#ifndef CONOPT_WORKLOADS_WORKLOAD_HH
#define CONOPT_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/asm/program.hh"

namespace conopt::workloads {

/** Address where every kernel stores its final checksum. */
constexpr uint64_t checksumAddr = 0xf00000;

/** One benchmark from Table 1. */
struct Workload
{
    std::string name;        ///< the paper's short name, e.g. "mcf"
    std::string fullName;    ///< e.g. "mcf (network simplex + quicksort)"
    std::string suite;       ///< "SPECint" | "SPECfp" | "mediabench"
    unsigned paperInstsM;    ///< Table 1 simulated count, millions
    unsigned defaultScale;   ///< default iteration scale

    /** Build the program at the given scale (1 = smallest sensible). */
    assembler::Program (*build)(unsigned scale);
};

/** All 22 workloads in Table 1 order. */
const std::vector<Workload> &allWorkloads();

/** Look up one workload; fatal if the name is unknown. */
const Workload &workloadByName(const std::string &name);

/** Look up one workload; nullptr if the name is unknown (the form the
 *  sweep engine uses to resolve job descriptions). */
const Workload *findWorkload(const std::string &name);

/** The workloads of one suite. */
std::vector<const Workload *> suiteWorkloads(const std::string &suite);

/** The three suite names in paper order. */
const std::vector<std::string> &suiteNames();

// Builders (one per benchmark; defined in the per-suite source files).
assembler::Program buildBzip2(unsigned scale);
assembler::Program buildCrafty(unsigned scale);
assembler::Program buildEon(unsigned scale);
assembler::Program buildGap(unsigned scale);
assembler::Program buildGcc(unsigned scale);
assembler::Program buildMcf(unsigned scale);
assembler::Program buildPerlbmk(unsigned scale);
assembler::Program buildTwolf(unsigned scale);
assembler::Program buildVortex(unsigned scale);
assembler::Program buildVpr(unsigned scale);
assembler::Program buildAmmp(unsigned scale);
assembler::Program buildApplu(unsigned scale);
assembler::Program buildArt(unsigned scale);
assembler::Program buildEquake(unsigned scale);
assembler::Program buildMesa(unsigned scale);
assembler::Program buildMgrid(unsigned scale);
assembler::Program buildG721Decode(unsigned scale);
assembler::Program buildG721Encode(unsigned scale);
assembler::Program buildMpeg2Decode(unsigned scale);
assembler::Program buildMpeg2Encode(unsigned scale);
assembler::Program buildUntoast(unsigned scale);
assembler::Program buildToast(unsigned scale);

} // namespace conopt::workloads

#endif // CONOPT_WORKLOADS_WORKLOAD_HH
