/**
 * @file
 * SPECint synthetic kernels, part B: mcf, perlbmk, twolf, vortex, vpr.
 *
 * mcf reproduces the two behaviours section 5.2 of the paper analyzes:
 * pointer-chasing network-simplex arc scans and the sort_basket
 * quicksort whose recursion eventually fits the Memory Bypass Cache.
 * perlbmk is an interpreter dispatch loop with string hashing, twolf is
 * simulated annealing (unpredictable accept/reject), vortex is an OO
 * database (pointer chains + record copies), and vpr is maze routing
 * over a grid with a small frontier ring.
 */

#include <cstdio>

#include "src/workloads/common.hh"

namespace conopt::workloads {

Program
buildMcf(unsigned scale)
{
    Assembler a;
    const unsigned arcs = 512;
    const unsigned basket = 192; // > MBC at first, fits after one split

    // Arc array: cost quads; "next" chain as a random permutation.
    const uint64_t costs = a.dataQuads(randomQuads(arcs, 0x3cf1, 0xffff));
    std::vector<uint64_t> next_idx(arcs);
    {
        for (unsigned i = 0; i < arcs; ++i)
            next_idx[i] = i;
        Rng rng(0x3cf2);
        for (unsigned i = arcs - 1; i > 0; --i) {
            const unsigned j = unsigned(rng.nextBelow(i + 1));
            std::swap(next_idx[i], next_idx[j]);
        }
        // Make it a single cycle so the chase visits every arc.
        std::vector<uint64_t> pos(arcs);
        for (unsigned i = 0; i < arcs; ++i)
            pos[next_idx[i]] = i;
        (void)pos;
    }
    const uint64_t nexts = a.dataQuads(next_idx);
    const uint64_t basket_seed =
        a.dataQuads(randomQuads(basket, 0x3cf3, 0xffffff));
    const uint64_t basket_arr = a.allocQuads(basket);
    // Explicit recursion stack for the iterative quicksort: (lo, hi).
    const uint64_t qstack = a.allocQuads(512);

    const Reg sum = R10, iter = R16;

    a.li(sum, 0);
    a.li(iter, int64_t(7) * scale);

    a.label("outer");

    // ---- phase A: network simplex flavored pointer chase --------------
    {
        const Reg cb = R1, nb = R2, cur = R3, off = R4, slot = R5;
        const Reg cost = R6, best = R7, cnt = R8, cmp = R9;
        a.li(cb, int64_t(costs));
        a.li(nb, int64_t(nexts));
        a.li(cur, 0);
        a.li(best, 0x7fffffff);
        a.li(cnt, int64_t(arcs));
        a.label("chase");
        a.sll(cur, 3, off);
        a.addq(cb, off, slot);
        a.ldq(cost, 0, slot);       // cost[cur]: data-dependent address
        a.cmplt(cost, best, cmp);
        a.beq(cmp, "no_improve");
        a.mov(cost, best);          // new cheapest arc
        a.label("no_improve");
        a.addq(nb, off, slot);
        a.ldq(cur, 0, slot);        // cur = next[cur]: pointer chase
        a.subq(cnt, 1, cnt);
        a.bne(cnt, "chase");
        a.addq(sum, best, sum);
    }

    // ---- phase B: sort_basket (iterative quicksort) --------------------
    {
        const Reg src = R1, dst = R2, i = R3, v = R4, sp = R5;
        const Reg lo = R6, hi = R7, piv = R8, jj = R9, ii = R11;
        const Reg pj = R12, vj = R13, vi = R14, t1 = R15, t2 = R17;
        const Reg cmp = R18, slot = R19, seedmix = R20;

        // Refill the basket with a permuted copy of the seed data so
        // every outer iteration sorts fresh (unsorted) input.
        a.li(src, int64_t(basket_seed));
        a.li(dst, int64_t(basket_arr));
        a.li(i, int64_t(basket));
        a.xor_(sum, 0x5a5a, seedmix);
        a.label("refill");
        a.ldq(v, 0, src);
        a.xor_(v, seedmix, v);
        a.and_(v, 0xffffff, v);
        a.stq(v, 0, dst);
        a.addq(src, 8, src);
        a.addq(dst, 8, dst);
        a.subq(i, 1, i);
        a.bne(i, "refill");

        // Stack: push (0, basket-1).
        a.li(sp, int64_t(qstack));
        a.li(lo, 0);
        a.li(hi, int64_t(basket - 1));
        a.stq(lo, 0, sp);
        a.stq(hi, 8, sp);
        a.addq(sp, 16, sp);

        a.label("qs_loop");
        // if (sp == stack base) done
        a.li(t1, int64_t(qstack));
        a.cmpeq(sp, t1, cmp);
        a.bne(cmp, "qs_done");
        // pop (lo, hi)
        a.subq(sp, 16, sp);
        a.ldq(lo, 0, sp);           // store-forwarded from the push
        a.ldq(hi, 8, sp);
        a.cmplt(lo, hi, cmp);
        a.beq(cmp, "qs_loop");      // empty/single range

        // partition: pivot = arr[hi]; i = lo-1; scan j = lo..hi-1
        a.li(t1, int64_t(basket_arr));
        a.sll(hi, 3, t2);
        a.addq(t1, t2, slot);
        a.ldq(piv, 0, slot);        // pivot value
        a.subq(lo, 1, ii);
        a.mov(lo, jj);
        a.label("part_loop");
        a.cmplt(jj, hi, cmp);
        a.beq(cmp, "part_done");
        a.li(t1, int64_t(basket_arr));
        a.sll(jj, 3, t2);
        a.addq(t1, t2, pj);
        a.ldq(vj, 0, pj);           // arr[j]; re-read across passes: RLE
        a.cmple(vj, piv, cmp);      // ~50/50 data-dependent branch
        a.beq(cmp, "part_next");
        a.addq(ii, 1, ii);
        a.li(t1, int64_t(basket_arr));
        a.sll(ii, 3, t2);
        a.addq(t1, t2, t2);
        a.ldq(vi, 0, t2);           // swap arr[i] <-> arr[j]
        a.stq(vj, 0, t2);
        a.stq(vi, 0, pj);
        a.label("part_next");
        a.addq(jj, 1, jj);
        a.br("part_loop");
        a.label("part_done");
        // place pivot: swap arr[i+1] <-> arr[hi]
        a.addq(ii, 1, ii);
        a.li(t1, int64_t(basket_arr));
        a.sll(ii, 3, t2);
        a.addq(t1, t2, t2);
        a.ldq(vi, 0, t2);
        a.stq(piv, 0, t2);
        a.sll(hi, 3, piv);
        a.addq(t1, piv, piv);
        a.stq(vi, 0, piv);

        // push (lo, i-1) and (i+1, hi)
        a.subq(ii, 1, t1);
        a.stq(lo, 0, sp);
        a.stq(t1, 8, sp);
        a.addq(sp, 16, sp);
        a.addq(ii, 1, t1);
        a.stq(t1, 0, sp);
        a.stq(hi, 8, sp);
        a.addq(sp, 16, sp);
        a.br("qs_loop");
        a.label("qs_done");

        // Checksum: median element after sorting.
        a.li(t1, int64_t(basket_arr + (basket / 2) * 8));
        a.ldq(t2, 0, t1);
        a.addq(sum, t2, sum);
    }

    a.subq(iter, 1, iter);
    a.bne(iter, "outer");
    emitChecksumAndHalt(a, R10, R20);
    return a.finish();
}

Program
buildPerlbmk(unsigned scale)
{
    Assembler a;
    const unsigned nops = 1536;
    // Bytecode: opcodes 0..7, biased toward push/arith.
    std::vector<uint64_t> code(nops);
    {
        Rng rng(0x9e51);
        for (auto &c : code) {
            const uint64_t r = rng.nextBelow(100);
            c = r < 30 ? 0 : r < 55 ? 1 : r < 70 ? 2 : r < 80 ? 3
                : r < 88 ? 4 : r < 94 ? 5 : r < 98 ? 6 : 7;
        }
    }
    const uint64_t code_addr = a.dataQuads(code);
    const uint64_t jt = a.allocQuads(8);
    const uint64_t vstack = a.allocQuads(1024);
    std::vector<uint8_t> strbytes(256);
    {
        Rng rng(0x9e52);
        for (auto &b : strbytes)
            b = uint8_t('a' + rng.nextBelow(26));
    }
    const uint64_t str_addr = a.dataBytes(strbytes);

    const Reg pc = R1, op = R2, off = R3, slot = R4, target = R5;
    const Reg vsp = R6, v1 = R7, v2 = R8, h = R9, sum = R10;
    const Reg jb = R11, cnt = R12, tmp = R13, sp2 = R14, iter = R15;
    const Reg sb = R17, ch = R18;

    a.li(jb, int64_t(jt));
    a.li(sb, int64_t(str_addr));
    a.li(sum, 0);
    a.li(h, 5381);
    a.li(iter, int64_t(26) * scale);

    a.label("run");
    a.li(pc, int64_t(code_addr));
    a.li(vsp, int64_t(vstack + 512 * 8)); // value stack middle
    a.li(cnt, int64_t(nops));
    a.label("dispatch");
    a.ldq(op, 0, pc);
    a.sll(op, 3, off);
    a.addq(jb, off, slot);
    a.ldq(target, 0, slot);
    a.jmp(target);                 // interpreter dispatch

    a.label("op0"); // push constant
    a.addq(vsp, 8, vsp);
    a.stq(cnt, 0, vsp);
    a.br("advance");

    a.label("op1"); // add top two (pop/pop/push)
    a.ldq(v1, 0, vsp);             // store-forwarded from recent pushes
    a.subq(vsp, 8, vsp);
    a.ldq(v2, 0, vsp);
    a.addq(v1, v2, v1);
    a.stq(v1, 0, vsp);
    a.br("advance");

    a.label("op2"); // xor top with hash
    a.ldq(v1, 0, vsp);
    a.xor_(v1, h, v1);
    a.stq(v1, 0, vsp);
    a.br("advance");

    a.label("op3"); // hash one string character (h = h*33 + c)
    a.and_(cnt, 255, tmp);
    a.addq(sb, tmp, tmp);
    a.ldbu(ch, 0, tmp);
    a.sll(h, 5, tmp);
    a.addq(tmp, h, h);
    a.addq(h, ch, h);
    a.br("advance");

    a.label("op4"); // dup
    a.ldq(v1, 0, vsp);
    a.addq(vsp, 8, vsp);
    a.stq(v1, 0, vsp);
    a.br("advance");

    a.label("op5"); // pop into checksum
    a.ldq(v1, 0, vsp);
    a.subq(vsp, 8, vsp);
    a.addq(sum, v1, sum);
    a.br("advance");

    a.label("op6"); // swap top two
    a.ldq(v1, 0, vsp);
    a.subq(vsp, 8, sp2);
    a.ldq(v2, 0, sp2);
    a.stq(v1, 0, sp2);
    a.stq(v2, 0, vsp);
    a.br("advance");

    a.label("op7"); // fold hash into checksum
    a.xor_(sum, h, sum);
    a.br("advance");

    a.label("advance");
    a.addq(pc, 8, pc);
    a.subq(cnt, 1, cnt);
    a.bne(cnt, "dispatch");
    a.subq(iter, 1, iter);
    a.bne(iter, "run");

    emitChecksumAndHalt(a, sum, R20);
    for (unsigned k = 0; k < 8; ++k) {
        char lbl[8];
        std::snprintf(lbl, sizeof(lbl), "op%u", k);
        a.dataLabel(jt + uint64_t(k) * 8, lbl);
    }
    return a.finish();
}

Program
buildTwolf(unsigned scale)
{
    Assembler a;
    const unsigned cells = 512;
    const uint64_t cell_addr =
        a.dataQuads(randomQuads(cells, 0x2e0f, 0xffff));

    const unsigned nnoise = 2048;
    const uint64_t noise =
        a.dataQuads(randomQuads(nnoise, 0x2e020));

    const Reg x = R1, tmp = R2, i = R3, j = R4, pi = R5, pj = R6;
    const Reg vi = R7, vj = R8, delta = R9, sum = R10, base = R11;
    const Reg iter = R12, acc = R13, np = R15, rnd = R16;

    a.li(base, int64_t(cell_addr));
    a.li(np, int64_t(noise));
    a.li(sum, 0);
    a.li(iter, int64_t(10000) * scale);

    a.label("anneal");
    // The move generator's randomness is loaded (unknown at rename),
    // like twolf's RNG state in memory.
    a.and_(iter, int64_t(nnoise - 1), tmp);
    a.sll(tmp, 3, tmp);
    a.addq(np, tmp, tmp);
    a.ldq(rnd, 0, tmp);
    a.and_(rnd, int64_t(cells - 1), i);
    a.srl(rnd, 20, j);
    a.and_(j, int64_t(cells - 1), j);
    // Cell addresses depend on the loaded randomness.
    a.sll(i, 3, pi);
    a.addq(base, pi, pi);
    a.sll(j, 3, pj);
    a.addq(base, pj, pj);
    a.ldq(vi, 0, pi);
    a.ldq(vj, 0, pj);
    a.subq(vi, vj, delta);
    // Accept if the move improves the cost, or randomly ~25% otherwise:
    // the classic unpredictable annealing branch.
    a.blt(delta, "accept");
    a.and_(rnd, 3, tmp);
    a.beq(tmp, "accept");
    a.br("reject");
    a.label("accept");
    a.stq(vj, 0, pi);               // swap the two cells
    a.stq(vi, 0, pj);
    a.addq(sum, delta, sum);
    a.label("reject");
    a.addq(acc, 1, acc);
    a.xor_(x, rnd, x);
    a.subq(iter, 1, iter);
    a.bne(iter, "anneal");

    a.addq(sum, acc, sum);
    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

Program
buildVortex(unsigned scale)
{
    Assembler a;
    const unsigned recs = 448;
    const unsigned rec_quads = 8;
    // Records: [0]=next index, [1..5]=payload, [6]=valid flag, [7]=pad.
    std::vector<uint64_t> arena(recs * rec_quads);
    {
        // Random permutation cycle for the next pointers.
        std::vector<uint64_t> perm(recs);
        for (unsigned i = 0; i < recs; ++i)
            perm[i] = i;
        Rng rng(0x70e7);
        for (unsigned i = recs - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.nextBelow(i + 1)]);
        Rng rng2(0x70e8);
        for (unsigned i = 0; i < recs; ++i) {
            arena[i * rec_quads + 0] = perm[i];
            for (unsigned f = 1; f <= 5; ++f)
                arena[i * rec_quads + f] = rng2.next() & 0xffffff;
            arena[i * rec_quads + 6] = (i % 37 == 0) ? 0 : 1;
        }
    }
    const uint64_t arena_addr = a.dataQuads(arena);
    const uint64_t outbuf = a.allocQuads(recs * 4);

    const Reg cur = R1, rec = R2, base = R3, nxt = R4, f = R5;
    const Reg ob = R6, valid = R7, sum = R10, cnt = R11, iter = R12;

    a.li(base, int64_t(arena_addr));
    a.li(ob, int64_t(outbuf));
    a.li(sum, 0);
    a.li(iter, int64_t(18) * scale);

    a.label("outer");
    a.li(cur, 0);
    a.li(cnt, int64_t(recs));
    a.label("walk");
    a.sll(cur, 6, rec);             // rec = cur * 64 bytes
    a.addq(base, rec, rec);
    a.ldq(nxt, 0, rec);             // chase the chain (cache-hostile)
    // Copy the payload into the per-record output slot: the destination
    // address depends on the chased pointer, as in the real database.
    a.sll(cur, 5, R13);             // out slot = cur * 32 bytes
    a.addq(ob, R13, R13);
    a.ldq(f, 8, rec);
    a.stq(f, 0, R13);
    a.addq(sum, f, sum);
    a.ldq(f, 16, rec);
    a.stq(f, 8, R13);
    a.ldq(f, 24, rec);
    a.stq(f, 16, R13);
    a.ldq(f, 32, rec);
    a.stq(f, 24, R13);
    // Validation branch: rarely taken.
    a.ldq(valid, 48, rec);
    a.bne(valid, "rec_ok");
    a.xor_(sum, 0xdead, sum);
    a.label("rec_ok");
    a.mov(nxt, cur);
    a.subq(cnt, 1, cnt);
    a.bne(cnt, "walk");
    a.subq(iter, 1, iter);
    a.bne(iter, "outer");

    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

Program
buildVpr(unsigned scale)
{
    Assembler a;
    const unsigned n = 128; // grid is n x n (128 KB: a real routing grid)
    const uint64_t grid =
        a.dataQuads(randomQuads(n * n, 0x1f9a, 0xfff));
    const uint64_t cost = a.allocQuads(n * n);

    const Reg gp = R1, cp = R2, i = R3, j = R4, c0 = R5, c1 = R6;
    const Reg c2 = R7, c3 = R8, c4 = R9, sum = R10, best = R11;
    const Reg cmp = R12, iter = R13, acc = R14;

    a.li(sum, 0);
    a.li(iter, int64_t(5) * scale);

    a.label("pass");
    // Wavefront expansion sweep: visit the grid interior and relax each
    // cell from its four neighbors (loads stream through the 128 KB
    // grid, far beyond the MBC; branches depend on the loaded costs).
    a.li(gp, int64_t(grid + (n + 1) * 8));
    a.li(cp, int64_t(cost + (n + 1) * 8));
    a.li(i, int64_t(n - 2));
    a.label("rowloop");
    a.li(j, int64_t(n - 2));
    a.label("cell");
    a.ldq(c0, 0, gp);               // the cell itself
    a.ldq(c1, -8, gp);              // west
    a.ldq(c2, 8, gp);               // east
    a.ldq(c3, int64_t(-8 * int64_t(n)), gp); // north
    a.ldq(c4, int64_t(8 * int64_t(n)), gp);  // south
    // best = min(neighbors): data-dependent compare ladder.
    a.mov(c1, best);
    a.cmplt(c2, best, cmp);
    a.beq(cmp, "skip_e");
    a.mov(c2, best);
    a.label("skip_e");
    a.cmplt(c3, best, cmp);
    a.beq(cmp, "skip_n");
    a.mov(c3, best);
    a.label("skip_n");
    a.cmplt(c4, best, cmp);
    a.beq(cmp, "skip_s");
    a.mov(c4, best);
    a.label("skip_s");
    a.addq(best, c0, acc);          // relaxed cost through this cell
    a.stq(acc, 0, cp);
    a.addq(sum, acc, sum);
    a.addq(gp, 8, gp);
    a.addq(cp, 8, cp);
    a.subq(j, 1, j);
    a.bne(j, "cell");
    a.addq(gp, 16, gp);
    a.addq(cp, 16, cp);
    a.subq(i, 1, i);
    a.bne(i, "rowloop");
    a.subq(iter, 1, iter);
    a.bne(iter, "pass");

    emitChecksumAndHalt(a, sum, R20);
    return a.finish();
}

} // namespace conopt::workloads
