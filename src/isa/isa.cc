#include "src/isa/isa.hh"

#include <array>
#include <cstdio>

#include "src/util/logging.hh"

namespace conopt::isa {

namespace {

using OC = OpClass;

constexpr OpInfo
intOp(const char *m, uint8_t lat = 1, OC cls = OC::IntSimple)
{
    OpInfo i{};
    i.mnemonic = m;
    i.cls = cls;
    i.latency = lat;
    i.readsRa = true;
    i.readsRb = true;
    i.writesRc = true;
    return i;
}

constexpr OpInfo
fpOp(const char *m, uint8_t lat, bool reads_a = true)
{
    OpInfo i{};
    i.mnemonic = m;
    i.cls = OC::Fp;
    i.latency = lat;
    i.readsRa = reads_a;
    i.readsRb = true;
    i.writesRc = true;
    i.raIsFp = reads_a;
    i.rbIsFp = true;
    i.rcIsFp = true;
    return i;
}

constexpr OpInfo
loadOp(const char *m, uint8_t size, bool fp = false)
{
    OpInfo i{};
    i.mnemonic = m;
    i.cls = OC::Mem;
    i.latency = 1; // cache latency added by the memory model
    i.isLoad = true;
    i.memSize = size;
    i.readsRa = true;
    i.writesRc = true;
    i.rcIsFp = fp;
    return i;
}

constexpr OpInfo
storeOp(const char *m, uint8_t size, bool fp = false)
{
    OpInfo i{};
    i.mnemonic = m;
    i.cls = OC::Mem;
    i.latency = 1;
    i.isStore = true;
    i.memSize = size;
    i.readsRa = true;
    i.readsRc = true;
    i.rcIsFp = fp;
    return i;
}

constexpr OpInfo
condBr(const char *m, bool fp = false)
{
    OpInfo i{};
    i.mnemonic = m;
    i.cls = OC::Control;
    i.latency = 1;
    i.isBranch = true;
    i.isCondBranch = true;
    i.readsRa = true;
    i.raIsFp = fp;
    return i;
}

constexpr std::array<OpInfo, size_t(Opcode::NumOpcodes)>
buildTable()
{
    std::array<OpInfo, size_t(Opcode::NumOpcodes)> t{};
    auto set = [&t](Opcode op, OpInfo i) { t[size_t(op)] = i; };

    set(Opcode::ADDQ, intOp("addq"));
    set(Opcode::SUBQ, intOp("subq"));
    set(Opcode::AND, intOp("and"));
    set(Opcode::BIS, intOp("bis"));
    set(Opcode::XOR, intOp("xor"));
    set(Opcode::SLL, intOp("sll"));
    set(Opcode::SRL, intOp("srl"));
    set(Opcode::SRA, intOp("sra"));
    set(Opcode::CMPEQ, intOp("cmpeq"));
    set(Opcode::CMPLT, intOp("cmplt"));
    set(Opcode::CMPLE, intOp("cmple"));
    set(Opcode::CMPULT, intOp("cmpult"));
    set(Opcode::CMPULE, intOp("cmpule"));
    {
        OpInfo i = intOp("lda");
        i.readsRb = false; // lda is always ra + imm
        set(Opcode::LDA, i);
    }
    set(Opcode::ADDL, intOp("addl"));
    set(Opcode::SUBL, intOp("subl"));
    {
        OpInfo i = intOp("sextl");
        i.readsRa = false;
        set(Opcode::SEXTL, i);
    }

    set(Opcode::MULQ, intOp("mulq", 7, OC::IntComplex));
    set(Opcode::DIVQ, intOp("divq", 20, OC::IntComplex));
    set(Opcode::REMQ, intOp("remq", 20, OC::IntComplex));

    set(Opcode::ADDT, fpOp("addt", 4));
    set(Opcode::SUBT, fpOp("subt", 4));
    set(Opcode::MULT, fpOp("mult", 4));
    set(Opcode::DIVT, fpOp("divt", 12));
    set(Opcode::SQRTT, fpOp("sqrtt", 16, false));
    set(Opcode::CMPTLT, fpOp("cmptlt", 4));
    set(Opcode::CMPTEQ, fpOp("cmpteq", 4));
    {
        // int -> fp: reads integer ra, writes fp rc.
        OpInfo i{};
        i.mnemonic = "cvtqt";
        i.cls = OC::Fp;
        i.latency = 4;
        i.readsRa = true;
        i.writesRc = true;
        i.rcIsFp = true;
        set(Opcode::CVTQT, i);
    }
    {
        // fp -> int: reads fp rb, writes integer rc.
        OpInfo i{};
        i.mnemonic = "cvttq";
        i.cls = OC::Fp;
        i.latency = 4;
        i.readsRb = true;
        i.rbIsFp = true;
        i.writesRc = true;
        set(Opcode::CVTTQ, i);
    }
    set(Opcode::FMOV, fpOp("fmov", 1, false));

    set(Opcode::LDQ, loadOp("ldq", 8));
    set(Opcode::LDL, loadOp("ldl", 4));
    set(Opcode::LDBU, loadOp("ldbu", 1));
    set(Opcode::STQ, storeOp("stq", 8));
    set(Opcode::STL, storeOp("stl", 4));
    set(Opcode::STB, storeOp("stb", 1));
    set(Opcode::LDT, loadOp("ldt", 8, true));
    set(Opcode::STT, storeOp("stt", 8, true));

    set(Opcode::BEQ, condBr("beq"));
    set(Opcode::BNE, condBr("bne"));
    set(Opcode::BLT, condBr("blt"));
    set(Opcode::BGE, condBr("bge"));
    set(Opcode::BLE, condBr("ble"));
    set(Opcode::BGT, condBr("bgt"));
    set(Opcode::FBEQ, condBr("fbeq", true));
    set(Opcode::FBNE, condBr("fbne", true));
    {
        OpInfo i{};
        i.mnemonic = "br";
        i.cls = OC::Control;
        i.latency = 1;
        i.isBranch = true;
        set(Opcode::BR, i);
    }
    {
        OpInfo i{};
        i.mnemonic = "bsr";
        i.cls = OC::Control;
        i.latency = 1;
        i.isBranch = true;
        i.isCall = true;
        i.writesRc = true;
        set(Opcode::BSR, i);
    }
    {
        OpInfo i{};
        i.mnemonic = "jmp";
        i.cls = OC::Control;
        i.latency = 1;
        i.isBranch = true;
        i.isIndirect = true;
        i.readsRa = true;
        set(Opcode::JMP, i);
    }
    {
        OpInfo i{};
        i.mnemonic = "jsr";
        i.cls = OC::Control;
        i.latency = 1;
        i.isBranch = true;
        i.isIndirect = true;
        i.isCall = true;
        i.readsRa = true;
        i.writesRc = true;
        set(Opcode::JSR, i);
    }
    {
        OpInfo i{};
        i.mnemonic = "ret";
        i.cls = OC::Control;
        i.latency = 1;
        i.isBranch = true;
        i.isIndirect = true;
        i.isReturn = true;
        i.readsRa = true;
        set(Opcode::RET, i);
    }
    {
        OpInfo i{};
        i.mnemonic = "nop";
        i.cls = OC::None;
        i.latency = 1;
        set(Opcode::NOP, i);
    }
    {
        OpInfo i{};
        i.mnemonic = "halt";
        i.cls = OC::None;
        i.latency = 1;
        set(Opcode::HALT, i);
    }
    return t;
}

} // namespace

namespace detail {
const std::array<OpInfo, size_t(Opcode::NumOpcodes)> opTable = buildTable();
} // namespace detail

bool
isSimpleOp(Opcode op)
{
    const OpInfo &i = opInfo(op);
    return (i.cls == OpClass::IntSimple || i.cls == OpClass::Control) &&
           i.latency == 1 && !i.raIsFp && !i.rbIsFp && !i.rcIsFp;
}

std::string
disassemble(const Instruction &inst, uint64_t pc)
{
    const OpInfo &info = opInfo(inst.op);
    char buf[128];

    auto reg = [](bool fp, RegIndex r) {
        char b[8];
        std::snprintf(b, sizeof(b), "%s%u", fp ? "f" : "r", unsigned(r));
        return std::string(b);
    };

    if (inst.isMem()) {
        // ld/st rc, imm(ra)
        std::snprintf(buf, sizeof(buf), "%-7s %s, %lld(%s)", info.mnemonic,
                      reg(info.rcIsFp, inst.rc).c_str(),
                      static_cast<long long>(inst.imm),
                      reg(false, inst.ra).c_str());
    } else if (info.isCondBranch) {
        std::snprintf(buf, sizeof(buf), "%-7s %s, 0x%llx", info.mnemonic,
                      reg(info.raIsFp, inst.ra).c_str(),
                      static_cast<unsigned long long>(inst.imm));
    } else if (inst.op == Opcode::BR) {
        std::snprintf(buf, sizeof(buf), "%-7s 0x%llx", info.mnemonic,
                      static_cast<unsigned long long>(inst.imm));
    } else if (inst.op == Opcode::BSR) {
        std::snprintf(buf, sizeof(buf), "%-7s %s, 0x%llx", info.mnemonic,
                      reg(false, inst.rc).c_str(),
                      static_cast<unsigned long long>(inst.imm));
    } else if (info.isIndirect) {
        if (info.writesRc) {
            std::snprintf(buf, sizeof(buf), "%-7s %s, (%s)", info.mnemonic,
                          reg(false, inst.rc).c_str(),
                          reg(false, inst.ra).c_str());
        } else {
            std::snprintf(buf, sizeof(buf), "%-7s (%s)", info.mnemonic,
                          reg(false, inst.ra).c_str());
        }
    } else if (info.cls == OpClass::None) {
        std::snprintf(buf, sizeof(buf), "%s", info.mnemonic);
    } else if (info.writesRc) {
        if (info.readsRa && (info.readsRb || inst.useImm)) {
            if (inst.useImm) {
                std::snprintf(buf, sizeof(buf), "%-7s %s, %lld -> %s",
                              info.mnemonic,
                              reg(info.raIsFp, inst.ra).c_str(),
                              static_cast<long long>(inst.imm),
                              reg(info.rcIsFp, inst.rc).c_str());
            } else {
                std::snprintf(buf, sizeof(buf), "%-7s %s, %s -> %s",
                              info.mnemonic,
                              reg(info.raIsFp, inst.ra).c_str(),
                              reg(info.rbIsFp, inst.rb).c_str(),
                              reg(info.rcIsFp, inst.rc).c_str());
            }
        } else if (info.readsRa) {
            std::snprintf(buf, sizeof(buf), "%-7s %s, %lld -> %s",
                          info.mnemonic, reg(info.raIsFp, inst.ra).c_str(),
                          static_cast<long long>(inst.imm),
                          reg(info.rcIsFp, inst.rc).c_str());
        } else if (inst.useImm) {
            std::snprintf(buf, sizeof(buf), "%-7s %lld -> %s",
                          info.mnemonic, static_cast<long long>(inst.imm),
                          reg(info.rcIsFp, inst.rc).c_str());
        } else {
            std::snprintf(buf, sizeof(buf), "%-7s %s -> %s", info.mnemonic,
                          reg(info.rbIsFp, inst.rb).c_str(),
                          reg(info.rcIsFp, inst.rc).c_str());
        }
    } else {
        std::snprintf(buf, sizeof(buf), "%s", info.mnemonic);
    }

    char out[160];
    std::snprintf(out, sizeof(out), "0x%06llx: %s",
                  static_cast<unsigned long long>(pc), buf);
    return std::string(out);
}

} // namespace conopt::isa
