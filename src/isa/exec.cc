#include "src/isa/exec.hh"

#include <bit>
#include <cmath>

#include "src/util/bitops.hh"
#include "src/util/logging.hh"

namespace conopt::isa {

uint64_t
aluCompute(Opcode op, uint64_t a, uint64_t b)
{
    auto as_d = [](uint64_t v) { return std::bit_cast<double>(v); };
    auto from_d = [](double d) { return std::bit_cast<uint64_t>(d); };
    const int64_t sa = static_cast<int64_t>(a);
    const int64_t sb = static_cast<int64_t>(b);

    switch (op) {
      case Opcode::ADDQ:
      case Opcode::LDA:
        return wrappingAdd(a, b);
      case Opcode::SUBQ:
        return wrappingSub(a, b);
      case Opcode::AND:
        return a & b;
      case Opcode::BIS:
        return a | b;
      case Opcode::XOR:
        return a ^ b;
      case Opcode::SLL:
        return a << (b & 63);
      case Opcode::SRL:
        return a >> (b & 63);
      case Opcode::SRA:
        return static_cast<uint64_t>(sa >> (b & 63));
      case Opcode::CMPEQ:
        return a == b;
      case Opcode::CMPLT:
        return sa < sb;
      case Opcode::CMPLE:
        return sa <= sb;
      case Opcode::CMPULT:
        return a < b;
      case Opcode::CMPULE:
        return a <= b;
      case Opcode::ADDL:
        return static_cast<uint64_t>(sext64(wrappingAdd(a, b), 32));
      case Opcode::SUBL:
        return static_cast<uint64_t>(sext64(wrappingSub(a, b), 32));
      case Opcode::SEXTL:
        return static_cast<uint64_t>(sext64(b, 32));
      case Opcode::MULQ:
        return wrappingMul(a, b);
      case Opcode::DIVQ:
        if (sb == 0)
            return 0;
        if (sa == INT64_MIN && sb == -1)
            return static_cast<uint64_t>(INT64_MIN);
        return static_cast<uint64_t>(sa / sb);
      case Opcode::REMQ:
        if (sb == 0)
            return 0;
        if (sa == INT64_MIN && sb == -1)
            return 0;
        return static_cast<uint64_t>(sa % sb);
      case Opcode::ADDT:
        return from_d(as_d(a) + as_d(b));
      case Opcode::SUBT:
        return from_d(as_d(a) - as_d(b));
      case Opcode::MULT:
        return from_d(as_d(a) * as_d(b));
      case Opcode::DIVT:
        return from_d(as_d(a) / as_d(b));
      case Opcode::SQRTT:
        return from_d(std::sqrt(as_d(b)));
      case Opcode::CMPTLT:
        return from_d(as_d(a) < as_d(b) ? 1.0 : 0.0);
      case Opcode::CMPTEQ:
        return from_d(as_d(a) == as_d(b) ? 1.0 : 0.0);
      case Opcode::CVTQT:
        return from_d(static_cast<double>(sa));
      case Opcode::CVTTQ:
        return static_cast<uint64_t>(static_cast<int64_t>(as_d(b)));
      case Opcode::FMOV:
        return b;
      default:
        conopt_panic("aluCompute on non-ALU opcode %s",
                     opInfo(op).mnemonic);
    }
}

bool
branchCondTaken(Opcode op, uint64_t a)
{
    const int64_t sa = static_cast<int64_t>(a);
    switch (op) {
      case Opcode::BEQ:
        return a == 0;
      case Opcode::BNE:
        return a != 0;
      case Opcode::BLT:
        return sa < 0;
      case Opcode::BGE:
        return sa >= 0;
      case Opcode::BLE:
        return sa <= 0;
      case Opcode::BGT:
        return sa > 0;
      case Opcode::FBEQ:
        return std::bit_cast<double>(a) == 0.0;
      case Opcode::FBNE:
        return std::bit_cast<double>(a) != 0.0;
      default:
        conopt_panic("branchCondTaken on non-conditional opcode %s",
                     opInfo(op).mnemonic);
    }
}

} // namespace conopt::isa
