/**
 * @file
 * Shared execution semantics: the single definition of what each ALU op
 * and branch condition computes. Used by the functional emulator and by
 * the continuous optimizer's early-execution path, so the two can never
 * disagree.
 */

#ifndef CONOPT_ISA_EXEC_HH
#define CONOPT_ISA_EXEC_HH

#include <cstdint>

#include "src/isa/isa.hh"

namespace conopt::isa {

/**
 * Compute the result of an ALU operation (integer or floating point; fp
 * operands/results are double bit patterns).
 */
uint64_t aluCompute(Opcode op, uint64_t a, uint64_t b);

/** Evaluate a conditional branch's direction given its register value. */
bool branchCondTaken(Opcode op, uint64_t a);

} // namespace conopt::isa

#endif // CONOPT_ISA_EXEC_HH
