/**
 * @file
 * Definition of the simulated instruction set.
 *
 * The ISA is a 64-bit Alpha-like load/store RISC with the exact shapes the
 * continuous optimizer rewrites (paper section 3): three-operand register
 * or register-immediate ALU ops, base+displacement memory operations, and
 * compare-register-against-zero branches. 32 integer registers (r31 is
 * hardwired to zero) and 32 floating-point registers holding IEEE double
 * bit patterns. Instructions are a nominal 4 bytes for PC arithmetic.
 */

#ifndef CONOPT_ISA_ISA_HH
#define CONOPT_ISA_ISA_HH

#include <array>
#include <cstdint>
#include <string>

namespace conopt::isa {

/** Architectural register index. */
using RegIndex = uint8_t;

constexpr RegIndex numIntRegs = 32;
constexpr RegIndex numFpRegs = 32;
/** r31 reads as zero and discards writes (Alpha convention). */
constexpr RegIndex zeroReg = 31;

/** Nominal instruction size in bytes (used for PC arithmetic). */
constexpr uint64_t instBytes = 4;

/** Every operation in the ISA. */
enum class Opcode : uint8_t
{
    // Simple integer ops: one cycle, eligible for early execution.
    ADDQ,   ///< rc = ra + rb/imm
    SUBQ,   ///< rc = ra - rb/imm
    AND,    ///< rc = ra & rb/imm
    BIS,    ///< rc = ra | rb/imm (Alpha's OR)
    XOR,    ///< rc = ra ^ rb/imm
    SLL,    ///< rc = ra << (rb/imm & 63)
    SRL,    ///< rc = ra >> (rb/imm & 63) logical
    SRA,    ///< rc = ra >> (rb/imm & 63) arithmetic
    CMPEQ,  ///< rc = (ra == rb/imm)
    CMPLT,  ///< rc = (ra <  rb/imm) signed
    CMPLE,  ///< rc = (ra <= rb/imm) signed
    CMPULT, ///< rc = (ra <  rb/imm) unsigned
    CMPULE, ///< rc = (ra <= rb/imm) unsigned
    LDA,    ///< rc = ra + imm (address/constant materialization)
    ADDL,   ///< rc = sext32(ra + rb/imm) (32-bit add)
    SUBL,   ///< rc = sext32(ra - rb/imm)
    SEXTL,  ///< rc = sext32(rb/imm)

    // Complex integer ops: multi-cycle, never execute in the optimizer.
    MULQ,   ///< rc = ra * rb/imm (low 64 bits)
    DIVQ,   ///< rc = ra / rb/imm signed (0 if divisor is 0)
    REMQ,   ///< rc = ra % rb/imm signed (0 if divisor is 0)

    // Floating point (separate register file, double precision).
    ADDT,   ///< fc = fa + fb
    SUBT,   ///< fc = fa - fb
    MULT,   ///< fc = fa * fb
    DIVT,   ///< fc = fa / fb
    SQRTT,  ///< fc = sqrt(fb)
    CMPTLT, ///< fc = (fa < fb) ? 1.0 : 0.0
    CMPTEQ, ///< fc = (fa == fb) ? 1.0 : 0.0
    CVTQT,  ///< fc = double(int64(ra))     (int -> fp)
    CVTTQ,  ///< rc = int64(trunc(fb))      (fp -> int)
    FMOV,   ///< fc = fb

    // Memory. Effective address is always intreg[ra] + imm.
    LDQ,    ///< rc = mem64[ra + imm]
    LDL,    ///< rc = sext32(mem32[ra + imm])
    LDBU,   ///< rc = zext8(mem8[ra + imm])
    STQ,    ///< mem64[ra + imm] = rc
    STL,    ///< mem32[ra + imm] = low32(rc)
    STB,    ///< mem8[ra + imm] = low8(rc)
    LDT,    ///< fc = mem64[ra + imm] (fp load)
    STT,    ///< mem64[ra + imm] = fc (fp store)

    // Control. Conditional branches test intreg[ra] against zero; the
    // target is an absolute byte address in imm.
    BEQ,    ///< taken iff ra == 0
    BNE,    ///< taken iff ra != 0
    BLT,    ///< taken iff ra <  0 signed
    BGE,    ///< taken iff ra >= 0 signed
    BLE,    ///< taken iff ra <= 0 signed
    BGT,    ///< taken iff ra >  0 signed
    FBEQ,   ///< taken iff fpreg[ra] == 0.0
    FBNE,   ///< taken iff fpreg[ra] != 0.0
    BR,     ///< unconditional, pc = imm
    BSR,    ///< rc = pc + 4, pc = imm (call direct)
    JMP,    ///< pc = ra (indirect jump)
    JSR,    ///< rc = pc + 4, pc = ra (call indirect)
    RET,    ///< pc = ra (return; hints the return-address stack)

    NOP,    ///< no operation
    HALT,   ///< stop the program

    NumOpcodes
};

/** Functional-unit / scheduler class of an operation. */
enum class OpClass : uint8_t
{
    IntSimple,  ///< 1-cycle integer ALU (4 units)
    IntComplex, ///< multi-cycle integer (1 unit)
    Fp,         ///< floating point (2 units)
    Mem,        ///< loads and stores (2 agen units, 2 cache ports)
    Control,    ///< branches and jumps (resolve on a simple ALU)
    None        ///< NOP / HALT
};

/** Static properties of an opcode. */
struct OpInfo
{
    const char *mnemonic;
    OpClass cls;
    uint8_t latency;       ///< execute latency in cycles
    bool isLoad;
    bool isStore;
    uint8_t memSize;       ///< access size in bytes (0 if not memory)
    bool isBranch;         ///< any control transfer
    bool isCondBranch;     ///< conditional direction
    bool isIndirect;       ///< target comes from a register
    bool isCall;           ///< pushes a return address
    bool isReturn;         ///< pops the return-address stack
    bool readsRa;          ///< uses the ra field as a source
    bool readsRb;          ///< uses the rb field as a source (reg form)
    bool readsRc;          ///< uses rc as a source (stores)
    bool writesRc;         ///< produces a result in rc
    bool raIsFp;           ///< ra names an fp register
    bool rbIsFp;           ///< rb names an fp register
    bool rcIsFp;           ///< rc names an fp register
};

namespace detail {
/** The opcode property table (built in isa.cc). */
extern const std::array<OpInfo, size_t(Opcode::NumOpcodes)> opTable;
} // namespace detail

/** Look up the static properties of @p op. Inline: this sits on the
 *  per-instruction hot path of fetch, rename, and retire. */
inline const OpInfo &
opInfo(Opcode op)
{
    return detail::opTable[size_t(op)];
}

/** A decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegIndex ra = zeroReg;  ///< source 1 (memory base for ld/st)
    RegIndex rb = zeroReg;  ///< source 2 (ignored when useImm)
    RegIndex rc = zeroReg;  ///< destination (data source for stores)
    bool useImm = false;    ///< rb operand replaced by imm
    int64_t imm = 0;        ///< immediate / displacement / branch target

    bool isLoad() const { return opInfo(op).isLoad; }
    bool isStore() const { return opInfo(op).isStore; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const { return opInfo(op).isBranch; }
    bool isCondBranch() const { return opInfo(op).isCondBranch; }
    bool writesReg() const { return opInfo(op).writesRc; }
};

/** True if the op is a 1-cycle integer/control op the optimizer may
 *  execute (paper footnote 1: "simple instructions are those that
 *  require a single cycle to execute"). */
bool isSimpleOp(Opcode op);

/** Render an instruction as human-readable assembly. */
std::string disassemble(const Instruction &inst, uint64_t pc = 0);

} // namespace conopt::isa

#endif // CONOPT_ISA_ISA_HH
