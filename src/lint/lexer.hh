/**
 * @file
 * A small comment- and string-aware C++ tokenizer for conopt_lint.
 *
 * This is deliberately NOT a full C++ lexer (no libclang, no
 * preprocessing): it splits a translation unit into identifier /
 * number / string / character / punctuation tokens, skips the inside
 * of string literals (including raw strings) and comments so that
 * banned identifiers mentioned in documentation or test fixtures can
 * never false-positive, and records every comment verbatim so the
 * suppression syntax (an `allow(<rule>) reason` clause after the
 * conopt-lint marker) can be parsed from the same pass. That token stream is exactly enough for
 * the project-invariant rules in rules.cc, which match identifier
 * patterns rather than the grammar.
 */

#ifndef CONOPT_LINT_LEXER_HH
#define CONOPT_LINT_LEXER_HH

#include <string>
#include <string_view>
#include <vector>

namespace conopt::lint {

/** Lexical class of a Token. */
enum class TokKind {
    Identifier,  ///< identifiers and keywords (no keyword table needed)
    Number,      ///< integer/float literals, incl. hex and separators
    String,      ///< "..." or R"tag(...)tag"; text is the *contents*
    CharLit,     ///< '...'
    Punct,       ///< one operator/punctuator character sequence
};

/** One lexed token. Line numbers are 1-based. */
struct Token {
    TokKind kind;
    std::string text;
    int line = 0;
};

/** One comment, verbatim without the // or slash-star delimiters.
 *  Block comments spanning multiple lines keep their interior
 *  newlines; `line` is the line the comment starts on. */
struct Comment {
    std::string text;
    int line = 0;
};

/** Result of lexing one file. */
struct LexedFile {
    std::vector<Token> tokens;
    std::vector<Comment> comments;
    int lineCount = 0;
};

/**
 * Tokenize C++ source text. Never fails: unterminated literals are
 * closed at end of file (the linter must degrade gracefully on code
 * that does not compile yet).
 */
LexedFile lex(std::string_view source);

} // namespace conopt::lint

#endif // CONOPT_LINT_LEXER_HH
