/**
 * @file
 * conopt_lint driver: file discovery, per-directory configuration,
 * and the CLI entry point (tools/lint.cc is a thin main; tests call
 * lintMain in-process, the same pattern as sim::benchCheckMain).
 *
 * Configuration: every directory on the path from the filesystem root
 * down to a linted file may hold a `.conopt-lint` file; directives
 * apply to the whole subtree and inner files override outer ones.
 * Directives, one per line (`#` starts a comment):
 *
 *   disable <rule>        switch a rule off for this subtree
 *   enable <rule>         switch it back on further down
 *   hot <glob>            mark matching basenames hot-path
 *                         (activates hotpath-alloc)
 *   serialize <glob>      mark files that serialize artifacts or
 *                         compute geomeans (activates unordered-iter)
 *   output <glob>         mark files that legitimately own stdout
 *                         (deactivates stray-output)
 *
 * Exit codes match conopt_bench_check: 0 clean, 1 violations found,
 * 2 usage or I/O error.
 */

#ifndef CONOPT_LINT_LINT_HH
#define CONOPT_LINT_LINT_HH

#include <string>
#include <vector>

#include "src/lint/rules.hh"

namespace conopt::lint {

/**
 * Lint one in-memory source file under an explicit config (the unit
 * seam for tests/test_lint.cc: no filesystem required).
 */
std::vector<Violation> lintSource(const std::string &displayPath,
                                  const std::string &source,
                                  const RuleConfig &config);

/**
 * Compute the effective config for @p filePath by merging the
 * `.conopt-lint` files of every ancestor directory, outermost first.
 * Returns false (with a message in *err) on a malformed config file.
 */
bool effectiveConfig(const std::string &filePath, RuleConfig *out,
                     std::string *err);

/**
 * CLI: conopt_lint [--list-rules] <file-or-dir>...
 * Directories are walked recursively for .cc/.hh/.cpp/.h sources
 * (skipping dot-directories and build trees); findings are printed
 * to stdout as `file:line: [rule] message`. Returns the exit code.
 */
int lintMain(const std::vector<std::string> &args);

} // namespace conopt::lint

#endif // CONOPT_LINT_LINT_HH
