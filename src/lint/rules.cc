#include "src/lint/rules.hh"

#include <algorithm>
#include <cstddef>
#include <map>

namespace conopt::lint {

namespace {

using Tokens = std::vector<Token>;

/** Is token @p i an identifier with exactly this text? */
bool
isIdent(const Tokens &t, size_t i, const char *text)
{
    return i < t.size() && t[i].kind == TokKind::Identifier &&
           t[i].text == text;
}

bool
isPunct(const Tokens &t, size_t i, const char *text)
{
    return i < t.size() && t[i].kind == TokKind::Punct && t[i].text == text;
}

/** True when token @p i is the target of a member access (`.x` or
 *  `->x`) — such names belong to some object, not the global/std
 *  function the determinism and signal-safety tables describe. */
bool
isMemberAccess(const Tokens &t, size_t i)
{
    return i > 0 && t[i - 1].kind == TokKind::Punct &&
           (t[i - 1].text == "." || t[i - 1].text == "->");
}

/** Skip a balanced template-argument list starting at `<` (token @p i);
 *  returns the index just past the matching `>`. Treats `>>` as two
 *  closers. Returns @p i unchanged if @p i is not `<`. */
size_t
skipTemplateArgs(const Tokens &t, size_t i)
{
    if (!isPunct(t, i, "<"))
        return i;
    int depth = 0;
    while (i < t.size()) {
        const Token &tok = t[i];
        if (tok.kind == TokKind::Punct) {
            if (tok.text == "<" || tok.text == "<<")
                depth += static_cast<int>(tok.text.size());
            else if (tok.text == ">" || tok.text == ">>") {
                depth -= static_cast<int>(tok.text.size());
                if (depth <= 0)
                    return i + 1;
            } else if (tok.text == ";") {
                return i;  // malformed; bail without scanning the file
            }
        }
        ++i;
    }
    return i;
}

/** Index of the token after the `)` matching the `(` at @p i (which
 *  must be `(`); tolerates EOF. */
size_t
skipParens(const Tokens &t, size_t i)
{
    if (!isPunct(t, i, "("))
        return i;
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (isPunct(t, i, "("))
            ++depth;
        else if (isPunct(t, i, ")") && --depth == 0)
            return i + 1;
    }
    return i;
}

/** Does the argument list whose `(` is at @p i mention identifier
 *  @p name at any nesting depth? */
bool
argListMentions(const Tokens &t, size_t i, const char *name)
{
    const size_t end = skipParens(t, i);
    for (size_t j = i; j < end; ++j)
        if (isIdent(t, j, name))
            return true;
    return false;
}

void
addViolation(const FileCheckInput &in, std::vector<Violation> *out,
             int line, const char *rule, std::string message)
{
    out->push_back({in.displayPath, line, rule, std::move(message)});
}

// ------------------------------------------------------------------
// determinism
// ------------------------------------------------------------------

/** Functions whose *call* injects host nondeterminism. Matched only as
 *  free calls (`name(` not preceded by `.`/`->`), so a field that
 *  happens to be called `time` is not flagged. */
const std::set<std::string> kNondetCalls = {
    "rand",       "srand",      "rand_r",        "random",
    "srandom",    "drand48",    "lrand48",       "mrand48",
    "time",       "clock",      "gettimeofday",  "clock_gettime",
    "localtime",  "gmtime",     "ctime",         "asctime",
    "getrandom",  "timespec_get",
};

/** Types/namespaces that are nondeterministic on sight. steady_clock
 *  is deliberately absent: monotonic host timing (kips, timeouts)
 *  never feeds simulated results. high_resolution_clock is banned
 *  because the standard lets it alias system_clock. */
const std::set<std::string> kNondetTypes = {
    "random_device",
    "system_clock",
    "high_resolution_clock",
};

void
ruleDeterminism(const FileCheckInput &in, std::vector<Violation> *out)
{
    const Tokens &t = in.lexed->tokens;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind == TokKind::String) {
            // Pointer-value formatting: the %p bytes differ run to
            // run (ASLR), so they must never reach serialized output.
            // conopt-lint: allow(determinism) the rule's own needle
            if (t[i].text.find("%p") != std::string::npos)
                addViolation(
                    in, out, t[i].line, "determinism",
                    // conopt-lint: allow(determinism) names the pattern
                    "pointer-value format (%p) in simulation code; "
                    "pointer bytes vary run to run");
            continue;
        }
        if (t[i].kind != TokKind::Identifier)
            continue;
        if (kNondetTypes.count(t[i].text)) {
            addViolation(in, out, t[i].line, "determinism",
                         "use of nondeterministic '" + t[i].text +
                             "' in simulation code (steady_clock is "
                             "the only allowed clock)");
            continue;
        }
        if (kNondetCalls.count(t[i].text) && isPunct(t, i + 1, "(") &&
            !isMemberAccess(t, i)) {
            addViolation(in, out, t[i].line, "determinism",
                         "call to nondeterministic '" + t[i].text +
                             "()' in simulation code");
        }
    }
}

// ------------------------------------------------------------------
// unordered-iter
// ------------------------------------------------------------------

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

void
ruleUnorderedIter(const FileCheckInput &in, std::vector<Violation> *out)
{
    const Tokens &t = in.lexed->tokens;

    // Pass 1: names declared with an unordered container type in this
    // file (`std::unordered_map<K, V> name`, members included).
    std::set<std::string> unordered;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            !kUnorderedTypes.count(t[i].text))
            continue;
        size_t j = skipTemplateArgs(t, i + 1);
        // Tolerate `&`/`*`/`const` between type and declared name.
        while (j < t.size() &&
               (isPunct(t, j, "&") || isPunct(t, j, "*") ||
                isIdent(t, j, "const")))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Identifier)
            unordered.insert(t[j].text);
    }
    if (unordered.empty())
        return;

    // Pass 2a: range-for whose sequence expression mentions one of
    // those names: `for (decl : expr)`.
    for (size_t i = 0; i + 1 < t.size(); ++i) {
        if (!isIdent(t, i, "for") || !isPunct(t, i + 1, "("))
            continue;
        const size_t end = skipParens(t, i + 1);
        size_t colon = 0;
        int depth = 0;
        for (size_t j = i + 1; j < end; ++j) {
            if (isPunct(t, j, "("))
                ++depth;
            else if (isPunct(t, j, ")"))
                --depth;
            else if (depth == 1 && isPunct(t, j, ":")) {
                colon = j;
                break;
            }
        }
        if (!colon)
            continue;
        for (size_t j = colon + 1; j < end; ++j) {
            if (t[j].kind == TokKind::Identifier &&
                unordered.count(t[j].text)) {
                addViolation(
                    in, out, t[i].line, "unordered-iter",
                    "iteration over unordered container '" + t[j].text +
                        "' in a file that serializes results; the "
                        "visit order is not deterministic");
                break;
            }
        }
    }

    // Pass 2b: explicit iterator walks: `name.begin()` / `name.cbegin()`.
    for (size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind == TokKind::Identifier && unordered.count(t[i].text) &&
            (isPunct(t, i + 1, ".") || isPunct(t, i + 1, "->")) &&
            (isIdent(t, i + 2, "begin") || isIdent(t, i + 2, "cbegin"))) {
            addViolation(in, out, t[i].line, "unordered-iter",
                         "iterator walk over unordered container '" +
                             t[i].text + "' in a file that serializes "
                             "results");
        }
    }
}

// ------------------------------------------------------------------
// hotpath-alloc
// ------------------------------------------------------------------

const std::set<std::string> kAllocCalls = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "make_unique", "make_shared",
};

/** Container growth members that may allocate per element. Capacity
 *  setup (`reserve`, `resize`, `assign`, `clear`) is allowed: the hot
 *  files do exactly that in their reset() paths, and
 *  tests/test_session.cc pins the warm cycle allocation-free. */
const std::set<std::string> kGrowthMembers = {
    "push_back", "emplace_back", "push_front", "emplace_front",
    "emplace",   "insert",
};

void
ruleHotpathAlloc(const FileCheckInput &in, std::vector<Violation> *out)
{
    const Tokens &t = in.lexed->tokens;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier)
            continue;
        const std::string &s = t[i].text;
        if (s == "new" && !isMemberAccess(t, i)) {
            addViolation(in, out, t[i].line, "hotpath-alloc",
                         "'new' in a hot-path file; hot state must be "
                         "preallocated in reset()");
            continue;
        }
        if (kAllocCalls.count(s) && !isMemberAccess(t, i) &&
            (isPunct(t, i + 1, "(") || isPunct(t, i + 1, "<"))) {
            addViolation(in, out, t[i].line, "hotpath-alloc",
                         "allocation call '" + s + "' in a hot-path file");
            continue;
        }
        if (kGrowthMembers.count(s) && isMemberAccess(t, i) &&
            isPunct(t, i + 1, "(")) {
            addViolation(
                in, out, t[i].line, "hotpath-alloc",
                "container growth call '." + s +
                    "()' in a hot-path file; prove it cannot allocate "
                    "(fixed-capacity or reserved) and suppress with a "
                    "reason, or preallocate");
        }
    }
}

// ------------------------------------------------------------------
// signal-safety
// ------------------------------------------------------------------

/** Async-signal-safe functions (POSIX.1 list, the subset plausible in
 *  this codebase) plus value-ish identifiers that look like calls to
 *  a token matcher: casts and common integer type names. */
const std::set<std::string> kSignalSafe = {
    // POSIX async-signal-safe
    "_exit", "_Exit", "abort", "close", "dup", "dup2", "fsync",
    "getpid", "getppid", "kill", "open", "pipe", "raise", "read",
    "sigaction", "sigaddset", "sigdelset", "sigemptyset", "sigfillset",
    "sigismember", "signal", "sigprocmask", "unlink", "waitpid",
    "write",
    // function-style casts / constructions that allocate nothing
    "int", "long", "short", "unsigned", "char", "bool", "size_t",
    "ssize_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t",
    "int16_t", "int32_t", "int64_t", "sig_atomic_t",
};

void
ruleSignalSafety(const FileCheckInput &in, std::vector<Violation> *out)
{
    const Tokens &t = in.lexed->tokens;

    // Handlers: `.sa_handler = name` / `.sa_sigaction = name` and
    // `signal(SIG..., name)`.
    std::set<std::string> handlers;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
        if ((isIdent(t, i, "sa_handler") || isIdent(t, i, "sa_sigaction")) &&
            isPunct(t, i + 1, "=") &&
            t[i + 2].kind == TokKind::Identifier)
            handlers.insert(t[i + 2].text);
        if (isIdent(t, i, "signal") && isPunct(t, i + 1, "(")) {
            const size_t end = skipParens(t, i + 1);
            if (end >= 2 && t[end - 2].kind == TokKind::Identifier &&
                !isIdent(t, end - 2, "SIG_IGN") &&
                !isIdent(t, end - 2, "SIG_DFL"))
                handlers.insert(t[end - 2].text);
        }
    }

    for (const std::string &h : handlers) {
        // Find the definition: `h (...)` followed by `{`.
        for (size_t i = 0; i + 1 < t.size(); ++i) {
            if (!isIdent(t, i, h.c_str()) || !isPunct(t, i + 1, "(") ||
                isMemberAccess(t, i))
                continue;
            size_t j = skipParens(t, i + 1);
            if (!isPunct(t, j, "{"))
                continue;
            // Scan the body for calls.
            int depth = 0;
            for (; j < t.size(); ++j) {
                if (isPunct(t, j, "{"))
                    ++depth;
                else if (isPunct(t, j, "}")) {
                    if (--depth == 0)
                        break;
                } else if (t[j].kind == TokKind::Identifier &&
                           isPunct(t, j + 1, "(") &&
                           !kSignalSafe.count(t[j].text)) {
                    addViolation(
                        in, out, t[j].line, "signal-safety",
                        "'" + t[j].text + "' called inside signal "
                        "handler '" + h + "' is not on the "
                        "async-signal-safe list");
                }
            }
            break;
        }
    }
}

// ------------------------------------------------------------------
// include-guard
// ------------------------------------------------------------------

void
ruleIncludeGuard(const FileCheckInput &in, std::vector<Violation> *out)
{
    if (!in.isHeader)
        return;
    const Tokens &t = in.lexed->tokens;
    if (t.empty())
        return;
    // `#pragma once` anywhere before the first non-directive token,
    // or the classic `#ifndef X` / `#define X` opening pair.
    if (isPunct(t, 0, "#") && isIdent(t, 1, "pragma") &&
        isIdent(t, 2, "once"))
        return;
    if (isPunct(t, 0, "#") && isIdent(t, 1, "ifndef") && t.size() > 5 &&
        t[2].kind == TokKind::Identifier && isPunct(t, 3, "#") &&
        isIdent(t, 4, "define") && t[5].kind == TokKind::Identifier &&
        t[5].text == t[2].text)
        return;
    addViolation(in, out, 1, "include-guard",
                 "header does not open with an #ifndef/#define guard "
                 "or #pragma once");
}

// ------------------------------------------------------------------
// namespace-hygiene
// ------------------------------------------------------------------

void
ruleNamespaceHygiene(const FileCheckInput &in, std::vector<Violation> *out)
{
    const Tokens &t = in.lexed->tokens;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
        if (!isIdent(t, i, "using") || !isIdent(t, i + 1, "namespace"))
            continue;
        if (isIdent(t, i + 2, "std")) {
            addViolation(in, out, t[i].line, "namespace-hygiene",
                         "'using namespace std' is banned everywhere");
        } else if (in.isHeader) {
            addViolation(in, out, t[i].line, "namespace-hygiene",
                         "'using namespace' at header scope leaks "
                         "into every includer");
        }
    }
}

// ------------------------------------------------------------------
// stray-output
// ------------------------------------------------------------------

const std::set<std::string> kStdoutCalls = {
    "printf", "puts", "putchar", "vprintf",
};

const std::set<std::string> kStreamCalls = {
    "fprintf", "fputs", "fputc", "fwrite", "vfprintf",
};

void
ruleStrayOutput(const FileCheckInput &in, std::vector<Violation> *out)
{
    const Tokens &t = in.lexed->tokens;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier)
            continue;
        const std::string &s = t[i].text;
        if (s == "cout") {
            addViolation(in, out, t[i].line, "stray-output",
                         "std::cout in a file not annotated 'output'");
            continue;
        }
        if (isMemberAccess(t, i) || !isPunct(t, i + 1, "("))
            continue;
        if (kStdoutCalls.count(s)) {
            addViolation(in, out, t[i].line, "stray-output",
                         "'" + s + "' writes to stdout in a file not "
                         "annotated 'output'");
        } else if (kStreamCalls.count(s) &&
                   argListMentions(t, i + 1, "stdout")) {
            // The stream argument's position varies (first for
            // fprintf, last for fputs/fwrite); any stdout in the
            // argument list means stdout output either way.
            addViolation(in, out, t[i].line, "stray-output",
                         "'" + s + "(..., stdout)' in a file not "
                         "annotated 'output'");
        }
    }
}

// ------------------------------------------------------------------
// Suppressions
// ------------------------------------------------------------------

struct Suppression {
    int line = 0;
    std::string rule;
};

/** Parse suppression comments: an `allow(<rule>) reason` clause after
 *  the conopt-lint marker. Malformed ones (unknown rule, missing
 *  reason) become `suppression` violations — the one rule that can
 *  never be disabled or suppressed. */
std::vector<Suppression>
collectSuppressions(const FileCheckInput &in, std::vector<Violation> *out)
{
    std::vector<Suppression> sups;
    for (const Comment &c : in.lexed->comments) {
        const size_t at = c.text.find("conopt-lint:");
        if (at == std::string::npos)
            continue;
        std::string rest = c.text.substr(at + 12);
        const auto firstNonSpace = rest.find_first_not_of(" \t");
        rest = (firstNonSpace == std::string::npos)
                   ? std::string()
                   : rest.substr(firstNonSpace);
        if (rest.rfind("allow(", 0) != 0) {
            addViolation(in, out, c.line, "suppression",
                         "malformed conopt-lint comment; expected "
                         "'conopt-lint: allow(<rule>) reason'");
            continue;
        }
        const size_t close = rest.find(')');
        if (close == std::string::npos) {
            addViolation(in, out, c.line, "suppression",
                         "unterminated allow(...) in conopt-lint "
                         "comment");
            continue;
        }
        const std::string rule = rest.substr(6, close - 6);
        if (!isKnownRule(rule) || rule == "suppression") {
            addViolation(in, out, c.line, "suppression",
                         "allow(" + rule + ") names " +
                             (rule == "suppression"
                                  ? std::string("a rule that cannot be "
                                                "suppressed")
                                  : std::string("an unknown rule")));
            continue;
        }
        std::string reason = rest.substr(close + 1);
        const auto r0 = reason.find_first_not_of(" \t\r\n");
        if (r0 == std::string::npos) {
            addViolation(in, out, c.line, "suppression",
                         "allow(" + rule + ") carries no reason; a "
                         "suppression must say why the pattern is safe");
            continue;
        }
        sups.push_back({c.line, rule});
    }
    return sups;
}

} // namespace

const std::vector<std::string> &
allRuleNames()
{
    static const std::vector<std::string> names = {
        "determinism",       "hotpath-alloc",  "include-guard",
        "namespace-hygiene", "signal-safety",  "stray-output",
        "suppression",       "unordered-iter",
    };
    return names;
}

bool
isKnownRule(const std::string &rule)
{
    const auto &names = allRuleNames();
    return std::find(names.begin(), names.end(), rule) != names.end();
}

void
runRules(const FileCheckInput &in, std::vector<Violation> *out)
{
    std::vector<Violation> found;
    const auto enabled = [&](const char *rule) {
        return !in.config.disabled.count(rule);
    };

    if (enabled("determinism"))
        ruleDeterminism(in, &found);
    if (enabled("unordered-iter") && in.config.serialize)
        ruleUnorderedIter(in, &found);
    if (enabled("hotpath-alloc") && in.config.hot)
        ruleHotpathAlloc(in, &found);
    if (enabled("signal-safety"))
        ruleSignalSafety(in, &found);
    if (enabled("include-guard"))
        ruleIncludeGuard(in, &found);
    if (enabled("namespace-hygiene"))
        ruleNamespaceHygiene(in, &found);
    if (enabled("stray-output") && !in.config.output)
        ruleStrayOutput(in, &found);

    // Suppression parsing always runs: malformed suppressions are
    // violations in their own right and are appended directly.
    const std::vector<Suppression> sups = collectSuppressions(in, out);

    for (Violation &v : found) {
        const bool suppressed =
            std::any_of(sups.begin(), sups.end(), [&](const Suppression &s) {
                return s.rule == v.rule &&
                       (s.line == v.line || s.line + 1 == v.line);
            });
        if (!suppressed)
            out->push_back(std::move(v));
    }

    std::sort(out->begin(), out->end(),
              [](const Violation &a, const Violation &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
}

} // namespace conopt::lint
