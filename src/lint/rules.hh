/**
 * @file
 * Project-invariant rules for conopt_lint.
 *
 * Every rule enforces something the repo's bit-exact gate depends on
 * but the compiler cannot check:
 *
 *   determinism        no wall-clock / rand / pointer-value formatting
 *                      in code that produces simulated results
 *   unordered-iter     no iteration over unordered containers in files
 *                      that serialize artifacts or compute geomeans
 *                      (iteration order would leak into output bytes)
 *   hotpath-alloc      no new/malloc/container-growth calls in files
 *                      annotated `hot` (the SimSession warm path is
 *                      pinned allocation-free by tests/test_session.cc)
 *   signal-safety      only async-signal-safe calls inside functions
 *                      installed as sigaction handlers
 *   include-guard      headers carry a classic #ifndef guard (or
 *                      #pragma once)
 *   namespace-hygiene  no `using namespace` at header scope, no
 *                      `using namespace std` anywhere
 *   stray-output       no printf/std::cout/fprintf(stdout,...) outside
 *                      files annotated `output` (stdout bytes are part
 *                      of the artifact/report contract)
 *   suppression        every inline suppression names a known rule and
 *                      carries a non-empty reason
 *
 * Rules are token-pattern matchers over lexer.hh output — deliberately
 * simple, reviewable, and fast; the false-positive escape hatch is the
 * inline suppression syntax, which costs a written reason:
 *
 *   code();  // conopt-lint: allow(hotpath-alloc) <why this is safe>
 *
 * A suppression comment on its own line covers the following line.
 */

#ifndef CONOPT_LINT_RULES_HH
#define CONOPT_LINT_RULES_HH

#include <set>
#include <string>
#include <vector>

#include "src/lint/lexer.hh"

namespace conopt::lint {

/** Effective per-file rule configuration (defaults + the merged
 *  `.conopt-lint` directives from every ancestor directory). */
struct RuleConfig {
    std::set<std::string> disabled;  ///< rule names switched off
    bool hot = false;        ///< file is hot-path annotated
    bool serialize = false;  ///< file serializes artifacts / geomeans
    bool output = false;     ///< file legitimately owns stdout
};

/** One finding, reported as file:line: [rule] message. */
struct Violation {
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

/** Everything a rule needs to know about one file. */
struct FileCheckInput {
    std::string displayPath;  ///< path used in messages
    std::string baseName;     ///< final path component
    bool isHeader = false;    ///< .hh/.h/.hpp
    RuleConfig config;
    const LexedFile *lexed = nullptr;
};

/** All rule names, sorted; `suppression` is always-on and not
 *  disableable (a broken suppression must never hide itself). */
const std::vector<std::string> &allRuleNames();

/** True iff @p rule is a known rule name. */
bool isKnownRule(const std::string &rule);

/**
 * Run every enabled rule over one lexed file and append findings to
 * @p out, after applying (and validating) inline suppressions.
 */
void runRules(const FileCheckInput &in, std::vector<Violation> *out);

} // namespace conopt::lint

#endif // CONOPT_LINT_RULES_HH
