#include "src/lint/lexer.hh"

#include <cctype>

namespace conopt::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators we keep together; everything else is
 *  emitted one character at a time. Only the ones the rules care
 *  about matter (`::`, `->`), but keeping the common ones intact
 *  makes token dumps readable. */
bool
isTwoCharPunct(char a, char b)
{
    switch (a) {
      case ':': return b == ':';
      case '-': return b == '>' || b == '-' || b == '=';
      case '+': return b == '+' || b == '=';
      case '<': return b == '<' || b == '=';
      case '>': return b == '>' || b == '=';
      case '=': return b == '=';
      case '!': return b == '=';
      case '&': return b == '&' || b == '=';
      case '|': return b == '|' || b == '=';
      default: return false;
    }
}

} // namespace

LexedFile
lex(std::string_view src)
{
    LexedFile out;
    out.tokens.reserve(src.size() / 6 + 8);
    size_t i = 0;
    const size_t n = src.size();
    int line = 1;

    const auto advance = [&](size_t count) {
        for (size_t k = 0; k < count && i < n; ++k, ++i)
            if (src[i] == '\n')
                ++line;
    };

    while (i < n) {
        const char c = src[i];

        // Whitespace.
        if (c == '\n' || c == ' ' || c == '\t' || c == '\r' ||
            c == '\f' || c == '\v') {
            advance(1);
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const int startLine = line;
            size_t j = i + 2;
            while (j < n && src[j] != '\n')
                ++j;
            out.comments.push_back(
                {std::string(src.substr(i + 2, j - (i + 2))), startLine});
            advance(j - i);
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const int startLine = line;
            size_t j = i + 2;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/'))
                ++j;
            const size_t end = (j + 1 < n) ? j : n;
            out.comments.push_back(
                {std::string(src.substr(i + 2, end - (i + 2))), startLine});
            advance((j + 1 < n ? j + 2 : n) - i);
            continue;
        }

        // Raw string literal: R"tag( ... )tag". Also uR/u8R/LR
        // prefixes; the prefix characters were already consumed as an
        // identifier if separated, so handle the common joined form.
        if ((c == 'R' || c == 'u' || c == 'U' || c == 'L') &&
            isIdentStart(c)) {
            // Look ahead for a raw-string opener within the prefix.
            size_t j = i;
            while (j < n && (src[j] == 'u' || src[j] == 'U' ||
                             src[j] == 'L' || src[j] == '8'))
                ++j;
            if (j < n && src[j] == 'R' && j + 1 < n && src[j + 1] == '"') {
                const int startLine = line;
                size_t d = j + 2;  // delimiter start
                while (d < n && src[d] != '(')
                    ++d;
                const std::string delim =
                    ")" + std::string(src.substr(j + 2, d - (j + 2))) + "\"";
                const size_t bodyStart = (d < n) ? d + 1 : n;
                const size_t close = src.find(delim, bodyStart);
                const size_t bodyEnd =
                    (close == std::string_view::npos) ? n : close;
                out.tokens.push_back(
                    {TokKind::String,
                     std::string(src.substr(bodyStart, bodyEnd - bodyStart)),
                     startLine});
                const size_t next = (close == std::string_view::npos)
                                        ? n
                                        : close + delim.size();
                advance(next - i);
                continue;
            }
            // Fall through: plain identifier starting with R/u/U/L.
        }

        // Identifier / keyword.
        if (isIdentStart(c)) {
            size_t j = i + 1;
            while (j < n && isIdentCont(src[j]))
                ++j;
            out.tokens.push_back(
                {TokKind::Identifier, std::string(src.substr(i, j - i)),
                 line});
            advance(j - i);
            continue;
        }

        // Number (we do not need exact C++ numeric grammar; consume
        // the maximal [0-9a-zA-Z_.'+-after-exponent] run).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            size_t j = i + 1;
            while (j < n &&
                   (isIdentCont(src[j]) || src[j] == '.' || src[j] == '\'' ||
                    ((src[j] == '+' || src[j] == '-') &&
                     (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                      src[j - 1] == 'p' || src[j - 1] == 'P'))))
                ++j;
            out.tokens.push_back(
                {TokKind::Number, std::string(src.substr(i, j - i)), line});
            advance(j - i);
            continue;
        }

        // Ordinary string literal.
        if (c == '"') {
            const int startLine = line;
            size_t j = i + 1;
            while (j < n && src[j] != '"') {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;  // skip escaped char (incl. \")
                ++j;
            }
            out.tokens.push_back(
                {TokKind::String, std::string(src.substr(i + 1, j - (i + 1))),
                 startLine});
            advance((j < n ? j + 1 : n) - i);
            continue;
        }

        // Character literal. Distinguish from digit separators: a '
        // reaches here only outside a number, so it always opens one.
        if (c == '\'') {
            const int startLine = line;
            size_t j = i + 1;
            while (j < n && src[j] != '\'') {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            out.tokens.push_back(
                {TokKind::CharLit,
                 std::string(src.substr(i + 1, j - (i + 1))), startLine});
            advance((j < n ? j + 1 : n) - i);
            continue;
        }

        // Punctuation.
        if (i + 1 < n && isTwoCharPunct(c, src[i + 1])) {
            out.tokens.push_back(
                {TokKind::Punct, std::string(src.substr(i, 2)), line});
            advance(2);
            continue;
        }
        out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        advance(1);
    }

    out.lineCount = line;
    return out;
}

} // namespace conopt::lint
