#include "src/lint/lint.hh"

#include <fnmatch.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "src/lint/lexer.hh"

namespace fs = std::filesystem;

namespace conopt::lint {

namespace {

/** One parsed `.conopt-lint` directive. */
struct Directive {
    enum Kind { Disable, Enable, Hot, Serialize, Output } kind;
    std::string arg;
};

/** Parsed config file, cached per directory (an absent file is an
 *  empty directive list). */
struct DirConfig {
    bool parsed = false;
    std::vector<Directive> directives;
    std::string error;
};

std::map<std::string, DirConfig> &
dirConfigCache()
{
    static std::map<std::string, DirConfig> cache;
    return cache;
}

const DirConfig &
loadDirConfig(const fs::path &dir)
{
    const std::string key = dir.string();
    auto [it, inserted] = dirConfigCache().try_emplace(key);
    DirConfig &cfg = it->second;
    if (cfg.parsed)
        return cfg;
    cfg.parsed = true;

    std::ifstream in(dir / ".conopt-lint");
    if (!in)
        return cfg;
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string word, arg;
        if (!(ls >> word))
            continue;
        ls >> arg;
        const auto fail = [&](const std::string &why) {
            cfg.error = (dir / ".conopt-lint").string() + ":" +
                        std::to_string(lineNo) + ": " + why;
        };
        if (arg.empty()) {
            fail("directive '" + word + "' needs an argument");
            return cfg;
        }
        if (word == "disable" || word == "enable") {
            if (!isKnownRule(arg)) {
                fail("unknown rule '" + arg + "'");
                return cfg;
            }
            if (arg == "suppression") {
                fail("rule 'suppression' cannot be disabled");
                return cfg;
            }
            cfg.directives.push_back(
                {word == "disable" ? Directive::Disable : Directive::Enable,
                 arg});
        } else if (word == "hot") {
            cfg.directives.push_back({Directive::Hot, arg});
        } else if (word == "serialize") {
            cfg.directives.push_back({Directive::Serialize, arg});
        } else if (word == "output") {
            cfg.directives.push_back({Directive::Output, arg});
        } else {
            fail("unknown directive '" + word + "'");
            return cfg;
        }
    }
    return cfg;
}

bool
globMatches(const std::string &glob, const std::string &baseName)
{
    return ::fnmatch(glob.c_str(), baseName.c_str(), 0) == 0;
}

bool
isHeaderPath(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".h" || ext == ".hpp";
}

bool
isSourcePath(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || isHeaderPath(p);
}

} // namespace

std::vector<Violation>
lintSource(const std::string &displayPath, const std::string &source,
           const RuleConfig &config)
{
    const LexedFile lexed = lex(source);
    FileCheckInput in;
    in.displayPath = displayPath;
    in.baseName = fs::path(displayPath).filename().string();
    in.isHeader = isHeaderPath(fs::path(displayPath));
    in.config = config;
    in.lexed = &lexed;
    std::vector<Violation> out;
    runRules(in, &out);
    return out;
}

bool
effectiveConfig(const std::string &filePath, RuleConfig *out, std::string *err)
{
    const fs::path abs =
        fs::absolute(fs::path(filePath)).lexically_normal();
    const std::string baseName = abs.filename().string();

    // Ancestors, outermost first, so inner directives override.
    std::vector<fs::path> dirs;
    for (fs::path d = abs.parent_path();; d = d.parent_path()) {
        dirs.push_back(d);
        if (d == d.root_path() || d.parent_path() == d)
            break;
    }
    std::reverse(dirs.begin(), dirs.end());

    *out = RuleConfig{};
    for (const fs::path &d : dirs) {
        const DirConfig &cfg = loadDirConfig(d);
        if (!cfg.error.empty()) {
            *err = cfg.error;
            return false;
        }
        for (const Directive &dir : cfg.directives) {
            switch (dir.kind) {
              case Directive::Disable:
                out->disabled.insert(dir.arg);
                break;
              case Directive::Enable:
                out->disabled.erase(dir.arg);
                break;
              case Directive::Hot:
                if (globMatches(dir.arg, baseName))
                    out->hot = true;
                break;
              case Directive::Serialize:
                if (globMatches(dir.arg, baseName))
                    out->serialize = true;
                break;
              case Directive::Output:
                if (globMatches(dir.arg, baseName))
                    out->output = true;
                break;
            }
        }
    }
    return true;
}

int
lintMain(const std::vector<std::string> &args)
{
    std::vector<std::string> paths;
    for (const std::string &a : args) {
        if (a == "--list-rules") {
            for (const std::string &r : allRuleNames())
                std::printf("%s\n", r.c_str());
            return 0;
        }
        if (a == "--help" || a == "-h" || (!a.empty() && a[0] == '-')) {
            std::fprintf(stderr,
                         "usage: conopt_lint [--list-rules] "
                         "<file-or-dir>...\n"
                         "exit: 0 clean, 1 violations, 2 error\n");
            return a == "--help" || a == "-h" ? 0 : 2;
        }
        paths.push_back(a);
    }
    if (paths.empty()) {
        std::fprintf(stderr, "conopt_lint: no paths given\n");
        return 2;
    }

    // Expand directories; sort for deterministic report order.
    std::vector<fs::path> files;
    std::error_code ec;
    for (const std::string &p : paths) {
        const fs::path path(p);
        if (fs::is_directory(path, ec)) {
            auto it = fs::recursive_directory_iterator(
                path, fs::directory_options::skip_permission_denied, ec);
            if (ec) {
                std::fprintf(stderr, "conopt_lint: cannot walk %s: %s\n",
                             p.c_str(), ec.message().c_str());
                return 2;
            }
            for (auto end = fs::end(it); it != end; ++it) {
                const std::string name = it->path().filename().string();
                if (it->is_directory(ec) &&
                    (name.rfind("build", 0) == 0 ||
                     (!name.empty() && name[0] == '.'))) {
                    it.disable_recursion_pending();
                    continue;
                }
                if (it->is_regular_file(ec) && isSourcePath(it->path()))
                    files.push_back(it->path());
            }
        } else if (fs::is_regular_file(path, ec)) {
            files.push_back(path);
        } else {
            std::fprintf(stderr, "conopt_lint: no such file or directory: "
                         "%s\n", p.c_str());
            return 2;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Violation> violations;
    for (const fs::path &f : files) {
        std::ifstream in(f, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "conopt_lint: cannot read %s\n",
                         f.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();

        RuleConfig config;
        std::string err;
        if (!effectiveConfig(f.string(), &config, &err)) {
            std::fprintf(stderr, "conopt_lint: %s\n", err.c_str());
            return 2;
        }
        for (Violation &v : lintSource(f.string(), ss.str(), config))
            violations.push_back(std::move(v));
    }

    for (const Violation &v : violations)
        std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                    v.rule.c_str(), v.message.c_str());
    if (violations.empty()) {
        std::fprintf(stderr, "conopt_lint: OK (%zu files)\n", files.size());
        return 0;
    }
    std::fprintf(stderr, "conopt_lint: %zu violation(s) in %zu file(s)\n",
                 violations.size(), files.size());
    return 1;
}

} // namespace conopt::lint
