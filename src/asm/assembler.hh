/**
 * @file
 * A label-based assembler for building programs in C++.
 *
 * Usage:
 * @code
 *   Assembler a;
 *   a.li(R1, 100);                 // loop counter
 *   a.label("loop");
 *   a.addq(R2, 1, R2);
 *   a.subq(R1, 1, R1);
 *   a.bne(R1, "loop");
 *   a.halt();
 *   Program p = a.finish();
 * @endcode
 *
 * Forward references to labels are fixed up in finish(). Data is placed
 * with a bump allocator starting at dataBase; use allocQuads()/allocBytes()
 * to reserve and initialize regions and pass their addresses to li().
 */

#ifndef CONOPT_ASM_ASSEMBLER_HH
#define CONOPT_ASM_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/asm/program.hh"
#include "src/isa/isa.hh"

namespace conopt::assembler {

/** Integer register names for readable workload code. */
enum Reg : isa::RegIndex
{
    R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12, R13, R14, R15,
    R16, R17, R18, R19, R20, R21, R22, R23, R24, R25, R26, R27, R28, R29,
    R30,
    ZERO = isa::zeroReg,
    /** Conventional roles. */
    SP = R30,  ///< stack pointer
    RA = R26,  ///< return address (link) register
};

/** Floating-point register names. */
enum FReg : isa::RegIndex
{
    F0, F1, F2, F3, F4, F5, F6, F7, F8, F9, F10, F11, F12, F13, F14, F15,
    F16, F17, F18, F19, F20, F21, F22, F23, F24, F25, F26, F27, F28, F29,
    F30, F31
};

/**
 * Builds a Program instruction by instruction. All branch emitters accept
 * either a label name (resolved at finish()) or an absolute byte target.
 */
class Assembler
{
  public:
    Assembler();

    // ------------------------------------------------------------------
    // Labels and layout
    // ------------------------------------------------------------------

    /** Bind @p name to the address of the next emitted instruction. */
    void label(const std::string &name);

    /** Byte address that @p name is (or will be) bound to. */
    uint64_t labelAddr(const std::string &name) const;

    /** Byte address of the next emitted instruction. */
    uint64_t here() const;

    // ------------------------------------------------------------------
    // Data segment
    // ------------------------------------------------------------------

    /** Reserve @p count zero-initialized 8-byte words; returns address. */
    uint64_t allocQuads(size_t count, uint64_t align = 8);

    /** Place @p values as consecutive 8-byte words; returns address. */
    uint64_t dataQuads(const std::vector<uint64_t> &values);

    /** Place doubles as consecutive 8-byte words; returns address. */
    uint64_t dataDoubles(const std::vector<double> &values);

    /** Place raw bytes; returns address. */
    uint64_t dataBytes(const std::vector<uint8_t> &bytes,
                       uint64_t align = 8);

    /** Overwrite one already-allocated quad. */
    void pokeQuad(uint64_t addr, uint64_t value);

    /**
     * Record that the quad at @p addr must hold the address of @p label
     * (resolved at finish()). Used to build jump/function-pointer tables.
     */
    void dataLabel(uint64_t addr, const std::string &label);

    // ------------------------------------------------------------------
    // Integer ALU (register or immediate second operand)
    // ------------------------------------------------------------------

    void addq(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::ADDQ, a, b, c); }
    void addq(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::ADDQ, a, i, c); }
    void subq(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::SUBQ, a, b, c); }
    void subq(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::SUBQ, a, i, c); }
    void and_(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::AND, a, b, c); }
    void and_(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::AND, a, i, c); }
    void bis(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::BIS, a, b, c); }
    void bis(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::BIS, a, i, c); }
    void xor_(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::XOR, a, b, c); }
    void xor_(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::XOR, a, i, c); }
    void sll(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::SLL, a, b, c); }
    void sll(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::SLL, a, i, c); }
    void srl(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::SRL, a, b, c); }
    void srl(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::SRL, a, i, c); }
    void sra(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::SRA, a, b, c); }
    void sra(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::SRA, a, i, c); }
    void cmpeq(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::CMPEQ, a, b, c); }
    void cmpeq(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::CMPEQ, a, i, c); }
    void cmplt(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::CMPLT, a, b, c); }
    void cmplt(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::CMPLT, a, i, c); }
    void cmple(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::CMPLE, a, b, c); }
    void cmple(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::CMPLE, a, i, c); }
    void cmpult(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::CMPULT, a, b, c); }
    void cmpult(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::CMPULT, a, i, c); }
    void cmpule(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::CMPULE, a, b, c); }
    void cmpule(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::CMPULE, a, i, c); }
    void lda(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::LDA, a, i, c); }
    void addl(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::ADDL, a, b, c); }
    void addl(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::ADDL, a, i, c); }
    void subl(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::SUBL, a, b, c); }
    void subl(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::SUBL, a, i, c); }
    void sextl(Reg b, Reg c) { emitRR(isa::Opcode::SEXTL, ZERO, b, c); }
    void mulq(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::MULQ, a, b, c); }
    void mulq(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::MULQ, a, i, c); }
    void divq(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::DIVQ, a, b, c); }
    void divq(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::DIVQ, a, i, c); }
    void remq(Reg a, Reg b, Reg c) { emitRR(isa::Opcode::REMQ, a, b, c); }
    void remq(Reg a, int64_t i, Reg c) { emitRI(isa::Opcode::REMQ, a, i, c); }

    // Pseudo-ops.
    /** Load a 64-bit immediate (single LDA off the zero register). */
    void li(Reg c, int64_t value) { emitRI(isa::Opcode::LDA, ZERO, value, c); }
    /** Register move (ADDQ a, 0 -> c; eliminated by reassociation). */
    void mov(Reg a, Reg c) { emitRI(isa::Opcode::ADDQ, a, 0, c); }
    void nop() { emit({isa::Opcode::NOP}); }

    // ------------------------------------------------------------------
    // Floating point
    // ------------------------------------------------------------------

    void addt(FReg a, FReg b, FReg c) { emitFp(isa::Opcode::ADDT, a, b, c); }
    void subt(FReg a, FReg b, FReg c) { emitFp(isa::Opcode::SUBT, a, b, c); }
    void mult(FReg a, FReg b, FReg c) { emitFp(isa::Opcode::MULT, a, b, c); }
    void divt(FReg a, FReg b, FReg c) { emitFp(isa::Opcode::DIVT, a, b, c); }
    void sqrtt(FReg b, FReg c) { emitFp(isa::Opcode::SQRTT, F31, b, c); }
    void cmptlt(FReg a, FReg b, FReg c) { emitFp(isa::Opcode::CMPTLT, a, b, c); }
    void cmpteq(FReg a, FReg b, FReg c) { emitFp(isa::Opcode::CMPTEQ, a, b, c); }
    void fmov(FReg b, FReg c) { emitFp(isa::Opcode::FMOV, F31, b, c); }

    /** Integer ra -> fp rc. */
    void
    cvtqt(Reg a, FReg c)
    {
        isa::Instruction i;
        i.op = isa::Opcode::CVTQT;
        i.ra = a;
        i.rc = c;
        emit(i);
    }

    /** fp rb -> integer rc. */
    void
    cvttq(FReg b, Reg c)
    {
        isa::Instruction i;
        i.op = isa::Opcode::CVTTQ;
        i.rb = b;
        i.rc = c;
        emit(i);
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    void ldq(Reg c, int64_t off, Reg base) { emitMem(isa::Opcode::LDQ, c, off, base); }
    void ldl(Reg c, int64_t off, Reg base) { emitMem(isa::Opcode::LDL, c, off, base); }
    void ldbu(Reg c, int64_t off, Reg base) { emitMem(isa::Opcode::LDBU, c, off, base); }
    void stq(Reg c, int64_t off, Reg base) { emitMem(isa::Opcode::STQ, c, off, base); }
    void stl(Reg c, int64_t off, Reg base) { emitMem(isa::Opcode::STL, c, off, base); }
    void stb(Reg c, int64_t off, Reg base) { emitMem(isa::Opcode::STB, c, off, base); }
    void ldt(FReg c, int64_t off, Reg base) { emitMem(isa::Opcode::LDT, c, off, base); }
    void stt(FReg c, int64_t off, Reg base) { emitMem(isa::Opcode::STT, c, off, base); }

    // ------------------------------------------------------------------
    // Control
    // ------------------------------------------------------------------

    void beq(Reg a, const std::string &l) { emitBr(isa::Opcode::BEQ, a, l); }
    void bne(Reg a, const std::string &l) { emitBr(isa::Opcode::BNE, a, l); }
    void blt(Reg a, const std::string &l) { emitBr(isa::Opcode::BLT, a, l); }
    void bge(Reg a, const std::string &l) { emitBr(isa::Opcode::BGE, a, l); }
    void ble(Reg a, const std::string &l) { emitBr(isa::Opcode::BLE, a, l); }
    void bgt(Reg a, const std::string &l) { emitBr(isa::Opcode::BGT, a, l); }
    void fbeq(FReg a, const std::string &l) { emitBr(isa::Opcode::FBEQ, a, l); }
    void fbne(FReg a, const std::string &l) { emitBr(isa::Opcode::FBNE, a, l); }
    void br(const std::string &l) { emitBr(isa::Opcode::BR, ZERO, l); }

    /** Direct call: link register gets the return address. */
    void
    bsr(Reg link, const std::string &l)
    {
        isa::Instruction i;
        i.op = isa::Opcode::BSR;
        i.rc = link;
        emit(i);
        fixups_.push_back({code_.size() - 1, l});
    }

    void
    jmp(Reg a)
    {
        isa::Instruction i;
        i.op = isa::Opcode::JMP;
        i.ra = a;
        emit(i);
    }

    void
    jsr(Reg link, Reg a)
    {
        isa::Instruction i;
        i.op = isa::Opcode::JSR;
        i.ra = a;
        i.rc = link;
        emit(i);
    }

    void
    ret(Reg a = RA)
    {
        isa::Instruction i;
        i.op = isa::Opcode::RET;
        i.ra = a;
        emit(i);
    }

    void halt() { emit({isa::Opcode::HALT}); }

    // ------------------------------------------------------------------

    /** Resolve fixups and return the finished program. */
    Program finish();

    /** Number of instructions emitted so far. */
    size_t instCount() const { return code_.size(); }

  private:
    void emit(isa::Instruction inst);
    void emitRR(isa::Opcode op, isa::RegIndex a, isa::RegIndex b,
                isa::RegIndex c);
    void emitRI(isa::Opcode op, isa::RegIndex a, int64_t imm,
                isa::RegIndex c);
    void emitFp(isa::Opcode op, isa::RegIndex a, isa::RegIndex b,
                isa::RegIndex c);
    void emitMem(isa::Opcode op, isa::RegIndex data, int64_t off,
                 isa::RegIndex base);
    void emitBr(isa::Opcode op, isa::RegIndex a, const std::string &l);

    struct Fixup
    {
        size_t instIndex;
        std::string labelName;
    };

    struct DataFixup
    {
        uint64_t addr;
        std::string labelName;
    };

    std::vector<isa::Instruction> code_;
    std::map<std::string, uint64_t> labels_;
    std::vector<Fixup> fixups_;
    std::vector<DataFixup> dataFixups_;
    std::map<uint64_t, std::vector<uint8_t>> dataChunks_;
    uint64_t dataCursor_;
    bool finished_ = false;
};

} // namespace conopt::assembler

#endif // CONOPT_ASM_ASSEMBLER_HH
