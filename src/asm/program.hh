/**
 * @file
 * An assembled program: code, initialized data segments, and the layout
 * constants shared by the assembler and the emulator.
 */

#ifndef CONOPT_ASM_PROGRAM_HH
#define CONOPT_ASM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <vector>

#include "src/isa/isa.hh"

namespace conopt::assembler {

/** Default base address of the code segment. */
constexpr uint64_t codeBase = 0x10000;
/** Default base address of the static data segment. */
constexpr uint64_t dataBase = 0x1000000;
/** Default initial stack pointer (stack grows down). */
constexpr uint64_t stackTop = 0x8000000;

/** A contiguous block of initialized memory. */
struct DataSegment
{
    uint64_t addr;
    std::vector<uint8_t> bytes;
};

/** A complete program ready to run on the emulator. */
struct Program
{
    std::vector<isa::Instruction> code;
    uint64_t entryPc = codeBase;
    std::vector<DataSegment> data;

    /** Static instruction count. */
    size_t size() const { return code.size(); }

    /** Byte address of instruction index @p idx. */
    uint64_t
    pcOf(size_t idx) const
    {
        return codeBase + idx * isa::instBytes;
    }

    /** True if @p pc addresses an instruction in this program. */
    bool
    contains(uint64_t pc) const
    {
        return pc >= codeBase && pc < codeBase + code.size() * isa::instBytes
            && (pc - codeBase) % isa::instBytes == 0;
    }

    /** The instruction at byte address @p pc. */
    const isa::Instruction &
    at(uint64_t pc) const
    {
        return code[(pc - codeBase) / isa::instBytes];
    }
};

} // namespace conopt::assembler

#endif // CONOPT_ASM_PROGRAM_HH
