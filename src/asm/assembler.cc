#include "src/asm/assembler.hh"

#include <bit>
#include <cstring>

#include "src/util/logging.hh"

namespace conopt::assembler {

Assembler::Assembler() : dataCursor_(dataBase) {}

void
Assembler::label(const std::string &name)
{
    conopt_assert(!finished_);
    auto [it, inserted] = labels_.emplace(name, here());
    if (!inserted)
        conopt_fatal("duplicate label '%s'", name.c_str());
}

uint64_t
Assembler::labelAddr(const std::string &name) const
{
    auto it = labels_.find(name);
    if (it == labels_.end())
        conopt_fatal("unknown label '%s'", name.c_str());
    return it->second;
}

uint64_t
Assembler::here() const
{
    return codeBase + code_.size() * isa::instBytes;
}

uint64_t
Assembler::allocQuads(size_t count, uint64_t align)
{
    conopt_assert(align != 0 && (align & (align - 1)) == 0);
    dataCursor_ = (dataCursor_ + align - 1) & ~(align - 1);
    const uint64_t addr = dataCursor_;
    dataChunks_[addr] = std::vector<uint8_t>(count * 8, 0);
    dataCursor_ += count * 8;
    return addr;
}

uint64_t
Assembler::dataQuads(const std::vector<uint64_t> &values)
{
    const uint64_t addr = allocQuads(values.size());
    auto &bytes = dataChunks_[addr];
    for (size_t i = 0; i < values.size(); ++i)
        std::memcpy(bytes.data() + i * 8, &values[i], 8);
    return addr;
}

uint64_t
Assembler::dataDoubles(const std::vector<double> &values)
{
    std::vector<uint64_t> quads;
    quads.reserve(values.size());
    for (double v : values)
        quads.push_back(std::bit_cast<uint64_t>(v));
    return dataQuads(quads);
}

uint64_t
Assembler::dataBytes(const std::vector<uint8_t> &bytes, uint64_t align)
{
    conopt_assert(align != 0 && (align & (align - 1)) == 0);
    dataCursor_ = (dataCursor_ + align - 1) & ~(align - 1);
    const uint64_t addr = dataCursor_;
    dataChunks_[addr] = bytes;
    dataCursor_ += bytes.size();
    return addr;
}

void
Assembler::pokeQuad(uint64_t addr, uint64_t value)
{
    for (auto &[base, bytes] : dataChunks_) {
        if (addr >= base && addr + 8 <= base + bytes.size()) {
            std::memcpy(bytes.data() + (addr - base), &value, 8);
            return;
        }
    }
    conopt_fatal("pokeQuad at 0x%llx outside any data chunk",
                 static_cast<unsigned long long>(addr));
}

void
Assembler::dataLabel(uint64_t addr, const std::string &label)
{
    dataFixups_.push_back({addr, label});
}

void
Assembler::emit(isa::Instruction inst)
{
    conopt_assert(!finished_);
    code_.push_back(inst);
}

void
Assembler::emitRR(isa::Opcode op, isa::RegIndex a, isa::RegIndex b,
                  isa::RegIndex c)
{
    isa::Instruction i;
    i.op = op;
    i.ra = a;
    i.rb = b;
    i.rc = c;
    emit(i);
}

void
Assembler::emitRI(isa::Opcode op, isa::RegIndex a, int64_t imm,
                  isa::RegIndex c)
{
    isa::Instruction i;
    i.op = op;
    i.ra = a;
    i.useImm = true;
    i.imm = imm;
    i.rc = c;
    emit(i);
}

void
Assembler::emitFp(isa::Opcode op, isa::RegIndex a, isa::RegIndex b,
                  isa::RegIndex c)
{
    isa::Instruction i;
    i.op = op;
    i.ra = a;
    i.rb = b;
    i.rc = c;
    emit(i);
}

void
Assembler::emitMem(isa::Opcode op, isa::RegIndex data, int64_t off,
                   isa::RegIndex base)
{
    isa::Instruction i;
    i.op = op;
    i.ra = base;
    i.rc = data;
    i.imm = off;
    emit(i);
}

void
Assembler::emitBr(isa::Opcode op, isa::RegIndex a, const std::string &l)
{
    isa::Instruction i;
    i.op = op;
    i.ra = a;
    emit(i);
    fixups_.push_back({code_.size() - 1, l});
}

Program
Assembler::finish()
{
    conopt_assert(!finished_);
    finished_ = true;

    for (const Fixup &f : fixups_) {
        auto it = labels_.find(f.labelName);
        if (it == labels_.end())
            conopt_fatal("undefined label '%s'", f.labelName.c_str());
        code_[f.instIndex].imm = static_cast<int64_t>(it->second);
    }

    for (const DataFixup &f : dataFixups_) {
        auto it = labels_.find(f.labelName);
        if (it == labels_.end())
            conopt_fatal("undefined label '%s'", f.labelName.c_str());
        pokeQuad(f.addr, it->second);
    }

    Program p;
    p.code = std::move(code_);
    p.entryPc = codeBase;
    for (auto &[addr, bytes] : dataChunks_)
        p.data.push_back({addr, std::move(bytes)});
    return p;
}

} // namespace conopt::assembler
