/**
 * @file
 * The paper's untoast case study (section 5.2): GSM's
 * Short_term_synthesis_filtering over two 8-entry arrays.
 *
 * "Because the arrays are small enough to fit in the MBC, after the
 * first iteration, all of the array accesses for this function are
 * eliminated, and many of the simple instructions involved in the
 * computation are performed in the optimizer."
 *
 * This example shows the kernel's per-feature breakdown: the full
 * optimizer, then RLE/SF disabled (the dominant contributor here), then
 * feedback only.
 */

#include <cstdio>

#include "src/sim/simulator.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

namespace {

void
report(const char *name, const sim::SimResult &base,
       const sim::SimResult &r)
{
    std::printf("%-22s speedup=%.3f early=%5.1f%% lds-removed=%5.1f%% "
                "addr-gen=%5.1f%%\n",
                name, double(base.stats.cycles) / double(r.stats.cycles),
                100.0 * r.stats.execEarlyFrac(),
                100.0 * r.stats.loadsRemovedFrac(),
                100.0 * r.stats.addrGenFrac());
}

} // namespace

int
main()
{
    const auto &w = workloads::workloadByName("untst");
    const auto program = w.build(w.defaultScale);

    const auto base =
        sim::simulate(program, pipeline::MachineConfig::baseline());
    std::printf("untoast case study: Short_term_synthesis_filtering\n");
    std::printf("---------------------------------------------------\n");
    std::printf("baseline: %s\n\n", base.stats.summary().c_str());

    report("full optimizer", base,
           sim::simulate(program, pipeline::MachineConfig::optimized()));

    auto no_rlesf = core::OptimizerConfig::full();
    no_rlesf.enableRleSf = false;
    report("without RLE/SF", base,
           sim::simulate(program,
                         pipeline::MachineConfig::withOptimizer(
                             no_rlesf)));

    report("feedback only", base,
           sim::simulate(program,
                         pipeline::MachineConfig::withOptimizer(
                             core::OptimizerConfig::feedbackOnly())));

    std::printf("\nThe rrp[8]/v[9] arrays live permanently in the MBC, so\n"
                "nearly every filter load is eliminated; disabling RLE/SF\n"
                "removes most of untoast's gain, matching the paper's\n"
                "explanation of why it tops mediabench.\n");
    return 0;
}
