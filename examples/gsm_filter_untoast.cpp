/**
 * @file
 * The paper's untoast case study (section 5.2): GSM's
 * Short_term_synthesis_filtering over two 8-entry arrays.
 *
 * "Because the arrays are small enough to fit in the MBC, after the
 * first iteration, all of the array accesses for this function are
 * eliminated, and many of the simple instructions involved in the
 * computation are performed in the optimizer."
 *
 * This example shows the kernel's per-feature breakdown -- the full
 * optimizer, then RLE/SF disabled (the dominant contributor here), then
 * feedback only -- all run as one parallel sweep.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/sweep.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

int
main()
{
    const auto &w = workloads::workloadByName("untst");

    sim::SweepSpec spec;
    spec.workload("untst").scale(w.defaultScale);
    spec.config("base", pipeline::MachineConfig::baseline());
    spec.config("full optimizer", pipeline::MachineConfig::optimized());
    auto no_rlesf = core::OptimizerConfig::full();
    no_rlesf.enableRleSf = false;
    spec.config("without RLE/SF",
                pipeline::MachineConfig::withOptimizer(no_rlesf));
    spec.config("feedback only",
                pipeline::MachineConfig::withOptimizer(
                    core::OptimizerConfig::feedbackOnly()));

    sim::SweepRunner runner;
    const auto res = runner.run(spec);

    std::printf("untoast case study: Short_term_synthesis_filtering\n");
    std::printf("---------------------------------------------------\n");
    std::printf("baseline: %s\n\n",
                res.at(sim::SweepSpec::labelFor("untst", "base"))
                    .sim.stats.summary()
                    .c_str());

    for (const char *cfg :
         {"full optimizer", "without RLE/SF", "feedback only"}) {
        const auto &r =
            res.at(sim::SweepSpec::labelFor("untst", cfg));
        std::printf("%-22s speedup=%.3f early=%5.1f%% "
                    "lds-removed=%5.1f%% addr-gen=%5.1f%%\n",
                    cfg, res.speedupOf("untst", cfg, "base"),
                    100.0 * r.sim.stats.execEarlyFrac(),
                    100.0 * r.sim.stats.loadsRemovedFrac(),
                    100.0 * r.sim.stats.addrGenFrac());
    }

    std::printf("\nThe rrp[8]/v[9] arrays live permanently in the MBC, so\n"
                "nearly every filter load is eliminated; disabling RLE/SF\n"
                "removes most of untoast's gain, matching the paper's\n"
                "explanation of why it tops mediabench.\n");
    return 0;
}
