/**
 * @file
 * Design-space exploration with the public API: sweep the optimizer's
 * pipeline-latency, dependence-depth, and feedback-delay knobs for one
 * workload (the paper's sensitivity studies, sections 6.2-6.4, on a
 * single benchmark instead of suite averages).
 *
 * Usage: config_explorer [workload-name]   (default: mcf)
 */

#include <cstdio>
#include <string>

#include "src/sim/simulator.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "mcf";
    const auto &w = workloads::workloadByName(name);
    const auto program = w.build(w.defaultScale);

    const auto base =
        sim::simulate(program, pipeline::MachineConfig::baseline());
    std::printf("config explorer: %s (%s)\n", w.name.c_str(),
                w.fullName.c_str());
    std::printf("baseline: %s\n", base.stats.summary().c_str());

    auto speedup_of = [&](const pipeline::MachineConfig &cfg) {
        const auto r = sim::simulate(program, cfg);
        return double(base.stats.cycles) / double(r.stats.cycles);
    };

    std::printf("\noptimizer latency (fig. 11):\n");
    for (unsigned stages : {0u, 2u, 4u, 6u}) {
        auto oc = core::OptimizerConfig::full();
        oc.extraStages = stages;
        std::printf("  %u extra stages: %.3f\n", stages,
                    speedup_of(pipeline::MachineConfig::withOptimizer(
                        oc)));
    }

    std::printf("\nintra-bundle depth (fig. 10):\n");
    for (unsigned depth : {0u, 1u, 3u}) {
        auto oc = core::OptimizerConfig::full();
        oc.addChainDepth = depth;
        std::printf("  depth %u: %.3f\n", depth,
                    speedup_of(pipeline::MachineConfig::withOptimizer(
                        oc)));
    }

    std::printf("\nvalue-feedback delay (fig. 12):\n");
    for (unsigned d : {0u, 1u, 5u, 10u}) {
        auto cfg = pipeline::MachineConfig::optimized();
        cfg.vfbDelay = d;
        std::printf("  delay %u: %.3f\n", d, speedup_of(cfg));
    }

    std::printf("\nmachine balance (fig. 8):\n");
    std::printf("  fetch-bound + opt: %.3f\n",
                speedup_of(pipeline::MachineConfig::fetchBound(true)));
    std::printf("  exec-bound + opt:  %.3f\n",
                speedup_of(pipeline::MachineConfig::execBound(true)));
    return 0;
}
