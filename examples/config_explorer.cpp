/**
 * @file
 * Design-space exploration with the public API: sweep the optimizer's
 * pipeline-latency, dependence-depth, and feedback-delay knobs for one
 * workload (the paper's sensitivity studies, sections 6.2-6.4, on a
 * single benchmark instead of suite averages).
 *
 * Every variant is one declarative job; the whole exploration runs as a
 * single parallel sweep that assembles the workload program exactly
 * once.
 *
 * Usage: config_explorer [workload-name]   (default: mcf)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/sweep.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "mcf";
    const auto &w = workloads::workloadByName(name);

    sim::SweepSpec spec;
    spec.workload(name).scale(w.defaultScale);
    spec.config("base", pipeline::MachineConfig::baseline());

    std::vector<std::pair<unsigned, std::string>> latency_cols;
    for (unsigned stages : {0u, 2u, 4u, 6u}) {
        auto oc = core::OptimizerConfig::full();
        oc.extraStages = stages;
        const std::string cfg = "stages " + std::to_string(stages);
        spec.config(cfg, pipeline::MachineConfig::withOptimizer(oc));
        latency_cols.emplace_back(stages, cfg);
    }

    std::vector<std::pair<unsigned, std::string>> depth_cols;
    for (unsigned depth : {0u, 1u, 3u}) {
        auto oc = core::OptimizerConfig::full();
        oc.addChainDepth = depth;
        const std::string cfg = "depth " + std::to_string(depth);
        spec.config(cfg, pipeline::MachineConfig::withOptimizer(oc));
        depth_cols.emplace_back(depth, cfg);
    }

    std::vector<std::pair<unsigned, std::string>> vfb_cols;
    for (unsigned d : {0u, 1u, 5u, 10u}) {
        auto cfg = pipeline::MachineConfig::optimized();
        cfg.vfbDelay = d;
        const std::string label = "vfb " + std::to_string(d);
        spec.config(label, cfg);
        vfb_cols.emplace_back(d, label);
    }

    spec.config("fetch-bound + opt",
                pipeline::MachineConfig::fetchBound(true));
    spec.config("exec-bound + opt",
                pipeline::MachineConfig::execBound(true));

    sim::SweepRunner runner;
    const auto res = runner.run(spec);

    const auto speedup = [&](const std::string &cfg) {
        return res.speedupOf(name, cfg, "base");
    };

    std::printf("config explorer: %s (%s)\n", w.name.c_str(),
                w.fullName.c_str());
    std::printf("baseline: %s\n",
                res.at(sim::SweepSpec::labelFor(name, "base"))
                    .sim.stats.summary()
                    .c_str());

    std::printf("\noptimizer latency (fig. 11):\n");
    for (const auto &[stages, cfg] : latency_cols)
        std::printf("  %u extra stages: %.3f\n", stages,
                    speedup(cfg));

    std::printf("\nintra-bundle depth (fig. 10):\n");
    for (const auto &[depth, cfg] : depth_cols)
        std::printf("  depth %u: %.3f\n", depth, speedup(cfg));

    std::printf("\nvalue-feedback delay (fig. 12):\n");
    for (const auto &[d, cfg] : vfb_cols)
        std::printf("  delay %u: %.3f\n", d, speedup(cfg));

    std::printf("\nmachine balance (fig. 8):\n");
    std::printf("  fetch-bound + opt: %.3f\n",
                speedup("fetch-bound + opt"));
    std::printf("  exec-bound + opt:  %.3f\n",
                speedup("exec-bound + opt"));
    return 0;
}
