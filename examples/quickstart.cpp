/**
 * @file
 * Quickstart: build a small program with the assembler, run it on the
 * baseline machine and on the machine with the continuous optimizer, and
 * print the headline statistics.
 *
 * The program is the motivating example from section 2.4 of the paper: a
 * loop that sums the elements of an array, whose loop counter and array
 * base are loaded from memory (so value feedback can turn them into known
 * values mid-run).
 */

#include <cstdio>

#include "src/asm/assembler.hh"
#include "src/sim/simulator.hh"

using namespace conopt;
using namespace conopt::assembler;

namespace {

/** The paper's Figure 4 loop: sum array[0..n-1]. */
Program
buildArraySum(unsigned elems)
{
    Assembler a;

    // Static data: the counter cell, the array base cell, and the array.
    std::vector<uint64_t> array_vals;
    for (unsigned i = 0; i < elems; ++i)
        array_vals.push_back(3 * i + 1);
    const uint64_t array = a.dataQuads(array_vals);
    const uint64_t counter_cell = a.dataQuads({elems});
    const uint64_t base_cell = a.dataQuads({array});

    a.li(R29, int64_t(counter_cell));
    a.li(R28, int64_t(base_cell));
    a.ldq(R1, 0, R29);     // r1 = loop count        (ld [r29] -> r1)
    a.ldq(R4, 0, R28);     // r4 = array base        (ld [r30] -> r4)
    a.li(R2, 0);           // r2 = sum
    a.label("loop");
    a.ldq(R3, 0, R4);      // r3 = array element
    a.addq(R2, R3, R2);    // sum += element
    a.addq(R4, 8, R4);     // advance array pointer
    a.subq(R1, 1, R1);     // decrement counter
    a.bne(R1, "loop");
    a.halt();
    return a.finish();
}

} // namespace

int
main()
{
    const Program prog = buildArraySum(4096);

    const auto base_cfg = pipeline::MachineConfig::baseline();
    const auto opt_cfg = pipeline::MachineConfig::optimized();

    const auto base = sim::simulate(prog, base_cfg);
    const auto opt = sim::simulate(prog, opt_cfg);

    std::printf("Continuous-optimization quickstart (array-sum loop)\n");
    std::printf("---------------------------------------------------\n");
    std::printf("dynamic instructions : %llu\n",
                static_cast<unsigned long long>(base.instructions));
    std::printf("baseline             : %s\n",
                base.stats.summary().c_str());
    std::printf("with optimizer       : %s\n", opt.stats.summary().c_str());
    std::printf("speedup              : %.3f\n",
                double(base.stats.cycles) / double(opt.stats.cycles));
    std::printf("\nTable-3-style effects with the optimizer:\n");
    std::printf("  executed early     : %5.1f%%\n",
                100.0 * opt.stats.execEarlyFrac());
    std::printf("  recovered mispred  : %5.1f%%\n",
                100.0 * opt.stats.recoveredMispredFrac());
    std::printf("  ld/st addr gen     : %5.1f%%\n",
                100.0 * opt.stats.addrGenFrac());
    std::printf("  loads removed      : %5.1f%%\n",
                100.0 * opt.stats.loadsRemovedFrac());
    return 0;
}
