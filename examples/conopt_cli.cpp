/**
 * @file
 * Command-line simulator driver: run any Table 1 workload under any
 * machine/optimizer configuration and print the full statistics. The
 * tool a downstream user reaches for first. All runs execute as one
 * parallel sweep through the SweepRunner.
 *
 * Usage:
 *   conopt_sim [options] <workload>|all
 *
 * Options:
 *   --baseline            no optimizer (default: optimizer on)
 *   --compare             run both machines and report the speedup
 *   --scale N             workload iteration scale (default 1)
 *   --depth N             intra-bundle chained additions (default 0)
 *   --chained-mem         allow one intra-bundle MBC forward
 *   --opt-stages N        extra rename stages (default 2)
 *   --vfb-delay N         value-feedback transmission delay (default 1)
 *   --mbc-entries N       MBC capacity (default 128)
 *   --mbc-flush           flush MBC on unknown-address stores
 *   --no-rlesf | --no-feedback | --no-inference | --no-strength
 *   --no-moveelim | --feedback-only
 *   --fetch-bound | --exec-bound
 *   --threads N           sweep worker threads (default: hardware)
 *   --csv | --json        machine-readable output instead of the
 *                         per-workload statistics blocks
 *   --artifact FILE       also persist the run as a benchmark artifact
 *                         (the BENCH_*.json schema; comparable with
 *                         conopt_bench_check)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/sim/baseline.hh"
#include "src/sim/report.hh"
#include "src/sim/sweep.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

namespace {

struct Options
{
    bool baseline = false;
    bool compare = false;
    unsigned scale = 1;
    bool fetch_bound = false;
    bool exec_bound = false;
    unsigned vfb_delay = 1;
    unsigned threads = 0;
    bool csv = false;
    bool json = false;
    std::string artifactPath;
    core::OptimizerConfig oc = core::OptimizerConfig::full();
    std::vector<std::string> workloads;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: conopt_sim [options] <workload>|all\n"
                 "       (see the file header for options; workloads:");
    for (const auto &w : workloads::allWorkloads())
        std::fprintf(stderr, " %s", w.name.c_str());
    std::fprintf(stderr, ")\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next_uint = [&](unsigned &out) {
            if (++i >= argc)
                usage();
            out = unsigned(std::strtoul(argv[i], nullptr, 10));
        };
        if (a == "--baseline") {
            o.baseline = true;
        } else if (a == "--compare") {
            o.compare = true;
        } else if (a == "--scale") {
            next_uint(o.scale);
        } else if (a == "--depth") {
            next_uint(o.oc.addChainDepth);
        } else if (a == "--chained-mem") {
            o.oc.allowChainedMem = true;
        } else if (a == "--opt-stages") {
            next_uint(o.oc.extraStages);
        } else if (a == "--vfb-delay") {
            next_uint(o.vfb_delay);
        } else if (a == "--mbc-entries") {
            next_uint(o.oc.mbc.entries);
        } else if (a == "--mbc-flush") {
            o.oc.mbcFlushOnUnknownStore = true;
        } else if (a == "--no-rlesf") {
            o.oc.enableRleSf = false;
        } else if (a == "--no-feedback") {
            o.oc.enableValueFeedback = false;
        } else if (a == "--no-inference") {
            o.oc.enableBranchInference = false;
        } else if (a == "--no-strength") {
            o.oc.enableStrengthReduction = false;
        } else if (a == "--no-moveelim") {
            o.oc.enableMoveElim = false;
        } else if (a == "--feedback-only") {
            const auto keep_stages = o.oc.extraStages;
            o.oc = core::OptimizerConfig::feedbackOnly();
            o.oc.extraStages = keep_stages;
        } else if (a == "--fetch-bound") {
            o.fetch_bound = true;
        } else if (a == "--exec-bound") {
            o.exec_bound = true;
        } else if (a == "--threads") {
            next_uint(o.threads);
        } else if (a == "--csv") {
            o.csv = true;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--artifact") {
            if (++i >= argc)
                usage();
            o.artifactPath = argv[i];
        } else if (a == "all") {
            for (const auto &w : workloads::allWorkloads())
                o.workloads.push_back(w.name);
        } else if (!a.empty() && a[0] == '-') {
            usage();
        } else {
            o.workloads.push_back(a);
        }
    }
    if (o.workloads.empty())
        usage();
    return o;
}

pipeline::MachineConfig
machineFor(const Options &o, bool with_opt)
{
    pipeline::MachineConfig cfg;
    if (o.fetch_bound)
        cfg = pipeline::MachineConfig::fetchBound(with_opt);
    else if (o.exec_bound)
        cfg = pipeline::MachineConfig::execBound(with_opt);
    if (with_opt)
        cfg.opt = o.oc;
    else
        cfg.opt = core::OptimizerConfig::baseline();
    cfg.vfbDelay = o.vfb_delay;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);

    // One sweep covers every requested (workload, machine) pair. A
    // workload listed twice is simulated once and reported each time
    // it appears.
    std::vector<std::string> unique_workloads;
    for (const auto &name : o.workloads) {
        if (std::find(unique_workloads.begin(), unique_workloads.end(),
                      name) == unique_workloads.end())
            unique_workloads.push_back(name);
    }
    sim::SweepSpec spec;
    spec.workloads(unique_workloads).scale(o.scale);
    if (o.compare || !o.baseline)
        spec.config("optimized", machineFor(o, true));
    if (o.compare || o.baseline)
        spec.config("baseline", machineFor(o, false));

    sim::SweepRunner runner({o.threads, nullptr});
    const auto res = runner.run(spec);

    if (!o.artifactPath.empty()) {
        auto art = sim::BenchArtifact::fromSweep(res);
        art.bench = "conopt_cli";
        // The CLI scales/threads via flags, not the environment
        // variables fromSweep records; keep the artifact header honest.
        art.scale = o.scale;
        if (o.threads)
            art.threads = o.threads;
        if (o.compare)
            art.addGeomeans(res, "baseline", {"optimized"});
        std::string err;
        if (!art.save(o.artifactPath, &err)) {
            std::fprintf(stderr, "conopt_cli: %s\n", err.c_str());
            return 1;
        }
    }

    if (o.csv) {
        sim::CsvReporter().print(res);
        return 0;
    }
    if (o.json) {
        sim::JsonReporter().print(res);
        return 0;
    }

    for (const auto &name : o.workloads) {
        const auto &w = workloads::workloadByName(name);
        std::printf("== %s (%s, %s) ==\n", w.name.c_str(),
                    w.fullName.c_str(), w.suite.c_str());
        if (o.compare) {
            std::printf("baseline:\n");
            sim::DetailReporter::reportJob(
                res.at(sim::SweepSpec::labelFor(name, "baseline")),
                stdout);
            std::printf("optimized:\n");
            sim::DetailReporter::reportJob(
                res.at(sim::SweepSpec::labelFor(name, "optimized")),
                stdout);
            std::printf("speedup               %.3f\n\n",
                        res.speedupOf(name, "optimized", "baseline"));
        } else {
            sim::DetailReporter::reportJob(
                res.at(sim::SweepSpec::labelFor(
                    name, o.baseline ? "baseline" : "optimized")),
                stdout);
            std::printf("\n");
        }
    }
    return 0;
}
