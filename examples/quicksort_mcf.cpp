/**
 * @file
 * The paper's mcf case study (section 5.2): the sort_basket quicksort.
 *
 * "Since the quicksort algorithm touches every element of the array at
 * each level of recursion, the quicksort algorithm effectively fills up
 * the MBC with array elements. Once the array being passed to quicksort
 * is small enough that it does not thrash the MBC, all array accesses
 * are eliminated, and the simple instructions dependent on these load
 * operations are executed in the optimizer."
 *
 * This example runs the mcf kernel and sweeps the MBC capacity -- as one
 * parallel SweepRunner sweep -- to show exactly that thrash-to-fit
 * transition.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/sweep.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

int
main()
{
    const auto &w = workloads::workloadByName("mcf");
    const std::vector<unsigned> capacities = {16, 32, 64, 128, 256, 512};

    sim::SweepSpec spec;
    spec.workload("mcf").scale(w.defaultScale);
    spec.config("base", pipeline::MachineConfig::baseline());
    for (unsigned entries : capacities) {
        auto oc = core::OptimizerConfig::full();
        oc.mbc.entries = entries;
        spec.config(std::to_string(entries),
                    pipeline::MachineConfig::withOptimizer(oc));
    }

    sim::SweepRunner runner;
    const auto res = runner.run(spec);

    std::printf("mcf case study: network simplex + sort_basket\n");
    std::printf("----------------------------------------------\n");
    std::printf("baseline: %s\n\n",
                res.at(sim::SweepSpec::labelFor("mcf", "base"))
                    .sim.stats.summary()
                    .c_str());

    std::printf("%-14s %10s %12s %12s %12s\n", "MBC entries", "speedup",
                "lds removed", "exec early", "MBC hit rate");
    for (unsigned entries : capacities) {
        const auto &r =
            res.at(sim::SweepSpec::labelFor("mcf",
                                            std::to_string(entries)));
        const auto &s = r.sim.stats;
        const double hit_rate =
            s.mbc.lookups ? double(s.mbc.hits) / double(s.mbc.lookups)
                          : 0.0;
        std::printf("%-14u %10.3f %11.1f%% %11.1f%% %11.1f%%\n", entries,
                    res.speedupOf("mcf", std::to_string(entries),
                                  "base"),
                    100.0 * s.loadsRemovedFrac(),
                    100.0 * s.execEarlyFrac(), 100.0 * hit_rate);
    }
    std::printf("\nAs the MBC grows past the basket's working set, load\n"
                "removal and early execution jump -- the paper's mcf\n"
                "explanation in action.\n");
    return 0;
}
