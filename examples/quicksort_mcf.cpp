/**
 * @file
 * The paper's mcf case study (section 5.2): the sort_basket quicksort.
 *
 * "Since the quicksort algorithm touches every element of the array at
 * each level of recursion, the quicksort algorithm effectively fills up
 * the MBC with array elements. Once the array being passed to quicksort
 * is small enough that it does not thrash the MBC, all array accesses
 * are eliminated, and the simple instructions dependent on these load
 * operations are executed in the optimizer."
 *
 * This example runs the mcf kernel and sweeps the MBC capacity to show
 * exactly that thrash-to-fit transition.
 */

#include <cstdio>

#include "src/sim/simulator.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

int
main()
{
    const auto &w = workloads::workloadByName("mcf");
    const auto program = w.build(w.defaultScale);

    const auto base_cfg = pipeline::MachineConfig::baseline();
    const auto base = sim::simulate(program, base_cfg);

    std::printf("mcf case study: network simplex + sort_basket\n");
    std::printf("----------------------------------------------\n");
    std::printf("baseline: %s\n\n", base.stats.summary().c_str());

    std::printf("%-14s %10s %12s %12s %12s\n", "MBC entries", "speedup",
                "lds removed", "exec early", "MBC hit rate");
    for (unsigned entries : {16u, 32u, 64u, 128u, 256u, 512u}) {
        auto oc = core::OptimizerConfig::full();
        oc.mbc.entries = entries;
        const auto cfg = pipeline::MachineConfig::withOptimizer(oc);
        const auto r = sim::simulate(program, cfg);
        const double hit_rate =
            r.stats.mbc.lookups
                ? double(r.stats.mbc.hits) / double(r.stats.mbc.lookups)
                : 0.0;
        std::printf("%-14u %10.3f %11.1f%% %11.1f%% %11.1f%%\n", entries,
                    double(base.stats.cycles) / double(r.stats.cycles),
                    100.0 * r.stats.loadsRemovedFrac(),
                    100.0 * r.stats.execEarlyFrac(), 100.0 * hit_rate);
    }
    std::printf("\nAs the MBC grows past the basket's working set, load\n"
                "removal and early execution jump -- the paper's mcf\n"
                "explanation in action.\n");
    return 0;
}
