/**
 * @file
 * Tests for the symbolic RAT and the Memory Bypass Cache, including the
 * reference-counting contracts that keep forwarded registers live.
 */

#include <gtest/gtest.h>

#include "src/core/mbc.hh"
#include "src/core/opt_rat.hh"
#include "src/pipeline/phys_reg_file.hh"

using namespace conopt;
using core::MemoryBypassCache;
using core::OptRat;
using core::SymbolicValue;

TEST(OptRat, ZeroRegisterIsConstZero)
{
    pipeline::PhysRegFile prf(8);
    OptRat rat(prf);
    const auto &e = rat.read(isa::zeroReg);
    EXPECT_TRUE(e.sym.isConst());
    EXPECT_EQ(e.sym.value, 0u);
    EXPECT_EQ(e.mapping, core::invalidPreg);
}

TEST(OptRat, WriteHoldsReferences)
{
    pipeline::PhysRegFile prf(8);
    OptRat rat(prf);
    const auto p = prf.alloc();
    rat.write(1, p, SymbolicValue::expr(p));
    // Mapping ref + symbolic base ref + the alloc ref.
    EXPECT_EQ(prf.refCount(p), 3u);
    prf.release(p); // drop the alloc ref
    EXPECT_TRUE(prf.isAllocated(p));

    const auto q = prf.alloc();
    rat.write(1, q, SymbolicValue::expr(q));
    EXPECT_FALSE(prf.isAllocated(p)) << "overwrite released both refs";
    rat.clear();
    prf.release(q);
    EXPECT_EQ(prf.freeCount(), prf.size());
}

TEST(OptRat, SymbolicBaseKeptLiveAcrossOverwrite)
{
    pipeline::PhysRegFile prf(8);
    OptRat rat(prf);
    const auto base = prf.alloc();
    rat.write(1, base, SymbolicValue::expr(base));
    prf.release(base);
    // r2 = r1 + 8 symbolically: entry references base.
    const auto p2 = prf.alloc();
    rat.write(2, p2, SymbolicValue::expr(base, 0, 8));
    prf.release(p2);
    // Overwrite r1: base must stay alive through r2's symbolic entry.
    const auto p3 = prf.alloc();
    rat.write(1, p3, SymbolicValue::expr(p3));
    prf.release(p3);
    EXPECT_TRUE(prf.isAllocated(base));
    // Overwrite r2: now base dies.
    const auto p4 = prf.alloc();
    rat.write(2, p4, SymbolicValue::expr(p4));
    prf.release(p4);
    EXPECT_FALSE(prf.isAllocated(base));
    rat.clear();
}

TEST(OptRat, SetSymReplacesOnlySymbolicPart)
{
    pipeline::PhysRegFile prf(8);
    OptRat rat(prf);
    const auto p = prf.alloc();
    rat.write(5, p, SymbolicValue::expr(p, 0, 4));
    prf.release(p);
    rat.setSym(5, SymbolicValue::constant(0)); // branch inference
    EXPECT_EQ(rat.read(5).mapping, p);
    EXPECT_TRUE(rat.read(5).sym.isConst());
    EXPECT_TRUE(prf.isAllocated(p)) << "mapping ref remains";
    rat.clear();
    EXPECT_FALSE(prf.isAllocated(p));
}

namespace {

struct MbcFixture : ::testing::Test
{
    pipeline::PhysRegFile iprf{32};
    pipeline::PhysRegFile fprf{8};
    MemoryBypassCache mbc{{128, 4}, iprf, fprf};
};

} // namespace

TEST_F(MbcFixture, ExactMatchRequired)
{
    const auto p = iprf.alloc();
    mbc.insert(0x1000, 8, SymbolicValue::expr(p), true, 1);
    EXPECT_NE(mbc.lookup(0x1000, 8, false), nullptr);
    EXPECT_EQ(mbc.lookup(0x1000, 4, false), nullptr) << "size mismatch";
    EXPECT_EQ(mbc.lookup(0x1004, 4, false), nullptr) << "offset mismatch";
    EXPECT_EQ(mbc.lookup(0x1000, 8, true), nullptr) << "fp mismatch";
    EXPECT_EQ(mbc.lookup(0x1008, 8, false), nullptr) << "tag mismatch";
}

TEST_F(MbcFixture, SubWordEntriesMatchOffsetAndSize)
{
    mbc.insert(0x1004, 4, SymbolicValue::constant(7), false, 1);
    const auto *e = mbc.lookup(0x1004, 4, false);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->offset, 4);
    EXPECT_EQ(e->size, 4);
    EXPECT_FALSE(e->fromLoad);
}

TEST_F(MbcFixture, NonConstSubWordStoreOnlyInvalidates)
{
    const auto p = iprf.alloc();
    mbc.insert(0x1000, 8, SymbolicValue::expr(p), true, 1);
    // A 4-byte store of unknown data can't be forwarded, but it must
    // still kill the stale 8-byte entry for the same word.
    mbc.insert(0x1000, 4, SymbolicValue::expr(p), false, 2);
    EXPECT_EQ(mbc.lookup(0x1000, 8, false), nullptr);
    EXPECT_EQ(mbc.lookup(0x1000, 4, false), nullptr);
}

TEST_F(MbcFixture, StoreReplacesSameShapeEntry)
{
    const auto p = iprf.alloc();
    const auto q = iprf.alloc();
    mbc.insert(0x2000, 8, SymbolicValue::expr(p), true, 1);
    mbc.insert(0x2000, 8, SymbolicValue::expr(q), false, 2);
    const auto *e = mbc.lookup(0x2000, 8, false);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->sym.base, q);
    EXPECT_EQ(e->writerSeq, 2u);
    EXPECT_EQ(iprf.refCount(q), 2u) << "alloc ref + MBC ref";
    EXPECT_EQ(iprf.refCount(p), 1u) << "replaced entry released its ref";
}

TEST_F(MbcFixture, RefCountsFollowEntries)
{
    const auto p = iprf.alloc();
    EXPECT_EQ(iprf.refCount(p), 1u);
    mbc.insert(0x3000, 8, SymbolicValue::expr(p), true, 1);
    EXPECT_EQ(iprf.refCount(p), 2u);
    mbc.invalidateOverlap(0x3000, 8);
    EXPECT_EQ(iprf.refCount(p), 1u);
}

TEST_F(MbcFixture, InvalidateOverlapIsRangeBased)
{
    mbc.insert(0x4000, 8, SymbolicValue::constant(1), false, 1);
    mbc.insert(0x4008, 8, SymbolicValue::constant(2), false, 1);
    // A byte store into the first word kills only the first entry.
    mbc.invalidateOverlap(0x4003, 1);
    EXPECT_EQ(mbc.lookup(0x4000, 8, false), nullptr);
    EXPECT_NE(mbc.lookup(0x4008, 8, false), nullptr);
}

TEST_F(MbcFixture, StaleInvalidationRespectsAge)
{
    mbc.insert(0x5000, 8, SymbolicValue::constant(1), false, /*seq=*/10);
    // A store with seq 5 (older than the entry's writer) must NOT kill
    // the younger entry when it finally executes.
    mbc.invalidateStale(0x5000, 8, /*store_seq=*/5);
    EXPECT_NE(mbc.lookup(0x5000, 8, false), nullptr);
    // A store younger than the writer kills it.
    mbc.invalidateStale(0x5000, 8, /*store_seq=*/20);
    EXPECT_EQ(mbc.lookup(0x5000, 8, false), nullptr);
}

TEST_F(MbcFixture, LruEvictionWithinSet)
{
    // 32 sets x 4 ways; all these tags map to set 0 (tag % 32 == 0).
    const uint64_t stride = 32 * 8;
    for (int i = 0; i < 4; ++i)
        mbc.insert(i * stride, 8, SymbolicValue::constant(i), false, 1);
    // Touch entry 0 so entry 1 is LRU.
    EXPECT_NE(mbc.lookup(0, 8, false), nullptr);
    mbc.insert(4 * stride, 8, SymbolicValue::constant(4), false, 1);
    EXPECT_NE(mbc.lookup(0, 8, false), nullptr);
    EXPECT_EQ(mbc.lookup(1 * stride, 8, false), nullptr) << "LRU victim";
    EXPECT_EQ(mbc.stats().evictions, 1u);
}

TEST_F(MbcFixture, FlushReleasesEverything)
{
    const auto p = iprf.alloc();
    const auto f = fprf.alloc();
    mbc.insert(0x6000, 8, SymbolicValue::expr(p), true, 1);
    mbc.insert(0x6008, 8, SymbolicValue::expr(f, 0, 0, true), true, 1);
    mbc.flush();
    EXPECT_EQ(iprf.refCount(p), 1u);
    EXPECT_EQ(fprf.refCount(f), 1u);
    EXPECT_EQ(mbc.lookup(0x6000, 8, false), nullptr);
}
