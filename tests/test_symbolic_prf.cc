/**
 * @file
 * Tests for the symbolic value algebra and the reference-counted
 * physical register file (including value-feedback timing).
 */

#include <gtest/gtest.h>

#include "src/core/symbolic.hh"
#include "src/pipeline/phys_reg_file.hh"

using namespace conopt;
using core::SymbolicValue;

TEST(Symbolic, ConstantFolding)
{
    auto c = SymbolicValue::constant(40);
    EXPECT_TRUE(c.isConst());
    EXPECT_EQ(c.plusConst(2).value, 42u);
    EXPECT_EQ(c.plusConst(uint64_t(-50)).value, uint64_t(-10));
    auto s = c.shiftedLeft(4);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->value, 640u);
}

TEST(Symbolic, ExprOffsetAccumulation)
{
    auto e = SymbolicValue::expr(7);
    EXPECT_TRUE(e.isPureAlias());
    auto e1 = e.plusConst(5);
    EXPECT_FALSE(e1.isPureAlias());
    EXPECT_EQ(e1.base, 7);
    EXPECT_EQ(e1.offset, 5u);
    auto e2 = e1.plusConst(uint64_t(-8));
    EXPECT_EQ(e2.offset, uint64_t(-3));
    EXPECT_EQ(e2.evaluate(100), 97u);
}

TEST(Symbolic, ScaleFieldIsTwoBits)
{
    auto e = SymbolicValue::expr(3, 0, 10);
    auto s1 = e.shiftedLeft(2);
    ASSERT_TRUE(s1.has_value());
    EXPECT_EQ(s1->scale, 2);
    EXPECT_EQ(s1->offset, 40u);
    EXPECT_EQ(s1->evaluate(5), (uint64_t(5) << 2) + 40);
    auto s2 = s1->shiftedLeft(1);
    ASSERT_TRUE(s2.has_value());
    EXPECT_EQ(s2->scale, 3);
    // A fourth shift overflows the 2-bit scale field (paper sec. 3.1).
    EXPECT_FALSE(s2->shiftedLeft(1).has_value());
    EXPECT_FALSE(e.shiftedLeft(4).has_value());
}

TEST(Symbolic, EvaluateMatchesHardwareForm)
{
    // (base << scale) + offset with 64-bit wrapping.
    auto e = SymbolicValue::expr(1, 3, uint64_t(-16));
    EXPECT_EQ(e.evaluate(4), 16u);
    EXPECT_EQ(e.evaluate(0), uint64_t(-16));
}

TEST(Symbolic, FpAliasRestrictions)
{
    auto f = SymbolicValue::expr(9, 0, 0, /*is_fp=*/true);
    EXPECT_TRUE(f.isPureAlias());
    EXPECT_FALSE(f.shiftedLeft(1).has_value()) << "fp never reassociates";
}

TEST(Symbolic, ResolveViaValueFeedback)
{
    pipeline::PhysRegFile prf(8);
    const auto p = prf.alloc();
    prf.setOracle(p, 100);
    prf.setVfbAt(p, 50);
    auto e = SymbolicValue::expr(p, 1, 5);
    EXPECT_FALSE(e.resolve(prf, 49).has_value())
        << "value not yet transmitted";
    auto v = e.resolve(prf, 50);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 205u);
    EXPECT_EQ(*SymbolicValue::constant(9).resolve(prf, 0), 9u);
}

TEST(PhysRegFile, AllocAndFree)
{
    pipeline::PhysRegFile prf(4);
    EXPECT_EQ(prf.freeCount(), 4u);
    const auto a = prf.alloc();
    const auto b = prf.alloc();
    EXPECT_NE(a, b);
    EXPECT_EQ(prf.freeCount(), 2u);
    prf.release(a);
    EXPECT_EQ(prf.freeCount(), 3u);
    EXPECT_FALSE(prf.isAllocated(a));
    EXPECT_TRUE(prf.isAllocated(b));
}

TEST(PhysRegFile, ExhaustionReturnsInvalid)
{
    pipeline::PhysRegFile prf(2);
    prf.alloc();
    prf.alloc();
    EXPECT_EQ(prf.alloc(), core::invalidPreg);
}

TEST(PhysRegFile, RefCountKeepsRegisterLive)
{
    pipeline::PhysRegFile prf(2);
    const auto p = prf.alloc();
    prf.addRef(p); // 2 refs
    prf.release(p);
    EXPECT_TRUE(prf.isAllocated(p)) << "still one reference";
    prf.release(p);
    EXPECT_FALSE(prf.isAllocated(p));
}

TEST(PhysRegFile, ReuseResetsState)
{
    pipeline::PhysRegFile prf(1);
    const auto p = prf.alloc();
    prf.setOracle(p, 7);
    prf.setReadyAt(p, 10);
    prf.setVfbAt(p, 11);
    prf.release(p);
    const auto q = prf.alloc();
    EXPECT_EQ(q, p) << "single register must be recycled";
    EXPECT_EQ(prf.readyAt(q), pipeline::PhysRegFile::never);
    uint64_t v;
    EXPECT_FALSE(prf.valueKnown(q, 1u << 30, v));
}

TEST(PhysRegFile, ValueFeedbackTiming)
{
    pipeline::PhysRegFile prf(2);
    const auto p = prf.alloc();
    prf.setOracle(p, 0xabcd);
    prf.setVfbAt(p, 100);
    uint64_t v = 0;
    EXPECT_FALSE(prf.valueKnown(p, 99, v));
    ASSERT_TRUE(prf.valueKnown(p, 100, v));
    EXPECT_EQ(v, 0xabcdu);
    EXPECT_TRUE(prf.valueKnown(p, 1000, v)) << "stays known while live";
}

TEST(PhysRegFile, ReadyTimingForIssue)
{
    pipeline::PhysRegFile prf(2);
    const auto p = prf.alloc();
    EXPECT_FALSE(prf.readyBy(p, 1u << 30));
    prf.setReadyAt(p, 42);
    EXPECT_FALSE(prf.readyBy(p, 41));
    EXPECT_TRUE(prf.readyBy(p, 42));
}
