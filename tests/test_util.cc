/**
 * @file
 * Unit tests for the util substrate: bit helpers, the deterministic RNG,
 * the DelayPipe latency latch, and the percentile accumulator the perf
 * harness prints host-seconds distributions with.
 */

#include <gtest/gtest.h>

#include "src/pipeline/stats_aggregate.hh"
#include "src/util/bitops.hh"
#include "src/util/delay_pipe.hh"
#include "src/util/rng.hh"

using namespace conopt;

TEST(Bitops, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(uint64_t(1) << 63));
    EXPECT_FALSE(isPowerOfTwo((uint64_t(1) << 63) + 1));
}

TEST(Bitops, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(1024), 10u);
    EXPECT_EQ(log2Exact(uint64_t(1) << 63), 63u);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(sext64(0x80, 8), -128);
    EXPECT_EQ(sext64(0x7f, 8), 127);
    EXPECT_EQ(sext64(0xffffffff, 32), -1);
    EXPECT_EQ(sext64(0x7fffffff, 32), 0x7fffffff);
}

TEST(Bitops, WrappingArithmetic)
{
    EXPECT_EQ(wrappingAdd(~uint64_t(0), 1), 0u);
    EXPECT_EQ(wrappingSub(0, 1), ~uint64_t(0));
    EXPECT_EQ(wrappingMul(uint64_t(1) << 63, 2), 0u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        differs |= (a2.next() != c.next());
    EXPECT_TRUE(differs);
}

TEST(Rng, BoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBelow(17), 17u);
        const int64_t v = rng.nextRange(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, RoughUniformity)
{
    Rng rng(99);
    int buckets[8] = {};
    for (int i = 0; i < 8000; ++i)
        ++buckets[rng.nextBelow(8)];
    for (int b : buckets) {
        EXPECT_GT(b, 800);
        EXPECT_LT(b, 1200);
    }
}

TEST(DelayPipe, FixedLatency)
{
    DelayPipe<int> pipe(3);
    pipe.push(10, 1);
    EXPECT_FALSE(pipe.ready(10));
    EXPECT_FALSE(pipe.ready(12));
    ASSERT_TRUE(pipe.ready(13));
    EXPECT_EQ(pipe.front(), 1);
    pipe.pop();
    EXPECT_TRUE(pipe.empty());
}

TEST(DelayPipe, PreservesOrder)
{
    DelayPipe<int> pipe(2);
    pipe.push(0, 1);
    pipe.push(0, 2);
    pipe.push(1, 3);
    ASSERT_TRUE(pipe.ready(2));
    EXPECT_EQ(pipe.front(), 1);
    pipe.pop();
    EXPECT_EQ(pipe.front(), 2);
    pipe.pop();
    EXPECT_FALSE(pipe.ready(2));
    EXPECT_TRUE(pipe.ready(3));
    EXPECT_EQ(pipe.front(), 3);
}

TEST(DelayPipe, ZeroLatency)
{
    DelayPipe<int> pipe(0);
    pipe.push(5, 9);
    EXPECT_TRUE(pipe.ready(5));
}

TEST(DelayPipe, RemoveIf)
{
    DelayPipe<int> pipe(1);
    for (int i = 0; i < 6; ++i)
        pipe.push(0, i);
    pipe.removeIf([](int v) { return v % 2 == 0; });
    EXPECT_EQ(pipe.size(), 3u);
    ASSERT_TRUE(pipe.ready(1));
    EXPECT_EQ(pipe.front(), 1);
}

TEST(DelayPipe, PushSlotMaturesLikePush)
{
    DelayPipe<int> pipe(3);
    pipe.pushSlot(0) = 42;
    pipe.push(0, 43);
    EXPECT_FALSE(pipe.ready(2));
    ASSERT_TRUE(pipe.ready(3));
    EXPECT_EQ(pipe.front(), 42);
    pipe.pop();
    ASSERT_TRUE(pipe.ready(3));
    EXPECT_EQ(pipe.front(), 43);
    pipe.pop();
    EXPECT_TRUE(pipe.empty());
}

TEST(DelayPipe, NextReadyCycleTracksOldestEntry)
{
    DelayPipe<int> pipe(4);
    pipe.push(10, 1);
    pipe.push(12, 2);
    EXPECT_EQ(pipe.nextReadyCycle(), 14u);
    pipe.pop();
    EXPECT_EQ(pipe.nextReadyCycle(), 16u);
}

TEST(PercentileAccumulator, NearestRankPercentiles)
{
    pipeline::PercentileAccumulator acc;
    EXPECT_TRUE(acc.empty());
    EXPECT_EQ(acc.percentile(50), 0.0) << "no samples: 0 by contract";

    // 10 samples, inserted out of order: nearest-rank p50 of n=10 is
    // the 5th smallest, p95 the 10th, p99 the 10th.
    for (double x : {7.0, 1.0, 9.0, 3.0, 10.0, 2.0, 8.0, 4.0, 6.0, 5.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 10u);
    EXPECT_DOUBLE_EQ(acc.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(acc.percentile(95), 10.0);
    EXPECT_DOUBLE_EQ(acc.percentile(99), 10.0);
    EXPECT_DOUBLE_EQ(acc.percentile(10), 1.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 10.0);

    acc.clear();
    EXPECT_TRUE(acc.empty());
    acc.add(3.5);
    EXPECT_DOUBLE_EQ(acc.percentile(50), 3.5);
    EXPECT_DOUBLE_EQ(acc.percentile(99), 3.5);
}

TEST(PercentileAccumulator, InsertionOrderDoesNotMatter)
{
    pipeline::PercentileAccumulator fwd, rev;
    for (int i = 1; i <= 100; ++i)
        fwd.add(double(i));
    for (int i = 100; i >= 1; --i)
        rev.add(double(i));
    for (double p : {1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(fwd.percentile(p), rev.percentile(p)) << p;
    EXPECT_DOUBLE_EQ(fwd.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(fwd.percentile(99), 99.0);
}
