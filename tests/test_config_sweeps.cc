/**
 * @file
 * Parameterized machine-configuration sweeps: the sensitivity claims of
 * paper sections 6.2-6.4 expressed as testable properties on a fixed
 * workload, plus robustness of the timing model across extreme
 * configurations (tiny schedulers, huge widths, minimal register files).
 */

#include <tuple>

#include <gtest/gtest.h>

#include "src/sim/simulator.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

namespace {

uint64_t
cyclesFor(const char *workload, const pipeline::MachineConfig &cfg)
{
    const auto &w = workloads::workloadByName(workload);
    const auto r = sim::simulate(w.build(1), cfg);
    EXPECT_TRUE(r.halted);
    return r.stats.cycles;
}

} // namespace

// ---------------------------------------------------------------------------
// Optimizer latency: more stages never help (fig. 11 monotonicity).
// ---------------------------------------------------------------------------

class OptLatencySweep
    : public ::testing::TestWithParam<std::tuple<const char *, unsigned>>
{
};

TEST_P(OptLatencySweep, CompletesAndStaysCorrect)
{
    const auto [name, stages] = GetParam();
    auto oc = core::OptimizerConfig::full();
    oc.extraStages = stages;
    const auto cycles =
        cyclesFor(name, pipeline::MachineConfig::withOptimizer(oc));
    EXPECT_GT(cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Stages, OptLatencySweep,
    ::testing::Combine(::testing::Values("mcf", "untst", "gcc"),
                       ::testing::Values(0u, 1u, 2u, 4u, 6u, 8u)));

TEST(OptLatency, MoreStagesNeverFaster)
{
    uint64_t prev = 0;
    for (unsigned stages : {0u, 4u, 8u}) {
        auto oc = core::OptimizerConfig::full();
        oc.extraStages = stages;
        const uint64_t c =
            cyclesFor("gcc", pipeline::MachineConfig::withOptimizer(oc));
        if (prev) {
            EXPECT_GE(c + c / 50, prev)
                << "adding rename stages should not speed gcc up";
        }
        prev = c;
    }
}

// ---------------------------------------------------------------------------
// Depth: deeper intra-bundle chains never hurt by more than noise and
// never break correctness (fig. 10).
// ---------------------------------------------------------------------------

class DepthSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>>
{
};

TEST_P(DepthSweep, Completes)
{
    const auto [depth, mem] = GetParam();
    auto oc = core::OptimizerConfig::full();
    oc.addChainDepth = depth;
    oc.allowChainedMem = mem;
    const auto c =
        cyclesFor("g721d", pipeline::MachineConfig::withOptimizer(oc));
    EXPECT_GT(c, 0u);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep,
                         ::testing::Combine(::testing::Values(0u, 1u, 2u,
                                                              3u, 4u),
                                            ::testing::Bool()));

// ---------------------------------------------------------------------------
// Feedback delay: near-insensitive (fig. 12).
// ---------------------------------------------------------------------------

TEST(FeedbackDelay, WithinTwoPercentAcrossTenCycles)
{
    auto cfg0 = pipeline::MachineConfig::optimized();
    cfg0.vfbDelay = 0;
    auto cfg10 = pipeline::MachineConfig::optimized();
    cfg10.vfbDelay = 10;
    const uint64_t c0 = cyclesFor("mcf", cfg0);
    const uint64_t c10 = cyclesFor("mcf", cfg10);
    EXPECT_LT(double(c10), 1.02 * double(c0))
        << "paper fig. 12: value feedback delay is immaterial";
}

// ---------------------------------------------------------------------------
// Robustness across extreme machine shapes.
// ---------------------------------------------------------------------------

TEST(ExtremeConfigs, TinySchedulers)
{
    auto cfg = pipeline::MachineConfig::optimized();
    cfg.schedEntries = 2;
    EXPECT_GT(cyclesFor("eon", cfg), 0u);
}

TEST(ExtremeConfigs, SingleWideMachine)
{
    auto cfg = pipeline::MachineConfig::baseline();
    cfg.fetchWidth = 1;
    cfg.renameWidth = 1;
    cfg.retireWidth = 1;
    const auto &w = workloads::workloadByName("untst");
    const auto r = sim::simulate(w.build(1), cfg);
    EXPECT_TRUE(r.halted);
    EXPECT_LE(r.stats.ipc(), 1.0);
}

TEST(ExtremeConfigs, EightWideMachine)
{
    auto cfg = pipeline::MachineConfig::execBound(true);
    EXPECT_GT(cyclesFor("msa", cfg), 0u);
}

TEST(ExtremeConfigs, MinimalRegisterFileForcesRenameStalls)
{
    auto cfg = pipeline::MachineConfig::optimized();
    // Enough for arch state + MBC pins + a small in-flight window.
    cfg.intPhysRegs = 260;
    cfg.fpPhysRegs = 80;
    const auto &w = workloads::workloadByName("g721e");
    const auto r = sim::simulate(w.build(1), cfg);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.stats.renameStallPregs, 0u)
        << "a small PRF must backpressure rename, not break";
}

TEST(ExtremeConfigs, TinyMbcStillCorrect)
{
    auto oc = core::OptimizerConfig::full();
    oc.mbc.entries = 8;
    oc.mbc.assoc = 2;
    EXPECT_GT(cyclesFor("untst",
                        pipeline::MachineConfig::withOptimizer(oc)),
              0u);
}

TEST(ExtremeConfigs, SlowMemoryHierarchy)
{
    auto cfg = pipeline::MachineConfig::optimized();
    cfg.hier.memLatency = 400;
    cfg.hier.l2.latency = 40;
    EXPECT_GT(cyclesFor("vor", cfg), 0u);
}

TEST(ExtremeConfigs, FlushOnUnknownStoreMatchesSpeculateClosely)
{
    // Paper section 3.2: "we have evaluated both scenarios and have
    // found little difference in the overall performance."
    auto spec = core::OptimizerConfig::full();
    auto flush = core::OptimizerConfig::full();
    flush.mbcFlushOnUnknownStore = true;
    const uint64_t c_spec =
        cyclesFor("mcf", pipeline::MachineConfig::withOptimizer(spec));
    const uint64_t c_flush =
        cyclesFor("mcf", pipeline::MachineConfig::withOptimizer(flush));
    const double ratio = double(c_flush) / double(c_spec);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.15);
}
