/**
 * @file
 * SimSession / RingBuffer tests: the allocation-free hot-path refactor
 * must change how fast we simulate, never what we simulate.
 *
 * The load-bearing properties:
 *   - a reused session is bit-identical to a fresh one: the same job
 *     run on a session that already executed N unrelated jobs (other
 *     programs, other machine configurations) yields the same
 *     SimStats, counter for counter;
 *   - SweepRunner's thread-local sessions reproduce the per-job
 *     construction results of PR 4 exactly;
 *   - RingBuffer is a faithful bounded FIFO: wrap-around preserves
 *     order, full/empty transitions are exact, and overflowing a full
 *     buffer is a hard error, never silent growth;
 *   - the steady-state hot path performs zero heap allocations: a
 *     warm session re-runs an entire job without a single operator
 *     new call (checked with a counting global allocator).
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "src/arch/emulator.hh"
#include "src/pipeline/ooo_core.hh"
#include "src/pipeline/sim_stats.hh"
#include "src/sim/baseline.hh"
#include "src/sim/session.hh"
#include "src/sim/sweep.hh"
#include "src/util/ring_buffer.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

// ---------------------------------------------------------------------------
// Counting global allocator (for the zero-allocation steady-state test).
// Replacing the ordinary operator new/delete pair is enough: the array
// and default-aligned forms all funnel through these.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_newCalls{0};
} // namespace

// GCC flags free() inside a replaced operator delete as a mismatched
// pair; it cannot see that the replaced operator new is malloc-backed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t n)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

// ---------------------------------------------------------------------------
// RingBuffer
// ---------------------------------------------------------------------------

TEST(RingBuffer, StartsEmptyWithRoundedUpCapacity)
{
    RingBuffer<int> rb(5);
    EXPECT_TRUE(rb.empty());
    EXPECT_FALSE(rb.full());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 8u) << "capacity rounds up to a power of 2";
}

TEST(RingBuffer, WrapAroundPreservesFifoOrderAndIndexing)
{
    RingBuffer<int> rb(4);
    // Drive head_ around the ring several times with a sliding window.
    int next = 0, expect_front = 0;
    for (int i = 0; i < 3; ++i)
        rb.push_back(next++);
    for (int round = 0; round < 25; ++round) {
        rb.push_back(next++);
        ASSERT_EQ(rb.size(), 4u);
        EXPECT_TRUE(rb.full());
        // Logical index 0 is the oldest; indexing walks in push order.
        for (size_t k = 0; k < rb.size(); ++k)
            EXPECT_EQ(rb[k], expect_front + int(k));
        EXPECT_EQ(rb.front(), expect_front);
        EXPECT_EQ(rb.back(), next - 1);
        rb.pop_front();
        ++expect_front;
    }
    EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBuffer, FullEmptyTransitions)
{
    RingBuffer<int> rb(2);
    EXPECT_TRUE(rb.empty());
    rb.push_back(1);
    EXPECT_FALSE(rb.empty());
    EXPECT_FALSE(rb.full());
    rb.push_back(2);
    EXPECT_TRUE(rb.full());
    rb.pop_front();
    EXPECT_FALSE(rb.full());
    rb.pop_front();
    EXPECT_TRUE(rb.empty());
    // reset() clears and re-reserves in one step.
    rb.push_back(7);
    rb.reset(16);
    EXPECT_TRUE(rb.empty());
    EXPECT_GE(rb.capacity(), 16u);
}

TEST(RingBufferDeathTest, OverflowIsRejectedNotGrown)
{
    RingBuffer<int> rb(2);
    rb.push_back(1);
    rb.push_back(2);
    ASSERT_TRUE(rb.full());
    EXPECT_DEATH(rb.push_back(3), "RingBuffer overflow");
}

TEST(RingBuffer, ReserveGrowsAcrossWrapPreservingOrder)
{
    RingBuffer<int> rb(4);
    for (int i = 0; i < 4; ++i)
        rb.push_back(i);
    rb.pop_front();
    rb.pop_front();
    rb.push_back(4);
    rb.push_back(5); // head is mid-ring, contents {2,3,4,5}
    rb.reserve(9);
    EXPECT_GE(rb.capacity(), 9u);
    ASSERT_EQ(rb.size(), 4u);
    for (size_t k = 0; k < rb.size(); ++k)
        EXPECT_EQ(rb[k], int(k) + 2);
    rb.push_back(6);
    EXPECT_EQ(rb.back(), 6);
    EXPECT_EQ(rb.front(), 2);
}

TEST(RingBuffer, EraseByLogicalIndexPreservesOrder)
{
    RingBuffer<int> rb(8);
    // Wrap the head first so erase crosses the physical seam.
    for (int i = 0; i < 6; ++i)
        rb.push_back(i);
    for (int i = 0; i < 6; ++i)
        rb.pop_front();
    for (int i = 0; i < 7; ++i)
        rb.push_back(i);
    rb.erase(3);
    ASSERT_EQ(rb.size(), 6u);
    const int expect[] = {0, 1, 2, 4, 5, 6};
    for (size_t k = 0; k < rb.size(); ++k)
        EXPECT_EQ(rb[k], expect[k]);
    rb.erase(0);
    EXPECT_EQ(rb.front(), 1);
    rb.erase(rb.size() - 1);
    EXPECT_EQ(rb.back(), 5);
}

TEST(RingBuffer, EraseDuringIndexedIterationVisitsEverySurvivor)
{
    // The issue loops walk a queue by logical index and erase entries
    // that issue, re-testing the same index afterwards. Pin those
    // semantics: erase(i) makes index i name the next-younger element,
    // everything older keeps its index, and no survivor is skipped.
    RingBuffer<int> rb(8);
    // Wrap the head so the scan crosses the physical seam.
    for (int i = 0; i < 5; ++i)
        rb.push_back(-1);
    for (int i = 0; i < 5; ++i)
        rb.pop_front();
    for (int i = 0; i < 8; ++i)
        rb.push_back(i);

    std::vector<int> visited;
    size_t i = 0;
    while (i < rb.size()) {
        visited.push_back(rb[i]);
        if (rb[i] % 2 == 0)
            rb.erase(i); // "issued": index i now names the next entry
        else
            ++i;
    }
    EXPECT_EQ(visited, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}))
        << "every element is visited exactly once";
    ASSERT_EQ(rb.size(), 4u);
    const int odd[] = {1, 3, 5, 7};
    for (size_t k = 0; k < rb.size(); ++k)
        EXPECT_EQ(rb[k], odd[k]) << "survivors keep their age order";
}

TEST(RingBuffer, PushSlotAppendsInPlace)
{
    RingBuffer<int> rb(4);
    rb.push_back(11);
    int &slot = rb.pushSlot();
    slot = 22; // caller must overwrite the (stale) slot contents
    ASSERT_EQ(rb.size(), 2u);
    EXPECT_EQ(rb.front(), 11);
    EXPECT_EQ(rb.back(), 22);

    // A slot freed by pop and re-pushed exposes the stale value — the
    // contract is "overwrite everything you read back".
    rb.pop_front();
    rb.pop_front();
    rb.push_back(1);
    rb.push_back(2);
    rb.push_back(3);
    rb.pushSlot() = 4;
    ASSERT_TRUE(rb.full());
    const int expect[] = {1, 2, 3, 4};
    for (size_t k = 0; k < rb.size(); ++k)
        EXPECT_EQ(rb[k], expect[k]);
}

TEST(RingBufferDeathTest, PushSlotOverflowIsRejectedNotGrown)
{
    RingBuffer<int> rb(2);
    rb.pushSlot() = 1;
    rb.pushSlot() = 2;
    ASSERT_TRUE(rb.full());
    EXPECT_DEATH(rb.pushSlot(), "RingBuffer overflow");
}

// ---------------------------------------------------------------------------
// Session reuse determinism
// ---------------------------------------------------------------------------

namespace {

sim::ProgramPtr
programOf(const std::string &workload, unsigned scale = 1)
{
    const auto &w = workloads::workloadByName(workload);
    return std::make_shared<const assembler::Program>(w.build(scale));
}

/** Field-by-field SimStats/SimResult comparison with a named context
 *  (SimStats has no operator==; enumerate every counter that feeds
 *  artifacts, tables, or figures). */
void
expectSameResult(const sim::SimResult &a, const sim::SimResult &b,
                 const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.halted, b.halted);
    const auto &x = a.stats, &y = b.stats;
    EXPECT_EQ(x.cycles, y.cycles);
    EXPECT_EQ(x.retired, y.retired);
    EXPECT_EQ(x.halted, y.halted);
    EXPECT_EQ(x.branches, y.branches);
    EXPECT_EQ(x.condBranches, y.condBranches);
    EXPECT_EQ(x.mispredicted, y.mispredicted);
    EXPECT_EQ(x.earlyResolvedBranches, y.earlyResolvedBranches);
    EXPECT_EQ(x.earlyRecoveredMispredicts, y.earlyRecoveredMispredicts);
    EXPECT_EQ(x.btbResteers, y.btbResteers);
    EXPECT_EQ(x.loads, y.loads);
    EXPECT_EQ(x.stores, y.stores);
    EXPECT_EQ(x.loadsForwardedFromStoreQ, y.loadsForwardedFromStoreQ);
    EXPECT_EQ(x.mbcMisspecFlushes, y.mbcMisspecFlushes);
    EXPECT_EQ(x.dl1Hits, y.dl1Hits);
    EXPECT_EQ(x.dl1Misses, y.dl1Misses);
    EXPECT_EQ(x.il1Misses, y.il1Misses);
    EXPECT_EQ(x.fetchStallMispredict, y.fetchStallMispredict);
    EXPECT_EQ(x.fetchStallIcache, y.fetchStallIcache);
    EXPECT_EQ(x.fetchStallQueueFull, y.fetchStallQueueFull);
    EXPECT_EQ(x.renameStallRob, y.renameStallRob);
    EXPECT_EQ(x.renameStallDispatchQ, y.renameStallDispatchQ);
    EXPECT_EQ(x.renameStallPregs, y.renameStallPregs);
    EXPECT_EQ(x.dispatchStallSched, y.dispatchStallSched);
    EXPECT_EQ(x.opt.instsRenamed, y.opt.instsRenamed);
    EXPECT_EQ(x.opt.earlyExecuted, y.opt.earlyExecuted);
    EXPECT_EQ(x.opt.movesEliminated, y.opt.movesEliminated);
    EXPECT_EQ(x.opt.branchesResolved, y.opt.branchesResolved);
    EXPECT_EQ(x.opt.memOps, y.opt.memOps);
    EXPECT_EQ(x.opt.loads, y.opt.loads);
    EXPECT_EQ(x.opt.addrKnown, y.opt.addrKnown);
    EXPECT_EQ(x.opt.loadsRemoved, y.opt.loadsRemoved);
    EXPECT_EQ(x.opt.loadsSynthesized, y.opt.loadsSynthesized);
    EXPECT_EQ(x.opt.mbcMisspecs, y.opt.mbcMisspecs);
    EXPECT_EQ(x.opt.symRewrites, y.opt.symRewrites);
    EXPECT_EQ(x.opt.depthBlocked, y.opt.depthBlocked);
    EXPECT_EQ(x.opt.strengthReductions, y.opt.strengthReductions);
    EXPECT_EQ(x.opt.branchInferences, y.opt.branchInferences);
    EXPECT_EQ(x.mbc.lookups, y.mbc.lookups);
    EXPECT_EQ(x.mbc.hits, y.mbc.hits);
    EXPECT_EQ(x.mbc.inserts, y.mbc.inserts);
    EXPECT_EQ(x.mbc.evictions, y.mbc.evictions);
    EXPECT_EQ(x.mbc.invalidations, y.mbc.invalidations);
    EXPECT_EQ(x.mbc.flushes, y.mbc.flushes);
}

} // namespace

TEST(SimSession, ReusedSessionMatchesFreshRunAfterUnrelatedJobs)
{
    const auto untst = programOf("untst");
    const auto mcf = programOf("mcf");
    const auto base = pipeline::MachineConfig::baseline();
    const auto opt = pipeline::MachineConfig::optimized();

    // Reference: every job on a fresh one-shot simulate().
    const auto refUntstBase = sim::simulate(*untst, base);
    const auto refUntstOpt = sim::simulate(*untst, opt);
    const auto refMcfOpt = sim::simulate(*mcf, opt);

    // One session runs a shuffle of unrelated jobs (different
    // programs, different machine configurations — including MBC
    // geometry and predictor changes) before and between the jobs
    // under test.
    sim::SimSession session;
    expectSameResult(session.simulate(untst, base), refUntstBase,
                     "cold session");
    expectSameResult(session.simulate(mcf, opt), refMcfOpt,
                     "after one job");
    expectSameResult(session.simulate(untst, opt), refUntstOpt,
                     "config flip on same program");
    session.simulate(mcf, pipeline::MachineConfig::fetchBound(true));
    session.simulate(untst, pipeline::MachineConfig::execBound(false));
    expectSameResult(session.simulate(untst, base), refUntstBase,
                     "same job after 4 unrelated jobs");
    expectSameResult(session.simulate(mcf, opt), refMcfOpt,
                     "and the optimized job again");
}

TEST(SimSession, RunWithoutResetIsFatal)
{
    sim::SimSession session;
    EXPECT_EXIT(session.run(), ::testing::ExitedWithCode(1),
                "without a prior reset");
    // ...and run() consumes the arming.
    session.reset(programOf("untst"),
                  pipeline::MachineConfig::baseline());
    EXPECT_TRUE(session.armed());
    session.run();
    EXPECT_FALSE(session.armed());
    EXPECT_EXIT(session.run(), ::testing::ExitedWithCode(1),
                "without a prior reset");
}

// ---------------------------------------------------------------------------
// Sweep-level regression: thread-local sessions == per-job construction
// ---------------------------------------------------------------------------

TEST(SimSession, SweepRunnerSessionsMatchPerJobConstruction)
{
    sim::SweepSpec spec;
    spec.workloads({"untst", "mcf", "g721d"})
        .config("base", pipeline::MachineConfig::baseline())
        .config("opt", pipeline::MachineConfig::optimized());

    // Two workers => both thread-local sessions run several jobs each.
    sim::SweepRunner runner({2, nullptr});
    const auto res = runner.run(spec);
    ASSERT_EQ(res.size(), 6u);

    sim::ProgramCache cache;
    for (const auto &r : res.all()) {
        const auto program = cache.get(r.job.workload, r.job.scale);
        const auto fresh =
            sim::simulate(*program, r.job.config, r.job.maxInsts);
        expectSameResult(r.sim, fresh, r.job.label);
    }
}

TEST(SimSession, AddPerfSkipsCacheHitsSoArtifactsNeverCarryLoaderTime)
{
    // A cache hit's wall time measures the artifact loader, not the
    // simulator; addPerf must leave such jobs unmeasured so a --perf
    // --result-cache run can never fake a host-perf improvement.
    sim::JobResult measured;
    measured.job.label = "w/measured";
    measured.sim.instructions = 1000;
    measured.hostSeconds = 0.5;
    measured.simSeconds = 0.4;
    measured.kips = 1000.0 / 0.4 / 1e3;
    sim::JobResult cached;
    cached.job.label = "w/cached";
    cached.sim.instructions = 1000;
    cached.hostSeconds = 0.0005; // loader time, not simulation
    cached.fromCache = true;     // simSeconds/kips stay 0
    sim::SweepResult res;
    res.add(measured);
    res.add(cached);

    auto art = sim::BenchArtifact::fromSweep(res);
    const std::string withoutPerf = art.toJson();
    art.addPerf(res);
    const auto *m = art.findJob("w/measured");
    const auto *c = art.findJob("w/cached");
    ASSERT_NE(m, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(m->hostSeconds, 0.4) << "simulation time, not "
                                             "whole-job time";
    EXPECT_DOUBLE_EQ(m->kips, 2.5);
    EXPECT_DOUBLE_EQ(c->hostSeconds, 0.0);
    EXPECT_DOUBLE_EQ(c->kips, 0.0);
    // And the serialized perf fields appear only on the measured job.
    const std::string withPerf = art.toJson();
    EXPECT_NE(withPerf, withoutPerf);
    EXPECT_NE(withPerf.find("\"host_seconds\""), std::string::npos);
    art.jobs.erase(art.jobs.begin()); // drop the measured job
    EXPECT_EQ(art.toJson().find("\"host_seconds\""), std::string::npos)
        << "an unmeasured job must serialize byte-identically to the "
           "pre-perf schema";
}

// ---------------------------------------------------------------------------
// Zero heap allocations on the warm path
// ---------------------------------------------------------------------------

TEST(SimSession, WarmRunPerformsZeroHeapAllocations)
{
    const auto prog = programOf("untst");
    const auto cfg = pipeline::MachineConfig::optimized();

    sim::SimSession session;
    const auto cold = session.simulate(prog, cfg);

    // Everything is sized now: the same job again — including the
    // reset — must not allocate at all. This is deliberately stronger
    // than "no allocations per instruction": the entire warm
    // reset+run cycle is allocation-free.
    const uint64_t before = g_newCalls.load(std::memory_order_relaxed);
    session.reset(prog, cfg);
    const auto warm = session.run();
    const uint64_t after = g_newCalls.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "warm reset+run allocated " << (after - before) << " times";
    expectSameResult(warm, cold, "warm vs cold");
    EXPECT_GT(warm.instructions, 1000u)
        << "the workload must be big enough to mean something";
}
