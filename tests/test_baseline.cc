/**
 * @file
 * Benchmark-artifact subsystem tests (src/sim/baseline.hh): the JSON
 * loader, write -> parse round-trip losslessness, the baseline
 * comparison gate (self-compare passes at tolerance 0; any injected
 * cycle drift is flagged with the offending label), shard merging, the
 * conopt_bench_check CLI exit codes, and the shared escaping helpers
 * used by the reporters.
 */

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/baseline.hh"
#include "src/sim/report.hh"
#include "src/sim/sweep.hh"
#include "src/workloads/workload.hh"

using namespace conopt;
namespace fs = std::filesystem;

namespace {

/** A fast two-config sweep over the cheapest workload. */
sim::SweepResult
smallSweep()
{
    sim::SweepSpec spec;
    spec.workload("untst")
        .config("base", pipeline::MachineConfig::baseline())
        .config("opt", pipeline::MachineConfig::optimized());
    sim::SweepRunner runner({2, nullptr});
    return runner.run(spec);
}

sim::BenchArtifact
smallArtifact()
{
    const auto res = smallSweep();
    auto art = sim::BenchArtifact::fromSweep(res);
    art.bench = "test_bench";
    art.addGeomeans(res, "base", {"opt"});
    return art;
}

/** Scratch directory for artifact files, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        path = fs::temp_directory_path() /
               ("conopt_test_baseline_" +
                std::to_string(uint64_t(::getpid())) + "_" +
                std::to_string(counter()++));
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }

    static unsigned &
    counter()
    {
        static unsigned c = 0;
        return c;
    }
};

} // namespace

// ---------------------------------------------------------------------------
// JsonValue: the minimal loader.
// ---------------------------------------------------------------------------

TEST(JsonValue, ParsesScalarsAndNesting)
{
    sim::JsonValue v;
    std::string err;
    ASSERT_TRUE(sim::JsonValue::parse(
        R"({"a": 1, "b": [true, false, null], "c": {"d": "x"},
            "big": 18446744073709551615, "neg": -2.5, "exp": 1e3})",
        &v, &err))
        << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.get("a")->asU64(), 1u);
    ASSERT_TRUE(v.get("b")->isArray());
    EXPECT_EQ(v.get("b")->size(), 3u);
    EXPECT_TRUE(v.get("b")->at(0).asBool());
    EXPECT_EQ(v.get("c")->get("d")->asString(), "x");
    // uint64 values survive exactly (numbers kept as raw text).
    EXPECT_EQ(v.get("big")->asU64(), UINT64_MAX);
    EXPECT_DOUBLE_EQ(v.get("neg")->asDouble(), -2.5);
    EXPECT_DOUBLE_EQ(v.get("exp")->asDouble(), 1000.0);
    EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(JsonValue, ParsesStringEscapes)
{
    sim::JsonValue v;
    std::string err;
    ASSERT_TRUE(sim::JsonValue::parse(
        R"(["q\"q", "b\\b", "nl\n", "tab\t", "uniA\u00e9"])", &v,
        &err))
        << err;
    EXPECT_EQ(v.at(0).asString(), "q\"q");
    EXPECT_EQ(v.at(1).asString(), "b\\b");
    EXPECT_EQ(v.at(2).asString(), "nl\n");
    EXPECT_EQ(v.at(3).asString(), "tab\t");
    EXPECT_EQ(v.at(4).asString(), "uniA\xc3\xa9");
}

TEST(JsonValue, RejectsPathologicalNestingWithoutCrashing)
{
    // 300 unmatched '[' would overflow the stack without a depth
    // bound; must fail as a parse error, not SIGSEGV.
    sim::JsonValue v;
    std::string err;
    EXPECT_FALSE(sim::JsonValue::parse(std::string(300, '['), &v, &err));
    EXPECT_NE(err.find("nesting too deep"), std::string::npos);
    // 200 levels (under the bound) still parse fine.
    const std::string deep =
        std::string(200, '[') + "1" + std::string(200, ']');
    EXPECT_TRUE(sim::JsonValue::parse(deep, &v, &err)) << err;
}

TEST(JsonValue, RejectsMalformedInput)
{
    sim::JsonValue v;
    std::string err;
    for (const char *bad :
         {"", "{", "[1,", "{\"a\":1,", "{\"a\" 1}", "tru", "[1] garbage",
          "\"unterm", "{\"a\": 01x}", "[\"ctrl\nchar\"]"}) {
        err.clear();
        EXPECT_FALSE(sim::JsonValue::parse(bad, &v, &err))
            << "accepted: " << bad;
        // Every rejection must carry a diagnostic (no stale/empty err).
        EXPECT_NE(err.find("JSON error"), std::string::npos)
            << "no diagnostic for: " << bad;
    }
}

TEST(JsonValue, StrictNumberAccessorsValidateTheFullToken)
{
    sim::JsonValue v;
    std::string err;
    ASSERT_TRUE(sim::JsonValue::parse(
        R"([42, 1.5, 1e3, -1, 18446744073709551615,
            18446744073709551616, 1e999])",
        &v, &err))
        << err;

    uint64_t u = 0;
    EXPECT_TRUE(v.at(0).asU64Strict(&u));
    EXPECT_EQ(u, 42u);
    // A fraction, exponent, or sign is not the integer the caller is
    // about to compare cycle counts against.
    EXPECT_FALSE(v.at(1).asU64Strict(&u)) << "1.5";
    EXPECT_FALSE(v.at(2).asU64Strict(&u)) << "1e3";
    EXPECT_FALSE(v.at(3).asU64Strict(&u)) << "-1";
    EXPECT_TRUE(v.at(4).asU64Strict(&u));
    EXPECT_EQ(u, UINT64_MAX);
    // One past UINT64_MAX used to clamp to ULLONG_MAX silently.
    EXPECT_FALSE(v.at(5).asU64Strict(&u));

    double d = 0.0;
    EXPECT_TRUE(v.at(1).asDoubleStrict(&d));
    EXPECT_DOUBLE_EQ(d, 1.5);
    EXPECT_TRUE(v.at(3).asDoubleStrict(&d));
    EXPECT_DOUBLE_EQ(d, -1.0);
    // Overflow to infinity is rejected, and the lenient accessors now
    // agree with the strict ones (0 instead of garbage).
    EXPECT_FALSE(v.at(6).asDoubleStrict(&d));
    EXPECT_DOUBLE_EQ(v.at(6).asDouble(), 0.0);
    EXPECT_EQ(v.at(5).asU64(), 0u);

    // Non-number nodes fail strictly too.
    sim::JsonValue s;
    ASSERT_TRUE(sim::JsonValue::parse(R"("12")", &s, &err)) << err;
    EXPECT_FALSE(s.asU64Strict(&u));
    EXPECT_FALSE(s.asDoubleStrict(&d));
}

// ---------------------------------------------------------------------------
// Escaping helpers shared by reporters and the artifact writer.
// ---------------------------------------------------------------------------

TEST(Escaping, JsonEscapeHandlesQuotesBackslashesAndControls)
{
    EXPECT_EQ(sim::jsonEscape("plain"), "plain");
    EXPECT_EQ(sim::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(sim::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(sim::jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(sim::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Escaping, CsvFieldQuotesOnlyWhenNeeded)
{
    EXPECT_EQ(sim::csvField("plain"), "plain");
    EXPECT_EQ(sim::csvField("a,b"), "\"a,b\"");
    EXPECT_EQ(sim::csvField("a\"b"), "\"a\"\"b\"");
    EXPECT_EQ(sim::csvField("a\nb"), "\"a\nb\"");
}

// ---------------------------------------------------------------------------
// Artifact write -> parse round trip is lossless.
// ---------------------------------------------------------------------------

TEST(BenchArtifact, RoundTripIsLossless)
{
    const auto art = smallArtifact();
    ASSERT_EQ(art.jobs.size(), 2u);
    ASSERT_EQ(art.geomeans.size(), 1u);
    EXPECT_GT(art.jobs[0].cycles, 0u);

    sim::BenchArtifact back;
    std::string err;
    ASSERT_TRUE(sim::parseArtifact(art.toJson(), &back, &err)) << err;

    EXPECT_EQ(back.bench, art.bench);
    EXPECT_EQ(back.scale, art.scale);
    EXPECT_EQ(back.threads, art.threads);
    EXPECT_EQ(back.fingerprint(), art.fingerprint());
    ASSERT_EQ(back.jobs.size(), art.jobs.size());
    for (size_t i = 0; i < art.jobs.size(); ++i) {
        const auto &a = art.jobs[i];
        const auto &b = back.jobs[i];
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.workload, b.workload);
        EXPECT_EQ(a.suite, b.suite);
        EXPECT_EQ(a.config, b.config);
        EXPECT_EQ(a.scale, b.scale);
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_DOUBLE_EQ(a.ipc, b.ipc); // %.17g round-trips exactly
        EXPECT_EQ(a.halted, b.halted);
        EXPECT_EQ(a.configFingerprint, b.configFingerprint);
        EXPECT_EQ(a.optEarlyExecuted, b.optEarlyExecuted);
        EXPECT_EQ(a.optMbcMisspecs, b.optMbcMisspecs);
    }
    EXPECT_DOUBLE_EQ(back.geomeans.at("opt"), art.geomeans.at("opt"));

    // Strongest form: re-serialization is byte-identical.
    EXPECT_EQ(back.toJson(), art.toJson());
}

TEST(BenchArtifact, SaveAndLoadThroughTheFilesystem)
{
    TempDir tmp;
    const auto art = smallArtifact();
    std::string err;
    ASSERT_TRUE(art.save(tmp.file("a.json"), &err)) << err;

    sim::BenchArtifact back;
    ASSERT_TRUE(sim::loadArtifact(tmp.file("a.json"), &back, &err)) << err;
    EXPECT_EQ(back.toJson(), art.toJson());

    EXPECT_FALSE(sim::loadArtifact(tmp.file("absent.json"), &back, &err));
    EXPECT_NE(err.find("absent.json"), std::string::npos);
}

TEST(BenchArtifact, ParserRejectsDuplicateJobLabels)
{
    // A duplicated label would let a drifted second record hide behind
    // a clean first one (findJob returns the first match).
    auto art = smallArtifact();
    art.jobs.push_back(art.jobs[0]);
    sim::BenchArtifact back;
    std::string err;
    EXPECT_FALSE(sim::parseArtifact(art.toJson(), &back, &err));
    EXPECT_NE(err.find("duplicate job label"), std::string::npos);
}

TEST(BenchArtifact, LoaderRejectsMalformedNumbersAsParseErrors)
{
    // A truncated or corrupted numeric token used to parse as 0 (or
    // ULLONG_MAX-clamped garbage) via bare strtoull, and the gate then
    // compared against the wrong value. Malformed numbers must be
    // parse errors (CLI exit 2), never a bogus drift/match.
    const auto art = smallArtifact();
    const std::string good = art.toJson();
    const std::string cyclesTok =
        "\"cycles\": " + std::to_string(art.jobs[0].cycles);
    ASSERT_NE(good.find(cyclesTok), std::string::npos);

    sim::BenchArtifact back;
    std::string err;
    for (const char *bad :
         {"\"cycles\": 1.5", "\"cycles\": 18446744073709551616",
          "\"cycles\": 1e3"}) {
        std::string json = good;
        json.replace(json.find(cyclesTok), cyclesTok.size(), bad);
        err.clear();
        EXPECT_FALSE(sim::parseArtifact(json, &back, &err))
            << "accepted: " << bad;
        EXPECT_NE(err.find("cycles"), std::string::npos)
            << "diagnostic must name the field: " << err;
    }

    // Top-level scale beyond 32 bits is rejected, not truncated.
    const std::string scaleTok =
        "\"scale\": " + std::to_string(art.scale);
    std::string json = good;
    json.replace(json.find(scaleTok), scaleTok.size(),
                 "\"scale\": 8589934592");
    EXPECT_FALSE(sim::parseArtifact(json, &back, &err));
    EXPECT_NE(err.find("scale"), std::string::npos);
}

TEST(BenchCheckCli, MalformedCandidateNumbersExitTwoNotDriftOrMatch)
{
    TempDir tmp;
    const auto art = smallArtifact();
    std::string err;
    ASSERT_TRUE(art.save(tmp.file("base.json"), &err)) << err;

    std::string json = art.toJson();
    const std::string cyclesTok =
        "\"cycles\": " + std::to_string(art.jobs[0].cycles);
    json.replace(json.find(cyclesTok), cyclesTok.size(),
                 "\"cycles\": 0.5");
    std::FILE *f = std::fopen(tmp.file("corrupt.json").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(json.c_str(), f);
    std::fclose(f);

    EXPECT_EQ(sim::benchCheckMain({tmp.file("base.json"),
                                   tmp.file("corrupt.json")}),
              2);
}

TEST(BenchArtifact, ParserRejectsCorruptedFingerprint)
{
    auto art = smallArtifact();
    std::string json = art.toJson();
    // Tamper with one per-job fingerprint; the stored combined
    // fingerprint no longer matches and the document is rejected.
    const auto pos = json.find(art.jobs[0].configFingerprint);
    ASSERT_NE(pos, std::string::npos);
    json[pos + 4] = json[pos + 4] == '0' ? '1' : '0';
    sim::BenchArtifact back;
    std::string err;
    EXPECT_FALSE(sim::parseArtifact(json, &back, &err));
    EXPECT_NE(err.find("fingerprint"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Comparison: the regression gate.
// ---------------------------------------------------------------------------

TEST(CompareArtifacts, SelfCompareAtToleranceZeroPasses)
{
    const auto art = smallArtifact();
    const auto res = sim::compareArtifacts(art, art, {0.0});
    EXPECT_TRUE(res.ok);
    EXPECT_TRUE(res.diffs.empty());
}

TEST(CompareArtifacts, PerturbedCyclesFlaggedWithTheOffendingLabel)
{
    const auto base = smallArtifact();
    auto cand = base;
    cand.jobs[1].cycles += 1;
    const auto res = sim::compareArtifacts(base, cand, {0.0});
    ASSERT_FALSE(res.ok);
    ASSERT_EQ(res.diffs.size(), 1u);
    EXPECT_NE(res.diffs[0].find("cycles drift"), std::string::npos);
    EXPECT_NE(res.diffs[0].find(base.jobs[1].label), std::string::npos)
        << "the message must name the offending label: " << res.diffs[0];

    // A 1-cycle drift is inside a 10% relative tolerance.
    EXPECT_TRUE(sim::compareArtifacts(base, cand, {0.1}).ok);
}

TEST(CompareArtifacts, FlagsCounterGeomeanAndMembershipDrift)
{
    const auto base = smallArtifact();

    auto counters = base;
    counters.jobs[1].optLoadsRemoved += 5;
    const auto c1 = sim::compareArtifacts(base, counters, {0.0});
    ASSERT_FALSE(c1.ok);
    EXPECT_NE(c1.message().find("opt.loads_removed"), std::string::npos);
    EXPECT_NE(c1.message().find(base.jobs[1].label), std::string::npos);

    auto gm = base;
    gm.geomeans["opt"] *= 1.5;
    const auto c2 = sim::compareArtifacts(base, gm, {0.0});
    ASSERT_FALSE(c2.ok);
    EXPECT_NE(c2.message().find("geomean drift on 'opt'"),
              std::string::npos);

    // Last-ulp libm noise must not trip the tolerance-0 gate: the
    // geomean check carries a 1e-12 relative floor.
    auto ulp = base;
    ulp.geomeans["opt"] =
        std::nextafter(base.geomeans.at("opt"), 2.0);
    EXPECT_TRUE(sim::compareArtifacts(base, ulp, {0.0}).ok);

    auto missing = base;
    missing.jobs.pop_back();
    const auto c3 = sim::compareArtifacts(base, missing, {0.0});
    ASSERT_FALSE(c3.ok);
    EXPECT_NE(c3.message().find("missing from candidate"),
              std::string::npos);
    // And the reverse direction flags the unexpected extra job.
    const auto c4 = sim::compareArtifacts(missing, base, {0.0});
    ASSERT_FALSE(c4.ok);
    EXPECT_NE(c4.message().find("not in baseline"), std::string::npos);
}

TEST(CompareArtifacts, FlagsScaleAndConfigFingerprintDrift)
{
    const auto base = smallArtifact();

    auto scaled = base;
    scaled.scale = base.scale + 1;
    EXPECT_FALSE(sim::compareArtifacts(base, scaled, {0.0}).ok);

    auto fp = base;
    fp.jobs[0].configFingerprint = "0x0000000000000000";
    const auto res = sim::compareArtifacts(base, fp, {0.0});
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.message().find("config fingerprint drift"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Shard merge.
// ---------------------------------------------------------------------------

TEST(BenchArtifact, ShardMergeEqualsSingleRunArtifact)
{
    const auto full = smallArtifact();
    ASSERT_EQ(full.jobs.size(), 2u);

    // Split the single-run artifact into two disjoint shards.
    auto shard0 = full;
    auto shard1 = full;
    shard0.jobs = {full.jobs[0]};
    shard1.jobs = {full.jobs[1]};

    auto merged = shard0;
    std::string err;
    ASSERT_TRUE(merged.merge(shard1, &err)) << err;

    EXPECT_EQ(merged.jobs.size(), full.jobs.size());
    EXPECT_EQ(merged.fingerprint(), full.fingerprint());
    EXPECT_TRUE(sim::compareArtifacts(full, merged, {0.0}).ok);
    EXPECT_TRUE(sim::compareArtifacts(merged, full, {0.0}).ok);
}

TEST(BenchArtifact, MergeRejectsOverlapsAndMismatches)
{
    const auto full = smallArtifact();
    std::string err;

    auto dup = full;
    EXPECT_FALSE(dup.merge(full, &err));
    EXPECT_NE(err.find("duplicate job label"), std::string::npos);

    auto other = full;
    other.scale = full.scale + 1;
    other.jobs.clear();
    auto into = full;
    EXPECT_FALSE(into.merge(other, &err));
    EXPECT_NE(err.find("different scales"), std::string::npos);

    auto wrongBench = full;
    wrongBench.bench = "something_else";
    into = full;
    EXPECT_FALSE(into.merge(wrongBench, &err));
    EXPECT_NE(err.find("cannot merge"), std::string::npos);

    // Geomeans are whole-figure aggregates: one-sided or conflicting
    // maps must be rejected, not silently adopted.
    auto partial = full;
    partial.jobs.clear();
    partial.geomeans.clear();
    into = full;
    EXPECT_FALSE(into.merge(partial, &err));
    EXPECT_NE(err.find("geomeans differ"), std::string::npos);
    auto conflicting = full;
    conflicting.jobs.clear();
    conflicting.geomeans["opt"] *= 2.0;
    into = full;
    EXPECT_FALSE(into.merge(conflicting, &err));
    EXPECT_NE(err.find("geomeans differ"), std::string::npos);
}

TEST(CompareArtifacts, CycleComparisonStaysExactBeyondDoublePrecision)
{
    // 2^53 and 2^53+1 collapse onto the same double; the tolerance-0
    // gate must still see them as drift.
    sim::BenchArtifact base;
    base.bench = "precision";
    sim::ArtifactJob j;
    j.label = "big/cfg";
    j.cycles = (uint64_t(1) << 53) + 1;
    base.jobs.push_back(j);
    auto cand = base;
    cand.jobs[0].cycles = uint64_t(1) << 53;

    EXPECT_DOUBLE_EQ(double(base.jobs[0].cycles),
                     double(cand.jobs[0].cycles));
    const auto res = sim::compareArtifacts(base, cand, {0.0});
    ASSERT_FALSE(res.ok);
    EXPECT_NE(res.message().find("cycles drift on 'big/cfg'"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// conopt_bench_check CLI exit behaviour (in-process).
// ---------------------------------------------------------------------------

TEST(BenchCheckCli, SelfCompareExitsZeroAndDriftExitsNonZero)
{
    TempDir tmp;
    const auto base = smallArtifact();
    auto drifted = base;
    drifted.jobs[0].cycles += 100;

    std::string err;
    ASSERT_TRUE(base.save(tmp.file("base.json"), &err)) << err;
    ASSERT_TRUE(drifted.save(tmp.file("drift.json"), &err)) << err;

    EXPECT_EQ(sim::benchCheckMain({tmp.file("base.json"),
                                   tmp.file("base.json")}),
              0);
    EXPECT_NE(sim::benchCheckMain({tmp.file("base.json"),
                                   tmp.file("drift.json")}),
              0);
    // The injected 100-cycle drift passes under a generous relative
    // tolerance (untst runs for far more than 102 cycles).
    ASSERT_GT(base.jobs[0].cycles, 102u);
    EXPECT_EQ(sim::benchCheckMain({"--tolerance", "0.99",
                                   tmp.file("base.json"),
                                   tmp.file("drift.json")}),
              0);
}

TEST(BenchCheckCli, UsageAndIoErrorsExitTwo)
{
    TempDir tmp;
    EXPECT_EQ(sim::benchCheckMain({}), 2);
    EXPECT_EQ(sim::benchCheckMain({"one_path_only.json"}), 2);
    EXPECT_EQ(sim::benchCheckMain({"--bogus-flag", "a", "b"}), 2);
    EXPECT_EQ(sim::benchCheckMain({tmp.file("nope.json"),
                                   tmp.file("nope.json")}),
              2);
}

TEST(BenchCheckCli, EmptyShardDirectoryExitsTwoNotSuccess)
{
    TempDir tmp;
    const auto base = smallArtifact();
    std::string err;
    ASSERT_TRUE(base.save(tmp.file("base.json"), &err)) << err;

    // A shard directory with zero artifacts means the shards never
    // ran (or wrote elsewhere): a hard error (2), never an "empty
    // merge" that could pass or merely drift.
    const auto emptyDir = tmp.path / "empty";
    fs::create_directories(emptyDir);
    EXPECT_EQ(sim::benchCheckMain({tmp.file("base.json"),
                                   emptyDir.string()}),
              2);
    EXPECT_EQ(sim::benchCheckMain({emptyDir.string(),
                                   tmp.file("base.json")}),
              2);

    // Non-artifact clutter does not count as a shard artifact.
    const auto junkDir = tmp.path / "junk";
    fs::create_directories(junkDir);
    std::FILE *f = std::fopen((junkDir / "notes.txt").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not an artifact\n", f);
    std::fclose(f);
    EXPECT_EQ(sim::benchCheckMain({tmp.file("base.json"),
                                   junkDir.string()}),
              2);
}

TEST(BenchCheckCli, ZeroJobArtifactsExitTwoNotMatch)
{
    // Two zero-job artifacts compare "equal", but such a gate checks
    // nothing: benchCheckMain must reject them as errors on either
    // side instead of reporting a vacuous match.
    TempDir tmp;
    auto empty = smallArtifact();
    empty.jobs.clear();
    empty.geomeans.clear();
    std::string err;
    ASSERT_TRUE(empty.save(tmp.file("empty.json"), &err)) << err;
    const auto full = smallArtifact();
    ASSERT_TRUE(full.save(tmp.file("full.json"), &err)) << err;

    EXPECT_EQ(sim::benchCheckMain({tmp.file("empty.json"),
                                   tmp.file("empty.json")}),
              2);
    EXPECT_EQ(sim::benchCheckMain({tmp.file("empty.json"),
                                   tmp.file("full.json")}),
              2);
    EXPECT_EQ(sim::benchCheckMain({tmp.file("full.json"),
                                   tmp.file("empty.json")}),
              2);
}

TEST(BenchCheckCli, DirectoryOfShardsIsMergedBeforeComparing)
{
    TempDir tmp;
    const auto full = smallArtifact();
    auto shard0 = full;
    auto shard1 = full;
    shard0.jobs = {full.jobs[0]};
    shard1.jobs = {full.jobs[1]};

    const auto shardDir = tmp.path / "shards";
    fs::create_directories(shardDir);
    std::string err;
    ASSERT_TRUE(shard0.save((shardDir / "shard0.json").string(), &err))
        << err;
    ASSERT_TRUE(shard1.save((shardDir / "shard1.json").string(), &err))
        << err;
    ASSERT_TRUE(full.save(tmp.file("full.json"), &err)) << err;

    EXPECT_EQ(sim::benchCheckMain({tmp.file("full.json"),
                                   shardDir.string()}),
              0);
    EXPECT_EQ(sim::benchCheckMain({shardDir.string(),
                                   tmp.file("full.json")}),
              0);
}

// ---------------------------------------------------------------------------
// Reporter golden test: JsonReporter output parses with the new loader
// and survives hostile labels.
// ---------------------------------------------------------------------------

TEST(ReporterGolden, JsonReporterOutputParsesAndSurvivesHostileLabels)
{
    const auto &w = workloads::workloadByName("untst");
    const auto prog =
        std::make_shared<const assembler::Program>(w.build(1));

    sim::SimJob a, b;
    a.label = "he said \"hi\"";
    a.program = prog;
    a.config = pipeline::MachineConfig::baseline();
    b.label = "back\\slash,comma";
    b.program = prog;
    b.config = pipeline::MachineConfig::optimized();

    sim::SweepRunner runner({2, nullptr});
    const auto res = runner.run({a, b});

    char buf[65536] = {};
    std::FILE *f = fmemopen(buf, sizeof(buf), "w");
    ASSERT_NE(f, nullptr);
    sim::JsonReporter().report(res, f);
    std::fclose(f);

    sim::JsonValue doc;
    std::string err;
    ASSERT_TRUE(sim::JsonValue::parse(buf, &doc, &err)) << err;
    ASSERT_TRUE(doc.isArray());
    ASSERT_EQ(doc.size(), 2u);
    EXPECT_EQ(doc.at(0).get("label")->asString(), "he said \"hi\"");
    EXPECT_EQ(doc.at(1).get("label")->asString(), "back\\slash,comma");
    EXPECT_EQ(doc.at(0).get("cycles")->asU64(),
              res.all()[0].sim.stats.cycles);
    ASSERT_NE(doc.at(0).get("opt"), nullptr);
    EXPECT_EQ(doc.at(0).get("opt")->get("early_executed")->asU64(),
              res.all()[0].sim.stats.opt.earlyExecuted);
}

TEST(ReporterGolden, CsvReporterQuotesHostileLabels)
{
    const auto &w = workloads::workloadByName("untst");
    const auto prog =
        std::make_shared<const assembler::Program>(w.build(1));
    sim::SimJob a;
    a.label = "comma,label";
    a.program = prog;
    a.config = pipeline::MachineConfig::baseline();

    sim::SweepRunner runner({1, nullptr});
    const auto res = runner.run({a});

    char buf[16384] = {};
    std::FILE *f = fmemopen(buf, sizeof(buf), "w");
    ASSERT_NE(f, nullptr);
    sim::CsvReporter().report(res, f);
    std::fclose(f);

    EXPECT_NE(std::string(buf).find("\"comma,label\""),
              std::string::npos);
}
