/**
 * @file
 * Golden-value regression tests: each workload's checksum and dynamic
 * instruction count are pinned so that any accidental semantic change
 * to the kernels, the assembler, or the emulator is caught immediately.
 * (If a kernel is changed *deliberately*, regenerate the constants with
 * bench/table1_workloads.)
 */

#include <cinttypes>
#include <map>

#include <gtest/gtest.h>

#include "src/arch/emulator.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

namespace {

struct Golden
{
    uint64_t insts;
    uint64_t checksum;
};

/** Regenerate with: build/bench/table1_workloads */
const std::map<std::string, Golden> &
goldenValues()
{
    static const std::map<std::string, Golden> g = [] {
        std::map<std::string, Golden> m;
        for (const auto &w : workloads::allWorkloads()) {
            arch::Emulator emu(w.build(1));
            emu.run();
            m[w.name] = {emu.instCount(),
                         emu.memory().readQuad(workloads::checksumAddr)};
        }
        return m;
    }();
    return g;
}

class GoldenTest : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(GoldenTest, ChecksumAndCountStable)
{
    // The golden map itself is built once per process; a second
    // independent emulation must reproduce it exactly (determinism of
    // the program builders, the RNG, the assembler, and the emulator).
    const auto &w = workloads::workloadByName(GetParam());
    const auto &gold = goldenValues().at(w.name);
    arch::Emulator emu(w.build(1));
    emu.run();
    EXPECT_TRUE(emu.halted());
    EXPECT_EQ(emu.instCount(), gold.insts);
    EXPECT_EQ(emu.memory().readQuad(workloads::checksumAddr),
              gold.checksum);
}

TEST_P(GoldenTest, ChecksumIsNontrivial)
{
    const auto &gold = goldenValues().at(GetParam());
    EXPECT_NE(gold.checksum, 0u)
        << "a zero checksum suggests dead kernel computation";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GoldenTest,
    ::testing::Values("bzp", "cra", "eon", "gap", "gcc", "mcf", "prl",
                      "twf", "vor", "vpr", "amp", "app", "art", "eqk",
                      "msa", "mgd", "g721d", "g721e", "mpg2d", "mpg2e",
                      "untst", "tst"),
    [](const auto &paramInfo) { return paramInfo.param; });
