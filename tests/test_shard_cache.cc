/**
 * @file
 * Sharded-sweep and persistent-result-cache tests.
 *
 * The load-bearing properties:
 *   - the round-robin shard partition is balanced, disjoint, and
 *     complete, and the union of any n shards is label-for-label
 *     identical to the unsharded sweep (so splitting a sweep across
 *     processes can never change the science);
 *   - merged shard artifacts are byte-identical to the single-run
 *     artifact once both are put in canonical job order and the
 *     figure geomeans are recomputed post-merge;
 *   - a repeated sweep against a warm ResultCache performs zero new
 *     simulations (the hit/miss counters prove it), returns bitwise
 *     identical results, and invalidates on any key ingredient
 *     change; corrupt cache entries degrade to misses, never to
 *     wrong results or crashes;
 *   - the progress callback reports every job exactly once with a
 *     monotonic done-counter.
 */

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/baseline.hh"
#include "src/sim/fingerprint.hh"
#include "src/sim/result_cache.hh"
#include "src/sim/sweep.hh"
#include "src/workloads/workload.hh"

using namespace conopt;
namespace fs = std::filesystem;

namespace {

/** A small but non-trivial cross product: 3 workloads x 2 machines. */
sim::SweepSpec
smallSpec()
{
    sim::SweepSpec spec;
    spec.workloads({"untst", "mcf", "g721d"})
        .config("base", pipeline::MachineConfig::baseline())
        .config("opt", pipeline::MachineConfig::optimized());
    return spec;
}

/** Scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        path = fs::temp_directory_path() /
               ("conopt_test_shard_cache_" +
                std::to_string(uint64_t(::getpid())) + "_" +
                std::to_string(counter()++));
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }

    static unsigned &
    counter()
    {
        static unsigned c = 0;
        return c;
    }
};

sim::SweepOptions
shardOpts(unsigned index, unsigned count)
{
    sim::SweepOptions o;
    o.run.threads = 2;
    o.run.shard = {index, count};
    return o;
}

} // namespace

// ---------------------------------------------------------------------------
// parseShard: the strict "i/n" grammar.
// ---------------------------------------------------------------------------

TEST(ParseShard, AcceptsWellFormedSpecs)
{
    sim::ShardSpec s;
    ASSERT_TRUE(sim::parseShard("0/2", &s));
    EXPECT_EQ(s.index, 0u);
    EXPECT_EQ(s.count, 2u);
    EXPECT_TRUE(s.active());
    ASSERT_TRUE(sim::parseShard("1/2", &s));
    EXPECT_EQ(s.index, 1u);
    ASSERT_TRUE(sim::parseShard("0/1", &s));
    EXPECT_FALSE(s.active());
    ASSERT_TRUE(sim::parseShard("7/8", &s));
    EXPECT_EQ(s.index, 7u);
    EXPECT_EQ(s.count, 8u);
}

TEST(ParseShard, RejectsGarbageAndOutOfRange)
{
    sim::ShardSpec s;
    for (const char *bad :
         {"", "2", "2/", "/2", "2/2", "3/2", "1/0", "-1/2", "0/-2",
          "0/2x", "x0/2", " 0/2", "0/2 ", "0 /2", "0/ 2", "1//2",
          "0.5/2", "0/2/3"})
        EXPECT_FALSE(sim::parseShard(bad, &s)) << "accepted: " << bad;
}

// ---------------------------------------------------------------------------
// Shard partition: balanced, disjoint, complete, label-stable.
// ---------------------------------------------------------------------------

TEST(ShardedSweep, UnionOfShardsMatchesUnshardedJobForJob)
{
    sim::SweepRunner full({2, nullptr});
    const auto whole = full.run(smallSpec());
    ASSERT_EQ(whole.size(), 6u);

    for (unsigned n : {2u, 3u, 5u}) {
        std::map<std::string, uint64_t> cycles;
        size_t minShard = whole.size(), maxShard = 0;
        for (unsigned i = 0; i < n; ++i) {
            sim::SweepRunner part(shardOpts(i, n));
            const auto res = part.run(smallSpec());
            minShard = std::min(minShard, res.size());
            maxShard = std::max(maxShard, res.size());
            for (const auto &r : res.all()) {
                // Disjoint: no label appears in two shards.
                const bool inserted =
                    cycles.emplace(r.job.label, r.sim.stats.cycles)
                        .second;
                EXPECT_TRUE(inserted)
                    << r.job.label << " ran in two shards (n=" << n
                    << ")";
            }
        }
        // Balanced: round-robin shard sizes differ by at most one.
        EXPECT_LE(maxShard - minShard, 1u) << "n=" << n;
        // Complete and identical: every unsharded job, same cycles.
        ASSERT_EQ(cycles.size(), whole.size()) << "n=" << n;
        for (const auto &r : whole.all()) {
            ASSERT_TRUE(cycles.count(r.job.label)) << r.job.label;
            EXPECT_EQ(cycles.at(r.job.label), r.sim.stats.cycles)
                << r.job.label << " (n=" << n << ")";
        }
    }
}

TEST(ShardedSweep, ShardJobsKeepSeedsAndScalesOfTheFullSweep)
{
    // The shard partition happens after normalization of the FULL job
    // list, so a job's seed/scale must not depend on which shard (or
    // no shard) ran it.
    sim::SweepRunner full({1, nullptr});
    const auto whole = full.run(smallSpec());
    for (unsigned i = 0; i < 2; ++i) {
        sim::SweepRunner part(shardOpts(i, 2));
        const auto res = part.run(smallSpec());
        for (const auto &r : res.all()) {
            const auto &w = whole.at(r.job.label);
            EXPECT_EQ(r.job.seed, w.job.seed) << r.job.label;
            EXPECT_EQ(r.job.scale, w.job.scale) << r.job.label;
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded artifacts: merge + post-merge geomean recompute.
// ---------------------------------------------------------------------------

TEST(ShardedSweep, MergedShardArtifactsByteIdenticalAfterGeomeanRecompute)
{
    const auto spec = smallSpec();

    sim::SweepRunner full({2, nullptr});
    auto artFull = sim::BenchArtifact::fromSweep(full.run(spec));
    artFull.bench = "shard_test";

    sim::BenchArtifact merged;
    for (unsigned i = 0; i < 2; ++i) {
        sim::SweepRunner part(shardOpts(i, 2));
        auto shard = sim::BenchArtifact::fromSweep(part.run(spec));
        shard.bench = "shard_test";
        std::string err;
        if (i == 0) {
            merged = std::move(shard);
        } else {
            ASSERT_TRUE(merged.merge(shard, &err)) << err;
        }
    }
    ASSERT_EQ(merged.jobs.size(), artFull.jobs.size());

    // Label-keyed equivalence holds as-is, both directions.
    EXPECT_TRUE(sim::compareArtifacts(artFull, merged, {0.0}).ok);
    EXPECT_TRUE(sim::compareArtifacts(merged, artFull, {0.0}).ok);

    // Byte-identical once both sides are canonicalized: merge order
    // interleaves jobs differently, so sort by label, then recompute
    // the deferred figure geomeans from the persisted records.
    const auto canonical = [](sim::BenchArtifact a) {
        a.sortJobsByLabel();
        a.addGeomeansFromJobs("base", {"opt"});
        return a.toJson();
    };
    EXPECT_EQ(canonical(merged), canonical(artFull));
}

TEST(ShardedSweep, GeomeansFromJobsMatchesLiveSweepGeomeans)
{
    // On a single-run artifact (job order untouched) the recompute
    // must reproduce addGeomeans() bit for bit.
    sim::SweepRunner runner({2, nullptr});
    const auto res = runner.run(smallSpec());
    auto live = sim::BenchArtifact::fromSweep(res);
    live.addGeomeans(res, "base", {"opt"});
    auto recomputed = sim::BenchArtifact::fromSweep(res);
    recomputed.addGeomeansFromJobs("base", {"opt"});
    ASSERT_EQ(live.geomeans.size(), 1u);
    ASSERT_EQ(recomputed.geomeans.size(), 1u);
    EXPECT_EQ(live.geomeans.at("opt"), recomputed.geomeans.at("opt"));
}

TEST(BenchCheckCli, RecomputeGeomeansGatesShardDirAgainstFullBaseline)
{
    TempDir tmp;
    const auto spec = smallSpec();

    sim::SweepRunner full({2, nullptr});
    const auto res = full.run(spec);
    auto baseline = sim::BenchArtifact::fromSweep(res);
    baseline.bench = "shard_test";
    baseline.addGeomeans(res, "base", {"opt"});
    std::string err;
    ASSERT_TRUE(baseline.save(tmp.file("baseline.json"), &err)) << err;

    const auto shardDir = tmp.path / "shards";
    fs::create_directories(shardDir);
    for (unsigned i = 0; i < 2; ++i) {
        sim::SweepRunner part(shardOpts(i, 2));
        auto shard = sim::BenchArtifact::fromSweep(part.run(spec));
        shard.bench = "shard_test";
        // Per the merge contract, shards carry no geomeans.
        ASSERT_TRUE(shard.save(
            (shardDir / ("shard" + std::to_string(i) + ".json"))
                .string(),
            &err))
            << err;
    }

    // Without recompute the merged candidate lacks the figure geomean.
    EXPECT_EQ(sim::benchCheckMain({tmp.file("baseline.json"),
                                   shardDir.string()}),
              1);
    // With the post-merge recompute the gate passes exactly.
    EXPECT_EQ(sim::benchCheckMain({"--recompute-geomeans", "base",
                                   tmp.file("baseline.json"),
                                   shardDir.string()}),
              0);
}

// ---------------------------------------------------------------------------
// ResultCache: hit/miss accounting, persistence, invalidation.
// ---------------------------------------------------------------------------

TEST(ResultCache, SecondRunPerformsZeroNewSimulations)
{
    TempDir tmp;
    const auto spec = smallSpec();

    sim::SweepOptions cold;
    cold.run.threads = 2;
    cold.resultCache =
        std::make_shared<sim::ResultCache>(tmp.file("cache"));
    sim::SweepRunner first(cold);
    const auto a = first.run(spec);
    {
        const auto s = cold.resultCache->stats();
        EXPECT_EQ(s.hits, 0u);
        EXPECT_EQ(s.misses, a.size());
        EXPECT_EQ(s.stores, a.size());
        EXPECT_EQ(s.errors, 0u);
        for (const auto &r : a.all())
            EXPECT_FALSE(r.fromCache) << r.job.label;
    }

    // A *fresh* cache object over the same directory: the hits below
    // can only come from the persisted entries, and zero misses means
    // zero new simulations — the acceptance criterion.
    sim::SweepOptions warm;
    warm.run.threads = 2;
    warm.resultCache =
        std::make_shared<sim::ResultCache>(tmp.file("cache"));
    sim::SweepRunner second(warm);
    const auto b = second.run(spec);
    const auto s = warm.resultCache->stats();
    EXPECT_EQ(s.hits, b.size());
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.stores, 0u);

    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const auto &x = a.all()[i];
        const auto &y = b.all()[i];
        EXPECT_TRUE(y.fromCache) << y.job.label;
        EXPECT_EQ(x.job.label, y.job.label);
        EXPECT_EQ(x.sim.instructions, y.sim.instructions);
        EXPECT_EQ(x.sim.halted, y.sim.halted);
        EXPECT_EQ(x.sim.stats.cycles, y.sim.stats.cycles);
        EXPECT_EQ(x.sim.stats.retired, y.sim.stats.retired);
        EXPECT_EQ(x.sim.stats.mispredicted, y.sim.stats.mispredicted);
        EXPECT_EQ(x.sim.stats.dl1Misses, y.sim.stats.dl1Misses);
        EXPECT_EQ(x.sim.stats.opt.earlyExecuted,
                  y.sim.stats.opt.earlyExecuted);
        EXPECT_EQ(x.sim.stats.opt.loadsRemoved,
                  y.sim.stats.opt.loadsRemoved);
        EXPECT_EQ(x.sim.stats.mbc.hits, y.sim.stats.mbc.hits);
    }
}

TEST(ResultCache, CachedRunProducesIdenticalArtifact)
{
    TempDir tmp;
    const auto spec = smallSpec();

    sim::SweepOptions o;
    o.run.threads = 2;
    o.resultCache =
        std::make_shared<sim::ResultCache>(tmp.file("cache"));
    sim::SweepRunner runner(o);
    const auto cold = runner.run(spec);
    const auto warm = runner.run(spec);

    auto artCold = sim::BenchArtifact::fromSweep(cold);
    artCold.addGeomeans(cold, "base", {"opt"});
    auto artWarm = sim::BenchArtifact::fromSweep(warm);
    artWarm.addGeomeans(warm, "base", {"opt"});
    EXPECT_EQ(artCold.toJson(), artWarm.toJson());
}

TEST(ResultCache, InvalidatesOnConfigScaleAndSeedChange)
{
    TempDir tmp;
    const auto cache =
        std::make_shared<sim::ResultCache>(tmp.file("cache"));
    sim::SweepOptions o;
    o.run.threads = 1;
    o.resultCache = cache;
    sim::SweepRunner runner(o);

    sim::SweepSpec spec;
    spec.workload("untst").config(
        "base", pipeline::MachineConfig::baseline());
    runner.run(spec);
    auto s = cache->stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 0u);

    // Same job again: hit.
    runner.run(spec);
    s = cache->stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);

    // Any MachineConfig change is a different fingerprint: miss.
    auto bigger = pipeline::MachineConfig::baseline();
    bigger.robEntries += 32;
    sim::SweepSpec changed;
    changed.workload("untst").config("base", bigger);
    runner.run(changed);
    s = cache->stats();
    EXPECT_EQ(s.misses, 2u);

    // A different scale is a different program and key: miss.
    sim::SweepSpec scaled;
    scaled.workload("untst")
        .config("base", pipeline::MachineConfig::baseline())
        .scale(2);
    runner.run(scaled);
    s = cache->stats();
    EXPECT_EQ(s.misses, 3u);

    // A different seed (same everything else): miss.
    sim::SimJob j;
    j.workload = "untst";
    j.config = pipeline::MachineConfig::baseline();
    j.configName = "base";
    j.seed = 12345;
    runner.run(std::vector<sim::SimJob>{j});
    s = cache->stats();
    EXPECT_EQ(s.misses, 4u);
    EXPECT_EQ(s.hits, 1u);
}

TEST(ResultCache, CorruptEntryIsAMissNotACrash)
{
    TempDir tmp;
    sim::SweepSpec spec;
    spec.workload("untst").config(
        "base", pipeline::MachineConfig::baseline());

    sim::SweepOptions o;
    o.run.threads = 1;
    o.resultCache =
        std::make_shared<sim::ResultCache>(tmp.file("cache"));
    sim::SweepRunner cold(o);
    const auto ref = cold.run(spec);

    // Truncate every persisted entry.
    for (const auto &e :
         fs::directory_iterator(tmp.file("cache"))) {
        std::FILE *f = std::fopen(e.path().c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"schema\": \"conopt-result-cache\", \"ver", f);
        std::fclose(f);
    }

    sim::SweepOptions o2;
    o2.run.threads = 1;
    o2.resultCache =
        std::make_shared<sim::ResultCache>(tmp.file("cache"));
    sim::SweepRunner warm(o2);
    const auto res = warm.run(spec);
    const auto s = o2.resultCache->stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.errors, 1u);
    EXPECT_EQ(s.stores, 1u) << "the re-simulation repairs the entry";
    EXPECT_EQ(res.at("untst/base").sim.stats.cycles,
              ref.at("untst/base").sim.stats.cycles);
    EXPECT_FALSE(res.at("untst/base").fromCache);
}

TEST(ResultCache, EntryRoundTripsAndVerifiesItsKey)
{
    sim::SweepRunner runner({1, nullptr});
    sim::SweepSpec spec;
    spec.workload("untst").config(
        "opt", pipeline::MachineConfig::optimized());
    const auto res = runner.run(spec);
    const auto &r = res.at("untst/opt");

    sim::ResultCache::Key key;
    key.programFingerprint = "0x1111111111111111";
    key.configFingerprint =
        sim::configFingerprint(pipeline::MachineConfig::optimized());
    key.simFingerprint = sim::selfExeFingerprint();
    key.scale = r.job.scale;
    key.seed = r.job.seed;
    key.maxInsts = r.job.maxInsts;

    const std::string json =
        sim::ResultCache::entryToJson(key, r.sim);
    sim::SimResult back;
    std::string err;
    ASSERT_TRUE(
        sim::ResultCache::parseEntry(json, key, &back, &err))
        << err;
    // Strongest form: re-serialization is byte-identical, so every
    // persisted counter survived exactly.
    EXPECT_EQ(sim::ResultCache::entryToJson(key, back), json);
    EXPECT_EQ(back.stats.cycles, r.sim.stats.cycles);
    EXPECT_EQ(back.instructions, r.sim.instructions);
    EXPECT_EQ(back.halted, r.sim.halted);

    // A key mismatch (hash collision, edited file) must be rejected.
    auto other = key;
    other.seed ^= 1;
    EXPECT_FALSE(
        sim::ResultCache::parseEntry(json, other, &back, &err));
    EXPECT_NE(err.find("key mismatch"), std::string::npos);

    // A different simulator binary is a different key: stale results
    // from an older timing model must never replay.
    auto rebuilt = key;
    rebuilt.simFingerprint = "0x2222222222222222";
    EXPECT_NE(rebuilt.fileName(), key.fileName());
    EXPECT_FALSE(
        sim::ResultCache::parseEntry(json, rebuilt, &back, &err));

    // Null err is allowed, including on malformed-number paths.
    EXPECT_FALSE(sim::ResultCache::parseEntry(
        "{\"schema\": \"conopt-result-cache\", \"version\": 1.5}", key,
        &back, nullptr));
    EXPECT_FALSE(
        sim::ResultCache::parseEntry("not json", key, &back, nullptr));
}

TEST(ResultCache, ShardsSharingACacheDirWarmEachOther)
{
    TempDir tmp;
    const auto spec = smallSpec();
    for (unsigned i = 0; i < 2; ++i) {
        auto o = shardOpts(i, 2);
        o.resultCache =
            std::make_shared<sim::ResultCache>(tmp.file("cache"));
        sim::SweepRunner part(o);
        part.run(spec);
    }
    // An unsharded run over the same directory: every cell cached.
    sim::SweepOptions o;
    o.run.threads = 2;
    o.resultCache =
        std::make_shared<sim::ResultCache>(tmp.file("cache"));
    sim::SweepRunner full(o);
    const auto res = full.run(spec);
    const auto s = o.resultCache->stats();
    EXPECT_EQ(s.hits, res.size());
    EXPECT_EQ(s.misses, 0u);
}

// ---------------------------------------------------------------------------
// Progress callback.
// ---------------------------------------------------------------------------

TEST(SweepProgress, ReportsEveryJobOnceWithMonotonicDoneCounter)
{
    std::vector<sim::SweepProgress> seen;
    sim::SweepOptions o;
    o.run.threads = 3;
    o.onProgress = [&](const sim::SweepProgress &p) {
        seen.push_back(p);
    };
    sim::SweepRunner runner(o);
    const auto res = runner.run(smallSpec());

    ASSERT_EQ(seen.size(), res.size());
    std::set<std::string> labels;
    for (size_t i = 0; i < seen.size(); ++i) {
        const auto &p = seen[i];
        EXPECT_EQ(p.done, i + 1) << "done counter must be monotonic";
        EXPECT_EQ(p.total, res.size());
        EXPECT_GE(p.etaSeconds, 0.0);
        EXPECT_GE(p.elapsedSeconds, 0.0);
        EXPECT_GT(p.geomeanIpc, 0.0);
        labels.insert(p.label);
    }
    EXPECT_EQ(labels.size(), res.size())
        << "every job must be reported exactly once";
    EXPECT_DOUBLE_EQ(seen.back().etaSeconds, 0.0);
    EXPECT_GT(seen.back().totalHostSeconds, 0.0);
}

TEST(SweepProgress, ShardedRunReportsOnlyItsOwnJobs)
{
    size_t calls = 0;
    auto o = shardOpts(0, 2);
    o.onProgress = [&](const sim::SweepProgress &p) {
        ++calls;
        EXPECT_EQ(p.total, 3u);
    };
    sim::SweepRunner runner(o);
    const auto res = runner.run(smallSpec());
    EXPECT_EQ(res.size(), 3u);
    EXPECT_EQ(calls, 3u);
}
