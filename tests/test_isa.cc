/**
 * @file
 * Unit tests for the ISA: opcode metadata, shared ALU/branch semantics,
 * and the disassembler.
 */

#include <bit>

#include <gtest/gtest.h>

#include "src/isa/exec.hh"
#include "src/isa/isa.hh"

using namespace conopt;
using isa::Opcode;

TEST(OpInfo, ClassesAndLatencies)
{
    EXPECT_EQ(isa::opInfo(Opcode::ADDQ).cls, isa::OpClass::IntSimple);
    EXPECT_EQ(isa::opInfo(Opcode::ADDQ).latency, 1);
    EXPECT_EQ(isa::opInfo(Opcode::MULQ).cls, isa::OpClass::IntComplex);
    EXPECT_EQ(isa::opInfo(Opcode::MULQ).latency, 7);
    EXPECT_EQ(isa::opInfo(Opcode::DIVQ).latency, 20);
    EXPECT_EQ(isa::opInfo(Opcode::ADDT).cls, isa::OpClass::Fp);
    EXPECT_EQ(isa::opInfo(Opcode::LDQ).cls, isa::OpClass::Mem);
    EXPECT_EQ(isa::opInfo(Opcode::BEQ).cls, isa::OpClass::Control);
}

TEST(OpInfo, MemoryAttributes)
{
    EXPECT_TRUE(isa::opInfo(Opcode::LDQ).isLoad);
    EXPECT_EQ(isa::opInfo(Opcode::LDQ).memSize, 8);
    EXPECT_EQ(isa::opInfo(Opcode::LDL).memSize, 4);
    EXPECT_EQ(isa::opInfo(Opcode::LDBU).memSize, 1);
    EXPECT_TRUE(isa::opInfo(Opcode::STQ).isStore);
    EXPECT_TRUE(isa::opInfo(Opcode::STQ).readsRc);
    EXPECT_FALSE(isa::opInfo(Opcode::STQ).writesRc);
    EXPECT_TRUE(isa::opInfo(Opcode::LDT).rcIsFp);
    EXPECT_TRUE(isa::opInfo(Opcode::STT).rcIsFp);
}

TEST(OpInfo, ControlAttributes)
{
    EXPECT_TRUE(isa::opInfo(Opcode::BEQ).isCondBranch);
    EXPECT_FALSE(isa::opInfo(Opcode::BR).isCondBranch);
    EXPECT_TRUE(isa::opInfo(Opcode::JSR).isIndirect);
    EXPECT_TRUE(isa::opInfo(Opcode::JSR).isCall);
    EXPECT_TRUE(isa::opInfo(Opcode::JSR).writesRc);
    EXPECT_TRUE(isa::opInfo(Opcode::RET).isReturn);
    EXPECT_TRUE(isa::opInfo(Opcode::BSR).isCall);
    EXPECT_FALSE(isa::opInfo(Opcode::BSR).isIndirect);
}

TEST(OpInfo, SimpleOpsAreOneCycleInteger)
{
    EXPECT_TRUE(isa::isSimpleOp(Opcode::ADDQ));
    EXPECT_TRUE(isa::isSimpleOp(Opcode::SLL));
    EXPECT_TRUE(isa::isSimpleOp(Opcode::CMPULE));
    EXPECT_TRUE(isa::isSimpleOp(Opcode::BEQ));
    EXPECT_FALSE(isa::isSimpleOp(Opcode::MULQ));
    EXPECT_FALSE(isa::isSimpleOp(Opcode::DIVQ));
    EXPECT_FALSE(isa::isSimpleOp(Opcode::ADDT));
    EXPECT_FALSE(isa::isSimpleOp(Opcode::FMOV));
    EXPECT_FALSE(isa::isSimpleOp(Opcode::LDQ));
}

TEST(AluCompute, IntegerArithmetic)
{
    EXPECT_EQ(isa::aluCompute(Opcode::ADDQ, 3, 4), 7u);
    EXPECT_EQ(isa::aluCompute(Opcode::SUBQ, 3, 4), ~uint64_t(0));
    EXPECT_EQ(isa::aluCompute(Opcode::AND, 0xf0, 0x3c), 0x30u);
    EXPECT_EQ(isa::aluCompute(Opcode::BIS, 0xf0, 0x0f), 0xffu);
    EXPECT_EQ(isa::aluCompute(Opcode::XOR, 0xff, 0x0f), 0xf0u);
    EXPECT_EQ(isa::aluCompute(Opcode::SLL, 1, 63), uint64_t(1) << 63);
    EXPECT_EQ(isa::aluCompute(Opcode::SRL, uint64_t(1) << 63, 63), 1u);
    EXPECT_EQ(isa::aluCompute(Opcode::SRA, uint64_t(-8), 1),
              uint64_t(-4));
}

TEST(AluCompute, Comparisons)
{
    EXPECT_EQ(isa::aluCompute(Opcode::CMPEQ, 5, 5), 1u);
    EXPECT_EQ(isa::aluCompute(Opcode::CMPEQ, 5, 6), 0u);
    EXPECT_EQ(isa::aluCompute(Opcode::CMPLT, uint64_t(-1), 0), 1u);
    EXPECT_EQ(isa::aluCompute(Opcode::CMPULT, uint64_t(-1), 0), 0u);
    EXPECT_EQ(isa::aluCompute(Opcode::CMPLE, 5, 5), 1u);
    EXPECT_EQ(isa::aluCompute(Opcode::CMPULE, 6, 5), 0u);
}

TEST(AluCompute, ThirtyTwoBitOps)
{
    // addl wraps and sign-extends at 32 bits.
    EXPECT_EQ(isa::aluCompute(Opcode::ADDL, 0x7fffffff, 1),
              uint64_t(int64_t(int32_t(0x80000000))));
    EXPECT_EQ(isa::aluCompute(Opcode::SUBL, 0, 1), ~uint64_t(0));
    EXPECT_EQ(isa::aluCompute(Opcode::SEXTL, 0, 0x80000000),
              uint64_t(int64_t(int32_t(0x80000000))));
}

TEST(AluCompute, MultiplyDivide)
{
    EXPECT_EQ(isa::aluCompute(Opcode::MULQ, 7, 6), 42u);
    EXPECT_EQ(isa::aluCompute(Opcode::DIVQ, 42, 6), 7u);
    EXPECT_EQ(isa::aluCompute(Opcode::DIVQ, uint64_t(-42), 6),
              uint64_t(-7));
    EXPECT_EQ(isa::aluCompute(Opcode::DIVQ, 1, 0), 0u) << "div by zero";
    EXPECT_EQ(isa::aluCompute(Opcode::REMQ, 43, 6), 1u);
    EXPECT_EQ(isa::aluCompute(Opcode::REMQ, 1, 0), 0u);
    // INT64_MIN / -1 must not trap.
    EXPECT_EQ(isa::aluCompute(Opcode::DIVQ, uint64_t(INT64_MIN),
                              uint64_t(-1)),
              uint64_t(INT64_MIN));
}

TEST(AluCompute, FloatingPoint)
{
    auto d = [](double v) { return std::bit_cast<uint64_t>(v); };
    EXPECT_EQ(isa::aluCompute(Opcode::ADDT, d(1.5), d(2.5)), d(4.0));
    EXPECT_EQ(isa::aluCompute(Opcode::MULT, d(3.0), d(-2.0)), d(-6.0));
    EXPECT_EQ(isa::aluCompute(Opcode::DIVT, d(1.0), d(4.0)), d(0.25));
    EXPECT_EQ(isa::aluCompute(Opcode::SQRTT, 0, d(9.0)), d(3.0));
    EXPECT_EQ(isa::aluCompute(Opcode::CMPTLT, d(1.0), d(2.0)), d(1.0));
    EXPECT_EQ(isa::aluCompute(Opcode::CMPTEQ, d(1.0), d(2.0)), d(0.0));
    EXPECT_EQ(isa::aluCompute(Opcode::CVTQT, uint64_t(-3), 0), d(-3.0));
    EXPECT_EQ(isa::aluCompute(Opcode::CVTTQ, 0, d(-3.7)), uint64_t(-3));
}

TEST(BranchCond, AllConditions)
{
    EXPECT_TRUE(isa::branchCondTaken(Opcode::BEQ, 0));
    EXPECT_FALSE(isa::branchCondTaken(Opcode::BEQ, 1));
    EXPECT_TRUE(isa::branchCondTaken(Opcode::BNE, 1));
    EXPECT_TRUE(isa::branchCondTaken(Opcode::BLT, uint64_t(-1)));
    EXPECT_FALSE(isa::branchCondTaken(Opcode::BLT, 0));
    EXPECT_TRUE(isa::branchCondTaken(Opcode::BGE, 0));
    EXPECT_TRUE(isa::branchCondTaken(Opcode::BLE, 0));
    EXPECT_FALSE(isa::branchCondTaken(Opcode::BGT, 0));
    EXPECT_TRUE(isa::branchCondTaken(Opcode::BGT, 5));
    auto d = [](double v) { return std::bit_cast<uint64_t>(v); };
    EXPECT_TRUE(isa::branchCondTaken(Opcode::FBEQ, d(0.0)));
    EXPECT_FALSE(isa::branchCondTaken(Opcode::FBEQ, d(1.0)));
    EXPECT_TRUE(isa::branchCondTaken(Opcode::FBNE, d(2.0)));
}

TEST(Disassemble, Readable)
{
    isa::Instruction add;
    add.op = Opcode::ADDQ;
    add.ra = 3;
    add.useImm = true;
    add.imm = 4;
    add.rc = 4;
    const std::string s = isa::disassemble(add, 0x10000);
    EXPECT_NE(s.find("addq"), std::string::npos);
    EXPECT_NE(s.find("r3"), std::string::npos);
    EXPECT_NE(s.find("r4"), std::string::npos);

    isa::Instruction ld;
    ld.op = Opcode::LDQ;
    ld.ra = 29;
    ld.rc = 1;
    ld.imm = 16;
    const std::string t = isa::disassemble(ld, 0);
    EXPECT_NE(t.find("ldq"), std::string::npos);
    EXPECT_NE(t.find("16(r29)"), std::string::npos);
}
